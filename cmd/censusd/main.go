// Command censusd runs the census daemon: an HTTP/JSON service that
// accepts census job requests, runs them as supervised checkpointed
// explorations on a bounded worker pool, and persists every job so a
// crash (SIGKILL) or a graceful drain (SIGTERM) never loses work — on
// the next start, in-flight jobs resume from their checkpoints and
// complete bit-identical to uninterrupted runs.
//
// Quick start:
//
//	censusd -dir /var/lib/censusd -addr 127.0.0.1:8347
//	curl -s localhost:8347/jobs -d '{"protocol":"cas","k":4,"n":3}'
//	curl -s localhost:8347/jobs/<id>
//	curl -s localhost:8347/healthz
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/censusd"
	"repro/internal/explore"
	"repro/internal/runctx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "censusd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8347", "listen address (host:port; port 0 picks a free port)")
	dir := flag.String("dir", "censusd-data", "job store directory (jobs, results, checkpoints)")
	workers := flag.Int("workers", 2, "concurrent jobs")
	queueDepth := flag.Int("queue", 16, "admission queue depth; submissions beyond it are shed with 429")
	ckEvery := flag.Int("checkpoint-every", 1, "save each job's checkpoint after this many completed subtree roots")
	retries := flag.Int("retries", 0, "per-subtree retry attempts inside each job (0 = engine default)")
	stallTimeout := flag.Duration("stall-timeout", 0, "per-job stall watchdog: requeue a subtree whose worker makes no progress for this long (0 = off)")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "distributed work-item lease duration; an unrenewed lease is requeued")
	workerPoll := flag.Duration("worker-poll", 500*time.Millisecond, "lease-poll interval suggested to registering workers")
	distRetries := flag.Int("dist-retries", 0, "lease grants per subtree root before it is abandoned (0 = default 6)")
	storeMaxJobs := flag.Int("store-max-jobs", 0, "retain at most this many terminal jobs in the result cache, LRU-evicting past it (0 = unbounded)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "bound the terminal jobs' on-disk footprint in bytes (0 = unbounded)")
	rate := flag.Float64("rate", 0, "per-client POST /jobs rate limit in requests/second (0 = off)")
	rateBurst := flag.Int("rate-burst", 4, "per-client rate-limit burst size")
	flag.Parse()

	// First SIGINT/SIGTERM drains: stop admitting, checkpoint running
	// jobs at root granularity, persist, exit 0. A second signal — or a
	// SIGKILL at any point — leaves the store in a state the next start
	// recovers from.
	ctx, stop := runctx.WithDrain(context.Background(), 0)
	defer stop()

	srv, err := censusd.New(censusd.Config{
		Dir:             *dir,
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		CheckpointEvery: *ckEvery,
		Supervision: explore.Supervise{
			MaxAttempts:  *retries,
			StallTimeout: *stallTimeout,
		},
		LeaseTTL:        *leaseTTL,
		WorkerPoll:      *workerPoll,
		DistMaxAttempts: *distRetries,
		StoreMaxJobs:    *storeMaxJobs,
		StoreMaxBytes:   *storeMaxBytes,
		RatePerSec:      *rate,
		RateBurst:       *rateBurst,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The bound address goes to stdout (port 0 resolves here) so
	// scripts and tests can discover it.
	fmt.Printf("censusd: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	srv.Start(ctx)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting HTTP, then wait for the workers to
	// flush checkpoints and persist job states.
	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	_ = httpSrv.Shutdown(shCtx)
	srv.Drain()
	fmt.Println("censusd: drained; all jobs checkpointed")
	return nil
}
