// Command agentgame plays the move/jump process of Lemma 1.1 (proof by
// Noga Alon): m agents on the complete directed graph over k nodes,
// moves paint edges, jumps need a freshly-moved-into target, and the
// run ends when the painted edges would close a cycle. It sweeps (m,k),
// reporting the longest observed runs against the m^k bound and
// checking the potential law on every run.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/agents"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "agentgame:", err)
		os.Exit(1)
	}
}

func run() error {
	mMax := flag.Int("mmax", 4, "largest agent count")
	kMax := flag.Int("kmax", 5, "largest node count")
	seeds := flag.Int("seeds", 50, "random runs per configuration")
	exhaustive := flag.Bool("exhaustive", false, "also search tiny instances exhaustively")
	flag.Parse()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "m\tk\tbound m^k\tbest random run\texact max\tpotential law")
	for m := 1; m <= *mMax; m++ {
		for k := 2; k <= *kMax; k++ {
			best := 0
			lawOK := true
			for s := 0; s < *seeds; s++ {
				g, start, err := agents.RandomRun(m, k, int64(s), 100000)
				if err != nil {
					return err
				}
				if g.Moves() > best {
					best = g.Moves()
				}
				if err := g.VerifyPotentialLaw(start); err != nil {
					lawOK = false
				}
			}
			exh := "-"
			if *exhaustive && (m <= 3 && k <= 4 || k == 3 && m <= 5) {
				exh = fmt.Sprint(agents.ExactLongestRun(m, k))
			}
			law := "✓"
			if !lawOK {
				law = "VIOLATED"
			}
			fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%s\t%s\n", m, k, agents.MoveBound(m, k), best, exh, law)
		}
	}
	return w.Flush()
}
