// Command emulate runs the paper's reduction by emulation (Section 3):
// m = (k−1)!+1 emulators, communicating only through read/write
// registers, cooperatively construct runs of an algorithm A that uses
// one compare&swap-(k), splitting into at most (k−1)! groups and each
// adopting the decision of one virtual process. It prints the resulting
// decision census, group labels, histories, and the audit verdict.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "emulate:", err)
		os.Exit(1)
	}
}

func run() error {
	k := flag.Int("k", 3, "compare&swap alphabet size")
	n := flag.Int("n", 0, "number of v-processes of A (0 = 40·(k−1))")
	quota := flag.Int("quota", 3, "suspension quota per edge (paper default m·k² with -quota 0)")
	algo := flag.String("algo", "firstvalue", "algorithm A: firstvalue | biased | cycling | contenders")
	seed := flag.Int64("seed", -1, "random schedule seed (-1 = round robin)")
	showTree := flag.Bool("tree", false, "print the history tree T")
	flag.Parse()

	if *n == 0 {
		*n = 40 * (*k - 1)
	}
	m := core.MaxLabels(*k) + 1
	var a *core.Algorithm
	switch *algo {
	case "firstvalue":
		a = core.FirstValueA(*k, *n)
	case "biased":
		a = core.BiasedA(*k, m, *n)
	case "cycling":
		a = core.CyclingA(*k, *n, 4)
	case "contenders":
		ids := make([]sim.Value, *n)
		for i := range ids {
			ids[i] = fmt.Sprintf("id%d", i)
		}
		a = core.ContendersLE(*k, ids)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	r := core.NewReduction(core.Config{K: *k, Quota: *quota, A: a})
	var sched sim.Scheduler = sim.RoundRobin()
	if *seed >= 0 {
		sched = sim.Random(*seed)
	}
	fmt.Printf("emulating %s with m=%d emulators (bound (k−1)! = %d groups), quota %d\n",
		a.Name, r.Config().M, core.MaxLabels(*k), r.Config().Quota)

	res, err := r.System().Run(sim.Config{Scheduler: sched, MaxTotalSteps: 1 << 24})
	if err != nil {
		return err
	}
	if res.Halted {
		return fmt.Errorf("run halted with live emulators %v", res.ReadyAtHalt)
	}
	rep := r.Analyze(res)
	fmt.Print(core.DescribeReport(rep))

	v := r.FinalView()
	for _, l := range v.MaximalLabels() {
		h := core.ComputeHistory(v, l)
		fmt.Printf("run %s: history %v\n", l, h.Seq)
		if rc := core.ReleasedCount(v, l); len(rc) > 0 {
			fmt.Printf("  released successful c&s: %v\n", rc)
		}
	}
	if *showTree {
		fmt.Println("\nhistory tree T:")
		fmt.Print(core.DescribeTree(v))
	}
	if err := r.Audit(); err != nil {
		return fmt.Errorf("AUDIT FAILED: %w", err)
	}
	fmt.Println("audit: every transition paid, every release matched, groups within (k−1)!")
	fmt.Printf("total shared-memory steps: %d\n", res.TotalSteps)
	return nil
}
