// Command censusworker is the remote worker of the distributed
// census: it registers with a censusd coordinator, leases subtree work
// items, explores them with local checkpointing and heartbeat renewal,
// and delivers partial censuses that the coordinator merges
// bit-identical to a single-process run.
//
// Crash safety: a worker killed mid-lease (SIGKILL) and restarted over
// the same -dir resumes the interrupted subtree from its checkpoint
// and delivers under its recorded lease generation; if the
// coordinator reassigned the item meanwhile, the delivery is rejected
// as stale and discarded — never double-counted. Transient coordinator
// outages (restart, partition) are ridden out with seeded exponential
// backoff.
//
// Quick start (against a running censusd):
//
//	censusworker -coordinator http://127.0.0.1:8347 -dir worker-data
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/censusd"
	"repro/internal/distcensus"
	"repro/internal/runctx"
)

func main() {
	if err := run(); err != nil && err != context.Canceled {
		fmt.Fprintln(os.Stderr, "censusworker:", err)
		os.Exit(1)
	}
}

func run() error {
	coordinator := flag.String("coordinator", "http://127.0.0.1:8347", "coordinator base URL")
	dir := flag.String("dir", "censusworker-data", "in-flight lease records and subtree checkpoints")
	id := flag.String("id", "", "worker id (default hostname-pid)")
	poll := flag.Duration("poll", 0, "lease poll interval (0 = coordinator's suggestion)")
	seed := flag.Int64("seed", 0, "retry-backoff jitter seed (reproducible failure handling)")
	flag.Parse()

	ctx, stop := runctx.WithDrain(context.Background(), 0)
	defer stop()

	w := &distcensus.Worker{
		ID:  *id,
		Dir: *dir,
		Client: &distcensus.Client{
			Base:    *coordinator,
			Backoff: runctx.Backoff{Seed: *seed},
		},
		Build: censusd.BuildRaw,
		Poll:  *poll,
	}
	return w.Run(ctx)
}
