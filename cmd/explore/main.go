// Command explore enumerates every schedule of a chosen small protocol
// (optionally with crash branching) and prints the outcome census, the
// initial valence, and — for doomed protocols — a concrete violating
// schedule and the greedy bivalence path, the FLP-style adversary
// argument made executable.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/consensus"
	"repro/internal/explore"
	"repro/internal/faults"
	"repro/internal/objects"
	"repro/internal/profiling"
	"repro/internal/runctx"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}
}

func run() error {
	protocol := flag.String("protocol", "tas2", "protocol: rw2 | rw3 | tas2 | tas3gen | fa2 | queue2 | cas | casdeg")
	k := flag.Int("k", 4, "compare&swap alphabet (for -protocol cas/casdeg)")
	n := flag.Int("n", 2, "processes (for -protocol cas/casdeg)")
	crashes := flag.Int("crashes", 1, "crash budget per schedule")
	objFaults := flag.Int("objfaults", 0, "object-fault budget per schedule (needs a fault-wrapped protocol, e.g. casdeg)")
	faultModes := flag.String("faultmodes", "crash", "comma-separated fault modes to enumerate: crash,omission,reset,garble")
	maxRuns := flag.Int("maxruns", 200000, "exploration budget")
	stepLimit := flag.Int("steplimit", 0, "per-process step budget: a run exceeding it is counted as a step-limit outcome instead of hanging the census (0 = sim default)")
	bivalence := flag.Bool("bivalence", true, "trace the greedy bivalence path")
	workers := flag.Int("workers", 1, "exploration workers (0 or 1 sequential, -1 = GOMAXPROCS)")
	prune := flag.Bool("prune", false, "enable state-fingerprint subtree pruning for the census")
	pruneBudget := flag.Int("prunebudget", 0, "prune-table entry budget, FIFO-evicted beyond it (0 = default cap)")
	symmetry := flag.Bool("symmetry", false, "canonicalize fingerprints under declared process symmetry (implies -prune; audited per protocol, silently off with a note if the protocol declares none)")
	sleepsets := flag.Bool("sleepsets", false, "skip re-exploration of independent-step commutations via the prune table (implies -prune)")
	checkpoint := flag.String("checkpoint", "", "checkpoint file: periodically persist census progress for -resume")
	checkpointEvery := flag.Int("checkpoint-every", 0, "save the checkpoint after this many completed subtree roots (0 = default)")
	resume := flag.Bool("resume", false, "resume from -checkpoint if it matches this exploration")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	timeout := flag.Duration("timeout", 0, "per-run deadline: cancel the census after this long, leaving a resumable checkpoint (0 = none)")
	allowPartial := flag.Bool("allow-partial", false, "exit zero even when the census was cancelled or lost subtrees")
	retries := flag.Int("retries", 0, "per-subtree retry attempts for failed parallel workers (0 = default)")
	stallTimeout := flag.Duration("stall-timeout", 0, "watchdog: requeue a subtree whose worker makes no progress for this long (0 = off)")
	chaosKills := flag.Int("chaos-kills", 0, "chaos: inject up to this many worker panics (testing the supervisor)")
	chaosStalls := flag.Int("chaos-stalls", 0, "chaos: inject up to this many worker stalls")
	chaosStallFor := flag.Duration("chaos-stall-for", 50*time.Millisecond, "chaos: duration of each injected stall")
	chaosSeed := flag.Int64("chaos-seed", 1, "chaos: random seed for injection placement")
	jsonOut := flag.Bool("json", false, "emit the census (counts, prune/steal stats, supervision counters) as JSON on stdout instead of prose")
	flag.Parse()

	ctx, stopSig := runctx.WithInterrupt(context.Background())
	defer stopSig()
	ctx, stopT := runctx.WithTimeout(ctx, *timeout)
	defer stopT()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "explore:", perr)
		}
	}()

	builder, props, err := pick(*protocol, *k, *n)
	if err != nil {
		return err
	}
	modes, err := parseFaultModes(*faultModes)
	if err != nil {
		return err
	}

	opts := explore.Options{
		MaxCrashes: *crashes, MaxRuns: *maxRuns, Workers: *workers,
		Prune: *prune, PruneTableEntries: *pruneBudget,
		Symmetry: *symmetry, SleepSets: *sleepsets,
		MaxStepsPerProc: *stepLimit,
		Context:         ctx,
	}
	if *objFaults > 0 {
		opts.ObjectFaults = *objFaults
		opts.FaultModes = modes
	}
	var supStats explore.SuperviseStats
	sup := explore.Supervise{
		MaxAttempts:  *retries,
		StallTimeout: *stallTimeout,
		Stats:        &supStats,
	}
	supervised := *retries > 0 || *stallTimeout > 0
	if *chaosKills > 0 || *chaosStalls > 0 {
		sup.Chaos = &explore.ChaosPlan{
			Seed:     *chaosSeed,
			KillRate: 0.2, MaxKills: *chaosKills,
			StallRate: 0.2, MaxStalls: *chaosStalls,
			StallFor: *chaosStallFor,
		}
		supervised = true
	}
	if supervised {
		opts.Supervision = &sup
	}
	check := func(res *sim.Result) error {
		if err := consensus.CheckAgreement(res); err != nil {
			return err
		}
		return consensus.CheckValidity(res, props)
	}
	var c *explore.Census
	if *checkpoint != "" {
		ck := explore.Checkpoint{Path: *checkpoint, Every: *checkpointEvery, Resume: *resume}
		var stats explore.CheckpointStats
		c, stats, err = explore.RunCheckpointed(builder, opts, check, ck)
		if err != nil {
			return err
		}
		if stats.Warning != "" {
			fmt.Fprintln(os.Stderr, "explore: warning:", stats.Warning)
		}
		fmt.Printf("checkpoint: %d roots (%d resumed), %d saves to %s\n",
			stats.TotalRoots, stats.ResumedRoots, stats.Saves, *checkpoint)
	} else {
		c = explore.Run(builder, opts, check)
	}
	if *jsonOut {
		if err := emitJSON(os.Stdout, *protocol, *crashes, *objFaults, c, supervised, &supStats); err != nil {
			return err
		}
	} else {
		fmt.Printf("census of %s (crash budget %d, object-fault budget %d):\n%s",
			*protocol, *crashes, *objFaults, explore.DescribeCensus(c))
		if supervised {
			fmt.Printf("supervision: %d attempts, %d retries, %d requeues (chaos: %d kills, %d stalls)\n",
				supStats.Attempts.Load(), supStats.Retries.Load(), supStats.Requeues.Load(),
				supStats.Kills.Load(), supStats.Stalls.Load())
		}
	}
	for _, e := range c.Errors {
		fmt.Fprintln(os.Stderr, "explore: exploration error:", e)
	}
	if c.Cancelled {
		msg := "census cancelled before completion"
		if *checkpoint != "" {
			msg += "; resumable with -resume"
		}
		fmt.Fprintln(os.Stderr, "explore:", msg)
	}

	// The valence and bivalence analyses re-explore from scratch; once
	// the deadline or an interrupt has fired there is no budget for them.
	// JSON mode skips them: stdout carries exactly one JSON object.
	if !*jsonOut && ctx.Err() == nil {
		v := explore.Valence(builder, explore.Options{MaxRuns: *maxRuns / 4, Context: ctx}, nil)
		fmt.Println("initial valence:", explore.ValenceString(v))
	}

	if !*jsonOut && *bivalence && ctx.Err() == nil {
		path, still := explore.BivalencePath(builder, explore.Options{MaxRuns: *maxRuns / 16, Context: ctx}, 12)
		if still {
			fmt.Printf("bivalence path ran the full 12 steps and is STILL bivalent: %s\n",
				explore.FormatSchedule(path))
			fmt.Println("(an adversary can keep this protocol undecided — the FLP shape)")
		} else {
			fmt.Printf("bivalence exhausted after %d steps: some step decides — the object arbitrates\n",
				len(path))
		}
	}
	if !*allowPartial {
		if len(c.Errors) > 0 {
			return fmt.Errorf("%d subtree(s) permanently failed (rerun with -allow-partial to accept the deficit)", len(c.Errors))
		}
		if c.Cancelled {
			return fmt.Errorf("census cancelled (rerun with -allow-partial to accept partial results)")
		}
	}
	return nil
}

// jsonCensus is the -json output shape: the Census counts plus the
// prune/steal and supervision counters, with error values flattened to
// strings (Census itself holds non-marshalable schedule structures).
type jsonCensus struct {
	Protocol      string              `json:"protocol"`
	CrashBudget   int                 `json:"crash_budget"`
	FaultBudget   int                 `json:"object_fault_budget"`
	Complete      int                 `json:"complete"`
	Incomplete    int                 `json:"incomplete"`
	Outcomes      map[string]int      `json:"outcomes"`
	ViolationRuns int                 `json:"violation_runs"`
	Violations    []string            `json:"violations,omitempty"`
	Exhaustive    bool                `json:"exhaustive"`
	Cancelled     bool                `json:"cancelled"`
	Errors        []string            `json:"errors,omitempty"`
	Prune         *explore.PruneStats `json:"prune,omitempty"`
	Supervision   *jsonSupervision    `json:"supervision,omitempty"`
}

type jsonSupervision struct {
	Attempts int64 `json:"attempts"`
	Retries  int64 `json:"retries"`
	Requeues int64 `json:"requeues"`
	Kills    int64 `json:"kills"`
	Stalls   int64 `json:"stalls"`
	Failed   int64 `json:"failed"`
}

func emitJSON(w io.Writer, protocol string, crashes, objFaults int, c *explore.Census, supervised bool, st *explore.SuperviseStats) error {
	out := jsonCensus{
		Protocol:      protocol,
		CrashBudget:   crashes,
		FaultBudget:   objFaults,
		Complete:      c.Complete,
		Incomplete:    c.Incomplete,
		Outcomes:      c.Outcomes,
		ViolationRuns: c.ViolationRuns,
		Exhaustive:    c.Exhaustive,
		Cancelled:     c.Cancelled,
		Errors:        c.Errors,
		Prune:         c.Prune,
	}
	for _, v := range c.Violations {
		out.Violations = append(out.Violations, explore.FormatSchedule(v.Schedule))
	}
	if supervised {
		out.Supervision = &jsonSupervision{
			Attempts: st.Attempts.Load(),
			Retries:  st.Retries.Load(),
			Requeues: st.Requeues.Load(),
			Kills:    st.Kills.Load(),
			Stalls:   st.Stalls.Load(),
			Failed:   st.Failed.Load(),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func pick(name string, k, n int) (explore.Builder, []sim.Value, error) {
	props := func(n int) []sim.Value {
		out := make([]sim.Value, n)
		for i := range out {
			out[i] = 100 + i
		}
		return out
	}
	switch name {
	case "rw2":
		p := props(2)
		return func() *sim.System {
			sys := sim.NewSystem()
			for _, prog := range consensus.RWAttempt(sys, "rw", p) {
				sys.Spawn(prog)
			}
			return sys
		}, p, nil
	case "rw3":
		p := props(3)
		return func() *sim.System {
			sys := sim.NewSystem()
			for _, prog := range consensus.RWAttempt(sys, "rw", p) {
				sys.Spawn(prog)
			}
			return sys
		}, p, nil
	case "tas2":
		p := props(2)
		return func() *sim.System {
			sys := sim.NewSystem()
			ts := objects.NewTestAndSet("t")
			sys.Add(ts)
			for _, prog := range consensus.TASProtocol(sys, ts, [2]sim.Value{p[0], p[1]}) {
				sys.Spawn(prog)
			}
			return sys
		}, p, nil
	case "fa2":
		p := props(2)
		return func() *sim.System {
			sys := sim.NewSystem()
			fa := objects.NewFetchAdd("f", 0)
			sys.Add(fa)
			for _, prog := range consensus.FetchAddProtocol(sys, fa, [2]sim.Value{p[0], p[1]}) {
				sys.Spawn(prog)
			}
			return sys
		}, p, nil
	case "queue2":
		p := props(2)
		return func() *sim.System {
			sys := sim.NewSystem()
			q := objects.NewQueue("q", "winner")
			sys.Add(q)
			for _, prog := range consensus.QueueProtocol(sys, q, [2]sim.Value{p[0], p[1]}) {
				sys.Spawn(prog)
			}
			return sys
		}, p, nil
	case "cas":
		p := props(n)
		spec := consensus.CASSymmetric(n)
		return func() *sim.System {
			sys := sim.NewSystem()
			cas := objects.NewCAS("cas", k)
			sys.Add(cas)
			for _, prog := range consensus.CASProtocol(sys, cas, p) {
				sys.Spawn(prog)
			}
			sys.DeclareSymmetry(spec)
			return sys
		}, p, nil
	case "casdeg":
		// Fault-wrapped compare&swap consensus with graceful degradation
		// to registers: the protocol for -objfaults experiments.
		p := props(n)
		return func() *sim.System {
			sys := sim.NewSystem()
			cas := faults.Wrap(objects.NewCAS("cas", k))
			sys.Add(cas)
			for _, prog := range consensus.DegradingCASProtocol(sys, cas, p) {
				sys.Spawn(prog)
			}
			return sys
		}, p, nil
	default:
		return nil, nil, fmt.Errorf("unknown protocol %q", name)
	}
}

// parseFaultModes parses the -faultmodes flag ("crash,omission,...").
func parseFaultModes(s string) ([]sim.FaultMode, error) {
	var modes []sim.FaultMode
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "":
		case "crash":
			modes = append(modes, sim.FaultCrash)
		case "omission":
			modes = append(modes, sim.FaultOmission)
		case "reset":
			modes = append(modes, sim.FaultReset)
		case "garble":
			modes = append(modes, sim.FaultGarble)
		default:
			return nil, fmt.Errorf("unknown fault mode %q", part)
		}
	}
	return modes, nil
}
