// Command explore enumerates every schedule of a chosen small protocol
// (optionally with crash branching) and prints the outcome census, the
// initial valence, and — for doomed protocols — a concrete violating
// schedule and the greedy bivalence path, the FLP-style adversary
// argument made executable.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/censusd"
	"repro/internal/explore"
	"repro/internal/profiling"
	"repro/internal/runctx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}
}

func run() error {
	protocol := flag.String("protocol", "tas2", "protocol: "+strings.Join(censusd.ProtocolNames(), " | "))
	k := flag.Int("k", 4, "compare&swap alphabet (for -protocol cas/casdeg)")
	n := flag.Int("n", 2, "processes (for -protocol cas/casdeg)")
	crashes := flag.Int("crashes", 1, "crash budget per schedule")
	objFaults := flag.Int("objfaults", 0, "object-fault budget per schedule (needs a fault-wrapped protocol, e.g. casdeg)")
	faultModes := flag.String("faultmodes", "crash", "comma-separated fault modes to enumerate: crash,omission,reset,garble")
	maxRuns := flag.Int("maxruns", 200000, "exploration budget")
	stepLimit := flag.Int("steplimit", 0, "per-process step budget: a run exceeding it is counted as a step-limit outcome instead of hanging the census (0 = sim default)")
	bivalence := flag.Bool("bivalence", true, "trace the greedy bivalence path")
	workers := flag.Int("workers", 1, "exploration workers (0 or 1 sequential, -1 = GOMAXPROCS)")
	prune := flag.Bool("prune", false, "enable state-fingerprint subtree pruning for the census")
	pruneBudget := flag.Int("prunebudget", 0, "prune-table entry budget, FIFO-evicted beyond it (0 = default cap)")
	symmetry := flag.Bool("symmetry", false, "canonicalize fingerprints under declared process symmetry (implies -prune; audited per protocol, silently off with a note if the protocol declares none)")
	sleepsets := flag.Bool("sleepsets", false, "skip re-exploration of independent-step commutations via the prune table (implies -prune)")
	verifyfp := flag.Bool("verifyfp", false, "audit the incremental fingerprint caches: cross-check every granted step's plain and canonical hashes against from-scratch recomputes, panicking on divergence (slow; for verification runs)")
	goroutines := flag.Bool("goroutines", false, "force the goroutine execution engine even for machine-backed protocols (disables the direct-dispatch fast path; counts are identical either way)")
	checkpoint := flag.String("checkpoint", "", "checkpoint file: periodically persist census progress for -resume")
	checkpointEvery := flag.Int("checkpoint-every", 0, "save the checkpoint after this many completed subtree roots (0 = default)")
	resume := flag.Bool("resume", false, "resume from -checkpoint if it matches this exploration")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	timeout := flag.Duration("timeout", 0, "per-run deadline: cancel the census after this long, leaving a resumable checkpoint (0 = none)")
	allowPartial := flag.Bool("allow-partial", false, "exit zero even when the census was cancelled or lost subtrees")
	retries := flag.Int("retries", 0, "per-subtree retry attempts for failed parallel workers (0 = default)")
	stallTimeout := flag.Duration("stall-timeout", 0, "watchdog: requeue a subtree whose worker makes no progress for this long (0 = off)")
	chaosKills := flag.Int("chaos-kills", 0, "chaos: inject up to this many worker panics (testing the supervisor)")
	chaosStalls := flag.Int("chaos-stalls", 0, "chaos: inject up to this many worker stalls")
	chaosStallFor := flag.Duration("chaos-stall-for", 50*time.Millisecond, "chaos: duration of each injected stall")
	chaosSeed := flag.Int64("chaos-seed", 1, "chaos: random seed for injection placement")
	jsonOut := flag.Bool("json", false, "emit the census (counts, prune/steal stats, supervision counters) as JSON on stdout instead of prose")
	flag.Parse()

	ctx, stop := runctx.WithDrain(context.Background(), *timeout)
	defer stop()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "explore:", perr)
		}
	}()

	// The request/identity encoding is shared with the census daemon:
	// the same flags submitted to cmd/censusd name the same exploration
	// and would dedup against it.
	req := censusd.Request{
		Protocol: *protocol, K: *k, N: *n,
		Crashes: crashes, ObjFaults: *objFaults,
		MaxRuns: *maxRuns, StepLimit: *stepLimit,
		Workers: *workers, Prune: *prune, Symmetry: *symmetry, SleepSets: *sleepsets,
	}
	if *objFaults > 0 {
		req.FaultModes = strings.Split(*faultModes, ",")
	}
	if err := req.Normalize(); err != nil {
		return err
	}
	builder, props, err := req.Build()
	if err != nil {
		return err
	}

	opts := req.Options()
	opts.ForceGoroutines = *goroutines
	opts.VerifyFingerprints = *verifyfp
	opts.PruneTableEntries = *pruneBudget
	opts.Context = ctx
	var supStats explore.SuperviseStats
	sup := explore.Supervise{
		MaxAttempts:  *retries,
		StallTimeout: *stallTimeout,
		Stats:        &supStats,
	}
	supervised := *retries > 0 || *stallTimeout > 0
	if *chaosKills > 0 || *chaosStalls > 0 {
		sup.Chaos = &explore.ChaosPlan{
			Seed:     *chaosSeed,
			KillRate: 0.2, MaxKills: *chaosKills,
			StallRate: 0.2, MaxStalls: *chaosStalls,
			StallFor: *chaosStallFor,
		}
		supervised = true
	}
	if supervised {
		opts.Supervision = &sup
	}
	check := req.Check(props)
	var c *explore.Census
	if *checkpoint != "" {
		ck := explore.Checkpoint{Path: *checkpoint, Every: *checkpointEvery, Resume: *resume}
		var stats explore.CheckpointStats
		c, stats, err = explore.RunCheckpointed(builder, opts, check, ck)
		if err != nil {
			return err
		}
		if stats.Warning != "" {
			fmt.Fprintln(os.Stderr, "explore: warning:", stats.Warning)
		}
		fmt.Printf("checkpoint: %d roots (%d resumed), %d saves to %s\n",
			stats.TotalRoots, stats.ResumedRoots, stats.Saves, *checkpoint)
	} else {
		c = explore.Run(builder, opts, check)
	}
	if *jsonOut {
		if err := emitJSON(os.Stdout, *protocol, *crashes, *objFaults, c, supervised, &supStats); err != nil {
			return err
		}
	} else {
		fmt.Printf("census of %s (crash budget %d, object-fault budget %d):\n%s",
			*protocol, *crashes, *objFaults, explore.DescribeCensus(c))
		if supervised {
			fmt.Printf("supervision: %d attempts, %d retries, %d requeues (chaos: %d kills, %d stalls)\n",
				supStats.Attempts.Load(), supStats.Retries.Load(), supStats.Requeues.Load(),
				supStats.Kills.Load(), supStats.Stalls.Load())
		}
	}
	for _, e := range c.Errors {
		fmt.Fprintln(os.Stderr, "explore: exploration error:", e)
	}
	if c.Cancelled {
		msg := "census cancelled before completion"
		if *checkpoint != "" {
			msg += "; resumable with -resume"
		}
		fmt.Fprintln(os.Stderr, "explore:", msg)
	}

	// The valence and bivalence analyses re-explore from scratch; once
	// the deadline or an interrupt has fired there is no budget for them.
	// JSON mode skips them: stdout carries exactly one JSON object.
	if !*jsonOut && ctx.Err() == nil {
		v := explore.Valence(builder, explore.Options{MaxRuns: *maxRuns / 4, Context: ctx}, nil)
		fmt.Println("initial valence:", explore.ValenceString(v))
	}

	if !*jsonOut && *bivalence && ctx.Err() == nil {
		path, still := explore.BivalencePath(builder, explore.Options{MaxRuns: *maxRuns / 16, Context: ctx}, 12)
		if still {
			fmt.Printf("bivalence path ran the full 12 steps and is STILL bivalent: %s\n",
				explore.FormatSchedule(path))
			fmt.Println("(an adversary can keep this protocol undecided — the FLP shape)")
		} else {
			fmt.Printf("bivalence exhausted after %d steps: some step decides — the object arbitrates\n",
				len(path))
		}
	}
	if !*allowPartial {
		if len(c.Errors) > 0 {
			return fmt.Errorf("%d subtree(s) permanently failed (rerun with -allow-partial to accept the deficit)", len(c.Errors))
		}
		if c.Cancelled {
			return fmt.Errorf("census cancelled (rerun with -allow-partial to accept partial results)")
		}
	}
	return nil
}

// emitJSON renders the census through the shared censusd.Result shape
// — the same encoding the daemon's durable result cache stores, so
// daemon results and -json output compare field for field.
func emitJSON(w io.Writer, protocol string, crashes, objFaults int, c *explore.Census, supervised bool, st *explore.SuperviseStats) error {
	if !supervised {
		st = nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(censusd.ResultFrom(protocol, crashes, objFaults, c, st))
}
