// Command tracecheck records and re-verifies runs offline: `-gen` runs
// a leader election under a chosen schedule seed and writes the trace
// (events + "elect" operation spans) as JSON; `-check` loads such a
// trace and decides, with the Wing–Gong checker, whether the recorded
// history is a linearizable execution of the paper's LE object (§2).
//
//	tracecheck -gen trace.json -seed 7 -k 4
//	tracecheck -check trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/election"
	"repro/internal/linearize"
	"repro/internal/objects"
	"repro/internal/sim"
	"repro/internal/spec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

func run() error {
	gen := flag.String("gen", "", "generate: run an election and write its trace to this file")
	check := flag.String("check", "", "check: load a trace file and verify LE linearizability")
	k := flag.Int("k", 4, "compare&swap alphabet size (for -gen)")
	n := flag.Int("n", 0, "processes (default k−1; k over-capacity shows a violation)")
	seed := flag.Int64("seed", 1, "schedule seed (for -gen)")
	flag.Parse()

	switch {
	case *gen != "":
		return generate(*gen, *k, *n, *seed)
	case *check != "":
		return verify(*check)
	default:
		return fmt.Errorf("need -gen FILE or -check FILE")
	}
}

func generate(path string, k, n int, seed int64) error {
	if n == 0 {
		n = k - 1
	}
	ids := make([]sim.Value, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("id%d", i)
	}
	sys := sim.NewSystem()
	cas := objects.NewCAS("cas", k)
	sys.Add(cas)
	for _, p := range election.AnnouncedCAS(sys, cas, ids) {
		sys.Spawn(p)
	}
	res, err := sys.Run(sim.Config{Scheduler: sim.Random(seed)})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.Trace.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %d events, %d spans; decisions %v\n",
		len(res.Trace.Events), len(res.Trace.Spans), res.DistinctDecisions())
	return f.Close()
}

func verify(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	trace, err := sim.ReadTraceJSON(f)
	if err != nil {
		return err
	}
	spans := trace.SpansOf("cas.le")
	if len(spans) == 0 {
		return fmt.Errorf("no \"cas.le\" spans in trace")
	}
	rep := linearize.Check(spec.ElectionSpec{}, spans, linearize.Options{AllowPending: true})
	if !rep.Ok {
		fmt.Printf("NOT linearizable as an LE object (%d spans, %d configurations explored)\n",
			len(spans), rep.Explored)
		for _, sp := range linearize.SortByStart(spans) {
			fmt.Println(" ", sp)
		}
		return fmt.Errorf("history rejected")
	}
	fmt.Printf("linearizable: %d elect operations, witness order %v (%d configurations)\n",
		len(spans), rep.Order, rep.Explored)
	return nil
}
