// Command electionlab sweeps leader-election capacity against the
// compare&swap alphabet size k, reproducing the paper's headline shape
// (E3/E4): the bare register elects k−1 processes; with read/write
// registers the permutation protocol elects Θ((k−1)!); and the paper's
// upper bound O(k^(k²+3)) caps what any wait-free algorithm could do.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"text/tabwriter"

	"repro/internal/election"
	"repro/internal/objects"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "electionlab:", err)
		os.Exit(1)
	}
}

func run() error {
	kMax := flag.Int("kmax", 6, "largest alphabet size to sweep")
	seeds := flag.Int("seeds", 5, "random schedules per configuration")
	verify := flag.Bool("verify", true, "actually run the elections (not just report capacities)")
	flag.Parse()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "k\tregister alone (k−1)\tpermutation (Θ((k−1)!))\tpaper bound O(k^(k²+3))\tverified")
	for k := 2; k <= *kMax; k++ {
		verified := "-"
		if *verify && k <= 5 {
			if err := verifyCapacity(k, *seeds); err != nil {
				return fmt.Errorf("k=%d: %w", k, err)
			}
			verified = "✓"
		}
		bound := math.Pow(float64(k), float64(k*k+3))
		fmt.Fprintf(w, "%d\t%d\t%d\t%.3g\t%s\n", k, k-1, election.Capacity(k), bound, verified)
	}
	return w.Flush()
}

// verifyCapacity runs both protocols at their stated capacities under
// round-robin plus random schedules and checks the election contracts.
func verifyCapacity(k, seeds int) error {
	for s := 0; s <= seeds; s++ {
		var sched sim.Scheduler = sim.RoundRobin()
		if s > 0 {
			sched = sim.Random(int64(s))
		}

		// Register alone, n = k−1.
		sysA := sim.NewSystem()
		casA := objects.NewCAS("cas", k)
		sysA.Add(casA)
		ids := make([]sim.Value, k-1)
		for i := range ids {
			ids[i] = i
		}
		for _, p := range election.DirectCAS(casA, k-1) {
			sysA.Spawn(p)
		}
		res, err := sysA.Run(sim.Config{Scheduler: sched})
		if err != nil {
			return err
		}
		if err := election.CheckElection(res, ids); err != nil {
			return err
		}

		// Permutation protocol at full capacity.
		n := election.Capacity(k)
		pids := make([]sim.Value, n)
		for i := range pids {
			pids[i] = fmt.Sprintf("p%d", i)
		}
		sysB := sim.NewSystem()
		casB := objects.NewCAS("cas", k)
		sysB.Add(casB)
		for _, p := range election.Permutation(sysB, casB, pids) {
			sysB.Spawn(p)
		}
		var sched2 sim.Scheduler = sim.RoundRobin()
		if s > 0 {
			sched2 = sim.Random(int64(s))
		}
		res, err = sysB.Run(sim.Config{Scheduler: sched2, MaxTotalSteps: 1 << 24})
		if err != nil {
			return err
		}
		if res.Halted {
			return fmt.Errorf("permutation election did not terminate")
		}
		if err := election.CheckElection(res, pids); err != nil {
			return err
		}
	}
	return nil
}
