// Command hierarchy prints Herlihy's wait-free hierarchy with machine
// checked witnesses: for each object and process count, the canonical
// consensus protocol is explored over every schedule (with one crash);
// "solves" means no schedule broke agreement/validity/wait-freedom,
// "fails" comes with a concrete violating schedule. The compare&swap
// row carries the paper's size refinement.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/hierarchy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hierarchy:", err)
		os.Exit(1)
	}
}

func run() error {
	k := flag.Int("k", 4, "compare&swap alphabet size for the refined row")
	maxRuns := flag.Int("maxruns", 200000, "exploration budget per cell")
	flag.Parse()

	fmt.Println("Herlihy hierarchy (claims):")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "object\tconsensus number\tnote")
	for _, row := range hierarchy.Table(*k) {
		n := fmt.Sprint(row.ConsensusNumber)
		if row.ConsensusNumber == hierarchy.Infinity {
			n = "∞"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\n", row.Object, n, row.Note)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	fmt.Println("\nmachine-checked witnesses:")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "object\tn\tverdict\truns\tcounterexample")
	witnesses := []hierarchy.Witness{
		hierarchy.CheckRW(2, *maxRuns),
		hierarchy.CheckTAS(2, *maxRuns),
		hierarchy.CheckTAS(3, *maxRuns),
		hierarchy.CheckFetchAdd(2, *maxRuns),
		hierarchy.CheckFetchAdd(3, *maxRuns),
		hierarchy.CheckQueue(2, *maxRuns),
		hierarchy.CheckQueue(3, *maxRuns),
		hierarchy.CheckCAS(*k, 2, *maxRuns),
		hierarchy.CheckCAS(*k, *k-1, *maxRuns/2),
		hierarchy.CheckStickyBit(3, *maxRuns),
	}
	for _, wt := range witnesses {
		verdict := "solves"
		if !wt.Solves {
			verdict = "fails"
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%d\t%s\n", wt.Object, wt.N, verdict, wt.Runs, wt.Violation)
	}
	return w.Flush()
}
