// Command paperlab regenerates every experiment of EXPERIMENTS.md in
// one run: the reduction census (E1/E2), the election capacity ladder
// (E3/E4/E11), the agent-game bounds and exact maxima (E5/E13), the
// hierarchy witnesses (E6), the emulation anatomy (E7/E8), and the
// universal-construction failure modes (E9). It is the program-shaped
// twin of `go test -bench=.`: same claims, table output.
//
//	go run ./cmd/paperlab            # everything
//	go run ./cmd/paperlab -only e4   # one experiment
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/agents"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/election"
	"repro/internal/explore"
	"repro/internal/hierarchy"
	"repro/internal/objects"
	"repro/internal/profiling"
	"repro/internal/runctx"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/universal"
)

// tunes are the exploration options forwarded to the census-driven
// experiments (E6/E16); set from -prune / -workers / -timeout.
var tunes []explore.Tune

// allowPartial mirrors the -allow-partial flag for the experiment
// bodies: when false, a census that lost subtrees fails the experiment.
var allowPartial bool

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "paperlab:", err)
		os.Exit(1)
	}
}

func run() error {
	only := flag.String("only", "", "run a single experiment: e1, e3, e4, e5, e6, e8, e9, e16, e18")
	workers := flag.Int("workers", 1, "census workers for E6/E16/E18 (0 or 1 sequential, -1 = GOMAXPROCS)")
	prune := flag.Bool("prune", false, "enable state-fingerprint subtree pruning for E6/E16 censuses")
	symmetry := flag.Bool("symmetry", false, "canonicalize census fingerprints under declared process symmetry (implies pruning; protocols without a declared spec degrade to plain pruning with a note)")
	sleepsets := flag.Bool("sleepsets", false, "skip independent-step commutations via the prune table (implies pruning)")
	stepLimit := flag.Int("steplimit", 0, "per-process step budget for censuses: runaway runs become counted step-limit outcomes instead of hanging (0 = sim default)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	timeout := flag.Duration("timeout", 0, "overall deadline: cancel remaining experiments after this long (0 = none)")
	partial := flag.Bool("allow-partial", false, "exit zero even when a census was cancelled or lost subtrees")
	flag.Parse()
	allowPartial = *partial

	ctx, stop := runctx.WithDrain(context.Background(), *timeout)
	defer stop()
	tunes = append(tunes, explore.WithContext(ctx))

	if *prune {
		tunes = append(tunes, explore.WithPrune())
	}
	if *symmetry {
		tunes = append(tunes, explore.WithSymmetry())
	}
	if *sleepsets {
		tunes = append(tunes, explore.WithSleepSets())
	}
	if *workers != 0 && *workers != 1 {
		tunes = append(tunes, explore.WithWorkers(*workers))
	}
	if *stepLimit > 0 {
		tunes = append(tunes, explore.WithStepLimit(*stepLimit))
	}
	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "paperlab:", perr)
		}
	}()

	experiments := []struct {
		id, title string
		fn        func(*tabwriter.Writer) error
	}{
		{"e1", "E1/E2 — reduction census: ≤ (k−1)! distinct decisions", e1},
		{"e3", "E3 — register-alone capacity (Burns–Cruz–Loui)", e3},
		{"e4", "E4/E11 — capacity ladder: alone vs +r/w vs products", e4},
		{"e5", "E5/E13 — Lemma 1.1: bounds and exact adversarial maxima", e5},
		{"e6", "E6 — hierarchy witnesses", e6},
		{"e8", "E7/E8 — emulation anatomy on the cycling workload", e8},
		{"e9", "E9 — universality and its size limits", e9},
		{"e16", "E16 — election degradation vs object-fault budget", e16},
		{"e18", "E18 — reduction soundness: reduced vs unreduced censuses", e18},
	}
	for _, ex := range experiments {
		if *only != "" && !strings.EqualFold(*only, ex.id) {
			continue
		}
		if err := ctx.Err(); err != nil {
			if allowPartial {
				fmt.Printf("── %s ── skipped: %v\n", ex.title, err)
				continue
			}
			return fmt.Errorf("%s: run cancelled before start: %w", ex.id, err)
		}
		fmt.Printf("── %s ──\n", ex.title)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		if err := ex.fn(w); err != nil {
			return fmt.Errorf("%s: %w", ex.id, err)
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func e1(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "k\tm\tbound (k−1)!\tdistinct\tgroups\taudit")
	for _, tc := range []struct{ k, n int }{{3, 112}, {4, 168}, {5, 500}} {
		r := core.NewReduction(core.Config{K: tc.k, Quota: 3, A: core.FirstValueA(tc.k, tc.n)})
		res, err := r.System().Run(sim.Config{Scheduler: sim.Random(1), MaxTotalSteps: 1 << 24, DisableTrace: true})
		if err != nil {
			return err
		}
		rep := r.Analyze(res)
		if len(rep.Errors) > 0 {
			return fmt.Errorf("k=%d: %d emulators failed", tc.k, len(rep.Errors))
		}
		audit := "ok"
		if err := r.Audit(); err != nil {
			audit = err.Error()
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%s\n", tc.k, r.Config().M, rep.MaxLabels, rep.Distinct, rep.Groups, audit)
	}
	return nil
}

func e3(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "k\tcapacity\tverified")
	for k := 3; k <= 6; k++ {
		n := k - 1
		ids := make([]sim.Value, n)
		for i := range ids {
			ids[i] = i
		}
		verified := 0
		for seed := int64(0); seed < 20; seed++ {
			sys := sim.NewSystem()
			cas := objects.NewCAS("cas", k)
			sys.Add(cas)
			for _, p := range election.DirectCAS(cas, n) {
				sys.Spawn(p)
			}
			res, err := sys.Run(sim.Config{Scheduler: sim.Random(seed), DisableTrace: true})
			if err != nil {
				return err
			}
			if err := election.CheckElection(res, ids); err != nil {
				return err
			}
			verified++
		}
		fmt.Fprintf(w, "%d\t%d\t%d schedules\n", k, n, verified)
	}
	return nil
}

func e4(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "k\talone (k−1)\t+r/w (Σ P(k−1,j))\ttwo registers ((k−1)²)")
	for k := 3; k <= 6; k++ {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\n", k, k-1, election.Capacity(k),
			election.MultiRegisterCapacity(k, k))
	}
	return nil
}

func e5(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "m\tk\tbound m^k\texact max\tbest of 100 random")
	for _, mk := range []struct{ m, k int }{{2, 3}, {3, 3}, {4, 3}, {2, 4}, {3, 4}} {
		best := 0
		for seed := int64(0); seed < 100; seed++ {
			g, start, err := agents.RandomRun(mk.m, mk.k, seed, 100000)
			if err != nil {
				return err
			}
			if err := g.VerifyPotentialLaw(start); err != nil {
				return err
			}
			if g.Moves() > best {
				best = g.Moves()
			}
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\n", mk.m, mk.k,
			agents.MoveBound(mk.m, mk.k), agents.ExactLongestRun(mk.m, mk.k), best)
	}
	return nil
}

func e6(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "object\tn\tverdict\tcounterexample")
	for _, wt := range []hierarchy.Witness{
		hierarchy.CheckRW(2, 100000, tunes...),
		hierarchy.CheckTAS(2, 100000, tunes...),
		hierarchy.CheckTAS(3, 100000, tunes...),
		hierarchy.CheckSwap(2, 100000, tunes...),
		hierarchy.CheckQueue(3, 100000, tunes...),
		hierarchy.CheckCAS(4, 3, 50000, tunes...),
		hierarchy.CheckStickyBit(3, 100000, tunes...),
	} {
		verdict := "solves"
		if !wt.Solves {
			verdict = "fails"
		}
		if wt.Partial() {
			// An incomplete census backs neither verdict.
			verdict = "partial"
			if !allowPartial {
				return fmt.Errorf("%s n=%d: census incomplete (cancelled=%v, %d lost subtrees)",
					wt.Object, wt.N, wt.Cancelled, len(wt.Errors))
			}
			for _, e := range wt.Errors {
				fmt.Fprintln(os.Stderr, "paperlab: e6:", e)
			}
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\n", wt.Object, wt.N, verdict, wt.Violation)
	}
	return nil
}

func e8(w *tabwriter.Writer) error {
	r := core.NewReduction(core.Config{K: 3, Quota: 6, A: core.CyclingA(3, 90, 4)})
	res, err := r.System().Run(sim.Config{Scheduler: sim.RoundRobin(), MaxTotalSteps: 1 << 24, DisableTrace: true})
	if err != nil {
		return err
	}
	rep := r.Analyze(res)
	t := rep.TotalStats()
	fmt.Fprintln(w, "branch\tcount")
	fmt.Fprintf(w, "iterations\t%d\n", t.Iterations)
	fmt.Fprintf(w, "suspension batches\t%d\n", t.Suspends)
	fmt.Fprintf(w, "simple ops\t%d\n", t.SimpleOps)
	fmt.Fprintf(w, "rebalances (Fig. 5 releases)\t%d\n", t.Rebalances)
	fmt.Fprintf(w, "in-tree attaches (Fig. 6 l.9)\t%d\n", t.Attaches)
	fmt.Fprintf(w, "tree activations / splits (l.12)\t%d\n", t.Activations)
	fmt.Fprintf(w, "idle waits\t%d\n", t.Idles)
	if err := r.Audit(); err != nil {
		return err
	}
	fmt.Fprintln(w, "audit\tok")
	return nil
}

// e16 sweeps the object-fault budget of the degrading compare&swap
// election and reports how often the registers-only fallback preserved
// safety — the empirical degradation curve of the object's power. The
// censuses are exhaustive (every schedule, every fault placement), so
// the rates are exact; pruning is forced because fault branching
// multiplies the tree.
func e16(w *tabwriter.Writer) error {
	local := append(append([]explore.Tune{}, tunes...), explore.WithPrune())
	crash := []sim.FaultMode{sim.FaultCrash}
	omission := []sim.FaultMode{sim.FaultOmission}
	reset := []sim.FaultMode{sim.FaultReset}
	garble := []sim.FaultMode{sim.FaultGarble}
	all := []sim.FaultMode{sim.FaultCrash, sim.FaultOmission, sim.FaultReset, sim.FaultGarble}
	fmt.Fprintln(w, "k\tn\tfault budget\tmodes\tfaulted runs\tsafety violations\tsafety rate\tliveness losses")
	for _, tc := range []struct {
		k, n, budget int
		modes        []sim.FaultMode
		label        string
	}{
		// n = 2 keeps every census exhaustive; n = 3 fault trees run to
		// billions of schedules and would have to be capped.
		{3, 2, 0, crash, "—"},
		{3, 2, 1, crash, "crash"},
		{3, 2, 1, omission, "omission"},
		{3, 2, 1, reset, "reset"},
		{3, 2, 1, garble, "garble"},
		{3, 2, 1, all, "all four"},
		{3, 2, 2, crash, "crash"},
	} {
		r := election.DegradeCensus(tc.k, tc.n, tc.budget, 20_000_000, tc.modes, local...)
		if len(r.Faulted.Errors) > 0 || r.Faulted.Cancelled {
			for _, e := range r.Faulted.Errors {
				fmt.Fprintln(os.Stderr, "paperlab: e16:", e)
			}
			if !allowPartial {
				return fmt.Errorf("e16: k=%d n=%d budget=%d census incomplete (cancelled=%v, %d lost subtrees)",
					tc.k, tc.n, tc.budget, r.Faulted.Cancelled, len(r.Faulted.Errors))
			}
		}
		if !r.Faulted.Exhaustive {
			if !allowPartial {
				return fmt.Errorf("e16: k=%d n=%d budget=%d census not exhaustive", tc.k, tc.n, tc.budget)
			}
			continue
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%s\t%d\t%d\t%.4f\t%d\n",
			tc.k, tc.n, tc.budget, tc.label,
			r.FaultedRuns, r.SafetyViolations, r.SafetyRate(), r.LivenessLosses)
	}
	return nil
}

// e18 cross-checks the schedule-space reducers against ground truth:
// on both election families (compare&swap and arbitrary RMW) and on
// CAS consensus, the census under symmetry folding, sleep-set credit,
// and their composition must be bit-identical to the unreduced walk,
// while table probes — real replayed executions — shrink. This is the
// reduced-vs-unreduced matrix of EXPERIMENTS.md E18.
func e18(w *tabwriter.Writer) error {
	families := []struct {
		name string
		run  func(t ...explore.Tune) *explore.Census
	}{
		{"election/DirectCAS k=4 n=3", func(t ...explore.Tune) *explore.Census {
			return election.CensusDirect(4, 3, 0, t...)
		}},
		{"election/DirectRMW k=4 n=3", func(t ...explore.Tune) *explore.Census {
			return election.CensusRMW(4, 3, 0, t...)
		}},
		{"consensus/CAS k=4 n=3", func(t ...explore.Tune) *explore.Census {
			return consensus.CensusCAS(4, 3, 0, t...)
		}},
	}
	modes := []struct {
		name  string
		extra []explore.Tune
	}{
		{"unreduced", nil},
		{"prune", []explore.Tune{explore.WithPrune()}},
		{"symmetry", []explore.Tune{explore.WithSymmetry()}},
		{"sleepsets", []explore.Tune{explore.WithSleepSets()}},
		{"sym+sleep", []explore.Tune{explore.WithSymmetry(), explore.WithSleepSets()}},
	}
	fmt.Fprintln(w, "family\tmode\tcomplete\toutcomes\tprobes\tsym hits\tsleep skips\tmatch")
	for _, f := range families {
		var base *explore.Census
		for _, m := range modes {
			local := append(append([]explore.Tune{}, tunes...), m.extra...)
			c := f.run(local...)
			if !c.Exhaustive || c.Cancelled || len(c.Errors) > 0 {
				if !allowPartial {
					return fmt.Errorf("e18: %s/%s census incomplete (exhaustive=%v cancelled=%v, %d errors)",
						f.name, m.name, c.Exhaustive, c.Cancelled, len(c.Errors))
				}
				fmt.Fprintf(w, "%s\t%s\tpartial\t—\t—\t—\t—\tskipped\n", f.name, m.name)
				continue
			}
			probes, symHits, sleepSkips := "—", "—", "—"
			if p := c.Prune; p != nil {
				probes = fmt.Sprint(p.Probes)
				symHits = fmt.Sprint(p.SymmetryHits)
				sleepSkips = fmt.Sprint(p.SleepSkips)
			}
			match := "baseline"
			if base != nil {
				match = "ok"
				if err := sameCounts(c, base); err != nil {
					if !allowPartial {
						return fmt.Errorf("e18: %s/%s diverges from unreduced census: %w", f.name, m.name, err)
					}
					match = "MISMATCH"
				}
			} else {
				base = c
			}
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%s\t%s\t%s\t%s\n",
				f.name, m.name, c.Complete, len(c.Outcomes), probes, symHits, sleepSkips, match)
		}
	}
	return nil
}

// sameCounts reports whether two censuses agree on every number a
// reducer must preserve.
func sameCounts(got, want *explore.Census) error {
	if got.Complete != want.Complete || got.Incomplete != want.Incomplete ||
		got.ViolationRuns != want.ViolationRuns || got.Exhaustive != want.Exhaustive {
		return fmt.Errorf("counts %d/%d viol=%d ex=%v, want %d/%d viol=%d ex=%v",
			got.Complete, got.Incomplete, got.ViolationRuns, got.Exhaustive,
			want.Complete, want.Incomplete, want.ViolationRuns, want.Exhaustive)
	}
	if len(got.Outcomes) != len(want.Outcomes) {
		return fmt.Errorf("outcome histogram %v, want %v", got.Outcomes, want.Outcomes)
	}
	for k, v := range want.Outcomes {
		if got.Outcomes[k] != v {
			return fmt.Errorf("outcome %q × %d, want × %d", k, got.Outcomes[k], v)
		}
	}
	return nil
}

func e9(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "k\tmax processes\tops run\tover-capacity\tbounded cells")
	for k := 3; k <= 5; k++ {
		n := k - 1
		sys := sim.NewSystem()
		u, err := universal.NewUniversal(sys, "ctr", spec.CounterSpec{}, n, k, 0)
		if err != nil {
			return err
		}
		for p := 0; p < n; p++ {
			sess := u.NewSession()
			sys.Spawn(func(e *sim.Env) (sim.Value, error) {
				for j := 0; j < 4; j++ {
					if _, err := sess.Invoke(e, universal.Op{Kind: "add", Args: []sim.Value{1}}); err != nil {
						return nil, err
					}
				}
				return nil, nil
			})
		}
		if _, err := sys.Run(sim.Config{Scheduler: sim.Random(int64(k)), DisableTrace: true}); err != nil {
			return err
		}
		_, overErr := universal.NewUniversal(sim.NewSystem(), "x", spec.CounterSpec{}, k, k, 0)
		over := "allowed?!"
		if overErr != nil {
			over = "refused"
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%s\texhausts (ErrLogExhausted)\n", k, n, n*4, over)
	}
	return nil
}
