// Package runctx wires OS signals and deadlines into the
// context.Context that the exploration engines honor. The contract for
// long censuses: the first SIGINT/SIGTERM cancels the context, so
// engines drain cooperatively at frontier-root granularity, flush a
// resumable checkpoint, and report a partial census marked Cancelled; a
// second signal hard-exits immediately (exit code 130, the shell
// convention for death-by-SIGINT).
package runctx

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// hardExitCode is what a second interrupt exits with: 128+SIGINT, the
// code shells report for an uncaught interrupt.
const hardExitCode = 130

// WithInterrupt returns a child of parent that is cancelled on the
// first SIGINT/SIGTERM; a second signal exits the process immediately.
// stop releases the signal handler (restoring default delivery) and
// cancels the context; defer it.
func WithInterrupt(parent context.Context) (ctx context.Context, stop func()) {
	ctx, cancel := context.WithCancel(parent)
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go relay(sigs, done, cancel, os.Stderr, func() { os.Exit(hardExitCode) })
	return ctx, func() {
		signal.Stop(sigs)
		close(done)
		cancel()
	}
}

// relay is the signal loop behind WithInterrupt, factored out so the
// first-drain/second-die protocol is testable without killing the test
// process.
func relay(sigs <-chan os.Signal, done <-chan struct{}, cancel context.CancelFunc, warn io.Writer, hardExit func()) {
	seen := 0
	for {
		select {
		case <-done:
			return
		case sig := <-sigs:
			seen++
			if seen == 1 {
				fmt.Fprintf(warn, "\n%v: draining workers and flushing checkpoint — interrupt again to exit immediately\n", sig)
				cancel()
				continue
			}
			fmt.Fprintf(warn, "%v: hard exit\n", sig)
			hardExit()
			return // only reached when hardExit is a test stub
		}
	}
}

// WithDrain is the shared context setup for every long-running command
// (cmd/explore, cmd/paperlab, cmd/censusd): interrupt-drained per
// WithInterrupt, with an optional overall deadline per WithTimeout
// (d <= 0 means none). The returned stop releases both; defer it.
func WithDrain(parent context.Context, d time.Duration) (context.Context, func()) {
	ctx, stopSig := WithInterrupt(parent)
	ctx, stopT := WithTimeout(ctx, d)
	return ctx, func() {
		stopT()
		stopSig()
	}
}

// Backoff is a seeded, capped exponential backoff for retrying
// transient failures (a coordinator briefly down, a connection
// refused mid-restart). Delays are jittered deterministically from
// (Seed, key, attempt) into the upper half of the exponential value,
// the same shape the exploration supervisor uses for root retries:
// concurrent retriers spread out, and runs with equal seeds retry at
// identical times — reproducibility all the way into failure handling.
type Backoff struct {
	// Base and Max shape the exponential: attempt k (k >= 1) waits
	// min(Base << (k-1), Max), jittered into [d/2, d]. Zeros mean
	// 50ms / 2s.
	Base, Max time.Duration
	// Seed feeds the jitter.
	Seed int64
}

// Delay is the wait before retry number attempt (1-based) of the
// operation identified by key.
func (b Backoff) Delay(key uint64, attempt int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 1; i < attempt; i++ {
		if d >= max {
			break
		}
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	h := uint64(14695981039346656037) // FNV-1a over (seed, key, attempt)
	for _, v := range [...]uint64{uint64(b.Seed), key, uint64(attempt)} {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= 1099511628211
		}
	}
	return half + time.Duration(h%uint64(half+1))
}

// Sleep waits Delay(key, attempt), returning false early if ctx is
// cancelled — the caller's cue to stop retrying.
func (b Backoff) Sleep(ctx context.Context, key uint64, attempt int) bool {
	t := time.NewTimer(b.Delay(key, attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// WithTimeout adds a deadline to parent when d > 0 and is a no-op
// otherwise, so callers can pass a -timeout flag value straight
// through. The returned stop must be deferred either way.
func WithTimeout(parent context.Context, d time.Duration) (context.Context, func()) {
	if d <= 0 {
		return parent, func() {}
	}
	ctx, cancel := context.WithTimeout(parent, d)
	return ctx, func() { cancel() }
}
