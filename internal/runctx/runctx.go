// Package runctx wires OS signals and deadlines into the
// context.Context that the exploration engines honor. The contract for
// long censuses: the first SIGINT/SIGTERM cancels the context, so
// engines drain cooperatively at frontier-root granularity, flush a
// resumable checkpoint, and report a partial census marked Cancelled; a
// second signal hard-exits immediately (exit code 130, the shell
// convention for death-by-SIGINT).
package runctx

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// hardExitCode is what a second interrupt exits with: 128+SIGINT, the
// code shells report for an uncaught interrupt.
const hardExitCode = 130

// WithInterrupt returns a child of parent that is cancelled on the
// first SIGINT/SIGTERM; a second signal exits the process immediately.
// stop releases the signal handler (restoring default delivery) and
// cancels the context; defer it.
func WithInterrupt(parent context.Context) (ctx context.Context, stop func()) {
	ctx, cancel := context.WithCancel(parent)
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go relay(sigs, done, cancel, os.Stderr, func() { os.Exit(hardExitCode) })
	return ctx, func() {
		signal.Stop(sigs)
		close(done)
		cancel()
	}
}

// relay is the signal loop behind WithInterrupt, factored out so the
// first-drain/second-die protocol is testable without killing the test
// process.
func relay(sigs <-chan os.Signal, done <-chan struct{}, cancel context.CancelFunc, warn io.Writer, hardExit func()) {
	seen := 0
	for {
		select {
		case <-done:
			return
		case sig := <-sigs:
			seen++
			if seen == 1 {
				fmt.Fprintf(warn, "\n%v: draining workers and flushing checkpoint — interrupt again to exit immediately\n", sig)
				cancel()
				continue
			}
			fmt.Fprintf(warn, "%v: hard exit\n", sig)
			hardExit()
			return // only reached when hardExit is a test stub
		}
	}
}

// WithDrain is the shared context setup for every long-running command
// (cmd/explore, cmd/paperlab, cmd/censusd): interrupt-drained per
// WithInterrupt, with an optional overall deadline per WithTimeout
// (d <= 0 means none). The returned stop releases both; defer it.
func WithDrain(parent context.Context, d time.Duration) (context.Context, func()) {
	ctx, stopSig := WithInterrupt(parent)
	ctx, stopT := WithTimeout(ctx, d)
	return ctx, func() {
		stopT()
		stopSig()
	}
}

// WithTimeout adds a deadline to parent when d > 0 and is a no-op
// otherwise, so callers can pass a -timeout flag value straight
// through. The returned stop must be deferred either way.
func WithTimeout(parent context.Context, d time.Duration) (context.Context, func()) {
	if d <= 0 {
		return parent, func() {}
	}
	ctx, cancel := context.WithTimeout(parent, d)
	return ctx, func() { cancel() }
}
