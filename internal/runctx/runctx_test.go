package runctx

import (
	"context"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// fakeSignal satisfies os.Signal for driving relay directly.
type fakeSignal string

func (s fakeSignal) Signal()        {}
func (s fakeSignal) String() string { return string(s) }

func TestRelayFirstDrainsSecondDies(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 2)
	done := make(chan struct{})
	defer close(done)
	exited := make(chan struct{})
	var buf strings.Builder
	go relay(sigs, done, cancel, &buf, func() { close(exited) })

	sigs <- fakeSignal("interrupt")
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("first signal did not cancel the context")
	}
	select {
	case <-exited:
		t.Fatal("first signal hard-exited")
	default:
	}

	sigs <- fakeSignal("interrupt")
	select {
	case <-exited:
	case <-time.After(2 * time.Second):
		t.Fatal("second signal did not hard-exit")
	}
	if !strings.Contains(buf.String(), "draining") {
		t.Fatalf("no drain notice printed: %q", buf.String())
	}
}

func TestWithInterruptSignal(t *testing.T) {
	ctx, stop := WithInterrupt(context.Background())
	defer stop()
	// One real SIGINT to ourselves: must cancel, must not kill the test.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGINT did not cancel the context")
	}
}

func TestWithDrain(t *testing.T) {
	// No deadline when d <= 0; interrupt handling is still armed.
	ctx, stop := WithDrain(context.Background(), 0)
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("WithDrain(0) set a deadline")
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGINT did not cancel the drained context")
	}
	stop()

	// With a deadline, the context expires on its own.
	ctx2, stop2 := WithDrain(context.Background(), 10*time.Millisecond)
	defer stop2()
	select {
	case <-ctx2.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("WithDrain deadline never fired")
	}
}

func TestWithTimeout(t *testing.T) {
	ctx, stop := WithTimeout(context.Background(), 0)
	defer stop()
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("zero timeout set a deadline")
	}
	ctx2, stop2 := WithTimeout(context.Background(), 10*time.Millisecond)
	defer stop2()
	select {
	case <-ctx2.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("timeout never fired")
	}
}
