package runctx

import (
	"context"
	"testing"
	"time"
)

// TestBackoffDelayShape: the exponential doubles from Base, caps at
// Max, and every delay is jittered into [d/2, d].
func TestBackoffDelayShape(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 800 * time.Millisecond, Seed: 42}
	exp := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 800 * time.Millisecond, // capped
	}
	for i, d := range exp {
		got := b.Delay(7, i+1)
		if got < d/2 || got > d {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i+1, got, d/2, d)
		}
	}
	// Zeros mean the 50ms/2s defaults.
	if d := (Backoff{}).Delay(0, 1); d < 25*time.Millisecond || d > 50*time.Millisecond {
		t.Fatalf("default base delay %v outside [25ms, 50ms]", d)
	}
	if d := (Backoff{}).Delay(0, 20); d < time.Second || d > 2*time.Second {
		t.Fatalf("default capped delay %v outside [1s, 2s]", d)
	}
}

// TestBackoffDeterministicJitter: equal (Seed, key, attempt) always
// produces the identical delay — reproducible failure handling — while
// different seeds or keys spread retriers apart.
func TestBackoffDeterministicJitter(t *testing.T) {
	b := Backoff{Base: time.Second, Max: time.Minute, Seed: 1}
	if b.Delay(3, 4) != b.Delay(3, 4) {
		t.Fatal("jitter not deterministic")
	}
	// Across many keys, at least one must land differently (jitter is
	// doing something), and all stay within the envelope.
	base := b.Delay(0, 4)
	varied := false
	for key := uint64(1); key <= 64; key++ {
		d := b.Delay(key, 4)
		if d != base {
			varied = true
		}
		if d < 4*time.Second || d > 8*time.Second {
			t.Fatalf("key %d: delay %v outside [4s, 8s]", key, d)
		}
	}
	if !varied {
		t.Fatal("64 keys produced identical delays; jitter inert")
	}
	s2 := (Backoff{Base: time.Second, Max: time.Minute, Seed: 2}).Delay(0, 4)
	s3 := (Backoff{Base: time.Second, Max: time.Minute, Seed: 3}).Delay(0, 4)
	if s2 == base && s3 == base {
		t.Fatal("seed does not influence jitter")
	}
}

// TestBackoffSleepCancel: Sleep returns false promptly when the context
// dies mid-wait — the retry loop's exit condition.
func TestBackoffSleepCancel(t *testing.T) {
	b := Backoff{Base: time.Hour, Max: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	start := time.Now()
	if b.Sleep(ctx, 0, 1) {
		t.Fatal("Sleep completed despite cancellation")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Sleep did not return promptly on cancel")
	}
	// And true when the wait actually elapses.
	if !(Backoff{Base: time.Millisecond, Max: time.Millisecond}).Sleep(context.Background(), 0, 1) {
		t.Fatal("Sleep returned false without cancellation")
	}
}
