package distcensus

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/explore"
	"repro/internal/sim"
)

// JobBuilder decodes a leased job request into the exploration it
// names: the system builder, resolved engine options, and the per-run
// verdict check. cmd/censusworker supplies one backed by the shared
// censusd request registry, so worker and coordinator reproduce the
// identical exploration from the identical bytes.
type JobBuilder func(req []byte) (explore.Builder, explore.Options, func(*sim.Result) error, error)

// Worker is the distributed-census worker loop: poll the coordinator
// for a lease, explore the leased subtree with heartbeat renewal and
// local checkpointing, deliver the summary, repeat.
//
// Crash safety: before exploring, the worker persists the lease
// (job, root, generation) to Dir, and the exploration itself
// checkpoints completed sub-roots there. A worker killed mid-lease
// and restarted over the same Dir resumes the subtree from its last
// save and delivers under the RECORDED generation — if the lease
// expired meanwhile and the coordinator requeued the item, the
// delivery is rejected as stale and discarded; the worker never
// double-counts, and never loses more than one checkpoint interval of
// work.
type Worker struct {
	// ID names this worker to the coordinator.
	ID string
	// Dir holds in-flight lease records and subtree checkpoints.
	Dir string
	// Client talks to the coordinator.
	Client *Client
	// Build decodes leased job requests.
	Build JobBuilder
	// Poll is the sleep between empty lease polls (0: coordinator's
	// suggestion, else 500ms).
	Poll time.Duration
	// Logf receives operational log lines (default os.Stderr).
	Logf func(format string, args ...any)

	ttl time.Duration
}

// inflightRec is the persisted record of one in-flight lease.
type inflightRec struct {
	JobID      string           `json:"job_id"`
	Root       int              `json:"root"`
	Generation int              `json:"generation"`
	OptionsFP  string           `json:"options_fp"`
	Prefix     []explore.Choice `json:"prefix"`
	Request    json.RawMessage  `json:"request"`
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
		return
	}
	fmt.Fprintf(os.Stderr, "censusworker: "+format+"\n", args...)
}

func (w *Worker) inflightDir() string { return filepath.Join(w.Dir, "inflight") }

func (w *Worker) recPath(jobID string, root int) string {
	return filepath.Join(w.inflightDir(), fmt.Sprintf("%s-%d.json", jobID, root))
}

func (w *Worker) ckPath(jobID string, root int) string {
	return filepath.Join(w.inflightDir(), fmt.Sprintf("%s-%d.ck.json", jobID, root))
}

// saveRec persists an in-flight record atomically (temp + rename).
func (w *Worker) saveRec(rec inflightRec) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	path := w.recPath(rec.JobID, rec.Root)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func (w *Worker) dropRec(jobID string, root int, dropCheckpoint bool) {
	_ = os.Remove(w.recPath(jobID, root))
	if dropCheckpoint {
		_ = os.Remove(w.ckPath(jobID, root))
	}
}

// Run is the worker main loop; it returns when ctx is cancelled.
func (w *Worker) Run(ctx context.Context) error {
	if w.ID == "" {
		host, _ := os.Hostname()
		w.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if err := os.MkdirAll(w.inflightDir(), 0o755); err != nil {
		return err
	}
	reg, err := w.Client.Register(ctx, w.ID)
	if err != nil {
		return fmt.Errorf("register: %w", err)
	}
	w.ttl = time.Duration(reg.LeaseTTLMillis) * time.Millisecond
	poll := w.Poll
	if poll <= 0 {
		poll = time.Duration(reg.PollMillis) * time.Millisecond
	}
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	w.logf("registered as %s (lease ttl %v, poll %v)", w.ID, w.ttl, poll)

	// Resume pass: finish and deliver every lease that was in flight
	// when the previous process died. The recorded generation rides
	// along verbatim — the coordinator's generation guard decides
	// whether the work is still wanted (accepted) or was reassigned
	// while we were dead (stale, discarded).
	w.resumeInflight(ctx)

	for ctx.Err() == nil {
		lease, err := w.Client.Lease(ctx, w.ID)
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			w.logf("lease poll: %v", err)
			sleep(ctx, poll)
			continue
		}
		if lease == nil {
			sleep(ctx, poll)
			continue
		}
		w.execute(ctx, lease, false)
	}
	return ctx.Err()
}

// resumeInflight replays every persisted in-flight lease: resume the
// subtree from its checkpoint, deliver under the recorded generation,
// and drop the local state whatever the verdict.
func (w *Worker) resumeInflight(ctx context.Context) {
	entries, err := os.ReadDir(w.inflightDir())
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".ck.json") || strings.HasSuffix(name, ".tmp") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(w.inflightDir(), name))
		if err != nil {
			continue
		}
		var rec inflightRec
		if err := json.Unmarshal(data, &rec); err != nil {
			w.logf("resume: dropping unreadable in-flight record %s: %v", name, err)
			_ = os.Remove(filepath.Join(w.inflightDir(), name))
			continue
		}
		w.logf("resume: job %s root %d gen %d (in flight when the previous worker died)",
			rec.JobID, rec.Root, rec.Generation)
		lease := &Lease{
			JobID: rec.JobID, Root: rec.Root, Generation: rec.Generation,
			Prefix: rec.Prefix, Request: rec.Request, OptionsFP: rec.OptionsFP,
			TTLMillis: int(w.ttl / time.Millisecond),
		}
		w.execute(ctx, lease, true)
		if ctx.Err() != nil {
			return
		}
	}
}

// execute explores one leased subtree and delivers its summary.
// resumed marks an attempt replayed from a persisted in-flight record:
// its recorded generation may have been superseded while the worker was
// dead, so a gone heartbeat is expected — the attempt still finishes
// and delivers, and the coordinator's generation guard (not a worker
// pre-check) decides whether the result counts. Live attempts keep the
// opposite behavior: a gone heartbeat means the item was reassigned,
// and finishing would only burn cycles on a result known to be stale.
func (w *Worker) execute(ctx context.Context, lease *Lease, resumed bool) {
	rec := inflightRec{
		JobID: lease.JobID, Root: lease.Root, Generation: lease.Generation,
		OptionsFP: lease.OptionsFP, Prefix: lease.Prefix, Request: lease.Request,
	}
	if err := w.saveRec(rec); err != nil {
		w.logf("job %s root %d: persist in-flight record: %v", lease.JobID, lease.Root, err)
	}
	res := ResultRequest{
		WorkerID: w.ID, JobID: lease.JobID, Root: lease.Root, Generation: lease.Generation,
	}

	b, opts, check, err := w.Build(lease.Request)
	if err != nil {
		res.Err = fmt.Sprintf("build: %v", err)
		w.deliver(ctx, res, true)
		return
	}
	// Wrong-options refusal, across processes: exploring under a
	// different effective reduction than the coordinator resolved
	// would corrupt the merge. Refuse and report instead.
	if fp := explore.FingerprintOptions(b, opts); fp != lease.OptionsFP {
		res.Err = fmt.Sprintf("options fingerprint mismatch (worker %q, coordinator %q)", fp, lease.OptionsFP)
		w.deliver(ctx, res, true)
		return
	}

	// Heartbeat renewal, gated on engine progress: a wedged exploration
	// stops beating, renewal stops, the lease expires, and the
	// coordinator requeues the item — the distributed stall watchdog.
	attemptCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var beats atomic64
	revoked := make(chan struct{})
	hbDone := make(chan struct{})
	ttl := time.Duration(lease.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = w.ttl
	}
	go func() {
		defer close(hbDone)
		interval := ttl / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		last := int64(-1)
		for {
			select {
			case <-attemptCtx.Done():
				return
			case <-t.C:
				cur := beats.load()
				if cur == last {
					continue // no progress: let the lease run down
				}
				last = cur
				err := w.Client.Heartbeat(attemptCtx, HeartbeatRequest{
					WorkerID: w.ID, JobID: lease.JobID, Root: lease.Root, Generation: lease.Generation,
				})
				if IsGone(err) {
					if resumed {
						w.logf("job %s root %d gen %d: recorded lease no longer live; finishing anyway (the generation guard settles it)",
							lease.JobID, lease.Root, lease.Generation)
						return
					}
					w.logf("job %s root %d gen %d: lease revoked; abandoning attempt",
						lease.JobID, lease.Root, lease.Generation)
					close(revoked)
					cancel()
					return
				}
				if err != nil && attemptCtx.Err() == nil {
					w.logf("job %s root %d: heartbeat: %v", lease.JobID, lease.Root, err)
				}
			}
		}
	}()

	summary, stats, exploreErr := explore.ExploreSubtree(attemptCtx, b, opts, check, lease.Prefix,
		explore.SubtreeCheckpoint{Path: w.ckPath(lease.JobID, lease.Root), Every: 1, Resume: true},
		beats.bump)
	cancel()
	<-hbDone

	select {
	case <-revoked:
		// The item was reassigned. Keep the subtree checkpoint — a
		// re-lease of the same root resumes from it — but drop the
		// lease record: its generation is dead.
		w.dropRec(lease.JobID, lease.Root, false)
		return
	default:
	}
	if exploreErr != nil {
		if ctx.Err() != nil {
			// Shutdown mid-lease: keep everything; the restarted worker
			// resumes and delivers.
			return
		}
		res.Err = fmt.Sprintf("explore: %v", exploreErr)
		w.deliver(ctx, res, true)
		return
	}
	if stats.Resumed > 0 {
		w.logf("job %s root %d: resumed %d/%d sub-roots from local checkpoint",
			lease.JobID, lease.Root, stats.Resumed, stats.SubRoots)
	}
	res.Summary = summary
	w.deliver(ctx, res, true)
}

// deliver posts a result and logs the verdict; drop clears the local
// in-flight state afterwards (the item is settled either way: counted
// if accepted, someone else's if stale).
func (w *Worker) deliver(ctx context.Context, res ResultRequest, drop bool) {
	status, err := w.Client.Deliver(ctx, res)
	switch {
	case status == ResultStale:
		w.logf("job %s root %d gen %d: result rejected as stale (item was reassigned); discarded",
			res.JobID, res.Root, res.Generation)
	case err != nil:
		if ctx.Err() == nil {
			w.logf("job %s root %d: deliver: %v", res.JobID, res.Root, err)
		}
		return // keep local state: a restart retries the delivery
	case status == ResultDuplicate:
		w.logf("job %s root %d gen %d: duplicate delivery dropped idempotently",
			res.JobID, res.Root, res.Generation)
	default:
		w.logf("job %s root %d gen %d: delivered (%d complete, %d incomplete)",
			res.JobID, res.Root, res.Generation, res.Summary.Complete, res.Summary.Incomplete)
	}
	if drop {
		w.dropRec(res.JobID, res.Root, true)
	}
}

// atomic64 is the heartbeat progress counter shared between the
// exploring goroutine (bump, via the engine beat hook) and the
// heartbeat goroutine (load).
type atomic64 struct{ v atomic.Int64 }

func (a *atomic64) bump()       { a.v.Add(1) }
func (a *atomic64) load() int64 { return a.v.Load() }

func sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
