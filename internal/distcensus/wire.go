// Package distcensus is the wire protocol and worker side of the
// distributed census: a coordinator (internal/censusd) shards an
// exploration's frontier roots into leased work items, remote workers
// (cmd/censusworker) explore the leased subtrees and deliver partial
// censuses, and the coordinator merges them under the bit-identical
// discipline of the local engines.
//
// The robustness core is the lease protocol. Every work item carries a
// generation counter, bumped each time the coordinator requeues the
// item after a lease expiry (worker crash, hang, or partition). A
// delivery is accepted only when its generation is current and the
// item unresolved; a late result from a superseded attempt — a killed
// worker resurrected with its persisted in-flight state — is rejected
// as stale rather than double-counted, the same staleness guard the
// in-process work-stealing pool applies to retried donor attempts.
// Duplicate deliveries of the resolved generation are idempotent.
package distcensus

import (
	"encoding/json"

	"repro/internal/explore"
)

// HTTP paths of the coordinator's distribution API, mounted alongside
// the censusd job API.
const (
	PathRegister  = "/dist/register"
	PathLease     = "/dist/lease"
	PathHeartbeat = "/dist/heartbeat"
	PathResult    = "/dist/result"
)

// RegisterRequest announces a worker to the coordinator. Registration
// is idempotent; workers re-register freely after either side
// restarts.
type RegisterRequest struct {
	WorkerID string `json:"worker_id"`
}

// RegisterReply carries the coordinator's pacing parameters.
type RegisterReply struct {
	// PollMillis is how long a worker should sleep between lease polls
	// that found no work.
	PollMillis int `json:"poll_millis"`
	// LeaseTTLMillis is the lease duration; workers must renew within
	// it or the item is requeued under a new generation.
	LeaseTTLMillis int `json:"lease_ttl_millis"`
}

// LeaseRequest asks for one work item.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
}

// Lease is one leased work item: a subtree root of one job's frontier,
// plus everything a worker needs to reproduce the exploration — the
// full job request (opaque here; the worker's JobBuilder decodes it)
// and the coordinator's resolved options fingerprint, which the worker
// cross-checks before exploring. A 204 response (no JSON body) means
// no work is available.
type Lease struct {
	JobID      string           `json:"job_id"`
	Root       int              `json:"root"`
	Generation int              `json:"generation"`
	Prefix     []explore.Choice `json:"prefix"`
	// Request is the job's census request, verbatim; the worker decodes
	// it with the same registry the coordinator used (censusd.Request).
	Request json.RawMessage `json:"request"`
	// OptionsFP is the coordinator's resolved options fingerprint. The
	// worker recomputes it (explore.FingerprintOptions) and refuses the
	// item on mismatch — exploring under the wrong reduction would
	// corrupt the merge.
	OptionsFP string `json:"options_fp"`
	// TTLMillis is this lease's duration.
	TTLMillis int `json:"ttl_millis"`
}

// HeartbeatRequest renews a lease. The coordinator answers 200 when
// the lease is still current, 409 ("gone") when it was revoked —
// expired and requeued under a new generation, the job settled, or
// the job cancelled — at which point the worker abandons the attempt.
type HeartbeatRequest struct {
	WorkerID   string `json:"worker_id"`
	JobID      string `json:"job_id"`
	Root       int    `json:"root"`
	Generation int    `json:"generation"`
}

// ResultRequest delivers a work item's outcome: the subtree's census
// summary, or Err when the worker could not explore it (build failure,
// options fingerprint mismatch). Deliveries are idempotent per
// (job, root, generation).
type ResultRequest struct {
	WorkerID   string              `json:"worker_id"`
	JobID      string              `json:"job_id"`
	Root       int                 `json:"root"`
	Generation int                 `json:"generation"`
	Summary    explore.RootSummary `json:"summary"`
	Err        string              `json:"err,omitempty"`
}

// Delivery verdicts, in ResultReply.Status.
const (
	// ResultAccepted: the summary was merged; the item is resolved.
	ResultAccepted = "accepted"
	// ResultDuplicate: the item was already resolved with this
	// generation's result; the delivery was dropped idempotently.
	ResultDuplicate = "duplicate"
	// ResultStale: the delivery's generation was superseded (the lease
	// expired and the item was requeued); the result was rejected and
	// NOT counted. Carried on a 409 response.
	ResultStale = "stale"
)

// ResultReply is the coordinator's verdict on a delivery.
type ResultReply struct {
	Status string `json:"status"`
}
