package distcensus

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/runctx"
)

// Client is the worker's HTTP client for the coordinator's
// distribution API. Transient failures — connection refused while the
// coordinator restarts, 5xx, 429/503 shedding — are retried with the
// seeded exponential backoff from internal/runctx; protocol verdicts
// (409 gone/stale) are returned to the caller, never retried.
type Client struct {
	// Base is the coordinator's base URL (http://host:port).
	Base string
	// Backoff shapes transient-error retries.
	Backoff runctx.Backoff
	// MaxAttempts bounds retries per call (0 = 8).
	MaxAttempts int
	// HTTP is the underlying client (nil = a 10s-timeout default).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 10 * time.Second}
}

func (c *Client) attempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 8
}

// errGone marks a 409 verdict: the lease (or delivered generation) was
// superseded. Exposed through IsGone.
type errGone struct{ detail string }

func (e errGone) Error() string { return "gone: " + e.detail }

// IsGone reports whether err is a coordinator 409 — lease revoked or
// result stale. The caller abandons the attempt; nothing was counted.
func IsGone(err error) bool {
	_, ok := err.(errGone)
	return ok
}

// post sends one JSON request with transient-error retry. A nil out
// skips body decoding. ok204 makes a 204 return (false, nil) instead
// of an error — the lease poll's "no work" answer.
func (c *Client) post(ctx context.Context, path string, in, out any, ok204 bool) (bool, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return false, err
	}
	key := fold(path)
	var lastErr error
	for attempt := 1; attempt <= c.attempts(); attempt++ {
		if attempt > 1 && !c.Backoff.Sleep(ctx, key, attempt-1) {
			return false, ctx.Err()
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
		if err != nil {
			return false, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.http().Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return false, ctx.Err()
			}
			lastErr = err // transport error: coordinator down/restarting
			continue
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusNoContent && ok204:
			return false, nil
		case resp.StatusCode == http.StatusOK:
			if out != nil {
				if err := json.Unmarshal(data, out); err != nil {
					return false, fmt.Errorf("distcensus: %s: bad response: %w", path, err)
				}
			}
			return true, nil
		case resp.StatusCode == http.StatusConflict:
			return false, errGone{detail: string(bytes.TrimSpace(data))}
		case resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable:
			lastErr = fmt.Errorf("distcensus: %s: %s", path, resp.Status)
			continue
		default:
			return false, fmt.Errorf("distcensus: %s: %s: %s", path, resp.Status, bytes.TrimSpace(data))
		}
	}
	return false, fmt.Errorf("distcensus: %s: giving up after %d attempts: %w", path, c.attempts(), lastErr)
}

// Register announces the worker; retried until the coordinator answers.
func (c *Client) Register(ctx context.Context, workerID string) (RegisterReply, error) {
	var out RegisterReply
	_, err := c.post(ctx, PathRegister, RegisterRequest{WorkerID: workerID}, &out, false)
	return out, err
}

// Lease polls for one work item; a nil lease means no work right now.
func (c *Client) Lease(ctx context.Context, workerID string) (*Lease, error) {
	var out Lease
	ok, err := c.post(ctx, PathLease, LeaseRequest{WorkerID: workerID}, &out, true)
	if err != nil || !ok {
		return nil, err
	}
	return &out, nil
}

// Heartbeat renews a lease; IsGone(err) means it was revoked.
func (c *Client) Heartbeat(ctx context.Context, hb HeartbeatRequest) error {
	_, err := c.post(ctx, PathHeartbeat, hb, nil, false)
	return err
}

// Deliver posts a work item's result and returns the coordinator's
// verdict. IsGone(err) is the stale rejection: the generation was
// superseded and nothing was counted.
func (c *Client) Deliver(ctx context.Context, res ResultRequest) (string, error) {
	var out ResultReply
	_, err := c.post(ctx, PathResult, res, &out, false)
	if err != nil {
		if IsGone(err) {
			return ResultStale, err
		}
		return "", err
	}
	return out.Status, nil
}

// fold hashes a string into a backoff jitter key (FNV-1a).
func fold(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
