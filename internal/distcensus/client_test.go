package distcensus

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runctx"
)

func fastClient(base string) *Client {
	return &Client{
		Base:    base,
		Backoff: runctx.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
	}
}

// TestClientRetriesTransient: 5xx and 429 answers are retried until the
// coordinator recovers; the eventual 200 wins.
func TestClientRetriesTransient(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			http.Error(w, "restarting", http.StatusServiceUnavailable)
		case 2:
			http.Error(w, "shedding", http.StatusTooManyRequests)
		case 3:
			http.Error(w, "boom", http.StatusInternalServerError)
		default:
			w.Write([]byte(`{"poll_millis":100,"lease_ttl_millis":2000}`))
		}
	}))
	defer ts.Close()

	reg, err := fastClient(ts.URL).Register(context.Background(), "w1")
	if err != nil {
		t.Fatal(err)
	}
	if reg.LeaseTTLMillis != 2000 || calls.Load() != 4 {
		t.Fatalf("reply %+v after %d calls", reg, calls.Load())
	}
}

// TestClientGivesUpAfterMaxAttempts: a coordinator that never recovers
// is bounded, not retried forever.
func TestClientGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := fastClient(ts.URL)
	c.MaxAttempts = 3
	if _, err := c.Register(context.Background(), "w1"); err == nil {
		t.Fatal("no error from a permanently-down coordinator")
	}
	if calls.Load() != 3 {
		t.Fatalf("%d attempts, want 3", calls.Load())
	}
}

// TestClientGoneIsNeverRetried: a 409 is a protocol verdict (lease
// revoked / result stale), surfaced as IsGone on the first answer.
func TestClientGoneIsNeverRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "stale: generation superseded", http.StatusConflict)
	}))
	defer ts.Close()

	c := fastClient(ts.URL)
	err := c.Heartbeat(context.Background(), HeartbeatRequest{WorkerID: "w1"})
	if !IsGone(err) {
		t.Fatalf("409 surfaced as %v, want IsGone", err)
	}
	status, err := c.Deliver(context.Background(), ResultRequest{WorkerID: "w1"})
	if status != ResultStale || !IsGone(err) {
		t.Fatalf("stale delivery: status %q err %v", status, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("%d calls for two verdicts; 409 was retried", calls.Load())
	}
}

// TestClientLeaseNoWork: the 204 lease answer is a nil lease, no error.
func TestClientLeaseNoWork(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()

	l, err := fastClient(ts.URL).Lease(context.Background(), "w1")
	if l != nil || err != nil {
		t.Fatalf("empty poll: lease %+v err %v, want nil/nil", l, err)
	}
}

// TestClientCancelledContextStopsRetrying: cancellation mid-backoff
// ends the loop with the context's error, not a retry exhaustion.
func TestClientCancelledContextStopsRetrying(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL, Backoff: runctx.Backoff{Base: time.Hour, Max: time.Hour}}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	start := time.Now()
	_, err := c.Register(ctx, "w1")
	if err == nil || time.Since(start) > 10*time.Second {
		t.Fatalf("cancel mid-backoff: err %v after %v", err, time.Since(start))
	}
}
