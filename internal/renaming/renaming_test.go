package renaming_test

import (
	"fmt"
	"testing"

	"repro/internal/explore"
	"repro/internal/renaming"
	"repro/internal/sim"
)

func splitterBuilder(n int) explore.Builder {
	return func() *sim.System {
		sys := sim.NewSystem()
		sp := renaming.NewSplitter(sys, "s")
		for i := 0; i < n; i++ {
			i := i
			sys.Spawn(func(e *sim.Env) (sim.Value, error) {
				return sp.Enter(e, fmt.Sprintf("id%d", i)), nil
			})
		}
		return sys
	}
}

// TestSplitterPropertiesExhaustive checks the three splitter laws on
// every schedule (with one crash) for 2 and 3 entrants: at most one
// stop; not all right; not all down.
func TestSplitterPropertiesExhaustive(t *testing.T) {
	for n := 1; n <= 3; n++ {
		c := explore.Run(splitterBuilder(n), explore.Options{MaxCrashes: 1}, func(res *sim.Result) error {
			stops, rights, downs, decided := 0, 0, 0, 0
			for _, id := range res.Decided() {
				decided++
				switch res.Values[id].(renaming.Direction) {
				case renaming.Stop:
					stops++
				case renaming.Right:
					rights++
				case renaming.Down:
					downs++
				}
			}
			if stops > 1 {
				return fmt.Errorf("%d stops", stops)
			}
			// The laws quantify over entrants; with crashes, decided
			// processes are a subset, so compare against n.
			if rights == n {
				return fmt.Errorf("all %d went right", n)
			}
			if downs == n {
				return fmt.Errorf("all %d went down", n)
			}
			return nil
		})
		if !c.Exhaustive {
			t.Fatalf("n=%d: not exhaustive", n)
		}
		if len(c.Violations) != 0 {
			t.Errorf("n=%d: splitter law violated on %s", n,
				explore.FormatSchedule(c.Violations[0].Schedule))
		}
	}
}

func TestSplitterSoloStops(t *testing.T) {
	sys := sim.NewSystem()
	sp := renaming.NewSplitter(sys, "s")
	sys.Spawn(func(e *sim.Env) (sim.Value, error) {
		return sp.Enter(e, "me"), nil
	})
	res, err := sys.Run(sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != renaming.Stop {
		t.Errorf("solo entrant got %v, want stop", res.Values[0])
	}
}

func ids(n int) []sim.Value {
	out := make([]sim.Value, n)
	for i := range out {
		out[i] = fmt.Sprintf("id%d", i)
	}
	return out
}

// TestGridNamesUniqueExhaustive: every schedule of 2-process renaming
// hands out distinct names within the n(n+1)/2 space.
func TestGridNamesUniqueExhaustive(t *testing.T) {
	n := 2
	b := func() *sim.System {
		sys := sim.NewSystem()
		for _, p := range renaming.Protocol(sys, "g", ids(n)) {
			sys.Spawn(p)
		}
		return sys
	}
	c := explore.Run(b, explore.Options{MaxCrashes: 1}, func(res *sim.Result) error {
		return checkNames(res, n)
	})
	if !c.Exhaustive {
		t.Fatal("not exhaustive")
	}
	if len(c.Violations) != 0 {
		t.Errorf("violation on %s", explore.FormatSchedule(c.Violations[0].Schedule))
	}
}

func checkNames(res *sim.Result, n int) error {
	seen := make(map[int]bool)
	for _, id := range res.Decided() {
		name := res.Values[id].(int)
		if name < 0 || name >= renaming.NameSpace(n) {
			return fmt.Errorf("name %d outside 0..%d", name, renaming.NameSpace(n)-1)
		}
		if seen[name] {
			return fmt.Errorf("name %d acquired twice", name)
		}
		seen[name] = true
	}
	return nil
}

// TestGridNamesUniqueRandom covers larger grids under random schedules
// and crashes; renaming must stay wait-free (bounded steps) throughout.
func TestGridNamesUniqueRandom(t *testing.T) {
	for _, n := range []int{3, 4, 6} {
		for seed := int64(0); seed < 25; seed++ {
			sys := sim.NewSystem()
			for _, p := range renaming.Protocol(sys, "g", ids(n)) {
				sys.Spawn(p)
			}
			cfg := sim.Config{
				Scheduler: sim.Random(seed),
				// A walk visits at most 2(n−1)+1 splitters, 4 steps each.
				MaxStepsPerProc: 8*n + 8,
			}
			if seed%3 == 0 {
				cfg.Faults = sim.RandomCrashes(seed, 0.1, 2)
			}
			res, err := sys.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, perr := range res.Errors {
				if perr != nil && !res.Crashed[i] {
					t.Errorf("n=%d seed=%d: proc %d failed: %v", n, seed, i, perr)
				}
			}
			if err := checkNames(res, n); err != nil {
				t.Errorf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestNameSpace(t *testing.T) {
	want := map[int]int{1: 1, 2: 3, 3: 6, 4: 10, 8: 36}
	for n, ns := range want {
		if got := renaming.NameSpace(n); got != ns {
			t.Errorf("NameSpace(%d) = %d, want %d", n, got, ns)
		}
	}
}
