// Package renaming implements wait-free one-shot renaming from
// read/write registers: Moir–Anderson splitter grids. n processes with
// arbitrary identities acquire distinct names from a space of
// n(n+1)/2 — entirely wait-free, entirely read/write.
//
// Why it lives in this repository: the election experiments show that
// one compare&swap-(k) plus read/write registers elects only boundedly
// many processes. Renaming delimits the boundary from the other side —
// read/write registers alone can shrink an unbounded identity space to
// O(n²) names wait-free, so identities are never the obstacle; what the
// paper's bounds measure is the price of symmetry-breaking down to ONE
// name, which read/write memory cannot do at all (consensus number 1)
// and a bounded compare&swap can do only for boundedly many processes.
package renaming

import (
	"fmt"

	"repro/internal/registers"
	"repro/internal/sim"
)

// Direction is a splitter outcome.
type Direction int

// Splitter outcomes.
const (
	Stop Direction = iota + 1
	Right
	Down
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case Stop:
		return "stop"
	case Right:
		return "right"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Splitter is the Lamport/Moir–Anderson wait-free splitter: of the
// processes that enter, at most one stops, not all go right, and not
// all go down. Built from two multi-writer registers; three or four
// shared steps per call.
type Splitter struct {
	x *registers.MWMR
	y *registers.MWMR
}

// NewSplitter registers a splitter's two cells on sys.
func NewSplitter(sys *sim.System, name string) *Splitter {
	s := &Splitter{
		x: registers.NewMWMR(name+".x", nil),
		y: registers.NewMWMR(name+".y", false),
	}
	sys.Add(s.x)
	sys.Add(s.y)
	return s
}

// Enter runs the splitter for the calling process with its identity.
func (s *Splitter) Enter(e *sim.Env, id sim.Value) Direction {
	s.x.Write(e, id)
	if s.y.Read(e).(bool) {
		return Right
	}
	s.y.Write(e, true)
	if s.x.Read(e) == id {
		return Stop
	}
	return Down
}

// Grid is a triangular Moir–Anderson splitter grid assigning names from
// {0, …, n(n+1)/2 − 1} to at most n processes.
type Grid struct {
	n         int
	splitters map[[2]int]*Splitter
}

// NameSpace returns the grid's name-space size, n(n+1)/2.
func NameSpace(n int) int { return n * (n + 1) / 2 }

// NewGrid registers the splitters of an n-process grid on sys.
func NewGrid(sys *sim.System, name string, n int) *Grid {
	g := &Grid{n: n, splitters: make(map[[2]int]*Splitter, NameSpace(n))}
	for r := 0; r < n; r++ {
		for d := 0; d+r < n; d++ {
			g.splitters[[2]int{r, d}] = NewSplitter(sys, fmt.Sprintf("%s[%d,%d]", name, r, d))
		}
	}
	return g
}

// nameOf maps grid coordinates to a name in {0..n(n+1)/2−1}.
func (g *Grid) nameOf(r, d int) int {
	// Diagonal layout: cell (r,d) sits on diagonal r+d.
	diag := r + d
	return diag*(diag+1)/2 + r
}

// Acquire walks the grid from (0,0) — right on Right, down on Down —
// and returns the name of the splitter where the caller stopped.
// At most n−1 processes ever leave a splitter in each direction, so a
// walk ends within the grid: a process reaching a boundary cell stops
// there by the splitter properties; if the walk somehow escapes, an
// error reports the broken invariant.
func (g *Grid) Acquire(e *sim.Env, id sim.Value) (int, error) {
	r, d := 0, 0
	for {
		sp, ok := g.splitters[[2]int{r, d}]
		if !ok {
			return 0, fmt.Errorf("renaming: walk escaped the grid at (%d,%d) — splitter invariant broken", r, d)
		}
		switch sp.Enter(e, id) {
		case Stop:
			return g.nameOf(r, d), nil
		case Right:
			r++
		case Down:
			d++
		}
	}
}

// Protocol returns n programs in which process i acquires a name for
// identity ids[i] and decides it.
func Protocol(sys *sim.System, name string, ids []sim.Value) []sim.Program {
	g := NewGrid(sys, name, len(ids))
	progs := make([]sim.Program, len(ids))
	for i := range progs {
		i := i
		progs[i] = func(e *sim.Env) (sim.Value, error) {
			nm, err := g.Acquire(e, ids[i])
			if err != nil {
				return nil, err
			}
			return nm, nil
		}
	}
	return progs
}
