package core_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/objects"
	"repro/internal/sim"
)

// graphOf builds an ExcessGraph over k symbols with explicit weights.
func graphOf(k int, weights map[core.Edge]int) *core.ExcessGraph {
	return &core.ExcessGraph{K: k, W: weights}
}

func TestExcessGraphFromViewAndHistory(t *testing.T) {
	root := core.RootLabel()
	v := viewOf(3, core.Page{Suspensions: []core.Suspension{
		{VProc: 0, Edge: core.Edge{From: 0, To: 1}, Label: root},
		{VProc: 1, Edge: core.Edge{From: 0, To: 1}, Label: root},
		{VProc: 2, Edge: core.Edge{From: 1, To: 0}, Label: root},
	}})
	h := &core.History{Label: root, Seq: syms(0, 1, 0)}
	g := core.NewExcessGraph(v, root, h)
	if got := g.Weight(0, 1); got != 1 { // 2 suspended − 1 transition
		t.Errorf("w(⊥→0) = %d, want 1", got)
	}
	if got := g.Weight(1, 0); got != 0 { // 1 suspended − 1 transition
		t.Errorf("w(0→⊥) = %d, want 0", got)
	}
}

func TestCycleWidth(t *testing.T) {
	g := graphOf(4, map[core.Edge]int{
		{From: 0, To: 1}: 5,
		{From: 1, To: 0}: 3,
		{From: 1, To: 2}: 7,
		{From: 2, To: 0}: 7,
	})
	// Cycle through 0 and 1 directly: min(5,3) = 3. Via 2: 0→1→2→0 has
	// min(5,7,7) = 5. The best cycle through both 0 and 1 is width 5.
	w, ok := g.CycleWidth(0, 1)
	if !ok || w != 5 {
		t.Errorf("CycleWidth(0,1) = %d,%v, want 5,true", w, ok)
	}
	// No cycle through 3 at all.
	if _, ok := g.CycleWidth(0, 3); ok {
		t.Error("CycleWidth found a cycle through an isolated node")
	}
}

func TestCycleWidthSelfCycle(t *testing.T) {
	g := graphOf(3, map[core.Edge]int{
		{From: 0, To: 1}: 2,
		{From: 1, To: 0}: 4,
	})
	w, ok := g.CycleWidth(0, 0)
	if !ok || w != 2 {
		t.Errorf("CycleWidth(0,0) = %d,%v, want 2,true", w, ok)
	}
	lonely := graphOf(3, map[core.Edge]int{{From: 0, To: 1}: 2})
	if _, ok := lonely.CycleWidth(0, 0); ok {
		t.Error("self cycle found with no return edge")
	}
}

func TestPath(t *testing.T) {
	g := graphOf(4, map[core.Edge]int{
		{From: 0, To: 1}: 1,
		{From: 1, To: 2}: 2,
		{From: 0, To: 2}: 5,
		{From: 2, To: 3}: 5,
	})
	// At min weight 5 the only route 0→3 is via 2.
	path, ok := g.Path(0, 3, 5)
	if !ok || !reflect.DeepEqual(path, syms(2)) {
		t.Errorf("Path(0,3,5) = %v,%v, want [2],true", path, ok)
	}
	// Direct edge yields an empty intermediate list.
	path, ok = g.Path(0, 2, 5)
	if !ok || len(path) != 0 {
		t.Errorf("Path(0,2,5) = %v,%v, want [],true", path, ok)
	}
	if _, ok := g.Path(3, 0, 1); ok {
		t.Error("Path found a route against edge directions")
	}
	if _, ok := g.Path(0, 3, 6); ok {
		t.Error("Path ignored the weight threshold")
	}
}

func TestThreshold(t *testing.T) {
	// Σ_{g=1..D} g·m^g for m=3: D=0→0, D=1→3, D=2→3+2·9=21, D=3→21+3·27=102.
	tests := []struct{ m, d, want int }{
		{3, 0, 0}, {3, 1, 3}, {3, 2, 21}, {3, 3, 102}, {2, 2, 10},
	}
	for _, tt := range tests {
		if got := core.Threshold(tt.m, tt.d); got != tt.want {
			t.Errorf("Threshold(%d,%d) = %d, want %d", tt.m, tt.d, got, tt.want)
		}
	}
}

func TestAlpha(t *testing.T) {
	// α_x = Σ_{i=2..x} m^i for m=2: α_1=0, α_2=4, α_3=12, α_4=28.
	tests := []struct{ m, x, want int }{
		{2, 1, 0}, {2, 2, 4}, {2, 3, 12}, {2, 4, 28}, {3, 3, 36},
	}
	for _, tt := range tests {
		if got := core.Alpha(tt.m, tt.x); got != tt.want {
			t.Errorf("Alpha(%d,%d) = %d, want %d", tt.m, tt.x, got, tt.want)
		}
	}
}

func TestSCCs(t *testing.T) {
	g := graphOf(4, map[core.Edge]int{
		{From: 0, To: 1}: 5,
		{From: 1, To: 0}: 5,
		{From: 2, To: 3}: 1,
		{From: 3, To: 2}: 1,
		{From: 1, To: 2}: 9,
	})
	all := []objects.Symbol{0, 1, 2, 3}
	comps := g.SCCs(all, 1)
	if len(comps) != 2 {
		t.Fatalf("SCCs at ≥1: %v, want 2 components", comps)
	}
	// At threshold 5 the {2,3} pair dissolves into singletons.
	comps = g.SCCs(all, 5)
	if len(comps) != 3 {
		t.Errorf("SCCs at ≥5: %v, want 3 components", comps)
	}
}

func TestStableComponents(t *testing.T) {
	k, m := 4, 2
	// A strongly connected pair at huge weight: stable and (being a
	// 2-node component) super stable by definition.
	g := graphOf(k, map[core.Edge]int{
		{From: 0, To: 1}: 1000,
		{From: 1, To: 0}: 1000,
	})
	comp := []objects.Symbol{0, 1}
	if !g.IsStable(comp, k, m) {
		t.Error("high-weight 2-cycle not stable")
	}
	if !g.IsSuperStable(comp, k, m) {
		t.Error("2-node component not super stable")
	}
	// Singletons are always stable.
	if !g.IsStable([]objects.Symbol{2}, k, m) {
		t.Error("singleton not stable")
	}
	// A barely-connected 3-node ring fails stability at the higher
	// thresholds: it splits into 3 singletons where at most 2 parts are
	// allowed.
	weak := graphOf(k, map[core.Edge]int{
		{From: 0, To: 1}: 1,
		{From: 1, To: 2}: 1,
		{From: 2, To: 0}: 1,
	})
	if weak.IsStable([]objects.Symbol{0, 1, 2}, k, m) {
		t.Error("weight-1 3-ring reported stable")
	}
}

func TestEmulationStateIsStableUnderFirstValue(t *testing.T) {
	// E7: after a FirstValueA emulation, in every group's excess graph
	// the component containing the used symbols keeps enough spare
	// suspensions to be declared stable per Definition 2 — the shape of
	// Lemma 1.2's point 3.
	r := core.NewReduction(core.Config{K: 3, Quota: 6, A: core.FirstValueA(3, 120)})
	rep := runReduction(t, r, sim.RoundRobin())
	if len(rep.Errors) != 0 {
		t.Fatalf("errors:\n%s", core.DescribeReport(rep))
	}
	v := r.FinalView()
	for _, l := range v.MaximalLabels() {
		h := core.ComputeHistory(v, l)
		g := core.NewExcessGraph(v, l, h)
		for _, comp := range g.SCCs(syms(0, 1, 2), 1) {
			if !g.IsStable(comp, 3, r.Config().M) {
				t.Errorf("label %s: component %v not stable", l, comp)
			}
		}
	}
}
