package core_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/objects"
	"repro/internal/sim"
)

// viewOf builds a View from explicit pages.
func viewOf(k int, pages ...core.Page) *core.View {
	cells := make([]sim.Value, len(pages))
	for i, p := range pages {
		p.Em = i
		cells[i] = p
	}
	return core.NewView(cells, k)
}

func syms(xs ...int) []objects.Symbol {
	out := make([]objects.Symbol, len(xs))
	for i, x := range xs {
		out[i] = objects.Symbol(x)
	}
	return out
}

func TestComputeHistoryEmptyTree(t *testing.T) {
	v := viewOf(3, core.Page{})
	h := core.ComputeHistory(v, core.RootLabel())
	if !reflect.DeepEqual(h.Seq, syms(0)) {
		t.Errorf("history = %v, want [⊥]", h.Seq)
	}
	if h.CS() != objects.Bottom {
		t.Errorf("cs = %v", h.CS())
	}
	if h.Rightmost != core.TreeRoot || h.RightmostDepth != 0 {
		t.Errorf("rightmost = %v depth %d", h.Rightmost, h.RightmostDepth)
	}
}

func TestComputeHistoryChain(t *testing.T) {
	// Tree t_⊥1 with a chain root(1) → ⊥ → 1 (the ping-pong shape the
	// cycling algorithm produces).
	root := core.RootLabel()
	l := root.Extend(1)
	n1 := core.TreeNode{ID: core.NodeID{Em: 0, Seq: 0}, Tree: l, Parent: core.TreeRoot, Symbol: 0}
	n2 := core.TreeNode{ID: core.NodeID{Em: 0, Seq: 1}, Tree: l, Parent: n1.ID, Symbol: 1}
	v := viewOf(3, core.Page{Nodes: []core.TreeNode{n1, n2}, ActiveTrees: []core.Label{l}})
	h := core.ComputeHistory(v, l)
	want := syms(0, 1, 0, 1) // t_⊥ renders ⊥; t_⊥1 renders 1, ⊥, 1 cut at leaf
	if !reflect.DeepEqual(h.Seq, want) {
		t.Errorf("history = %v, want %v", h.Seq, want)
	}
	if h.Rightmost != n2.ID || h.RightmostDepth != 2 {
		t.Errorf("rightmost = %v depth %d, want %v depth 2", h.Rightmost, h.RightmostDepth, n2.ID)
	}
}

func TestComputeHistorySiblingsAndPaths(t *testing.T) {
	// Root(1) with two children: 2 (fully traversed, with ToParent path
	// [0]) and ⊥ (rightmost, with FromParent [2]).
	l := core.RootLabel().Extend(1)
	c1 := core.TreeNode{
		ID: core.NodeID{Em: 0, Seq: 0}, Tree: l, Parent: core.TreeRoot,
		Symbol: 2, ToParent: syms(0),
	}
	c2 := core.TreeNode{
		ID: core.NodeID{Em: 1, Seq: 0}, Tree: l, Parent: core.TreeRoot,
		Symbol: 0, FromParent: syms(2),
	}
	v := viewOf(4, core.Page{Nodes: []core.TreeNode{c1}, ActiveTrees: []core.Label{l}}, core.Page{Nodes: []core.TreeNode{c2}})
	h := core.ComputeHistory(v, l)
	// t_⊥: ⊥. t_⊥1: enter root 1; child c1: 2, leave via ToParent 0,
	// return to root 1; child c2 (rightmost): FromParent 2, then ⊥. Cut.
	want := syms(0, 1, 2, 0, 1, 2, 0)
	if !reflect.DeepEqual(h.Seq, want) {
		t.Errorf("history = %v, want %v", h.Seq, want)
	}
	if h.Rightmost != c2.ID {
		t.Errorf("rightmost = %v, want %v", h.Rightmost, c2.ID)
	}
}

func TestComputeHistoryMultiTreePath(t *testing.T) {
	// Path t_⊥ → t_⊥2 → t_⊥21; middle tree has one in-tree node.
	l1 := core.RootLabel().Extend(2)
	l2 := l1.Extend(1)
	mid := core.TreeNode{ID: core.NodeID{Em: 0, Seq: 0}, Tree: l1, Parent: core.TreeRoot, Symbol: 0}
	v := viewOf(4, core.Page{
		Nodes:       []core.TreeNode{mid},
		ActiveTrees: []core.Label{l1, l2},
	})
	h := core.ComputeHistory(v, l2)
	// t_⊥: ⊥ | t_⊥2 full: 2, ⊥(child), 2(return) | t_⊥21: 1 (root, cut).
	want := syms(0, 2, 0, 2, 1)
	if !reflect.DeepEqual(h.Seq, want) {
		t.Errorf("history = %v, want %v", h.Seq, want)
	}
}

func TestExtendLabelFollowsActivePath(t *testing.T) {
	root := core.RootLabel()
	l1 := root.Extend(2)
	l11 := l1.Extend(1)
	l2 := root.Extend(1)
	v := viewOf(4, core.Page{ActiveTrees: []core.Label{l1, l11, l2}})
	// From the root, the smallest child symbol wins: 1 (l2), a leaf.
	if got := core.ExtendLabel(v, root); got != l2 {
		t.Errorf("ExtendLabel(root) = %s, want %s", got, l2)
	}
	// From l1, the only extension is l11.
	if got := core.ExtendLabel(v, l1); got != l11 {
		t.Errorf("ExtendLabel(%s) = %s, want %s", l1, got, l11)
	}
	// A leaf stays put.
	if got := core.ExtendLabel(v, l11); got != l11 {
		t.Errorf("ExtendLabel(%s) = %s, want unchanged", l11, got)
	}
}

func TestMaximalLabels(t *testing.T) {
	root := core.RootLabel()
	l1 := root.Extend(1)
	l12 := l1.Extend(2)
	l2 := root.Extend(2)
	v := viewOf(4, core.Page{ActiveTrees: []core.Label{l1, l12, l2}})
	got := v.MaximalLabels()
	if len(got) != 2 {
		t.Fatalf("maximal labels = %v, want 2", got)
	}
	if got[0] != l12 && got[1] != l12 {
		t.Errorf("l12 missing from %v", got)
	}
}

func TestTransitions(t *testing.T) {
	trans := core.Transitions(syms(0, 1, 0, 2))
	want := []core.Edge{{From: 0, To: 1}, {From: 1, To: 0}, {From: 0, To: 2}}
	if !reflect.DeepEqual(trans, want) {
		t.Errorf("Transitions = %v, want %v", trans, want)
	}
	if core.Transitions(syms(0)) != nil {
		t.Error("single-symbol history has transitions")
	}
}

func TestNodePath(t *testing.T) {
	l := core.RootLabel().Extend(1)
	a := core.TreeNode{ID: core.NodeID{Em: 0, Seq: 0}, Tree: l, Parent: core.TreeRoot, Symbol: 0}
	b := core.TreeNode{ID: core.NodeID{Em: 0, Seq: 1}, Tree: l, Parent: a.ID, Symbol: 2}
	v := viewOf(4, core.Page{Nodes: []core.TreeNode{a, b}, ActiveTrees: []core.Label{l}})
	path := core.NodePath(v, l, b.ID)
	if len(path) != 2 || path[0].ID != b.ID || path[1].ID != a.ID {
		t.Errorf("NodePath = %v", path)
	}
}

func TestSuspendedEverFiltersLabels(t *testing.T) {
	root := core.RootLabel()
	l1 := root.Extend(1)
	l2 := root.Extend(2)
	v := viewOf(3, core.Page{Suspensions: []core.Suspension{
		{VProc: 0, Edge: core.Edge{From: 0, To: 1}, Label: root},
		{VProc: 1, Edge: core.Edge{From: 0, To: 1}, Label: l1},
		{VProc: 2, Edge: core.Edge{From: 0, To: 1}, Label: l2},
	}})
	ever := v.SuspendedEver(l1)
	if ever[core.Edge{From: 0, To: 1}] != 2 {
		t.Errorf("SuspendedEver(l1) = %v, want 2 on ⊥→0 (root and l1, not l2)", ever)
	}
}
