package core

import (
	"sort"

	"repro/internal/objects"
)

// ExtendLabel implements the side effect of ComputeHistory's lines 1–2
// (Figure 4): if the emulator's current tree t_l is no longer a leaf of
// T (other emulators activated child trees), the label is pushed down
// the longest active path extending it. Ties — several children active
// — break toward the smallest symbol, a deterministic choice the paper
// leaves free. Moving down corresponds to the emulator's processes
// fail-stopping in the abandoned sibling runs, which is legal.
func ExtendLabel(v *View, l Label) Label {
	active := v.ActiveTrees()
	for {
		extended := false
		// Children of l in T, smallest symbol first.
		var childSyms []objects.Symbol
		for cand := range active {
			if len(cand) == len(l)+1 && cand.HasPrefix(l) {
				childSyms = append(childSyms, cand.Last())
			}
		}
		if len(childSyms) > 0 {
			sort.Slice(childSyms, func(i, j int) bool { return childSyms[i] < childSyms[j] })
			l = l.Extend(childSyms[0])
			extended = true
		}
		if !extended {
			return l
		}
	}
}

// treeIndex organizes a small tree's nodes for rendering.
type treeIndex struct {
	children map[NodeID][]TreeNode
}

func indexTree(nodes []TreeNode) *treeIndex {
	ti := &treeIndex{children: make(map[NodeID][]TreeNode, len(nodes))}
	for _, n := range nodes {
		ti.children[n.Parent] = append(ti.children[n.Parent], n)
	}
	// Input order (emulator, seq) is already deterministic; preserve it.
	return ti
}

// renderFull emits the complete DFS traversal of the subtree rooted at
// (sym, id): FromParent ++ sym ++ for each child (child-render ++ sym)
// ++ ToParent — exactly Figure 4's three emission rules.
func (ti *treeIndex) renderFull(sym objects.Symbol, id NodeID, from, to []objects.Symbol, out []objects.Symbol) []objects.Symbol {
	out = append(out, from...)
	out = append(out, sym)
	for _, c := range ti.children[id] {
		out = ti.renderFull(c.Symbol, c.ID, c.FromParent, c.ToParent, out)
		out = append(out, sym)
	}
	out = append(out, to...)
	return out
}

// renderToRightmost emits the DFS traversal cut at the rightmost leaf
// (Figure 4, lines 9–10): descend, fully rendering all children but the
// last, and stop after emitting the rightmost leaf's symbol.
func (ti *treeIndex) renderToRightmost(sym objects.Symbol, id NodeID, from []objects.Symbol, out []objects.Symbol) ([]objects.Symbol, NodeID, int) {
	out = append(out, from...)
	out = append(out, sym)
	kids := ti.children[id]
	if len(kids) == 0 {
		return out, id, 0
	}
	for _, c := range kids[:len(kids)-1] {
		out = ti.renderFull(c.Symbol, c.ID, c.FromParent, c.ToParent, out)
		out = append(out, sym)
	}
	last := kids[len(kids)-1]
	res, leaf, depth := ti.renderToRightmost(last.Symbol, last.ID, last.FromParent, out)
	return res, leaf, depth + 1
}

// History is the result of ComputeHistory: the symbol sequence the
// compare&swap register went through in the run labeled by Label, plus
// the identity and depth of the rightmost leaf (the node "containing
// cs", Figure 6 line 5).
type History struct {
	Label Label
	Seq   []objects.Symbol
	// Rightmost is the rightmost leaf of the last tree: the node whose
	// visit ends the history. For an empty tree it is TreeRoot with
	// depth 0 (cs is the tree's root symbol).
	Rightmost      NodeID
	RightmostDepth int
}

// CS returns the current compare&swap value: the last history symbol.
func (h *History) CS() objects.Symbol { return h.Seq[len(h.Seq)-1] }

// ComputeHistory renders the history of the run labeled l (Figure 4):
// the concatenation of the full DFS traversals of every small tree on
// the path from t_⊥ to t_l, with the last tree cut at its rightmost
// leaf. Each tree's implicit root node carries the tree's last label
// symbol; the jump from one tree's root to the next tree's root symbol
// is the first-use transition that created the child tree.
func ComputeHistory(v *View, l Label) *History {
	syms := l.Symbols()
	var seq []objects.Symbol
	var rm NodeID = TreeRoot
	rmDepth := 0
	for i := 1; i <= len(syms); i++ {
		tree := l[:i]
		rootSym := syms[i-1]
		ti := indexTree(v.TreeNodes(tree))
		if i < len(syms) {
			seq = ti.renderFull(rootSym, TreeRoot, nil, nil, seq)
		} else {
			seq, rm, rmDepth = ti.renderToRightmost(rootSym, TreeRoot, nil, seq)
		}
	}
	return &History{Label: l, Seq: seq, Rightmost: rm, RightmostDepth: rmDepth}
}

// NodePath returns the chain of nodes from the given node up to (and
// excluding) TreeRoot within tree l, starting at the node itself.
func NodePath(v *View, tree Label, id NodeID) []TreeNode {
	byID := make(map[NodeID]TreeNode)
	for _, n := range v.TreeNodes(tree) {
		byID[n.ID] = n
	}
	var out []TreeNode
	for id != TreeRoot {
		n, ok := byID[id]
		if !ok {
			return out
		}
		out = append(out, n)
		id = n.Parent
	}
	return out
}

// UsedSymbols returns the set of symbols occurring in the history.
func UsedSymbols(h *History) map[objects.Symbol]bool {
	out := make(map[objects.Symbol]bool, len(h.Seq))
	for _, s := range h.Seq {
		out[s] = true
	}
	return out
}
