package core

import (
	"sort"

	"repro/internal/objects"
)

// ExcessGraph is the complete directed graph over Σ whose edge weights
// count the suspended v-processes available to pay for future history
// transitions: w(a→b) = (#v-processes ever suspended on c&s(a→b) in
// this run) − (#a→b transitions in the history). Figure 6 line 4
// computes exactly this (suspended-unreleased + successful = ever
// suspended). A positive weight means the run can still afford that
// transition.
type ExcessGraph struct {
	K int
	W map[Edge]int
}

// NewExcessGraph computes the excess graph for the run labeled l with
// history h from view v.
func NewExcessGraph(v *View, l Label, h *History) *ExcessGraph {
	g := &ExcessGraph{K: v.K, W: v.SuspendedEver(l)}
	for _, t := range Transitions(h.Seq) {
		g.W[t]--
	}
	return g
}

// Weight returns w(a→b).
func (g *ExcessGraph) Weight(a, b objects.Symbol) int { return g.W[Edge{From: a, To: b}] }

// symbols lists Σ.
func (g *ExcessGraph) symbols() []objects.Symbol {
	out := make([]objects.Symbol, g.K)
	for i := range out {
		out[i] = objects.Symbol(i)
	}
	return out
}

// reachable returns the set of symbols reachable from src using only
// edges of weight ≥ min.
func (g *ExcessGraph) reachable(src objects.Symbol, min int) map[objects.Symbol]bool {
	seen := map[objects.Symbol]bool{src: true}
	stack := []objects.Symbol{src}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, y := range g.symbols() {
			if y != x && !seen[y] && g.Weight(x, y) >= min {
				seen[y] = true
				stack = append(stack, y)
			}
		}
	}
	return seen
}

// CycleWidth returns the largest W such that some directed cycle
// through both a and b uses only edges of weight ≥ W (the "width of the
// cycle whose minimum excess is the largest", Figure 6 line 6), and
// whether any such cycle exists. A cycle through a and b exists at
// width W iff b is reachable from a and a from b in the ≥W-thresholded
// graph. Degenerate a == b asks for any cycle through a.
func (g *ExcessGraph) CycleWidth(a, b objects.Symbol) (int, bool) {
	weights := make([]int, 0, len(g.W))
	for _, w := range g.W {
		if w > 0 {
			weights = append(weights, w)
		}
	}
	if len(weights) == 0 {
		return 0, false
	}
	sort.Sort(sort.Reverse(sort.IntSlice(weights)))
	for _, w := range weights {
		if g.reachable(a, w)[b] && g.reachable(b, w)[a] {
			if a != b {
				return w, true
			}
			// a == b: need a non-trivial cycle; reachable includes the
			// start for free, so verify via some successor.
			for _, y := range g.symbols() {
				if y != a && g.Weight(a, y) >= w && g.reachable(y, w)[a] {
					return w, true
				}
			}
		}
	}
	return 0, false
}

// Path returns the intermediate symbols of a shortest path from a to b
// using only edges of weight ≥ min (endpoints excluded), or ok=false.
// A direct edge yields an empty path.
func (g *ExcessGraph) Path(a, b objects.Symbol, min int) ([]objects.Symbol, bool) {
	if a == b {
		return nil, true
	}
	prev := map[objects.Symbol]objects.Symbol{a: a}
	queue := []objects.Symbol{a}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range g.symbols() {
			if y == x {
				continue
			}
			if _, seen := prev[y]; seen {
				continue
			}
			if g.Weight(x, y) < min {
				continue
			}
			prev[y] = x
			if y == b {
				var rev []objects.Symbol
				for at := prev[b]; at != a; at = prev[at] {
					rev = append(rev, at)
				}
				// rev holds intermediates b←…←a; reverse to a→…→b order.
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev, true
			}
			queue = append(queue, y)
		}
	}
	return nil, false
}

// Threshold is Figure 6 line 7: Σ_{g=1..D} g·m^g, the excess a cycle
// must carry before a symbol may be attached at depth D — deeper
// attachment points demand more spare suspensions because the DFS
// rendering replays more ToParent/FromParent segments.
func Threshold(m, depth int) int {
	total := 0
	pow := 1
	for g := 1; g <= depth; g++ {
		pow *= m
		total += g * pow
	}
	return total
}

// Alpha is the component threshold α_x = Σ_{i=2..x} m^i of
// Definitions 2 and 3 (α_1 = 0).
func Alpha(m, x int) int {
	total := 0
	pow := m
	for i := 2; i <= x; i++ {
		pow *= m
		total += pow
	}
	return total
}

// SCCs returns the strongly connected components of the excess graph
// restricted to the given symbols and to edges of weight ≥ min
// (Tarjan's algorithm), largest first.
func (g *ExcessGraph) SCCs(nodes []objects.Symbol, min int) [][]objects.Symbol {
	index := make(map[objects.Symbol]int, len(nodes))
	low := make(map[objects.Symbol]int, len(nodes))
	onStack := make(map[objects.Symbol]bool, len(nodes))
	inSet := make(map[objects.Symbol]bool, len(nodes))
	for _, n := range nodes {
		inSet[n] = true
	}
	var stack []objects.Symbol
	var out [][]objects.Symbol
	counter := 0

	var strong func(v objects.Symbol)
	strong = func(v objects.Symbol) {
		counter++
		index[v] = counter
		low[v] = counter
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range nodes {
			if w == v || g.Weight(v, w) < min {
				continue
			}
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []objects.Symbol
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
			out = append(out, comp)
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return len(out[i]) > len(out[j]) })
	return out
}

// IsStable implements Definition 2: comp (a strongly connected
// component of the ≥α₁ graph, α₁ = 0 meaning weight ≥ 1 here) of size j
// is stable if for every k−j+2 ≤ i ≤ k it splits into at most
// i−(k−j+1) maximal components at threshold α_(k−j+i). A single node is
// always stable.
func (g *ExcessGraph) IsStable(comp []objects.Symbol, k, m int) bool {
	j := len(comp)
	if j <= 1 {
		return true
	}
	for i := k - j + 2; i <= k; i++ {
		limit := i - (k - j + 1)
		parts := g.SCCs(comp, Alpha(m, k-j+i))
		if len(parts) > limit {
			return false
		}
	}
	return true
}

// IsSuperStable implements Definition 3: size-j component, for every
// k−j+3 < i ≤ k at most i−(k−j+2) maximal components at threshold
// α_(k−j+i). A two-node strongly connected component is always super
// stable.
func (g *ExcessGraph) IsSuperStable(comp []objects.Symbol, k, m int) bool {
	j := len(comp)
	if j <= 2 {
		return true
	}
	for i := k - j + 4; i <= k; i++ {
		limit := i - (k - j + 2)
		parts := g.SCCs(comp, Alpha(m, k-j+i))
		if len(parts) > limit {
			return false
		}
	}
	return true
}
