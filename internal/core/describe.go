package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/objects"
)

// DescribeTree renders the history tree T of a view: every active small
// tree with its in-tree nodes, indented by depth, with FromParent /
// ToParent paths — the shape of the paper's Figure 1, as data.
func DescribeTree(v *View) string {
	var b strings.Builder
	active := v.ActiveTrees()
	labels := make([]Label, 0, len(active))
	for l := range active {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	for _, l := range labels {
		indent := strings.Repeat("  ", len(l)-1)
		fmt.Fprintf(&b, "%st_%s (root symbol %s)\n", indent, l, l.Last())
		nodes := v.TreeNodes(l)
		children := make(map[NodeID][]TreeNode, len(nodes))
		for _, n := range nodes {
			children[n.Parent] = append(children[n.Parent], n)
		}
		var walk func(id NodeID, depth int)
		walk = func(id NodeID, depth int) {
			for _, n := range children[id] {
				fmt.Fprintf(&b, "%s%s└ %s", indent, strings.Repeat("  ", depth+1), n.Symbol)
				if len(n.FromParent) > 0 || len(n.ToParent) > 0 {
					fmt.Fprintf(&b, "  (from %s, to %s)", symbolsString(n.FromParent), symbolsString(n.ToParent))
				}
				fmt.Fprintf(&b, "  [e%d.%d]\n", n.ID.Em, n.ID.Seq)
				walk(n.ID, depth+1)
			}
		}
		walk(TreeRoot, 0)
	}
	return b.String()
}

func symbolsString(syms []objects.Symbol) string {
	if len(syms) == 0 {
		return "·"
	}
	parts := make([]string, len(syms))
	for i, s := range syms {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ")
}
