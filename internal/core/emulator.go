package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/registers"
	"repro/internal/sim"
)

// Errors reported by emulators.
// ErrIterationBudget means the emulator ran out of iterations without
// any of its v-processes deciding — either the budget is genuinely too
// small, or the emulation starved: no simple operation, no rebalance,
// and UpdateC&S never became affordable. Under the paper's quotas
// (m·k² per edge) starvation cannot happen; with ablated quotas it can
// (DESIGN.md §5.4), and the audit still passes — the guards refuse to
// fabricate unpayable transitions rather than construct an illegal run.
var ErrIterationBudget = errors.New("core: emulator iteration budget exhausted")

// emulator is one of the m processes of algorithm B. It owns a subset
// of A's v-processes and drives the Figure 3 loop.
type emulator struct {
	id    int
	red   *Reduction
	label Label

	vprocs map[int]VProcess // owned v-processes by vid
	active map[int]bool     // active (not suspended, not decided)

	mine          Page
	nodeSeq       int
	suspendedOnce map[Edge]bool // Figure 3 line 5 executes once per pair
	stats         ActionStats
}

// ActionStats counts which Figure 3 branches an emulator took — the
// emulation's observable anatomy, reported per emulator in Report.
type ActionStats struct {
	// Iterations is the number of Figure 3 loop iterations.
	Iterations int
	// Suspends counts suspension batches (lines 4–5).
	Suspends int
	// SimpleOps counts emulated reads/writes/failing-c&s (lines 6–7).
	SimpleOps int
	// Rebalances counts successful CanRebalance releases (line 8).
	Rebalances int
	// Attaches counts in-tree history extensions (Figure 6 line 9).
	Attaches int
	// Activations counts new-tree activations / group splits (line 12).
	Activations int
	// Idles counts iterations where nothing was affordable yet.
	Idles int
}

// run is the emulation main routine (Figure 3).
func (em *emulator) run(e *sim.Env) (sim.Value, error) {
	for iter := 0; iter < em.red.cfg.MaxIterations; iter++ {
		em.stats.Iterations++
		// Adopt a decision as soon as any owned v-process reaches one
		// (Figure 3 lines 1, 10).
		if d, ok := em.decidedVProc(); ok {
			em.mine.Decided = d
			em.writePage(e)
			return d, nil
		}

		// Line 2: atomically read all shared data structures.
		v := NewView(em.red.snap.Scan(e), em.red.cfg.K)
		// Line 3: compute the history; the label may extend as a side
		// effect when t_label is no longer a leaf of T.
		em.label = ExtendLabel(v, em.label)
		em.mine.Label = em.label
		h := ComputeHistory(v, em.label)
		cs := h.CS()

		// Lines 4–5: suspension quotas. For each edge with enough
		// active v-processes and no prior suspension by this emulator,
		// freeze quota of them.
		if em.suspendStep(h) {
			em.stats.Suspends++
			em.writePage(e)
			continue
		}

		// Lines 6–7: emulate one simple operation — a read, a write, or
		// a c&s that fails against the current value.
		if em.emulateSimpleOp(e, h, cs) {
			em.stats.SimpleOps++
			continue
		}

		// Line 8: try to release a suspended v-process against surplus
		// history transitions.
		if em.canRebalance(e, v, h) {
			em.stats.Rebalances++
			continue
		}

		// Line 9: update the compare&swap history (which keeps its own
		// attach/activate/idle statistics). A non-progressing update is
		// an idle wait: the next snapshot may carry more suspensions
		// from other emulators.
		if _, err := em.updateCAS(e, v, h); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("%w (emulator %d, label %s)", ErrIterationBudget, em.id, em.label)
}

// decidedVProc returns the decision of an owned v-process that has
// reached its decide state, if any.
func (em *emulator) decidedVProc() (sim.Value, bool) {
	for _, vid := range em.sortedOwned() {
		if op := em.vprocs[vid].Next(); op.Kind == VDecide {
			return op.Decision, true
		}
	}
	return nil, false
}

// sortedOwned lists owned vids ascending for determinism.
func (em *emulator) sortedOwned() []int {
	out := make([]int, 0, len(em.vprocs))
	for vid := range em.vprocs {
		out = append(out, vid)
	}
	sort.Ints(out)
	return out
}

// activeByEdge groups the emulator's active v-processes by the c&s edge
// of their next operation.
func (em *emulator) activeByEdge() map[Edge][]int {
	out := make(map[Edge][]int)
	for _, vid := range em.sortedOwned() {
		if !em.active[vid] {
			continue
		}
		op := em.vprocs[vid].Next()
		if op.Kind != VCAS {
			continue
		}
		ed := Edge{From: op.From, To: op.To}
		out[ed] = append(out[ed], vid)
	}
	return out
}

// suspendStep implements Figure 3 lines 4–5; returns true if any
// suspension happened (the page must then be republished).
func (em *emulator) suspendStep(h *History) bool {
	quota := em.red.cfg.Quota
	changed := false
	edges := em.activeByEdge()
	keys := make([]Edge, 0, len(edges))
	for ed := range edges {
		keys = append(keys, ed)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].From != keys[j].From {
			return keys[i].From < keys[j].From
		}
		return keys[i].To < keys[j].To
	})
	for _, ed := range keys {
		vids := edges[ed]
		if len(vids) < quota || em.suspendedOnce[ed] {
			continue
		}
		for _, vid := range vids[:quota] {
			em.active[vid] = false
			em.mine.Suspensions = append(em.mine.Suspensions, Suspension{
				VProc:   vid,
				Edge:    ed,
				Label:   em.label,
				HistLen: len(h.Seq),
			})
		}
		em.suspendedOnce[ed] = true
		changed = true
	}
	return changed
}

// emulateSimpleOp implements Figure 3 lines 6–7: find an active
// v-process whose next operation needs no history update — a read, a
// write, or a c&s(a→b) with a ≠ cs (it fails against the current
// value) — and emulate exactly one step of it.
func (em *emulator) emulateSimpleOp(e *sim.Env, h *History, cs sim.Value) bool {
	for _, vid := range em.sortedOwned() {
		if !em.active[vid] {
			continue
		}
		vp := em.vprocs[vid]
		op := vp.Next()
		switch op.Kind {
		case VRead:
			val, _ := em.red.regs[op.Reg].ReadLabeled(e, string(em.label))
			vp.Feed(val)
			return true
		case VWrite:
			em.red.regs[vid].Append(e, string(em.label), op.Value)
			vp.Feed(nil)
			return true
		case VCAS:
			if op.From != cs || op.From == op.To {
				// The operation needs no history update: it either
				// fails against the current value, or is a no-op
				// c&s(a→a). Either way the response is the current
				// value (a history response, EmulateSimpleOp in the
				// paper).
				vp.Feed(cs)
				return true
			}
		case VDecide:
			// Handled at the top of the loop.
		}
	}
	return false
}

// writePage publishes the emulator's single-writer page (one atomic
// update of its snapshot component).
func (em *emulator) writePage(e *sim.Env) {
	em.red.snap.Update(e, em.mine.clone())
}

// ownedTagged returns the tagged register of a v-process (for reads any
// register; writes go only to owned v-processes' registers, enforced by
// the registers' single-writer check since the register owner is the
// owning emulator).
func (em *emulator) ownedTagged(vid int) *registers.Tagged {
	return em.red.regs[vid]
}
