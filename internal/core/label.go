// Package core implements the paper's central contribution: the
// reduction by emulation of Section 3. Assume a leader election
// algorithm A among Π processes that uses one compare&swap-(k) register
// plus single-writer registers. Then m = (k−1)!+1 emulators — processes
// that communicate through read/write registers only — can
// cooperatively construct legal runs of A: they simulate A's processes
// ("v-processes"), record the compare&swap's value changes in a shared
// history tree T (Figure 1), suspend v-processes on compare&swap edges
// to pay for history transitions (the vp-graph of Figure 2 and the
// excess graph), and split into at most (k−1)! groups labeled by the
// permutation of first-used values. Each emulator adopts the decision
// of one of its v-processes, so the emulation solves (k−1)!-set
// consensus among (k−1)!+1 processes from read/write registers — which
// is impossible, bounding the number of processes A can serve.
//
// The package renders Figures 3–6 executable: Emulator.run is Figure 3,
// ComputeHistory is Figure 4, CanRebalance is Figure 5 and UpdateC&S is
// Figure 6. Tests verify the observable contracts (group count, legal
// payment of every history transition, decision census) rather than the
// paper's full induction, which is a proof, not a program.
package core

import (
	"strings"

	"repro/internal/objects"
)

// Label identifies the run an emulator is constructing: the sequence of
// "first values" of its history (§3.1) — ⊥ followed by the order in
// which fresh symbols were first written to the compare&swap. Labels
// form the tree T; sibling groups of emulators have labels diverging at
// one position. The empty-extension root label is "⊥".
//
// The underlying string holds one byte per symbol (Bottom = 0), so
// label prefix relations are string prefix relations, matching the
// registers.Tagged convention.
type Label string

// RootLabel is the label every emulator starts with: just ⊥.
func RootLabel() Label { return Label([]byte{byte(objects.Bottom)}) }

// Extend returns the label with one more first-use symbol appended.
func (l Label) Extend(s objects.Symbol) Label {
	return l + Label([]byte{byte(s)})
}

// Symbols decodes the label into its symbol sequence.
func (l Label) Symbols() []objects.Symbol {
	out := make([]objects.Symbol, len(l))
	for i := 0; i < len(l); i++ {
		out[i] = objects.Symbol(l[i])
	}
	return out
}

// Last returns the label's final symbol (the root label yields ⊥).
func (l Label) Last() objects.Symbol {
	if len(l) == 0 {
		return objects.Bottom
	}
	return objects.Symbol(l[len(l)-1])
}

// HasPrefix reports whether p is a prefix of l.
func (l Label) HasPrefix(p Label) bool {
	return strings.HasPrefix(string(l), string(p))
}

// Compatible reports whether one label is a prefix of the other — the
// "same run" relation of the emulation.
func (l Label) Compatible(other Label) bool {
	return l.HasPrefix(other) || other.HasPrefix(l)
}

// Contains reports whether the label already uses symbol s.
func (l Label) Contains(s objects.Symbol) bool {
	return strings.IndexByte(string(l), byte(s)) >= 0
}

// Parent returns the label with its last symbol removed; the root label
// returns itself.
func (l Label) Parent() Label {
	if len(l) <= 1 {
		return l
	}
	return l[:len(l)-1]
}

// String renders the label, e.g. "⊥·0·2".
func (l Label) String() string {
	parts := make([]string, 0, len(l))
	for _, s := range l.Symbols() {
		parts = append(parts, s.String())
	}
	return strings.Join(parts, "·")
}

// MaxLabels returns (k−1)!, the number of leaves of T over
// compare&swap-(k) — the bound on the number of emulator groups and
// hence on distinct set-consensus decisions.
func MaxLabels(k int) int {
	f := 1
	for i := 2; i <= k-1; i++ {
		f *= i
	}
	return f
}
