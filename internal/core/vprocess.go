package core

import (
	"fmt"

	"repro/internal/objects"
	"repro/internal/sim"
)

// VOpKind classifies the operations of algorithm A's front ends.
type VOpKind int

// V-process operation kinds.
const (
	// VRead reads another v-process's single-writer register.
	VRead VOpKind = iota + 1
	// VWrite writes the v-process's own single-writer register.
	VWrite
	// VCAS performs c&s(From→To) on the shared compare&swap-(k).
	VCAS
	// VDecide ends the v-process with a decision value.
	VDecide
)

// String names the kind.
func (k VOpKind) String() string {
	switch k {
	case VRead:
		return "read"
	case VWrite:
		return "write"
	case VCAS:
		return "cas"
	case VDecide:
		return "decide"
	default:
		return fmt.Sprintf("VOpKind(%d)", int(k))
	}
}

// VOp is one pending operation of a v-process. W.l.o.g. (as the paper
// assumes) A's read/write registers are single-writer multi-reader; we
// give each v-process one register, indexed by v-process id.
type VOp struct {
	Kind VOpKind
	// Reg is the register (v-process id) to read, for VRead.
	Reg int
	// Value is the value to write, for VWrite.
	Value sim.Value
	// From, To are the compare&swap arguments, for VCAS.
	From, To objects.Symbol
	// Decision is the final output, for VDecide.
	Decision sim.Value
}

// String renders the op, e.g. "cas(⊥→1)".
func (op VOp) String() string {
	switch op.Kind {
	case VRead:
		return fmt.Sprintf("read(r%d)", op.Reg)
	case VWrite:
		return fmt.Sprintf("write(%v)", op.Value)
	case VCAS:
		return fmt.Sprintf("cas(%s→%s)", op.From, op.To)
	case VDecide:
		return fmt.Sprintf("decide(%v)", op.Decision)
	default:
		return op.Kind.String()
	}
}

// VProcess is the front end of one process of algorithm A, driven by
// its owning emulator: Next peeks the pending operation (idempotent),
// Feed delivers the operation's response and advances the state.
// A VProcess must be deterministic. A v-process whose Next is VDecide
// has terminated; Feed must not be called on it.
type VProcess interface {
	Next() VOp
	Feed(resp sim.Value)
}

// Algorithm describes an instance of A: how many v-processes it has and
// how to construct each one's front end. Each v-process owns one
// single-writer register (its announce register).
type Algorithm struct {
	// Name labels the algorithm in reports.
	Name string
	// NumProcs is Π, the number of v-processes.
	NumProcs int
	// New constructs the front end of v-process vid.
	New func(vid int) VProcess
}

// Clones returns Π fresh v-processes of the algorithm.
func (a *Algorithm) Clones() []VProcess {
	out := make([]VProcess, a.NumProcs)
	for i := range out {
		out[i] = a.New(i)
	}
	return out
}

// funcProcess drives a v-process from a pure step function over the
// response history: next(resps) yields the operation after the given
// responses. Determinism is inherited from the function.
type funcProcess struct {
	next    func(resps []sim.Value) VOp
	resps   []sim.Value
	pending *VOp
}

// NewFunc returns a VProcess computed by next, which must be a pure
// function of the responses received so far.
func NewFunc(next func(resps []sim.Value) VOp) VProcess {
	return &funcProcess{next: next}
}

var _ VProcess = (*funcProcess)(nil)

// Next implements VProcess.
func (p *funcProcess) Next() VOp {
	if p.pending == nil {
		op := p.next(p.resps)
		p.pending = &op
	}
	return *p.pending
}

// Feed implements VProcess.
func (p *funcProcess) Feed(resp sim.Value) {
	if p.Next().Kind == VDecide {
		panic("core: Feed on a decided v-process")
	}
	p.resps = append(p.resps, resp)
	p.pending = nil
}

// NewScript returns a VProcess that performs the fixed operations in
// order, ignoring responses, then decides the given value. Useful for
// synthetic algorithms that exercise specific emulation paths.
func NewScript(decision sim.Value, ops []VOp) VProcess {
	return NewFunc(func(resps []sim.Value) VOp {
		if len(resps) < len(ops) {
			return ops[len(resps)]
		}
		return VOp{Kind: VDecide, Decision: decision}
	})
}

// AnnouncedLE is a correct wait-free leader election A for n ≤ k−1
// v-processes over compare&swap-(k) (the AnnouncedCAS protocol of the
// election package rendered as an Algorithm): v-process i announces its
// identity, tries c&s(⊥ → i+1), reads the winning symbol owner's
// announce register, and decides what it read. Feeding it to the
// emulation exercises the fresh-value splitting path of UpdateC&S
// (§3.1: groups split on first uses).
func AnnouncedLE(k int, identities []sim.Value) *Algorithm {
	n := len(identities)
	if n > k-1 {
		panic(fmt.Sprintf("core: AnnouncedLE: %d processes exceed compare&swap-(%d) capacity %d", n, k, k-1))
	}
	return &Algorithm{
		Name:     fmt.Sprintf("announced-le(k=%d,n=%d)", k, n),
		NumProcs: n,
		New: func(vid int) VProcess {
			return NewFunc(func(resps []sim.Value) VOp {
				switch len(resps) {
				case 0:
					return VOp{Kind: VWrite, Value: identities[vid]}
				case 1:
					return VOp{Kind: VCAS, From: objects.Bottom, To: objects.Symbol(vid + 1)}
				case 2:
					prev := resps[1].(objects.Symbol)
					target := vid
					if prev != objects.Bottom {
						target = int(prev) - 1
					}
					return VOp{Kind: VRead, Reg: target}
				default:
					return VOp{Kind: VDecide, Decision: resps[2]}
				}
			})
		},
	}
}

// ContendersLE is a leader election A in which every v-process contends
// for the same first symbol before falling back to announcements:
// v-process i announces, tries c&s(⊥ → s) where s cycles over the
// alphabet by group, reads the first-winner's announce register and
// decides it. With many v-processes per symbol it floods the emulation
// with identical pending c&s operations — the regime in which
// suspension quotas, the excess graph and UpdateC&S's popularity choice
// (Figure 6, line 6) matter.
func ContendersLE(k int, identities []sim.Value) *Algorithm {
	n := len(identities)
	return &Algorithm{
		Name:     fmt.Sprintf("contenders-le(k=%d,n=%d)", k, n),
		NumProcs: n,
		New: func(vid int) VProcess {
			sym := objects.Symbol(vid%(k-1) + 1)
			return NewFunc(func(resps []sim.Value) VOp {
				switch len(resps) {
				case 0:
					return VOp{Kind: VWrite, Value: identities[vid]}
				case 1:
					return VOp{Kind: VCAS, From: objects.Bottom, To: sym}
				case 2:
					prev := resps[1].(objects.Symbol)
					target := vid
					if prev != objects.Bottom {
						// Decide with the owner group of the observed
						// symbol: read the announce of its lowest id.
						target = int(prev) - 1
					}
					return VOp{Kind: VRead, Reg: target}
				default:
					return VOp{Kind: VDecide, Decision: resps[2]}
				}
			})
		},
	}
}

// FirstValueA is the first-value consensus algorithm: v-process vid
// performs c&s(⊥ → s) with s = vid mod (k−1) + 1 and decides the first
// value ever written into the register (its own s on success, the
// response on failure). It is a correct wait-free multi-valued
// consensus for ANY number of processes — compare&swap's consensus
// number is ∞ — so every run the emulation constructs decides exactly
// one symbol, making it the cleanest witness for Claim 1's census: the
// emulators' decisions per group collapse to one value, and groups are
// bounded by (k−1)!.
func FirstValueA(k int, n int) *Algorithm {
	return &Algorithm{
		Name:     fmt.Sprintf("first-value(k=%d,n=%d)", k, n),
		NumProcs: n,
		New: func(vid int) VProcess {
			s := objects.Symbol(vid%(k-1) + 1)
			return NewFunc(func(resps []sim.Value) VOp {
				if len(resps) == 0 {
					return VOp{Kind: VCAS, From: objects.Bottom, To: s}
				}
				prev := resps[0].(objects.Symbol)
				if prev == objects.Bottom {
					return VOp{Kind: VDecide, Decision: s}
				}
				return VOp{Kind: VDecide, Decision: prev}
			})
		},
	}
}

// BiasedA is FirstValueA with the symbol choice biased by the OWNING
// emulator (v-processes are dealt round-robin, vid mod m): emulator j's
// v-processes all contend for symbol (j mod (k−1)) + 1. Different
// emulators then have different most-popular targets in UpdateC&S,
// which forces group splitting — the multi-label regime of E2.
func BiasedA(k, m, n int) *Algorithm {
	return &Algorithm{
		Name:     fmt.Sprintf("biased(k=%d,m=%d,n=%d)", k, m, n),
		NumProcs: n,
		New: func(vid int) VProcess {
			s := objects.Symbol((vid%m)%(k-1) + 1)
			return NewFunc(func(resps []sim.Value) VOp {
				if len(resps) == 0 {
					return VOp{Kind: VCAS, From: objects.Bottom, To: s}
				}
				prev := resps[0].(objects.Symbol)
				if prev == objects.Bottom {
					return VOp{Kind: VDecide, Decision: s}
				}
				return VOp{Kind: VDecide, Decision: prev}
			})
		},
	}
}

// RandomA generates an arbitrary algorithm from a seed: each v-process
// runs a random script of announce writes, reads, and c&s attempts over
// random edges, then decides its identity. It is not a meaningful task
// — it exists to property-test the emulation: for ANY deterministic A,
// the reduction must produce only legal runs (audit clean), whatever
// else happens.
func RandomA(k, n, maxOps int, seed int64) *Algorithm {
	return &Algorithm{
		Name:     fmt.Sprintf("random(k=%d,n=%d,seed=%d)", k, n, seed),
		NumProcs: n,
		New: func(vid int) VProcess {
			// Derive the script deterministically from (seed, vid) with
			// a splitmix-style hash, so clones are reproducible.
			state := uint64(seed)*0x9e3779b97f4a7c15 + uint64(vid)*0xbf58476d1ce4e5b9
			next := func(bound int) int {
				state ^= state >> 30
				state *= 0xbf58476d1ce4e5b9
				state ^= state >> 27
				state *= 0x94d049bb133111eb
				state ^= state >> 31
				return int(state % uint64(bound))
			}
			nops := 1 + next(maxOps)
			ops := make([]VOp, 0, nops+1)
			ops = append(ops, VOp{Kind: VWrite, Value: vid})
			for i := 0; i < nops; i++ {
				switch next(3) {
				case 0:
					ops = append(ops, VOp{Kind: VRead, Reg: next(n)})
				case 1:
					ops = append(ops, VOp{Kind: VWrite, Value: vid*1000 + i})
				default:
					from := objects.Symbol(next(k))
					to := objects.Symbol(next(k))
					ops = append(ops, VOp{Kind: VCAS, From: from, To: to})
				}
			}
			return NewScript(vid, ops)
		},
	}
}

// CyclingA is a synthetic algorithm whose v-processes walk the
// compare&swap around a fixed cycle of symbols and back to ⊥ before
// deciding their own identity. It is not a correct leader election —
// the emulation does not require one — but its returning transitions
// (x→⊥) populate the excess graph with cycles, driving the in-tree
// attachment path of UpdateC&S (Figure 6, lines 6–9) and the
// rebalancing of Figure 5.
func CyclingA(k int, n int, hops int) *Algorithm {
	return &Algorithm{
		Name:     fmt.Sprintf("cycling(k=%d,n=%d,hops=%d)", k, n, hops),
		NumProcs: n,
		New: func(vid int) VProcess {
			ops := []VOp{{Kind: VWrite, Value: vid}}
			cur := objects.Bottom
			for h := 0; h < hops; h++ {
				next := objects.Symbol((vid+h)%(k-1) + 1)
				if next == cur {
					next = objects.Symbol(int(next)%(k-1) + 1)
				}
				ops = append(ops, VOp{Kind: VCAS, From: cur, To: next})
				ops = append(ops, VOp{Kind: VCAS, From: next, To: objects.Bottom})
				cur = objects.Bottom
			}
			return NewScript(vid, ops)
		},
	}
}
