package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/sim"
)

// TestAuditHoldsForArbitraryAlgorithms is the emulation's central
// property test: for ANY deterministic algorithm A — here, randomly
// generated scripts of reads, writes and arbitrary c&s attempts — and
// any schedule, the reduction constructs only legal runs: every history
// transition is paid by a suspended v-process, every release matches a
// later transition, labels stay within the permutation tree. Emulators
// are allowed to starve (random A gives no liveness), but they must
// never cheat.
func TestAuditHoldsForArbitraryAlgorithms(t *testing.T) {
	for _, k := range []int{3, 4} {
		for algoSeed := int64(0); algoSeed < 6; algoSeed++ {
			for schedSeed := int64(0); schedSeed < 3; schedSeed++ {
				a := core.RandomA(k, 30*(k-1), 6, algoSeed)
				r := core.NewReduction(core.Config{
					K: k, Quota: 3, A: a, MaxIterations: 1500,
				})
				res, err := r.System().Run(sim.Config{
					Scheduler:     sim.Random(schedSeed),
					MaxTotalSteps: 1 << 22,
					DisableTrace:  true,
				})
				if err != nil {
					t.Fatalf("k=%d algo=%d sched=%d: %v", k, algoSeed, schedSeed, err)
				}
				if res.Halted {
					t.Fatalf("k=%d algo=%d sched=%d: hit total step bound", k, algoSeed, schedSeed)
				}
				if err := r.Audit(); err != nil {
					t.Errorf("k=%d algo=%d sched=%d: audit: %v", k, algoSeed, schedSeed, err)
				}
				rep := r.Analyze(res)
				if rep.Groups > rep.MaxLabels {
					t.Errorf("k=%d algo=%d sched=%d: %d groups exceed (k−1)! = %d",
						k, algoSeed, schedSeed, rep.Groups, rep.MaxLabels)
				}
			}
		}
	}
}

// TestAuditHoldsUnderEmulatorCrashes: same property with emulator
// crash injection — a dead emulator must not corrupt the shared
// structures it leaves behind.
func TestAuditHoldsUnderEmulatorCrashes(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a := core.RandomA(3, 60, 5, seed)
		r := core.NewReduction(core.Config{K: 3, Quota: 3, A: a, MaxIterations: 1500})
		res, err := r.System().Run(sim.Config{
			Scheduler:     sim.Random(seed),
			Faults:        sim.RandomCrashes(seed, 0.02, 1),
			MaxTotalSteps: 1 << 22,
			DisableTrace:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Halted {
			t.Fatalf("seed %d: hit step bound", seed)
		}
		if err := r.Audit(); err != nil {
			t.Errorf("seed %d: audit: %v", seed, err)
		}
	}
}

// TestRandomAIsDeterministic: clones from the same seed produce the
// same scripts — a prerequisite for replay-based exploration of
// emulations.
func TestRandomAIsDeterministic(t *testing.T) {
	a1 := core.RandomA(3, 10, 6, 42)
	a2 := core.RandomA(3, 10, 6, 42)
	for vid := 0; vid < 10; vid++ {
		p1, p2 := a1.New(vid), a2.New(vid)
		for step := 0; step < 20; step++ {
			op1, op2 := p1.Next(), p2.Next()
			if op1.String() != op2.String() {
				t.Fatalf("vid %d step %d: %v vs %v", vid, step, op1, op2)
			}
			if op1.Kind == core.VDecide {
				break
			}
			p1.Feed(nil)
			p2.Feed(nil)
		}
	}
}

// TestAuditUnderScheduleExploration drives a tiny two-emulator
// reduction through hundreds of systematically-enumerated schedule
// prefixes (bounded DFS, not just random seeds) and audits every
// terminal state. The emulation's legality must not depend on
// scheduling luck.
func TestAuditUnderScheduleExploration(t *testing.T) {
	var last *core.Reduction
	builder := func() *sim.System {
		// Margin -1 (none): with two emulators and single-transition
		// activations, two suspensions per edge already cover the worst
		// concurrent consumption, and solo schedule corners can finish.
		last = core.NewReduction(core.Config{
			K: 3, M: 2, Quota: 2, Margin: -1, A: core.FirstValueA(3, 16), MaxIterations: 400,
		})
		return last.System()
	}
	audited := 0
	explore.Visit(builder, explore.Options{MaxDepth: 400, MaxRuns: 250}, func(o explore.Outcome) bool {
		if o.Result.Halted {
			return true
		}
		if err := last.Audit(); err != nil {
			t.Errorf("schedule %s: audit: %v", explore.FormatSchedule(o.Schedule), err)
			return false
		}
		rep := last.Analyze(o.Result)
		if rep.Groups > rep.MaxLabels {
			t.Errorf("schedule %s: %d groups", explore.FormatSchedule(o.Schedule), rep.Groups)
			return false
		}
		audited++
		return true
	})
	if audited == 0 {
		t.Fatal("no complete runs audited (deepen MaxDepth)")
	}
}
