package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/registers"
	"repro/internal/sim"
)

// Config parameterizes a reduction instance.
type Config struct {
	// K is the compare&swap alphabet size of algorithm A.
	K int
	// M is the number of emulators; the paper's Claim 1 uses
	// (k−1)!+1. Zero selects that default.
	M int
	// Quota is the number of v-processes suspended per fresh edge
	// (Figure 3 line 5); the paper uses m·k². Zero selects that
	// default; the quota ablation (DESIGN.md §5.4) sets it lower.
	Quota int
	// Margin is the concurrency headroom UpdateC&S demands on every
	// edge a history update consumes: up to m−1 other emulators may
	// concurrently update from the same snapshot, so an update may
	// proceed only if each consumed edge retains Margin spare
	// suspensions beyond its own consumption. The paper buries this
	// margin inside the m·k² quotas and the Σ g·m^g thresholds; making
	// it explicit keeps small-quota experiments honest. Zero selects
	// the default (m−1)·k; negative means no margin (ablation only —
	// the audit then catches over-consumption).
	Margin int
	// A is the emulated algorithm.
	A *Algorithm
	// MaxIterations bounds each emulator's Figure 3 loop; zero selects
	// DefaultMaxIterations.
	MaxIterations int
}

// DefaultMaxIterations bounds the emulator loop when unset.
const DefaultMaxIterations = 20000

// Reduction is an instance of algorithm B: m emulators over read/write
// registers cooperatively emulating runs of A (Claim 1). Build it, run
// the returned system, then inspect the Report.
type Reduction struct {
	cfg  Config
	sys  *sim.System
	snap *registers.Snapshot
	regs []*registers.Tagged // v-process announce registers, by vid
	ems  []*emulator
}

// NewReduction assembles the shared read/write structures and the m
// emulator processes. The v-processes of A are dealt round-robin:
// emulator j owns v-processes {j, j+m, j+2m, …}.
func NewReduction(cfg Config) *Reduction {
	if cfg.A == nil {
		panic("core: Config.A is required")
	}
	if cfg.K < 2 {
		panic(fmt.Sprintf("core: K=%d, need >= 2", cfg.K))
	}
	if cfg.M == 0 {
		cfg.M = MaxLabels(cfg.K) + 1
	}
	if cfg.Quota == 0 {
		cfg.Quota = cfg.M * cfg.K * cfg.K
	}
	if cfg.Margin == 0 {
		// Up to m−1 emulators may update concurrently from one snapshot,
		// each consuming an edge at most twice (forward and back path of
		// one cycle) in the common case; deeper consumption is caught by
		// the audit across the test matrix.
		cfg.Margin = 2 * (cfg.M - 1)
	} else if cfg.Margin < 0 {
		cfg.Margin = 0
	}
	if cfg.MaxIterations == 0 {
		cfg.MaxIterations = DefaultMaxIterations
	}
	r := &Reduction{cfg: cfg, sys: sim.NewSystem()}
	r.snap = registers.NewSnapshot(r.sys, "pages", cfg.M, nil)

	vprocs := cfg.A.Clones()
	r.regs = make([]*registers.Tagged, len(vprocs))
	for vid := range vprocs {
		owner := sim.ProcID(vid % cfg.M)
		r.regs[vid] = registers.NewTagged(fmt.Sprintf("A.r[%d]", vid), owner)
		r.sys.Add(r.regs[vid])
	}

	r.ems = make([]*emulator, cfg.M)
	for j := 0; j < cfg.M; j++ {
		em := &emulator{
			id:            j,
			red:           r,
			label:         RootLabel(),
			vprocs:        make(map[int]VProcess),
			active:        make(map[int]bool),
			mine:          Page{Em: j, Label: RootLabel()},
			suspendedOnce: make(map[Edge]bool),
		}
		for vid := j; vid < len(vprocs); vid += cfg.M {
			em.vprocs[vid] = vprocs[vid]
			em.active[vid] = true
		}
		r.ems[j] = em
		r.sys.Spawn(em.run)
	}
	return r
}

// System returns the underlying simulated system (run it once).
func (r *Reduction) System() *sim.System { return r.sys }

// Config returns the effective configuration (defaults resolved).
func (r *Reduction) Config() Config { return r.cfg }

// Report summarizes an emulation run for the E1/E2 experiments.
type Report struct {
	// Decisions maps emulator id to its set-consensus output.
	Decisions map[int]sim.Value
	// Distinct is the number of distinct decisions — Claim 1 requires
	// Distinct ≤ (k−1)!.
	Distinct int
	// Labels maps emulator id to its final label.
	Labels map[int]Label
	// Groups is the number of distinct final labels.
	Groups int
	// MaxLabels is the (k−1)! bound.
	MaxLabels int
	// Errors carries per-emulator failures (stalls, budget).
	Errors map[int]error
	// Stats maps emulator id to its Figure 3 branch counts.
	Stats map[int]ActionStats
}

// TotalStats sums the per-emulator action counts.
func (r *Report) TotalStats() ActionStats {
	var total ActionStats
	for _, s := range r.Stats {
		total.Iterations += s.Iterations
		total.Suspends += s.Suspends
		total.SimpleOps += s.SimpleOps
		total.Rebalances += s.Rebalances
		total.Attaches += s.Attaches
		total.Activations += s.Activations
		total.Idles += s.Idles
	}
	return total
}

// Analyze builds the report from a completed run.
func (r *Reduction) Analyze(res *sim.Result) *Report {
	rep := &Report{
		Decisions: make(map[int]sim.Value),
		Labels:    make(map[int]Label),
		Errors:    make(map[int]error),
		Stats:     make(map[int]ActionStats),
		MaxLabels: MaxLabels(r.cfg.K),
	}
	seenD := make(map[string]bool)
	seenL := make(map[Label]bool)
	for j := 0; j < r.cfg.M; j++ {
		if res.Errors[j] != nil {
			rep.Errors[j] = res.Errors[j]
		} else {
			rep.Decisions[j] = res.Values[j]
			seenD[fmt.Sprint(res.Values[j])] = true
		}
		rep.Labels[j] = r.ems[j].label
		rep.Stats[j] = r.ems[j].stats
		seenL[r.ems[j].label] = true
	}
	rep.Distinct = len(seenD)
	rep.Groups = len(seenL)
	return rep
}

// FinalView assembles the shared state from the emulators' last
// published pages, for post-run audits. (The emulators run strictly
// serialized by the simulator, so reading their working pages after the
// run is race-free bookkeeping, not a shared-memory access.)
func (r *Reduction) FinalView() *View {
	cells := make([]sim.Value, r.cfg.M)
	for j, em := range r.ems {
		cells[j] = em.mine.clone()
	}
	return NewView(cells, r.cfg.K)
}

// Audit verifies the structural contracts of the emulation on the final
// state — the executable rendering of Lemma 1.2's conclusions:
//
//  1. every active tree label is a permutation prefix: starts with ⊥,
//     no repeated symbols, all within the alphabet;
//  2. at most (k−1)! maximal labels (group bound);
//  3. for every maximal label, every history transition is paid: the
//     number of a→b transitions never exceeds the suspensions ever
//     frozen on (a,b) in compatible runs;
//  4. every released suspension (successful c&s of the constructed
//     run) matches a distinct later transition of its edge.
func (r *Reduction) Audit() error {
	v := r.FinalView()
	k := r.cfg.K
	for l := range v.ActiveTrees() {
		syms := l.Symbols()
		if syms[0] != 0 {
			return fmt.Errorf("core: label %s does not start with ⊥", l)
		}
		seen := make(map[byte]bool)
		for i := 0; i < len(l); i++ {
			if seen[l[i]] {
				return fmt.Errorf("core: label %s repeats a symbol", l)
			}
			if int(l[i]) >= k {
				return fmt.Errorf("core: label %s leaves the alphabet", l)
			}
			seen[l[i]] = true
		}
	}
	maximal := v.MaximalLabels()
	if len(maximal) > MaxLabels(k) {
		return fmt.Errorf("core: %d maximal labels exceed (k−1)! = %d", len(maximal), MaxLabels(k))
	}
	for _, l := range maximal {
		h := ComputeHistory(v, l)
		counts := make(map[Edge]int)
		for _, t := range Transitions(h.Seq) {
			counts[t]++
		}
		ever := v.SuspendedEver(l)
		for ed, c := range counts {
			if c > ever[ed] {
				return fmt.Errorf("core: label %s: %d %s transitions but only %d suspensions ever",
					l, c, ed, ever[ed])
			}
		}
		if !AuditMatching(v, l) {
			return fmt.Errorf("core: label %s: some released c&s has no matching transition", l)
		}
	}
	return nil
}

// DescribeReport renders a report for logs.
func DescribeReport(rep *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "distinct=%d/%d groups=%d errors=%d\n",
		rep.Distinct, rep.MaxLabels, rep.Groups, len(rep.Errors))
	ids := make([]int, 0, len(rep.Labels))
	for j := range rep.Labels {
		ids = append(ids, j)
	}
	sort.Ints(ids)
	for _, j := range ids {
		if err, bad := rep.Errors[j]; bad {
			fmt.Fprintf(&b, "  e%d label=%s ERROR %v\n", j, rep.Labels[j], err)
		} else {
			fmt.Fprintf(&b, "  e%d label=%s decided %v\n", j, rep.Labels[j], rep.Decisions[j])
		}
	}
	t := rep.TotalStats()
	fmt.Fprintf(&b, "  actions: %d iterations = %d suspends + %d simple + %d rebalances + %d attaches + %d activations + %d idles\n",
		t.Iterations, t.Suspends, t.SimpleOps, t.Rebalances, t.Attaches, t.Activations, t.Idles)
	return b.String()
}
