package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/objects"
	"repro/internal/sim"
)

// BenchmarkEmulatorIteration measures one full emulation of first-value
// consensus per (k, Π), isolating the Figure 3 loop cost: snapshot +
// history render + action per iteration.
func BenchmarkEmulatorIteration(b *testing.B) {
	for _, tc := range []struct{ k, n int }{{3, 56}, {3, 112}, {4, 168}} {
		b.Run(fmt.Sprintf("k=%d,n=%d", tc.k, tc.n), func(b *testing.B) {
			var iters, steps int
			for i := 0; i < b.N; i++ {
				r := core.NewReduction(core.Config{K: tc.k, Quota: 3, A: core.FirstValueA(tc.k, tc.n)})
				res, err := r.System().Run(sim.Config{
					Scheduler: sim.RoundRobin(), MaxTotalSteps: 1 << 23, DisableTrace: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				rep := r.Analyze(res)
				iters += rep.TotalStats().Iterations
				steps += res.TotalSteps
			}
			b.ReportMetric(float64(iters)/float64(b.N), "fig3-iterations")
			b.ReportMetric(float64(steps)/float64(b.N), "shared-steps")
		})
	}
}

// BenchmarkComputeHistory measures Figure 4 rendering on synthetic deep
// chains.
func BenchmarkComputeHistory(b *testing.B) {
	for _, depth := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			l := core.RootLabel().Extend(1)
			page := core.Page{ActiveTrees: []core.Label{l}}
			parent := core.TreeRoot
			for i := 0; i < depth; i++ {
				n := core.TreeNode{
					ID:     core.NodeID{Em: 0, Seq: i},
					Tree:   l,
					Parent: parent,
					Symbol: objects.Symbol(i % 2), // ⊥/0 ping-pong chain
				}
				page.Nodes = append(page.Nodes, n)
				parent = n.ID
			}
			cells := []sim.Value{page}
			v := core.NewView(cells, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.ComputeHistory(v, l)
			}
		})
	}
}

// BenchmarkExcessCycleWidth measures the Figure 6 cycle search on a
// dense excess graph.
func BenchmarkExcessCycleWidth(b *testing.B) {
	for _, k := range []int{3, 5, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			w := make(map[core.Edge]int)
			for a := 0; a < k; a++ {
				for c := 0; c < k; c++ {
					if a != c {
						w[core.Edge{From: objects.Symbol(a), To: objects.Symbol(c)}] = (a*k + c) % 7
					}
				}
			}
			g := &core.ExcessGraph{K: k, W: w}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.CycleWidth(0, objects.Symbol(k-1))
			}
		})
	}
}

// BenchmarkAudit measures the post-run legality audit.
func BenchmarkAudit(b *testing.B) {
	r := core.NewReduction(core.Config{K: 3, Quota: 6, A: core.CyclingA(3, 90, 4)})
	if _, err := r.System().Run(sim.Config{Scheduler: sim.RoundRobin(), MaxTotalSteps: 1 << 23, DisableTrace: true}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Audit(); err != nil {
			b.Fatal(err)
		}
	}
}
