package core

import (
	"sort"

	"repro/internal/sim"
)

// matchReleases computes the matching of Figure 5 lines 2–3: every
// released suspension (a successful c&s() of the constructed run) with
// a label compatible with l is matched to a distinct history transition
// of its edge occurring at or after its suspension point. It returns,
// per edge, the indices of history transitions left unmatched, and
// whether every release found a match (the audit of Lemma 1.2's
// "correct matching").
//
// Greedy earliest-fit per edge is exact here: releases sorted by
// suspension point matched to the earliest available transition is the
// classic interval-matching argument.
func matchReleases(v *View, l Label, h *History) (unmatched map[Edge][]int, ok bool) {
	trans := Transitions(h.Seq)
	byEdge := make(map[Edge][]int)
	for i, t := range trans {
		byEdge[t] = append(byEdge[t], i)
	}
	var releases []Suspension
	for _, s := range v.Suspensions(l) {
		if s.Released {
			releases = append(releases, s)
		}
	}
	sort.Slice(releases, func(i, j int) bool { return releases[i].HistLen < releases[j].HistLen })

	used := make(map[Edge][]bool)
	for ed, idxs := range byEdge {
		used[ed] = make([]bool, len(idxs))
	}
	ok = true
	for _, r := range releases {
		idxs := byEdge[r.Edge]
		matched := false
		for pos, ti := range idxs {
			// A transition at index ti is "after" the suspension if the
			// suspension happened at or before the history position
			// where the transition starts (HistLen symbols seen means
			// transitions with index ≥ HistLen−1 are still to come).
			if used[r.Edge][pos] || ti < r.HistLen-1 {
				continue
			}
			used[r.Edge][pos] = true
			matched = true
			break
		}
		if !matched {
			ok = false
		}
	}
	unmatched = make(map[Edge][]int)
	for ed, idxs := range byEdge {
		for pos, ti := range idxs {
			if !used[ed][pos] {
				unmatched[ed] = append(unmatched[ed], ti)
			}
		}
	}
	return unmatched, ok
}

// canRebalance implements Figure 5: release one of this emulator's
// suspended v-processes if its c&s can be safely charged to the history
// — at least m unmatched transitions of its edge occurred after its
// suspension — and an active replacement v-process on the same edge can
// be suspended in exchange. The released v-process's c&s succeeds: its
// response is its edge's source value.
func (em *emulator) canRebalance(e *sim.Env, v *View, h *History) bool {
	unmatched, _ := matchReleases(v, em.label, h)
	m := em.red.cfg.M

	// My suspended v-processes, sorted ascending by suspension point
	// (Figure 5 line 1).
	type cand struct {
		pageIdx int
		s       Suspension
	}
	var mine []cand
	for i, s := range em.mine.Suspensions {
		if !s.Released && s.Label.Compatible(em.label) {
			mine = append(mine, cand{pageIdx: i, s: s})
		}
	}
	sort.SliceStable(mine, func(i, j int) bool { return mine[i].s.HistLen < mine[j].s.HistLen })

	edges := em.activeByEdge()
	for _, c := range mine {
		ed := c.s.Edge
		// (1) at least m unmatched transitions of this edge, (2) all
		// occurring at or after the candidate's suspension point.
		later := 0
		for _, ti := range unmatched[ed] {
			if ti >= c.s.HistLen-1 {
				later++
			}
		}
		if later < m {
			continue
		}
		// (3) an active replacement v-process on the same edge.
		repl := edges[ed]
		if len(repl) == 0 {
			continue
		}
		vq := repl[0]

		// Lines 7–9: suspend the replacement, release the candidate,
		// and emulate its successful c&s (response = edge source).
		em.active[vq] = false
		em.mine.Suspensions = append(em.mine.Suspensions, Suspension{
			VProc:   vq,
			Edge:    ed,
			Label:   em.label,
			HistLen: len(h.Seq),
		})
		em.mine.Suspensions[c.pageIdx].Released = true
		em.writePage(e)

		vp := em.vprocs[c.s.VProc]
		vp.Feed(ed.From) // successful c&s(a→b) returns a
		em.active[c.s.VProc] = true
		return true
	}
	return false
}

// ReleasedCount counts released suspensions compatible with l, per edge
// (exported for experiments).
func ReleasedCount(v *View, l Label) map[Edge]int {
	out := make(map[Edge]int)
	for _, s := range v.Suspensions(l) {
		if s.Released {
			out[s.Edge]++
		}
	}
	return out
}

// AuditMatching re-runs the release/transition matching for a label and
// reports whether every release is explained by the history — the
// executable core of Lemma 1.2's correctness argument.
func AuditMatching(v *View, l Label) bool {
	h := ComputeHistory(v, l)
	_, ok := matchReleases(v, l, h)
	return ok
}
