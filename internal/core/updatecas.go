package core

import (
	"sort"

	"repro/internal/objects"
	"repro/internal/sim"
)

// updateCAS implements Figure 6: append a new value to the history of
// the run. The emulator picks x, the most popular next target among its
// active v-processes' pending c&s(cs→x) operations, then walks up from
// the node containing cs looking for the first ancestor where x can be
// attached while a wide-enough excess cycle pays for the detour
// (threshold Σ g·m^g by depth). If it climbs past the root, x must be a
// value never used in this run, and a new small tree t_{l·x} is
// activated — the group split on first uses (§3.1). Either way, every
// remaining active v-process's c&s fails with response x (line 15).
//
// It returns progressed=false when neither attachment nor activation is
// possible, which the paper's invariant rules out under full quotas.
func (em *emulator) updateCAS(e *sim.Env, v *View, h *History) (progressed bool, err error) {
	cs := h.CS()
	x, ok := em.popularTarget(cs)
	if !ok {
		// No active v-process at all (anything non-suspended would have
		// been a simple op or a pending c&s from cs). The emulator
		// idles, waiting for other emulators' transitions to ripen a
		// rebalance; a true deadlock surfaces as ErrIterationBudget.
		em.stats.Idles++
		return true, nil
	}

	g := NewExcessGraph(v, em.label, h)
	used := UsedSymbols(h)

	// Walk ancestors of the node containing cs (Figure 6 lines 5–13).
	path := NodePath(v, em.label, h.Rightmost)
	// Candidate attachment points, nearest first: the rightmost leaf,
	// its ancestors, then the tree root (symbol = label's last), then ∅.
	type anchor struct {
		node  NodeID
		sym   objects.Symbol
		depth int
	}
	var anchors []anchor
	for i, n := range path {
		anchors = append(anchors, anchor{node: n.ID, sym: n.Symbol, depth: h.RightmostDepth - i})
	}
	anchors = append(anchors, anchor{node: TreeRoot, sym: em.label.Last(), depth: 0})

	for _, a := range anchors {
		if a.sym == x {
			// Attaching x under a node holding the same symbol would
			// render a no-op x→x "transition"; the history only records
			// value changes.
			continue
		}
		w, hasCycle := g.CycleWidth(a.sym, x)
		if !hasCycle || w < Threshold(em.red.cfg.M, a.depth) {
			continue
		}
		// Attach x as a child of this anchor: FromParent is the cycle's
		// forward path anchor→x, ToParent the way back.
		from, ok1 := g.Path(a.sym, x, w)
		to, ok2 := g.Path(x, a.sym, w)
		if !ok1 || !ok2 {
			continue
		}
		node := TreeNode{
			ID:         NodeID{Em: em.id, Seq: em.nodeSeq},
			Tree:       em.label,
			Parent:     a.node,
			Symbol:     x,
			FromParent: from,
			ToParent:   to,
		}
		// Concurrency guard: render the hypothetical history with the
		// node attached and demand Margin spare suspensions beyond this
		// attach's exact per-edge consumption (including the climb from
		// the old rightmost leaf). Up to m−1 other emulators may update
		// from the same snapshot; the margin pays for them. The paper
		// hides this inside its m·k² quotas.
		if !em.affordable(v, h, g, em.label, func(p *Page) {
			p.Nodes = append(p.Nodes, node)
		}) {
			continue
		}
		em.mine.Nodes = append(em.mine.Nodes, node)
		em.nodeSeq++
		em.stats.Attaches++
		em.writePage(e)
		em.failActives(x)
		return true, nil
	}

	// Past the root (line 12): activate a new small tree for a fresh x.
	// Activation changes the rendering of the current tree from "cut at
	// the rightmost leaf" to a full DFS (the run climbs back to the tree
	// root before first-using x), so the exact consumption — climb
	// transitions plus the root→x first use — is computed on the
	// hypothetical child-label history, with the concurrency margin.
	child := em.label.Extend(x)
	if !used[x] && em.affordable(v, h, g, child, func(p *Page) {
		p.ActiveTrees = append(p.ActiveTrees, child)
	}) {
		em.label = child
		em.mine.Label = em.label
		em.mine.ActiveTrees = append(em.mine.ActiveTrees, em.label)
		em.stats.Activations++
		em.writePage(e)
		em.failActives(x)
		return true, nil
	}
	// Nothing affordable yet: idle. Other emulators' suspensions may
	// ripen an update or a rebalance on a later iteration; a permanent
	// starvation (quota genuinely too small) surfaces as
	// ErrIterationBudget, audited clean — the guard never fabricates an
	// unpayable transition.
	em.stats.Idles++
	return false, nil
}

// affordable renders the history of label as it would look after
// applying mutate to this emulator's page, and checks that every edge
// whose transition count grows beyond the current history keeps Margin
// spare suspensions beyond the growth.
func (em *emulator) affordable(v *View, h *History, g *ExcessGraph, label Label, mutate func(*Page)) bool {
	hypo := &View{Pages: make([]Page, len(v.Pages)), K: v.K}
	copy(hypo.Pages, v.Pages)
	mine := em.mine.clone()
	mutate(&mine)
	hypo.Pages[em.id] = mine
	h2 := ComputeHistory(hypo, label)

	before := make(map[Edge]int)
	for _, t := range Transitions(h.Seq) {
		before[t]++
	}
	after := make(map[Edge]int)
	for _, t := range Transitions(h2.Seq) {
		after[t]++
	}
	for ed, c := range after {
		delta := c - before[ed]
		if delta <= 0 {
			continue
		}
		// Weight already discounts the current history's transitions,
		// so the spare pool for ed is Weight(ed).
		if g.Weight(ed.From, ed.To) < delta+em.red.cfg.Margin {
			return false
		}
	}
	return true
}

// popularTarget picks x maximizing the number of active v-processes
// whose next operation is c&s(cs→x) (Figure 6 line 6), smallest symbol
// on ties. ok=false if no active v-process has a pending c&s from cs.
func (em *emulator) popularTarget(cs objects.Symbol) (objects.Symbol, bool) {
	counts := make(map[objects.Symbol]int)
	for _, vid := range em.sortedOwned() {
		if !em.active[vid] {
			continue
		}
		op := em.vprocs[vid].Next()
		if op.Kind == VCAS && op.From == cs {
			counts[op.To]++
		}
	}
	if len(counts) == 0 {
		return 0, false
	}
	syms := make([]objects.Symbol, 0, len(counts))
	for s := range counts {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	best := syms[0]
	for _, s := range syms[1:] {
		if counts[s] > counts[best] {
			best = s
		}
	}
	return best, true
}

// failActives implements Figure 6 line 15: every active v-process's
// pending c&s operation fails, returning x. (When updateCAS runs, every
// active v-process's next operation is a c&s from cs — otherwise
// EmulateSimpleOp would have fired — and after the history moved to x
// a response of x is the legal failed result.)
func (em *emulator) failActives(x objects.Symbol) {
	for _, vid := range em.sortedOwned() {
		if !em.active[vid] {
			continue
		}
		vp := em.vprocs[vid]
		if op := vp.Next(); op.Kind == VCAS {
			vp.Feed(sim.Value(x))
		}
	}
}
