package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/objects"
	"repro/internal/sim"
)

func TestScriptProcessRunsOpsThenDecides(t *testing.T) {
	ops := []core.VOp{
		{Kind: core.VWrite, Value: "x"},
		{Kind: core.VCAS, From: 0, To: 1},
	}
	vp := core.NewScript(42, ops)
	if op := vp.Next(); op.Kind != core.VWrite || op.Value != "x" {
		t.Fatalf("step 0 = %v", op)
	}
	// Next is an idempotent peek.
	if op := vp.Next(); op.Kind != core.VWrite {
		t.Fatalf("peek changed state: %v", op)
	}
	vp.Feed(nil)
	if op := vp.Next(); op.Kind != core.VCAS || op.To != 1 {
		t.Fatalf("step 1 = %v", op)
	}
	vp.Feed(objects.Symbol(0))
	if op := vp.Next(); op.Kind != core.VDecide || op.Decision != 42 {
		t.Fatalf("final = %v", op)
	}
}

func TestFeedAfterDecidePanics(t *testing.T) {
	vp := core.NewScript(1, nil)
	defer func() {
		if recover() == nil {
			t.Error("Feed on decided v-process did not panic")
		}
	}()
	vp.Feed(nil)
}

func TestAnnouncedLEWinnerPath(t *testing.T) {
	a := core.AnnouncedLE(3, []sim.Value{"A", "B"})
	vp := a.New(0)
	if op := vp.Next(); op.Kind != core.VWrite || op.Value != "A" {
		t.Fatalf("step 0 = %v", op)
	}
	vp.Feed(nil)
	if op := vp.Next(); op.Kind != core.VCAS || op.From != objects.Bottom || op.To != 1 {
		t.Fatalf("step 1 = %v", op)
	}
	vp.Feed(objects.Bottom) // success: register was ⊥
	if op := vp.Next(); op.Kind != core.VRead || op.Reg != 0 {
		t.Fatalf("winner should read its own register, got %v", op)
	}
	vp.Feed("A")
	if op := vp.Next(); op.Kind != core.VDecide || op.Decision != "A" {
		t.Fatalf("final = %v", op)
	}
}

func TestAnnouncedLELoserPath(t *testing.T) {
	a := core.AnnouncedLE(3, []sim.Value{"A", "B"})
	vp := a.New(1)
	vp.Feed(nil)               // announce
	vp.Feed(objects.Symbol(1)) // cas failed: symbol 1 (owner vid 0) is in
	if op := vp.Next(); op.Kind != core.VRead || op.Reg != 0 {
		t.Fatalf("loser should read the winner's register, got %v", op)
	}
	vp.Feed("A")
	if op := vp.Next(); op.Kind != core.VDecide || op.Decision != "A" {
		t.Fatalf("final = %v", op)
	}
}

func TestAnnouncedLECapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AnnouncedLE beyond k−1 did not panic")
		}
	}()
	core.AnnouncedLE(3, []sim.Value{"A", "B", "C"})
}

func TestFirstValueADecidesFirstSymbol(t *testing.T) {
	a := core.FirstValueA(4, 6)
	// Winner path.
	vp := a.New(2) // symbol 2%3+1 = 3
	if op := vp.Next(); op.Kind != core.VCAS || op.To != 3 {
		t.Fatalf("step 0 = %v", op)
	}
	vp.Feed(objects.Bottom)
	if op := vp.Next(); op.Kind != core.VDecide || op.Decision != sim.Value(objects.Symbol(3)) {
		t.Fatalf("winner decision = %v", op)
	}
	// Loser path adopts the observed value.
	vp = a.New(0)
	vp.Feed(objects.Symbol(2))
	if op := vp.Next(); op.Kind != core.VDecide || op.Decision != sim.Value(objects.Symbol(2)) {
		t.Fatalf("loser decision = %v", op)
	}
}

func TestCyclingAScriptShape(t *testing.T) {
	a := core.CyclingA(3, 4, 2)
	vp := a.New(0)
	vp.Feed(nil) // write
	// Two hop pairs: cas(⊥→s), cas(s→⊥) twice.
	for h := 0; h < 2; h++ {
		op := vp.Next()
		if op.Kind != core.VCAS || op.From != objects.Bottom {
			t.Fatalf("hop %d out = %v", h, op)
		}
		s := op.To
		vp.Feed(objects.Symbol(0))
		op = vp.Next()
		if op.Kind != core.VCAS || op.From != s || op.To != objects.Bottom {
			t.Fatalf("hop %d back = %v", h, op)
		}
		vp.Feed(s)
	}
	if op := vp.Next(); op.Kind != core.VDecide || op.Decision != 0 {
		t.Fatalf("final = %v", op)
	}
}

func TestVOpStrings(t *testing.T) {
	tests := []struct {
		op   core.VOp
		want string
	}{
		{core.VOp{Kind: core.VRead, Reg: 3}, "read(r3)"},
		{core.VOp{Kind: core.VWrite, Value: 7}, "write(7)"},
		{core.VOp{Kind: core.VCAS, From: 0, To: 2}, "cas(⊥→1)"},
		{core.VOp{Kind: core.VDecide, Decision: "x"}, "decide(x)"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestAlgorithmClones(t *testing.T) {
	a := core.FirstValueA(3, 5)
	vps := a.Clones()
	if len(vps) != 5 {
		t.Fatalf("Clones() gave %d, want 5", len(vps))
	}
	// Clones are independent state machines.
	vps[0].Feed(objects.Symbol(1))
	if vps[1].Next().Kind != core.VCAS {
		t.Error("feeding one clone advanced another")
	}
}
