package core

import (
	"sort"

	"repro/internal/objects"
	"repro/internal/sim"
)

// NodeID identifies a history-tree node by its writer and a per-writer
// sequence number. The paper places an m-tuple record at each tree
// position so that emulators never write the same word (Figure 1);
// writer-qualified IDs are the same discipline.
type NodeID struct {
	Em  int
	Seq int
}

// TreeRoot is the parent of a small tree's implicit root node.
var TreeRoot = NodeID{Em: -1, Seq: -1}

// TreeNode is one vertex of a small tree t_l (Figure 1): a symbol plus
// the FromParent/ToParent value paths the compare&swap walks between
// this node and its parent during the depth-first-search rendering of
// the history (Figure 4).
type TreeNode struct {
	ID     NodeID
	Tree   Label // which small tree t_l the node belongs to
	Parent NodeID
	Symbol objects.Symbol
	// FromParent and ToParent hold the intermediate symbols (exclusive
	// of both endpoints) the register passes through between the parent
	// symbol and this node's symbol, and back.
	FromParent []objects.Symbol
	ToParent   []objects.Symbol
}

// Edge is a directed transition of the compare&swap register.
type Edge struct {
	From, To objects.Symbol
}

// String renders "⊥→1".
func (ed Edge) String() string { return ed.From.String() + "→" + ed.To.String() }

// Suspension is one entry of the vp-graph lists (Figure 2): a
// v-process frozen just before a c&s(From→To), together with the label
// and the history length its emulator observed at suspension time.
// A released suspension corresponds to a successful c&s() operation in
// the constructed run.
type Suspension struct {
	VProc    int
	Edge     Edge
	Label    Label
	HistLen  int // length of the history observed at suspension time
	Released bool
}

// Page is one emulator's single-writer contribution to the shared
// state: its suspension lists, the tree nodes it has attached, and the
// small trees it has activated. An emulator updates its page with one
// atomic single-writer write; reading the whole shared state is one
// atomic snapshot over the m pages (Figure 3, line 2) — implemented by
// registers.Snapshot, which is itself built from single-writer
// registers, so the emulation stays inside the read/write model.
type Page struct {
	Em          int
	Label       Label
	Suspensions []Suspension
	Nodes       []TreeNode
	ActiveTrees []Label
	// Decided mirrors the emulator's final decision for post-run
	// analysis (nil while undecided).
	Decided sim.Value
}

// clone deep-copies the page so a published snapshot cell never aliases
// the emulator's working state.
func (p *Page) clone() Page {
	out := Page{Em: p.Em, Label: p.Label, Decided: p.Decided}
	out.Suspensions = append([]Suspension(nil), p.Suspensions...)
	out.Nodes = make([]TreeNode, len(p.Nodes))
	for i, n := range p.Nodes {
		n.FromParent = append([]objects.Symbol(nil), n.FromParent...)
		n.ToParent = append([]objects.Symbol(nil), n.ToParent...)
		out.Nodes[i] = n
	}
	out.ActiveTrees = append([]Label(nil), p.ActiveTrees...)
	return out
}

// View is a consistent snapshot of all emulator pages.
type View struct {
	Pages []Page
	K     int
}

// NewView assembles a view from snapshot cell values.
func NewView(cells []sim.Value, k int) *View {
	v := &View{Pages: make([]Page, len(cells)), K: k}
	for i, c := range cells {
		if c == nil {
			v.Pages[i] = Page{Em: i}
			continue
		}
		v.Pages[i] = c.(Page)
	}
	return v
}

// ActiveTrees returns the set of active small-tree labels, always
// including the root label t_⊥.
func (v *View) ActiveTrees() map[Label]bool {
	set := map[Label]bool{RootLabel(): true}
	for _, p := range v.Pages {
		for _, l := range p.ActiveTrees {
			set[l] = true
		}
	}
	return set
}

// TreeNodes returns the nodes of the small tree t_l from every page,
// in the deterministic sibling order (emulator id, then sequence).
func (v *View) TreeNodes(tree Label) []TreeNode {
	var out []TreeNode
	for _, p := range v.Pages {
		for _, n := range p.Nodes {
			if n.Tree == tree {
				out = append(out, n)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID.Em != out[j].ID.Em {
			return out[i].ID.Em < out[j].ID.Em
		}
		return out[i].ID.Seq < out[j].ID.Seq
	})
	return out
}

// Suspensions returns every suspension whose label is compatible with l
// (the suspensions that belong to the run l identifies).
func (v *View) Suspensions(l Label) []Suspension {
	var out []Suspension
	for _, p := range v.Pages {
		for _, s := range p.Suspensions {
			if s.Label.Compatible(l) {
				out = append(out, s)
			}
		}
	}
	return out
}

// SuspendedEver counts, per edge, all suspensions compatible with l
// (released or not).
func (v *View) SuspendedEver(l Label) map[Edge]int {
	out := make(map[Edge]int)
	for _, s := range v.Suspensions(l) {
		out[s.Edge]++
	}
	return out
}

// MaximalLabels returns the active tree labels that have no active
// extension — the groups' final runs.
func (v *View) MaximalLabels() []Label {
	active := v.ActiveTrees()
	var out []Label
	for l := range active {
		maximal := true
		for other := range active {
			if other != l && other.HasPrefix(l) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Transitions lists the consecutive pairs of a history.
func Transitions(hist []objects.Symbol) []Edge {
	if len(hist) < 2 {
		return nil
	}
	out := make([]Edge, 0, len(hist)-1)
	for i := 0; i+1 < len(hist); i++ {
		out = append(out, Edge{From: hist[i], To: hist[i+1]})
	}
	return out
}
