package core_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/objects"
	"repro/internal/sim"
)

// contenders builds a ContendersLE reduction: n v-processes, quota per
// edge, k-valued compare&swap, m = (k−1)!+1 emulators.
func contenders(k, n, quota int) *core.Reduction {
	ids := make([]sim.Value, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("id%d", i)
	}
	return core.NewReduction(core.Config{
		K:     k,
		Quota: quota,
		A:     core.ContendersLE(k, ids),
	})
}

// runReduction executes a reduction under the given scheduler and
// returns the report.
func runReduction(t *testing.T, r *core.Reduction, sched sim.Scheduler) *core.Report {
	t.Helper()
	res, err := r.System().Run(sim.Config{Scheduler: sched, MaxTotalSteps: 1 << 23})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Halted {
		t.Fatalf("reduction halted with live emulators %v", res.ReadyAtHalt)
	}
	return r.Analyze(res)
}

// TestReductionFirstValueCensus is E1's core assertion: emulating the
// (correct, unboundedly-many-process) first-value consensus over
// compare&swap-(k), every emulator decides, the audit passes, at most
// (k−1)! distinct values are decided, and every emulator's decision
// matches the first symbol of its group's label — one decision per
// constructed run, exactly Claim 1's census.
func TestReductionFirstValueCensus(t *testing.T) {
	cases := []struct {
		k, n, seeds int
	}{
		{k: 3, n: 112, seeds: 6},
		{k: 4, n: 168, seeds: 6},
		// k=5 runs m = 4!+1 = 25 emulators; Π sized so every emulator
		// holds quota+extras per edge.
		{k: 5, n: 500, seeds: 2},
	}
	for _, tc := range cases {
		k, n := tc.k, tc.n
		for seed := int64(0); seed < int64(tc.seeds); seed++ {
			r := core.NewReduction(core.Config{K: k, Quota: 3, A: core.FirstValueA(k, n)})
			rep := runReduction(t, r, sim.Random(seed))
			if len(rep.Errors) != 0 {
				t.Fatalf("k=%d seed=%d: emulator errors:\n%s", k, seed, core.DescribeReport(rep))
			}
			if rep.Distinct > rep.MaxLabels {
				t.Errorf("k=%d seed=%d: %d distinct decisions exceed (k−1)! = %d",
					k, seed, rep.Distinct, rep.MaxLabels)
			}
			for j, d := range rep.Decisions {
				label := rep.Labels[j]
				if len(label) < 2 {
					t.Errorf("k=%d seed=%d: emulator %d decided with root label", k, seed, j)
					continue
				}
				want := label.Symbols()[1]
				if d != sim.Value(want) {
					t.Errorf("k=%d seed=%d: emulator %d decided %v, label %s implies %v",
						k, seed, j, d, label, want)
				}
			}
			if err := r.Audit(); err != nil {
				t.Errorf("k=%d seed=%d: audit: %v", k, seed, err)
			}
		}
	}
}

// TestReductionSplitsGroups is E2: with emulator-biased contention the
// emulators split into multiple groups (labels diverge on first-used
// values), never exceeding (k−1)! of them.
func TestReductionSplitsGroups(t *testing.T) {
	k := 3
	m := core.MaxLabels(k) + 1 // 3 emulators, biased to symbols 1,2,1
	split := 0
	for seed := int64(0); seed < 8; seed++ {
		r := core.NewReduction(core.Config{K: k, Quota: 5, A: core.BiasedA(k, m, 60)})
		rep := runReduction(t, r, sim.Random(seed))
		if len(rep.Errors) != 0 {
			t.Fatalf("seed %d: errors:\n%s", seed, core.DescribeReport(rep))
		}
		if rep.Groups > rep.MaxLabels {
			t.Errorf("seed %d: %d groups exceed (k−1)! = %d", seed, rep.Groups, rep.MaxLabels)
		}
		if rep.Groups > 1 {
			split++
		}
		if err := r.Audit(); err != nil {
			t.Errorf("seed %d: audit: %v", seed, err)
		}
	}
	if split == 0 {
		t.Error("biased contention never split the emulators into groups")
	}
}

func TestReductionContendersRoundRobin(t *testing.T) {
	r := contenders(3, 36, 3)
	rep := runReduction(t, r, sim.RoundRobin())
	if len(rep.Errors) != 0 {
		t.Fatalf("emulator errors:\n%s", core.DescribeReport(rep))
	}
	if err := r.Audit(); err != nil {
		t.Errorf("audit: %v", err)
	}
}

func TestReductionContendersRandomSchedules(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := contenders(3, 36, 3)
		rep := runReduction(t, r, sim.Random(seed))
		if len(rep.Errors) != 0 {
			t.Fatalf("seed %d: emulator errors:\n%s", seed, core.DescribeReport(rep))
		}
		if err := r.Audit(); err != nil {
			t.Errorf("seed %d: audit: %v", seed, err)
		}
	}
}

// TestReductionCyclingAuditsAndRebalances is E8: the cycling algorithm
// drives returning transitions, in-tree attachment and — once m
// unmatched transitions accumulate on an edge — the CanRebalance
// release path of Figure 5. The audit must still explain every release.
func TestReductionCyclingAuditsAndRebalances(t *testing.T) {
	r := core.NewReduction(core.Config{K: 3, Quota: 6, A: core.CyclingA(3, 90, 4)})
	rep := runReduction(t, r, sim.RoundRobin())
	if len(rep.Errors) != 0 {
		t.Fatalf("errors:\n%s", core.DescribeReport(rep))
	}
	if err := r.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
	v := r.FinalView()
	released := 0
	deepHistory := false
	for _, l := range v.MaximalLabels() {
		for _, c := range core.ReleasedCount(v, l) {
			released += c
		}
		if len(core.ComputeHistory(v, l).Seq) >= 6 {
			deepHistory = true
		}
	}
	if released == 0 {
		t.Error("no suspension was ever released: Figure 5 path not exercised")
	}
	if !deepHistory {
		t.Error("histories stayed trivial: in-tree attachment not exercised")
	}
}

// TestReductionCyclingK4 runs the richer alphabet (m = 3!+1 = 7
// emulators). The paper's quota at this scale is m·k² = 112 per edge —
// far beyond what a simulation-sized Π can supply — so some emulators
// may starve (idle to their budget). The contract that must hold
// anyway: the audit is clean (no fabricated transitions), a majority of
// emulators decide, and decisions stay within the (k−1)! census.
func TestReductionCyclingK4(t *testing.T) {
	r := core.NewReduction(core.Config{K: 4, Quota: 5, A: core.CyclingA(4, 210, 3)})
	rep := runReduction(t, r, sim.Random(2))
	if err := r.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
	if decided := r.Config().M - len(rep.Errors); decided < r.Config().M/2+1 {
		t.Errorf("only %d of %d emulators decided:\n%s", decided, r.Config().M, core.DescribeReport(rep))
	}
	if rep.Distinct > rep.MaxLabels {
		t.Errorf("%d distinct decisions exceed %d", rep.Distinct, rep.MaxLabels)
	}
}

// TestReductionSurvivesEmulatorCrash: algorithm B must be wait-free —
// surviving emulators decide even when one crashes mid-emulation.
func TestReductionSurvivesEmulatorCrash(t *testing.T) {
	r := core.NewReduction(core.Config{K: 3, Quota: 3, A: core.FirstValueA(3, 80)})
	res, err := r.System().Run(sim.Config{
		Scheduler:     sim.Random(5),
		Faults:        sim.CrashAfterSteps(1, 40),
		MaxTotalSteps: 1 << 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted {
		t.Fatal("halted")
	}
	rep := r.Analyze(res)
	decided := 0
	for j := 0; j < r.Config().M; j++ {
		if _, ok := rep.Decisions[j]; ok {
			decided++
		} else if !res.Crashed[j] {
			t.Errorf("surviving emulator %d did not decide: %v", j, rep.Errors[j])
		}
	}
	if decided < r.Config().M-1 {
		t.Errorf("only %d of %d emulators decided", decided, r.Config().M)
	}
	if rep.Distinct > rep.MaxLabels {
		t.Errorf("%d distinct decisions exceed %d", rep.Distinct, rep.MaxLabels)
	}
}

// TestReductionStallsWithoutSuspensions is the quota ablation
// (DESIGN.md §5.4): with too few v-processes to ever meet the
// suspension quota, no history transition can be paid and the update
// path must refuse to fabricate one — emulators stall instead of
// constructing an illegal run.
func TestReductionStallsWithoutSuspensions(t *testing.T) {
	// 4 v-processes, quota 100: no edge ever reaches the quota.
	r := core.NewReduction(core.Config{
		K: 3, Quota: 100, A: core.FirstValueA(3, 4), MaxIterations: 200,
	})
	res, err := r.System().Run(sim.Config{Scheduler: sim.RoundRobin(), MaxTotalSteps: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Analyze(res)
	stalls := 0
	for _, err := range rep.Errors {
		if errors.Is(err, core.ErrIterationBudget) {
			stalls++
		}
	}
	if stalls == 0 {
		t.Errorf("no emulator stalled; report:\n%s", core.DescribeReport(rep))
	}
	// Crucially, whatever partial state exists must still audit clean:
	// the stall guard refused the unpayable transition.
	if err := r.Audit(); err != nil {
		t.Errorf("audit after stall: %v", err)
	}
}

// TestReductionUsesOnlyReadWriteRegisters pins the reduction's whole
// point: algorithm B must not touch any compare&swap object. The
// system's objects are the snapshot's SWMR cells and the v-processes'
// tagged (single-writer) registers only.
func TestReductionUsesOnlyReadWriteRegisters(t *testing.T) {
	r := core.NewReduction(core.Config{K: 3, Quota: 2, A: core.FirstValueA(3, 8)})
	sys := r.System()
	if obj := sys.Object("pages.cell[0]"); obj == nil {
		t.Error("snapshot cells missing")
	}
	if obj := sys.Object("A.r[0]"); obj == nil {
		t.Error("tagged registers missing")
	}
	// No object in the reduction is a CAS register.
	for i := 0; i < 100; i++ {
		for _, name := range []string{fmt.Sprintf("cas[%d]", i), "cas"} {
			if obj := sys.Object(name); obj != nil {
				if _, isCAS := obj.(*objects.CAS); isCAS {
					t.Fatalf("reduction system contains a compare&swap object %q", name)
				}
			}
		}
	}
}

func TestMaxLabels(t *testing.T) {
	want := map[int]int{2: 1, 3: 2, 4: 6, 5: 24, 6: 120}
	for k, n := range want {
		if got := core.MaxLabels(k); got != n {
			t.Errorf("MaxLabels(%d) = %d, want %d", k, got, n)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	r := core.NewReduction(core.Config{K: 4, A: core.FirstValueA(4, 7)})
	cfg := r.Config()
	if cfg.M != core.MaxLabels(4)+1 {
		t.Errorf("default M = %d, want %d", cfg.M, core.MaxLabels(4)+1)
	}
	if cfg.Quota != cfg.M*4*4 {
		t.Errorf("default Quota = %d, want m·k² = %d", cfg.Quota, cfg.M*16)
	}
	if cfg.MaxIterations != core.DefaultMaxIterations {
		t.Errorf("default MaxIterations = %d", cfg.MaxIterations)
	}
}

// TestActionStatsAnatomy: the emulation's branch counters expose its
// anatomy — the cycling workload must exercise every Figure 3 branch
// (suspensions, simple ops, rebalances, attaches, activations).
func TestActionStatsAnatomy(t *testing.T) {
	r := core.NewReduction(core.Config{K: 3, Quota: 6, A: core.CyclingA(3, 90, 4)})
	rep := runReduction(t, r, sim.RoundRobin())
	if len(rep.Errors) != 0 {
		t.Fatalf("errors:\n%s", core.DescribeReport(rep))
	}
	total := rep.TotalStats()
	if total.Suspends == 0 {
		t.Error("no suspension batches")
	}
	if total.SimpleOps == 0 {
		t.Error("no simple ops")
	}
	if total.Rebalances == 0 {
		t.Error("no rebalances")
	}
	if total.Attaches == 0 {
		t.Error("no in-tree attaches")
	}
	if total.Activations == 0 {
		t.Error("no tree activations")
	}
	if total.Iterations < total.Suspends+total.SimpleOps+total.Rebalances {
		t.Errorf("iteration count %d below branch sum", total.Iterations)
	}
}
