package core_test

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/objects"
)

func TestLabelBasics(t *testing.T) {
	root := core.RootLabel()
	if root.String() != "⊥" {
		t.Errorf("root label = %q", root.String())
	}
	if root.Last() != objects.Bottom {
		t.Errorf("root.Last() = %v", root.Last())
	}
	l := root.Extend(2).Extend(1)
	if l.String() != "⊥·1·0" {
		t.Errorf("label = %q", l.String())
	}
	if l.Last() != 1 {
		t.Errorf("Last = %v, want 1", l.Last())
	}
	if got := l.Symbols(); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 1 {
		t.Errorf("Symbols = %v", got)
	}
	if l.Parent() != root.Extend(2) {
		t.Errorf("Parent = %v", l.Parent())
	}
	if root.Parent() != root {
		t.Error("root.Parent() is not root")
	}
}

func TestLabelPrefixAndCompatibility(t *testing.T) {
	root := core.RootLabel()
	a := root.Extend(1)
	ab := a.Extend(2)
	b := root.Extend(2)
	tests := []struct {
		x, y       core.Label
		compatible bool
	}{
		{root, root, true},
		{root, ab, true},
		{a, ab, true},
		{ab, a, true},
		{a, b, false},
		{ab, b, false},
	}
	for _, tt := range tests {
		if got := tt.x.Compatible(tt.y); got != tt.compatible {
			t.Errorf("Compatible(%s,%s) = %v, want %v", tt.x, tt.y, got, tt.compatible)
		}
	}
	if !ab.HasPrefix(a) || a.HasPrefix(ab) {
		t.Error("HasPrefix misbehaves")
	}
	if !ab.Contains(2) || ab.Contains(3) {
		t.Error("Contains misbehaves")
	}
}

func TestLabelProperties(t *testing.T) {
	// Extend then Parent is the identity.
	extendParent := func(symsRaw []uint8) bool {
		l := core.RootLabel()
		for _, s := range symsRaw {
			l = l.Extend(objects.Symbol(s%6 + 1))
		}
		ext := l.Extend(7)
		return ext.Parent() == l
	}
	if err := quick.Check(extendParent, nil); err != nil {
		t.Errorf("extend/parent: %v", err)
	}
	// Compatibility is symmetric and prefix-closed.
	symmetric := func(aRaw, bRaw []uint8) bool {
		a, b := core.RootLabel(), core.RootLabel()
		for _, s := range aRaw {
			a = a.Extend(objects.Symbol(s%6 + 1))
		}
		for _, s := range bRaw {
			b = b.Extend(objects.Symbol(s%6 + 1))
		}
		return a.Compatible(b) == b.Compatible(a)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
}
