package linearize_test

import (
	"testing"

	"repro/internal/linearize"
	"repro/internal/registers"
	"repro/internal/sim"
	"repro/internal/spec"
)

func span(p sim.ProcID, kind sim.OpKind, args []sim.Value, result sim.Value, start, end int) *sim.Span {
	return &sim.Span{Proc: p, Object: "o", Kind: kind, Args: args, Result: result, Start: start, End: end}
}

func TestRegisterSequentialOk(t *testing.T) {
	spans := []*sim.Span{
		span(0, sim.OpWrite, []sim.Value{1}, nil, 0, 1),
		span(1, sim.OpRead, nil, 1, 2, 3),
	}
	rep := linearize.Check(spec.Register{Initial: 0}, spans, linearize.Options{})
	if !rep.Ok {
		t.Fatal("sequential write-then-read rejected")
	}
	if len(rep.Order) != 2 || rep.Order[0] != 0 {
		t.Errorf("Order = %v, want [0 1]", rep.Order)
	}
}

func TestRegisterStaleReadRejected(t *testing.T) {
	// Write(1) completes before the read starts, yet the read returns
	// the initial value: not linearizable.
	spans := []*sim.Span{
		span(0, sim.OpWrite, []sim.Value{1}, nil, 0, 1),
		span(1, sim.OpRead, nil, 0, 2, 3),
	}
	rep := linearize.Check(spec.Register{Initial: 0}, spans, linearize.Options{})
	if rep.Ok {
		t.Error("stale read accepted")
	}
}

func TestRegisterConcurrentEitherOrder(t *testing.T) {
	// Concurrent write and read: the read may return old or new value.
	for _, result := range []int{0, 1} {
		spans := []*sim.Span{
			span(0, sim.OpWrite, []sim.Value{1}, nil, 0, 5),
			span(1, sim.OpRead, nil, result, 1, 2),
		}
		rep := linearize.Check(spec.Register{Initial: 0}, spans, linearize.Options{})
		if !rep.Ok {
			t.Errorf("concurrent read returning %d rejected", result)
		}
	}
}

func TestNewOldInversionRejected(t *testing.T) {
	// Two sequential reads during one long write: new/old inversion
	// (first read sees the new value, second the old) is the classic
	// non-linearizable (merely "regular") behaviour.
	spans := []*sim.Span{
		span(0, sim.OpWrite, []sim.Value{1}, nil, 0, 10),
		span(1, sim.OpRead, nil, 1, 1, 2),
		span(1, sim.OpRead, nil, 0, 3, 4),
	}
	rep := linearize.Check(spec.Register{Initial: 0}, spans, linearize.Options{})
	if rep.Ok {
		t.Error("new/old inversion accepted")
	}
}

func TestPendingSpanMayTakeEffect(t *testing.T) {
	// A crashed writer's pending write may explain a later read.
	spans := []*sim.Span{
		span(0, sim.OpWrite, []sim.Value{7}, nil, 0, -1),
		span(1, sim.OpRead, nil, 7, 5, 6),
	}
	rep := linearize.Check(spec.Register{Initial: 0}, spans, linearize.Options{AllowPending: true})
	if !rep.Ok {
		t.Error("pending write explaining a read rejected")
	}
	if !linearize.Check(spec.Register{Initial: 0}, spans, linearize.Options{}).Ok {
		// Without AllowPending the history must be rejected.
	} else {
		t.Error("pending span accepted with AllowPending=false")
	}
}

func TestPendingSpanMayVanish(t *testing.T) {
	spans := []*sim.Span{
		span(0, sim.OpWrite, []sim.Value{7}, nil, 0, -1),
		span(1, sim.OpRead, nil, 0, 5, 6),
	}
	rep := linearize.Check(spec.Register{Initial: 0}, spans, linearize.Options{AllowPending: true})
	if !rep.Ok {
		t.Error("vanishing pending write rejected")
	}
}

func TestQueueSpecLinearization(t *testing.T) {
	import1 := []*sim.Span{
		span(0, "enq", []sim.Value{"a"}, nil, 0, 3),
		span(1, "enq", []sim.Value{"b"}, nil, 1, 2),
		span(0, "deq", nil, "b", 4, 5),
		span(1, "deq", nil, "a", 6, 7),
	}
	rep := linearize.Check(spec.QueueSpec{}, import1, linearize.Options{})
	if !rep.Ok {
		t.Error("valid queue history rejected (concurrent enqueues may order either way)")
	}
	bad := []*sim.Span{
		span(0, "enq", []sim.Value{"a"}, nil, 0, 1),
		span(1, "enq", []sim.Value{"b"}, nil, 2, 3),
		span(0, "deq", nil, "b", 4, 5),
		span(1, "deq", nil, "a", 6, 7),
	}
	rep = linearize.Check(spec.QueueSpec{}, bad, linearize.Options{})
	if rep.Ok {
		t.Error("FIFO violation accepted")
	}
}

func TestElectionSpec(t *testing.T) {
	ok := []*sim.Span{
		span(0, "elect", []sim.Value{0}, 0, 0, 1),
		span(1, "elect", []sim.Value{1}, 0, 2, 3),
	}
	if !linearize.Check(spec.ElectionSpec{}, ok, linearize.Options{}).Ok {
		t.Error("valid election history rejected")
	}
	split := []*sim.Span{
		span(0, "elect", []sim.Value{0}, 0, 0, 1),
		span(1, "elect", []sim.Value{1}, 1, 2, 3), // disagrees with first
	}
	if linearize.Check(spec.ElectionSpec{}, split, linearize.Options{}).Ok {
		t.Error("split election accepted")
	}
}

func TestTruncationReported(t *testing.T) {
	// Many concurrent identical ops with a tiny budget must truncate.
	var spans []*sim.Span
	for i := 0; i < 8; i++ {
		spans = append(spans, span(sim.ProcID(i), sim.OpWrite, []sim.Value{i}, nil, 0, 100))
	}
	spans = append(spans, span(12, sim.OpRead, nil, 999, 101, 102)) // unsatisfiable
	rep := linearize.Check(spec.Register{Initial: 0}, spans, linearize.Options{MaxConfigs: 50})
	if rep.Ok {
		t.Fatal("unsatisfiable history accepted")
	}
	if !rep.Truncated {
		t.Error("truncation not reported")
	}
}

// TestSnapshotLinearizable runs the real snapshot protocol under many
// random schedules and crash patterns and checks every produced history
// against the snapshot spec: the double-collect construction must
// always linearize.
func TestSnapshotLinearizable(t *testing.T) {
	const n = 3
	for seed := int64(0); seed < 40; seed++ {
		sys := sim.NewSystem()
		snap := registers.NewSnapshot(sys, "snap", n, 0)
		for i := 0; i < n; i++ {
			sys.Spawn(func(e *sim.Env) (sim.Value, error) {
				for v := 1; v <= 2; v++ {
					snap.Update(e, int(e.ID())*10+v)
					snap.Scan(e)
				}
				return nil, nil
			})
		}
		cfg := sim.Config{Scheduler: sim.Random(seed)}
		if seed%3 == 0 {
			cfg.Faults = sim.RandomCrashes(seed, 0.05, 1)
		}
		res, err := sys.Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep := linearize.Check(
			spec.SnapshotSpec{N: n, Initial: 0},
			res.Trace.SpansOf("snap"),
			linearize.Options{AllowPending: true},
		)
		if !rep.Ok {
			t.Errorf("seed %d: snapshot history not linearizable (explored %d)", seed, rep.Explored)
		}
	}
}

// TestSingleCollectNotLinearizable demonstrates the ablation of
// DESIGN.md §5.3: the naive single-collect scan produces histories the
// checker rejects under some schedule.
func TestSingleCollectNotLinearizable(t *testing.T) {
	// The classic violation: the collector reads component 0 before
	// p0's completed update, then p0's update completes, then p1's
	// update starts and completes, then the collector reads component 1
	// — an inverted view no linearization explains. The window is
	// narrow, so drive it with an explicit schedule: the collector
	// takes one step (reads cell 0), then each updater runs to
	// completion, then the collector finishes.
	sys := sim.NewSystem()
	snap := registers.NewSnapshot(sys, "snap", 3, 0)
	updater := func(e *sim.Env) (sim.Value, error) {
		snap.Update(e, 1)
		return nil, nil
	}
	sys.Spawn(updater)
	sys.Spawn(updater)
	sys.Spawn(func(e *sim.Env) (sim.Value, error) {
		snap.UnsafeSingleCollect(e)
		return nil, nil
	})
	schedule := []sim.ProcID{2}
	for i := 0; i < 8; i++ {
		schedule = append(schedule, 0)
	}
	for i := 0; i < 8; i++ {
		schedule = append(schedule, 1)
	}
	res, err := sys.Run(sim.Config{Scheduler: sim.ReplayThen(schedule, sim.RoundRobin())})
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted {
		t.Fatal("run halted: schedule did not match protocol step counts")
	}
	rep := linearize.Check(
		spec.SnapshotSpec{N: 3, Initial: 0},
		res.Trace.SpansOf("snap"),
		linearize.Options{},
	)
	if rep.Ok {
		t.Error("single-collect inversion history accepted as linearizable")
	}
}
