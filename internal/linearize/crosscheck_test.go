package linearize_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/linearize"
	"repro/internal/sim"
	"repro/internal/spec"
)

// bruteForce decides linearizability of complete spans by trying every
// permutation respecting real-time order — the reference oracle for the
// memoized checker.
func bruteForce(sp spec.Spec, spans []*sim.Span) bool {
	n := len(spans)
	perm := make([]int, n)
	used := make([]bool, n)
	var rec func(depth int, state spec.State) bool
	rec = func(depth int, state spec.State) bool {
		if depth == n {
			return true
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			// Real-time: i may come next only if no unused j ends
			// before i starts.
			ok := true
			for j := 0; j < n; j++ {
				if j != i && !used[j] && spans[j].End < spans[i].Start {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			next, res := sp.Apply(state, spans[i].Proc, spans[i].Kind, spans[i].Args)
			if !valuesRender(res, spans[i].Result) {
				continue
			}
			used[i] = true
			perm[depth] = i
			if rec(depth+1, next) {
				used[i] = false
				return true
			}
			used[i] = false
		}
		return false
	}
	return rec(0, sp.Init())
}

func valuesRender(a, b sim.Value) bool {
	if a == nil && b == nil {
		return true
	}
	return renderValue(a) == renderValue(b)
}

func renderValue(v sim.Value) string {
	if v == nil {
		return "<nil>"
	}
	return sprint(v)
}

func sprint(v sim.Value) string { return fmt.Sprint(v) }

// TestCheckerMatchesBruteForce cross-validates the memoized checker
// against the brute-force oracle on thousands of random small register
// histories.
func TestCheckerMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 3000; trial++ {
		nOps := 2 + rng.Intn(4)
		spans := make([]*sim.Span, 0, nOps)
		for i := 0; i < nOps; i++ {
			start := rng.Intn(8)
			end := start + rng.Intn(4)
			proc := sim.ProcID(rng.Intn(3))
			if rng.Intn(2) == 0 {
				spans = append(spans, &sim.Span{
					Proc: proc, Object: "r", Kind: sim.OpWrite,
					Args: []sim.Value{rng.Intn(3)}, Start: start, End: end,
				})
			} else {
				spans = append(spans, &sim.Span{
					Proc: proc, Object: "r", Kind: sim.OpRead,
					Result: rng.Intn(3), Start: start, End: end,
				})
			}
		}
		want := bruteForce(spec.Register{Initial: 0}, spans)
		got := linearize.Check(spec.Register{Initial: 0}, spans, linearize.Options{}).Ok
		if got != want {
			t.Fatalf("trial %d: checker=%v oracle=%v for %v", trial, got, want, spans)
		}
	}
}

// TestCheckerMatchesBruteForceQueue does the same over queue histories.
func TestCheckerMatchesBruteForceQueue(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 1500; trial++ {
		nOps := 2 + rng.Intn(4)
		spans := make([]*sim.Span, 0, nOps)
		for i := 0; i < nOps; i++ {
			start := rng.Intn(8)
			end := start + rng.Intn(4)
			proc := sim.ProcID(rng.Intn(3))
			if rng.Intn(2) == 0 {
				spans = append(spans, &sim.Span{
					Proc: proc, Object: "q", Kind: "enq",
					Args: []sim.Value{rng.Intn(2)}, Start: start, End: end,
				})
			} else {
				var res sim.Value
				if rng.Intn(3) > 0 {
					res = rng.Intn(2)
				}
				spans = append(spans, &sim.Span{
					Proc: proc, Object: "q", Kind: "deq",
					Result: res, Start: start, End: end,
				})
			}
		}
		want := bruteForce(spec.QueueSpec{}, spans)
		got := linearize.Check(spec.QueueSpec{}, spans, linearize.Options{}).Ok
		if got != want {
			t.Fatalf("trial %d: checker=%v oracle=%v for %v", trial, got, want, spans)
		}
	}
}
