package linearize_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/linearize"
	"repro/internal/registers"
	"repro/internal/sim"
	"repro/internal/spec"
)

// BenchmarkCheckerRegister measures the memoized Wing–Gong search on
// random concurrent register histories of growing size.
func BenchmarkCheckerRegister(b *testing.B) {
	for _, nOps := range []int{6, 10, 14} {
		b.Run(fmt.Sprintf("ops=%d", nOps), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			histories := make([][]*sim.Span, 64)
			for h := range histories {
				spans := make([]*sim.Span, 0, nOps)
				for i := 0; i < nOps; i++ {
					start := rng.Intn(10)
					end := start + rng.Intn(5)
					if rng.Intn(2) == 0 {
						spans = append(spans, &sim.Span{Proc: sim.ProcID(i % 4), Kind: sim.OpWrite,
							Args: []sim.Value{rng.Intn(3)}, Start: start, End: end})
					} else {
						spans = append(spans, &sim.Span{Proc: sim.ProcID(i % 4), Kind: sim.OpRead,
							Result: rng.Intn(3), Start: start, End: end})
					}
				}
				histories[h] = spans
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				linearize.Check(spec.Register{Initial: 0}, histories[i%len(histories)], linearize.Options{})
			}
		})
	}
}

// BenchmarkCheckerSnapshotHistory measures checking a real snapshot
// protocol trace end to end (simulation + check).
func BenchmarkCheckerSnapshotHistory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := sim.NewSystem()
		snap := registers.NewSnapshot(sys, "snap", 3, 0)
		for p := 0; p < 3; p++ {
			sys.Spawn(func(e *sim.Env) (sim.Value, error) {
				snap.Update(e, int(e.ID())+1)
				snap.Scan(e)
				return nil, nil
			})
		}
		res, err := sys.Run(sim.Config{Scheduler: sim.Random(int64(i))})
		if err != nil {
			b.Fatal(err)
		}
		rep := linearize.Check(spec.SnapshotSpec{N: 3, Initial: 0}, res.Trace.SpansOf("snap"), linearize.Options{})
		if !rep.Ok {
			b.Fatal("snapshot history rejected")
		}
	}
}
