// Package linearize decides whether a concurrent history of operation
// spans is linearizable with respect to a sequential specification
// (Herlihy & Wing, "Linearizability: A Correctness Condition for
// Concurrent Objects", TOPLAS 1990 — reference [12] of the paper).
//
// The checker is the Wing–Gong search with memoization: it explores
// orders of the spans consistent with their real-time precedence,
// replaying the sequential spec and pruning configurations
// (linearized-set, spec-state) that have already failed.
package linearize

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/spec"
)

// Options tunes a check.
type Options struct {
	// AllowPending controls spans with End < 0 (their process crashed
	// mid-operation). When true, a pending span may linearize anywhere
	// after its start or not at all, with its result unconstrained —
	// the standard completion semantics. When false, pending spans are
	// rejected outright.
	AllowPending bool
	// MaxConfigs caps the number of explored configurations as a safety
	// net; 0 means DefaultMaxConfigs.
	MaxConfigs int
}

// DefaultMaxConfigs bounds checker work when Options.MaxConfigs is 0.
const DefaultMaxConfigs = 1 << 22

// Report is the outcome of a linearizability check.
type Report struct {
	// Ok reports whether a valid linearization exists.
	Ok bool
	// Order, when Ok, lists indices into the checked span slice in
	// linearization order (pending spans that did not take effect are
	// omitted).
	Order []int
	// Explored is the number of configurations visited.
	Explored int
	// Truncated reports that the search hit MaxConfigs before deciding;
	// when set, Ok=false means "not found within budget".
	Truncated bool
}

// Check decides whether spans form a linearizable history of sp.
func Check(sp spec.Spec, spans []*sim.Span, opts Options) Report {
	if opts.MaxConfigs == 0 {
		opts.MaxConfigs = DefaultMaxConfigs
	}
	if !opts.AllowPending {
		for _, s := range spans {
			if !s.Complete() {
				return Report{Ok: false}
			}
		}
	}
	c := &checker{
		spec:   sp,
		spans:  spans,
		opts:   opts,
		failed: make(map[string]bool),
	}
	order, ok := c.search(newBitset(len(spans)), sp.Init(), nil)
	return Report{Ok: ok, Order: order, Explored: c.explored, Truncated: c.truncated}
}

type checker struct {
	spec      spec.Spec
	spans     []*sim.Span
	opts      Options
	failed    map[string]bool
	explored  int
	truncated bool
}

// search tries to extend the linearization `prefix` given the set of
// already-linearized (or dropped) spans and the current spec state.
func (c *checker) search(done bitset, state spec.State, prefix []int) ([]int, bool) {
	if done.count() == len(c.spans) {
		out := make([]int, len(prefix))
		copy(out, prefix)
		return out, true
	}
	c.explored++
	if c.explored > c.opts.MaxConfigs {
		c.truncated = true
		return nil, false
	}
	key := done.key() + "|" + c.spec.Fingerprint(state)
	if c.failed[key] {
		return nil, false
	}

	for i, s := range c.spans {
		if done.has(i) || !c.minimal(done, i) {
			continue
		}
		if s.Complete() {
			next, res := c.spec.Apply(state, s.Proc, s.Kind, s.Args)
			if resultsEqual(res, s.Result) {
				if order, ok := c.search(done.with(i), next, append(prefix, i)); ok {
					return order, true
				}
			}
			continue
		}
		// Pending span: branch on taking effect (result unconstrained)
		// or never taking effect.
		next, _ := c.spec.Apply(state, s.Proc, s.Kind, s.Args)
		if order, ok := c.search(done.with(i), next, append(prefix, i)); ok {
			return order, true
		}
		if order, ok := c.search(done.with(i), state, prefix); ok {
			return order, true
		}
	}
	c.failed[key] = true
	return nil, false
}

// minimal reports whether span i may be linearized next: no other
// unlinearized complete span ends strictly before span i starts.
func (c *checker) minimal(done bitset, i int) bool {
	si := c.spans[i]
	for j, sj := range c.spans {
		if j == i || done.has(j) {
			continue
		}
		if sj.Complete() && sj.End < si.Start {
			return false
		}
	}
	return true
}

// resultsEqual compares a spec-expected result with an observed one.
// Both sides are simple values or fmt-rendered strings.
func resultsEqual(expected, observed sim.Value) bool {
	if expected == nil && observed == nil {
		return true
	}
	return fmt.Sprint(expected) == fmt.Sprint(observed)
}

// bitset tracks linearized spans; sized at construction.
type bitset struct {
	bits []uint64
	n    int
}

func newBitset(n int) bitset {
	return bitset{bits: make([]uint64, (n+63)/64), n: n}
}

func (b bitset) has(i int) bool { return b.bits[i/64]&(1<<uint(i%64)) != 0 }

func (b bitset) with(i int) bitset {
	nb := bitset{bits: make([]uint64, len(b.bits)), n: b.n}
	copy(nb.bits, b.bits)
	nb.bits[i/64] |= 1 << uint(i%64)
	return nb
}

func (b bitset) count() int {
	c := 0
	for i := 0; i < b.n; i++ {
		if b.has(i) {
			c++
		}
	}
	return c
}

func (b bitset) key() string {
	parts := make([]string, len(b.bits))
	for i, w := range b.bits {
		parts[i] = fmt.Sprintf("%x", w)
	}
	return strings.Join(parts, ",")
}

// SortByStart orders spans by start time (stable), the conventional
// presentation order for reports.
func SortByStart(spans []*sim.Span) []*sim.Span {
	out := make([]*sim.Span, len(spans))
	copy(out, spans)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
