package linearize_test

import (
	"testing"

	"repro/internal/linearize"
	"repro/internal/sim"
	"repro/internal/spec"
)

// FuzzCheckerAgainstOracle fuzzes the memoized checker against the
// brute-force oracle: each byte triple encodes one register operation
// (kind+value, start, duration). Run with `go test -fuzz
// FuzzCheckerAgainstOracle ./internal/linearize/` for a deep campaign;
// the seed corpus runs as an ordinary test.
func FuzzCheckerAgainstOracle(f *testing.F) {
	f.Add([]byte{0, 0, 1, 129, 2, 1})
	f.Add([]byte{1, 0, 0, 130, 1, 1, 0, 3, 2})
	f.Add([]byte{128, 0, 4, 128, 1, 1, 1, 2, 2, 2, 5, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 || len(data) > 18 {
			return // 1..6 operations
		}
		var spans []*sim.Span
		for i := 0; i+2 < len(data); i += 3 {
			kindVal, start, dur := data[i], int(data[i+1]%8), int(data[i+2]%4)
			sp := &sim.Span{
				Proc:  sim.ProcID(i / 3 % 3),
				Start: start,
				End:   start + dur,
			}
			if kindVal&0x80 != 0 {
				sp.Kind = sim.OpWrite
				sp.Args = []sim.Value{int(kindVal % 3)}
			} else {
				sp.Kind = sim.OpRead
				sp.Result = int(kindVal % 3)
			}
			spans = append(spans, sp)
		}
		want := bruteForce(spec.Register{Initial: 0}, spans)
		got := linearize.Check(spec.Register{Initial: 0}, spans, linearize.Options{}).Ok
		if got != want {
			t.Fatalf("checker=%v oracle=%v for %v", got, want, spans)
		}
	})
}
