package explore

import (
	"fmt"
	"sort"
	"strings"
)

// Valence computes the set of decision fingerprints reachable from the
// given schedule prefix — the "valence" of the corresponding protocol
// state in the Fischer–Lynch–Paterson sense (reference [9] of the
// paper). A prefix with two or more reachable fingerprints is bivalent:
// the outcome is still undetermined.
//
// Incomplete runs (depth bound hit) contribute the pseudo-fingerprint
// "∞" so that non-terminating branches are visible in the valence.
func Valence(b Builder, opts Options, prefix []Choice) []string {
	opts = opts.withDefaults()
	set := make(map[string]bool)
	en := &engine{b: b, opts: opts, root: prefix, visit: func(o Outcome) bool {
		if o.Result.Halted {
			set["∞"] = true
		} else {
			set[DecisionFingerprint(o.Result)] = true
		}
		return true
	}}
	en.run()
	out := make([]string, 0, len(set))
	for fp := range set {
		out = append(out, fp)
	}
	sort.Strings(out)
	return out
}

func countCrashes(cs []Choice) int {
	n := 0
	for _, c := range cs {
		if c.Crash {
			n++
		}
	}
	return n
}

// Bivalent reports whether at least two distinct decision fingerprints
// are reachable from prefix.
func Bivalent(b Builder, opts Options, prefix []Choice) bool {
	return len(Valence(b, opts, prefix)) >= 2
}

// BivalencePath greedily extends a schedule, at every frontier choosing
// a child that is still bivalent, up to pathLen decision points. It
// returns the path found and whether every prefix along it (including
// the last) was bivalent.
//
// For a correct consensus protocol over a strong object the path ends
// quickly — some step decides. For an attempted read/write consensus
// protocol the path keeps extending, which is exactly the FLP shape:
// an adversary can keep the protocol undecided forever.
func BivalencePath(b Builder, opts Options, pathLen int) ([]Choice, bool) {
	opts = opts.withDefaults()
	var path []Choice
	for len(path) < pathLen {
		if !Bivalent(b, opts, path) {
			return path, false
		}
		_, ready := replayPrefix(b, opts, path)
		if ready == nil {
			return path, false
		}
		extended := false
		for _, id := range ready {
			child := append(append([]Choice(nil), path...), Choice{Pick: id})
			if Bivalent(b, opts, child) {
				path = child
				extended = true
				break
			}
		}
		if !extended {
			// Every child is univalent: the next step decides.
			return path, false
		}
	}
	return path, true
}

// ValenceString renders a valence set compactly, e.g. "{[0 0], [1 1]}".
func ValenceString(v []string) string {
	return "{" + strings.Join(v, ", ") + "}"
}

// DescribeCensus renders a census as a short multi-line report.
func DescribeCensus(c *Census) string {
	var b strings.Builder
	fmt.Fprintf(&b, "complete=%d incomplete=%d exhaustive=%v\n", c.Complete, c.Incomplete, c.Exhaustive)
	if p := c.Prune; p != nil {
		fmt.Fprintf(&b, "  prune: hits=%d misses=%d stores=%d evictions=%d donations=%d steals=%d\n",
			p.Hits, p.Misses, p.Stores, p.Evictions, p.Donations, p.Steals)
		if p.SymmetryOn || p.SleepSetsOn || p.SymmetryNote != "" {
			fmt.Fprintf(&b, "  reduce: probes=%d symmetry=%v(hits=%d) sleepsets=%v(skips=%d)\n",
				p.Probes, p.SymmetryOn, p.SymmetryHits, p.SleepSetsOn, p.SleepSkips)
			if p.SymmetryNote != "" {
				fmt.Fprintf(&b, "  reduce: %s\n", p.SymmetryNote)
			}
		}
	}
	fps := make([]string, 0, len(c.Outcomes))
	for fp := range c.Outcomes {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	for _, fp := range fps {
		fmt.Fprintf(&b, "  %s × %d\n", fp, c.Outcomes[fp])
	}
	for _, v := range c.Violations {
		fmt.Fprintf(&b, "  violation: schedule %s\n", FormatSchedule(v.Schedule))
	}
	return b.String()
}
