package explore

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/sim"
)

// Distributed census support: the exported view of the machinery
// RunCheckpointed builds on, so a coordinator process can shard an
// exploration's frontier roots over remote workers and merge the
// returned partial censuses under the exact discipline the local
// engines use. The unit of distribution is the same unit the
// work-stealing pool and the checkpoint file use — a subtree root's
// schedule prefix — and the merge is the same deterministic
// DFS-root-order fold, so a distributed census is bit-identical in
// every count to a single-process run. Only engine telemetry (prune
// table hit/miss counters) is process-local and not aggregated.

// RootSummary is the census of one fully explored subtree root, in the
// form that crosses process boundaries: plain counts plus violation
// representatives flattened to schedules. It is the exported twin of
// the checkpoint file's per-root record, and the two convert exactly —
// a coordinator checkpoint written from remote results resumes into a
// local run and vice versa.
type RootSummary struct {
	Complete   int            `json:"complete"`
	Incomplete int            `json:"incomplete"`
	Outcomes   map[string]int `json:"outcomes,omitempty"`
	Violations int            `json:"violations"`
	Reps       [][]Choice     `json:"reps,omitempty"`
	Capped     bool           `json:"capped,omitempty"`
}

func (r RootSummary) ck() ckRoot {
	return ckRoot{
		Complete: r.Complete, Incomplete: r.Incomplete, Outcomes: r.Outcomes,
		Violations: r.Violations, Reps: r.Reps, Capped: r.Capped,
	}
}

func summaryFromCk(r ckRoot) RootSummary {
	return RootSummary{
		Complete: r.Complete, Incomplete: r.Incomplete, Outcomes: r.Outcomes,
		Violations: r.Violations, Reps: r.Reps, Capped: r.Capped,
	}
}

// DistPlan is one exploration split into its distributable work items.
// It is built coordinator-side from the same builder and options a
// local run would use; Prefix(i) hands out the per-root work items,
// Merge folds the returned summaries back together, and the checkpoint
// methods persist progress in the exact file format RunCheckpointed
// writes — so a job started locally can finish distributed and the
// other way round.
type DistPlan struct {
	b     Builder
	opts  Options
	check func(*sim.Result) error
	items []frontierItem

	// orbit, when non-nil (symmetry resolved), partitions the roots
	// into symmetry-orbit representatives and twins: Roots() hands out
	// only representatives, and Merge credits each twin its rep's
	// summary renamed into the twin's orientation (orbit.go). The
	// checkpoint key and item indexing are unchanged — a checkpoint
	// written by a non-orbit run resumes exactly, recorded twins
	// included.
	orbit *orbitInfo

	key        uint64
	optsFP     string
	frontierFP uint64

	// Local-fallback execution shares one transposition table across
	// roots, like RunCheckpointed.
	tableOnce sync.Once
	table     *pruneTable
}

// NewDistPlan resolves the options (defaults, symmetry audit) and
// splits the exploration at the standard frontier. ok is false when
// the tree cannot be frontier-split under MaxRuns — the caller should
// fall back to a plain local Run, which owns the cap semantics.
func NewDistPlan(b Builder, opts Options, check func(*sim.Result) error) (*DistPlan, bool) {
	opts = opts.withDefaults()
	if opts.Prune {
		opts = resolveSymmetry(b, opts)
	}
	items, ok := frontier(b, opts, opts.workerCount())
	if !ok {
		return nil, false
	}
	p := &DistPlan{
		b: b, opts: opts, check: check, items: items,
		key:        checkpointKey(opts, items),
		optsFP:     optionsFingerprint(opts),
		frontierFP: frontierFingerprint(items),
	}
	if opts.canon != nil {
		p.orbit = orbitPartition(b, opts, items)
	}
	return p, true
}

// Len is the number of frontier items (roots and above-split leaves).
func (p *DistPlan) Len() int { return len(p.items) }

// Roots lists the indices of the distributable items — frontier
// entries that are subtree roots, not leaves. Under an orbit partition
// (symmetry on) only orbit REPRESENTATIVES are listed: their twins
// need no exploration anywhere, Merge credits them from the rep's
// returned summary.
func (p *DistPlan) Roots() []int {
	var out []int
	for i, it := range p.items {
		if it.prefix == nil {
			continue
		}
		if p.orbit != nil && p.orbit.rep[i] != i {
			continue
		}
		out = append(out, i)
	}
	return out
}

// Prefix is item i's schedule prefix (nil for a leaf).
func (p *DistPlan) Prefix(i int) []Choice { return p.items[i].prefix }

// OptionsFingerprint renders the census-shaping option fields; a
// worker recomputes it from its own resolved options and refuses a
// work item whose fingerprint disagrees — the cross-process version of
// the checkpoint file's wrong-options refusal.
func (p *DistPlan) OptionsFingerprint() string { return p.optsFP }

// Key is the exploration's checkpoint key (options + frontier).
func (p *DistPlan) Key() uint64 { return p.key }

// LoadCheckpoint loads the plan's checkpoint file, crediting recorded
// roots. Semantics match RunCheckpointed's resume exactly: a missing
// file is a silent fresh start, a corrupt or foreign file is ignored
// with a warning, and a file recording the same exploration under
// different engine options is a hard error.
func (p *DistPlan) LoadCheckpoint(path string) (map[int]RootSummary, string, error) {
	f, warn := loadCheckpointTolerant(path)
	switch {
	case f == nil:
		return nil, warn, nil
	case f.Key != p.key:
		if f.Frontier == p.frontierFP && f.Opts != "" && f.Opts != p.optsFP {
			return nil, "", fmt.Errorf(
				"explore: checkpoint %s records the same exploration under different engine options (checkpoint %q, this run %q); refusing to resume — rerun with the original options or delete the checkpoint",
				path, f.Opts, p.optsFP)
		}
		return nil, "checkpoint ignored: key mismatch (different builder or options); starting fresh", nil
	}
	done := make(map[int]RootSummary)
	for k, v := range f.Done {
		if i, err := strconv.Atoi(k); err == nil && i >= 0 && i < len(p.items) &&
			p.items[i].prefix != nil && v.Err == "" {
			done[i] = summaryFromCk(v)
		}
	}
	return done, "", nil
}

// SaveCheckpoint persists the completed roots atomically and durably,
// in the standard checkpoint file format.
func (p *DistPlan) SaveCheckpoint(path string, done map[int]RootSummary) error {
	f := ckFile{Key: p.key, Frontier: p.frontierFP, Opts: p.optsFP, Done: make(map[string]ckRoot, len(done))}
	for i, r := range done {
		f.Done[strconv.Itoa(i)] = r.ck()
	}
	return saveCheckpoint(path, &f)
}

// ExploreRootLocal fully explores root i in this process — the
// coordinator's degraded mode when no remote workers are available.
// Roots explored locally share one transposition table, like
// RunCheckpointed. cancelled is true when ctx ended the attempt; the
// partial summary must be discarded.
func (p *DistPlan) ExploreRootLocal(ctx context.Context, i int) (RootSummary, bool) {
	if p.opts.Prune {
		p.tableOnce.Do(func() { p.table = newPruneTable(p.opts.PruneTableEntries) })
	}
	r, cancelled := exploreRoot(ctx, p.b, p.opts, p.check, p.table, p.items[i].prefix, nil)
	return summaryFromCk(r), cancelled
}

// Merge folds per-root summaries back into a census, in DFS root order
// — the identical fold RunCheckpointed and the shared-table engine
// use, so counts, outcome histograms, violation counts and recorded
// representatives all match a single-process run. Roots present in
// neither done nor failed mark the census cancelled-and-partial.
// Under an orbit partition a twin with no recorded summary of its own
// (the normal case — Roots never hands twins out) is credited its
// representative's summary renamed through the composed orientation,
// and the skips are reported in Census.Prune.OrbitSkips. Otherwise
// Census.Prune is nil: prune counters are per-process telemetry and do
// not aggregate across workers.
func (p *DistPlan) Merge(done map[int]RootSummary, failed map[int]RootFailure) *Census {
	total := newSummary()
	exhaustive := true
	cancelled := false
	var orbitSkips uint64
	var failures []RootFailure
	for i, it := range p.items {
		if it.prefix == nil {
			total.addTerminal(*it.leaf, p.check)
			continue
		}
		if f, lost := failed[i]; lost {
			failures = append(failures, f)
			exhaustive = false
			continue
		}
		r, explored := done[i]
		if !explored {
			if p.orbit != nil && p.orbit.rep[i] != i {
				// Orbit twin: credit the representative's summary in the
				// twin's own coordinates. A twin whose rep is unresolved
				// shares the rep's disposition (the rep's own iteration
				// already recorded the deficit).
				j := p.orbit.rep[i]
				if rj, ok := done[j]; ok {
					total.mergeRenamed(rj.ck().toSummary(p.b, p.opts),
						orbitRenamerRaw(p.opts.canon, p.orbit.perm[j], p.orbit.perm[i]))
					if rj.Capped {
						exhaustive = false
					}
					orbitSkips++
					continue
				}
				exhaustive = false
				if _, lost := failed[j]; !lost {
					cancelled = true
				}
				continue
			}
			exhaustive = false
			cancelled = true
			continue
		}
		total.merge(r.ck().toSummary(p.b, p.opts))
		if r.Capped {
			exhaustive = false
		}
	}
	c := censusFrom(total, exhaustive)
	c.FailedRoots = failures
	c.Errors = failureStrings(failures)
	c.Cancelled = cancelled
	if p.orbit != nil {
		st := &PruneStats{OrbitSkips: orbitSkips}
		p.opts.markReducers(st)
		c.Prune = st
	}
	return c
}

// FingerprintOptions resolves opts against b (defaults plus the
// symmetry audit, which can flip Symmetry off) and returns the
// census-shaping fingerprint. Workers call this to verify a leased
// work item's options agree with their own resolution before
// exploring under them.
func FingerprintOptions(b Builder, opts Options) string {
	opts = opts.withDefaults()
	if opts.Prune {
		opts = resolveSymmetry(b, opts)
	}
	return optionsFingerprint(opts)
}

// SubtreeCheckpoint configures ExploreSubtree's in-flight progress
// persistence: the leased subtree is split again at a shallow
// sub-frontier and completed sub-roots are recorded in Path, so a
// worker killed mid-subtree resumes from its last save instead of
// restarting the whole work item.
type SubtreeCheckpoint struct {
	// Path is the checkpoint file; empty disables checkpointing.
	Path string
	// Every saves after this many newly completed sub-roots (0 = 4).
	Every int
	// Resume credits Path's recorded sub-roots when it matches.
	Resume bool
}

// SubtreeStats reports what ExploreSubtree did.
type SubtreeStats struct {
	// SubRoots is the sub-frontier size (0: explored monolithically).
	SubRoots int
	// Resumed is how many sub-roots were credited from the checkpoint.
	Resumed int
	// Saves counts checkpoint writes.
	Saves int
	// Warning is set when Resume found an unusable file.
	Warning string
}

// ExploreSubtree fully explores the subtree rooted at prefix — one
// distributed work item — and returns its summary, bit-identical in
// every count to the same subtree explored inside a local census.
// beat, when non-nil, is bumped on engine progress (the caller's cue
// to renew its lease: a wedged exploration stops beating and the
// coordinator's lease expiry takes over). A context cancellation
// (lease revoked, shutdown) returns ctx's error after flushing the
// checkpoint; the partial summary is discarded.
func ExploreSubtree(ctx context.Context, b Builder, opts Options, check func(*sim.Result) error, prefix []Choice, ck SubtreeCheckpoint, beat func()) (RootSummary, SubtreeStats, error) {
	opts = opts.withDefaults()
	if opts.Prune {
		opts = resolveSymmetry(b, opts)
	}
	var stats SubtreeStats
	var table *pruneTable
	if opts.Prune {
		table = newPruneTable(opts.PruneTableEntries)
	}
	if ck.Path == "" {
		r, cancelled := exploreRoot(ctx, b, opts, check, table, prefix, beat)
		if cancelled {
			return RootSummary{}, stats, ctx.Err()
		}
		return summaryFromCk(r), stats, nil
	}

	items := subFrontier(ctx, b, opts, prefix)
	if items == nil {
		// Not splittable (tiny subtree, or enumeration hit the cap):
		// explore monolithically, with a single-record checkpoint so a
		// completed-but-undelivered item still resumes instantly.
		key := foldString(uint64(fnvOffset), optionsFingerprint(opts))
		key = foldString(key, "|item:"+FormatSchedule(prefix)+"|mono")
		if ck.Resume {
			if f, warn := loadCheckpointTolerant(ck.Path); f != nil && f.Key == key {
				if v, ok := f.Done["0"]; ok && v.Err == "" {
					stats.Resumed = 1
					return summaryFromCk(v), stats, nil
				}
			} else {
				stats.Warning = warn
			}
		}
		r, cancelled := exploreRoot(ctx, b, opts, check, table, prefix, beat)
		if cancelled {
			return RootSummary{}, stats, ctx.Err()
		}
		if err := saveCheckpoint(ck.Path, &ckFile{Key: key, Done: map[string]ckRoot{"0": r}}); err != nil {
			return RootSummary{}, stats, err
		}
		stats.Saves++
		return summaryFromCk(r), stats, nil
	}
	stats.SubRoots = 0
	for _, it := range items {
		if it.prefix != nil {
			stats.SubRoots++
		}
	}

	// The sub-checkpoint key extends the standard options fold with the
	// work item's own prefix, so files from different roots (or jobs)
	// never cross-resume.
	key := foldString(uint64(fnvOffset), optionsFingerprint(opts))
	key = foldString(key, "|item:"+FormatSchedule(prefix))
	for _, it := range items {
		if it.prefix != nil {
			key = foldString(key, "|"+FormatSchedule(it.prefix))
		} else {
			key = foldString(key, "|leaf:"+FormatSchedule(it.leaf.Schedule))
		}
	}

	done := make(map[int]ckRoot)
	if ck.Resume {
		f, warn := loadCheckpointTolerant(ck.Path)
		switch {
		case f == nil:
			stats.Warning = warn
		case f.Key != key:
			stats.Warning = "subtree checkpoint ignored: key mismatch; starting fresh"
		default:
			for k, v := range f.Done {
				if i, err := strconv.Atoi(k); err == nil && i >= 0 && i < len(items) &&
					items[i].prefix != nil && v.Err == "" {
					done[i] = v
				}
			}
			stats.Resumed = len(done)
		}
	}
	every := ck.Every
	if every <= 0 {
		every = 4
	}
	save := func() error {
		f := ckFile{Key: key, Done: make(map[string]ckRoot, len(done))}
		for i, r := range done {
			f.Done[strconv.Itoa(i)] = r
		}
		if err := saveCheckpoint(ck.Path, &f); err != nil {
			return err
		}
		stats.Saves++
		return nil
	}

	unsaved := 0
	for i, it := range items {
		if it.prefix == nil {
			continue
		}
		if _, ok := done[i]; ok {
			continue
		}
		r, cancelled := exploreRoot(ctx, b, opts, check, table, it.prefix, beat)
		if cancelled {
			_ = save() // flush progress; the error is the cancellation
			return RootSummary{}, stats, ctx.Err()
		}
		done[i] = r
		if beat != nil {
			beat()
		}
		unsaved++
		if unsaved >= every {
			if err := save(); err != nil {
				return RootSummary{}, stats, err
			}
			unsaved = 0
		}
	}
	if err := save(); err != nil {
		return RootSummary{}, stats, err
	}

	// Deterministic merge in DFS sub-root order — identical to the
	// monolithic walk of the same subtree in every count and in the
	// first ≤MaxRecordedViolations representatives.
	total := newSummary()
	capped := false
	for i, it := range items {
		if it.prefix == nil {
			total.addTerminal(*it.leaf, check)
			continue
		}
		r := done[i]
		total.merge(r.toSummary(b, opts))
		if r.Capped {
			capped = true
		}
	}
	out := RootSummary{
		Complete:   total.complete,
		Incomplete: total.incomplete,
		Outcomes:   total.outcomes,
		Violations: total.violations,
		Capped:     capped,
	}
	for _, rep := range total.reps {
		out.Reps = append(out.Reps, rep.Schedule)
	}
	return out, stats, nil
}

// subFrontier splits the subtree rooted at prefix at a shallow depth,
// mirroring frontier()'s split policy relative to the prefix. nil
// means the subtree is not worth splitting (or enumeration was capped
// or cancelled) and the caller should explore it monolithically.
func subFrontier(ctx context.Context, b Builder, opts Options, prefix []Choice) []frontierItem {
	const target = 8
	base := len(prefix)
	var items []frontierItem
	for split := 1; ; split++ {
		items = items[:0]
		roots := 0
		shallow := opts
		shallow.MaxDepth = base + split
		en := &engine{b: b, opts: shallow, root: prefix, ctx: ctx, visit: func(o Outcome) bool {
			if o.Result.Halted && len(o.Schedule) == base+split {
				items = append(items, frontierItem{prefix: o.Schedule})
				roots++
			} else {
				oc := o
				items = append(items, frontierItem{leaf: &oc})
			}
			return true
		}}
		en.run()
		if en.capped || en.cancelled {
			return nil
		}
		if roots == 0 && split == 1 {
			return nil // the whole subtree is a handful of terminal runs
		}
		if roots >= target || roots == 0 || base+split+1 >= opts.MaxDepth || split >= 12 {
			return items
		}
	}
}
