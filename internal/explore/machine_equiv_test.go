package explore_test

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/election"
	"repro/internal/explore"
	"repro/internal/faults"
	"repro/internal/objects"
	"repro/internal/sim"
)

// TestMachineCensusMatchesGoroutine is the soundness matrix for the
// machine execution mode: every protocol census must be bit-identical —
// run counts, outcome-fingerprint histograms, violation counts —
// between the in-place backtracking machine DFS (the default for
// machine-backed builders) and the goroutine replay engine
// (Options.ForceGoroutines), across the reducer and fault dimensions,
// sequentially and under forced-donation work stealing. Run under
// -race in the tier-1 suite.
func TestMachineCensusMatchesGoroutine(t *testing.T) {
	explore.ForceDonation(t)
	protocols := []struct {
		name string
		run  func(force bool, tunes ...explore.Tune) *explore.Census
	}{
		{"election-direct-cas", func(force bool, tunes ...explore.Tune) *explore.Census {
			return election.CensusDirect(4, 3, 0, withForce(force, tunes)...)
		}},
		{"consensus-cas", func(force bool, tunes ...explore.Tune) *explore.Census {
			return consensus.CensusCAS(3, 2, 0, withForce(force, tunes)...)
		}},
		{"consensus-queue", func(force bool, tunes ...explore.Tune) *explore.Census {
			return consensus.CensusQueue(0, withForce(force, tunes)...)
		}},
		{"consensus-stickybit", func(force bool, tunes ...explore.Tune) *explore.Census {
			return consensus.CensusStickyBit(3, 0, withForce(force, tunes)...)
		}},
		// Object-fault enumeration over the fault-wrapped degrading CAS:
		// the machine port must take the same degradation branches on the
		// same injected-fault placements.
		{"consensus-casdeg-faults", func(force bool, tunes ...explore.Tune) *explore.Census {
			props := []sim.Value{100, 101}
			b := func() *sim.System {
				sys := sim.NewSystem()
				obj := faults.Wrap(objects.NewCAS("cas", 3))
				sys.Add(obj)
				for _, m := range consensus.DegradingCASMachines(sys, obj, props) {
					sys.SpawnMachine(m)
				}
				return sys
			}
			opts := explore.Options{
				MaxCrashes:      1,
				ObjectFaults:    1,
				FaultModes:      []sim.FaultMode{sim.FaultCrash, sim.FaultGarble},
				ForceGoroutines: force,
			}.With(tunes...)
			return explore.Run(b, opts, func(res *sim.Result) error {
				if err := consensus.CheckAgreement(res); err != nil {
					return err
				}
				return consensus.CheckValidity(res, props)
			})
		}},
	}
	configs := []struct {
		name  string
		tunes []explore.Tune
	}{
		{"plain", nil},
		{"reduced", []explore.Tune{explore.WithSymmetry(), explore.WithSleepSets()}},
		{"workers4", []explore.Tune{explore.WithWorkers(4)}},
	}
	for _, p := range protocols {
		t.Run(p.name, func(t *testing.T) {
			for _, c := range configs {
				want := p.run(true, c.tunes...) // goroutine engine: ground truth
				got := p.run(false, c.tunes...) // machine in-place DFS
				assertCensusEqual(t, c.name, got, want)
			}
		})
	}
}

func withForce(force bool, tunes []explore.Tune) []explore.Tune {
	if !force {
		return tunes
	}
	return append([]explore.Tune{explore.WithForceGoroutines()}, tunes...)
}

// TestMachineProgramCensusAgree pins the cross-form claim end to end:
// a census over the hand-written Program protocol (necessarily on the
// goroutine runner) and one over its machine port (on the in-place
// DFS) count the same tree — same totals, same outcome fingerprints.
func TestMachineProgramCensusAgree(t *testing.T) {
	props := []sim.Value{100, 101}
	check := func(res *sim.Result) error {
		if err := consensus.CheckAgreement(res); err != nil {
			return err
		}
		return consensus.CheckValidity(res, props)
	}
	programs := func() *sim.System {
		sys := sim.NewSystem()
		cas := objects.NewCAS("cas", 3)
		sys.Add(cas)
		for _, prog := range consensus.CASProtocol(sys, cas, props) {
			sys.Spawn(prog)
		}
		return sys
	}
	machines := func() *sim.System {
		sys := sim.NewSystem()
		cas := objects.NewCAS("cas", 3)
		sys.Add(cas)
		for _, m := range consensus.CASMachines(sys, cas, props) {
			sys.SpawnMachine(m)
		}
		return sys
	}
	opts := explore.Options{MaxCrashes: 1, Prune: true}
	want := explore.Run(programs, opts, check)
	got := explore.Run(machines, opts, check)
	assertCensusEqual(t, "program-vs-machine", got, want)
}
