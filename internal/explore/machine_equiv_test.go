package explore_test

import (
	"fmt"
	"testing"

	"repro/internal/consensus"
	"repro/internal/election"
	"repro/internal/explore"
	"repro/internal/faults"
	"repro/internal/objects"
	"repro/internal/registers"
	"repro/internal/sim"
)

// TestMachineCensusMatchesGoroutine is the soundness matrix for the
// machine execution mode: every protocol census must be bit-identical —
// run counts, outcome-fingerprint histograms, violation counts —
// between the in-place backtracking machine DFS (the default for
// machine-backed builders) and the goroutine replay engine
// (Options.ForceGoroutines), across the reducer and fault dimensions,
// sequentially and under forced-donation work stealing. Run under
// -race in the tier-1 suite.
func TestMachineCensusMatchesGoroutine(t *testing.T) {
	explore.ForceDonation(t)
	protocols := []struct {
		name string
		run  func(force bool, tunes ...explore.Tune) *explore.Census
	}{
		{"election-direct-cas", func(force bool, tunes ...explore.Tune) *explore.Census {
			return election.CensusDirect(4, 3, 0, withForce(force, tunes)...)
		}},
		{"consensus-cas", func(force bool, tunes ...explore.Tune) *explore.Census {
			return consensus.CensusCAS(3, 2, 0, withForce(force, tunes)...)
		}},
		{"consensus-queue", func(force bool, tunes ...explore.Tune) *explore.Census {
			return consensus.CensusQueue(0, withForce(force, tunes)...)
		}},
		{"consensus-stickybit", func(force bool, tunes ...explore.Tune) *explore.Census {
			return consensus.CensusStickyBit(3, 0, withForce(force, tunes)...)
		}},
		// Object-fault enumeration over the fault-wrapped degrading CAS:
		// the machine port must take the same degradation branches on the
		// same injected-fault placements.
		{"consensus-casdeg-faults", func(force bool, tunes ...explore.Tune) *explore.Census {
			props := []sim.Value{100, 101}
			b := func() *sim.System {
				sys := sim.NewSystem()
				obj := faults.Wrap(objects.NewCAS("cas", 3))
				sys.Add(obj)
				for _, m := range consensus.DegradingCASMachines(sys, obj, props) {
					sys.SpawnMachine(m)
				}
				return sys
			}
			opts := explore.Options{
				MaxCrashes:      1,
				ObjectFaults:    1,
				FaultModes:      []sim.FaultMode{sim.FaultCrash, sim.FaultGarble},
				ForceGoroutines: force,
			}.With(tunes...)
			return explore.Run(b, opts, func(res *sim.Result) error {
				if err := consensus.CheckAgreement(res); err != nil {
					return err
				}
				return consensus.CheckValidity(res, props)
			})
		}},
	}
	configs := []struct {
		name  string
		tunes []explore.Tune
	}{
		{"plain", nil},
		{"reduced", []explore.Tune{explore.WithSymmetry(), explore.WithSleepSets()}},
		{"workers4", []explore.Tune{explore.WithWorkers(4)}},
	}
	for _, p := range protocols {
		t.Run(p.name, func(t *testing.T) {
			for _, c := range configs {
				want := p.run(true, c.tunes...) // goroutine engine: ground truth
				got := p.run(false, c.tunes...) // machine in-place DFS
				assertCensusEqual(t, c.name, got, want)
			}
		})
	}
}

func withForce(force bool, tunes []explore.Tune) []explore.Tune {
	if !force {
		return tunes
	}
	return append([]explore.Tune{explore.WithForceGoroutines()}, tunes...)
}

// TestMachineProgramCensusAgree pins the cross-form claim end to end:
// a census over the hand-written Program protocol (necessarily on the
// goroutine runner) and one over its machine port (on the in-place
// DFS) count the same tree — same totals, same outcome fingerprints.
func TestMachineProgramCensusAgree(t *testing.T) {
	props := []sim.Value{100, 101}
	check := func(res *sim.Result) error {
		if err := consensus.CheckAgreement(res); err != nil {
			return err
		}
		return consensus.CheckValidity(res, props)
	}
	programs := func() *sim.System {
		sys := sim.NewSystem()
		cas := objects.NewCAS("cas", 3)
		sys.Add(cas)
		for _, prog := range consensus.CASProtocol(sys, cas, props) {
			sys.Spawn(prog)
		}
		return sys
	}
	machines := func() *sim.System {
		sys := sim.NewSystem()
		cas := objects.NewCAS("cas", 3)
		sys.Add(cas)
		for _, m := range consensus.CASMachines(sys, cas, props) {
			sys.SpawnMachine(m)
		}
		return sys
	}
	opts := explore.Options{MaxCrashes: 1, Prune: true}
	want := explore.Run(programs, opts, check)
	got := explore.Run(machines, opts, check)
	assertCensusEqual(t, "program-vs-machine", got, want)
}

// TestWitnessMachinePortAgrees pins the hierarchy-witness port: the
// announce / swap-oracle / adopt protocol as a hand-written Program
// census against consensus.WitnessMachines (via SwapMachines's oracle
// shape but on the hierarchy's plain "ann" array), at both arities —
// n = 2 exercises the read-the-other-cell loser branch, n = 3 the
// smallest-announced scan.
func TestWitnessMachinePortAgrees(t *testing.T) {
	for _, n := range []int{2, 3} {
		props := make([]sim.Value, n)
		for i := range props {
			props[i] = 100 + i
		}
		check := func(res *sim.Result) error {
			if err := consensus.CheckAgreement(res); err != nil {
				return err
			}
			return consensus.CheckValidity(res, props)
		}
		programs := func() *sim.System {
			sys := sim.NewSystem()
			sw := objects.NewSwap("s", nil)
			sys.Add(sw)
			ann := registers.NewArray(sys, "ann", n, nil)
			sys.SpawnN(n, func(id sim.ProcID) sim.Program {
				return func(e *sim.Env) (sim.Value, error) {
					ann.Write(e, props[id])
					if sw.Swap(e, int(id)) == nil {
						return props[id], nil
					}
					if n == 2 {
						return ann.Read(e, 1-int(id)), nil
					}
					best := sim.Value(nil)
					for _, v := range ann.Collect(e) {
						if v == nil {
							continue
						}
						if best == nil || fmt.Sprint(v) < fmt.Sprint(best) {
							best = v
						}
					}
					return best, nil
				}
			})
			return sys
		}
		machines := func() *sim.System {
			sys := sim.NewSystem()
			sw := objects.NewSwap("s", nil)
			sys.Add(sw)
			ms := consensus.WitnessMachines(sys, "ann", props,
				func(i int) sim.MachineOp {
					return sim.MachineOp{Obj: sw, Op: objects.OpSwap, NArgs: 1, Args: [2]sim.Value{i}}
				},
				func(v sim.Value) bool { return v == nil })
			for _, m := range ms {
				sys.SpawnMachine(m)
			}
			return sys
		}
		opts := explore.Options{MaxCrashes: 1, Prune: true}
		want := explore.Run(programs, opts, check)
		got := explore.Run(machines, opts, check)
		assertCensusEqual(t, fmt.Sprintf("swap-witness/n=%d", n), got, want)
	}
}

// TestDegradeElectionMachinePortAgrees pins the degrading-election
// port under object-fault enumeration: election.DegradingCAS (Program,
// goroutine runner) and election.DegradingCASMachines (in-place DFS)
// must census the same tree, degradation branches included.
func TestDegradeElectionMachinePortAgrees(t *testing.T) {
	const k, n = 3, 2
	ids := make([]sim.Value, n)
	for i := range ids {
		ids[i] = i
	}
	check := func(res *sim.Result) error { return election.CheckElection(res, ids) }
	programs := func() *sim.System {
		sys := sim.NewSystem()
		obj := faults.Wrap(objects.NewCAS("cas", k))
		sys.Add(obj)
		for _, p := range election.DegradingCAS(sys, obj, n) {
			sys.Spawn(p)
		}
		return sys
	}
	machines := func() *sim.System {
		sys := sim.NewSystem()
		obj := faults.Wrap(objects.NewCAS("cas", k))
		sys.Add(obj)
		for _, m := range election.DegradingCASMachines(sys, obj, n) {
			sys.SpawnMachine(m)
		}
		return sys
	}
	opts := explore.Options{
		MaxCrashes:   1,
		ObjectFaults: 1,
		FaultModes:   []sim.FaultMode{sim.FaultCrash, sim.FaultGarble},
		Prune:        true,
	}
	want := explore.Run(programs, opts, check)
	got := explore.Run(machines, opts, check)
	assertCensusEqual(t, "degrading-election", got, want)
}
