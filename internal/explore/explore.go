// Package explore enumerates schedules of small simulated systems
// exhaustively: every interleaving of process steps and, optionally,
// every placement of a bounded number of crash failures.
//
// The paper leans on impossibility results (FLP for two-process
// read/write consensus, the set-consensus impossibility of Borowsky–
// Gafni/Herlihy–Shavit/Saks–Zaharoglou) that cannot be re-proved
// mechanically here; what can be reproduced is their observable shape
// on concrete protocols: for a given protocol the explorer either finds
// a schedule violating agreement/validity, or exhibits unboundedly long
// bivalent schedules. The election and hierarchy experiments are built
// on this census.
//
// Exploration is replay-based: a system is rebuilt from scratch by its
// Builder and re-run for every schedule prefix, using sim's Replay/Halt
// mechanism to discover the ready set at each frontier. This trades CPU
// for simplicity and avoids any state cloning (DESIGN.md §5.2 ablates
// the cost).
package explore

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Builder deterministically constructs a fresh instance of the system
// under exploration. It must produce identical systems on every call.
type Builder func() *sim.System

// Choice is one branch decision: either schedule Pick for a step, or
// crash Pick (fail-stop) at this decision point.
type Choice struct {
	Pick  sim.ProcID
	Crash bool
}

// String renders the choice compactly ("3" or "3†").
func (c Choice) String() string {
	if c.Crash {
		return fmt.Sprintf("%d†", c.Pick)
	}
	return fmt.Sprint(c.Pick)
}

// FormatSchedule renders a schedule as "0 1 2† 0 …".
func FormatSchedule(cs []Choice) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ")
}

// Options tunes an exploration.
type Options struct {
	// MaxDepth bounds schedule length; prefixes reaching it are counted
	// as incomplete runs (evidence of non-termination under adversarial
	// scheduling when the protocol is supposed to be wait-free).
	// Zero means DefaultMaxDepth.
	MaxDepth int
	// MaxCrashes bounds the number of crash choices per schedule.
	MaxCrashes int
	// MaxRuns caps the number of enumerated terminal runs (complete or
	// incomplete) as a safety net. Zero means DefaultMaxRuns.
	MaxRuns int
	// MaxStepsPerProc is forwarded to sim.Config.
	MaxStepsPerProc int
}

// DefaultMaxDepth bounds schedule length when Options.MaxDepth is 0.
const DefaultMaxDepth = 400

// DefaultMaxRuns bounds run count when Options.MaxRuns is 0.
const DefaultMaxRuns = 1 << 20

func (o Options) withDefaults() Options {
	if o.MaxDepth == 0 {
		o.MaxDepth = DefaultMaxDepth
	}
	if o.MaxRuns == 0 {
		o.MaxRuns = DefaultMaxRuns
	}
	return o
}

// Outcome is one terminal run discovered by the explorer.
type Outcome struct {
	// Schedule is the full choice sequence of the run.
	Schedule []Choice
	// Result is the run's result. Result.Halted marks an incomplete run
	// (MaxDepth reached with live processes).
	Result *sim.Result
}

// Visit walks every terminal run reachable under opts in depth-first
// order, calling visit for each; visit returning false stops the walk.
// It returns the number of terminal runs visited and whether the walk
// was exhaustive (false if stopped early or MaxRuns was hit).
func Visit(b Builder, opts Options, visit func(Outcome) bool) (runs int, exhaustive bool) {
	opts = opts.withDefaults()
	w := &walker{b: b, opts: opts, visit: visit}
	ok := w.expand(nil, 0)
	return w.runs, ok && !w.capped
}

type walker struct {
	b      Builder
	opts   Options
	visit  func(Outcome) bool
	runs   int
	capped bool
}

// expand replays prefix, then branches on the ready set at its end.
// It returns false to abort the whole walk.
func (w *walker) expand(prefix []Choice, crashes int) bool {
	if w.runs >= w.opts.MaxRuns {
		w.capped = true
		return false
	}
	res, ready := w.replay(prefix)
	if !res.Halted || len(prefix) >= w.opts.MaxDepth {
		// Terminal: either the run completed within the prefix, or we
		// are at the depth bound with live processes.
		w.runs++
		sched := make([]Choice, len(prefix))
		copy(sched, prefix)
		return w.visit(Outcome{Schedule: sched, Result: res})
	}
	for _, id := range ready {
		if !w.expand(append(prefix, Choice{Pick: id}), crashes) {
			return false
		}
	}
	if crashes < w.opts.MaxCrashes {
		for _, id := range ready {
			if !w.expand(append(prefix, Choice{Pick: id, Crash: true}), crashes+1) {
				return false
			}
		}
	}
	return true
}

// replay runs a fresh system under the given choice prefix and returns
// the result plus the ready set at the halt frontier (nil if complete).
func (w *walker) replay(prefix []Choice) (*sim.Result, []sim.ProcID) {
	plan := newChoicePlan(prefix)
	sys := w.b()
	res, err := sys.Run(sim.Config{
		Scheduler:       plan,
		Faults:          plan,
		MaxStepsPerProc: w.opts.MaxStepsPerProc,
		MaxTotalSteps:   w.opts.MaxDepth + 1,
		DisableTrace:    true,
	})
	if err != nil {
		// A Builder that yields scheduler misuse is a programming error.
		panic(fmt.Sprintf("explore: replay failed: %v", err))
	}
	return res, res.ReadyAtHalt
}

// choicePlan feeds a choice sequence to the runner, acting as both
// Scheduler and FaultPlan. Crash choices are consumed by CrashNow (the
// runner consults faults first at each decision point), pick choices by
// Next; when the sequence is exhausted Next halts the run.
type choicePlan struct {
	choices []Choice
	i       int
}

func newChoicePlan(cs []Choice) *choicePlan { return &choicePlan{choices: cs} }

// CrashNow implements sim.FaultPlan: it consumes all consecutive crash
// choices at the current position.
func (p *choicePlan) CrashNow(_ []sim.ProcID, _ int) []sim.ProcID {
	var out []sim.ProcID
	for p.i < len(p.choices) && p.choices[p.i].Crash {
		out = append(out, p.choices[p.i].Pick)
		p.i++
	}
	return out
}

// Next implements sim.Scheduler: it consumes one pick choice.
func (p *choicePlan) Next(ready []sim.ProcID, _ int) sim.ProcID {
	if p.i >= len(p.choices) {
		return sim.Halt
	}
	c := p.choices[p.i]
	p.i++
	for _, r := range ready {
		if r == c.Pick {
			return c.Pick
		}
	}
	return sim.Halt
}

// DecisionFingerprint canonically renders the decided values of a run,
// sorted, e.g. "[1 1 2]". Two runs with the same fingerprint decided
// the same multiset of values.
func DecisionFingerprint(res *sim.Result) string {
	var vals []string
	for _, id := range res.Decided() {
		vals = append(vals, fmt.Sprint(res.Values[id]))
	}
	sort.Strings(vals)
	return "[" + strings.Join(vals, " ") + "]"
}

// Census summarizes an exhaustive exploration.
type Census struct {
	// Complete and Incomplete count terminal runs.
	Complete   int
	Incomplete int
	// Outcomes histograms complete runs by decision fingerprint.
	Outcomes map[string]int
	// Violations holds the first few outcomes failing the check.
	Violations []Outcome
	// Exhaustive is false if the walk was truncated by MaxRuns.
	Exhaustive bool
}

// MaxRecordedViolations bounds Census.Violations.
const MaxRecordedViolations = 5

// Run explores all schedules and classifies every terminal run.
// check, if non-nil, is evaluated on complete runs; a non-nil error
// records the outcome as a violation.
func Run(b Builder, opts Options, check func(*sim.Result) error) *Census {
	c := &Census{Outcomes: make(map[string]int)}
	_, exhaustive := Visit(b, opts, func(o Outcome) bool {
		if o.Result.Halted {
			c.Incomplete++
			return true
		}
		c.Complete++
		c.Outcomes[DecisionFingerprint(o.Result)]++
		if check != nil {
			if err := check(o.Result); err != nil && len(c.Violations) < MaxRecordedViolations {
				c.Violations = append(c.Violations, o)
			}
		}
		return true
	})
	c.Exhaustive = exhaustive
	return c
}
