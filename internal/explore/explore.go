// Package explore enumerates schedules of small simulated systems
// exhaustively: every interleaving of process steps and, optionally,
// every placement of a bounded number of crash failures.
//
// The paper leans on impossibility results (FLP for two-process
// read/write consensus, the set-consensus impossibility of Borowsky–
// Gafni/Herlihy–Shavit/Saks–Zaharoglou) that cannot be re-proved
// mechanically here; what can be reproduced is their observable shape
// on concrete protocols: for a given protocol the explorer either finds
// a schedule violating agreement/validity, or exhibits unboundedly long
// bivalent schedules. The election and hierarchy experiments are built
// on this census.
//
// Exploration is replay-based — a system is rebuilt from scratch by its
// Builder for every run, so no state cloning is ever needed — but
// path-structured: one execution descends all the way to a terminal
// run, discovering the ready set at each decision point on the way
// down (engine.go), instead of one execution per tree node (the
// original walker, kept as VisitReplay; DESIGN.md §5.2 ablates the
// difference). Censuses can additionally prune reconverging schedule
// prefixes through a state-fingerprint transposition table (prune.go,
// Options.Prune) and fan subtrees out to parallel workers with a
// deterministic merge (parallel.go, Options.Workers).
package explore

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Builder deterministically constructs a fresh instance of the system
// under exploration. It must produce identical systems on every call.
type Builder func() *sim.System

// Choice is one branch decision: schedule Pick for a step, crash Pick
// (fail-stop) at this decision point, or schedule Pick for a step whose
// object operation misbehaves with fault mode Fault (object faults are
// a schedule dimension exactly like crashes; see internal/faults).
// Crash and Fault are mutually exclusive.
type Choice struct {
	Pick  sim.ProcID
	Crash bool
	Fault sim.FaultMode
}

// String renders the choice compactly ("3", "3†", or "3!c" with the
// fault mode's initial letter).
func (c Choice) String() string {
	if c.Crash {
		return fmt.Sprintf("%d†", c.Pick)
	}
	if c.Fault != sim.FaultNone {
		return fmt.Sprintf("%d!%c", c.Pick, c.Fault.String()[0])
	}
	return fmt.Sprint(c.Pick)
}

// FormatSchedule renders a schedule as "0 1 2† 0 …".
func FormatSchedule(cs []Choice) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ")
}

// Options tunes an exploration.
type Options struct {
	// MaxDepth bounds schedule length; prefixes reaching it are counted
	// as incomplete runs (evidence of non-termination under adversarial
	// scheduling when the protocol is supposed to be wait-free).
	// Zero means DefaultMaxDepth.
	MaxDepth int
	// MaxCrashes bounds the number of crash choices per schedule.
	MaxCrashes int
	// ObjectFaults bounds the number of object-fault choices per
	// schedule: with a positive budget, every scheduling point also
	// branches into fault-injected variants of each ready process's
	// step, one per mode in FaultModes — enumerated exhaustively,
	// exactly like crash placements.
	ObjectFaults int
	// FaultModes lists the fault modes enumerated when ObjectFaults is
	// positive. Empty means crash-only (sim.FaultCrash).
	FaultModes []sim.FaultMode
	// MaxRuns caps the number of enumerated terminal runs (complete or
	// incomplete) as a safety net. Zero means DefaultMaxRuns.
	MaxRuns int
	// MaxStepsPerProc is forwarded to sim.Config.
	MaxStepsPerProc int
	// Workers fans the walk out to parallel workers over subtree roots,
	// with results merged deterministically: visit order, run counts and
	// census totals are identical to the sequential walk. 0 or 1 means
	// sequential; negative means GOMAXPROCS.
	Workers int
	// Prune enables transposition-table pruning in Run censuses: a
	// subtree whose root state (fingerprint + remaining budgets) was
	// already fully explored is credited its stored summary instead of
	// being re-walked. Requires every object in the system to implement
	// sim.StateKeyer; nodes where the system is not fingerprintable are
	// simply not pruned. Census counts are exact (see prune.go);
	// recorded representative violations may come from the first
	// encounter of a shared subtree. Ignored by Visit, which must
	// deliver every run.
	Prune bool
	// PruneTableEntries bounds the transposition table's entry count;
	// beyond it the oldest entries are evicted FIFO. Eviction only
	// weakens pruning (an evicted subtree is re-walked), never the
	// census counts. Zero means the package default (see prune.go).
	PruneTableEntries int
	// Symmetry enables process-symmetry canonicalization of the
	// transposition keys: states equal up to a process permutation from
	// the protocol's declared group share one table entry, so the walk
	// explores one subtree per symmetry CLASS. Strictly opt-in and
	// verified: the builder's system must carry a sim.Symmetry spec
	// (DeclareSymmetry), which is structurally validated and empirically
	// audited before the first probe — on any failure the census runs
	// unreduced and records why in PruneStats.SymmetryNote, never
	// silently trusting an unsound spec. Census counts, outcome
	// histograms and violation counts are bit-identical to the unreduced
	// walk (stored summaries are published in canonical coordinates and
	// translated back per hit). Implies Prune.
	Symmetry bool
	// SleepSets enables independence (sleep-set/DPOR-style) pruning:
	// when two adjacent plain steps of different processes touch
	// DISTINCT objects they commute exactly, so the sibling order
	// reconverges to the same state — the engine memoizes the reordered
	// node's table key at first visit and credits the sibling subtree
	// straight from the table at backtrack time, skipping the whole
	// replay probe that plain pruning would still pay. Counts are exact
	// (it is the transposition argument applied eagerly); the savings
	// show up as fewer probes, not fewer credited runs. Implies Prune.
	SleepSets bool
	// VerifyFingerprints forwards sim.Config.VerifyFingerprints to every
	// probe: each granted step's incrementally maintained fingerprint
	// vector (plain and, under Symmetry, all |G| canonical words) is
	// cross-checked against a from-scratch recompute, panicking on the
	// first divergence. A soundness audit for the incremental cache —
	// orders of magnitude slower, for verification runs and CI smokes,
	// never for production censuses. It must not change any count or
	// fingerprint, so it is excluded from checkpoint keys.
	VerifyFingerprints bool
	// ForceGoroutines disables the machine fast paths: probes run the
	// goroutine runner even when the builder's system is machine-backed,
	// and the engines' in-place backtracking DFS is never engaged. An
	// execution-strategy switch for cross-checking and ablation — it
	// must not change any count or fingerprint, which the equivalence
	// tests enforce. Excluded from checkpoint keys (like Context, it
	// does not shape the tree).
	ForceGoroutines bool
	// Context, when non-nil, cancels the walk cooperatively: engines
	// check it once per terminal probe (and the supervisor between root
	// claims), so a cancelled run stops within one probe per worker and
	// reports Census.Cancelled with every already-counted run intact.
	// Excluded from checkpoint keys — it does not shape the tree.
	Context context.Context
	// Supervision configures the parallel supervisor: retry policy for
	// panicked subtree roots, the stall watchdog, and chaos injection.
	// Nil means the defaults (see Supervise); it never changes which
	// runs a successful walk counts. Sequential walks ignore it (a
	// sequential panic propagates as before).
	Supervision *Supervise

	// canon is the validated Canonicalizer resolved from the builder's
	// declared symmetry spec (resolveSymmetry); non-nil only when
	// Symmetry survived validation and audit. symNote records why
	// symmetry was refused. Both are plumbing, set by the census entry
	// points, never by callers.
	canon   *sim.Canonicalizer
	symNote string
}

// Tune is a functional option for exploration entry points that take
// fixed Options (hierarchy/election/consensus experiments).
type Tune func(*Options)

// WithWorkers tunes Options.Workers.
func WithWorkers(n int) Tune { return func(o *Options) { o.Workers = n } }

// WithPrune enables Options.Prune.
func WithPrune() Tune { return func(o *Options) { o.Prune = true } }

// WithSymmetry enables Options.Symmetry (which implies Prune).
func WithSymmetry() Tune { return func(o *Options) { o.Symmetry = true } }

// WithSleepSets enables Options.SleepSets (which implies Prune).
func WithSleepSets() Tune { return func(o *Options) { o.SleepSets = true } }

// WithObjectFaults tunes the object-fault budget and, optionally, the
// enumerated modes (crash-only when none given).
func WithObjectFaults(n int, modes ...sim.FaultMode) Tune {
	return func(o *Options) {
		o.ObjectFaults = n
		if len(modes) > 0 {
			o.FaultModes = modes
		}
	}
}

// WithPruneBudget tunes Options.PruneTableEntries.
func WithPruneBudget(entries int) Tune {
	return func(o *Options) { o.PruneTableEntries = entries }
}

// WithStepLimit tunes Options.MaxStepsPerProc: a process exceeding the
// bound is stopped with sim.ErrStepLimit and the run stays countable,
// converting runaway executions into census entries.
func WithStepLimit(n int) Tune {
	return func(o *Options) { o.MaxStepsPerProc = n }
}

// WithForceGoroutines enables Options.ForceGoroutines, pinning every
// probe to the goroutine runner for cross-checking the machine paths.
func WithForceGoroutines() Tune {
	return func(o *Options) { o.ForceGoroutines = true }
}

// WithVerifyFingerprints enables Options.VerifyFingerprints, auditing
// the incremental fingerprint caches against from-scratch recomputes on
// every granted step of every probe.
func WithVerifyFingerprints() Tune {
	return func(o *Options) { o.VerifyFingerprints = true }
}

// WithContext tunes Options.Context, threading cooperative cancellation
// into entry points that take fixed Options (the hierarchy/election/
// consensus experiment wrappers).
func WithContext(ctx context.Context) Tune {
	return func(o *Options) { o.Context = ctx }
}

// WithSupervision tunes Options.Supervision.
func WithSupervision(s Supervise) Tune {
	return func(o *Options) { o.Supervision = &s }
}

// With returns a copy of o with the tunes applied.
func (o Options) With(tunes ...Tune) Options {
	for _, t := range tunes {
		if t != nil {
			t(&o)
		}
	}
	return o
}

// ctx resolves Options.Context, never returning nil.
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// workerCount resolves Options.Workers to an actual worker count.
func (o Options) workerCount() int {
	switch {
	case o.Workers < 0:
		return runtime.GOMAXPROCS(0)
	case o.Workers == 0:
		return 1
	default:
		return o.Workers
	}
}

// DefaultMaxDepth bounds schedule length when Options.MaxDepth is 0.
const DefaultMaxDepth = 400

// DefaultMaxRuns bounds run count when Options.MaxRuns is 0.
const DefaultMaxRuns = 1 << 20

func (o Options) withDefaults() Options {
	if o.MaxDepth == 0 {
		o.MaxDepth = DefaultMaxDepth
	}
	if o.MaxRuns == 0 {
		o.MaxRuns = DefaultMaxRuns
	}
	if o.ObjectFaults > 0 && len(o.FaultModes) == 0 {
		o.FaultModes = []sim.FaultMode{sim.FaultCrash}
	}
	if o.Symmetry || o.SleepSets {
		o.Prune = true // both reducers live on the transposition table
	}
	return o
}

// Outcome is one terminal run discovered by the explorer.
type Outcome struct {
	// Schedule is the full choice sequence of the run.
	Schedule []Choice
	// Result is the run's result. Result.Halted marks an incomplete run
	// (MaxDepth reached with live processes).
	Result *sim.Result
}

// Visit walks every terminal run reachable under opts in depth-first
// order, calling visit for each; visit returning false stops the walk.
// It returns the number of terminal runs visited and whether the walk
// was exhaustive (false if stopped early or MaxRuns was hit).
// With Options.Workers set, subtrees are explored in parallel and
// outcomes are re-sequenced, preserving the exact sequential order.
func Visit(b Builder, opts Options, visit func(Outcome) bool) (runs int, exhaustive bool) {
	runs, exhaustive, _, _ = visitAll(b, opts, visit)
	return runs, exhaustive
}

// visitAll is Visit that additionally reports subtree roots permanently
// lost to worker failures (parallel mode only: the supervisor retries a
// panicked root before giving up; sequentially a panic propagates) and
// whether the walk was cut short by Options.Context. Either implies
// exhaustive == false.
func visitAll(b Builder, opts Options, visit func(Outcome) bool) (runs int, exhaustive bool, failed []RootFailure, cancelled bool) {
	opts = opts.withDefaults()
	if opts.workerCount() > 1 {
		return parallelVisit(b, opts, visit)
	}
	runs, exhaustive, cancelled = sequentialVisit(b, opts, visit)
	return runs, exhaustive, nil, cancelled
}

func sequentialVisit(b Builder, opts Options, visit func(Outcome) bool) (int, bool, bool) {
	en := &engine{b: b, opts: opts, visit: visit, ctx: opts.Context}
	en.run()
	return en.runs, !en.capped && !en.stopped && !en.cancelled, en.cancelled
}

// ParallelVisit is Visit forced onto parallel workers (GOMAXPROCS of
// them unless Options.Workers says otherwise). Exposed for callers
// that want parallelism regardless of the options they were handed.
func ParallelVisit(b Builder, opts Options, visit func(Outcome) bool) (runs int, exhaustive bool) {
	opts = opts.withDefaults()
	if opts.Workers == 0 || opts.Workers == 1 {
		opts.Workers = -1
	}
	runs, exhaustive, _, _ = parallelVisit(b, opts, visit)
	return runs, exhaustive
}

// VisitReplay is the original exploration engine: one full replay per
// tree node, O(depth) simulated steps each, strictly sequential. It is
// retained as the independent reference implementation — the engine
// cross-check tests compare Visit against it run for run — and for the
// DESIGN.md §5.2 ablation. New code should call Visit.
func VisitReplay(b Builder, opts Options, visit func(Outcome) bool) (runs int, exhaustive bool) {
	opts = opts.withDefaults()
	w := &walker{b: b, opts: opts, visit: visit}
	ok := w.expand(nil, 0, 0)
	return w.runs, ok && !w.capped
}

type walker struct {
	b      Builder
	opts   Options
	visit  func(Outcome) bool
	runs   int
	capped bool
}

// expand replays prefix, then branches on the ready set at its end.
// It returns false to abort the whole walk. Branch order — picks, then
// crash-picks, then fault-picks mode-major — is the canonical child
// order the path engine must reproduce exactly.
func (w *walker) expand(prefix []Choice, crashes, faults int) bool {
	if w.runs >= w.opts.MaxRuns {
		w.capped = true
		return false
	}
	res, ready := w.replay(prefix)
	if !res.Halted || len(prefix) >= w.opts.MaxDepth {
		// Terminal: either the run completed within the prefix, or we
		// are at the depth bound with live processes.
		w.runs++
		sched := make([]Choice, len(prefix))
		copy(sched, prefix)
		return w.visit(Outcome{Schedule: sched, Result: res})
	}
	for _, id := range ready {
		if !w.expand(extend(prefix, Choice{Pick: id}), crashes, faults) {
			return false
		}
	}
	if crashes < w.opts.MaxCrashes {
		for _, id := range ready {
			if !w.expand(extend(prefix, Choice{Pick: id, Crash: true}), crashes+1, faults) {
				return false
			}
		}
	}
	if faults < w.opts.ObjectFaults {
		for _, mode := range w.opts.FaultModes {
			for _, id := range ready {
				if !w.expand(extend(prefix, Choice{Pick: id, Fault: mode}), crashes, faults+1) {
					return false
				}
			}
		}
	}
	return true
}

// extend returns prefix with c appended in a fresh backing array of
// capacity exactly len+1. A plain append(prefix, c) would let sibling
// branches share (and overwrite) one backing array whenever prefix has
// spare capacity — latent even single-threaded, fatal the moment
// prefixes are handed to parallel workers or retained in outcomes.
func extend(prefix []Choice, c Choice) []Choice {
	out := make([]Choice, len(prefix)+1)
	copy(out, prefix)
	out[len(prefix)] = c
	return out
}

// replay runs a fresh system under the given choice prefix and returns
// the result plus the ready set at the halt frontier (nil if complete).
func (w *walker) replay(prefix []Choice) (*sim.Result, []sim.ProcID) {
	return replayPrefix(w.b, w.opts, prefix)
}

// replayPrefix runs a fresh system under the given choice prefix.
func replayPrefix(b Builder, opts Options, prefix []Choice) (*sim.Result, []sim.ProcID) {
	plan := newChoicePlan(prefix)
	sys := b()
	cfg := sim.Config{
		Scheduler:       plan,
		Faults:          plan,
		MaxStepsPerProc: opts.MaxStepsPerProc,
		MaxTotalSteps:   opts.MaxDepth + 1,
		DisableTrace:    true,
	}
	if opts.ObjectFaults > 0 {
		cfg.ObjectFaults = plan
	}
	res, err := sys.Run(cfg)
	if err != nil {
		// A Builder that yields scheduler misuse is a programming error.
		panic(fmt.Sprintf("explore: replay failed: %v", err))
	}
	return res, res.ReadyAtHalt
}

// choicePlan feeds a choice sequence to the runner, acting as
// Scheduler, FaultPlan and ObjectFaultPlan at once. Crash choices are
// consumed by CrashNow (the runner consults faults first at each
// decision point), pick choices by Next; when the sequence is exhausted
// Next halts the run. A fault-pick arms pendingFault in Next, and the
// granted step's Env.Apply collects it through FaultOp — no step
// arithmetic is needed because FaultOp is consulted exactly once per
// granted step.
type choicePlan struct {
	choices      []Choice
	i            int
	pendingFault sim.FaultMode
}

func newChoicePlan(cs []Choice) *choicePlan { return &choicePlan{choices: cs} }

// CrashNow implements sim.FaultPlan: it consumes all consecutive crash
// choices at the current position.
func (p *choicePlan) CrashNow(_ []sim.ProcID, _ int) []sim.ProcID {
	var out []sim.ProcID
	for p.i < len(p.choices) && p.choices[p.i].Crash {
		out = append(out, p.choices[p.i].Pick)
		p.i++
	}
	return out
}

// Next implements sim.Scheduler: it consumes one pick choice, arming
// the step's object fault if the choice carries one.
func (p *choicePlan) Next(ready []sim.ProcID, _ int) sim.ProcID {
	if p.i >= len(p.choices) {
		return sim.Halt
	}
	c := p.choices[p.i]
	p.i++
	for _, r := range ready {
		if r == c.Pick {
			p.pendingFault = c.Fault
			return c.Pick
		}
	}
	return sim.Halt
}

// FaultOp implements sim.ObjectFaultPlan: it hands the armed fault to
// the step being executed and disarms it.
func (p *choicePlan) FaultOp(_ int) sim.FaultMode {
	m := p.pendingFault
	p.pendingFault = sim.FaultNone
	return m
}

// DecisionFingerprint canonically renders the decided values of a run,
// sorted, e.g. "[1 1 2]". Two runs with the same fingerprint decided
// the same multiset of values.
func DecisionFingerprint(res *sim.Result) string {
	var vals []string
	for _, id := range res.Decided() {
		vals = append(vals, fmt.Sprint(res.Values[id]))
	}
	sort.Strings(vals)
	return "[" + strings.Join(vals, " ") + "]"
}

// Census summarizes an exhaustive exploration.
type Census struct {
	// Complete and Incomplete count terminal runs.
	Complete   int
	Incomplete int
	// Outcomes histograms complete runs by decision fingerprint.
	Outcomes map[string]int
	// Violations holds the first few outcomes failing the check;
	// ViolationRuns counts ALL complete runs that failed it.
	Violations    []Outcome
	ViolationRuns int
	// Exhaustive is false if the walk was truncated by MaxRuns.
	Exhaustive bool
	// Errors lists subtrees permanently lost to worker failures after
	// the supervisor's retry budget (parallel walks only; a sequential
	// walk lets the panic propagate). A non-empty Errors forces
	// Exhaustive to false: every run counted is real, but coverage is
	// partial. FailedRoots carries the same failures structured.
	Errors      []string
	FailedRoots []RootFailure
	// Cancelled is true when the walk was cut short by Options.Context.
	// Counts remain real but partial; Exhaustive is false.
	Cancelled bool
	// Prune reports transposition-table and work-stealing activity of a
	// pruned census (nil when Options.Prune was off).
	Prune *PruneStats
}

// MaxRecordedViolations bounds Census.Violations.
const MaxRecordedViolations = 5

// Run explores all schedules and classifies every terminal run.
// check, if non-nil, is evaluated on complete runs; a non-nil error
// records the outcome as a violation. With Options.Prune the walk
// skips subtrees whose root state was already censused, crediting
// their stored summaries — counts stay exact.
func Run(b Builder, opts Options, check func(*sim.Result) error) *Census {
	opts = opts.withDefaults()
	if opts.Prune {
		return pruneCensus(b, opts, check)
	}
	c := &Census{Outcomes: make(map[string]int)}
	_, exhaustive, failed, cancelled := visitAll(b, opts, func(o Outcome) bool {
		if o.Result.Halted {
			c.Incomplete++
			return true
		}
		c.Complete++
		c.Outcomes[DecisionFingerprint(o.Result)]++
		if check != nil {
			if err := check(o.Result); err != nil {
				c.ViolationRuns++
				if len(c.Violations) < MaxRecordedViolations {
					c.Violations = append(c.Violations, o)
				}
			}
		}
		return true
	})
	c.Exhaustive = exhaustive && len(failed) == 0 && !cancelled
	c.FailedRoots = failed
	c.Errors = failureStrings(failed)
	c.Cancelled = cancelled
	return c
}
