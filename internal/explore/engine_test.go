package explore_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/explore"
	"repro/internal/faults"
	"repro/internal/objects"
	"repro/internal/registers"
	"repro/internal/sim"
)

// The engine cross-check matrix: every (builder, options) pair the
// equivalence tests walk. It covers plain interleavings, crash
// branching (budget 1 and 2), object-fault branching (single- and
// multi-mode, alone and combined with crashes, against wrapped and
// unwrapped objects), step limits, depth-bound incomplete runs, and a
// protocol with real violations. The acceptance criterion is
// bit-identical behavior between the path engine (Visit), the replay
// reference engine (VisitReplay), the parallel walk, and the pruned
// census.
type engineCase struct {
	name  string
	b     explore.Builder
	opts  explore.Options
	check func(*sim.Result) error
}

func disagreement(res *sim.Result) error {
	if d := res.DistinctDecisions(); len(d) > 1 {
		return errors.New("disagreement")
	}
	return nil
}

// faultyElection is a degradation-aware leader election over a
// fault-wrapped compare&swap register: processes try the c&s path and,
// if the object has failed, race on a plain fallback register. It is
// the canonical builder for the object-fault matrix entries.
func faultyElection(n int) explore.Builder {
	return func() *sim.System {
		sys := sim.NewSystem()
		cas := faults.Wrap(objects.NewCAS("c", n+1))
		fb := registers.NewMWMR("fb", nil)
		sys.Add(cas)
		sys.Add(fb)
		sys.SpawnN(n, func(id sim.ProcID) sim.Program {
			return func(e *sim.Env) (sim.Value, error) {
				prev, ok := faults.TryApply(e, cas, objects.OpCAS, objects.Bottom, objects.Symbol(int(id)+1))
				if ok {
					if prev == objects.Bottom {
						return int(id), nil
					}
					return int(prev.(objects.Symbol)) - 1, nil
				}
				if v := fb.Read(e); v != nil {
					return v, nil
				}
				fb.Write(e, int(id))
				return int(id), nil
			}
		})
		return sys
	}
}

var allFaultModes = []sim.FaultMode{sim.FaultCrash, sim.FaultOmission, sim.FaultReset, sim.FaultGarble}

func engineMatrix() []engineCase {
	spinner := func() *sim.System {
		sys := sim.NewSystem()
		r := registers.NewMWMR("spin", 0)
		sys.Add(r)
		sys.SpawnN(2, func(id sim.ProcID) sim.Program {
			return func(e *sim.Env) (sim.Value, error) {
				for {
					r.Read(e)
				}
			}
		})
		return sys
	}
	return []engineCase{
		{name: "oneShot-2x2", b: oneShot(2, 2)},
		{name: "oneShot-3x2", b: oneShot(3, 2)},
		{name: "oneShot-2x3-crash1", b: oneShot(2, 3), opts: explore.Options{MaxCrashes: 1}},
		{name: "oneShot-2x2-crash2", b: oneShot(2, 2), opts: explore.Options{MaxCrashes: 2}},
		{name: "oneShot-2x3-steplimit", b: oneShot(2, 3), opts: explore.Options{MaxStepsPerProc: 2}},
		{name: "tas-consensus", b: tasConsensus([2]int{10, 20}), check: disagreement},
		{name: "tas-consensus-crash1", b: tasConsensus([2]int{10, 20}), opts: explore.Options{MaxCrashes: 1}, check: disagreement},
		{name: "rw-consensus", b: rwConsensusAttempt, check: disagreement},
		{name: "rw-consensus-crash1", b: rwConsensusAttempt, opts: explore.Options{MaxCrashes: 1}, check: disagreement},
		{name: "spinner-depth10", b: spinner, opts: explore.Options{MaxDepth: 10}},
		{name: "oneShot-3x2-capped", b: oneShot(3, 2), opts: explore.Options{MaxRuns: 25}},
		{name: "faulty-le2-fault1", b: faultyElection(2),
			opts: explore.Options{ObjectFaults: 1}, check: disagreement},
		{name: "faulty-le2-allmodes", b: faultyElection(2),
			opts: explore.Options{ObjectFaults: 1, FaultModes: allFaultModes}, check: disagreement},
		{name: "faulty-le2-crash1-fault1", b: faultyElection(2),
			opts: explore.Options{MaxCrashes: 1, ObjectFaults: 1, FaultModes: allFaultModes}, check: disagreement},
		{name: "faulty-le3-fault1", b: faultyElection(3),
			opts: explore.Options{ObjectFaults: 1}, check: disagreement},
		// Fault budget against a system with no Faultable object: fault
		// branches degrade to healthy steps, and every engine must agree
		// on that too.
		{name: "oneShot-2x2-fault1-unwrapped", b: oneShot(2, 2),
			opts: explore.Options{ObjectFaults: 1, FaultModes: allFaultModes}},
	}
}

// outcomeKey renders every field of an outcome a caller can observe,
// so sequence equality means bit-identical exploration behavior.
func outcomeKey(o explore.Outcome) string {
	r := o.Result
	errs := make([]string, len(r.Errors))
	for i, err := range r.Errors {
		if err != nil {
			errs[i] = err.Error()
		}
	}
	return fmt.Sprintf("sched=%s halted=%v ready=%v vals=%v errs=%v crashed=%v steps=%v total=%d",
		explore.FormatSchedule(o.Schedule), r.Halted, r.ReadyAtHalt,
		r.Values, errs, r.Crashed, r.Steps, r.TotalSteps)
}

func collect(t *testing.T, visitFn func(explore.Builder, explore.Options, func(explore.Outcome) bool) (int, bool),
	b explore.Builder, opts explore.Options) ([]string, int, bool) {
	t.Helper()
	var keys []string
	runs, exhaustive := visitFn(b, opts, func(o explore.Outcome) bool {
		keys = append(keys, outcomeKey(o))
		return true
	})
	return keys, runs, exhaustive
}

// TestVisitMatchesVisitReplay: the path engine must reproduce the
// replay reference engine's visit sequence run for run.
func TestVisitMatchesVisitReplay(t *testing.T) {
	for _, tc := range engineMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			want, wantRuns, wantEx := collect(t, explore.VisitReplay, tc.b, tc.opts)
			got, gotRuns, gotEx := collect(t, explore.Visit, tc.b, tc.opts)
			if gotRuns != wantRuns || gotEx != wantEx {
				t.Fatalf("Visit runs=%d exhaustive=%v, VisitReplay runs=%d exhaustive=%v",
					gotRuns, gotEx, wantRuns, wantEx)
			}
			if !reflect.DeepEqual(got, want) {
				for i := range want {
					if i >= len(got) || got[i] != want[i] {
						t.Fatalf("outcome %d diverges:\n  path:   %s\n  replay: %s", i, got[i], want[i])
					}
				}
				t.Fatalf("path engine visited %d outcomes, replay %d", len(got), len(want))
			}
		})
	}
}

// TestParallelVisitMatchesSequential: with workers the visit sequence,
// run count and exhaustiveness must be exactly the sequential ones.
func TestParallelVisitMatchesSequential(t *testing.T) {
	for _, tc := range engineMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			want, wantRuns, wantEx := collect(t, explore.Visit, tc.b, tc.opts)
			par := tc.opts
			par.Workers = 4
			got, gotRuns, gotEx := collect(t, explore.Visit, tc.b, par)
			if gotRuns != wantRuns || gotEx != wantEx {
				t.Fatalf("parallel runs=%d exhaustive=%v, sequential runs=%d exhaustive=%v",
					gotRuns, gotEx, wantRuns, wantEx)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("parallel visit order diverges from sequential (%d vs %d outcomes)", len(got), len(want))
			}
		})
	}
}

// TestParallelVisitEarlyStop: a visit callback that stops the walk must
// behave identically under workers.
func TestParallelVisitEarlyStop(t *testing.T) {
	for _, workers := range []int{0, 4} {
		runs, exhaustive := explore.Visit(oneShot(3, 2), explore.Options{Workers: workers},
			func(o explore.Outcome) bool { return false })
		if runs != 1 || exhaustive {
			t.Errorf("workers=%d: runs=%d exhaustive=%v, want 1,false", workers, runs, exhaustive)
		}
	}
}

// TestPrunedCensusMatchesUnpruned: transposition pruning (sequential
// and parallel) must reproduce the unpruned census exactly — run
// counts, outcome histogram, violation count, exhaustiveness.
func TestPrunedCensusMatchesUnpruned(t *testing.T) {
	for _, tc := range engineMatrix() {
		if tc.opts.MaxRuns != 0 {
			continue // capped censuses cap by credited runs under pruning: not comparable
		}
		t.Run(tc.name, func(t *testing.T) {
			want := explore.Run(tc.b, tc.opts, tc.check)
			for _, tunes := range [][]explore.Tune{
				{explore.WithPrune()},
				{explore.WithPrune(), explore.WithWorkers(4)},
				// A starved entry budget forces constant eviction; counts
				// must not move.
				{explore.WithPrune(), explore.WithPruneBudget(16)},
				{explore.WithPrune(), explore.WithPruneBudget(16), explore.WithWorkers(4)},
			} {
				got := explore.Run(tc.b, tc.opts.With(tunes...), tc.check)
				if got.Complete != want.Complete || got.Incomplete != want.Incomplete ||
					got.ViolationRuns != want.ViolationRuns || got.Exhaustive != want.Exhaustive {
					t.Fatalf("pruned census (tunes %d) = %d/%d viol=%d ex=%v, unpruned = %d/%d viol=%d ex=%v",
						len(tunes), got.Complete, got.Incomplete, got.ViolationRuns, got.Exhaustive,
						want.Complete, want.Incomplete, want.ViolationRuns, want.Exhaustive)
				}
				if !censusOutcomesEqual(got.Outcomes, want.Outcomes) {
					t.Fatalf("pruned outcome histogram %v, unpruned %v", got.Outcomes, want.Outcomes)
				}
				if (len(got.Violations) == 0) != (len(want.Violations) == 0) {
					t.Fatalf("pruned recorded %d violations, unpruned %d", len(got.Violations), len(want.Violations))
				}
			}
		})
	}
}

func censusOutcomesEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestParallelCensusMatchesSequential: workers without pruning also
// reproduce the census exactly (streamed through the sequencer).
func TestParallelCensusMatchesSequential(t *testing.T) {
	for _, tc := range engineMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			want := explore.Run(tc.b, tc.opts, tc.check)
			got := explore.Run(tc.b, tc.opts.With(explore.WithWorkers(4)), tc.check)
			if got.Complete != want.Complete || got.Incomplete != want.Incomplete ||
				got.ViolationRuns != want.ViolationRuns || got.Exhaustive != want.Exhaustive ||
				!censusOutcomesEqual(got.Outcomes, want.Outcomes) {
				t.Fatalf("parallel census diverges:\n got: %+v\nwant: %+v", got, want)
			}
			// Without pruning the walk order is exactly sequential, so
			// even the recorded representatives must match.
			if len(got.Violations) != len(want.Violations) {
				t.Fatalf("parallel recorded %d violations, sequential %d", len(got.Violations), len(want.Violations))
			}
			for i := range got.Violations {
				if explore.FormatSchedule(got.Violations[i].Schedule) != explore.FormatSchedule(want.Violations[i].Schedule) {
					t.Fatalf("violation %d schedule diverges", i)
				}
			}
		})
	}
}

// TestHuntDeterminism: the randomized hunter is part of the public
// exploration surface; same seed + builder must give the identical
// tried count and outcome, so engine work can't silently change hunt
// semantics.
func TestHuntDeterminism(t *testing.T) {
	type huntResult struct {
		sched string
		tried int
		found bool
	}
	hunt := func(b explore.Builder, opts explore.Options, trials int, seed int64) huntResult {
		out, tried := explore.Hunt(b, opts, trials, seed, disagreement)
		r := huntResult{tried: tried, found: out != nil}
		if out != nil {
			r.sched = explore.FormatSchedule(out.Schedule)
		}
		return r
	}
	cases := []struct {
		name   string
		b      explore.Builder
		opts   explore.Options
		trials int
	}{
		{name: "rw-violation", b: rwConsensusAttempt, trials: 500},
		{name: "tas-quiet", b: tasConsensus([2]int{1, 2}), opts: explore.Options{MaxCrashes: 1}, trials: 300},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				a := hunt(tc.b, tc.opts, tc.trials, seed)
				b := hunt(tc.b, tc.opts, tc.trials, seed)
				if a != b {
					t.Fatalf("seed %d: hunt not deterministic: %+v vs %+v", seed, a, b)
				}
			}
		})
	}
}
