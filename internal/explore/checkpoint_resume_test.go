package explore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for checkpoint resume hygiene: a resume must either credit the
// recorded roots (identical exploration), start fresh with a warning
// (different exploration, or an unusable file), or refuse loudly (same
// exploration under different engine options — the one case where
// proceeding silently would explore under the wrong reduction).

// partialCheckpoint runs a checkpointed walk of wideTree under opts and
// kills it after three completed roots, leaving a real resumable file
// at path.
func partialCheckpoint(t *testing.T, path string, opts Options) {
	t.Helper()
	_, stats, err := RunCheckpointed(wideTree, opts, nil, Checkpoint{
		Path: path, Every: 1, stopAfterRoots: 3,
	})
	if err != errStopped {
		t.Fatalf("partial run returned err=%v, want errStopped", err)
	}
	if stats.Saves == 0 {
		t.Fatal("partial run saved no checkpoint")
	}
}

// TestCheckpointWrongOptionsRefused: resuming the SAME exploration
// under different engine options (reducers, budgets) must fail with a
// clear error naming both option sets — never silently start fresh,
// and never credit roots recorded under the other settings.
func TestCheckpointWrongOptionsRefused(t *testing.T) {
	base := Options{Workers: 2}.withDefaults()
	for _, tc := range []struct {
		name   string
		resume Options
	}{
		{"sleepsets-added", Options{Workers: 2, SleepSets: true}.withDefaults()},
		{"maxruns-changed", Options{Workers: 2, MaxRuns: 123456}.withDefaults()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ck.json")
			partialCheckpoint(t, path, base)
			_, _, err := RunCheckpointed(wideTree, tc.resume, nil, Checkpoint{Path: path, Resume: true})
			if err == nil {
				t.Fatal("resume under mismatched options succeeded; want a refusal")
			}
			if !strings.Contains(err.Error(), "different engine options") {
				t.Fatalf("refusal error does not name the options mismatch: %v", err)
			}
		})
	}

	// Sanity: identical options still resume and credit roots.
	t.Run("identical-options-resume", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "ck.json")
		partialCheckpoint(t, path, base)
		want := Run(wideTree, base, nil)
		got, stats, err := RunCheckpointed(wideTree, base, nil, Checkpoint{Path: path, Resume: true})
		if err != nil {
			t.Fatal(err)
		}
		if stats.ResumedRoots == 0 {
			t.Fatal("identical-options resume credited no roots")
		}
		if stats.Warning != "" {
			t.Fatalf("identical-options resume warned: %s", stats.Warning)
		}
		censusSame(t, "identical-options", got, want)
	})
}

// TestCheckpointCorruptionMatrix corrupts a REAL checkpoint file (not a
// hand-written stub) in the ways a crash or operator error produces and
// asserts each resume either recovers fresh with a warning or — for the
// wrong-options case — fails loudly. The census must be exact in every
// recovering case.
func TestCheckpointCorruptionMatrix(t *testing.T) {
	opts := Options{Workers: 2}.withDefaults()
	want := Run(wideTree, opts, nil)
	for _, tc := range []struct {
		name string
		// corrupt mutates the saved checkpoint bytes.
		corrupt func(t *testing.T, data []byte) []byte
		// wantErr: resume must fail (substring match); otherwise it must
		// recover fresh with a warning and zero credited roots.
		wantErr string
	}{
		{
			name: "truncated-to-nothing",
			corrupt: func(t *testing.T, data []byte) []byte {
				return nil
			},
		},
		{
			name: "torn-last-record",
			corrupt: func(t *testing.T, data []byte) []byte {
				// Tear mid-way through the done map: syntactically invalid
				// JSON, as a crash mid-write (without the atomic rename)
				// would leave it.
				cut := len(data) / 2
				if cut == 0 {
					t.Fatal("checkpoint unexpectedly empty")
				}
				return data[:cut]
			},
		},
		{
			name: "wrong-key",
			corrupt: func(t *testing.T, data []byte) []byte {
				// A syntactically valid file for a DIFFERENT exploration:
				// key and frontier both off.
				return []byte(`{"key": 1, "frontier": 2, "opts": "", "done": {"0": {"complete": 9}}}`)
			},
		},
		{
			name: "wrong-options-same-frontier",
			corrupt: func(t *testing.T, data []byte) []byte {
				// Keep the recorded frontier but claim foreign options: the
				// same-exploration/different-options refusal must fire.
				var f ckFile
				if err := json.Unmarshal(data, &f); err != nil {
					t.Fatal(err)
				}
				f.Key = 1
				f.Opts = "d400 c0 f0 m[] r1048576 s0 ytrue ztrue"
				out, err := json.Marshal(&f)
				if err != nil {
					t.Fatal(err)
				}
				return out
			},
			wantErr: "different engine options",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ck.json")
			partialCheckpoint(t, path, opts)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(t, data), 0o644); err != nil {
				t.Fatal(err)
			}
			got, stats, err := RunCheckpointed(wideTree, opts, nil, Checkpoint{Path: path, Resume: true})
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("resume err = %v, want %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("resume over %s errored: %v", tc.name, err)
			}
			if stats.Warning == "" {
				t.Fatalf("%s recovered without a warning", tc.name)
			}
			if stats.ResumedRoots != 0 {
				t.Fatalf("%s credited %d roots from a corrupt file", tc.name, stats.ResumedRoots)
			}
			censusSame(t, tc.name, got, want)
		})
	}
}

// TestSupervisorEvents: the OnEvent hook must observe every root's
// lifecycle — one resolve per root, one claim per attempt, and a retry
// when an attempt panics — without perturbing the census.
func TestSupervisorEvents(t *testing.T) {
	want := Run(wideTree, Options{}.withDefaults(), nil)

	var mu sync.Mutex
	counts := map[EventKind]int{}
	record := func(e Event) {
		mu.Lock()
		counts[e.Kind]++
		mu.Unlock()
	}

	var stats SuperviseStats
	var calls atomic.Int64
	opts := Options{Workers: 2}.withDefaults()
	opts.Supervision = &Supervise{
		MaxAttempts: 5,
		BackoffBase: time.Microsecond,
		BackoffMax:  time.Microsecond,
		Stats:       &stats,
		OnEvent:     record,
	}
	// Panic one builder call mid-walk so a retry event fires. Frontier
	// enumeration and leaf replay run before the pool spins up; panic a
	// later call so it lands on a worker attempt.
	b := countingBuilder(wideTree, &calls, 0)
	path := filepath.Join(t.TempDir(), "ck.json")
	if _, ok := frontier(b, opts, opts.workerCount()); !ok {
		t.Fatal("frontier capped unexpectedly")
	}
	fc := calls.Load()
	got, ckStats, err := RunCheckpointed(countingBuilder(wideTree, &calls, fc*2+10), opts, nil,
		Checkpoint{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	censusSame(t, "events-run", got, want)

	mu.Lock()
	defer mu.Unlock()
	if counts[EventResolved] != ckStats.TotalRoots {
		t.Fatalf("resolved events %d, want one per root (%d)", counts[EventResolved], ckStats.TotalRoots)
	}
	if int64(counts[EventClaim]) != stats.Attempts.Load() {
		t.Fatalf("claim events %d, attempts counter %d", counts[EventClaim], stats.Attempts.Load())
	}
	if counts[EventRetry] == 0 {
		t.Fatal("injected panic produced no retry event")
	}
	if int64(counts[EventRetry]) != stats.Retries.Load() {
		t.Fatalf("retry events %d, retries counter %d", counts[EventRetry], stats.Retries.Load())
	}
	if counts[EventFailed] != 0 {
		t.Fatalf("healed run emitted %d failure events", counts[EventFailed])
	}
}
