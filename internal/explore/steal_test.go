package explore

import (
	"testing"
	"time"
)

// forceDonation makes every steal pool report hungry for the duration
// of the test, so busy engines donate at every backtrack — the maximal
// stealing churn the exactness argument has to survive.
func forceDonation(t *testing.T) {
	t.Helper()
	stealForceHungry = true
	t.Cleanup(func() { stealForceHungry = false })
}

func sameCensus(t *testing.T, label string, got, want *Census) {
	t.Helper()
	if got.Complete != want.Complete || got.Incomplete != want.Incomplete ||
		got.ViolationRuns != want.ViolationRuns || got.Exhaustive != want.Exhaustive {
		t.Fatalf("%s census %d/%d viol=%d ex=%v, want %d/%d viol=%d ex=%v",
			label, got.Complete, got.Incomplete, got.ViolationRuns, got.Exhaustive,
			want.Complete, want.Incomplete, want.ViolationRuns, want.Exhaustive)
	}
	if len(got.Outcomes) != len(want.Outcomes) {
		t.Fatalf("%s outcome histogram %v, want %v", label, got.Outcomes, want.Outcomes)
	}
	for k, v := range want.Outcomes {
		if got.Outcomes[k] != v {
			t.Fatalf("%s outcome histogram %v, want %v", label, got.Outcomes, want.Outcomes)
		}
	}
	if (len(got.Violations) == 0) != (len(want.Violations) == 0) {
		t.Fatalf("%s recorded %d violation reps, want %d", label, len(got.Violations), len(want.Violations))
	}
}

// TestStealCensusMatchesSequentialPruned: the work-stealing shared-table
// census must be bit-identical (counts, histogram, violation count,
// exhaustiveness) to the sequential pruned walk, across worker counts
// and with donation forced at every backtrack.
func TestStealCensusMatchesSequentialPruned(t *testing.T) {
	forceDonation(t)
	cases := []struct {
		name string
		b    Builder
		opts Options
	}{
		{name: "rw-crash1", b: rwAttempt, opts: Options{MaxCrashes: 1}},
		{name: "wide", b: wideTree, opts: Options{}},
		{name: "wide-crash1", b: wideTree, opts: Options{MaxCrashes: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.opts.withDefaults()
			want := Run(tc.b, opts.With(WithPrune()), disagreeCheck)
			var donations uint64
			for _, workers := range []int{2, 4, 8} {
				got := Run(tc.b, opts.With(WithPrune(), WithWorkers(workers)), disagreeCheck)
				sameCensus(t, tc.name, got, want)
				if got.Prune == nil {
					t.Fatal("parallel pruned census reported no Prune stats")
				}
				donations += got.Prune.Donations
			}
			// The forced-hungry hook guarantees donation attempts; on any
			// tree deep enough to split, some must land.
			if tc.name != "rw-crash1" && donations == 0 {
				t.Fatal("forced hunger produced no donations")
			}
		})
	}
}

// TestStealCensusChaosBitIdentical: forced donation composed with
// injected worker kills and the stall watchdog — retried donor items
// must honor their donation logs (no run double-counted, none lost).
func TestStealCensusChaosBitIdentical(t *testing.T) {
	forceDonation(t)
	want := Run(wideTree, Options{MaxCrashes: 1}.withDefaults().With(WithPrune()), disagreeCheck)
	if !want.Exhaustive || want.ViolationRuns == 0 {
		t.Fatalf("sequential pruned baseline broken: %+v", want)
	}
	var stats SuperviseStats
	opts := Options{MaxCrashes: 1, Workers: 4}.withDefaults().With(WithPrune(), WithSupervision(Supervise{
		MaxAttempts:  10,
		BackoffBase:  time.Microsecond,
		BackoffMax:   time.Millisecond,
		Seed:         1,
		StallTimeout: 25 * time.Millisecond,
		Chaos: &ChaosPlan{
			Seed:      7,
			KillRate:  1,
			MaxKills:  6,
			StallRate: 1,
			MaxStalls: 2,
			StallFor:  80 * time.Millisecond,
		},
		Stats: &stats,
	}))
	got := Run(wideTree, opts, disagreeCheck)
	if len(got.Errors) != 0 {
		t.Fatalf("chaos not healed within the attempt budget: %v", got.Errors)
	}
	sameCensus(t, "chaos", got, want)
	if stats.Kills.Load() == 0 {
		t.Fatal("chaos injected no kills; test exercised nothing")
	}
	if stats.Retries.Load() == 0 && stats.Requeues.Load() == 0 {
		t.Fatal("supervisor recorded neither retries nor requeues under chaos")
	}
}

// TestPruneTableHitAllocFree: a transposition-table hit — the inner
// loop of every pruned walk — must not allocate: lookup, stat counting
// and shard selection all run on preallocated state.
func TestPruneTableHitAllocFree(t *testing.T) {
	table := newPruneTable(0)
	key := tableKey{fp: 0x9e3779b97f4a7c15, depthRem: 40, crashRem: 1}
	if !table.put(key, newSummary()) {
		t.Fatal("put rejected first write")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := table.get(key); !ok {
			t.Fatal("seeded key missed")
		}
	})
	if allocs != 0 {
		t.Fatalf("prune-table hit allocates %.1f objects, want 0", allocs)
	}
}
