package explore

import (
	"context"
	"sync"
	"testing"
	"time"
)

// forceDonation makes every steal pool report hungry for the duration
// of the test, so busy engines donate at every backtrack — the maximal
// stealing churn the exactness argument has to survive.
func forceDonation(t *testing.T) {
	t.Helper()
	stealForceHungry = true
	t.Cleanup(func() { stealForceHungry = false })
}

func sameCensus(t *testing.T, label string, got, want *Census) {
	t.Helper()
	if got.Complete != want.Complete || got.Incomplete != want.Incomplete ||
		got.ViolationRuns != want.ViolationRuns || got.Exhaustive != want.Exhaustive {
		t.Fatalf("%s census %d/%d viol=%d ex=%v, want %d/%d viol=%d ex=%v",
			label, got.Complete, got.Incomplete, got.ViolationRuns, got.Exhaustive,
			want.Complete, want.Incomplete, want.ViolationRuns, want.Exhaustive)
	}
	if len(got.Outcomes) != len(want.Outcomes) {
		t.Fatalf("%s outcome histogram %v, want %v", label, got.Outcomes, want.Outcomes)
	}
	for k, v := range want.Outcomes {
		if got.Outcomes[k] != v {
			t.Fatalf("%s outcome histogram %v, want %v", label, got.Outcomes, want.Outcomes)
		}
	}
	if (len(got.Violations) == 0) != (len(want.Violations) == 0) {
		t.Fatalf("%s recorded %d violation reps, want %d", label, len(got.Violations), len(want.Violations))
	}
}

// TestStealCensusMatchesSequentialPruned: the work-stealing shared-table
// census must be bit-identical (counts, histogram, violation count,
// exhaustiveness) to the sequential pruned walk, across worker counts
// and with donation forced at every backtrack.
func TestStealCensusMatchesSequentialPruned(t *testing.T) {
	forceDonation(t)
	cases := []struct {
		name string
		b    Builder
		opts Options
	}{
		{name: "rw-crash1", b: rwAttempt, opts: Options{MaxCrashes: 1}},
		{name: "wide", b: wideTree, opts: Options{}},
		{name: "wide-crash1", b: wideTree, opts: Options{MaxCrashes: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.opts.withDefaults()
			want := Run(tc.b, opts.With(WithPrune()), disagreeCheck)
			var donations uint64
			for _, workers := range []int{2, 4, 8} {
				got := Run(tc.b, opts.With(WithPrune(), WithWorkers(workers)), disagreeCheck)
				sameCensus(t, tc.name, got, want)
				if got.Prune == nil {
					t.Fatal("parallel pruned census reported no Prune stats")
				}
				donations += got.Prune.Donations
			}
			// The forced-hungry hook guarantees donation attempts; on any
			// tree deep enough to split, some must land.
			if tc.name != "rw-crash1" && donations == 0 {
				t.Fatal("forced hunger produced no donations")
			}
		})
	}
}

// TestStealCensusChaosBitIdentical: forced donation composed with
// injected worker kills and the stall watchdog — retried donor items
// must honor their donation logs (no run double-counted, none lost).
func TestStealCensusChaosBitIdentical(t *testing.T) {
	forceDonation(t)
	want := Run(wideTree, Options{MaxCrashes: 1}.withDefaults().With(WithPrune()), disagreeCheck)
	if !want.Exhaustive || want.ViolationRuns == 0 {
		t.Fatalf("sequential pruned baseline broken: %+v", want)
	}
	var stats SuperviseStats
	opts := Options{MaxCrashes: 1, Workers: 4}.withDefaults().With(WithPrune(), WithSupervision(Supervise{
		MaxAttempts:  10,
		BackoffBase:  time.Microsecond,
		BackoffMax:   time.Millisecond,
		Seed:         1,
		StallTimeout: 25 * time.Millisecond,
		Chaos: &ChaosPlan{
			Seed:      7,
			KillRate:  1,
			MaxKills:  6,
			StallRate: 1,
			MaxStalls: 2,
			StallFor:  80 * time.Millisecond,
		},
		Stats: &stats,
	}))
	got := Run(wideTree, opts, disagreeCheck)
	if len(got.Errors) != 0 {
		t.Fatalf("chaos not healed within the attempt budget: %v", got.Errors)
	}
	sameCensus(t, "chaos", got, want)
	if stats.Kills.Load() == 0 {
		t.Fatal("chaos injected no kills; test exercised nothing")
	}
	if stats.Retries.Load() == 0 && stats.Requeues.Load() == 0 {
		t.Fatal("supervisor recorded neither retries nor requeues under chaos")
	}
}

// TestRetriedDonorTableSoundness pins the transposition-table rules of
// a retried donor attempt — an attempt re-claimed after an earlier
// attempt of the same item donated a child away. Both hazards are
// exercised deterministically by running the donor walk (skip log
// pre-seeded) and the donated item's walk directly:
//
//  1. Publication: the donor's frames at ancestors of the donated
//     prefix lose the donated subtree to skip excision, so nothing the
//     donor publishes may under-count — every table entry it produces
//     must match the entry a full sequential walk produces for the
//     same key.
//  2. Hits: against a table pre-seeded by a full walk, the donor must
//     not take hits at those ancestors — a hit would credit the
//     donated subtree a second time on top of the donated item's walk.
func TestRetriedDonorTableSoundness(t *testing.T) {
	b := wideTree
	opts := Options{MaxCrashes: 1}.withDefaults().With(WithPrune())

	// Reference: a full sequential pruned walk, keeping its table.
	refTable := newPruneTable(0)
	full := &engine{b: b, opts: opts, acc: newSummary(), check: disagreeCheck, table: refTable}
	full.run()
	if full.capped || full.cancelled {
		t.Fatal("reference walk did not complete")
	}
	want := censusFrom(full.acc, true)
	if want.ViolationRuns == 0 {
		t.Fatal("reference census found no violations; test tree too tame")
	}

	// Pick a donated child: a depth-2 prefix that is NOT the first
	// child of its decision node (auto-descent takes child 0, which is
	// never donated), i.e. the first terminal schedule's length-2
	// prefix with the second choice swapped for a sibling's.
	var first, donated []Choice
	Visit(b, Options{MaxCrashes: 1}, func(o Outcome) bool {
		if len(o.Schedule) < 2 {
			return true
		}
		if first == nil {
			first = append([]Choice(nil), o.Schedule[:2]...)
			return true
		}
		if o.Schedule[0] == first[0] && o.Schedule[1] != first[1] {
			donated = append([]Choice(nil), o.Schedule[:2]...)
			return false
		}
		return true
	})
	if donated == nil {
		t.Fatal("found no sibling child to donate")
	}

	// runSplit replays the retried-donor scenario against the given
	// table: the donor item's walk with the donation pre-logged, plus
	// the donated item's walk, merged. The pair partitions the tree, so
	// the merged census must equal the reference census exactly.
	runSplit := func(table *pruneTable) *Census {
		t.Helper()
		p := &stealPool{
			ctx: context.Background(), cfg: opts.supervise(), opts: opts,
			check: disagreeCheck, table: table, total: newSummary(),
			claims: make(map[*stealClaim]struct{}), finished: make(chan struct{}),
		}
		p.cond = sync.NewCond(&p.mu)
		it := &stealItem{
			pool: p, attempts: 2, current: 2,
			skip:     map[string]bool{FormatSchedule(donated): true},
			skipSeqs: [][]Choice{donated},
		}
		donor := &engine{
			b: b, opts: opts, acc: newSummary(), check: disagreeCheck,
			table: table, pool: p, item: it, attempt: 2, skipcheck: true,
		}
		donor.run()
		den := &engine{b: b, opts: opts, acc: newSummary(), check: disagreeCheck, table: table, root: donated}
		den.run()
		if donor.capped || donor.cancelled || den.capped || den.cancelled {
			t.Fatal("split walks did not complete")
		}
		total := newSummary()
		total.merge(donor.acc)
		total.merge(den.acc)
		return censusFrom(total, true)
	}

	// Hazard 1: fresh table. The donor's ancestor frames of the donated
	// prefix must not publish their under-counted accumulators.
	fresh := newPruneTable(0)
	sameCensus(t, "fresh-table split", runSplit(fresh), want)
	for si := range fresh.shards {
		sh := &fresh.shards[si]
		for k, s := range sh.m {
			ref, ok := refTable.get(k)
			if !ok {
				t.Errorf("split walk published key %+v never published by the full walk", k)
				continue
			}
			if s.complete != ref.complete || s.incomplete != ref.incomplete || s.violations != ref.violations {
				t.Errorf("split walk published %d/%d viol=%d under key %+v, full walk published %d/%d viol=%d",
					s.complete, s.incomplete, s.violations, k, ref.complete, ref.incomplete, ref.violations)
				continue
			}
			for o, n := range ref.outcomes {
				if s.outcomes[o] != n {
					t.Errorf("split walk outcome histogram %v under key %+v, want %v", s.outcomes, k, ref.outcomes)
					break
				}
			}
		}
	}

	// Hazard 2: pre-seeded table. The donor must not take a hit at the
	// root or the depth-1 ancestor of the donated prefix, both of which
	// the reference walk published with the donated subtree included.
	sameCensus(t, "seeded-table split", runSplit(refTable), want)
}

// TestStealRetryStaleGeneration: a superseded attempt's panic must not
// requeue or fail an item out from under the live attempt. Pre-fix, a
// stale straggler reaching retryOrFail at the attempt budget marked
// the item as a RootFailure, so the live attempt's imminent successful
// result was discarded in resolve and the subtree silently dropped.
func TestStealRetryStaleGeneration(t *testing.T) {
	opts := Options{}.withDefaults().With(WithSupervision(Supervise{
		MaxAttempts: 1, BackoffBase: time.Microsecond, BackoffMax: time.Microsecond,
	}))
	p := &stealPool{
		ctx: context.Background(), cfg: opts.supervise(), opts: opts,
		total: newSummary(), claims: make(map[*stealClaim]struct{}), finished: make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	it := &stealItem{pool: p, prefix: []Choice{{Pick: 0}}, donor: -1, queued: true}
	p.queue = append(p.queue, it)
	p.outstanding = 1
	if got := p.next(0); got != it {
		t.Fatal("claim of the seeded item failed")
	}
	// A watchdog requeue hands the item to a second, live claim.
	p.mu.Lock()
	it.attempts++
	it.current++
	p.mu.Unlock()
	// The stale first attempt (generation 1) panics with the budget
	// spent: it must be a no-op, not a requeue or a RootFailure.
	p.retryOrFail(it, 1, 1, "panic: stale straggler")
	p.mu.Lock()
	if it.done || len(p.failed) != 0 || len(p.queue) != 0 {
		p.mu.Unlock()
		t.Fatalf("stale attempt settled the item: done=%v failed=%v queue=%d", it.done, p.failed, len(p.queue))
	}
	p.mu.Unlock()
	// The live attempt's completion still resolves the item.
	p.resolve(it, 2, &engine{acc: newSummary()})
	p.mu.Lock()
	defer p.mu.Unlock()
	if !it.done || p.outstanding != 0 || len(p.failed) != 0 {
		t.Fatalf("live attempt did not resolve cleanly: done=%v outstanding=%d failed=%v", it.done, p.outstanding, p.failed)
	}
}

// TestPruneTableHitAllocFree: a transposition-table hit — the inner
// loop of every pruned walk — must not allocate: lookup, stat counting
// and shard selection all run on preallocated state.
func TestPruneTableHitAllocFree(t *testing.T) {
	table := newPruneTable(0)
	key := tableKey{fp: 0x9e3779b97f4a7c15, depthRem: 40, crashRem: 1}
	if !table.put(key, newSummary()) {
		t.Fatal("put rejected first write")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := table.get(key); !ok {
			t.Fatal("seeded key missed")
		}
	})
	if allocs != 0 {
		t.Fatalf("prune-table hit allocates %.1f objects, want 0", allocs)
	}
}
