package explore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Checkpointed census exploration: long-running censuses periodically
// persist their progress so a killed process can resume instead of
// restarting. The unit of checkpointing is a frontier root (the same
// subtree split parallel exploration uses): roots are deterministic
// given the builder and options, each root's census summary is
// self-contained, and a summary is only ever recorded after its subtree
// was fully explored — so a resumed run credits recorded roots and
// re-explores the rest, landing on the exact census a single
// uninterrupted run produces. Representative violation outcomes are
// persisted as schedules and rebuilt by replay on load, so the file
// stays small and plain JSON.

// Checkpoint configures RunCheckpointed.
type Checkpoint struct {
	// Path is the checkpoint file. It is written atomically
	// (temp file + rename), so a kill mid-save leaves the previous
	// checkpoint intact.
	Path string
	// Every saves the file after every Every newly completed roots
	// (plus once at the end). Zero means 8.
	Every int
	// Resume loads Path before exploring, crediting its recorded roots
	// — provided its key matches this builder/options frontier; a
	// mismatched or unreadable file is ignored and the run starts
	// fresh.
	Resume bool

	// stopAfterRoots is a test hook: abort the run (with errStopped)
	// after this many newly completed roots, simulating a kill between
	// checkpoint saves.
	stopAfterRoots int
}

// CheckpointStats reports what a checkpointed run did.
type CheckpointStats struct {
	// TotalRoots is the number of subtree roots in the frontier.
	TotalRoots int
	// ResumedRoots is how many were credited from the checkpoint file.
	ResumedRoots int
	// Saves counts checkpoint writes (including the final one).
	Saves int
}

// errStopped reports a run aborted by the stopAfterRoots test hook.
var errStopped = errors.New("explore: checkpointed run stopped")

// ckRoot is one fully explored subtree in the checkpoint file.
type ckRoot struct {
	Complete   int            `json:"complete"`
	Incomplete int            `json:"incomplete"`
	Outcomes   map[string]int `json:"outcomes,omitempty"`
	Violations int            `json:"violations"`
	Reps       [][]Choice     `json:"reps,omitempty"`
	Capped     bool           `json:"capped,omitempty"`
	Err        string         `json:"err,omitempty"`
}

// ckFile is the checkpoint file layout.
type ckFile struct {
	// Key fingerprints the exploration (options + frontier prefixes):
	// a checkpoint is only resumable into the identical exploration.
	Key  uint64            `json:"key"`
	Done map[string]ckRoot `json:"done"`
}

// RunCheckpointed is Run with periodic progress persistence. It
// explores the frontier roots on Options.Workers workers, records each
// fully explored root, saves every Checkpoint.Every completions, and —
// with Checkpoint.Resume — skips roots recorded by a previous
// (interrupted) invocation with the same builder and options. The final
// census is bit-identical to Run's in every count; like parallel
// censuses, only the ≤5 recorded representatives may differ, and
// MaxRuns is enforced per subtree rather than globally.
//
// If the tree cannot be frontier-split under MaxRuns, it falls back to
// a plain Run with no checkpointing (stats zero).
func RunCheckpointed(b Builder, opts Options, check func(*sim.Result) error, ck Checkpoint) (*Census, CheckpointStats, error) {
	opts = opts.withDefaults()
	var stats CheckpointStats
	workers := opts.workerCount()
	items, ok := frontier(b, opts, workers)
	if !ok {
		return Run(b, opts, check), stats, nil
	}
	key := checkpointKey(opts, items)
	done := make(map[int]ckRoot)
	for _, it := range items {
		if it.prefix != nil {
			stats.TotalRoots++
		}
	}
	if ck.Resume {
		if f, err := loadCheckpoint(ck.Path); err == nil && f.Key == key {
			for k, v := range f.Done {
				if i, err := strconv.Atoi(k); err == nil && i >= 0 && i < len(items) && items[i].prefix != nil {
					done[i] = v
				}
			}
			stats.ResumedRoots = len(done)
		}
	}
	every := ck.Every
	if every <= 0 {
		every = 8
	}

	var table *pruneTable
	if opts.Prune {
		table = newPruneTable(opts.PruneTableEntries)
	}

	var (
		mu        sync.Mutex
		unsaved   int
		newlyDone int
		stopped   bool
	)
	save := func() error {
		f := ckFile{Key: key, Done: make(map[string]ckRoot, len(done))}
		for i, r := range done {
			f.Done[strconv.Itoa(i)] = r
		}
		if err := saveCheckpoint(ck.Path, &f); err != nil {
			return err
		}
		stats.Saves++
		unsaved = 0
		return nil
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(items) {
					return
				}
				if items[i].prefix == nil {
					continue
				}
				mu.Lock()
				_, did := done[i]
				stop := stopped
				mu.Unlock()
				if stop {
					return
				}
				if did {
					continue
				}
				r := exploreRoot(b, opts, check, table, items[i].prefix)
				mu.Lock()
				done[i] = r
				newlyDone++
				unsaved++
				if unsaved >= every {
					save() // best-effort mid-run; the final save reports errors
				}
				if ck.stopAfterRoots > 0 && newlyDone >= ck.stopAfterRoots {
					stopped = true
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if err := save(); err != nil {
		return nil, stats, fmt.Errorf("explore: checkpoint save: %w", err)
	}
	if stopped {
		return nil, stats, errStopped
	}

	// Deterministic merge in DFS root order, exactly like pruneCensus.
	total := newSummary()
	exhaustive := true
	var errs []string
	for i, it := range items {
		if it.prefix == nil {
			total.addTerminal(*it.leaf, check)
			continue
		}
		r := done[i]
		if r.Err != "" {
			errs = append(errs, r.Err)
			exhaustive = false
			continue
		}
		total.merge(r.toSummary(b, opts))
		if r.Capped {
			exhaustive = false
		}
	}
	c := censusFrom(total, exhaustive)
	c.Errors = errs
	return c, stats, nil
}

// exploreRoot fully explores one subtree, recovering panics into the
// root's Err field like every parallel walk in this package.
func exploreRoot(b Builder, opts Options, check func(*sim.Result) error, table *pruneTable, prefix []Choice) (out ckRoot) {
	defer func() {
		if r := recover(); r != nil {
			out = ckRoot{Err: fmt.Sprintf("subtree %s: panic: %v", FormatSchedule(prefix), r)}
		}
	}()
	en := &engine{b: b, opts: opts, acc: newSummary(), check: check, table: table, root: prefix}
	en.run()
	out = ckRoot{
		Complete:   en.acc.complete,
		Incomplete: en.acc.incomplete,
		Outcomes:   en.acc.outcomes,
		Violations: en.acc.violations,
		Capped:     en.capped,
	}
	for _, rep := range en.acc.reps {
		out.Reps = append(out.Reps, rep.Schedule)
	}
	return out
}

// toSummary rebuilds a summary from its persisted form, replaying the
// recorded representative schedules to recover their Results.
func (r ckRoot) toSummary(b Builder, opts Options) *summary {
	s := &summary{
		complete:   r.Complete,
		incomplete: r.Incomplete,
		outcomes:   make(map[string]int, len(r.Outcomes)),
		violations: r.Violations,
	}
	for k, v := range r.Outcomes {
		s.outcomes[k] = v
	}
	for _, sched := range r.Reps {
		res, _ := replayPrefix(b, opts, sched)
		s.reps = append(s.reps, Outcome{Schedule: sched, Result: res})
	}
	return s
}

// checkpointKey fingerprints the exploration: the option fields that
// shape the tree plus every frontier prefix. Builders are functions and
// cannot be hashed directly; the frontier, being the builder's observable
// branching structure down to the split, stands in for it.
func checkpointKey(opts Options, items []frontierItem) uint64 {
	h := uint64(fnvOffset)
	fold := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= fnvPrime
		}
	}
	fold(fmt.Sprintf("d%d c%d f%d m%v r%d s%d",
		opts.MaxDepth, opts.MaxCrashes, opts.ObjectFaults, opts.FaultModes,
		opts.MaxRuns, opts.MaxStepsPerProc))
	for _, it := range items {
		if it.prefix != nil {
			fold("|" + FormatSchedule(it.prefix))
		} else {
			fold("|leaf:" + FormatSchedule(it.leaf.Schedule))
		}
	}
	return h
}

// FNV-1a constants (local copy; sim keeps its own unexported ones).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func loadCheckpoint(path string) (*ckFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f ckFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	return &f, nil
}

func saveCheckpoint(path string, f *ckFile) error {
	data, err := json.Marshal(f)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
