package explore

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"repro/internal/sim"
)

// Checkpointed census exploration: long-running censuses periodically
// persist their progress so a killed process can resume instead of
// restarting. The unit of checkpointing is a frontier root (the same
// subtree split parallel exploration uses): roots are deterministic
// given the builder and options, each root's census summary is
// self-contained, and a summary is only ever recorded after its subtree
// was fully explored — so a resumed run credits recorded roots and
// re-explores the rest, landing on the exact census a single
// uninterrupted run produces. Representative violation outcomes are
// persisted as schedules and rebuilt by replay on load, so the file
// stays small and plain JSON.

// Checkpoint configures RunCheckpointed.
type Checkpoint struct {
	// Path is the checkpoint file. It is written atomically
	// (temp file + rename), so a kill mid-save leaves the previous
	// checkpoint intact.
	Path string
	// Every saves the file after every Every newly completed roots
	// (plus once at the end). Zero means 8.
	Every int
	// Resume loads Path before exploring, crediting its recorded roots
	// — provided its key matches this builder/options frontier; a
	// mismatched or unreadable file is ignored and the run starts
	// fresh.
	Resume bool

	// stopAfterRoots is a test hook: abort the run (with errStopped)
	// after this many newly completed roots, simulating a kill between
	// checkpoint saves.
	stopAfterRoots int
}

// CheckpointStats reports what a checkpointed run did.
type CheckpointStats struct {
	// TotalRoots is the number of subtree roots in the frontier.
	TotalRoots int
	// ResumedRoots is how many were credited from the checkpoint file.
	ResumedRoots int
	// Saves counts checkpoint writes (including the final one).
	Saves int
	// Retries and Requeues count supervisor recoveries during the run
	// (failed-attempt retries and watchdog requeues respectively).
	Retries  int
	Requeues int
	// Warning is set when Resume found a file it could not use — a
	// corrupt or unreadable checkpoint, or one keyed to a different
	// exploration. The run starts fresh; a missing file is a normal
	// fresh start and produces no warning.
	Warning string
}

// errStopped reports a run aborted by the stopAfterRoots test hook.
var errStopped = errors.New("explore: checkpointed run stopped")

// ckRoot is one fully explored subtree in the checkpoint file.
type ckRoot struct {
	Complete   int            `json:"complete"`
	Incomplete int            `json:"incomplete"`
	Outcomes   map[string]int `json:"outcomes,omitempty"`
	Violations int            `json:"violations"`
	Reps       [][]Choice     `json:"reps,omitempty"`
	Capped     bool           `json:"capped,omitempty"`
	// Err is kept for decoding files from before the supervisor;
	// failed roots are no longer persisted (so a resume retries them)
	// and Err'd records from old files are simply not credited.
	Err string `json:"err,omitempty"`
}

// ckFile is the checkpoint file layout.
type ckFile struct {
	// Key fingerprints the exploration (options + frontier prefixes):
	// a checkpoint is only resumable into the identical exploration.
	Key uint64 `json:"key"`
	// Frontier and Opts split Key's two ingredients so resume can tell
	// "different exploration" (ignore, start fresh) from "same
	// exploration under different engine options" (refuse loudly: the
	// caller almost certainly forgot a -symmetry/-sleepsets/-objfaults
	// flag, and silently restarting would explore under the wrong
	// reduction). Zero/empty in files from before this split — those
	// degrade to the old ignore-with-warning behavior.
	Frontier uint64            `json:"frontier,omitempty"`
	Opts     string            `json:"opts,omitempty"`
	Done     map[string]ckRoot `json:"done"`
}

// RunCheckpointed is Run with periodic progress persistence. It
// explores the frontier roots on Options.Workers workers under the
// supervisor (retry with backoff, stall watchdog, chaos when
// configured), records each fully explored root, saves every
// Checkpoint.Every completions, and — with Checkpoint.Resume — skips
// roots recorded by a previous (interrupted) invocation with the same
// builder and options. The final census is bit-identical to Run's in
// every count; like parallel censuses, only the ≤5 recorded
// representatives may differ, and MaxRuns is enforced per subtree
// rather than globally.
//
// Cancellation through Options.Context is root-granular: in-flight
// roots are discarded, completed ones are flushed to the checkpoint,
// and the returned census carries the completed roots' counts with
// Cancelled set — resuming later completes to the identical census.
// Roots that exhaust the supervisor's attempt budget are reported in
// FailedRoots and deliberately NOT persisted, so a resume retries them.
//
// If the tree cannot be frontier-split under MaxRuns, it falls back to
// a plain Run with no checkpointing (stats zero).
func RunCheckpointed(b Builder, opts Options, check func(*sim.Result) error, ck Checkpoint) (*Census, CheckpointStats, error) {
	opts = opts.withDefaults()
	if opts.Prune {
		// Resolve symmetry up front so the Canonicalizer is built and
		// audited once and rides through Options into every root engine.
		// A refusal also lands here (Symmetry flips off), making the
		// checkpoint key fold the EFFECTIVE reducer set deterministically.
		opts = resolveSymmetry(b, opts)
	}
	var stats CheckpointStats
	workers := opts.workerCount()
	items, ok := frontier(b, opts, workers)
	if !ok {
		return Run(b, opts, check), stats, nil
	}
	key := checkpointKey(opts, items)
	optsFP := optionsFingerprint(opts)
	frontierFP := frontierFingerprint(items)
	done := make(map[int]ckRoot)
	resolved := make([]bool, len(items))
	for _, it := range items {
		if it.prefix != nil {
			stats.TotalRoots++
		}
	}
	if ck.Resume {
		f, warn := loadCheckpointTolerant(ck.Path)
		switch {
		case f == nil:
			stats.Warning = warn
		case f.Key != key:
			// Same exploration tree but different engine options is a
			// hard error: the caller believes they are resuming the run
			// that wrote the checkpoint, and silently starting fresh
			// would explore under the wrong reduction/budget settings.
			// (Files from before the Frontier/Opts split carry neither
			// field and keep the old ignore-with-warning behavior.)
			if f.Frontier == frontierFP && f.Opts != "" && f.Opts != optsFP {
				return nil, stats, fmt.Errorf(
					"explore: checkpoint %s records the same exploration under different engine options (checkpoint %q, this run %q); refusing to resume — rerun with the original options or delete the checkpoint",
					ck.Path, f.Opts, optsFP)
			}
			stats.Warning = "checkpoint ignored: key mismatch (different builder or options); starting fresh"
		default:
			for k, v := range f.Done {
				if i, err := strconv.Atoi(k); err == nil && i >= 0 && i < len(items) &&
					items[i].prefix != nil && v.Err == "" {
					done[i] = v
					resolved[i] = true
				}
			}
			stats.ResumedRoots = len(done)
		}
	}
	every := ck.Every
	if every <= 0 {
		every = 8
	}

	var table *pruneTable
	if opts.Prune {
		table = newPruneTable(opts.PruneTableEntries)
	}

	ctx := opts.ctx()
	// stopCtx lets the stopAfterRoots test hook cancel the pool through
	// the same path a real kill or deadline takes.
	stopCtx, stopCancel := context.WithCancel(ctx)
	defer stopCancel()
	cfg := opts.supervise()
	wb := cfg.wrapChaos(b)

	var (
		saveMu    sync.Mutex
		unsaved   int
		newlyDone int
		hookStop  bool
	)
	save := func() error { // callers hold saveMu
		f := ckFile{Key: key, Frontier: frontierFP, Opts: optsFP, Done: make(map[string]ckRoot, len(done))}
		for i, r := range done {
			f.Done[strconv.Itoa(i)] = r
		}
		if err := saveCheckpoint(ck.Path, &f); err != nil {
			return err
		}
		stats.Saves++
		unsaved = 0
		return nil
	}
	onResolve := func(i int, r ckRoot) {
		saveMu.Lock()
		done[i] = r
		newlyDone++
		unsaved++
		if unsaved >= every {
			save() // best-effort mid-run; the final save reports errors
		}
		stop := ck.stopAfterRoots > 0 && newlyDone >= ck.stopAfterRoots && !hookStop
		if stop {
			hookStop = true
		}
		saveMu.Unlock()
		if stop {
			stopCancel()
		}
	}
	task := func(tctx context.Context, i int, beat func()) (ckRoot, bool) {
		return exploreRoot(tctx, wb, opts, check, table, items[i].prefix, beat)
	}
	_, _, failedMap, cancelled := superviseRoots(stopCtx, items, workers, cfg, resolved, task, onResolve)
	stats.Retries = int(cfg.stats.Retries.Load())
	stats.Requeues = int(cfg.stats.Requeues.Load())

	saveMu.Lock()
	err := save()
	saveMu.Unlock()
	if err != nil {
		return nil, stats, fmt.Errorf("explore: checkpoint save: %w", err)
	}
	if hookStop {
		return nil, stats, errStopped
	}

	// Deterministic merge in DFS root order, exactly like pruneCensus.
	// Under cancellation this still runs: completed roots' counts are
	// real, missing ones mark the census non-exhaustive.
	total := newSummary()
	exhaustive := !cancelled
	var failures []RootFailure
	for i, it := range items {
		if it.prefix == nil {
			total.addTerminal(*it.leaf, check)
			continue
		}
		if f, lost := failedMap[i]; lost {
			failures = append(failures, f)
			exhaustive = false
			continue
		}
		r, explored := done[i]
		if !explored {
			exhaustive = false // cancelled before this root was explored
			continue
		}
		total.merge(r.toSummary(b, opts))
		if r.Capped {
			exhaustive = false
		}
	}
	c := censusFrom(total, exhaustive)
	c.FailedRoots = failures
	c.Errors = failureStrings(failures)
	c.Cancelled = cancelled
	if table != nil {
		c.Prune = table.statsSnapshot()
		opts.markReducers(c.Prune)
	}
	return c, stats, nil
}

// exploreRoot fully explores one subtree. Panics propagate: the
// supervisor recovers them and owns the retry policy. A true second
// return value means the context was cancelled mid-root and the partial
// record must be discarded.
func exploreRoot(ctx context.Context, b Builder, opts Options, check func(*sim.Result) error, table *pruneTable, prefix []Choice, beat func()) (ckRoot, bool) {
	en := &engine{b: b, opts: opts, acc: newSummary(), check: check, table: table, root: prefix, ctx: ctx, onStep: beat}
	en.run()
	if en.cancelled {
		return ckRoot{}, true
	}
	out := ckRoot{
		Complete:   en.acc.complete,
		Incomplete: en.acc.incomplete,
		Outcomes:   en.acc.outcomes,
		Violations: en.acc.violations,
		Capped:     en.capped,
	}
	for _, rep := range en.acc.reps {
		out.Reps = append(out.Reps, rep.Schedule)
	}
	return out, false
}

// toSummary rebuilds a summary from its persisted form, replaying the
// recorded representative schedules to recover their Results.
func (r ckRoot) toSummary(b Builder, opts Options) *summary {
	s := &summary{
		complete:   r.Complete,
		incomplete: r.Incomplete,
		outcomes:   make(map[string]int, len(r.Outcomes)),
		violations: r.Violations,
	}
	for k, v := range r.Outcomes {
		s.outcomes[k] = v
	}
	for _, sched := range r.Reps {
		res, _ := replayPrefix(b, opts, sched)
		s.reps = append(s.reps, Outcome{Schedule: sched, Result: res})
	}
	return s
}

// optionsFingerprint renders the option fields that shape the census —
// budgets and reducers — as a short stable string. It is stored
// verbatim in the checkpoint file so an options mismatch can be
// reported in the error, not just detected.
func optionsFingerprint(opts Options) string {
	return fmt.Sprintf("d%d c%d f%d m%v r%d s%d y%t z%t",
		opts.MaxDepth, opts.MaxCrashes, opts.ObjectFaults, opts.FaultModes,
		opts.MaxRuns, opts.MaxStepsPerProc, opts.Symmetry, opts.SleepSets)
}

// foldString continues an FNV-1a fold over s.
func foldString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// frontierFingerprint hashes every frontier prefix. Builders are
// functions and cannot be hashed directly; the frontier, being the
// builder's observable branching structure down to the split, stands
// in for it.
func frontierFingerprint(items []frontierItem) uint64 {
	h := uint64(fnvOffset)
	for _, it := range items {
		if it.prefix != nil {
			h = foldString(h, "|"+FormatSchedule(it.prefix))
		} else {
			h = foldString(h, "|leaf:"+FormatSchedule(it.leaf.Schedule))
		}
	}
	return h
}

// checkpointKey fingerprints the exploration: the option fields that
// shape the tree plus every frontier prefix. The fold order (options
// string, then prefixes) is preserved from earlier releases so their
// checkpoints still resume.
func checkpointKey(opts Options, items []frontierItem) uint64 {
	h := foldString(uint64(fnvOffset), optionsFingerprint(opts))
	for _, it := range items {
		if it.prefix != nil {
			h = foldString(h, "|"+FormatSchedule(it.prefix))
		} else {
			h = foldString(h, "|leaf:"+FormatSchedule(it.leaf.Schedule))
		}
	}
	return h
}

// FNV-1a constants (local copy; sim keeps its own unexported ones).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func loadCheckpoint(path string) (*ckFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f ckFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	return &f, nil
}

// loadCheckpointTolerant loads a checkpoint for resume. A missing file
// is a normal fresh start (nil, no warning); an unreadable or corrupt
// (e.g. truncated) file is tolerated — the run starts fresh and the
// warning says why, instead of failing a resumable run.
func loadCheckpointTolerant(path string) (*ckFile, string) {
	f, err := loadCheckpoint(path)
	switch {
	case err == nil:
		return f, ""
	case os.IsNotExist(err):
		return nil, ""
	default:
		return nil, fmt.Sprintf("checkpoint ignored (unreadable or corrupt: %v); starting fresh", err)
	}
}

// saveCheckpoint writes the file durably: the temp file is fsynced
// before the atomic rename and the parent directory after it, so a
// machine crash cannot surface an empty or stale file under the final
// name despite the rename's atomicity. The directory sync is
// best-effort — not every filesystem supports it.
func saveCheckpoint(path string, f *ckFile) error {
	data, err := json.Marshal(f)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := tf.Write(data); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	return nil
}
