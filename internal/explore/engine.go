package explore

import (
	"context"
	"fmt"

	"repro/internal/sim"
)

// This file is the path-based exploration engine that replaced the
// per-node replay walker (kept as VisitReplay for cross-checking and
// the DESIGN.md §5.2 ablation). The old walker rebuilt and re-ran the
// system once per tree NODE, costing O(depth) simulated steps each; the
// path engine rebuilds once per TERMINAL run: a probe replays the
// current path and then keeps descending — always taking the first
// ready process, recording a frame per new decision point — until the
// run completes, the depth bound strikes, or (in pruned census mode) a
// transposition-table hit summarizes the rest. Backtracking rewrites
// the deepest unexhausted frame's edge and probes again. Visit order,
// run counts and Results are bit-identical to the replay walker's.
type engine struct {
	b    Builder
	opts Options

	// Exactly one of visit/acc is set. visit streams terminal runs in
	// DFS order (Visit mode); acc accumulates a census summary (Run
	// mode), classifying complete runs with check.
	visit func(Outcome) bool
	acc   *summary
	check func(*sim.Result) error
	// table enables transposition pruning (census mode only).
	table *pruneTable

	// root is a fixed schedule prefix under which the walk happens
	// (empty for a whole-tree walk); path holds the edges taken below
	// it, path[i] being the edge out of frames[i].
	root   []Choice
	path   []Choice
	frames []frame
	plan   []Choice // scratch buffer: root + path

	// ctx, when non-nil, is checked once per terminal probe: a cancelled
	// context stops the walk at the next run boundary (cancelled is set),
	// so abandonment cost is bounded by one probe, never one subtree.
	ctx context.Context
	// onStep, when non-nil, is forwarded to sim.Config.OnStep as the
	// supervisor's progress heartbeat.
	onStep func()

	// runs counts delivered terminal runs (visit mode) or credited runs
	// including memoized subtrees (census mode).
	runs      int
	capped    bool
	stopped   bool
	cancelled bool
}

// frame is one internal node (decision point) on the current DFS path.
type frame struct {
	ready   []sim.ProcID // ready set here (owned copy)
	next    int          // next child index: picks, then crashes, then faults
	crashes int          // crash choices consumed on the path to here
	faults  int          // object-fault choices consumed on the path to here
	acc     *summary     // census mode: subtree accumulator
	key     tableKey     // pruning: this node's table key
	hasKey  bool
}

func (en *engine) run() {
	for {
		if en.runs >= en.opts.MaxRuns {
			en.capped = true
			break
		}
		if en.ctx != nil && en.ctx.Err() != nil {
			en.cancelled = true
			break
		}
		res, pruned := en.probe()
		if pruned != nil {
			en.parentAcc().merge(pruned)
			en.runs += pruned.complete + pruned.incomplete
		} else {
			en.terminal(res)
		}
		if en.capped || en.stopped {
			break
		}
		if !en.backtrack() {
			return // tree exhausted; backtrack flushed every frame
		}
	}
	// Early exit (cap or stopped visit): merge the still-open frames'
	// partial summaries down into the root accumulator so a truncated
	// census still counts every credited run, but never publish them —
	// the table must hold only complete subtrees.
	for len(en.frames) > 0 {
		en.popFrame(false)
	}
}

// probe rebuilds the system, replays root+path, and descends first-child
// until a terminal run or a table hit. New decision points push frames
// and extend path.
func (en *engine) probe() (*sim.Result, *summary) {
	en.plan = append(en.plan[:0], en.root...)
	en.plan = append(en.plan, en.path...)
	sys := en.b()
	p := &prober{en: en, sys: sys, plan: en.plan}
	cfg := sim.Config{
		Scheduler:       p,
		Faults:          p,
		MaxStepsPerProc: en.opts.MaxStepsPerProc,
		MaxTotalSteps:   en.opts.MaxDepth + 1,
		DisableTrace:    true,
		Fingerprint:     en.table != nil,
	}
	if en.opts.ObjectFaults > 0 {
		cfg.ObjectFaults = p
	}
	if en.onStep != nil {
		beat := en.onStep
		cfg.OnStep = func(int) { beat() }
	}
	res, err := sys.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("explore: probe failed: %v", err))
	}
	if p.dead {
		panic(fmt.Sprintf("explore: builder is nondeterministic: planned pick not ready (schedule %s)",
			FormatSchedule(en.plan[:p.i])))
	}
	return res, p.pruned
}

// terminal delivers or accumulates one terminal run.
func (en *engine) terminal(res *sim.Result) {
	en.runs++
	sched := make([]Choice, len(en.root)+len(en.path))
	n := copy(sched, en.root)
	copy(sched[n:], en.path)
	o := Outcome{Schedule: sched, Result: res}
	if en.visit != nil {
		if !en.visit(o) {
			en.stopped = true
		}
		return
	}
	en.parentAcc().addTerminal(o, en.check)
}

// parentAcc is the census accumulator of the current node's parent: the
// deepest open frame, or the engine root.
func (en *engine) parentAcc() *summary {
	if n := len(en.frames); n > 0 {
		return en.frames[n-1].acc
	}
	return en.acc
}

// backtrack rewrites the deepest frame that still has an untried child
// and truncates the path there; exhausted frames are popped (publishing
// their completed subtree summaries to the table in pruned mode). It
// returns false when the whole tree below root is exhausted.
func (en *engine) backtrack() bool {
	for len(en.frames) > 0 {
		f := &en.frames[len(en.frames)-1]
		if f.next < en.childCount(f) {
			c := en.childChoice(f, f.next)
			f.next++
			en.path[len(en.frames)-1] = c
			en.path = en.path[:len(en.frames)]
			return true
		}
		en.popFrame(true)
	}
	return false
}

// popFrame removes the deepest frame, merging its summary into its
// parent's; publish additionally stores it in the transposition table
// (only legal when the subtree was fully explored).
func (en *engine) popFrame(publish bool) {
	i := len(en.frames) - 1
	f := &en.frames[i]
	if f.acc != nil {
		if publish && f.hasKey {
			en.table.put(f.key, f.acc)
		}
		if i > 0 {
			en.frames[i-1].acc.merge(f.acc)
		} else {
			en.acc.merge(f.acc)
		}
	}
	en.frames = en.frames[:i]
	en.path = en.path[:i]
}

// childCount: every ready process is a pick child; if crash budget
// remains each is also a crash child; if fault budget remains each is
// additionally a fault child per enumerated mode. Matches the replay
// walker's branch order exactly (picks, crashes, faults mode-major).
func (en *engine) childCount(f *frame) int {
	n := len(f.ready)
	total := n
	if f.crashes < en.opts.MaxCrashes {
		total += n
	}
	if f.faults < en.opts.ObjectFaults {
		total += n * len(en.opts.FaultModes)
	}
	return total
}

func (en *engine) childChoice(f *frame, idx int) Choice {
	n := len(f.ready)
	if idx < n {
		return Choice{Pick: f.ready[idx]}
	}
	idx -= n
	if f.crashes < en.opts.MaxCrashes {
		if idx < n {
			return Choice{Pick: f.ready[idx], Crash: true}
		}
		idx -= n
	}
	return Choice{Pick: f.ready[idx%n], Fault: en.opts.FaultModes[idx/n]}
}

// prober drives one probe as both Scheduler and FaultPlan: it first
// consumes the planned choices, then auto-descends first-ready,
// registering each new decision point as a frame on the engine. All
// engine mutation happens from inside Scheduler callbacks, where the
// runner has every live process parked — the cheap frontier hook that
// makes one system execution serve a whole root-to-terminal path.
type prober struct {
	en      *engine
	sys     *sim.System
	plan    []Choice
	i       int      // next plan index
	pos     int      // choices consumed so far (plan + auto)
	crashes int      // crash choices consumed so far
	faults  int      // object-fault choices consumed so far
	pruned  *summary // set when a table hit ended the probe
	dead    bool     // planned pick was not ready (builder bug)
	// pendingFault is armed by Next when the consumed plan choice
	// carries an object fault and collected by FaultOp from the granted
	// step's Env.Apply. Auto-descent never faults: fault branches exist
	// only through backtracking into planned choices.
	pendingFault sim.FaultMode
}

// FaultOp implements sim.ObjectFaultPlan.
func (p *prober) FaultOp(_ int) sim.FaultMode {
	m := p.pendingFault
	p.pendingFault = sim.FaultNone
	return m
}

// CrashNow implements sim.FaultPlan: it consumes all consecutive
// planned crash choices at the current position. Beyond the plan the
// engine branches crashes via backtracking, never here.
func (p *prober) CrashNow(_ []sim.ProcID, _ int) []sim.ProcID {
	var out []sim.ProcID
	for p.i < len(p.plan) && p.plan[p.i].Crash {
		out = append(out, p.plan[p.i].Pick)
		p.i++
		p.pos++
		p.crashes++
	}
	return out
}

// Next implements sim.Scheduler.
func (p *prober) Next(ready []sim.ProcID, _ int) sim.ProcID {
	en := p.en
	if p.i < len(p.plan) {
		c := p.plan[p.i]
		p.i++
		p.pos++
		for _, r := range ready {
			if r == c.Pick {
				p.pendingFault = c.Fault
				if c.Fault != sim.FaultNone {
					p.faults++
				}
				return c.Pick
			}
		}
		p.dead = true
		return sim.Halt
	}
	if p.pos >= en.opts.MaxDepth {
		return sim.Halt // depth bound: incomplete terminal
	}
	f := frame{crashes: p.crashes, faults: p.faults}
	if en.table != nil {
		if fp, ok := p.sys.StateHash(); ok {
			key := tableKey{
				fp:       fp,
				depthRem: en.opts.MaxDepth - p.pos,
				crashRem: en.opts.MaxCrashes - p.crashes,
				faultRem: en.opts.ObjectFaults - p.faults,
			}
			if s, hit := en.table.get(key); hit {
				p.pruned = s
				return sim.Halt
			}
			f.key, f.hasKey = key, true
		}
	}
	f.ready = append([]sim.ProcID(nil), ready...)
	f.next = 1 // child 0 is the descent we take right now
	if en.acc != nil {
		f.acc = newSummary()
	}
	en.frames = append(en.frames, f)
	en.path = append(en.path, Choice{Pick: ready[0]})
	p.pos++
	return ready[0]
}
