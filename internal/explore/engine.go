package explore

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/sim"
)

// This file is the path-based exploration engine that replaced the
// per-node replay walker (kept as VisitReplay for cross-checking and
// the DESIGN.md §5.2 ablation). The old walker rebuilt and re-ran the
// system once per tree NODE, costing O(depth) simulated steps each; the
// path engine rebuilds once per TERMINAL run: a probe replays the
// current path and then keeps descending — always taking the first
// ready process, recording a frame per new decision point — until the
// run completes, the depth bound strikes, or (in pruned census mode) a
// transposition-table hit summarizes the rest. Backtracking rewrites
// the deepest unexhausted frame's edge and probes again. Visit order,
// run counts and Results are bit-identical to the replay walker's.
//
// The census hot path is engineered to allocate nothing per run after
// warm-up: frames store their ready sets as offsets into an
// engine-owned arena, subtree summaries cycle through a freelist, the
// prober is embedded and reset in place, and sim Results land in a
// pooled sim.Scratch that is only abandoned (to a fresh one) when a
// violation representative retains it.
type engine struct {
	b    Builder
	opts Options

	// Exactly one of visit/acc is set. visit streams terminal runs in
	// DFS order (Visit mode); acc accumulates a census summary (Run
	// mode), classifying complete runs with check.
	visit func(Outcome) bool
	acc   *summary
	check func(*sim.Result) error
	// table enables transposition pruning (census mode only).
	table *pruneTable
	// canon, when non-nil (and table is set), switches the table keys to
	// symmetry-canonical fingerprints: frames remember their canonical
	// orientation (frame.permIdx) so publishes rename outcome keys INTO
	// canonical coordinates and hits rename them back OUT. Resolved once
	// per census by resolveSymmetry, shared read-only by all workers.
	canon *sim.Canonicalizer
	// sleep enables independence (sleep-set) pruning: when the last two
	// edges of a probe are plain picks of different processes pending on
	// different objects, the node's freshly computed table key is
	// memoized on the grandparent frame (recordPair); backtracking into
	// the swapped sibling order then credits the subtree straight from
	// the table without replaying a probe (creditChild). Sound because
	// steps on distinct objects commute EXACTLY: the swapped orders
	// reach identical states, hence identical keys.
	sleep bool

	// root is a fixed schedule prefix under which the walk happens
	// (empty for a whole-tree walk); path holds the edges taken below
	// it, path[i] being the edge out of frames[i].
	root   []Choice
	path   []Choice
	frames []frame
	plan   []Choice // scratch buffer: root + path

	// readyArena backs the frames' ready sets: frame i's set is
	// readyArena[f.readyOff : f.readyOff+f.readyN]. Pushing a frame
	// appends, popping truncates — LIFO like the frames themselves — so
	// the per-decision-point copy costs no allocation after warm-up.
	readyArena []sim.ProcID
	// pendingArena parallels readyArena when sleep is on: entry
	// f.readyOff+i is the interned pending-object ID of ready process
	// readyArena[f.readyOff+i] at that decision point — the static
	// footprint the independence test compares.
	pendingArena []int32
	// objIDs interns object names to small ints for pendingArena.
	objIDs map[string]int32

	// freeSums recycles frame summaries that were merged into their
	// parent but not published (the table owns published ones).
	freeSums []*summary
	// freePairs recycles the frames' pair-memo slices. Pair slices have
	// non-nested lifetimes relative to the arena (a frame may accumulate
	// pairs long after deeper frames pushed), so they recycle through a
	// freelist instead of arena truncation.
	freePairs [][]pairRec

	// scratch, in census mode, receives each probe's Result; see
	// sim.Scratch for the aliasing contract. nil in visit modes, whose
	// Outcomes escape to callers.
	scratch *sim.Scratch

	// pr is the embedded prober, reset per probe instead of allocated.
	pr prober

	// me, when non-nil, is the in-place backtracking fast path: the
	// builder's system is machine-backed and snapshotable, so it is
	// built ONCE and every probe resumes from the deepest frame's
	// snapshot instead of replaying root+path on a fresh system. Each
	// tree edge then executes exactly once — O(edges) simulated steps
	// for the whole walk instead of O(runs×depth) — with identical
	// visit order, counts and fingerprints (the prober logic is shared
	// verbatim). meTried latches the one-time probe of the builder;
	// snaps is the LIFO snapshot arena, frames holding their offsets.
	me      *sim.MachineExec
	meTried bool
	snaps   sim.Snap

	// pool/item/attempt/workerID tie a work-stealing census engine to
	// the steal pool (steal.go): hungry() polls are answered by donating
	// untried sibling subtrees from the shallowest open frame, and
	// skipcheck marks that this walk must honor the item's donation log
	// (children excised by earlier attempts of the same item).
	pool      *stealPool
	item      *stealItem
	attempt   int
	workerID  int
	skipcheck bool

	// ctx, when non-nil, is checked once per terminal probe: a cancelled
	// context stops the walk at the next run boundary (cancelled is set),
	// so abandonment cost is bounded by one probe, never one subtree.
	ctx context.Context
	// onStep, when non-nil, is forwarded to sim.Config.OnStep as the
	// supervisor's progress heartbeat.
	onStep func()

	// runs counts delivered terminal runs (visit mode) or credited runs
	// including memoized subtrees (census mode).
	runs      int
	capped    bool
	stopped   bool
	cancelled bool
}

// frame is one internal node (decision point) on the current DFS path.
type frame struct {
	readyOff int // ready set: offset into the engine's readyArena
	readyN   int
	next     int      // next child index: picks, then crashes, then faults
	crashes  int      // crash choices consumed on the path to here
	faults   int      // object-fault choices consumed on the path to here
	acc      *summary // census mode: subtree accumulator
	key      tableKey // pruning: this node's table key
	hasKey   bool
	// permIdx is the canonical orientation of this node's key (index
	// into the canonicalizer's permutation group; 0 = identity/plain).
	permIdx int32
	// pairs are the sleep-set memos recorded AT this frame: child
	// sequences u·a·b whose reorder u·b·a is known to reach the node
	// with the stored table key. Recycled via the engine's freePairs.
	pairs []pairRec
	// donated marks a frame whose subtree lost children to a donation
	// (or an ancestor of one): its accumulator no longer covers the
	// whole subtree under its key and must never be published.
	donated bool
	// snapW/snapV locate this decision point's snapshot in the engine's
	// snaps arena (machine mode only): restoring it puts the system back
	// at this frame, ready to take a different edge.
	snapW, snapV int
}

// scratchPool recycles sim.Scratch buffers across census engines.
var scratchPool = sync.Pool{New: func() any { return sim.NewScratch() }}

// pairRec is one sleep-set memo: from the frame holding it, taking
// plain picks first·second reaches a node whose table key is key at
// canonical orientation permIdx. Recorded when first and second were
// pending on distinct objects (so second·first commutes to the same
// node), consumed by creditChild when backtracking into second·….
type pairRec struct {
	first, second sim.ProcID
	key           tableKey
	permIdx       int32
}

func (en *engine) run() {
	if en.acc != nil && en.scratch == nil {
		en.scratch = scratchPool.Get().(*sim.Scratch)
	}
	if en.table != nil {
		en.canon = en.opts.canon
		en.sleep = en.opts.SleepSets
	}
	for {
		if en.runs >= en.opts.MaxRuns {
			en.capped = true
			break
		}
		if en.ctx != nil && en.ctx.Err() != nil {
			en.cancelled = true
			break
		}
		res, pruned := en.probe()
		if pruned != nil {
			// A hit found under canonical keys may match at a different
			// orientation than the stored subtree was published in; the
			// stored outcome keys are in canonical coordinates, so merge
			// them back through the INVERSE of this node's orientation.
			if en.canon != nil && en.pr.prunedPerm != 0 {
				en.parentAcc().mergeRenamed(pruned, en.canon.OutcomeRenamerInv(en.pr.prunedPerm))
				en.table.symHits.Add(1)
			} else {
				en.parentAcc().merge(pruned)
			}
			en.runs += pruned.complete + pruned.incomplete
		} else {
			en.terminal(res)
		}
		if en.capped || en.stopped {
			break
		}
		if !en.backtrack() {
			en.release()
			return // tree exhausted; backtrack flushed every frame
		}
	}
	// Early exit (cap or stopped visit): merge the still-open frames'
	// partial summaries down into the root accumulator so a truncated
	// census still counts every credited run, but never publish them —
	// the table must hold only complete subtrees.
	for len(en.frames) > 0 {
		en.popFrame(false)
	}
	en.release()
}

// release returns the engine's scratch to the pool. Any Result
// retained as a violation representative already triggered a scratch
// swap in terminal(), so the buffer returned here is never aliased.
func (en *engine) release() {
	if en.scratch != nil {
		scratchPool.Put(en.scratch)
		en.scratch = nil
	}
}

// probe executes one root-to-terminal descent: replay the committed
// choices, then keep taking the first ready process — pushing a frame
// per new decision point — until a terminal run or a table hit. In
// machine mode the replay is a snapshot restore; otherwise the system
// is rebuilt and the prefix re-run.
func (en *engine) probe() (*sim.Result, *summary) {
	if !en.meTried {
		en.meTried = true
		if !en.opts.ForceGoroutines {
			en.initMachine()
		}
	}
	if en.table != nil {
		en.table.probes.Add(1)
	}
	if en.me != nil {
		return en.probeMachine()
	}
	en.plan = append(en.plan[:0], en.root...)
	en.plan = append(en.plan, en.path...)
	sys := en.b()
	en.pr = prober{en: en, sys: sys, plan: en.plan, crashBuf: en.pr.crashBuf}
	p := &en.pr
	cfg := en.simConfig()
	res, err := sys.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("explore: probe failed: %v", err))
	}
	if p.dead {
		panic(fmt.Sprintf("explore: builder is nondeterministic: planned pick not ready (schedule %s)",
			FormatSchedule(en.plan[:p.i])))
	}
	return res, p.pruned
}

// simConfig is the per-probe sim configuration; the prober (a stable
// pointer into the engine) serves as scheduler and fault plans.
func (en *engine) simConfig() sim.Config {
	p := &en.pr
	cfg := sim.Config{
		Scheduler:          p,
		Faults:             p,
		MaxStepsPerProc:    en.opts.MaxStepsPerProc,
		MaxTotalSteps:      en.opts.MaxDepth + 1,
		DisableTrace:       true,
		Fingerprint:        en.table != nil,
		Canon:              en.canon,
		Scratch:            en.scratch,
		ForceGoroutines:    en.opts.ForceGoroutines,
		VerifyFingerprints: en.opts.VerifyFingerprints,
	}
	if en.opts.ObjectFaults > 0 {
		cfg.ObjectFaults = p
	}
	if en.onStep != nil {
		beat := en.onStep
		cfg.OnStep = func(int) { beat() }
	}
	return cfg
}

// initMachine engages the in-place backtracking fast path when the
// builder produces a snapshotable machine-backed system: the system is
// built once, started under the engine's prober, and its initial state
// snapshotted at arena offset (0,0). Any failure leaves en.me nil and
// the engine on the rebuild-per-probe path.
func (en *engine) initMachine() {
	sys := en.b()
	if !sys.Snapshotable() {
		return
	}
	me, err := sys.StartMachines(en.simConfig())
	if err != nil {
		return
	}
	en.me = me
	en.me.Snapshot(&en.snaps)
}

// probeMachine is probe on the fast path: restore the deepest frame's
// snapshot (the decision point the new edge leaves from), hand the
// prober just that edge as its plan, and resume execution in place.
// Only the probe's NEW steps are simulated — each tree edge runs once.
func (en *engine) probeMachine() (*sim.Result, *summary) {
	if d := len(en.frames) - 1; d >= 0 {
		f := &en.frames[d]
		en.me.Restore(en.snaps.ReaderAt(f.snapW, f.snapV))
		en.plan = append(en.plan[:0], en.path[d:]...)
		en.pr = prober{
			en: en, sys: en.me.System(), plan: en.plan,
			pos: len(en.root) + d, crashes: f.crashes, faults: f.faults,
			crashBuf: en.pr.crashBuf,
		}
	} else {
		// First probe (or a walk whose every frame was popped): replay
		// the fixed root prefix from the initial snapshot.
		en.me.Restore(en.snaps.ReaderAt(0, 0))
		en.plan = append(en.plan[:0], en.root...)
		en.pr = prober{en: en, sys: en.me.System(), plan: en.plan, crashBuf: en.pr.crashBuf}
	}
	res, err := en.me.Run()
	if err != nil {
		panic(fmt.Sprintf("explore: probe failed: %v", err))
	}
	if en.pr.dead {
		panic(fmt.Sprintf("explore: builder is nondeterministic: planned pick not ready (schedule %s)",
			FormatSchedule(en.plan[:en.pr.i])))
	}
	return res, en.pr.pruned
}

// terminal delivers or accumulates one terminal run.
func (en *engine) terminal(res *sim.Result) {
	en.runs++
	sched := make([]Choice, len(en.root)+len(en.path))
	n := copy(sched, en.root)
	copy(sched[n:], en.path)
	o := Outcome{Schedule: sched, Result: res}
	if en.visit != nil {
		if !en.visit(o) {
			en.stopped = true
		}
		return
	}
	if en.parentAcc().addTerminal(o, en.check) && en.scratch != nil {
		// The Outcome was kept as a violation representative and its
		// Result aliases the scratch: abandon the scratch to it and
		// continue on a fresh one.
		en.scratch = scratchPool.Get().(*sim.Scratch)
		if en.me != nil {
			en.me.SetScratch(en.scratch)
		}
	}
}

// parentAcc is the census accumulator of the current node's parent: the
// deepest open frame, or the engine root.
func (en *engine) parentAcc() *summary {
	if n := len(en.frames); n > 0 {
		return en.frames[n-1].acc
	}
	return en.acc
}

// getSummary draws a cleared summary from the freelist.
func (en *engine) getSummary() *summary {
	if n := len(en.freeSums); n > 0 {
		s := en.freeSums[n-1]
		en.freeSums = en.freeSums[:n-1]
		return s
	}
	return &summary{}
}

// putSummary recycles a summary that is no longer referenced (merged
// into its parent, not published to the table).
func (en *engine) putSummary(s *summary) {
	s.reset()
	en.freeSums = append(en.freeSums, s)
}

// backtrack rewrites the deepest frame that still has an untried child
// and truncates the path there; exhausted frames are popped (publishing
// their completed subtree summaries to the table in pruned mode). It
// returns false when the whole tree below root is exhausted. Under a
// steal pool, a hungry pool is fed first: the shallowest frame with
// untried children donates them as queue items before this walk
// descends into its own next child.
func (en *engine) backtrack() bool {
	if en.pool != nil && en.pool.hungry() {
		en.donate()
	}
	for len(en.frames) > 0 {
		f := &en.frames[len(en.frames)-1]
		for f.next < en.childCount(f) {
			c := en.childChoice(f, f.next)
			f.next++
			if en.skipcheck && en.item.skips(en.prefixKey(len(en.frames)-1, c)) {
				// Excised by a donation in an earlier attempt: the child
				// is counted by its own queue item, so this frame's
				// accumulator — and every ancestor's — no longer covers
				// its whole subtree. Poison them against table
				// publication, exactly as donate() does at donation time.
				for j := range en.frames {
					en.frames[j].donated = true
				}
				continue
			}
			if en.sleep && en.creditChild(f, c) {
				continue
			}
			en.path[len(en.frames)-1] = c
			en.path = en.path[:len(en.frames)]
			return true
		}
		en.popFrame(true)
	}
	return false
}

// creditChild consumes a sleep-set memo: child c of the deepest frame
// is reached by swapping the frame's incoming edge with c, and if that
// exact swap was memoized on the grandparent (recordPair) the reordered
// node's summary is credited straight from the table — the subtree is
// counted without replaying a single probe. A miss (the entry was
// evicted, or the subtree is not fully published yet) falls through to
// a normal descent, so eviction degrades the savings, never the counts.
func (en *engine) creditChild(f *frame, c Choice) bool {
	d := len(en.frames) - 1
	if d < 1 || c.Crash || c.Fault != sim.FaultNone {
		return false
	}
	in := en.path[d-1] // the frame's incoming edge
	if in.Crash || in.Fault != sim.FaultNone || in.Pick == c.Pick {
		return false
	}
	g := &en.frames[d-1]
	for i := range g.pairs {
		pr := &g.pairs[i]
		if pr.first != c.Pick || pr.second != in.Pick {
			continue
		}
		// Under a donation log, the reordered node's subtree may contain
		// children excised to other queue items; crediting the full
		// stored summary would double-count them. The exact-match case
		// was excluded by the skips() check above; proper ancestors are
		// excluded here.
		if en.skipcheck && en.item.shadowsChild(en.root, en.path[:d], c) {
			return false
		}
		s, hit := en.table.get(pr.key)
		if !hit {
			return false
		}
		if en.canon != nil && pr.permIdx != 0 {
			f.acc.mergeRenamed(s, en.canon.OutcomeRenamerInv(int(pr.permIdx)))
		} else {
			f.acc.merge(s)
		}
		en.runs += s.complete + s.incomplete
		en.table.sleepSkips.Add(1)
		return true
	}
	return false
}

// recordPair memoizes the just-computed key of the current probe node
// when its last two edges are independent: plain picks of distinct
// processes that were pending on distinct objects. The memo lands on
// the frame those two edges left (the reordered node's grandparent),
// which is exactly where creditChild will backtrack through. Frame
// identity makes the independence test stable: the memo is only ever
// consulted on the very frame instance it was recorded on.
func (en *engine) recordPair(key tableKey, permIdx int) {
	L := len(en.path)
	if L < 2 {
		return
	}
	a, b := en.path[L-2], en.path[L-1]
	if a.Crash || b.Crash || a.Fault != sim.FaultNone || b.Fault != sim.FaultNone || a.Pick == b.Pick {
		return
	}
	g := &en.frames[L-2]
	pa := en.pendingAt(g, a.Pick)
	pb := en.pendingAt(&en.frames[L-1], b.Pick)
	if pa < 0 || pb < 0 || pa == pb {
		return
	}
	if g.pairs == nil {
		g.pairs = en.getPairs()
	}
	g.pairs = append(g.pairs, pairRec{first: a.Pick, second: b.Pick, key: key, permIdx: int32(permIdx)})
}

// pendingAt is the interned pending-object ID process id had at frame
// f's decision point (-1 if id was not in f's ready set).
func (en *engine) pendingAt(f *frame, id sim.ProcID) int32 {
	r := en.ready(f)
	for i, q := range r {
		if q == id {
			return en.pendingArena[f.readyOff+i]
		}
	}
	return -1
}

// objID interns an object name for pendingArena comparisons.
func (en *engine) objID(name string) int32 {
	if id, ok := en.objIDs[name]; ok {
		return id
	}
	if en.objIDs == nil {
		en.objIDs = make(map[string]int32)
	}
	id := int32(len(en.objIDs))
	en.objIDs[name] = id
	return id
}

// getPairs draws a cleared pair-memo slice from the freelist.
func (en *engine) getPairs() []pairRec {
	if n := len(en.freePairs); n > 0 {
		ps := en.freePairs[n-1]
		en.freePairs = en.freePairs[:n-1]
		return ps[:0]
	}
	return make([]pairRec, 0, 4)
}

// donate hands the pool every untried child of the shallowest open
// frame that still has any — the largest subtrees this walk has not
// committed to. The frame and all its ancestors are poisoned against
// table publication (their accumulators no longer cover their keys);
// deeper frames are untouched and still publish normally.
func (en *engine) donate() {
	for i := range en.frames {
		f := &en.frames[i]
		if f.next >= en.childCount(f) {
			continue
		}
		if en.pool.donateFrom(en, i, f) {
			f.next = en.childCount(f)
			for j := 0; j <= i; j++ {
				en.frames[j].donated = true
			}
		}
		return
	}
}

// prefixKey renders root+path[:depth]+c — the schedule prefix of child
// c at the given frame depth — into the engine's plan scratch and
// formats it as the donation-log key.
func (en *engine) prefixKey(depth int, c Choice) string {
	en.plan = append(en.plan[:0], en.root...)
	en.plan = append(en.plan, en.path[:depth]...)
	en.plan = append(en.plan, c)
	return FormatSchedule(en.plan)
}

// popFrame removes the deepest frame, merging its summary into its
// parent's; publish additionally stores it in the transposition table
// (only legal when the subtree was fully explored and no children were
// donated away).
func (en *engine) popFrame(publish bool) {
	i := len(en.frames) - 1
	f := &en.frames[i]
	if f.acc != nil {
		stored := false
		if publish && f.hasKey && !f.donated {
			if en.canon != nil && f.permIdx != 0 {
				// The key is canonical but this walk accumulated outcome
				// keys in its own (non-canonical) orientation: publish a
				// COPY renamed into canonical coordinates, and keep the
				// raw accumulator for the parent merge below.
				pub := en.getSummary()
				pub.mergeRenamed(f.acc, en.canon.OutcomeRenamer(int(f.permIdx)))
				if !en.table.put(f.key, pub) {
					en.putSummary(pub)
				}
			} else {
				stored = en.table.put(f.key, f.acc)
			}
		}
		if i > 0 {
			en.frames[i-1].acc.merge(f.acc)
		} else {
			en.acc.merge(f.acc)
		}
		if !stored {
			en.putSummary(f.acc)
		}
		f.acc = nil
	}
	if f.pairs != nil {
		en.freePairs = append(en.freePairs, f.pairs)
		f.pairs = nil
	}
	if en.sleep {
		en.pendingArena = en.pendingArena[:f.readyOff]
	}
	if en.me != nil {
		en.snaps.Truncate(f.snapW, f.snapV)
	}
	en.readyArena = en.readyArena[:f.readyOff]
	en.frames = en.frames[:i]
	en.path = en.path[:i]
}

// ready is frame f's ready set (a slice into the engine arena).
func (en *engine) ready(f *frame) []sim.ProcID {
	return en.readyArena[f.readyOff : f.readyOff+f.readyN]
}

// childCount: every ready process is a pick child; if crash budget
// remains each is also a crash child; if fault budget remains each is
// additionally a fault child per enumerated mode. Matches the replay
// walker's branch order exactly (picks, crashes, faults mode-major).
func (en *engine) childCount(f *frame) int {
	n := f.readyN
	total := n
	if f.crashes < en.opts.MaxCrashes {
		total += n
	}
	if f.faults < en.opts.ObjectFaults {
		total += n * len(en.opts.FaultModes)
	}
	return total
}

func (en *engine) childChoice(f *frame, idx int) Choice {
	ready := en.ready(f)
	n := f.readyN
	if idx < n {
		return Choice{Pick: ready[idx]}
	}
	idx -= n
	if f.crashes < en.opts.MaxCrashes {
		if idx < n {
			return Choice{Pick: ready[idx], Crash: true}
		}
		idx -= n
	}
	return Choice{Pick: ready[idx%n], Fault: en.opts.FaultModes[idx/n]}
}

// prober drives one probe as both Scheduler and FaultPlan: it first
// consumes the planned choices, then auto-descends first-ready,
// registering each new decision point as a frame on the engine. All
// engine mutation happens from inside Scheduler callbacks, where the
// runner has every live process parked — the cheap frontier hook that
// makes one system execution serve a whole root-to-terminal path.
type prober struct {
	en      *engine
	sys     *sim.System
	plan    []Choice
	i       int      // next plan index
	pos     int      // choices consumed so far (plan + auto)
	crashes int      // crash choices consumed so far
	faults  int      // object-fault choices consumed so far
	pruned  *summary // set when a table hit ended the probe
	// prunedPerm is the canonical orientation the hit node's key was
	// computed at; run() un-renames the consumed summary through it.
	prunedPerm int
	dead       bool // planned pick was not ready (builder bug)
	// pendingFault is armed by Next when the consumed plan choice
	// carries an object fault and collected by FaultOp from the granted
	// step's Env.Apply. Auto-descent never faults: fault branches exist
	// only through backtracking into planned choices.
	pendingFault sim.FaultMode
	// crashBuf backs CrashNow's return value across probes.
	crashBuf []sim.ProcID
}

// FaultOp implements sim.ObjectFaultPlan.
func (p *prober) FaultOp(_ int) sim.FaultMode {
	m := p.pendingFault
	p.pendingFault = sim.FaultNone
	return m
}

// CrashNow implements sim.FaultPlan: it consumes all consecutive
// planned crash choices at the current position. Beyond the plan the
// engine branches crashes via backtracking, never here. The returned
// slice is reused across calls; the runner consumes it immediately.
func (p *prober) CrashNow(_ []sim.ProcID, _ int) []sim.ProcID {
	if p.i >= len(p.plan) || !p.plan[p.i].Crash {
		return nil
	}
	out := p.crashBuf[:0]
	for p.i < len(p.plan) && p.plan[p.i].Crash {
		out = append(out, p.plan[p.i].Pick)
		p.i++
		p.pos++
		p.crashes++
	}
	p.crashBuf = out
	return out
}

// Next implements sim.Scheduler.
func (p *prober) Next(ready []sim.ProcID, _ int) sim.ProcID {
	en := p.en
	if p.i < len(p.plan) {
		c := p.plan[p.i]
		p.i++
		p.pos++
		for _, r := range ready {
			if r == c.Pick {
				p.pendingFault = c.Fault
				if c.Fault != sim.FaultNone {
					p.faults++
				}
				return c.Pick
			}
		}
		p.dead = true
		return sim.Halt
	}
	if p.pos >= en.opts.MaxDepth {
		return sim.Halt // depth bound: incomplete terminal
	}
	f := frame{crashes: p.crashes, faults: p.faults}
	if en.table != nil {
		if en.skipcheck && en.item.shadows(en.root, en.path) {
			// This node is a proper ancestor of a child donated away by
			// an earlier attempt of the same item, so part of its
			// subtree is owned by separately-enqueued items. A table
			// hit here would credit those donated children a second
			// time, and the frame's own accumulator will lose them to
			// skip excision below — so the retried walk must neither
			// consult nor publish the table at this node.
			f.donated = true
		} else {
			var fp uint64
			var permIdx int
			var ok bool
			if en.canon != nil {
				fp, permIdx, ok = p.sys.StateHashCanon()
			} else {
				fp, ok = p.sys.StateHash()
			}
			if ok {
				key := tableKey{
					fp:       fp,
					depthRem: en.opts.MaxDepth - p.pos,
					crashRem: en.opts.MaxCrashes - p.crashes,
					faultRem: en.opts.ObjectFaults - p.faults,
				}
				if en.sleep {
					// Memoize the key whether or not this probe continues:
					// a sibling reorder wants it either way.
					en.recordPair(key, permIdx)
				}
				if s, hit := en.table.get(key); hit {
					p.pruned = s
					p.prunedPerm = permIdx
					return sim.Halt
				}
				f.key, f.hasKey = key, true
				f.permIdx = int32(permIdx)
			}
		}
	}
	f.readyOff = len(en.readyArena)
	f.readyN = len(ready)
	en.readyArena = append(en.readyArena, ready...)
	if en.sleep {
		for _, id := range ready {
			en.pendingArena = append(en.pendingArena, en.objID(p.sys.PendingObject(id)))
		}
	}
	f.next = 1 // child 0 is the descent we take right now
	if en.acc != nil {
		f.acc = en.getSummary()
	}
	if en.me != nil {
		// Machine mode: capture this decision point so backtracking can
		// resume here in place. The callback runs between steps, so the
		// system is quiescent — exactly the state a sibling edge needs.
		f.snapW, f.snapV = en.snaps.Len()
		en.me.Snapshot(&en.snaps)
	}
	en.frames = append(en.frames, f)
	en.path = append(en.path, Choice{Pick: ready[0]})
	p.pos++
	return ready[0]
}
