package explore

import (
	"math/rand"

	"repro/internal/sim"
)

// Hunt searches for a schedule violating check on systems too large to
// exhaust: it runs trials random schedules, biased by a small portfolio
// of adversarial strategies (uniform random, solo-first runs, long
// head starts for one process, random crash placements). It returns the
// first violating outcome found, if any, plus the number of runs tried.
//
// Hunting complements Run/Visit: exhaustion proves a small instance
// correct; hunting falsifies larger ones cheaply. The election and
// hierarchy experiments use both.
func Hunt(b Builder, opts Options, trials int, seed int64, check func(*sim.Result) error) (*Outcome, int) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	tried := 0
	for trial := 0; trial < trials; trial++ {
		sys := b()
		n := sys.NumProcs()
		var recorded []sim.ProcID
		sched := huntScheduler(rng, n, &recorded)
		cfg := sim.Config{
			Scheduler:     sched,
			MaxTotalSteps: opts.MaxDepth,
			DisableTrace:  true,
		}
		var crashes []Choice
		if opts.MaxCrashes > 0 && rng.Intn(2) == 0 {
			plan, cs := randomCrashPlan(rng, n, opts.MaxCrashes, opts.MaxDepth)
			cfg.Faults = plan
			crashes = cs
		}
		res, err := sys.Run(cfg)
		if err != nil {
			panic("explore: hunt replay failed: " + err.Error())
		}
		tried++
		if res.Halted {
			continue
		}
		if err := check(res); err != nil {
			schedule := make([]Choice, 0, len(recorded)+len(crashes))
			for _, id := range recorded {
				schedule = append(schedule, Choice{Pick: id})
			}
			schedule = append(schedule, crashes...)
			return &Outcome{Schedule: schedule, Result: res}, tried
		}
	}
	return nil, tried
}

// huntScheduler picks one adversarial strategy per trial.
func huntScheduler(rng *rand.Rand, n int, recorded *[]sim.ProcID) sim.Scheduler {
	var inner sim.Scheduler
	switch rng.Intn(3) {
	case 0:
		inner = sim.Random(rng.Int63())
	case 1:
		inner = sim.Solo(sim.ProcID(rng.Intn(n)))
	default:
		// Head start: one process runs h steps first, then random.
		target := sim.ProcID(rng.Intn(n))
		h := 1 + rng.Intn(8)
		head := make([]sim.ProcID, h)
		for i := range head {
			head[i] = target
		}
		inner = sim.ReplayThen(head, sim.Random(rng.Int63()))
	}
	return sim.Recording(inner, recorded)
}

// randomCrashPlan crashes up to max processes at random global steps.
func randomCrashPlan(rng *rand.Rand, n, max, depth int) (sim.FaultPlan, []Choice) {
	plan := make(map[int][]sim.ProcID)
	var choices []Choice
	count := 1 + rng.Intn(max)
	for i := 0; i < count; i++ {
		id := sim.ProcID(rng.Intn(n))
		at := rng.Intn(depth/4 + 1)
		plan[at] = append(plan[at], id)
		choices = append(choices, Choice{Pick: id, Crash: true})
	}
	return sim.CrashAt(plan), choices
}
