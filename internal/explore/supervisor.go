package explore

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// This file is the supervision layer shared by every parallel walk
// (streamed parallelVisit, pruned census, checkpointed census). The
// engines stay exact enumerators; the supervisor wraps the dispatch of
// frontier roots to workers with the machinery that keeps long censuses
// alive: cooperative cancellation, capped retry with deterministic
// backoff when a root's worker panics, a heartbeat-driven stall
// watchdog that requeues roots whose workers stop advancing, and a
// seeded chaos injector used by the tests to prove all of the above
// preserves bit-identical censuses.
//
// Soundness rests on one invariant: a root is either fully explored by
// exactly one successful attempt, or reported in FailedRoots — never
// partially merged. Attempts are idempotent (every attempt replays the
// same prefix through a fresh system), so retrying or racing a
// requeued duplicate against a stalled straggler cannot change counts;
// the first completed attempt wins and any later duplicate is dropped.

// Supervise configures the resilience policy of parallel exploration.
// The zero value (or a nil Options.Supervision) means: 3 attempts per
// root, 5ms base / 500ms cap exponential backoff, no stall watchdog,
// no chaos.
type Supervise struct {
	// MaxAttempts bounds how often one root is attempted before it is
	// reported as permanently failed. Zero means DefaultMaxAttempts.
	MaxAttempts int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// attempts of one root: attempt k (k >= 2) waits
	// min(BackoffBase << (k-2), BackoffMax), jittered deterministically
	// into [d/2, d] from (Seed, root, attempt). Zeros mean the package
	// defaults.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed feeds the backoff jitter; runs with equal seeds back off
	// identically.
	Seed int64
	// StallTimeout arms the watchdog: a claimed root whose worker
	// heartbeat does not advance for this long is requeued (attempts
	// permitting) and a replacement worker keeps the pool at width.
	// Zero disables the watchdog and all heartbeat accounting.
	StallTimeout time.Duration
	// Chaos, when non-nil, injects seeded worker kills and stalls —
	// the fault model the retry policy and watchdog are verified under.
	Chaos *ChaosPlan
	// Stats, when non-nil, receives the run's supervision counters.
	Stats *SuperviseStats
	// OnEvent, when non-nil, observes the supervisor's per-root
	// lifecycle (claim, resolve, retry, requeue, failure) as it happens.
	// It is called from worker goroutines, possibly concurrently, and
	// must be fast and thread-safe; it must not call back into the walk.
	// Events are advisory telemetry — they never affect counts. Only the
	// pooled checkpoint path (RunCheckpointed) emits them today.
	OnEvent func(Event)
}

// EventKind classifies a supervisor Event.
type EventKind uint8

const (
	// EventClaim: a worker claimed a root and began an attempt.
	EventClaim EventKind = iota + 1
	// EventResolved: a root completed successfully (counted exactly once
	// per root, however many attempts raced).
	EventResolved
	// EventRetry: an attempt failed (panic) and the root was re-queued.
	EventRetry
	// EventRequeue: the stall watchdog abandoned a frozen attempt and
	// re-queued the root.
	EventRequeue
	// EventFailed: the root was abandoned after the attempt budget; its
	// subtree is the census's coverage deficit.
	EventFailed
)

func (k EventKind) String() string {
	switch k {
	case EventClaim:
		return "claim"
	case EventResolved:
		return "resolved"
	case EventRetry:
		return "retry"
	case EventRequeue:
		return "requeue"
	case EventFailed:
		return "failed"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one supervisor lifecycle observation, delivered through
// Supervise.OnEvent.
type Event struct {
	Kind EventKind
	// Root is the frontier root index the event concerns.
	Root int
	// Attempt is the 1-based attempt number (0 when not applicable).
	Attempt int
	// Err carries the failure detail of retry/failed events.
	Err string
}

// DefaultMaxAttempts is the per-root attempt budget when
// Supervise.MaxAttempts is zero.
const DefaultMaxAttempts = 3

// Default backoff shape when Supervise leaves it zero.
const (
	DefaultBackoffBase = 5 * time.Millisecond
	DefaultBackoffMax  = 500 * time.Millisecond
)

// ChaosPlan injects faults into worker-side exploration: each builder
// call (one per terminal probe) may panic ("kill") or sleep ("stall"),
// decided by a seeded RNG so failures land at reproducible points.
// Frontier enumeration and checkpoint replay always use the clean
// builder — chaos only ever hits work the supervisor protects.
type ChaosPlan struct {
	// Seed seeds the injection RNG.
	Seed int64
	// KillRate is the per-probe probability of an injected panic;
	// MaxKills caps the total injected kills (0 = unlimited).
	KillRate float64
	MaxKills int
	// StallRate is the per-probe probability of an injected sleep of
	// StallFor (default 50ms); MaxStalls caps them (0 = unlimited).
	StallRate float64
	MaxStalls int
	StallFor  time.Duration
}

// SuperviseStats counts supervisor activity across one walk. All
// fields are safe to read after the walk returns.
type SuperviseStats struct {
	// Attempts counts root claims (first tries and retries).
	Attempts atomic.Int64
	// Retries counts re-enqueues after a failed (panicked) attempt.
	Retries atomic.Int64
	// Requeues counts watchdog-triggered re-enqueues of stalled roots.
	Requeues atomic.Int64
	// Kills and Stalls count injected chaos events.
	Kills  atomic.Int64
	Stalls atomic.Int64
	// Failed counts roots abandoned after the attempt budget.
	Failed atomic.Int64
}

// RootFailure records one subtree root permanently lost after the
// supervisor's retry budget. The coverage deficit is exact: the runs
// under Prefix — and only those — are missing from the census.
type RootFailure struct {
	// Prefix is the root's schedule prefix.
	Prefix []Choice
	// Attempts is how many times exploration of the root was tried.
	Attempts int
	// Err is the last attempt's failure.
	Err string
}

func (f RootFailure) String() string {
	return fmt.Sprintf("subtree %q lost after %d attempts: %s (coverage deficit: exactly the runs under that prefix)",
		FormatSchedule(f.Prefix), f.Attempts, f.Err)
}

func failureStrings(failed []RootFailure) []string {
	if len(failed) == 0 {
		return nil
	}
	out := make([]string, len(failed))
	for i, f := range failed {
		out[i] = f.String()
	}
	return out
}

// supCfg is Supervise resolved to concrete values. stats is never nil
// so counters are always collected (surfaced through Supervise.Stats
// when the caller provided one).
type supCfg struct {
	maxAttempts int
	base, cap   time.Duration
	seed        int64
	stall       time.Duration
	chaos       *chaosState
	stats       *SuperviseStats
	onEvent     func(Event)
}

// emit delivers a supervisor event to the observer, if any. Callers
// must not hold the supervisor mutex.
func (c *supCfg) emit(e Event) {
	if c.onEvent != nil {
		c.onEvent(e)
	}
}

func (o Options) supervise() *supCfg {
	cfg := &supCfg{
		maxAttempts: DefaultMaxAttempts,
		base:        DefaultBackoffBase,
		cap:         DefaultBackoffMax,
		stats:       &SuperviseStats{},
	}
	if s := o.Supervision; s != nil {
		if s.MaxAttempts > 0 {
			cfg.maxAttempts = s.MaxAttempts
		}
		if s.BackoffBase > 0 {
			cfg.base = s.BackoffBase
		}
		if s.BackoffMax > 0 {
			cfg.cap = s.BackoffMax
		}
		cfg.seed = s.Seed
		cfg.stall = s.StallTimeout
		if s.Stats != nil {
			cfg.stats = s.Stats
		}
		cfg.onEvent = s.OnEvent
		if s.Chaos != nil {
			cfg.chaos = newChaosState(s.Chaos)
		}
	}
	return cfg
}

// backoff is the delay before the attempt-th try (attempt >= 2) of the
// given root: exponential, capped, with jitter drawn deterministically
// from (seed, root, attempt) into the upper half so concurrent retries
// spread out without sacrificing reproducibility.
func (c *supCfg) backoff(root, attempt int) time.Duration {
	d := c.base
	for i := 2; i < attempt; i++ {
		if d >= c.cap {
			break
		}
		d *= 2
	}
	if d > c.cap {
		d = c.cap
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	h := uint64(14695981039346656037) // FNV-1a over (seed, root, attempt)
	for _, v := range [...]uint64{uint64(c.seed), uint64(root), uint64(attempt)} {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= 1099511628211
		}
	}
	return half + time.Duration(h%uint64(half+1))
}

// chaosState is a ChaosPlan plus its RNG and budgets; next is called
// once per worker-side builder invocation.
type chaosState struct {
	mu            sync.Mutex
	rng           *rand.Rand
	plan          ChaosPlan
	kills, stalls int
}

func newChaosState(p *ChaosPlan) *chaosState {
	cp := *p
	if cp.StallFor <= 0 {
		cp.StallFor = 50 * time.Millisecond
	}
	return &chaosState{rng: rand.New(rand.NewSource(cp.Seed)), plan: cp}
}

func (c *chaosState) next() (kill bool, stall time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.plan.KillRate > 0 && (c.plan.MaxKills == 0 || c.kills < c.plan.MaxKills) &&
		c.rng.Float64() < c.plan.KillRate {
		c.kills++
		return true, 0
	}
	if c.plan.StallRate > 0 && (c.plan.MaxStalls == 0 || c.stalls < c.plan.MaxStalls) &&
		c.rng.Float64() < c.plan.StallRate {
		c.stalls++
		return false, c.plan.StallFor
	}
	return false, 0
}

// chaosKill is the panic value of an injected kill; it reads clearly in
// RootFailure.Err and lets tests tell injected kills from real bugs.
type chaosKill struct{}

func (chaosKill) String() string { return "chaos: injected worker kill" }

// wrapChaos wraps a builder for worker-side exploration under the chaos
// plan. With no plan it returns b unchanged (zero overhead).
func (c *supCfg) wrapChaos(b Builder) Builder {
	if c.chaos == nil {
		return b
	}
	ch, stats := c.chaos, c.stats
	return func() *sim.System {
		kill, stall := ch.next()
		if kill {
			stats.Kills.Add(1)
			panic(chaosKill{})
		}
		if stall > 0 {
			stats.Stalls.Add(1)
			time.Sleep(stall)
		}
		return b()
	}
}

// sleepCtx sleeps d, returning false early if ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// rootClaim is one in-flight attempt at one root. hb is bumped by the
// attempt's heartbeat (engine OnStep); last/lastAt/gone are watchdog
// bookkeeping guarded by the supervisor mutex.
type rootClaim struct {
	root   int
	cancel context.CancelFunc
	hb     atomic.Int64
	last   int64
	lastAt time.Time
	gone   bool
}

// superviseRoots runs task once per unresolved frontier root (leaves —
// items with a nil prefix — are skipped; resolved[i], when non-nil,
// pre-marks roots already done, e.g. credited from a checkpoint) on a
// pool of workers with retry, backoff, and the stall watchdog per cfg.
//
// task explores one root; beat (nil unless the watchdog is armed) is
// its progress heartbeat, and a true second return value means the
// attempt observed ctx cancellation and its partial result must be
// discarded. A panicking task fails the attempt; the root is re-queued
// until cfg.maxAttempts, then reported in failed. onResolve, when
// non-nil, is called once per root that completes successfully (from
// worker goroutines, possibly concurrently).
//
// done[i] reports whether root i completed successfully; cancelled is
// true when ctx ended the walk with roots outstanding.
func superviseRoots[T any](
	ctx context.Context,
	items []frontierItem,
	workers int,
	cfg *supCfg,
	resolved []bool,
	task func(ctx context.Context, i int, beat func()) (T, bool),
	onResolve func(i int, r T),
) (results []T, done []bool, failed map[int]RootFailure, cancelled bool) {
	n := len(items)
	results = make([]T, n)
	done = make([]bool, n)
	failed = make(map[int]RootFailure)
	attempts := make([]int, n)

	// Queue capacity covers every possible enqueue (initial + retries +
	// requeues share the per-root attempt budget) so sends never block.
	queue := make(chan int, n*(cfg.maxAttempts+1)+workers)
	remaining := 0
	for i := range items {
		if items[i].prefix == nil {
			continue
		}
		if resolved != nil && resolved[i] {
			done[i] = true
			continue
		}
		remaining++
		queue <- i
	}
	if remaining == 0 {
		return results, done, failed, false
	}

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		claims   = make(map[*rootClaim]struct{})
		finished = make(chan struct{})
		finOnce  sync.Once
	)
	finish := func() { finOnce.Do(func() { close(finished) }) }

	// resolve settles root i exactly once — first completion wins; a
	// straggling duplicate attempt is dropped, and any other in-flight
	// claim of the same root is cancelled so it stops promptly.
	resolve := func(i int, r T, fail *RootFailure) {
		mu.Lock()
		if done[i] || remaining == 0 {
			mu.Unlock()
			return
		}
		done[i] = true
		ok := fail == nil
		if ok {
			results[i] = r
		} else {
			failed[i] = *fail
			cfg.stats.Failed.Add(1)
		}
		remaining--
		rem := remaining
		for cl := range claims {
			if cl.root == i {
				cl.cancel()
			}
		}
		mu.Unlock()
		if ok {
			cfg.emit(Event{Kind: EventResolved, Root: i})
		} else {
			cfg.emit(Event{Kind: EventFailed, Root: i, Attempt: fail.Attempts, Err: fail.Err})
		}
		if ok && onResolve != nil {
			onResolve(i, r)
		}
		if rem == 0 {
			finish()
		}
	}

	runTask := func(cctx context.Context, i int, beat func()) (r T, taskCancelled bool, panicMsg string) {
		defer func() {
			if p := recover(); p != nil {
				panicMsg = fmt.Sprintf("panic: %v", p)
			}
		}()
		r, taskCancelled = task(cctx, i, beat)
		if panicMsg == "" && !taskCancelled {
			return r, false, ""
		}
		return r, taskCancelled, panicMsg
	}

	var worker func()
	worker = func() {
		defer wg.Done()
		for {
			select {
			case <-finished:
				return
			case <-ctx.Done():
				return
			case i := <-queue:
				mu.Lock()
				if done[i] {
					mu.Unlock()
					continue
				}
				attempts[i]++
				a := attempts[i]
				cctx, ccancel := context.WithCancel(ctx)
				cl := &rootClaim{root: i, cancel: ccancel}
				claims[cl] = struct{}{}
				mu.Unlock()
				cfg.stats.Attempts.Add(1)
				cfg.emit(Event{Kind: EventClaim, Root: i, Attempt: a})
				var beat func()
				if cfg.stall > 0 {
					beat = func() { cl.hb.Add(1) }
				}
				r, taskCancelled, panicMsg := runTask(cctx, i, beat)
				mu.Lock()
				delete(claims, cl)
				mu.Unlock()
				ccancel()
				switch {
				case panicMsg != "":
					mu.Lock()
					settled := done[i]
					canRetry := attempts[i] < cfg.maxAttempts
					mu.Unlock()
					if settled {
						continue
					}
					if canRetry {
						cfg.stats.Retries.Add(1)
						cfg.emit(Event{Kind: EventRetry, Root: i, Attempt: a, Err: panicMsg})
						if !sleepCtx(ctx, cfg.backoff(i, a+1)) {
							return
						}
						queue <- i
					} else {
						var zero T
						resolve(i, zero, &RootFailure{
							Prefix:   items[i].prefix,
							Attempts: a,
							Err:      panicMsg,
						})
					}
				case taskCancelled:
					// Partial attempt: either the whole walk is being
					// cancelled (outer select exits next iteration) or
					// this claim lost a race and the root is settled.
				default:
					resolve(i, r, nil)
				}
			}
		}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go worker()
	}

	// The watchdog samples every live claim's heartbeat; a claim frozen
	// for cfg.stall is abandoned (its context cancelled so the stuck
	// attempt dies as soon as it unsticks), the root re-queued if the
	// attempt budget allows, and a replacement worker spawned so one
	// wedged goroutine cannot shrink the pool. It runs inside wg so a
	// late spawn can never race wg.Wait.
	if cfg.stall > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := cfg.stall / 4
			if tick <= 0 {
				tick = time.Millisecond
			}
			t := time.NewTicker(tick)
			defer t.Stop()
			for {
				select {
				case <-finished:
					return
				case <-ctx.Done():
					return
				case now := <-t.C:
					type lostRoot struct {
						i int
						f RootFailure
					}
					var lost []lostRoot // resolve needs mu; settle after unlock
					var requeued []int  // emit needs mu released
					mu.Lock()
					for cl := range claims {
						if cl.gone {
							continue
						}
						if v := cl.hb.Load(); cl.lastAt.IsZero() || v != cl.last {
							cl.last, cl.lastAt = v, now
							continue
						}
						if now.Sub(cl.lastAt) < cfg.stall {
							continue
						}
						cl.gone = true
						cl.cancel()
						i := cl.root
						if done[i] {
							continue
						}
						if attempts[i] < cfg.maxAttempts {
							cfg.stats.Requeues.Add(1)
							requeued = append(requeued, i)
							queue <- i
							wg.Add(1)
							go worker()
						} else {
							// No attempts left: settle the root as lost so
							// the pool can still drain to completion.
							lost = append(lost, lostRoot{i, RootFailure{
								Prefix:   items[i].prefix,
								Attempts: attempts[i],
								Err:      fmt.Sprintf("stalled: no heartbeat progress for %v", cfg.stall),
							}})
						}
					}
					mu.Unlock()
					for _, i := range requeued {
						cfg.emit(Event{Kind: EventRequeue, Root: i})
					}
					var zero T
					for _, l := range lost {
						resolve(l.i, zero, &l.f)
					}
				}
			}
		}()
	}

	wg.Wait()
	mu.Lock()
	cancelled = remaining > 0
	mu.Unlock()
	return results, done, failed, cancelled
}
