package explore_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/explore"
	"repro/internal/objects"
	"repro/internal/registers"
	"repro/internal/sim"
)

// oneShot builds n processes that each take `steps` reads of a shared
// register and decide their ID.
func oneShot(n, steps int) explore.Builder {
	return func() *sim.System {
		sys := sim.NewSystem()
		r := registers.NewMWMR("r", 0)
		sys.Add(r)
		sys.SpawnN(n, func(id sim.ProcID) sim.Program {
			return func(e *sim.Env) (sim.Value, error) {
				for i := 0; i < steps; i++ {
					r.Read(e)
				}
				return int(id), nil
			}
		})
		return sys
	}
}

func TestVisitCountsInterleavings(t *testing.T) {
	tests := []struct {
		n, steps int
		want     int // number of interleavings = multinomial coefficient
	}{
		{2, 1, 2},  // 2!/(1!1!)
		{2, 2, 6},  // 4!/(2!2!)
		{3, 1, 6},  // 3!
		{2, 3, 20}, // 6!/(3!3!)
	}
	for _, tt := range tests {
		runs, exhaustive := explore.Visit(oneShot(tt.n, tt.steps), explore.Options{}, func(explore.Outcome) bool { return true })
		if !exhaustive {
			t.Errorf("n=%d steps=%d: not exhaustive", tt.n, tt.steps)
		}
		if runs != tt.want {
			t.Errorf("n=%d steps=%d: %d runs, want %d", tt.n, tt.steps, runs, tt.want)
		}
	}
}

func TestVisitEarlyStop(t *testing.T) {
	runs, exhaustive := explore.Visit(oneShot(2, 2), explore.Options{}, func(explore.Outcome) bool {
		return false // stop immediately
	})
	if runs != 1 || exhaustive {
		t.Errorf("runs=%d exhaustive=%v, want 1,false", runs, exhaustive)
	}
}

func TestMaxRunsCap(t *testing.T) {
	_, exhaustive := explore.Visit(oneShot(3, 3), explore.Options{MaxRuns: 10}, func(explore.Outcome) bool { return true })
	if exhaustive {
		t.Error("capped walk reported exhaustive")
	}
}

func TestCrashBranchingAddsRuns(t *testing.T) {
	base, _ := explore.Visit(oneShot(2, 1), explore.Options{}, func(explore.Outcome) bool { return true })
	withCrash, exhaustive := explore.Visit(oneShot(2, 1), explore.Options{MaxCrashes: 1}, func(explore.Outcome) bool { return true })
	if !exhaustive {
		t.Fatal("crash walk not exhaustive")
	}
	if withCrash <= base {
		t.Errorf("crash branching gave %d runs, base %d", withCrash, base)
	}
}

func TestIncompleteRunsCounted(t *testing.T) {
	spinner := func() *sim.System {
		sys := sim.NewSystem()
		r := registers.NewMWMR("r", 0)
		sys.Add(r)
		sys.Spawn(func(e *sim.Env) (sim.Value, error) {
			for {
				r.Read(e)
			}
		})
		return sys
	}
	c := explore.Run(spinner, explore.Options{MaxDepth: 10}, nil)
	if c.Incomplete != 1 || c.Complete != 0 {
		t.Errorf("census = %+v, want exactly one incomplete run", c)
	}
}

// tasConsensus is 2-process consensus from one test&set bit plus an
// announce array: the winner decides its own value, the loser adopts
// the winner's announcement.
func tasConsensus(vals [2]int) explore.Builder {
	return func() *sim.System {
		sys := sim.NewSystem()
		ts := objects.NewTestAndSet("t")
		sys.Add(ts)
		ann := registers.NewArray(sys, "ann", 2, nil)
		sys.SpawnN(2, func(id sim.ProcID) sim.Program {
			return func(e *sim.Env) (sim.Value, error) {
				ann.Write(e, vals[id])
				if ts.TestAndSet(e) {
					return vals[id], nil
				}
				other := ann.Read(e, 1-int(id))
				return other, nil
			}
		})
		return sys
	}
}

func TestTASConsensusAgreesOnAllSchedules(t *testing.T) {
	c := explore.Run(tasConsensus([2]int{10, 20}), explore.Options{}, func(res *sim.Result) error {
		if d := res.DistinctDecisions(); len(d) > 1 {
			return fmt.Errorf("disagreement: %v", d)
		}
		return nil
	})
	if !c.Exhaustive {
		t.Fatal("walk not exhaustive")
	}
	if len(c.Violations) != 0 {
		t.Errorf("agreement violated: %s", explore.FormatSchedule(c.Violations[0].Schedule))
	}
	// Both outcomes must be reachable: the object decides the race.
	if c.Outcomes["[10 10]"] == 0 || c.Outcomes["[20 20]"] == 0 {
		t.Errorf("outcome census %v, want both [10 10] and [20 20]", c.Outcomes)
	}
}

func TestTASConsensusAgreesUnderOneCrash(t *testing.T) {
	c := explore.Run(tasConsensus([2]int{10, 20}), explore.Options{MaxCrashes: 1}, func(res *sim.Result) error {
		if d := res.DistinctDecisions(); len(d) > 1 {
			return fmt.Errorf("disagreement: %v", d)
		}
		return nil
	})
	if len(c.Violations) != 0 {
		t.Errorf("agreement violated under crash: %s", explore.FormatSchedule(c.Violations[0].Schedule))
	}
}

// rwConsensusAttempt is a doomed 2-process read/write "consensus":
// announce, then adopt the other's value if visible, else keep your
// own. The explorer finds the disagreeing schedule.
func rwConsensusAttempt() *sim.System {
	sys := sim.NewSystem()
	ann := registers.NewArray(sys, "ann", 2, nil)
	sys.SpawnN(2, func(id sim.ProcID) sim.Program {
		return func(e *sim.Env) (sim.Value, error) {
			ann.Write(e, int(id))
			other := ann.Read(e, 1-int(id))
			if other != nil {
				return other, nil
			}
			return int(id), nil
		}
	})
	return sys
}

func TestExplorerFindsRWConsensusViolation(t *testing.T) {
	c := explore.Run(rwConsensusAttempt, explore.Options{}, func(res *sim.Result) error {
		if d := res.DistinctDecisions(); len(d) > 1 {
			return errors.New("disagreement")
		}
		return nil
	})
	if len(c.Violations) == 0 {
		t.Fatalf("no violation found; census:\n%s", explore.DescribeCensus(c))
	}
}

func TestValenceTASConsensus(t *testing.T) {
	b := tasConsensus([2]int{10, 20})
	v := explore.Valence(b, explore.Options{}, nil)
	if len(v) != 2 {
		t.Errorf("initial valence %v, want bivalent", v)
	}
	// After process 0 wins the test&set (its announce then t&s), the
	// outcome is fixed: univalent.
	prefix := []explore.Choice{{Pick: 0}, {Pick: 0}}
	v = explore.Valence(b, explore.Options{}, prefix)
	if len(v) != 1 || v[0] != "[10 10]" {
		t.Errorf("post-win valence %v, want {[10 10]}", v)
	}
}

func TestBivalencePathEndsForTAS(t *testing.T) {
	// A correct strong-object consensus protocol cannot stay bivalent:
	// the greedy bivalence path must terminate well before the bound.
	path, stillBivalent := explore.BivalencePath(tasConsensus([2]int{1, 2}), explore.Options{}, 20)
	if stillBivalent {
		t.Errorf("test&set consensus stayed bivalent for %d steps", len(path))
	}
	if len(path) > 3 {
		t.Errorf("bivalence path length %d, want <= 3 (one step decides)", len(path))
	}
}

func TestChoiceString(t *testing.T) {
	cs := []explore.Choice{{Pick: 0}, {Pick: 2, Crash: true}, {Pick: 1}}
	if got := explore.FormatSchedule(cs); got != "0 2† 1" {
		t.Errorf("FormatSchedule = %q", got)
	}
}

// TestHuntFindsRWViolation: the randomized hunter falsifies the doomed
// read/write consensus without exhaustive search.
func TestHuntFindsRWViolation(t *testing.T) {
	out, tried := explore.Hunt(rwConsensusAttempt, explore.Options{}, 500, 1, func(res *sim.Result) error {
		if d := res.DistinctDecisions(); len(d) > 1 {
			return errors.New("disagreement")
		}
		return nil
	})
	if out == nil {
		t.Fatalf("hunter found no violation in %d trials", tried)
	}
	if len(out.Result.DistinctDecisions()) < 2 {
		t.Error("reported outcome does not actually disagree")
	}
}

// TestHuntPassesCorrectProtocol: hunting a correct protocol stays quiet.
func TestHuntPassesCorrectProtocol(t *testing.T) {
	out, tried := explore.Hunt(tasConsensus([2]int{1, 2}), explore.Options{MaxCrashes: 1}, 300, 2, func(res *sim.Result) error {
		if d := res.DistinctDecisions(); len(d) > 1 {
			return errors.New("disagreement")
		}
		return nil
	})
	if out != nil {
		t.Errorf("hunter reported a false violation: %s", explore.FormatSchedule(out.Schedule))
	}
	if tried != 300 {
		t.Errorf("tried %d runs, want 300", tried)
	}
}
