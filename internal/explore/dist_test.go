package explore_test

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/explore"
	"repro/internal/registers"
	"repro/internal/sim"
)

// rwAttempt3 is a doomed 3-process read/write "consensus" — announce,
// then adopt the first other announcement seen. Big enough to
// frontier-split and rich in violations under crash branching.
func rwAttempt3() explore.Builder {
	return func() *sim.System {
		sys := sim.NewSystem()
		ann := registers.NewArray(sys, "ann", 3, nil)
		sys.SpawnN(3, func(id sim.ProcID) sim.Program {
			return func(e *sim.Env) (sim.Value, error) {
				ann.Write(e, int(id))
				for j := 0; j < 3; j++ {
					if j != int(id) {
						if other := ann.Read(e, j); other != nil {
							return other, nil
						}
					}
				}
				return int(id), nil
			}
		})
		return sys
	}
}

// exploreAllItems plays a full worker fleet over a plan: every root is
// explored through ExploreSubtree (a fresh process-like environment
// per item, its own prune table), and the summaries are merged.
func exploreAllItems(t *testing.T, plan *explore.DistPlan, b explore.Builder, opts explore.Options, check func(*sim.Result) error, ckDir string) *explore.Census {
	t.Helper()
	done := make(map[int]explore.RootSummary)
	for _, root := range plan.Roots() {
		ck := explore.SubtreeCheckpoint{}
		if ckDir != "" {
			ck = explore.SubtreeCheckpoint{Path: filepath.Join(ckDir, fmt.Sprintf("item-%d.json", root)), Every: 1, Resume: true}
		}
		sum, _, err := explore.ExploreSubtree(context.Background(), b, opts, check, plan.Prefix(root), ck, nil)
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		done[root] = sum
	}
	return plan.Merge(done, nil)
}

func assertCensusCountsEqual(t *testing.T, label string, got, want *explore.Census) {
	t.Helper()
	if got.Complete != want.Complete || got.Incomplete != want.Incomplete ||
		got.ViolationRuns != want.ViolationRuns || got.Exhaustive != want.Exhaustive ||
		got.Cancelled != want.Cancelled {
		t.Fatalf("%s: census %d/%d viol=%d ex=%v can=%v, want %d/%d viol=%d ex=%v can=%v",
			label, got.Complete, got.Incomplete, got.ViolationRuns, got.Exhaustive, got.Cancelled,
			want.Complete, want.Incomplete, want.ViolationRuns, want.Exhaustive, want.Cancelled)
	}
	if len(got.Outcomes) != len(want.Outcomes) {
		t.Fatalf("%s: outcomes %v, want %v", label, got.Outcomes, want.Outcomes)
	}
	for k, v := range want.Outcomes {
		if got.Outcomes[k] != v {
			t.Fatalf("%s: outcomes %v, want %v", label, got.Outcomes, want.Outcomes)
		}
	}
	if len(got.Violations) != len(want.Violations) {
		t.Fatalf("%s: %d recorded violation reps, want %d", label, len(got.Violations), len(want.Violations))
	}
}

// TestDistPlanMergeBitIdentical: distributing every root through
// ExploreSubtree (fresh tables, per-item checkpoints) and merging must
// reproduce the single-process census in every count — crash
// branching, violations, and reduction all included.
func TestDistPlanMergeBitIdentical(t *testing.T) {
	agree := func(res *sim.Result) error {
		if d := res.DistinctDecisions(); len(d) > 1 {
			return fmt.Errorf("disagreement: %v", d)
		}
		return nil
	}
	cases := []struct {
		name  string
		b     explore.Builder
		opts  explore.Options
		check func(*sim.Result) error
	}{
		{"oneShot-3x2", oneShot(3, 2), explore.Options{Workers: 2}, nil},
		{"oneShot-crash", oneShot(3, 2), explore.Options{MaxCrashes: 1, Workers: 2}, nil},
		{"rw3-violations", rwAttempt3(), explore.Options{MaxCrashes: 1, Workers: 2}, agree},
		{"rw3-pruned-sleep", rwAttempt3(), explore.Options{SleepSets: true, Workers: 2}, agree},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := explore.Run(tc.b, tc.opts, tc.check)
			plan, ok := explore.NewDistPlan(tc.b, tc.opts, tc.check)
			if !ok {
				t.Fatal("exploration did not split")
			}
			if len(plan.Roots()) == 0 {
				t.Fatal("plan has no distributable roots")
			}
			got := exploreAllItems(t, plan, tc.b, tc.opts, tc.check, "")
			assertCensusCountsEqual(t, tc.name, got, want)
			// And with per-item subtree checkpointing switched on.
			got2 := exploreAllItems(t, plan, tc.b, tc.opts, tc.check, t.TempDir())
			assertCensusCountsEqual(t, tc.name+"+ck", got2, want)
		})
	}
}

// TestExploreSubtreeCheckpointResume: re-running a work item over its
// finished checkpoint must resume (not re-explore) and return the
// identical summary — the path a killed-then-restarted worker takes.
func TestExploreSubtreeCheckpointResume(t *testing.T) {
	b := oneShot(3, 3)
	opts := explore.Options{Workers: 2}
	plan, ok := explore.NewDistPlan(b, opts, nil)
	if !ok {
		t.Fatal("no split")
	}
	root := plan.Roots()[0]
	path := filepath.Join(t.TempDir(), "item.json")
	ck := explore.SubtreeCheckpoint{Path: path, Every: 1, Resume: true}

	first, stats1, err := explore.ExploreSubtree(context.Background(), b, opts, nil, plan.Prefix(root), ck, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats1.Saves == 0 {
		t.Fatal("first pass saved no checkpoint")
	}
	second, stats2, err := explore.ExploreSubtree(context.Background(), b, opts, nil, plan.Prefix(root), ck, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Resumed == 0 {
		t.Fatalf("second pass resumed nothing: %+v", stats2)
	}
	if first.Complete != second.Complete || first.Incomplete != second.Incomplete ||
		first.Violations != second.Violations {
		t.Fatalf("resume changed the summary: %+v vs %+v", first, second)
	}
}

// TestDistPlanMergeMissingRoot: an unexplored root must surface as a
// cancelled, non-exhaustive census — never as silently-short counts.
func TestDistPlanMergeMissingRoot(t *testing.T) {
	b := oneShot(3, 2)
	opts := explore.Options{Workers: 2}
	want := explore.Run(b, opts, nil)
	plan, _ := explore.NewDistPlan(b, opts, nil)
	roots := plan.Roots()

	done := make(map[int]explore.RootSummary)
	for _, root := range roots[1:] { // skip the first root
		sum, _, err := explore.ExploreSubtree(context.Background(), b, opts, nil, plan.Prefix(root), explore.SubtreeCheckpoint{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		done[root] = sum
	}
	c := plan.Merge(done, nil)
	if !c.Cancelled || c.Exhaustive {
		t.Fatalf("partial merge: cancelled=%v exhaustive=%v, want true/false", c.Cancelled, c.Exhaustive)
	}
	if c.Complete >= want.Complete {
		t.Fatalf("partial merge counted %d complete, full census has %d", c.Complete, want.Complete)
	}

	// A failed root instead marks a coverage deficit, not cancellation.
	failed := map[int]explore.RootFailure{
		roots[0]: {Prefix: plan.Prefix(roots[0]), Attempts: 3, Err: "lost"},
	}
	c2 := plan.Merge(done, failed)
	if c2.Cancelled || c2.Exhaustive || len(c2.Errors) != 1 {
		t.Fatalf("failed-root merge: cancelled=%v exhaustive=%v errors=%v", c2.Cancelled, c2.Exhaustive, c2.Errors)
	}
}

// TestDistPlanCheckpointRoundTripAndWrongOptions: the plan's
// checkpoint is the standard file format — a round trip credits the
// recorded roots, and a file recording the same exploration under
// different engine options is refused outright.
func TestDistPlanCheckpointRoundTrip(t *testing.T) {
	b := oneShot(3, 2)
	opts := explore.Options{Workers: 2}
	plan, _ := explore.NewDistPlan(b, opts, nil)
	root := plan.Roots()[0]
	sum, _, err := explore.ExploreSubtree(context.Background(), b, opts, nil, plan.Prefix(root), explore.SubtreeCheckpoint{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "job.json")
	if err := plan.SaveCheckpoint(path, map[int]explore.RootSummary{root: sum}); err != nil {
		t.Fatal(err)
	}
	back, warn, err := plan.LoadCheckpoint(path)
	if err != nil || warn != "" {
		t.Fatalf("load: err=%v warn=%q", err, warn)
	}
	if got, ok := back[root]; !ok || got.Complete != sum.Complete {
		t.Fatalf("round trip lost root %d: %+v", root, back)
	}

	// Same tree, different census-shaping options (MaxRuns changes the
	// cap semantics): resuming must be refused, not silently merged.
	otherOpts := opts
	otherOpts.MaxRuns = 777
	other, ok := explore.NewDistPlan(b, otherOpts, nil)
	if !ok {
		t.Fatal("no split under other options")
	}
	if _, _, err := other.LoadCheckpoint(path); err == nil {
		t.Fatal("wrong-options checkpoint was accepted")
	}
}

// TestFingerprintOptionsDetectsDivergence: the worker-side guard — the
// fingerprint must be stable across processes for equal options and
// differ when a census-shaping option differs.
func TestFingerprintOptionsDetectsDivergence(t *testing.T) {
	b := oneShot(2, 2)
	opts := explore.Options{MaxCrashes: 1}
	a := explore.FingerprintOptions(b, opts)
	if a != explore.FingerprintOptions(b, opts) {
		t.Fatal("fingerprint not deterministic")
	}
	opts2 := opts
	opts2.MaxCrashes = 0
	if a == explore.FingerprintOptions(b, opts2) {
		t.Fatal("fingerprint ignored MaxCrashes")
	}
	// Tuning (worker count) must NOT shape the fingerprint.
	opts3 := opts
	opts3.Workers = 7
	if a != explore.FingerprintOptions(b, opts3) {
		t.Fatal("fingerprint depends on worker count")
	}
}
