package explore

import (
	"repro/internal/sim"
)

// Orbit-aware frontier generation. The transposition table already
// collapses symmetric states mid-walk, but only after a worker has
// claimed the root and replayed its prefix — and in the distributed
// census (dist.go) there is no shared table at all, so every symmetric
// root costs a full remote exploration. This file moves the fold to
// generation time: frontier roots whose states lie in the same
// symmetry orbit (equal canonical table key — fingerprint plus
// remaining budgets) are partitioned into one REPRESENTATIVE, which is
// explored normally, and TWINS, which are never enqueued. A twin is
// credited the representative's summary renamed into its own
// orientation — the exact translation a table hit at its root node
// would have performed — so every census count stays bit-identical to
// the unpartitioned walk. Skipped roots are reported in
// PruneStats.OrbitSkips.
//
// Soundness is the transposition argument (prune.go) verbatim: equal
// table keys root identical subtrees up to the renaming the
// orientation records, and the orientation composition below is the
// same one engine.run (hit consumption) and engine.popFrame
// (canonical publication) already use.

// orbitInfo is the orbit partition of one frontier: rep[i] is the
// index of item i's representative (rep[i] == i for representatives,
// leaves and unkeyed roots), perm[i] its root state's canonical
// orientation, and key[i] its canonical table key (valid only when
// keyed[i]).
type orbitInfo struct {
	rep   []int
	perm  []int
	key   []tableKey
	keyed []bool
	twins int
}

// orbitPartition keys every prefix-bearing frontier item's root state
// and groups equal keys, first occurrence as representative. Roots
// whose state does not fingerprint (hash bail) stay their own
// representative and are explored normally — partitioning degrades,
// counts never do.
func orbitPartition(b Builder, opts Options, items []frontierItem) *orbitInfo {
	info := &orbitInfo{
		rep:   make([]int, len(items)),
		perm:  make([]int, len(items)),
		key:   make([]tableKey, len(items)),
		keyed: make([]bool, len(items)),
	}
	first := make(map[tableKey]int)
	for i, it := range items {
		info.rep[i] = i
		if it.prefix == nil {
			continue
		}
		k, perm, ok := rootOrbitKey(b, opts, it.prefix)
		if !ok {
			continue
		}
		info.perm[i], info.key[i], info.keyed[i] = perm, k, true
		if j, seen := first[k]; seen {
			info.rep[i] = j
			info.twins++
		} else {
			first[k] = i
		}
	}
	return info
}

// rootOrbitKey replays prefix on a fresh system and fingerprints the
// root node exactly as the engine's prober would at its first
// post-plan decision point: canonical state hash at the moment every
// live process is parked, plus the remaining depth/crash/fault
// budgets. ok is false when the replay diverged (nondeterministic
// builder) or the state does not fingerprint.
func rootOrbitKey(b Builder, opts Options, prefix []Choice) (tableKey, int, bool) {
	sys := b()
	r := &orbitReplay{plan: prefix, sys: sys}
	cfg := sim.Config{
		Scheduler:          r,
		Faults:             r,
		MaxStepsPerProc:    opts.MaxStepsPerProc,
		MaxTotalSteps:      opts.MaxDepth + 1,
		DisableTrace:       true,
		Fingerprint:        true,
		Canon:              opts.canon,
		ForceGoroutines:    opts.ForceGoroutines,
		VerifyFingerprints: opts.VerifyFingerprints,
	}
	if opts.ObjectFaults > 0 {
		cfg.ObjectFaults = r
	}
	if _, err := sys.Run(cfg); err != nil || r.dead || !r.ok {
		return tableKey{}, 0, false
	}
	return tableKey{
		fp:       r.fp,
		depthRem: opts.MaxDepth - len(prefix),
		crashRem: opts.MaxCrashes - r.crashes,
		faultRem: opts.ObjectFaults - r.faults,
	}, r.perm, true
}

// orbitReplay drives one prefix replay as Scheduler, FaultPlan and
// ObjectFaultPlan — the prober's plan-consumption branch with the
// engine hooks stripped. When the plan is exhausted it captures the
// canonical state hash (all live processes are parked inside Next,
// the same quiescent point the prober keys on) and halts.
type orbitReplay struct {
	sys          *sim.System
	plan         []Choice
	i            int
	crashes      int
	faults       int
	pendingFault sim.FaultMode
	crashBuf     []sim.ProcID

	fp   uint64
	perm int
	ok   bool
	dead bool
}

// FaultOp implements sim.ObjectFaultPlan.
func (r *orbitReplay) FaultOp(_ int) sim.FaultMode {
	m := r.pendingFault
	r.pendingFault = sim.FaultNone
	return m
}

// CrashNow implements sim.FaultPlan, consuming consecutive planned
// crash choices like prober.CrashNow.
func (r *orbitReplay) CrashNow(_ []sim.ProcID, _ int) []sim.ProcID {
	if r.i >= len(r.plan) || !r.plan[r.i].Crash {
		return nil
	}
	out := r.crashBuf[:0]
	for r.i < len(r.plan) && r.plan[r.i].Crash {
		out = append(out, r.plan[r.i].Pick)
		r.i++
		r.crashes++
	}
	r.crashBuf = out
	return out
}

// Next implements sim.Scheduler.
func (r *orbitReplay) Next(ready []sim.ProcID, _ int) sim.ProcID {
	if r.i < len(r.plan) {
		c := r.plan[r.i]
		r.i++
		for _, q := range ready {
			if q == c.Pick {
				r.pendingFault = c.Fault
				if c.Fault != sim.FaultNone {
					r.faults++
				}
				return c.Pick
			}
		}
		r.dead = true
		return sim.Halt
	}
	if !r.ok {
		// Plan exhausted: this parked state IS the root node. A failed
		// fold leaves ok false and the caller treats the root as unique.
		r.fp, r.perm, r.ok = r.sys.StateHashCanon()
	}
	return sim.Halt
}

// orbitRenamer is the outcome-key translation for crediting a twin
// from a summary stored in CANONICAL coordinates (a published table
// entry): rename out of canonical through the inverse of the twin's
// orientation — exactly what engine.run applies on a table hit. nil
// (identity) when the orientation is the identity permutation.
func orbitRenamer(canon *sim.Canonicalizer, twinPerm int) func(string) string {
	if canon == nil || twinPerm == 0 {
		return nil
	}
	return canon.OutcomeRenamerInv(twinPerm)
}

// orbitRenamerRaw is the translation for crediting a twin from a
// summary in the REPRESENTATIVE'S OWN coordinates (a distributed
// RootSummary, never canonicalized): rename into canonical through
// the rep's orientation, then out through the inverse of the twin's —
// the publication and consumption steps of the shared-table flow,
// composed.
func orbitRenamerRaw(canon *sim.Canonicalizer, repPerm, twinPerm int) func(string) string {
	if canon == nil {
		return nil
	}
	into := canon.OutcomeRenamer(repPerm)
	outOf := canon.OutcomeRenamerInv(twinPerm)
	switch {
	case into == nil && outOf == nil:
		return nil
	case into == nil:
		return outOf
	case outOf == nil:
		return into
	}
	return func(key string) string { return outOf(into(key)) }
}
