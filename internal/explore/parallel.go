package explore

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Parallel exploration: the tree is split at a shallow depth into an
// ordered frontier of subtree roots (plus the terminal runs that end
// above the split); workers claim roots from a shared index — a
// work-stealing queue degenerated to its essential half, dynamic load
// balancing — and the results are merged back in frontier order, so
// every observable (visit order, run counts, census totals) is
// bit-identical to the sequential walk.

// frontierItem is one entry of the split frontier, in sequential DFS
// order: either a terminal run above the split (leaf) or a subtree
// root's schedule prefix.
type frontierItem struct {
	leaf   *Outcome
	prefix []Choice
}

// frontier enumerates the tree down to a split depth chosen so that
// there are comfortably more roots than workers (≥8× for load balance).
// ok is false when enumeration hit MaxRuns — the caller should fall
// back to a sequential walk, which owns the exact cap semantics.
func frontier(b Builder, opts Options, workers int) (items []frontierItem, ok bool) {
	target := 8 * workers
	for split := 1; ; split++ {
		items = items[:0]
		roots := 0
		shallow := opts
		shallow.MaxDepth = split
		en := &engine{b: b, opts: shallow, visit: func(o Outcome) bool {
			if o.Result.Halted && len(o.Schedule) == split {
				items = append(items, frontierItem{prefix: o.Schedule})
				roots++
			} else {
				// A genuine terminal of the full tree: it completed (or
				// hit MaxStepsPerProc crashes) before the split depth.
				oc := o
				items = append(items, frontierItem{leaf: &oc})
			}
			return true
		}}
		en.run()
		if en.capped {
			return nil, false
		}
		// Stop growing the split when there is enough parallelism, when
		// the whole tree is above the split (roots == 0), or when the
		// split would swallow the depth budget (deep narrow trees).
		if roots >= target || roots == 0 || split+1 >= opts.MaxDepth || split >= 24 {
			return items, true
		}
	}
}

// forEachRoot runs f(i) for every root item, fanning out to the given
// number of workers over a shared claim index.
func forEachRoot(items []frontierItem, workers int, f func(i int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(items) {
					return
				}
				if items[i].prefix == nil {
					continue
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// parallelVisit is Visit fanned out over workers. Each root's outcomes
// stream through a bounded channel; the calling goroutine plays the
// sequencer, delivering outcomes to visit in exact sequential DFS
// order and enforcing MaxRuns globally, so runs/exhaustive/visit-order
// semantics match sequentialVisit bit for bit.
func parallelVisit(b Builder, opts Options, visit func(Outcome) bool) (int, bool, []string) {
	workers := opts.workerCount()
	items, ok := frontier(b, opts, workers)
	if !ok {
		runs, exhaustive := sequentialVisit(b, opts, visit)
		return runs, exhaustive, nil
	}
	type rootState struct {
		ch     chan Outcome
		capped bool   // written before ch closes; read after — safe
		err    string // recovered worker panic, same publication rule
	}
	states := make([]*rootState, len(items))
	for i, it := range items {
		if it.prefix != nil {
			states[i] = &rootState{ch: make(chan Outcome, 64)}
		}
	}
	done := make(chan struct{})
	var aborted atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(items) || aborted.Load() {
					return
				}
				st := states[i]
				if st == nil {
					continue
				}
				// Recover panics from the builder or the engine into a
				// per-subtree error: the walk over the other roots keeps
				// going and the loss is reported, not fatal. (Panics inside
				// spawned PROCESS goroutines are protocol bugs the runner
				// deliberately re-raises; those still crash — only
				// harness-side panics are survivable.)
				func() {
					defer func() {
						if r := recover(); r != nil {
							st.err = fmt.Sprintf("subtree %s: panic: %v",
								FormatSchedule(items[i].prefix), r)
						}
						close(st.ch)
					}()
					en := &engine{b: b, opts: opts, root: items[i].prefix,
						visit: func(o Outcome) bool {
							select {
							case st.ch <- o:
								return true
							case <-done:
								return false
							}
						}}
					en.run()
					st.capped = en.capped
				}()
			}
		}()
	}
	runs := 0
	visitOK := true
	capped := false
	var errs []string
deliver:
	for i, it := range items {
		if states[i] == nil {
			if runs >= opts.MaxRuns {
				capped = true
				break deliver
			}
			runs++
			if !visit(*it.leaf) {
				visitOK = false
				break deliver
			}
			continue
		}
		for o := range states[i].ch {
			if runs >= opts.MaxRuns {
				capped = true
				break deliver
			}
			runs++
			if !visit(o) {
				visitOK = false
				break deliver
			}
		}
		if states[i].err != "" {
			// The subtree died mid-walk: every outcome delivered before
			// the panic is real, the rest of the subtree is lost. Keep
			// draining the remaining roots.
			errs = append(errs, states[i].err)
			continue
		}
		if states[i].capped {
			// The worker hit MaxRuns inside this subtree, so the global
			// count has too: report the truncation.
			capped = true
			break deliver
		}
	}
	aborted.Store(true)
	close(done)
	wg.Wait()
	return runs, visitOK && !capped && len(errs) == 0, errs
}
