package explore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Parallel exploration: the tree is split at a shallow depth into an
// ordered frontier of subtree roots (plus the terminal runs that end
// above the split); workers claim roots from a shared index — a
// work-stealing queue degenerated to its essential half, dynamic load
// balancing — and the results are merged back in frontier order, so
// every observable (visit order, run counts, census totals) is
// bit-identical to the sequential walk. The sequencer doubles as the
// supervisor for streamed visits: a root whose worker panics or stalls
// is re-walked inline with the already-delivered prefix skipped —
// attempts are idempotent replays, so retry changes nothing observable.

// frontierItem is one entry of the split frontier, in sequential DFS
// order: either a terminal run above the split (leaf) or a subtree
// root's schedule prefix.
type frontierItem struct {
	leaf   *Outcome
	prefix []Choice
}

// frontier enumerates the tree down to a split depth chosen so that
// there are comfortably more roots than workers (≥8× for load balance).
// ok is false when enumeration hit MaxRuns or the context was cancelled
// — the caller should fall back to a sequential walk, which owns the
// exact cap/cancel semantics.
func frontier(b Builder, opts Options, workers int) (items []frontierItem, ok bool) {
	target := 8 * workers
	for split := 1; ; split++ {
		items = items[:0]
		roots := 0
		shallow := opts
		shallow.MaxDepth = split
		en := &engine{b: b, opts: shallow, ctx: opts.Context, visit: func(o Outcome) bool {
			if o.Result.Halted && len(o.Schedule) == split {
				items = append(items, frontierItem{prefix: o.Schedule})
				roots++
			} else {
				// A genuine terminal of the full tree: it completed (or
				// hit MaxStepsPerProc crashes) before the split depth.
				oc := o
				items = append(items, frontierItem{leaf: &oc})
			}
			return true
		}}
		en.run()
		if en.capped || en.cancelled {
			return nil, false
		}
		// Stop growing the split when there is enough parallelism, when
		// the whole tree is above the split (roots == 0), or when the
		// split would swallow the depth budget (deep narrow trees).
		if roots >= target || roots == 0 || split+1 >= opts.MaxDepth || split >= 24 {
			return items, true
		}
	}
}

// parallelVisit is Visit fanned out over workers. Each root's outcomes
// stream through a bounded channel; the calling goroutine plays the
// sequencer, delivering outcomes to visit in exact sequential DFS
// order and enforcing MaxRuns globally, so runs/exhaustive/visit-order
// semantics match sequentialVisit bit for bit. A root whose worker
// fails (panic) or stalls (heartbeat frozen past the watchdog timeout)
// is retried inline on the sequencer goroutine with the delivered
// prefix skipped, up to the supervision attempt budget; only then is it
// reported as a RootFailure.
func parallelVisit(b Builder, opts Options, visit func(Outcome) bool) (int, bool, []RootFailure, bool) {
	workers := opts.workerCount()
	ctx := opts.ctx()
	items, ok := frontier(b, opts, workers)
	if !ok {
		runs, exhaustive, cancelled := sequentialVisit(b, opts, visit)
		return runs, exhaustive, nil, cancelled
	}
	cfg := opts.supervise()
	wb := cfg.wrapChaos(b)
	type rootState struct {
		ch      chan Outcome
		abandon chan struct{} // closed by the sequencer when the root stalls
		started atomic.Bool   // claimed by a worker (stall detection gate)
		hb      atomic.Int64  // worker heartbeat (engine steps)
		capped  bool          // written before ch closes; read after — safe
		err     string        // recovered worker panic, same publication rule
	}
	states := make([]*rootState, len(items))
	for i, it := range items {
		if it.prefix != nil {
			states[i] = &rootState{ch: make(chan Outcome, 64), abandon: make(chan struct{})}
		}
	}
	done := make(chan struct{})
	ctxDone := ctx.Done()
	var aborted, anyCancelled atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(items) || aborted.Load() || ctx.Err() != nil {
					return
				}
				st := states[i]
				if st == nil {
					continue
				}
				st.started.Store(true)
				// Recover panics from the builder or the engine into a
				// per-subtree error: the walk over the other roots keeps
				// going and the sequencer retries the loss. (Panics inside
				// spawned PROCESS goroutines are protocol bugs the runner
				// deliberately re-raises; those still crash — only
				// harness-side panics are survivable.)
				func() {
					defer func() {
						if r := recover(); r != nil {
							st.err = fmt.Sprintf("panic: %v", r)
						}
						close(st.ch)
					}()
					en := &engine{b: wb, opts: opts, root: items[i].prefix, ctx: ctx,
						visit: func(o Outcome) bool {
							select {
							case st.ch <- o:
								return true
							case <-done:
								return false
							case <-st.abandon:
								return false
							}
						}}
					if cfg.stall > 0 {
						en.onStep = func() { st.hb.Add(1) }
					}
					en.run()
					if en.cancelled {
						anyCancelled.Store(true)
					}
					st.capped = en.capped
				}()
			}
		}()
	}

	runs := 0
	visitOK := true
	capped := false
	cancelled := false
	var failed []RootFailure

	// retry re-walks root i inline, skipping the outcomes already
	// delivered from the failed attempt — engine order is deterministic,
	// so the skip is exact. It shares the global runs/capped/visitOK/
	// cancelled accounting through the closure.
	retry := func(i, skip int) (errStr string, rootCapped bool, delivered int) {
		defer func() {
			if r := recover(); r != nil {
				errStr = fmt.Sprintf("panic: %v", r)
			}
		}()
		seen := 0
		en := &engine{b: wb, opts: opts, root: items[i].prefix, ctx: ctx,
			visit: func(o Outcome) bool {
				seen++
				if seen <= skip {
					return true
				}
				if runs >= opts.MaxRuns {
					capped = true
					return false
				}
				runs++
				delivered++
				if !visit(o) {
					visitOK = false
					return false
				}
				return true
			}}
		en.run()
		if en.cancelled {
			cancelled = true
		}
		return "", en.capped, delivered
	}

	// recvWatch receives one outcome with the stall watchdog armed: a
	// claimed root whose heartbeat freezes for cfg.stall is abandoned
	// (the worker's engine stops at its next delivery attempt) and
	// handed to retry. Unclaimed roots never trip it — waiting for a
	// busy pool is not a stall.
	recvWatch := func(st *rootState) (o Outcome, open, stalled, dead bool) {
		last := st.hb.Load()
		t := time.NewTimer(cfg.stall)
		defer t.Stop()
		for {
			select {
			case o, open = <-st.ch:
				return o, open, false, false
			case <-ctxDone:
				return Outcome{}, false, false, true
			case <-t.C:
				if !st.started.Load() {
					t.Reset(cfg.stall)
					continue
				}
				if cur := st.hb.Load(); cur != last {
					last = cur
					t.Reset(cfg.stall)
					continue
				}
				cfg.stats.Requeues.Add(1)
				close(st.abandon)
				return Outcome{}, false, true, false
			}
		}
	}

deliver:
	for i, it := range items {
		st := states[i]
		if st == nil {
			if ctx.Err() != nil {
				cancelled = true
				break deliver
			}
			if runs >= opts.MaxRuns {
				capped = true
				break deliver
			}
			runs++
			if !visit(*it.leaf) {
				visitOK = false
				break deliver
			}
			continue
		}
		delivered := 0
		stalled := false
	recvLoop:
		for {
			var o Outcome
			var open bool
			if cfg.stall > 0 {
				var dead bool
				o, open, stalled, dead = recvWatch(st)
				if dead {
					cancelled = true
					break deliver
				}
				if stalled {
					break recvLoop
				}
			} else {
				select {
				case o, open = <-st.ch:
				case <-ctxDone:
					cancelled = true
					break deliver
				}
			}
			if !open {
				break recvLoop
			}
			if runs >= opts.MaxRuns {
				capped = true
				break deliver
			}
			runs++
			delivered++
			if !visit(o) {
				visitOK = false
				break deliver
			}
		}
		// Root stream ended: classify, then retry failures inline. After
		// a stall the worker may still be wedged, so its capped/err
		// fields are off-limits — the retry recomputes them.
		var errStr string
		rootCapped := false
		if stalled {
			errStr = fmt.Sprintf("stalled: no heartbeat progress for %v", cfg.stall)
		} else {
			errStr = st.err
			rootCapped = st.capped
		}
		attempt := 1
		for errStr != "" && attempt < cfg.maxAttempts {
			if !sleepCtx(ctx, cfg.backoff(i, attempt+1)) {
				cancelled = true
				break deliver
			}
			attempt++
			cfg.stats.Attempts.Add(1)
			cfg.stats.Retries.Add(1)
			var d int
			errStr, rootCapped, d = retry(i, delivered)
			delivered += d
			if capped || !visitOK || cancelled {
				break deliver
			}
		}
		if errStr != "" {
			cfg.stats.Failed.Add(1)
			failed = append(failed, RootFailure{Prefix: items[i].prefix, Attempts: attempt, Err: errStr})
			continue
		}
		if rootCapped {
			// The worker hit MaxRuns inside this subtree, so the global
			// count has too: report the truncation.
			capped = true
			break deliver
		}
	}
	aborted.Store(true)
	close(done)
	wg.Wait()
	cancelled = cancelled || anyCancelled.Load()
	exhaustive := visitOK && !capped && len(failed) == 0 && !cancelled
	return runs, exhaustive, failed, cancelled
}
