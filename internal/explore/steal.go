package explore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"repro/internal/sim"
)

// Work-stealing parallel pruned census. The frontier split hands each
// worker pool a starting queue of subtree roots, but fixed roots load-
// balance badly: pruning makes subtree costs wildly uneven (a root
// whose state was already tabled is nearly free), so some workers
// drain their share early and idle. Here an idle pool instead makes
// busy workers DONATE: when the shared queue runs dry and a worker
// goes hungry, each busy engine, at its next backtrack, splits off
// every untried child of its shallowest open frame as new queue items
// and keeps walking its current branch.
//
// Exactly-once accounting under donation, retry and stall-requeue:
//
//   - Every queue item is resolved exactly once (first completing
//     CURRENT-generation attempt wins; the generation counter bumps on
//     every claim, and a stale straggler's result is discarded even if
//     complete — unlike plain supervised roots, a stale attempt is NOT
//     interchangeable with the live one, because the live one may have
//     donated children the straggler would count itself).
//   - A donation is logged in the item's skip set (keyed by the
//     donated child's schedule prefix) before the child is enqueued.
//     Later attempts of the donor item consult the log and excise
//     exactly those children, so a retried donor and the donated items
//     partition the donor's subtree — no overlap, no gap.
//   - Donated-from frames (and their ancestors) are poisoned against
//     transposition-table publication: their accumulators no longer
//     cover their keys. Deeper frames still publish normally. A
//     retried donor attempt re-establishes the same poison: every node
//     it visits that is a proper ancestor of a donated prefix (see
//     stealItem.shadows) neither takes table hits — a hit would credit
//     the donated children a second time, on top of the items that
//     walk them — nor publishes, and the skip branch of
//     engine.backtrack re-poisons the open frames when it excises a
//     child.
//
// Census counts are bit-identical to the sequential pruned walk
// because summaries are merged by integer addition (order-free) and
// the table only ever serves fully-explored, immutable summaries; see
// DESIGN.md "Concurrent table publication".
type stealItem struct {
	pool   *stealPool
	idx    int // creation sequence; only feeds backoff jitter
	prefix []Choice
	donor  int // worker that donated it; -1 for frontier roots

	// Guarded by pool.mu.
	attempts int             // claims so far (budgeted by cfg.maxAttempts)
	current  int             // generation of the live attempt
	done     bool            // resolved (merged or failed)
	queued   bool            // currently sitting in pool.queue
	skip     map[string]bool // donation log: child prefixes excised from this item
	skipSeqs [][]Choice      // the same donated prefixes as schedules, for shadows
}

// skips reports whether the child prefix key was donated away by an
// earlier attempt of this item. Called from engine.backtrack only when
// the item's skip set is known to be non-empty.
func (it *stealItem) skips(key string) bool {
	it.pool.mu.Lock()
	ok := it.skip[key]
	it.pool.mu.Unlock()
	return ok
}

// shadows reports whether the node at schedule prefix root+path is a
// proper ancestor of a donated child of this item: its subtree
// contains runs that separately-enqueued items count, so a retried
// donor attempt must neither credit a table hit for the node (the
// stored summary covers the donated children too) nor publish it (its
// own accumulator will lose them to skip excision). Only consulted on
// retried attempts with a non-empty donation log.
func (it *stealItem) shadows(root, path []Choice) bool {
	n := len(root) + len(path)
	it.pool.mu.Lock()
	defer it.pool.mu.Unlock()
seqs:
	for _, k := range it.skipSeqs {
		if len(k) <= n {
			continue
		}
		for i, c := range root {
			if k[i] != c {
				continue seqs
			}
		}
		for i, c := range path {
			if k[len(root)+i] != c {
				continue seqs
			}
		}
		return true
	}
	return false
}

// shadowsChild is shadows for the child node root+path+c without
// materializing the extended slice: consulted by the sleep-set credit
// path (engine.creditChild), where the child in question was never
// descended into, so no frame carries it. Exact equality with a donated
// prefix is impossible here — backtrack's skips() check excised that
// case before crediting was attempted — so only proper ancestry is
// tested, like shadows.
func (it *stealItem) shadowsChild(root, path []Choice, c Choice) bool {
	n := len(root) + len(path) + 1
	it.pool.mu.Lock()
	defer it.pool.mu.Unlock()
seqs:
	for _, k := range it.skipSeqs {
		if len(k) <= n {
			continue
		}
		for i, ch := range root {
			if k[i] != ch {
				continue seqs
			}
		}
		for i, ch := range path {
			if k[len(root)+i] != ch {
				continue seqs
			}
		}
		if k[n-1] != c {
			continue
		}
		return true
	}
	return false
}

// stealClaim is one in-flight attempt, tracked for the stall watchdog.
type stealClaim struct {
	it     *stealItem
	cancel context.CancelFunc
	hb     atomic.Int64
	last   int64
	lastAt time.Time
	gone   bool
}

type stealPool struct {
	ctx   context.Context
	cfg   *supCfg
	b     Builder // chaos-wrapped worker-side builder
	opts  Options
	check func(*sim.Result) error
	table *pruneTable

	mu          sync.Mutex
	cond        *sync.Cond
	queue       []*stealItem
	outstanding int // unresolved items (queued, claimed or donated)
	waiting     int // workers parked on an empty queue
	itemSeq     int
	shutdown    bool // ctx cancelled: workers drain out
	total       *summary
	capped      bool
	failed      []RootFailure
	claims      map[*stealClaim]struct{}
	nextWorker  int

	// hungryFlag mirrors (waiting > 0 && queue empty) for lock-free
	// polling from engine backtracks.
	hungryFlag atomic.Bool

	donations atomic.Uint64
	steals    atomic.Uint64

	wg       sync.WaitGroup
	finished chan struct{}
	finOnce  sync.Once
}

// stealCensus runs the shared-table pruned census over the frontier
// items on a work-stealing pool and assembles the Census. With
// symmetry resolved, the frontier is orbit-partitioned first: only one
// representative per symmetry orbit is enqueued, and its twins are
// credited from the table after the pool drains (orbit.go).
func stealCensus(b Builder, opts Options, check func(*sim.Result) error, table *pruneTable, items []frontierItem, workers int) *Census {
	cfg := opts.supervise()
	p := &stealPool{
		ctx: opts.ctx(), cfg: cfg, b: cfg.wrapChaos(b), opts: opts,
		check: check, table: table, total: newSummary(),
		claims: make(map[*stealClaim]struct{}), finished: make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	var orbit *orbitInfo
	if opts.canon != nil {
		orbit = orbitPartition(b, opts, items)
	}
	for i, it := range items {
		if it.prefix == nil {
			p.total.addTerminal(*it.leaf, check)
			continue
		}
		if orbit != nil && orbit.rep[i] != i {
			continue // symmetric twin: credited from its representative after the drain
		}
		p.queue = append(p.queue, &stealItem{pool: p, idx: p.itemSeq, prefix: it.prefix, donor: -1, queued: true})
		p.itemSeq++
	}
	p.outstanding = len(p.queue)
	if p.outstanding > 0 {
		p.nextWorker = workers
		for w := 0; w < workers; w++ {
			p.wg.Add(1)
			go p.worker(w)
		}
		if cfg.stall > 0 {
			p.wg.Add(1)
			go p.watchdog()
		}
		// Wake parked workers if the context dies while the queue is dry.
		go func() {
			select {
			case <-p.ctx.Done():
				p.mu.Lock()
				p.shutdown = true
				p.cond.Broadcast()
				p.mu.Unlock()
			case <-p.finished:
			}
		}()
		p.wg.Wait()
		p.finish()
	}

	p.mu.Lock()
	cancelled := p.outstanding > 0
	p.mu.Unlock()

	var orbitSkips uint64
	if orbit != nil && !cancelled {
		orbitSkips, cancelled = p.creditTwins(items, orbit)
	}

	p.mu.Lock()
	failed := p.failed
	capped := p.capped
	p.mu.Unlock()
	exhaustive := !cancelled && !capped && len(failed) == 0
	c := censusFrom(p.total, exhaustive)
	c.FailedRoots = failed
	c.Errors = failureStrings(failed)
	c.Cancelled = cancelled
	st := table.statsSnapshot()
	st.Donations = p.donations.Load()
	st.Steals = p.steals.Load()
	st.OrbitSkips = orbitSkips
	opts.markReducers(st)
	c.Prune = st
	return c
}

// creditTwins settles the orbit twins after the pool has drained. The
// normal path is a table lookup: the representative's fully explored
// root subtree was published under the shared canonical key, and the
// twin merges it renamed into its own orientation — the identical
// translation a table hit at the twin's root node performs, so counts
// are bit-identical to enqueuing the twin. When the entry is missing
// (the rep's root frame was poisoned by a donation, evicted, or its
// item failed) the twin falls back to a direct exploration with the
// supervisor's retry budget — partitioning degrades, counts never do.
// It returns how many twins were credited without exploration and
// whether the context cancelled the settling mid-way.
func (p *stealPool) creditTwins(items []frontierItem, orbit *orbitInfo) (skips uint64, cancelled bool) {
	for i, it := range items {
		if it.prefix == nil || orbit.rep[i] == i {
			continue
		}
		if p.ctx.Err() != nil {
			return skips, true
		}
		if s, hit := p.table.get(orbit.key[i]); hit {
			p.total.mergeRenamed(s, orbitRenamer(p.opts.canon, orbit.perm[i]))
			if orbit.perm[i] != 0 {
				p.table.symHits.Add(1)
			}
			if s.complete+s.incomplete >= p.opts.MaxRuns {
				p.capped = true
			}
			skips++
			continue
		}
		if p.exploreTwin(i, it.prefix) {
			return skips, true
		}
	}
	return skips, false
}

// exploreTwin is creditTwins' fallback: walk the twin's subtree on the
// calling goroutine, sharing the transposition table, with the
// supervisor's retry-with-backoff policy. Reports whether the context
// cancelled the attempt.
func (p *stealPool) exploreTwin(idx int, prefix []Choice) (cancelled bool) {
	var msg string
	for att := 1; att <= p.cfg.maxAttempts; att++ {
		p.cfg.stats.Attempts.Add(1)
		if att > 1 {
			p.cfg.stats.Retries.Add(1)
			if !sleepCtx(p.ctx, p.cfg.backoff(idx, att)) {
				return true
			}
		}
		en := &engine{
			b: p.b, opts: p.opts, acc: newSummary(), check: p.check,
			table: p.table, root: prefix, ctx: p.ctx,
		}
		msg = runRecovering(en)
		if msg == "" {
			if en.cancelled {
				return true
			}
			p.total.merge(en.acc)
			if en.capped {
				p.capped = true
			}
			return false
		}
	}
	p.cfg.stats.Failed.Add(1)
	p.failed = append(p.failed, RootFailure{Prefix: prefix, Attempts: p.cfg.maxAttempts, Err: msg})
	return false
}

func (p *stealPool) finish() { p.finOnce.Do(func() { close(p.finished) }) }

// stealForceHungry (tests only, set before the census starts) makes
// every pool report hungry, forcing a donation at every backtrack —
// maximal stealing churn for the bit-identity cross-checks.
var stealForceHungry bool

// hungry reports that some worker is parked on an empty queue — the
// cue for busy engines to donate at their next backtrack.
func (p *stealPool) hungry() bool { return stealForceHungry || p.hungryFlag.Load() }

// updateHungry recomputes the flag; callers hold p.mu.
func (p *stealPool) updateHungry() {
	p.hungryFlag.Store(p.waiting > 0 && len(p.queue) == 0 && p.outstanding > 0)
}

// next claims the next live item, blocking while the queue is empty
// but work is still outstanding (donations may refill it). nil means
// drained or cancelled.
func (p *stealPool) next(workerID int) *stealItem {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.shutdown || p.outstanding == 0 {
			return nil
		}
		// LIFO: donated items are deepest and hottest in the shared table.
		for n := len(p.queue); n > 0; n = len(p.queue) {
			it := p.queue[n-1]
			p.queue = p.queue[:n-1]
			it.queued = false
			p.updateHungry()
			if it.done {
				continue // stale requeue of a since-resolved item
			}
			it.attempts++
			it.current++
			if it.donor >= 0 && it.donor != workerID {
				p.steals.Add(1)
			}
			return it
		}
		p.waiting++
		p.updateHungry()
		p.cond.Wait()
		p.waiting--
		p.updateHungry()
	}
}

func (p *stealPool) worker(id int) {
	defer p.wg.Done()
	for {
		it := p.next(id)
		if it == nil {
			return
		}
		p.attempt(id, it)
	}
}

// attempt explores one item once. Panics become retries (with the
// supervisor's backoff) up to the attempt budget, then a RootFailure.
func (p *stealPool) attempt(workerID int, it *stealItem) {
	p.mu.Lock()
	gen := it.current
	att := it.attempts
	hasSkips := len(it.skip) > 0
	p.mu.Unlock()
	p.cfg.stats.Attempts.Add(1)

	cctx, cancel := context.WithCancel(p.ctx)
	defer cancel()
	cl := &stealClaim{it: it, cancel: cancel}
	var beat func()
	if p.cfg.stall > 0 {
		beat = func() { cl.hb.Add(1) }
		p.mu.Lock()
		p.claims[cl] = struct{}{}
		p.mu.Unlock()
	}

	en := &engine{
		b: p.b, opts: p.opts, acc: newSummary(), check: p.check,
		table: p.table, root: it.prefix, ctx: cctx,
		pool: p, item: it, attempt: gen, workerID: workerID,
		skipcheck: hasSkips, onStep: beat,
	}
	panicMsg := runRecovering(en)
	if p.cfg.stall > 0 {
		// Deregister the claim before the retry path can sleep in
		// backoff: the attempt is over, and a finished claim left
		// registered would stop heartbeating and trip the watchdog
		// into a spurious requeue.
		p.mu.Lock()
		delete(p.claims, cl)
		p.mu.Unlock()
	}
	switch {
	case panicMsg != "":
		p.retryOrFail(it, gen, att, panicMsg)
	case en.cancelled:
		// Outer cancellation (shutdown drains the pool) or a watchdog
		// abandonment (the item was already requeued); either way this
		// partial walk is discarded.
	default:
		p.resolve(it, gen, en)
	}
}

// runRecovering runs the engine, converting harness-side panics (chaos
// kills, builder bugs) into an error string for the retry policy.
func runRecovering(en *engine) (panicMsg string) {
	defer func() {
		if r := recover(); r != nil {
			panicMsg = fmt.Sprintf("panic: %v", r)
		}
	}()
	en.run()
	return ""
}

// resolve merges a completed attempt, first CURRENT-generation
// completion wins: a straggler from a superseded generation is
// discarded because the live generation may have donated children the
// straggler walked itself.
func (p *stealPool) resolve(it *stealItem, gen int, en *engine) {
	p.mu.Lock()
	if it.done || it.current != gen {
		p.mu.Unlock()
		return
	}
	it.done = true
	p.total.merge(en.acc)
	if en.capped {
		p.capped = true
	}
	p.settleLocked(it)
	p.mu.Unlock()
}

// settleLocked finishes bookkeeping for a resolved (merged or failed)
// item; callers hold p.mu.
func (p *stealPool) settleLocked(it *stealItem) {
	p.outstanding--
	for cl := range p.claims {
		if cl.it == it {
			cl.cancel()
		}
	}
	p.updateHungry()
	p.cond.Broadcast()
	if p.outstanding == 0 {
		p.finish()
	}
}

// retryOrFail handles a panicked attempt of generation gen: requeue
// with backoff while the budget lasts, otherwise settle the item as
// failed. Like resolve, it is a no-op for a superseded generation:
// after a watchdog requeue has handed the item to a newer claim, the
// stale straggler's panic must neither requeue the item a second time
// nor burn it to a RootFailure out from under the live attempt (which
// would discard that attempt's imminent result and drop the subtree
// from the census).
func (p *stealPool) retryOrFail(it *stealItem, gen, att int, msg string) {
	p.mu.Lock()
	if it.done || it.current != gen {
		p.mu.Unlock()
		return
	}
	if it.attempts >= p.cfg.maxAttempts {
		p.cfg.stats.Failed.Add(1)
		it.done = true
		p.failed = append(p.failed, RootFailure{Prefix: it.prefix, Attempts: it.attempts, Err: msg})
		p.settleLocked(it)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	p.cfg.stats.Retries.Add(1)
	if !sleepCtx(p.ctx, p.cfg.backoff(it.idx, att+1)) {
		return
	}
	p.mu.Lock()
	// Re-check after the sleep: the watchdog may have requeued the item
	// already (queued), or a newer claim may own it now (current).
	if !it.done && it.current == gen && !it.queued {
		it.queued = true
		p.queue = append(p.queue, it)
		p.updateHungry()
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// donateFrom splits off every untried child of frame f (at the given
// depth of en's walk) as new queue items, logging each in the item's
// skip set first. It reports whether the frame's remaining children
// are now excised from this walk — false only when the attempt lost
// currency (superseded or resolved), in which case the walk continues
// unchanged and its result will be discarded at resolve.
func (p *stealPool) donateFrom(en *engine, depth int, f *frame) bool {
	it := en.item
	p.mu.Lock()
	defer p.mu.Unlock()
	if it.done || it.current != en.attempt || p.shutdown {
		return false
	}
	count := en.childCount(f)
	if f.next >= count {
		return false
	}
	donated := 0
	for idx := f.next; idx < count; idx++ {
		c := en.childChoice(f, idx)
		prefix := make([]Choice, 0, len(en.root)+depth+1)
		prefix = append(prefix, en.root...)
		prefix = append(prefix, en.path[:depth]...)
		prefix = append(prefix, c)
		key := FormatSchedule(prefix)
		if it.skip[key] {
			continue // already excised by an earlier attempt's donation
		}
		if it.skip == nil {
			it.skip = make(map[string]bool)
		}
		it.skip[key] = true
		it.skipSeqs = append(it.skipSeqs, prefix)
		p.queue = append(p.queue, &stealItem{pool: p, idx: p.itemSeq, prefix: prefix, donor: en.workerID, queued: true})
		p.itemSeq++
		p.outstanding++
		donated++
	}
	en.skipcheck = true
	if donated > 0 {
		p.donations.Add(uint64(donated))
		p.updateHungry()
		p.cond.Broadcast()
	}
	return true
}

// watchdog requeues items whose claimed attempt stopped heartbeating,
// spawning a replacement worker so a wedged goroutine cannot shrink
// the pool; an item out of attempts is settled as failed so the pool
// still drains.
func (p *stealPool) watchdog() {
	defer p.wg.Done()
	tick := p.cfg.stall / 4
	if tick <= 0 {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-p.finished:
			return
		case <-p.ctx.Done():
			return
		case now := <-t.C:
			p.mu.Lock()
			for cl := range p.claims {
				if cl.gone {
					continue
				}
				if v := cl.hb.Load(); cl.lastAt.IsZero() || v != cl.last {
					cl.last, cl.lastAt = v, now
					continue
				}
				if now.Sub(cl.lastAt) < p.cfg.stall {
					continue
				}
				cl.gone = true
				cl.cancel()
				it := cl.it
				if it.done {
					continue
				}
				if it.attempts < p.cfg.maxAttempts {
					if !it.queued {
						p.cfg.stats.Requeues.Add(1)
						it.queued = true
						p.queue = append(p.queue, it)
						p.updateHungry()
						p.cond.Broadcast()
						p.wg.Add(1)
						id := p.nextWorker
						p.nextWorker++
						go p.worker(id)
					}
				} else {
					p.cfg.stats.Failed.Add(1)
					it.done = true
					p.failed = append(p.failed, RootFailure{
						Prefix:   it.prefix,
						Attempts: it.attempts,
						Err:      fmt.Sprintf("stalled: no heartbeat progress for %v", p.cfg.stall),
					})
					p.settleLocked(it)
				}
			}
			p.mu.Unlock()
		}
	}
}
