package explore

import "testing"

// ForceDonation re-exports the forced-donation chaos hook for
// package explore_test cross-checks: those tests import the protocol
// packages (election, consensus), which import explore, so they cannot
// live in package explore without an import cycle.
func ForceDonation(t *testing.T) {
	t.Helper()
	forceDonation(t)
}
