package explore_test

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/election"
	"repro/internal/explore"
	"repro/internal/objects"
	"repro/internal/sim"
)

func assertCensusEqual(t *testing.T, label string, got, want *explore.Census) {
	t.Helper()
	if got.Complete != want.Complete || got.Incomplete != want.Incomplete ||
		got.ViolationRuns != want.ViolationRuns || got.Exhaustive != want.Exhaustive {
		t.Fatalf("%s: census %d/%d viol=%d ex=%v, want %d/%d viol=%d ex=%v",
			label, got.Complete, got.Incomplete, got.ViolationRuns, got.Exhaustive,
			want.Complete, want.Incomplete, want.ViolationRuns, want.Exhaustive)
	}
	if len(got.Outcomes) != len(want.Outcomes) {
		t.Fatalf("%s: outcome histogram %v, want %v", label, got.Outcomes, want.Outcomes)
	}
	for k, v := range want.Outcomes {
		if got.Outcomes[k] != v {
			t.Fatalf("%s: outcome histogram %v, want %v", label, got.Outcomes, want.Outcomes)
		}
	}
	if (len(got.Violations) == 0) != (len(want.Violations) == 0) {
		t.Fatalf("%s: recorded %d violation reps, want %d", label, len(got.Violations), len(want.Violations))
	}
}

// TestReducedCensusMatchesUnreduced is the fast-tier soundness smoke
// for the schedule-space reducers: symmetry folding and sleep-set table
// credit must leave every census number bit-identical to the plain
// unpruned walk — on both election families and CAS consensus,
// sequentially and under forced-donation work stealing. It also pins
// the perf claim's direction: symmetry must strictly cut table probes
// on these fully symmetric protocols.
func TestReducedCensusMatchesUnreduced(t *testing.T) {
	explore.ForceDonation(t)
	protocols := []struct {
		name string
		run  func(tunes ...explore.Tune) *explore.Census
	}{
		{"election-direct-cas", func(tunes ...explore.Tune) *explore.Census {
			return election.CensusDirect(4, 3, 0, tunes...)
		}},
		{"election-direct-rmw", func(tunes ...explore.Tune) *explore.Census {
			return election.CensusRMW(4, 3, 0, tunes...)
		}},
		{"consensus-cas", func(tunes ...explore.Tune) *explore.Census {
			return consensus.CensusCAS(3, 2, 0, tunes...)
		}},
		{"consensus-tas", func(tunes ...explore.Tune) *explore.Census {
			return consensus.CensusTAS(0, tunes...)
		}},
		{"consensus-queue", func(tunes ...explore.Tune) *explore.Census {
			return consensus.CensusQueue(0, tunes...)
		}},
		{"consensus-stickybit", func(tunes ...explore.Tune) *explore.Census {
			return consensus.CensusStickyBit(3, 0, tunes...)
		}},
	}
	reducers := []struct {
		name  string
		tunes []explore.Tune
	}{
		{"symmetry", []explore.Tune{explore.WithSymmetry()}},
		{"sleepsets", []explore.Tune{explore.WithSleepSets()}},
		{"both", []explore.Tune{explore.WithSymmetry(), explore.WithSleepSets()}},
	}
	for _, p := range protocols {
		t.Run(p.name, func(t *testing.T) {
			want := p.run()                     // plain replay walk: ground truth
			plain := p.run(explore.WithPrune()) // pruning only: probe baseline
			assertCensusEqual(t, "pruned", plain, want)
			if plain.Prune == nil || plain.Prune.Probes == 0 {
				t.Fatal("pruned baseline reported no probes")
			}
			for _, r := range reducers {
				got := p.run(r.tunes...)
				assertCensusEqual(t, r.name, got, want)
				st := got.Prune
				if st == nil {
					t.Fatalf("%s: reduced census has no Prune stats", r.name)
				}
				hasSym := false
				for _, tn := range r.tunes {
					// Compare by effect, not name: symmetry runs must report
					// SymmetryOn and land hits on these symmetric protocols.
					got := explore.Options{}.With(tn)
					hasSym = hasSym || got.Symmetry
				}
				if hasSym {
					if !st.SymmetryOn {
						t.Fatalf("%s: symmetry requested but off: %q", r.name, st.SymmetryNote)
					}
					if st.SymmetryHits == 0 {
						t.Fatalf("%s: symmetry on but zero canonical hits", r.name)
					}
					if st.Probes >= plain.Prune.Probes {
						t.Fatalf("%s: %d probes, not fewer than plain pruning's %d",
							r.name, st.Probes, plain.Prune.Probes)
					}
				}
				par := p.run(append([]explore.Tune{explore.WithWorkers(4)}, r.tunes...)...)
				assertCensusEqual(t, r.name+"-workers4", par, want)
			}
		})
	}
}

// asymmetricBuilder declares full 2-process symmetry over a protocol
// that is NOT symmetric: proc 0 and proc 1 swap in different values and
// decide differently. The audit must refuse the spec.
func asymmetricBuilder() *sim.System {
	sys := sim.NewSystem()
	sw := objects.NewSwap("sw", nil)
	sys.Add(sw)
	for i := 0; i < 2; i++ {
		i := i
		sys.Spawn(func(e *sim.Env) (sim.Value, error) {
			if i == 0 {
				e.Apply1(sw, objects.OpSwap, 7)
				return 0, nil
			}
			prev := e.Apply1(sw, objects.OpSwap, 8)
			if prev == nil {
				return 1, nil
			}
			return 2, nil
		})
	}
	// Deliberately wrong: claims the procs are interchangeable with no
	// value renaming at all.
	sys.DeclareSymmetry(&sim.Symmetry{Perms: sim.FullPerms(2)})
	return sys
}

// TestSymmetryRefusesAsymmetricProtocol: a bogus symmetry declaration
// must not silently corrupt the census. The audit rejects it, the walk
// falls back to plain pruning with a diagnostic note, and the numbers
// still match the unreduced walk.
func TestSymmetryRefusesAsymmetricProtocol(t *testing.T) {
	check := func(res *sim.Result) error { return nil }
	want := explore.Run(asymmetricBuilder, explore.Options{}, check)
	got := explore.Run(asymmetricBuilder, explore.Options{Symmetry: true}, check)
	assertCensusEqual(t, "refused-symmetry", got, want)
	st := got.Prune
	if st == nil {
		t.Fatal("no Prune stats on symmetry-requested census")
	}
	if st.SymmetryOn {
		t.Fatal("audit accepted an asymmetric protocol's symmetry declaration")
	}
	if st.SymmetryNote == "" {
		t.Fatal("symmetry refusal carries no diagnostic note")
	}
	if st.SymmetryHits != 0 {
		t.Fatalf("symmetry off but %d hits recorded", st.SymmetryHits)
	}
	t.Logf("refusal note: %s", st.SymmetryNote)
}

// TestSymmetryRefusesUndeclared: requesting symmetry on a builder that
// declares no spec degrades to plain pruning with a note, never an
// error.
func TestSymmetryRefusesUndeclared(t *testing.T) {
	b := func() *sim.System {
		sys := sim.NewSystem()
		sw := objects.NewSwap("sw", nil)
		sys.Add(sw)
		sys.Spawn(func(e *sim.Env) (sim.Value, error) {
			e.Apply1(sw, objects.OpSwap, 1)
			return 0, nil
		})
		return sys
	}
	check := func(res *sim.Result) error { return nil }
	got := explore.Run(b, explore.Options{Symmetry: true}, check)
	if got.Prune == nil || got.Prune.SymmetryOn || got.Prune.SymmetryNote == "" {
		t.Fatalf("undeclared symmetry must degrade with a note, got %+v", got.Prune)
	}
}
