package explore

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

// Tests for the supervision layer: deterministic backoff, chaos-driven
// kill→resume→complete bit-identity, the stall watchdog, cooperative
// cancellation across every engine, and checkpoint durability/
// tolerance. The invariant under test throughout: supervision changes
// WHEN work happens and how failures are reported, never WHAT a
// successful census counts.

func disagreeCheck(res *sim.Result) error {
	if d := res.DistinctDecisions(); len(d) > 1 {
		return errors.New("disagreement")
	}
	return nil
}

// censusSame asserts every count a census exposes matches, including
// the full outcome histogram — "bit-identical" in the sense the
// acceptance criteria use (representative schedules are the one
// documented exception and are checked separately where relevant).
func censusSame(t *testing.T, label string, got, want *Census) {
	t.Helper()
	if got.Complete != want.Complete || got.Incomplete != want.Incomplete ||
		got.ViolationRuns != want.ViolationRuns || got.Exhaustive != want.Exhaustive {
		t.Fatalf("%s census %d/%d viol=%d ex=%v, want %d/%d viol=%d ex=%v",
			label, got.Complete, got.Incomplete, got.ViolationRuns, got.Exhaustive,
			want.Complete, want.Incomplete, want.ViolationRuns, want.Exhaustive)
	}
	if len(got.Outcomes) != len(want.Outcomes) {
		t.Fatalf("%s outcome histogram has %d fingerprints, want %d", label, len(got.Outcomes), len(want.Outcomes))
	}
	for k, v := range want.Outcomes {
		if got.Outcomes[k] != v {
			t.Fatalf("%s outcome %q counted %d, want %d", label, k, got.Outcomes[k], v)
		}
	}
}

// TestBackoffDeterministic: the retry backoff must be reproducible from
// the seed, stay inside the exponential envelope [d/2, d] with
// d = min(base<<(attempt-2), max), and actually vary with the seed.
func TestBackoffDeterministic(t *testing.T) {
	mk := func(seed int64) *supCfg {
		o := Options{Supervision: &Supervise{
			Seed:        seed,
			BackoffBase: 10 * time.Millisecond,
			BackoffMax:  80 * time.Millisecond,
		}}
		return o.supervise()
	}
	a, b := mk(42), mk(42)
	for root := 0; root < 5; root++ {
		for attempt := 2; attempt <= 7; attempt++ {
			d1, d2 := a.backoff(root, attempt), b.backoff(root, attempt)
			if d1 != d2 {
				t.Fatalf("same seed, root %d attempt %d: %v vs %v", root, attempt, d1, d2)
			}
			env := 10 * time.Millisecond << (attempt - 2)
			if env > 80*time.Millisecond {
				env = 80 * time.Millisecond
			}
			if d1 < env/2 || d1 > env {
				t.Fatalf("root %d attempt %d: backoff %v outside [%v, %v]", root, attempt, d1, env/2, env)
			}
		}
	}
	c := mk(43)
	same := true
	for attempt := 2; attempt <= 7; attempt++ {
		if c.backoff(1, attempt) != a.backoff(1, attempt) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter at every attempt")
	}
}

// TestChaosKillResumeBitIdentical is the chaos acceptance test: under
// seeded random worker kills and stalls, a checkpointed census killed
// mid-run and then resumed (still under chaos) must land on a census
// bit-identical to an uninterrupted sequential run, with the
// supervisor visibly doing its job (kills injected, retries performed).
func TestChaosKillResumeBitIdentical(t *testing.T) {
	baseline := Run(wideTree, Options{MaxCrashes: 1}.withDefaults(), disagreeCheck)
	if !baseline.Exhaustive || baseline.ViolationRuns == 0 {
		t.Fatalf("sequential baseline broken: %+v", baseline)
	}
	var stats SuperviseStats
	opts := Options{MaxCrashes: 1, Workers: 4}.withDefaults()
	opts.Supervision = &Supervise{
		MaxAttempts:  10,
		BackoffBase:  time.Microsecond,
		BackoffMax:   time.Millisecond,
		Seed:         1,
		StallTimeout: 25 * time.Millisecond,
		Chaos: &ChaosPlan{
			Seed:      7,
			KillRate:  1,
			MaxKills:  6,
			StallRate: 1,
			MaxStalls: 2,
			StallFor:  80 * time.Millisecond,
		},
		Stats: &stats,
	}
	path := filepath.Join(t.TempDir(), "chaos.json")

	// Phase 1: the run is killed after 4 roots, mid-chaos.
	_, killStats, err := RunCheckpointed(wideTree, opts, disagreeCheck, Checkpoint{
		Path: path, Every: 1, stopAfterRoots: 4,
	})
	if err != errStopped {
		t.Fatalf("killed run returned err=%v, want errStopped", err)
	}
	if killStats.Saves == 0 {
		t.Fatal("killed run saved no checkpoint")
	}

	// Phase 2: resume under a fresh chaos budget and run to completion.
	resumed, resStats, err := RunCheckpointed(wideTree, opts, disagreeCheck, Checkpoint{
		Path: path, Every: 1, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resStats.ResumedRoots == 0 {
		t.Fatal("resume credited no roots")
	}
	if resStats.Warning != "" {
		t.Fatalf("resume warned unexpectedly: %s", resStats.Warning)
	}
	censusSame(t, "kill→resume→complete", resumed, baseline)
	if resumed.Cancelled || len(resumed.Errors) != 0 {
		t.Fatalf("healed census reports cancelled=%v errors=%v", resumed.Cancelled, resumed.Errors)
	}
	if stats.Kills.Load() == 0 {
		t.Fatal("chaos injected no kills")
	}
	if stats.Retries.Load() == 0 {
		t.Fatal("supervisor performed no retries despite injected kills")
	}
}

// TestWatchdogStallRequeue: with chaos stalling every worker's first
// probe well past the watchdog timeout, the watchdog must requeue the
// stalled roots — and the healed census must still be exact.
func TestWatchdogStallRequeue(t *testing.T) {
	want := Run(wideTree, Options{}.withDefaults(), nil)
	var stats SuperviseStats
	sup := Supervise{
		MaxAttempts:  5,
		BackoffBase:  time.Microsecond,
		BackoffMax:   time.Microsecond,
		StallTimeout: 20 * time.Millisecond,
		Chaos: &ChaosPlan{
			Seed:      3,
			StallRate: 1,
			MaxStalls: 4, // every worker's first probe stalls
			StallFor:  150 * time.Millisecond,
		},
		Stats: &stats,
	}
	got := Run(wideTree, Options{Workers: 4, Prune: true}.withDefaults().With(WithSupervision(sup)), nil)
	censusSame(t, "watchdog-healed", got, want)
	if len(got.Errors) != 0 {
		t.Fatalf("healed census has errors: %v", got.Errors)
	}
	if stats.Stalls.Load() == 0 {
		t.Fatal("chaos injected no stalls")
	}
	if stats.Requeues.Load() == 0 {
		t.Fatal("watchdog requeued nothing despite injected stalls")
	}
}

// TestParallelVisitSupervised: the streamed walk must deliver the exact
// sequential outcome order through both recovery paths — a killed root
// (sequencer retries with the delivered prefix skipped) and a stalled
// root (sequencer watchdog abandons and re-walks inline).
func TestParallelVisitSupervised(t *testing.T) {
	var want []string
	Visit(wideTree, Options{}.withDefaults(), func(o Outcome) bool {
		want = append(want, FormatSchedule(o.Schedule))
		return true
	})
	base := Options{Workers: 4}.withDefaults()
	var fc atomic.Int64
	if _, ok := frontier(countingBuilder(wideTree, &fc, 0), base, base.workerCount()); !ok {
		t.Fatal("frontier capped unexpectedly")
	}

	t.Run("kill-retry", func(t *testing.T) {
		var stats SuperviseStats
		var calls atomic.Int64
		opts := base.With(fastRetries(3, &stats))
		var got []string
		runs, exhaustive := Visit(countingBuilder(wideTree, &calls, fc.Load()+1), opts, func(o Outcome) bool {
			got = append(got, FormatSchedule(o.Schedule))
			return true
		})
		if !exhaustive || runs != len(want) {
			t.Fatalf("runs=%d exhaustive=%v, want %d exhaustive", runs, exhaustive, len(want))
		}
		if stats.Retries.Load() == 0 {
			t.Fatal("no sequencer retry recorded")
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("outcome %d = %s, sequential order %s", i, got[i], want[i])
			}
		}
	})

	t.Run("stall-retry", func(t *testing.T) {
		var stats SuperviseStats
		opts := base.With(WithSupervision(Supervise{
			MaxAttempts:  5,
			BackoffBase:  time.Microsecond,
			BackoffMax:   time.Microsecond,
			StallTimeout: 20 * time.Millisecond,
			Chaos: &ChaosPlan{
				Seed:      9,
				StallRate: 1,
				MaxStalls: 4,
				StallFor:  150 * time.Millisecond,
			},
			Stats: &stats,
		}))
		var got []string
		runs, exhaustive := Visit(wideTree, opts, func(o Outcome) bool {
			got = append(got, FormatSchedule(o.Schedule))
			return true
		})
		if !exhaustive || runs != len(want) {
			t.Fatalf("runs=%d exhaustive=%v, want %d exhaustive", runs, exhaustive, len(want))
		}
		if stats.Requeues.Load() == 0 {
			t.Fatal("sequencer watchdog abandoned nothing despite injected stalls")
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("outcome %d = %s, sequential order %s", i, got[i], want[i])
			}
		}
	})
}

// TestCancelMidRun: a context cancelled mid-walk must stop every engine
// variant promptly, with Census.Cancelled set, Exhaustive false, and
// all already-delivered counts real (bounded above by the baseline).
func TestCancelMidRun(t *testing.T) {
	baseline := Run(wideTree, Options{MaxCrashes: 1}.withDefaults(), nil)
	for _, tc := range []struct {
		name string
		opts Options
		// cancel after this many check calls. Pruned walks call check
		// only on a subtree's FIRST exploration (credits are silent), so
		// they must cancel on the first call to still be mid-walk.
		after int64
		// pruned-parallel merges at root granularity; cancelling on the
		// first check can land before any root resolves, so zero counts
		// are legitimate there.
		wantProgress bool
	}{
		{name: "sequential", opts: Options{MaxCrashes: 1}, after: 50, wantProgress: true},
		{name: "parallel", opts: Options{MaxCrashes: 1, Workers: 4}, after: 50, wantProgress: true},
		{name: "pruned-sequential", opts: Options{MaxCrashes: 1, Prune: true}, after: 1, wantProgress: true},
		{name: "pruned-parallel", opts: Options{MaxCrashes: 1, Prune: true, Workers: 4}, after: 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var seen atomic.Int64
			check := func(*sim.Result) error {
				if seen.Add(1) == tc.after {
					cancel()
				}
				return nil
			}
			opts := tc.opts.withDefaults()
			opts.Context = ctx
			got := Run(wideTree, opts, check)
			if !got.Cancelled {
				t.Fatal("census not marked cancelled")
			}
			if got.Exhaustive {
				t.Fatal("cancelled census claims exhaustiveness")
			}
			if tc.wantProgress && got.Complete == 0 {
				t.Fatal("cancelled census counted nothing; cancellation should be cooperative, not immediate")
			}
			if got.Complete >= baseline.Complete {
				t.Fatalf("cancelled census counted %d complete runs, baseline %d", got.Complete, baseline.Complete)
			}
		})
	}
}

// TestCancelCheckpointResumeBitIdentical: cancelling a checkpointed run
// mid-flight must leave a loadable checkpoint whose resume completes to
// the bit-identical census — the graceful-shutdown contract SIGINT
// relies on.
func TestCancelCheckpointResumeBitIdentical(t *testing.T) {
	baseline := Run(wideTree, Options{MaxCrashes: 1}.withDefaults(), disagreeCheck)
	path := filepath.Join(t.TempDir(), "cancel.json")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int64
	half := int64(baseline.Complete / 2)
	checkCancel := func(res *sim.Result) error {
		if seen.Add(1) == half {
			cancel()
		}
		return disagreeCheck(res)
	}
	opts := Options{MaxCrashes: 1, Workers: 4}.withDefaults()
	opts.Context = ctx
	partial, stats, err := RunCheckpointed(wideTree, opts, checkCancel, Checkpoint{Path: path, Every: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Cancelled {
		t.Fatal("cancelled checkpointed run not marked cancelled")
	}
	if stats.Saves == 0 {
		t.Fatal("cancelled run flushed no checkpoint")
	}
	if partial.Complete == 0 || partial.Complete >= baseline.Complete {
		t.Fatalf("partial census counted %d complete runs, baseline %d", partial.Complete, baseline.Complete)
	}

	fresh := Options{MaxCrashes: 1, Workers: 4}.withDefaults()
	resumed, resStats, err := RunCheckpointed(wideTree, fresh, disagreeCheck, Checkpoint{Path: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if resStats.ResumedRoots == 0 {
		t.Fatal("resume after cancellation credited no roots")
	}
	censusSame(t, "cancel→resume", resumed, baseline)
}

// TestCheckpointCorruptTolerated: resuming from a truncated, garbage,
// or mismatched checkpoint must start fresh with a warning — never
// error, never half-apply — and still produce the exact census.
func TestCheckpointCorruptTolerated(t *testing.T) {
	baseline := Run(wideTree, Options{Workers: 2}.withDefaults(), nil)
	for _, tc := range []struct {
		name    string
		payload string
		warns   bool
	}{
		{name: "truncated", payload: `{"key": 12, "done": {`, warns: true},
		{name: "garbage", payload: "not json at all", warns: true},
		{name: "empty", payload: "", warns: true},
		{name: "key-mismatch", payload: `{"key": 1, "done": {}}`, warns: true},
		{name: "missing", payload: "", warns: false}, // file removed below
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ck.json")
			if tc.name == "missing" {
				// leave the file absent
			} else if err := os.WriteFile(path, []byte(tc.payload), 0o644); err != nil {
				t.Fatal(err)
			}
			c, stats, err := RunCheckpointed(wideTree, Options{Workers: 2}.withDefaults(), nil,
				Checkpoint{Path: path, Resume: true})
			if err != nil {
				t.Fatalf("resume over %s checkpoint errored: %v", tc.name, err)
			}
			if tc.warns && stats.Warning == "" {
				t.Fatalf("%s checkpoint produced no warning", tc.name)
			}
			if !tc.warns && stats.Warning != "" {
				t.Fatalf("fresh start warned: %s", stats.Warning)
			}
			if stats.ResumedRoots != 0 {
				t.Fatalf("%s checkpoint credited %d roots", tc.name, stats.ResumedRoots)
			}
			censusSame(t, tc.name, c, baseline)
		})
	}
}

// TestCheckpointDurableWrite: saveCheckpoint must leave no temp debris
// and survive a reload round-trip (the fsync itself is not observable
// in a test, but the open→write→sync→rename path is).
func TestCheckpointDurableWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	f := &ckFile{Key: 99, Done: map[string]ckRoot{"0": {Complete: 7}}}
	if err := saveCheckpoint(path, f); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	got, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != 99 || got.Done["0"].Complete != 7 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}
