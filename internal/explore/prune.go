package explore

import (
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Transposition pruning for census exploration. Different schedule
// prefixes often reconverge to the same global state (commuting steps
// of different processes being the canonical case); once the subtree
// under a state has been fully censused, every later prefix reaching
// the same state can be credited the stored summary instead of being
// re-walked.
//
// Soundness (see DESIGN.md for the full argument): processes are
// deterministic and interact only through gated operations, so a
// process's local state is a function of its observation history, and
// the global state is (object states, per-process observation
// histories, per-process status). sim.StateHash fingerprints exactly
// that. Two nodes with equal fingerprints AND equal remaining depth AND
// equal remaining crash budget therefore root identical subtrees: the
// same choice sequences are legal below both, and each produces
// Results equal in every field a census or check can observe (decided
// values, errors, step counts, halt status). Run counts, outcome
// histograms and violation counts transfer exactly; only the recorded
// representative schedules may differ (they come from the first
// encounter). Equality is up to hash collision over a 64-bit FNV-1a —
// TestPrunedCensusMatchesUnpruned cross-checks pruned against unpruned
// censuses over the whole small-instance matrix.

// tableKey identifies a subtree: the state fingerprint plus the
// remaining exploration budgets, all of which shape the subtree. The
// object-fault budget is a key dimension exactly like the crash budget:
// two equal-fingerprint nodes with different remaining fault budgets
// root different subtrees (one can still branch faults, the other
// cannot). FaultModes is fixed per exploration, so it needs no key
// dimension.
type tableKey struct {
	fp       uint64
	depthRem int
	crashRem int
	faultRem int
}

// summary is the census of one fully explored subtree. The outcomes
// map is allocated lazily on the first complete run: most frames in a
// deep walk pop before seeing one, and engines recycle unpublished
// summaries through a freelist, so the map is both rare and reused.
type summary struct {
	complete   int
	incomplete int
	outcomes   map[string]int // complete runs by decision fingerprint
	violations int            // complete runs failing the check
	reps       []Outcome      // ≤ MaxRecordedViolations representatives
}

func newSummary() *summary {
	return &summary{}
}

// reset clears the summary for reuse, retaining the outcomes map's
// buckets. Reps are zeroed before truncation so recycled summaries do
// not pin retired Results.
func (s *summary) reset() {
	s.complete, s.incomplete, s.violations = 0, 0, 0
	clear(s.outcomes)
	for i := range s.reps {
		s.reps[i] = Outcome{}
	}
	s.reps = s.reps[:0]
}

// addTerminal classifies one terminal run into the summary. retained
// reports that the Outcome (and its Result) was stored as a violation
// representative and must stay valid — the caller's cue to stop
// recycling any scratch buffers the Result aliases.
func (s *summary) addTerminal(o Outcome, check func(*sim.Result) error) (retained bool) {
	if o.Result.Halted {
		s.incomplete++
		return false
	}
	s.complete++
	if s.outcomes == nil {
		s.outcomes = make(map[string]int)
	}
	s.outcomes[DecisionFingerprint(o.Result)]++
	if check != nil {
		if err := check(o.Result); err != nil {
			s.violations++
			if len(s.reps) < MaxRecordedViolations {
				s.reps = append(s.reps, o)
				return true
			}
		}
	}
	return false
}

// merge folds t into s. t is never mutated: published table entries are
// shared and must stay immutable.
func (s *summary) merge(t *summary) {
	s.complete += t.complete
	s.incomplete += t.incomplete
	if len(t.outcomes) > 0 && s.outcomes == nil {
		s.outcomes = make(map[string]int)
	}
	for k, v := range t.outcomes {
		s.outcomes[k] += v
	}
	s.violations += t.violations
	for _, r := range t.reps {
		if len(s.reps) >= MaxRecordedViolations {
			break
		}
		// A shared subtree's entry is credited once per hit point, so
		// its stored representative would repeat; keep distinct ones.
		if !s.hasRep(r) {
			s.reps = append(s.reps, r)
		}
	}
}

// mergeRenamed is merge with every outcome key mapped through rename —
// the translation step of symmetry-canonical table storage. A summary
// stored at canonical orientation π holds outcome keys renamed under π;
// publishing merges under π, consuming a hit merges under π⁻¹ (see
// engine.popFrame and engine.run). Counts transfer untouched; violation
// representatives keep their first-encounter schedules unrenamed,
// exactly like plain merge (the replayability contract is per-schedule,
// not per-hit-point). A nil rename degrades to plain merge.
func (s *summary) mergeRenamed(t *summary, rename func(string) string) {
	if rename == nil {
		s.merge(t)
		return
	}
	s.complete += t.complete
	s.incomplete += t.incomplete
	if len(t.outcomes) > 0 && s.outcomes == nil {
		s.outcomes = make(map[string]int)
	}
	for k, v := range t.outcomes {
		s.outcomes[rename(k)] += v
	}
	s.violations += t.violations
	for _, r := range t.reps {
		if len(s.reps) >= MaxRecordedViolations {
			break
		}
		if !s.hasRep(r) {
			s.reps = append(s.reps, r)
		}
	}
}

func (s *summary) hasRep(o Outcome) bool {
	for _, r := range s.reps {
		if schedulesEqual(r.Schedule, o.Schedule) {
			return true
		}
	}
	return false
}

func schedulesEqual(a, b []Choice) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// maxTableEntries caps the transposition table's memory when
// Options.PruneTableEntries is zero. Beyond the cap the OLDEST entries
// are evicted FIFO — an evicted subtree is simply re-walked on its next
// encounter, so pruning degrades under memory pressure but census
// counts never do. FIFO (rather than LRU) keeps get() contention-free
// under a read lock; in a DFS the oldest published subtrees are the
// deepest ones, which are also the cheapest to re-walk.
const maxTableEntries = 1 << 20

// pruneShardCount is the number of lock stripes of a full-size table.
// Keys are spread by a mixed fingerprint, so with 64 stripes the
// probability that two concurrent workers collide on a stripe lock is
// ~1/64 per access pair — the single global RWMutex this replaces was
// the measured bottleneck of the shared-table parallel census.
const pruneShardCount = 64

// PruneStats reports transposition-table and work-stealing activity of
// one pruned census, so speedups (or their absence) are attributable:
// a high hit rate with low steals means the table carried the run; a
// high donation count means the frontier partition was uneven and
// stealing did the balancing.
type PruneStats struct {
	// Hits and Misses count table lookups at decision points.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Stores counts published subtree summaries; Evictions counts
	// entries dropped by the FIFO budget.
	Stores    uint64 `json:"stores"`
	Evictions uint64 `json:"evictions"`
	// Donations counts subtrees split off mid-walk by busy workers;
	// Steals counts donated subtrees claimed by a different worker than
	// their donor. Both are zero for sequential censuses.
	Donations uint64 `json:"donations"`
	Steals    uint64 `json:"steals"`
	// Probes counts system replays (one per terminal run or table hit) —
	// the "explored executions" a schedule-space reducer is trying to
	// cut. SymmetryHits counts table hits consumed at a non-identity
	// canonical orientation (states recognized only thanks to symmetry);
	// SleepSkips counts sibling subtrees credited at backtrack time via
	// an independence pair memo, each of which saved one whole probe.
	Probes       uint64 `json:"probes,omitempty"`
	SymmetryHits uint64 `json:"symmetry_hits,omitempty"`
	SleepSkips   uint64 `json:"sleep_skips,omitempty"`
	// OrbitSkips counts frontier roots skipped at GENERATION time
	// because their state lies in the symmetry orbit of an earlier
	// root (orbit.go): each was credited its representative's summary
	// — renamed into its own orientation — without ever being enqueued
	// or explored. Zero for sequential censuses and when symmetry is
	// off.
	OrbitSkips uint64 `json:"orbit_skips,omitempty"`
	// SymmetryOn/SleepSetsOn record which reducers were ACTIVE (symmetry
	// may be refused even when requested); SymmetryNote says why it was
	// refused, empty otherwise.
	SymmetryOn   bool   `json:"symmetry_on,omitempty"`
	SleepSetsOn  bool   `json:"sleep_sets_on,omitempty"`
	SymmetryNote string `json:"symmetry_note,omitempty"`
}

// pruneShard is one lock stripe of the table.
type pruneShard struct {
	mu sync.RWMutex
	m  map[tableKey]*summary
	// order is the FIFO insertion log; entries before head are already
	// evicted. Duplicate publishes are dropped at put, so every entry
	// from head on is live in m.
	order []tableKey
	head  int
}

// pruneTable is the transposition table shared by ALL workers of a
// parallel census. Entries are only ever inserted after their subtree
// is fully explored, so concurrent workers need no in-progress marker:
// whichever worker publishes first wins (put is first-writer-wins and
// reports whether it stored), later publishers' values are
// interchangeable by the soundness argument above, and published
// summaries are immutable from that point on. The table is striped
// into pruneShardCount lock shards; a table with a small entry budget
// collapses to one shard so the FIFO eviction bound stays exact.
type pruneTable struct {
	shards   []pruneShard
	shardCap int

	hits, misses, stores, evictions atomic.Uint64
	probes, symHits, sleepSkips     atomic.Uint64
}

func newPruneTable(capacity int) *pruneTable {
	if capacity <= 0 {
		capacity = maxTableEntries
	}
	n := pruneShardCount
	if capacity < 1024 {
		// A tiny budget split 64 ways would round each shard's cap up
		// and overshoot the requested total; one shard keeps the bound
		// exact where it matters (explicit small PruneTableEntries).
		n = 1
	}
	t := &pruneTable{shards: make([]pruneShard, n), shardCap: (capacity + n - 1) / n}
	for i := range t.shards {
		t.shards[i].m = make(map[tableKey]*summary)
	}
	return t
}

// shard maps a key to its stripe: the fingerprint is already a hash,
// so mix the budget dimensions in and take high bits.
func (t *pruneTable) shard(k tableKey) *pruneShard {
	if len(t.shards) == 1 {
		return &t.shards[0]
	}
	h := k.fp ^ uint64(k.depthRem)<<1 ^ uint64(k.crashRem)<<32 ^ uint64(k.faultRem)<<48
	h *= 0x9e3779b97f4a7c15 // Fibonacci mix: budgets perturb low bits, shard index needs high ones
	return &t.shards[(h>>58)&uint64(len(t.shards)-1)]
}

func (t *pruneTable) get(k tableKey) (*summary, bool) {
	sh := t.shard(k)
	sh.mu.RLock()
	s, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		t.hits.Add(1)
	} else {
		t.misses.Add(1)
	}
	return s, ok
}

// put publishes a fully-explored subtree summary, first-writer-wins.
// It reports whether s was stored: a stored summary is owned by the
// table (shared, immutable — callers must not recycle or mutate it),
// a rejected one stays owned by the caller.
func (t *pruneTable) put(k tableKey, s *summary) bool {
	sh := t.shard(k)
	sh.mu.Lock()
	if _, ok := sh.m[k]; ok {
		sh.mu.Unlock()
		return false // concurrent worker published first; values are interchangeable
	}
	sh.m[k] = s
	sh.order = append(sh.order, k)
	evicted := 0
	for len(sh.m) > t.shardCap {
		delete(sh.m, sh.order[sh.head])
		sh.head++
		evicted++
	}
	// Compact the evicted prefix once it dominates the log, so a
	// long-running census at the cap does not grow order unboundedly.
	if sh.head > 1024 && sh.head > len(sh.order)/2 {
		sh.order = append([]tableKey(nil), sh.order[sh.head:]...)
		sh.head = 0
	}
	sh.mu.Unlock()
	t.stores.Add(1)
	if evicted > 0 {
		t.evictions.Add(uint64(evicted))
	}
	return true
}

// size reports the live entry count (tests).
func (t *pruneTable) size() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// statsSnapshot captures the table-side counters (donation counters
// are merged in by the steal pool).
func (t *pruneTable) statsSnapshot() *PruneStats {
	return &PruneStats{
		Hits:         t.hits.Load(),
		Misses:       t.misses.Load(),
		Stores:       t.stores.Load(),
		Evictions:    t.evictions.Load(),
		Probes:       t.probes.Load(),
		SymmetryHits: t.symHits.Load(),
		SleepSkips:   t.sleepSkips.Load(),
	}
}

// markReducers stamps the active-reducer flags onto a stats snapshot.
func (o Options) markReducers(st *PruneStats) {
	st.SymmetryOn = o.canon != nil
	st.SleepSetsOn = o.SleepSets
	st.SymmetryNote = o.symNote
}

func censusFrom(acc *summary, exhaustive bool) *Census {
	out := acc.outcomes
	if out == nil {
		out = make(map[string]int)
	}
	return &Census{
		Complete:      acc.complete,
		Incomplete:    acc.incomplete,
		Outcomes:      out,
		Violations:    acc.reps,
		ViolationRuns: acc.violations,
		Exhaustive:    exhaustive,
	}
}

// symmetryAuditRounds/Steps size the empirical equivariance audit run
// once per census before symmetry reduction is allowed on (see
// sim.AuditSymmetry). A handful of rotated schedules times every group
// element catches every spec mistake the test suite has produced;
// structural validation (NewCanonicalizer) catches the rest.
const (
	symmetryAuditRounds = 3
	symmetryAuditSteps  = 64
)

// resolveSymmetry turns Options.Symmetry into a working Canonicalizer,
// or off. The builder's probe system (built, never run) supplies the
// declared spec and the object shape; structural validation and the
// equivariance audit must BOTH pass, otherwise the census proceeds
// unreduced with the refusal recorded — requested-but-unsound symmetry
// is a degraded run, never a wrong one.
func resolveSymmetry(b Builder, opts Options) Options {
	if !opts.Symmetry {
		return opts
	}
	opts.Symmetry = false
	probe := b()
	spec := probe.SymmetrySpec()
	if spec == nil {
		opts.symNote = "symmetry off: builder declares no sim.Symmetry spec"
		return opts
	}
	canon, err := sim.NewCanonicalizer(probe, spec)
	if err != nil {
		opts.symNote = "symmetry off: " + err.Error()
		return opts
	}
	if err := sim.AuditSymmetry(b, canon, symmetryAuditRounds, symmetryAuditSteps); err != nil {
		opts.symNote = "symmetry off: " + err.Error()
		return opts
	}
	opts.Symmetry = true
	opts.canon = canon
	return opts
}

// pruneCensus is Run with transposition pruning, sequential or
// parallel. The parallel walk shares one striped table across all
// workers and balances load by work stealing (see steal.go): workers
// start on frontier roots and, when the queue runs dry, busy workers
// donate untried sibling subtrees mid-walk instead of letting the pool
// idle. Retry with backoff, the stall watchdog and chaos injection
// carry over from the supervisor unchanged.
func pruneCensus(b Builder, opts Options, check func(*sim.Result) error) *Census {
	opts = resolveSymmetry(b, opts)
	table := newPruneTable(opts.PruneTableEntries)
	workers := opts.workerCount()
	sequential := func() *Census {
		en := &engine{b: b, opts: opts, acc: newSummary(), check: check, table: table, ctx: opts.Context}
		en.run()
		c := censusFrom(en.acc, !en.capped && !en.cancelled)
		c.Cancelled = en.cancelled
		c.Prune = table.statsSnapshot()
		opts.markReducers(c.Prune)
		return c
	}
	if workers <= 1 {
		return sequential()
	}
	items, ok := frontier(b, opts, workers)
	if !ok {
		return sequential()
	}
	return stealCensus(b, opts, check, table, items, workers)
}
