package explore

import (
	"context"
	"sync"

	"repro/internal/sim"
)

// Transposition pruning for census exploration. Different schedule
// prefixes often reconverge to the same global state (commuting steps
// of different processes being the canonical case); once the subtree
// under a state has been fully censused, every later prefix reaching
// the same state can be credited the stored summary instead of being
// re-walked.
//
// Soundness (see DESIGN.md for the full argument): processes are
// deterministic and interact only through gated operations, so a
// process's local state is a function of its observation history, and
// the global state is (object states, per-process observation
// histories, per-process status). sim.StateHash fingerprints exactly
// that. Two nodes with equal fingerprints AND equal remaining depth AND
// equal remaining crash budget therefore root identical subtrees: the
// same choice sequences are legal below both, and each produces
// Results equal in every field a census or check can observe (decided
// values, errors, step counts, halt status). Run counts, outcome
// histograms and violation counts transfer exactly; only the recorded
// representative schedules may differ (they come from the first
// encounter). Equality is up to hash collision over a 64-bit FNV-1a —
// TestPrunedCensusMatchesUnpruned cross-checks pruned against unpruned
// censuses over the whole small-instance matrix.

// tableKey identifies a subtree: the state fingerprint plus the
// remaining exploration budgets, all of which shape the subtree. The
// object-fault budget is a key dimension exactly like the crash budget:
// two equal-fingerprint nodes with different remaining fault budgets
// root different subtrees (one can still branch faults, the other
// cannot). FaultModes is fixed per exploration, so it needs no key
// dimension.
type tableKey struct {
	fp       uint64
	depthRem int
	crashRem int
	faultRem int
}

// summary is the census of one fully explored subtree.
type summary struct {
	complete   int
	incomplete int
	outcomes   map[string]int // complete runs by decision fingerprint
	violations int            // complete runs failing the check
	reps       []Outcome      // ≤ MaxRecordedViolations representatives
}

func newSummary() *summary {
	return &summary{outcomes: make(map[string]int)}
}

// addTerminal classifies one terminal run into the summary.
func (s *summary) addTerminal(o Outcome, check func(*sim.Result) error) {
	if o.Result.Halted {
		s.incomplete++
		return
	}
	s.complete++
	s.outcomes[DecisionFingerprint(o.Result)]++
	if check != nil {
		if err := check(o.Result); err != nil {
			s.violations++
			if len(s.reps) < MaxRecordedViolations {
				s.reps = append(s.reps, o)
			}
		}
	}
}

// merge folds t into s. t is never mutated: published table entries are
// shared and must stay immutable.
func (s *summary) merge(t *summary) {
	s.complete += t.complete
	s.incomplete += t.incomplete
	for k, v := range t.outcomes {
		s.outcomes[k] += v
	}
	s.violations += t.violations
	for _, r := range t.reps {
		if len(s.reps) >= MaxRecordedViolations {
			break
		}
		// A shared subtree's entry is credited once per hit point, so
		// its stored representative would repeat; keep distinct ones.
		if !s.hasRep(r) {
			s.reps = append(s.reps, r)
		}
	}
}

func (s *summary) hasRep(o Outcome) bool {
	for _, r := range s.reps {
		if schedulesEqual(r.Schedule, o.Schedule) {
			return true
		}
	}
	return false
}

func schedulesEqual(a, b []Choice) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// maxTableEntries caps the transposition table's memory when
// Options.PruneTableEntries is zero. Beyond the cap the OLDEST entries
// are evicted FIFO — an evicted subtree is simply re-walked on its next
// encounter, so pruning degrades under memory pressure but census
// counts never do. FIFO (rather than LRU) keeps get() contention-free
// under a read lock; in a DFS the oldest published subtrees are the
// deepest ones, which are also the cheapest to re-walk.
const maxTableEntries = 1 << 20

// pruneTable is the shared transposition table. Entries are only ever
// inserted after their subtree is fully explored, so concurrent workers
// need no in-progress marker: whichever worker publishes first wins,
// and any worker's value for a key is interchangeable (summaries are
// equal in all counted fields by the soundness argument above).
type pruneTable struct {
	mu  sync.RWMutex
	m   map[tableKey]*summary
	cap int
	// order is the FIFO insertion log; entries before head are already
	// evicted. Duplicate publishes are dropped at put, so every entry
	// from head on is live in m.
	order []tableKey
	head  int
}

func newPruneTable(capacity int) *pruneTable {
	if capacity <= 0 {
		capacity = maxTableEntries
	}
	return &pruneTable{m: make(map[tableKey]*summary), cap: capacity}
}

func (t *pruneTable) get(k tableKey) (*summary, bool) {
	t.mu.RLock()
	s, ok := t.m[k]
	t.mu.RUnlock()
	return s, ok
}

func (t *pruneTable) put(k tableKey, s *summary) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.m[k]; ok {
		return // concurrent worker published first; values are interchangeable
	}
	t.m[k] = s
	t.order = append(t.order, k)
	for len(t.m) > t.cap {
		delete(t.m, t.order[t.head])
		t.head++
	}
	// Compact the evicted prefix once it dominates the log, so a
	// long-running census at the cap does not grow order unboundedly.
	if t.head > 1024 && t.head > len(t.order)/2 {
		t.order = append([]tableKey(nil), t.order[t.head:]...)
		t.head = 0
	}
}

// size reports the live entry count (tests).
func (t *pruneTable) size() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.m)
}

func censusFrom(acc *summary, exhaustive bool) *Census {
	return &Census{
		Complete:      acc.complete,
		Incomplete:    acc.incomplete,
		Outcomes:      acc.outcomes,
		Violations:    acc.reps,
		ViolationRuns: acc.violations,
		Exhaustive:    exhaustive,
	}
}

// pruneCensus is Run with transposition pruning, sequential or parallel.
// Parallel roots run under the supervisor: a panicked root is retried
// with backoff (attempts are replays into a fresh accumulator, so retry
// cannot double-count), a stalled one is requeued by the watchdog, and
// only roots that exhaust the attempt budget surface as FailedRoots.
func pruneCensus(b Builder, opts Options, check func(*sim.Result) error) *Census {
	table := newPruneTable(opts.PruneTableEntries)
	workers := opts.workerCount()
	sequential := func() *Census {
		en := &engine{b: b, opts: opts, acc: newSummary(), check: check, table: table, ctx: opts.Context}
		en.run()
		c := censusFrom(en.acc, !en.capped && !en.cancelled)
		c.Cancelled = en.cancelled
		return c
	}
	if workers <= 1 {
		return sequential()
	}
	items, ok := frontier(b, opts, workers)
	if !ok {
		return sequential()
	}
	cfg := opts.supervise()
	wb := cfg.wrapChaos(b)
	type rootOut struct {
		sum    *summary
		capped bool
	}
	task := func(ctx context.Context, i int, beat func()) (rootOut, bool) {
		en := &engine{
			b: wb, opts: opts, acc: newSummary(), check: check,
			table: table, root: items[i].prefix, ctx: ctx, onStep: beat,
		}
		en.run()
		if en.cancelled {
			return rootOut{}, true
		}
		return rootOut{en.acc, en.capped}, false
	}
	results, done, failedMap, cancelled := superviseRoots(opts.ctx(), items, workers, cfg, nil, task, nil)
	// Deterministic merge in DFS root order. Counts are exact; only the
	// ≤5 recorded representatives can vary run-to-run (they depend on
	// which worker published a shared subtree first).
	total := newSummary()
	exhaustive := !cancelled
	var failed []RootFailure
	for i, it := range items {
		if it.prefix == nil {
			total.addTerminal(*it.leaf, check)
			continue
		}
		if f, lost := failedMap[i]; lost {
			failed = append(failed, f)
			exhaustive = false
			continue
		}
		if !done[i] {
			exhaustive = false // cancelled before this root was explored
			continue
		}
		total.merge(results[i].sum)
		if results[i].capped {
			exhaustive = false
		}
	}
	c := censusFrom(total, exhaustive)
	c.FailedRoots = failed
	c.Errors = failureStrings(failed)
	c.Cancelled = cancelled
	return c
}
