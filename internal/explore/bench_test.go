package explore_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/election"
	"repro/internal/explore"
	"repro/internal/objects"
	"repro/internal/sim"
)

// The benchmark instances are the paper's Claim-row shapes: leader
// election / consensus over one compare&swap-(k) register with a crash
// budget, exactly the censuses the election and hierarchy experiments
// run at scale. Each instance is benchmarked as a full census — every
// terminal run enumerated and checked — under four engines:
//
//	replay-walker    one system execution per tree node (VisitReplay,
//	                 the original engine, kept as the §5.2 baseline)
//	path-engine      one system execution per terminal run (Visit)
//	pruned           path engine + state-fingerprint transposition
//	                 table (Run with WithPrune)
//	pruned-parallel  pruning + subtree fan-out to GOMAXPROCS workers
//
// The "runs/s" metric counts enumerated terminal runs per second of
// wall clock; for the pruned engines, pruned subtrees still credit
// their runs, so the metric is schedules *accounted for* per second —
// the quantity a census consumer cares about.
type benchInstance struct {
	name  string
	b     explore.Builder
	opts  explore.Options
	check func(*sim.Result) error
}

func electionInstance(k, n, crashes int) benchInstance {
	ids := make([]sim.Value, n)
	for i := range ids {
		ids[i] = i
	}
	spec := election.DirectSymmetric(n)
	return benchInstance{
		name: fmt.Sprintf("direct-cas/k=%d/n=%d/crashes=%d", k, n, crashes),
		b: func() *sim.System {
			sys := sim.NewSystem()
			cas := objects.NewCAS("cas", k)
			sys.Add(cas)
			for _, p := range election.DirectCAS(cas, n) {
				sys.Spawn(p)
			}
			// Only the symmetry engines consult the declaration; the
			// baseline engines run the identical system regardless.
			sys.DeclareSymmetry(spec)
			return sys
		},
		opts:  explore.Options{MaxCrashes: crashes},
		check: func(res *sim.Result) error { return election.CheckElection(res, ids) },
	}
}

// electionMachineInstance is the same election workload on the
// sim.Machine port (DirectCASMachines): System.Run auto-selects the
// direct-dispatch runner and the engines backtrack in place, so the
// gap between a machine row and its goroutine twin is the tentpole
// speedup, gated per-engine by scripts/bench_compare.sh. New rows vs a
// pre-machine base ref need the one-time BENCH_COMPARE_ALLOW_NEW=1.
func electionMachineInstance(k, n, crashes int) benchInstance {
	ids := make([]sim.Value, n)
	for i := range ids {
		ids[i] = i
	}
	spec := election.DirectSymmetric(n)
	return benchInstance{
		name: fmt.Sprintf("direct-cas-machine/k=%d/n=%d/crashes=%d", k, n, crashes),
		b: func() *sim.System {
			sys := sim.NewSystem()
			cas := objects.NewCAS("cas", k)
			sys.Add(cas)
			for _, m := range election.DirectCASMachines(cas, k, n) {
				sys.SpawnMachine(m)
			}
			sys.DeclareSymmetry(spec)
			return sys
		},
		opts:  explore.Options{MaxCrashes: crashes},
		check: func(res *sim.Result) error { return election.CheckElection(res, ids) },
	}
}

// consensusMachineInstance is the canonical symmetric CAS-consensus
// census on the machine port (CASMachines + CASSymmetric): a full
// process-permutation group over per-process announce cells plus a
// shared value-carrying register. Its symmetry-engine rows are the
// census-level evidence for the incremental canonical fingerprint
// cache — every transposition-table probe under WithSymmetry reads
// StateHashCanon, so canonical-hash cost lands in the
// bench_compare.sh >10% regression gate through these rows.
func consensusMachineInstance(k, n, crashes int) benchInstance {
	props := make([]sim.Value, n)
	for i := range props {
		props[i] = 100 + i
	}
	spec := consensus.CASSymmetric(n)
	return benchInstance{
		name: fmt.Sprintf("cas-consensus-machine/k=%d/n=%d/crashes=%d", k, n, crashes),
		b: func() *sim.System {
			sys := sim.NewSystem()
			cas := objects.NewCAS("cas", k)
			sys.Add(cas)
			for _, m := range consensus.CASMachines(sys, cas, props) {
				sys.SpawnMachine(m)
			}
			sys.DeclareSymmetry(spec)
			return sys
		},
		opts: explore.Options{MaxCrashes: crashes},
		check: func(res *sim.Result) error {
			if err := consensus.CheckAgreement(res); err != nil {
				return err
			}
			return consensus.CheckValidity(res, props)
		},
	}
}

func benchInstances() []benchInstance {
	return []benchInstance{
		electionInstance(5, 3, 1),
		electionInstance(5, 4, 0),
		electionInstance(5, 4, 1),
		electionMachineInstance(5, 4, 1),
		consensusMachineInstance(4, 3, 1),
	}
}

// censusVia runs a full checked census through one of the two visit
// engines (the non-pruning paths), mirroring what Run's legacy path
// does so the engines are compared on identical work.
func censusVia(visit func(explore.Builder, explore.Options, func(explore.Outcome) bool) (int, bool),
	in benchInstance) int {
	runs, _ := visit(in.b, in.opts, func(o explore.Outcome) bool {
		if !o.Result.Halted {
			_ = in.check(o.Result)
		}
		return true
	})
	return runs
}

func BenchmarkExplore(b *testing.B) {
	engines := []struct {
		name string
		runs func(benchInstance) int
	}{
		{"replay-walker", func(in benchInstance) int { return censusVia(explore.VisitReplay, in) }},
		{"path-engine", func(in benchInstance) int { return censusVia(explore.Visit, in) }},
		{"pruned", func(in benchInstance) int {
			c := explore.Run(in.b, in.opts.With(explore.WithPrune()), in.check)
			return c.Complete + c.Incomplete
		}},
		// Pinned to 4 workers rather than GOMAXPROCS so the shared
		// table and steal pool are exercised even on single-core hosts
		// (where -1 would resolve to 1 worker and silently bench the
		// sequential path); the cpus field in BENCH_explore.json says
		// how much genuine parallelism backed the recorded numbers.
		{"pruned-parallel", func(in benchInstance) int {
			c := explore.Run(in.b, in.opts.With(explore.WithPrune(), explore.WithWorkers(4)), in.check)
			return c.Complete + c.Incomplete
		}},
		// The reduction engines fold the schedule space before probing
		// the table: symmetry canonicalizes fingerprints under the
		// declared process permutations, sleep sets credit independent-
		// step commutations, "reduced" composes both. Counts stay
		// bit-identical (TestReducedCensusMatchesUnreduced); what drops
		// is the number of replayed executions behind each credited run.
		{"pruned-symmetry", func(in benchInstance) int {
			c := explore.Run(in.b, in.opts.With(explore.WithSymmetry()), in.check)
			return c.Complete + c.Incomplete
		}},
		{"pruned-reduced", func(in benchInstance) int {
			c := explore.Run(in.b, in.opts.With(explore.WithSymmetry(), explore.WithSleepSets()), in.check)
			return c.Complete + c.Incomplete
		}},
		{"pruned-parallel-reduced", func(in benchInstance) int {
			c := explore.Run(in.b, in.opts.With(explore.WithSymmetry(), explore.WithSleepSets(),
				explore.WithWorkers(4)), in.check)
			return c.Complete + c.Incomplete
		}},
	}
	for _, in := range benchInstances() {
		for _, eng := range engines {
			b.Run(in.name+"/"+eng.name, func(b *testing.B) {
				total := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					total += eng.runs(in)
				}
				b.StopTimer()
				if total == 0 {
					b.Fatal("census enumerated zero runs")
				}
				b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "runs/s")
			})
		}
	}
}

// BenchmarkResilience measures the supervision tax: the same parallel
// census (the BENCH_explore election workload through the streaming
// ParallelVisit path) run plain and with the supervisor fully armed —
// retry budget, deterministic backoff, and the heartbeat stall watchdog
// at a timeout no healthy root ever hits. No chaos is injected: this is
// the cost of the machinery alone (a heartbeat closure per simulator
// step, watchdog timers on every root handoff, claim bookkeeping).
// scripts/bench_resilience.sh pairs the two rows per workload and
// enforces the <5% overhead acceptance bound.
func BenchmarkResilience(b *testing.B) {
	supervised := explore.WithSupervision(explore.Supervise{
		MaxAttempts:  3,
		StallTimeout: 2 * time.Second,
	})
	for _, in := range []benchInstance{
		electionInstance(5, 3, 1),
		electionInstance(5, 4, 0),
	} {
		for _, mode := range []struct {
			name  string
			tunes []explore.Tune
		}{
			{"plain", nil},
			{"supervised", []explore.Tune{supervised}},
		} {
			b.Run(in.name+"/"+mode.name, func(b *testing.B) {
				opts := in.opts.With(explore.WithWorkers(-1)).With(mode.tunes...)
				total := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c := explore.Run(in.b, opts, in.check)
					if !c.Exhaustive {
						b.Fatal("benchmark census not exhaustive")
					}
					total += c.Complete + c.Incomplete
				}
				b.StopTimer()
				b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "runs/s")
			})
		}
	}
}
