package explore_test

import (
	"context"
	"testing"

	"repro/internal/consensus"
	"repro/internal/election"
	"repro/internal/explore"
	"repro/internal/objects"
	"repro/internal/sim"
)

// TestOrbitSkipsSymmetricRoots: a parallel symmetric census must skip
// symmetric frontier roots at generation time — OrbitSkips > 0 on the
// fully symmetric protocols — while every census number stays
// bit-identical to the plain unreduced walk (the orbit credit is the
// same renamed-summary translation a table hit performs, applied
// before the root is ever enqueued).
func TestOrbitSkipsSymmetricRoots(t *testing.T) {
	protocols := []struct {
		name string
		run  func(tunes ...explore.Tune) *explore.Census
	}{
		{"election-direct-cas", func(tunes ...explore.Tune) *explore.Census {
			return election.CensusDirect(4, 3, 0, tunes...)
		}},
		{"consensus-cas", func(tunes ...explore.Tune) *explore.Census {
			return consensus.CensusCAS(3, 2, 0, tunes...)
		}},
		// The queue census is deliberately absent: its post-prefix
		// states carry order-sensitive queue contents, so frontier
		// roots rarely share an orbit — bit-identity for it is pinned
		// by TestReducedCensusMatchesUnreduced instead.
	}
	for _, p := range protocols {
		t.Run(p.name, func(t *testing.T) {
			want := p.run() // plain replay walk: ground truth
			got := p.run(explore.WithSymmetry(), explore.WithWorkers(4))
			assertCensusEqual(t, "orbit", got, want)
			st := got.Prune
			if st == nil || !st.SymmetryOn {
				t.Fatalf("symmetric parallel census has no active symmetry stats: %+v", st)
			}
			if st.OrbitSkips == 0 {
				t.Fatal("fully symmetric frontier produced zero orbit skips")
			}
			t.Logf("orbit skips: %d (hits %d, sym hits %d)", st.OrbitSkips, st.Hits, st.SymmetryHits)
		})
	}
}

// symmetricCASBuilder is a 2-process CAS consensus builder with its
// symmetry spec declared — the smallest protocol whose frontier has
// nontrivial orbits — for the DistPlan tests below.
func symmetricCASBuilder() explore.Builder {
	props := []sim.Value{100, 101}
	spec := consensus.CASSymmetric(2)
	return func() *sim.System {
		sys := sim.NewSystem()
		cas := objects.NewCAS("cas", 3)
		sys.Add(cas)
		for _, m := range consensus.CASMachines(sys, cas, props) {
			sys.SpawnMachine(m)
		}
		sys.DeclareSymmetry(spec)
		return sys
	}
}

// TestDistPlanOrbitSkips: under a resolved symmetry spec the
// distributable root set must shrink to orbit representatives, and
// merging only their summaries must still reproduce the full census
// bit for bit — the distributed form of orbit-aware generation, where
// no shared transposition table exists to fold twins later.
func TestDistPlanOrbitSkips(t *testing.T) {
	b := symmetricCASBuilder()
	opts := explore.Options{MaxCrashes: 1, Workers: 2}
	want := explore.Run(b, opts, nil)

	symOpts := opts
	symOpts.Symmetry = true
	plan, ok := explore.NewDistPlan(b, symOpts, nil)
	if !ok {
		t.Fatal("exploration did not split")
	}
	plain, ok := explore.NewDistPlan(b, opts, nil)
	if !ok {
		t.Fatal("plain exploration did not split")
	}
	if len(plan.Roots()) >= len(plain.Roots()) {
		t.Fatalf("orbit plan hands out %d roots, plain plan %d — no generation-time skips",
			len(plan.Roots()), len(plain.Roots()))
	}

	done := make(map[int]explore.RootSummary)
	for _, root := range plan.Roots() {
		sum, _, err := explore.ExploreSubtree(context.Background(), b, symOpts, nil,
			plan.Prefix(root), explore.SubtreeCheckpoint{}, nil)
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		done[root] = sum
	}
	got := plan.Merge(done, nil)
	assertCensusCountsEqual(t, "orbit-dist", got, want)
	if got.Prune == nil || got.Prune.OrbitSkips == 0 {
		t.Fatalf("orbit merge reported no skips: %+v", got.Prune)
	}
	t.Logf("dist roots %d -> %d, orbit skips %d",
		len(plain.Roots()), len(plan.Roots()), got.Prune.OrbitSkips)
}

// TestDistPlanOrbitRepFailure: a twin whose representative was lost
// must degrade exactly like the representative itself — a coverage
// deficit, never a silently wrong count and never a spurious
// cancellation.
func TestDistPlanOrbitRepFailure(t *testing.T) {
	b := symmetricCASBuilder()
	opts := explore.Options{MaxCrashes: 1, Workers: 2, Symmetry: true}
	plan, ok := explore.NewDistPlan(b, opts, nil)
	if !ok {
		t.Fatal("exploration did not split")
	}
	roots := plan.Roots()
	done := make(map[int]explore.RootSummary)
	for _, root := range roots[1:] {
		sum, _, err := explore.ExploreSubtree(context.Background(), b, opts, nil,
			plan.Prefix(root), explore.SubtreeCheckpoint{}, nil)
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		done[root] = sum
	}
	failed := map[int]explore.RootFailure{
		roots[0]: {Prefix: plan.Prefix(roots[0]), Attempts: 3, Err: "lost"},
	}
	c := plan.Merge(done, failed)
	if c.Exhaustive || c.Cancelled {
		t.Fatalf("failed-rep merge: exhaustive=%v cancelled=%v, want false/false", c.Exhaustive, c.Cancelled)
	}
	if len(c.Errors) != 1 {
		t.Fatalf("failed-rep merge recorded %d errors, want 1", len(c.Errors))
	}
}
