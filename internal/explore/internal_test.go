package explore

import (
	"errors"
	"testing"

	"repro/internal/registers"
	"repro/internal/sim"
)

// TestExtendNeverAliases is the regression test for the walker's old
// append(prefix, c) branching: with spare capacity in the parent's
// backing array, two sibling extensions would share (and overwrite)
// the same slot. extend must hand every branch its own array.
func TestExtendNeverAliases(t *testing.T) {
	parent := make([]Choice, 1, 8) // spare capacity: the hazardous case
	parent[0] = Choice{Pick: 0}
	left := extend(parent, Choice{Pick: 1})
	right := extend(parent, Choice{Pick: 2})
	if left[1] != (Choice{Pick: 1}) {
		t.Fatalf("left sibling corrupted: %v", left)
	}
	if right[1] != (Choice{Pick: 2}) {
		t.Fatalf("right sibling corrupted: %v", right)
	}
	// Deep growth of one branch must not touch the other.
	deep := extend(left, Choice{Pick: 3, Crash: true})
	_ = deep
	if right[1] != (Choice{Pick: 2}) {
		t.Fatalf("deep growth of left branch clobbered right: %v", right)
	}
	if cap(left) != len(left) || cap(right) != len(right) {
		t.Fatalf("extend must allocate exactly len+1: cap(left)=%d cap(right)=%d", cap(left), cap(right))
	}
}

// rwAttempt is a local copy of the doomed 2-process read/write
// consensus (announce, adopt-if-visible): the canonical source of real
// violations for white-box checks.
func rwAttempt() *sim.System {
	sys := sim.NewSystem()
	ann := registers.NewArray(sys, "ann", 2, nil)
	sys.SpawnN(2, func(id sim.ProcID) sim.Program {
		return func(e *sim.Env) (sim.Value, error) {
			ann.Write(e, int(id))
			if other := ann.Read(e, 1-int(id)); other != nil {
				return other, nil
			}
			return int(id), nil
		}
	})
	return sys
}

// TestPrunedViolationRepsReplay: every violation a pruned census
// records must be a genuine one — replaying its schedule from the root
// must reproduce a run that fails the check. This is the guard against
// a transposition entry crediting a violation whose stored schedule is
// stale or aliased.
func TestPrunedViolationRepsReplay(t *testing.T) {
	check := func(res *sim.Result) error {
		if d := res.DistinctDecisions(); d != nil && len(d) > 1 {
			return errors.New("disagreement")
		}
		return nil
	}
	opts := Options{MaxCrashes: 1}.withDefaults()
	c := Run(rwAttempt, opts, check)
	if c.ViolationRuns == 0 {
		t.Fatal("unpruned census found no violations; matrix broken")
	}
	pruned := Run(rwAttempt, opts.With(WithPrune()), check)
	if pruned.ViolationRuns != c.ViolationRuns {
		t.Fatalf("pruned ViolationRuns=%d, unpruned=%d", pruned.ViolationRuns, c.ViolationRuns)
	}
	if len(pruned.Violations) == 0 {
		t.Fatal("pruned census recorded no representative violations")
	}
	for i, v := range pruned.Violations {
		res, _ := replayPrefix(rwAttempt, opts, v.Schedule)
		if res.Halted {
			t.Fatalf("violation %d (%s): replay halted, schedule not terminal", i, FormatSchedule(v.Schedule))
		}
		if err := check(res); err == nil {
			t.Fatalf("violation %d (%s): replay does not violate the check", i, FormatSchedule(v.Schedule))
		}
	}
}

// TestFrontierCoversTree: the parallel split frontier must partition
// the terminal runs exactly — leaves plus the union of subtree walks
// reproduce the sequential count.
func TestFrontierCoversTree(t *testing.T) {
	b := rwAttempt
	opts := Options{MaxCrashes: 1}.withDefaults()
	seqRuns, _ := sequentialVisit(b, opts, func(Outcome) bool { return true })
	items, ok := frontier(b, opts, 4)
	if !ok {
		t.Fatal("frontier enumeration capped unexpectedly")
	}
	total := 0
	for _, it := range items {
		if it.prefix == nil {
			total++
			continue
		}
		en := &engine{b: b, opts: opts, root: it.prefix, visit: func(Outcome) bool { return true }}
		en.run()
		total += en.runs
	}
	if total != seqRuns {
		t.Fatalf("frontier partition visits %d runs, sequential %d", total, seqRuns)
	}
}

// TestStateHashAtFrontier: mid-run hashing (the resumable-run hook)
// must agree between two executions following the same schedule and
// diverge when the schedules genuinely diverge in state.
func TestStateHashAtFrontier(t *testing.T) {
	hashesAt := func(plan []Choice, at int) (uint64, bool) {
		var fp uint64
		var ok bool
		pos := 0
		sys := rwAttempt()
		sched := func(ready []sim.ProcID, _ int) sim.ProcID {
			if pos == at {
				fp, ok = sys.StateHash()
			}
			if pos >= len(plan) {
				return sim.Halt
			}
			c := plan[pos]
			pos++
			return c.Pick
		}
		_, err := sys.Run(sim.Config{
			Scheduler:    schedulerFunc(sched),
			Fingerprint:  true,
			DisableTrace: true,
		})
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		return fp, ok
	}
	plan := []Choice{{Pick: 0}, {Pick: 0}, {Pick: 1}}
	h1, ok1 := hashesAt(plan, 2)
	h2, ok2 := hashesAt(plan, 2)
	if !ok1 || !ok2 {
		t.Fatal("StateHash not available with Fingerprint enabled")
	}
	if h1 != h2 {
		t.Fatalf("same prefix hashed differently: %x vs %x", h1, h2)
	}
	// {0,1} reaches a genuinely different state than {0,0} (proc 1 has
	// announced instead of proc 0 having read).
	other := []Choice{{Pick: 0}, {Pick: 1}, {Pick: 1}}
	h3, _ := hashesAt(other, 2)
	if h3 == h1 {
		t.Fatalf("states of different prefixes collide: %x", h1)
	}
	// The commuting case: {0,1} and {1,0} are different schedules but
	// the two announces commute, so the states — and the hashes — must
	// coincide. This is exactly what the transposition table exploits.
	ha, _ := hashesAt([]Choice{{Pick: 0}, {Pick: 1}, {Pick: 0}}, 2)
	hb, _ := hashesAt([]Choice{{Pick: 1}, {Pick: 0}, {Pick: 0}}, 2)
	if ha != hb {
		t.Fatalf("commuting writes hashed differently: %x vs %x", ha, hb)
	}
}

type schedulerFunc func([]sim.ProcID, int) sim.ProcID

func (f schedulerFunc) Next(ready []sim.ProcID, step int) sim.ProcID { return f(ready, step) }
