package explore

import (
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/registers"
	"repro/internal/sim"
)

// TestExtendNeverAliases is the regression test for the walker's old
// append(prefix, c) branching: with spare capacity in the parent's
// backing array, two sibling extensions would share (and overwrite)
// the same slot. extend must hand every branch its own array.
func TestExtendNeverAliases(t *testing.T) {
	parent := make([]Choice, 1, 8) // spare capacity: the hazardous case
	parent[0] = Choice{Pick: 0}
	left := extend(parent, Choice{Pick: 1})
	right := extend(parent, Choice{Pick: 2})
	if left[1] != (Choice{Pick: 1}) {
		t.Fatalf("left sibling corrupted: %v", left)
	}
	if right[1] != (Choice{Pick: 2}) {
		t.Fatalf("right sibling corrupted: %v", right)
	}
	// Deep growth of one branch must not touch the other.
	deep := extend(left, Choice{Pick: 3, Crash: true})
	_ = deep
	if right[1] != (Choice{Pick: 2}) {
		t.Fatalf("deep growth of left branch clobbered right: %v", right)
	}
	if cap(left) != len(left) || cap(right) != len(right) {
		t.Fatalf("extend must allocate exactly len+1: cap(left)=%d cap(right)=%d", cap(left), cap(right))
	}
}

// rwAttempt is a local copy of the doomed 2-process read/write
// consensus (announce, adopt-if-visible): the canonical source of real
// violations for white-box checks.
func rwAttempt() *sim.System {
	sys := sim.NewSystem()
	ann := registers.NewArray(sys, "ann", 2, nil)
	sys.SpawnN(2, func(id sim.ProcID) sim.Program {
		return func(e *sim.Env) (sim.Value, error) {
			ann.Write(e, int(id))
			if other := ann.Read(e, 1-int(id)); other != nil {
				return other, nil
			}
			return int(id), nil
		}
	})
	return sys
}

// TestPrunedViolationRepsReplay: every violation a pruned census
// records must be a genuine one — replaying its schedule from the root
// must reproduce a run that fails the check. This is the guard against
// a transposition entry crediting a violation whose stored schedule is
// stale or aliased.
func TestPrunedViolationRepsReplay(t *testing.T) {
	check := func(res *sim.Result) error {
		if d := res.DistinctDecisions(); d != nil && len(d) > 1 {
			return errors.New("disagreement")
		}
		return nil
	}
	opts := Options{MaxCrashes: 1}.withDefaults()
	c := Run(rwAttempt, opts, check)
	if c.ViolationRuns == 0 {
		t.Fatal("unpruned census found no violations; matrix broken")
	}
	pruned := Run(rwAttempt, opts.With(WithPrune()), check)
	if pruned.ViolationRuns != c.ViolationRuns {
		t.Fatalf("pruned ViolationRuns=%d, unpruned=%d", pruned.ViolationRuns, c.ViolationRuns)
	}
	if len(pruned.Violations) == 0 {
		t.Fatal("pruned census recorded no representative violations")
	}
	for i, v := range pruned.Violations {
		res, _ := replayPrefix(rwAttempt, opts, v.Schedule)
		if res.Halted {
			t.Fatalf("violation %d (%s): replay halted, schedule not terminal", i, FormatSchedule(v.Schedule))
		}
		if err := check(res); err == nil {
			t.Fatalf("violation %d (%s): replay does not violate the check", i, FormatSchedule(v.Schedule))
		}
	}
}

// TestFrontierCoversTree: the parallel split frontier must partition
// the terminal runs exactly — leaves plus the union of subtree walks
// reproduce the sequential count.
func TestFrontierCoversTree(t *testing.T) {
	b := rwAttempt
	opts := Options{MaxCrashes: 1}.withDefaults()
	seqRuns, _, _ := sequentialVisit(b, opts, func(Outcome) bool { return true })
	items, ok := frontier(b, opts, 4)
	if !ok {
		t.Fatal("frontier enumeration capped unexpectedly")
	}
	total := 0
	for _, it := range items {
		if it.prefix == nil {
			total++
			continue
		}
		en := &engine{b: b, opts: opts, root: it.prefix, visit: func(Outcome) bool { return true }}
		en.run()
		total += en.runs
	}
	if total != seqRuns {
		t.Fatalf("frontier partition visits %d runs, sequential %d", total, seqRuns)
	}
}

// TestStateHashAtFrontier: mid-run hashing (the resumable-run hook)
// must agree between two executions following the same schedule and
// diverge when the schedules genuinely diverge in state.
func TestStateHashAtFrontier(t *testing.T) {
	hashesAt := func(plan []Choice, at int) (uint64, bool) {
		var fp uint64
		var ok bool
		pos := 0
		sys := rwAttempt()
		sched := func(ready []sim.ProcID, _ int) sim.ProcID {
			if pos == at {
				fp, ok = sys.StateHash()
			}
			if pos >= len(plan) {
				return sim.Halt
			}
			c := plan[pos]
			pos++
			return c.Pick
		}
		_, err := sys.Run(sim.Config{
			Scheduler:    schedulerFunc(sched),
			Fingerprint:  true,
			DisableTrace: true,
		})
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		return fp, ok
	}
	plan := []Choice{{Pick: 0}, {Pick: 0}, {Pick: 1}}
	h1, ok1 := hashesAt(plan, 2)
	h2, ok2 := hashesAt(plan, 2)
	if !ok1 || !ok2 {
		t.Fatal("StateHash not available with Fingerprint enabled")
	}
	if h1 != h2 {
		t.Fatalf("same prefix hashed differently: %x vs %x", h1, h2)
	}
	// {0,1} reaches a genuinely different state than {0,0} (proc 1 has
	// announced instead of proc 0 having read).
	other := []Choice{{Pick: 0}, {Pick: 1}, {Pick: 1}}
	h3, _ := hashesAt(other, 2)
	if h3 == h1 {
		t.Fatalf("states of different prefixes collide: %x", h1)
	}
	// The commuting case: {0,1} and {1,0} are different schedules but
	// the two announces commute, so the states — and the hashes — must
	// coincide. This is exactly what the transposition table exploits.
	ha, _ := hashesAt([]Choice{{Pick: 0}, {Pick: 1}, {Pick: 0}}, 2)
	hb, _ := hashesAt([]Choice{{Pick: 1}, {Pick: 0}, {Pick: 0}}, 2)
	if ha != hb {
		t.Fatalf("commuting writes hashed differently: %x vs %x", ha, hb)
	}
}

type schedulerFunc func([]sim.ProcID, int) sim.ProcID

func (f schedulerFunc) Next(ready []sim.ProcID, step int) sim.ProcID { return f(ready, step) }

// wideTree is a 3-process, 9-step no-op system: a bushy tree (1680
// interleavings) for the panic-recovery and checkpoint tests.
func wideTree() *sim.System {
	sys := sim.NewSystem()
	r := registers.NewMWMR("r", 0)
	sys.Add(r)
	sys.SpawnN(3, func(id sim.ProcID) sim.Program {
		return func(e *sim.Env) (sim.Value, error) {
			for i := 0; i < 3; i++ {
				r.Read(e)
			}
			return int(id), nil
		}
	})
	return sys
}

// countingBuilder wraps a builder with an atomic call counter, panicking
// on call number panicAt (0 disables).
func countingBuilder(inner Builder, counter *atomic.Int64, panicAt int64) Builder {
	return func() *sim.System {
		if n := counter.Add(1); panicAt > 0 && n == panicAt {
			panic("injected harness fault")
		}
		return inner()
	}
}

// persistentPanicBuilder panics on EVERY call from callAt on — a fault
// no retry can heal, for exercising the permanent-failure path.
func persistentPanicBuilder(inner Builder, counter *atomic.Int64, callAt int64) Builder {
	return func() *sim.System {
		if counter.Add(1) >= callAt {
			panic("persistent harness fault")
		}
		return inner()
	}
}

// fastRetries keeps the supervisor's retry policy but strips the
// backoff waits so failure-path tests stay fast.
func fastRetries(attempts int, stats *SuperviseStats) Tune {
	return WithSupervision(Supervise{
		MaxAttempts: attempts,
		BackoffBase: time.Microsecond,
		BackoffMax:  time.Microsecond,
		Stats:       stats,
	})
}

// TestWorkerPanicRetried: a one-shot panic on a worker goroutine (here
// from the builder, the first call after frontier enumeration —
// frontier runs on the caller's goroutine, everything after it on
// workers) must be healed by the supervisor's retry: the census comes
// back exhaustive, error-free, and bit-identical to the sequential
// baseline. Both the streaming parallel walk and the pruned parallel
// census retry.
func TestWorkerPanicRetried(t *testing.T) {
	base := Options{Workers: 4}.withDefaults()
	seq := Run(wideTree, Options{}.withDefaults(), nil)
	if !seq.Exhaustive || seq.Complete == 0 {
		t.Fatalf("sequential baseline broken: %+v", seq)
	}
	// Measure the builder calls frontier enumeration consumes; the next
	// call is the first worker probe.
	var fc atomic.Int64
	if _, ok := frontier(countingBuilder(wideTree, &fc, 0), base, base.workerCount()); !ok {
		t.Fatal("frontier capped unexpectedly")
	}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{name: "parallel-visit", opts: base},
		{name: "pruned-parallel", opts: base.With(WithPrune())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stats SuperviseStats
			var calls atomic.Int64
			got := Run(countingBuilder(wideTree, &calls, fc.Load()+1),
				tc.opts.With(fastRetries(3, &stats)), nil)
			if len(got.Errors) != 0 {
				t.Fatalf("one-shot panic not healed: errors = %v", got.Errors)
			}
			if !got.Exhaustive {
				t.Fatal("healed census must be exhaustive")
			}
			if got.Complete != seq.Complete || got.Incomplete != seq.Incomplete {
				t.Fatalf("healed census %d/%d, sequential %d/%d",
					got.Complete, got.Incomplete, seq.Complete, seq.Incomplete)
			}
			if stats.Retries.Load() == 0 {
				t.Fatal("supervisor reported no retries for a panicked root")
			}
		})
	}
}

// TestWorkerPanicPermanentFailure: a fault that survives every retry
// costs exactly the affected subtrees: each is reported in FailedRoots
// with its attempt count, Exhaustive flips, and every other subtree
// stays counted.
func TestWorkerPanicPermanentFailure(t *testing.T) {
	base := Options{Workers: 4}.withDefaults()
	seq := Run(wideTree, Options{}.withDefaults(), nil)
	var fc atomic.Int64
	if _, ok := frontier(countingBuilder(wideTree, &fc, 0), base, base.workerCount()); !ok {
		t.Fatal("frontier capped unexpectedly")
	}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{name: "parallel-visit", opts: base},
		{name: "pruned-parallel", opts: base.With(WithPrune())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stats SuperviseStats
			var calls atomic.Int64
			got := Run(persistentPanicBuilder(wideTree, &calls, fc.Load()+1),
				tc.opts.With(fastRetries(3, &stats)), nil)
			if len(got.FailedRoots) == 0 {
				t.Fatal("persistent fault produced no FailedRoots")
			}
			if got.Exhaustive {
				t.Fatal("census with lost subtrees claims exhaustiveness")
			}
			for _, f := range got.FailedRoots {
				if f.Attempts != 3 {
					t.Fatalf("failed root %q used %d attempts, want 3", FormatSchedule(f.Prefix), f.Attempts)
				}
				if len(f.Prefix) == 0 || f.Err == "" {
					t.Fatalf("failure lacks prefix or error: %+v", f)
				}
			}
			if got.Complete >= seq.Complete {
				t.Fatalf("census counted %d complete runs despite lost subtrees (sequential %d)",
					got.Complete, seq.Complete)
			}
		})
	}
}

// TestPruneTableEvictionBudget: a starved entry budget must bound the
// table's live size while leaving every census count untouched.
func TestPruneTableEvictionBudget(t *testing.T) {
	check := func(res *sim.Result) error {
		if d := res.DistinctDecisions(); len(d) > 1 {
			return errors.New("disagreement")
		}
		return nil
	}
	opts := Options{MaxCrashes: 1}.withDefaults()
	want := Run(rwAttempt, opts, check)
	for _, budget := range []int{1, 4, 64} {
		got := Run(rwAttempt, opts.With(WithPrune(), WithPruneBudget(budget)), check)
		if got.Complete != want.Complete || got.Incomplete != want.Incomplete ||
			got.ViolationRuns != want.ViolationRuns || got.Exhaustive != want.Exhaustive {
			t.Fatalf("budget %d census %d/%d viol=%d, unpruned %d/%d viol=%d",
				budget, got.Complete, got.Incomplete, got.ViolationRuns,
				want.Complete, want.Incomplete, want.ViolationRuns)
		}
	}
	table := newPruneTable(4)
	en := &engine{b: rwAttempt, opts: opts, acc: newSummary(), check: check, table: table}
	en.run()
	if n := table.size(); n > 4 {
		t.Fatalf("table holds %d entries, budget 4", n)
	}
}

// TestCheckpointResume: a checkpointed census killed mid-run must, on
// resume, credit the recorded roots and land on the exact census an
// uninterrupted run produces.
func TestCheckpointResume(t *testing.T) {
	check := func(res *sim.Result) error {
		if d := res.DistinctDecisions(); len(d) > 1 {
			return errors.New("disagreement")
		}
		return nil
	}
	opts := Options{MaxCrashes: 1, Workers: 2}.withDefaults()
	plain := Run(wideTree, opts, check)
	if plain.ViolationRuns == 0 {
		t.Fatal("baseline found no violations; matrix broken")
	}
	dir := t.TempDir()

	same := func(got *Census, label string) {
		t.Helper()
		if got.Complete != plain.Complete || got.Incomplete != plain.Incomplete ||
			got.ViolationRuns != plain.ViolationRuns || got.Exhaustive != plain.Exhaustive {
			t.Fatalf("%s census %d/%d viol=%d ex=%v, plain %d/%d viol=%d ex=%v",
				label, got.Complete, got.Incomplete, got.ViolationRuns, got.Exhaustive,
				plain.Complete, plain.Incomplete, plain.ViolationRuns, plain.Exhaustive)
		}
	}

	// Uninterrupted checkpointed run == plain run.
	full, stats, err := RunCheckpointed(wideTree, opts, check, Checkpoint{
		Path: filepath.Join(dir, "full.json"), Every: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalRoots == 0 || stats.ResumedRoots != 0 {
		t.Fatalf("stats %+v, want roots > 0 resumed 0", stats)
	}
	same(full, "uninterrupted")

	// Kill after 3 roots...
	path := filepath.Join(dir, "killed.json")
	_, killStats, err := RunCheckpointed(wideTree, opts, check, Checkpoint{
		Path: path, Every: 1, stopAfterRoots: 3,
	})
	if err != errStopped {
		t.Fatalf("stopped run returned err=%v, want errStopped", err)
	}
	if killStats.Saves == 0 {
		t.Fatal("stopped run saved no checkpoint")
	}

	// ...and resume from its file.
	resumed, resStats, err := RunCheckpointed(wideTree, opts, check, Checkpoint{
		Path: path, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resStats.ResumedRoots < 3 {
		t.Fatalf("resume credited %d roots, want >= 3", resStats.ResumedRoots)
	}
	same(resumed, "resumed")
	// The resumed census's recorded representatives must be genuine:
	// their schedules replay to real violations even when the summary
	// came from the checkpoint file.
	if len(resumed.Violations) == 0 {
		t.Fatal("resumed census recorded no representative violations")
	}
	for i, v := range resumed.Violations {
		res, _ := replayPrefix(wideTree, opts, v.Schedule)
		if res.Halted || check(res) == nil {
			t.Fatalf("violation %d (%s) does not replay to a violation", i, FormatSchedule(v.Schedule))
		}
	}

	// A mismatched checkpoint (different options) is ignored, not
	// half-applied: the run is fresh and still exact.
	otherOpts := Options{MaxCrashes: 0, Workers: 2}.withDefaults()
	fresh, freshStats, err := RunCheckpointed(wideTree, otherOpts, check, Checkpoint{
		Path: path, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if freshStats.ResumedRoots != 0 {
		t.Fatalf("mismatched checkpoint credited %d roots, want 0", freshStats.ResumedRoots)
	}
	noCrash := Run(wideTree, otherOpts, check)
	if fresh.Complete != noCrash.Complete || fresh.ViolationRuns != noCrash.ViolationRuns {
		t.Fatalf("fresh census %d viol=%d, want %d viol=%d",
			fresh.Complete, fresh.ViolationRuns, noCrash.Complete, noCrash.ViolationRuns)
	}
}
