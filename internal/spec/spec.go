// Package spec defines sequential specifications of shared objects.
// A specification is a deterministic state machine: the linearizability
// checker (package linearize) searches for an order of concurrent
// operation spans that the state machine accepts, which is exactly the
// Herlihy–Wing definition of a linearizable history cited by the paper
// for its leader-election object semantics.
package spec

import (
	"fmt"

	"repro/internal/objects"
	"repro/internal/sim"
)

// State is an immutable sequential-object state. Implementations must
// never mutate a State in place: Apply returns a fresh value.
type State any

// Spec is a sequential specification.
type Spec interface {
	// Init returns the object's initial state.
	Init() State
	// Apply runs one operation by proc against s, returning the
	// successor state and the operation's expected result.
	Apply(s State, proc sim.ProcID, kind sim.OpKind, args []sim.Value) (State, sim.Value)
	// Fingerprint returns a canonical string for memoizing s.
	Fingerprint(s State) string
}

// Register is the spec of an atomic read/write register.
type Register struct {
	// Initial is the register's starting value.
	Initial sim.Value
}

var _ Spec = Register{}

// Init implements Spec.
func (r Register) Init() State { return r.Initial }

// Apply implements Spec.
func (r Register) Apply(s State, _ sim.ProcID, kind sim.OpKind, args []sim.Value) (State, sim.Value) {
	switch kind {
	case sim.OpRead:
		return s, s
	case sim.OpWrite:
		return args[0], nil
	default:
		panic(fmt.Sprintf("spec: register: unknown op %q", kind))
	}
}

// Fingerprint implements Spec.
func (r Register) Fingerprint(s State) string { return fmt.Sprint(s) }

// SnapshotSpec is the spec of an n-component atomic snapshot: component
// i is written by process i's "update"; "scan" returns the vector,
// rendered with fmt.Sprint to match how snapshot spans record results.
type SnapshotSpec struct {
	N       int
	Initial sim.Value
}

var _ Spec = SnapshotSpec{}

// Init implements Spec.
func (sp SnapshotSpec) Init() State {
	v := make([]sim.Value, sp.N)
	for i := range v {
		v[i] = sp.Initial
	}
	return v
}

// Apply implements Spec.
func (sp SnapshotSpec) Apply(s State, proc sim.ProcID, kind sim.OpKind, args []sim.Value) (State, sim.Value) {
	vec := s.([]sim.Value)
	switch kind {
	case "update":
		next := make([]sim.Value, len(vec))
		copy(next, vec)
		next[proc] = args[0]
		return next, nil
	case "scan":
		return s, fmt.Sprint(vec)
	default:
		panic(fmt.Sprintf("spec: snapshot: unknown op %q", kind))
	}
}

// Fingerprint implements Spec.
func (sp SnapshotSpec) Fingerprint(s State) string { return fmt.Sprint(s) }

// CASSpec is the spec of a compare&swap register over symbols.
type CASSpec struct{}

var _ Spec = CASSpec{}

// Init implements Spec.
func (CASSpec) Init() State { return objects.Bottom }

// Apply implements Spec.
func (CASSpec) Apply(s State, _ sim.ProcID, kind sim.OpKind, args []sim.Value) (State, sim.Value) {
	cur := s.(objects.Symbol)
	switch kind {
	case sim.OpRead:
		return s, cur
	case objects.OpCAS:
		from, to := args[0].(objects.Symbol), args[1].(objects.Symbol)
		if cur == from {
			return to, cur
		}
		return cur, cur
	default:
		panic(fmt.Sprintf("spec: cas: unknown op %q", kind))
	}
}

// Fingerprint implements Spec.
func (CASSpec) Fingerprint(s State) string { return fmt.Sprint(s) }

// QueueSpec is the spec of a FIFO queue (deq on empty returns nil).
type QueueSpec struct{}

var _ Spec = QueueSpec{}

// Init implements Spec.
func (QueueSpec) Init() State { return []sim.Value(nil) }

// Apply implements Spec.
func (QueueSpec) Apply(s State, _ sim.ProcID, kind sim.OpKind, args []sim.Value) (State, sim.Value) {
	items := s.([]sim.Value)
	switch kind {
	case objects.OpEnq:
		next := make([]sim.Value, len(items)+1)
		copy(next, items)
		next[len(items)] = args[0]
		return next, nil
	case objects.OpDeq:
		if len(items) == 0 {
			return s, nil
		}
		return items[1:], items[0]
	default:
		panic(fmt.Sprintf("spec: queue: unknown op %q", kind))
	}
}

// Fingerprint implements Spec.
func (QueueSpec) Fingerprint(s State) string { return fmt.Sprint(s) }

// CounterSpec is the spec of a fetch&add counter: "add" with one int
// argument returns the previous value; "get" returns the current value.
// Used by the universal-construction experiments as the simplest
// stateful sequential type.
type CounterSpec struct{}

var _ Spec = CounterSpec{}

// Init implements Spec.
func (CounterSpec) Init() State { return 0 }

// Apply implements Spec.
func (CounterSpec) Apply(s State, _ sim.ProcID, kind sim.OpKind, args []sim.Value) (State, sim.Value) {
	cur := s.(int)
	switch kind {
	case "add":
		return cur + args[0].(int), cur
	case "get":
		return s, cur
	default:
		panic(fmt.Sprintf("spec: counter: unknown op %q", kind))
	}
}

// Fingerprint implements Spec.
func (CounterSpec) Fingerprint(s State) string { return fmt.Sprint(s) }

// ElectionSpec is the sequential specification of the paper's Leader
// Election object: "all elect operations return the identity of the
// processor that applied the first operation" (§2). The op kind is
// "elect" with the caller's proposed identity as the argument.
type ElectionSpec struct{}

var _ Spec = ElectionSpec{}

// Init implements Spec.
func (ElectionSpec) Init() State { return sim.Value(nil) }

// Apply implements Spec.
func (ElectionSpec) Apply(s State, _ sim.ProcID, kind sim.OpKind, args []sim.Value) (State, sim.Value) {
	if kind != "elect" {
		panic(fmt.Sprintf("spec: election: unknown op %q", kind))
	}
	if s == nil {
		return args[0], args[0]
	}
	return s, s
}

// Fingerprint implements Spec.
func (ElectionSpec) Fingerprint(s State) string { return fmt.Sprint(s) }
