package spec_test

import (
	"testing"

	"repro/internal/objects"
	"repro/internal/sim"
	"repro/internal/spec"
)

func TestRegisterSpec(t *testing.T) {
	r := spec.Register{Initial: 5}
	s := r.Init()
	s2, res := r.Apply(s, 0, sim.OpRead, nil)
	if res != 5 || r.Fingerprint(s2) != "5" {
		t.Errorf("read = %v state %v", res, s2)
	}
	s3, _ := r.Apply(s2, 0, sim.OpWrite, []sim.Value{9})
	_, res = r.Apply(s3, 1, sim.OpRead, nil)
	if res != 9 {
		t.Errorf("read after write = %v", res)
	}
}

func TestSnapshotSpec(t *testing.T) {
	sp := spec.SnapshotSpec{N: 2, Initial: 0}
	s := sp.Init()
	s, _ = sp.Apply(s, 1, "update", []sim.Value{7})
	_, res := sp.Apply(s, 0, "scan", nil)
	if res != "[0 7]" {
		t.Errorf("scan = %v", res)
	}
}

func TestCASSpec(t *testing.T) {
	c := spec.CASSpec{}
	s := c.Init()
	s, res := c.Apply(s, 0, objects.OpCAS, []sim.Value{objects.Bottom, objects.Symbol(2)})
	if res != objects.Bottom {
		t.Errorf("first cas returned %v", res)
	}
	s, res = c.Apply(s, 1, objects.OpCAS, []sim.Value{objects.Bottom, objects.Symbol(1)})
	if res != objects.Symbol(2) {
		t.Errorf("failed cas returned %v", res)
	}
	_, res = c.Apply(s, 1, sim.OpRead, nil)
	if res != objects.Symbol(2) {
		t.Errorf("read = %v", res)
	}
}

func TestQueueSpec(t *testing.T) {
	q := spec.QueueSpec{}
	s := q.Init()
	s, _ = q.Apply(s, 0, objects.OpEnq, []sim.Value{"a"})
	s, _ = q.Apply(s, 1, objects.OpEnq, []sim.Value{"b"})
	s, res := q.Apply(s, 0, objects.OpDeq, nil)
	if res != "a" {
		t.Errorf("deq = %v", res)
	}
	s, res = q.Apply(s, 0, objects.OpDeq, nil)
	if res != "b" {
		t.Errorf("deq = %v", res)
	}
	_, res = q.Apply(s, 0, objects.OpDeq, nil)
	if res != nil {
		t.Errorf("empty deq = %v", res)
	}
}

func TestQueueSpecImmutability(t *testing.T) {
	q := spec.QueueSpec{}
	s := q.Init()
	s1, _ := q.Apply(s, 0, objects.OpEnq, []sim.Value{"a"})
	s2, _ := q.Apply(s1, 0, objects.OpEnq, []sim.Value{"b"})
	// Applying to s1 again must not be affected by s2's existence.
	_, res := q.Apply(s1, 0, objects.OpDeq, nil)
	if res != "a" {
		t.Errorf("deq on old state = %v", res)
	}
	if q.Fingerprint(s2) != "[a b]" {
		t.Errorf("fingerprint = %q", q.Fingerprint(s2))
	}
}

func TestCounterSpec(t *testing.T) {
	c := spec.CounterSpec{}
	s := c.Init()
	s, res := c.Apply(s, 0, "add", []sim.Value{3})
	if res != 0 {
		t.Errorf("add returned %v", res)
	}
	_, res = c.Apply(s, 0, "get", nil)
	if res != 3 {
		t.Errorf("get = %v", res)
	}
}

func TestElectionSpec(t *testing.T) {
	el := spec.ElectionSpec{}
	s := el.Init()
	s, res := el.Apply(s, 0, "elect", []sim.Value{"A"})
	if res != "A" {
		t.Errorf("first elect = %v", res)
	}
	_, res = el.Apply(s, 1, "elect", []sim.Value{"B"})
	if res != "A" {
		t.Errorf("second elect = %v, want the first proposal", res)
	}
}

func TestSpecPanicsOnUnknownOp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown op did not panic")
		}
	}()
	spec.Register{}.Apply(nil, 0, "bogus", nil)
}
