package universal_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/linearize"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/universal"
)

// buildCounter wires n processes to a universal counter over
// compare&swap-(k) cells; each process performs adds ops of add(1) and
// decides the sum of the previous values it observed.
func buildCounter(t *testing.T, n, k, adds, maxCells int) (*sim.System, *universal.Universal) {
	t.Helper()
	sys := sim.NewSystem()
	u, err := universal.NewUniversal(sys, "ctr", spec.CounterSpec{}, n, k, maxCells)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		sess := u.NewSession()
		sys.Spawn(func(e *sim.Env) (sim.Value, error) {
			var tickets []int
			for j := 0; j < adds; j++ {
				v, err := sess.Invoke(e, universal.Op{Kind: "add", Args: []sim.Value{1}})
				if err != nil {
					return nil, err
				}
				tickets = append(tickets, v.(int))
			}
			return tickets, nil
		})
	}
	return sys, u
}

func TestUniversalCounterSequential(t *testing.T) {
	sys, _ := buildCounter(t, 1, 3, 5, 0)
	res, err := sys.Run(sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors[0] != nil {
		t.Fatal(res.Errors[0])
	}
	tickets := res.Values[0].([]int)
	for j, v := range tickets {
		if v != j {
			t.Errorf("ticket %d = %d, want %d", j, v, j)
		}
	}
}

// TestUniversalCounterConcurrent checks linearizability's cheapest
// observable consequence on a counter: under any schedule, the multiset
// of previous-values returned by n·adds add(1) operations is exactly
// {0, 1, …, n·adds−1} — every ticket handed out exactly once.
func TestUniversalCounterConcurrent(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		n, adds := 3, 3
		sys, _ := buildCounter(t, n, 4, adds, 0)
		res, err := sys.Run(sim.Config{Scheduler: sim.Random(seed)})
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]bool)
		for i := 0; i < n; i++ {
			if res.Errors[i] != nil {
				t.Fatalf("seed %d: proc %d: %v", seed, i, res.Errors[i])
			}
			for _, v := range res.Values[i].([]int) {
				if seen[v] {
					t.Errorf("seed %d: ticket %d issued twice", seed, v)
				}
				seen[v] = true
			}
		}
		for j := 0; j < n*adds; j++ {
			if !seen[j] {
				t.Errorf("seed %d: ticket %d never issued", seed, j)
			}
		}
	}
}

// TestUniversalWaitFreeUnderCrash: a crashed process must not block the
// others (helping keeps the log moving).
func TestUniversalWaitFreeUnderCrash(t *testing.T) {
	sys, _ := buildCounter(t, 3, 4, 3, 0)
	res, err := sys.Run(sim.Config{
		Scheduler: sim.Random(7),
		Faults:    sim.CrashAfterSteps(0, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		if res.Errors[i] != nil {
			t.Errorf("survivor %d failed: %v", i, res.Errors[i])
		}
	}
}

// TestUniversalRefusesTooManyProcesses is E9's structural failure mode:
// a compare&swap-(k) cell cannot arbitrate more than k−1 proposers, so
// the "universal" construction does not exist for n > k−1.
func TestUniversalRefusesTooManyProcesses(t *testing.T) {
	sys := sim.NewSystem()
	_, err := universal.NewUniversal(sys, "u", spec.CounterSpec{}, 3, 3, 0)
	if !errors.Is(err, universal.ErrTooManyProcesses) {
		t.Errorf("err = %v, want ErrTooManyProcesses", err)
	}
}

// TestUniversalLogExhaustion is E9's second failure mode: with a
// bounded number of bounded-size objects, the construction runs dry.
func TestUniversalLogExhaustion(t *testing.T) {
	sys, _ := buildCounter(t, 2, 3, 10, 8) // 20 ops, 8 cells
	res, err := sys.Run(sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	exhausted := 0
	for i := 0; i < 2; i++ {
		if errors.Is(res.Errors[i], universal.ErrLogExhausted) {
			exhausted++
		}
	}
	if exhausted == 0 {
		t.Error("no process hit ErrLogExhausted with 8 cells for 20 ops")
	}
}

// TestUniversalQueue drives a second sequential type through the same
// construction: a FIFO queue shared by 2 processes.
func TestUniversalQueue(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		sys := sim.NewSystem()
		u, err := universal.NewUniversal(sys, "q", spec.QueueSpec{}, 2, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			i := i
			sess := u.NewSession()
			sys.Spawn(func(e *sim.Env) (sim.Value, error) {
				if _, err := sess.Invoke(e, universal.Op{Kind: "enq", Args: []sim.Value{fmt.Sprintf("v%d", i)}}); err != nil {
					return nil, err
				}
				return sess.Invoke(e, universal.Op{Kind: "deq"})
			})
		}
		res, err := sys.Run(sim.Config{Scheduler: sim.Random(seed)})
		if err != nil {
			t.Fatal(err)
		}
		// Both enqueues precede both dequeues per process; the two
		// dequeues must return the two distinct values (FIFO, no loss,
		// no duplication).
		got := map[sim.Value]bool{}
		for i := 0; i < 2; i++ {
			if res.Errors[i] != nil {
				t.Fatalf("seed %d: %v", seed, res.Errors[i])
			}
			if res.Values[i] == nil {
				continue // a deq may see an empty queue if both deqs beat an enq? No: own enq precedes own deq.
			}
			if got[res.Values[i]] {
				t.Errorf("seed %d: value %v dequeued twice", seed, res.Values[i])
			}
			got[res.Values[i]] = true
		}
		if len(got) == 0 {
			t.Errorf("seed %d: both dequeues returned nil", seed)
		}
	}
}

// TestSessionsConvergeOnState: after all operations, replaying sessions
// agree on the final object state.
func TestSessionsConvergeOnState(t *testing.T) {
	sys := sim.NewSystem()
	u, err := universal.NewUniversal(sys, "ctr", spec.CounterSpec{}, 2, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	sessions := make([]*universal.Session, 2)
	for i := 0; i < 2; i++ {
		sessions[i] = u.NewSession()
		sess := sessions[i]
		sys.Spawn(func(e *sim.Env) (sim.Value, error) {
			for j := 0; j < 4; j++ {
				if _, err := sess.Invoke(e, universal.Op{Kind: "add", Args: []sim.Value{1}}); err != nil {
					return nil, err
				}
			}
			// A final get forces the session to replay everything that
			// was decided before it.
			return sess.Invoke(e, universal.Op{Kind: "get"})
		})
	}
	res, err := sys.Run(sim.Config{Scheduler: sim.Random(3)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if res.Errors[i] != nil {
			t.Fatalf("proc %d: %v", i, res.Errors[i])
		}
	}
	// The later "get" must have seen all 8 adds.
	max := 0
	for i := 0; i < 2; i++ {
		if v := res.Values[i].(int); v > max {
			max = v
		}
	}
	if max != 8 {
		t.Errorf("final get = %d, want 8", max)
	}
}

// TestUniversalLinearizable checks the construction against its
// sequential specification with the Wing–Gong checker over many random
// schedules — Herlihy's theorem, mechanically: the universal object IS
// a linearizable counter.
func TestUniversalLinearizable(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		sys := sim.NewSystem()
		u, err := universal.NewUniversal(sys, "ctr", spec.CounterSpec{}, 3, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			sess := u.NewSession()
			sys.Spawn(func(e *sim.Env) (sim.Value, error) {
				for j := 0; j < 2; j++ {
					if _, err := sess.Invoke(e, universal.Op{Kind: "add", Args: []sim.Value{1}}); err != nil {
						return nil, err
					}
				}
				return sess.Invoke(e, universal.Op{Kind: "get"})
			})
		}
		cfg := sim.Config{Scheduler: sim.Random(seed)}
		if seed%5 == 0 {
			cfg.Faults = sim.RandomCrashes(seed, 0.03, 1)
		}
		res, err := sys.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep := linearize.Check(spec.CounterSpec{}, res.Trace.SpansOf("ctr"), linearize.Options{AllowPending: true})
		if !rep.Ok {
			t.Errorf("seed %d: universal counter history not linearizable (explored %d, truncated %v)",
				seed, rep.Explored, rep.Truncated)
		}
	}
}
