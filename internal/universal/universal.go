// Package universal implements Herlihy's universal construction
// (reference [10] of the paper; bounded by Jayanti–Toueg [15]): any
// sequentially specified object gets a wait-free linearizable
// implementation from consensus objects plus read/write registers.
//
// The consensus cells here are compare&swap-(k) registers, which is
// where the paper's theme bites: one cell can arbitrate among at most
// k−1 proposers, so the construction exists only for n ≤ k−1 processes
// — "universality" of the compare&swap type silently assumes the
// register is big enough. NewUniversal refuses larger systems
// (ErrTooManyProcesses), and the bounded-cell variant shows what
// happens when only finitely many bounded objects exist: the log runs
// out (ErrLogExhausted). Both failure modes are measured by E9.
package universal

import (
	"errors"
	"fmt"

	"repro/internal/objects"
	"repro/internal/registers"
	"repro/internal/sim"
	"repro/internal/spec"
)

// ErrTooManyProcesses is returned when n processes cannot share
// compare&swap-(k) consensus cells (n > k−1).
var ErrTooManyProcesses = errors.New("universal: more processes than a compare&swap-(k) cell can arbitrate")

// ErrLogExhausted is returned by Invoke when the bounded cell budget is
// spent.
var ErrLogExhausted = errors.New("universal: consensus cell budget exhausted")

// Op is one announced operation: Kind and Args per the object's
// sequential specification.
type Op struct {
	Kind sim.OpKind
	Args []sim.Value
}

// Universal is a wait-free linearizable object over an arbitrary
// sequential specification, shared by n processes.
//
// Structure: an unbounded log of consensus cells (compare&swap-(k)
// registers) decides, slot by slot, which process's next operation is
// appended. Each process's operations live in its single-writer tagged
// register (append-only), so the j-th log occurrence of process p
// resolves unambiguously to p's j-th announced operation — no
// overwrite races. Helping makes it wait-free: for slot s, every
// process proposes the pending operation of process s mod n if there is
// one, else its own, so a process's operation is decided at most n
// slots after announcement.
type Universal struct {
	name  string
	sp    spec.Spec
	n, k  int
	cells []*objects.CAS
	anns  []*registers.Tagged
	// maxCells bounds the log when positive (the bounded-objects
	// failure-mode variant).
	maxCells int
}

// NewUniversal builds a universal object for n processes over the
// sequential spec sp, with compare&swap-(k) consensus cells. maxCells
// bounds the log (0 = effectively unbounded, DefaultMaxCells).
func NewUniversal(sys *sim.System, name string, sp spec.Spec, n, k, maxCells int) (*Universal, error) {
	if n > k-1 {
		return nil, fmt.Errorf("%w: n=%d, k=%d", ErrTooManyProcesses, n, k)
	}
	if maxCells == 0 {
		maxCells = DefaultMaxCells
	}
	u := &Universal{name: name, sp: sp, n: n, k: k, maxCells: maxCells}
	u.cells = make([]*objects.CAS, maxCells)
	for i := range u.cells {
		u.cells[i] = objects.NewCAS(fmt.Sprintf("%s.cell[%d]", name, i), k)
		sys.Add(u.cells[i])
	}
	u.anns = make([]*registers.Tagged, n)
	for p := range u.anns {
		u.anns[p] = registers.NewTagged(fmt.Sprintf("%s.ann[%d]", name, p), sim.ProcID(p))
		sys.Add(u.anns[p])
	}
	return u, nil
}

// DefaultMaxCells is the log budget used when maxCells is zero.
const DefaultMaxCells = 4096

// session is a process's replay cursor over the log.
type session struct {
	u *Universal
	// next is the first log slot not yet replayed.
	next int
	// applied[p] counts p's operations already replayed.
	applied []int
	// state is the spec state after the replayed prefix.
	state spec.State
	// announced counts own announced ops (to index our tagged list).
	announced int
}

// NewSession returns the calling process's handle to the object.
// Each process must use its own session.
func (u *Universal) NewSession() *Session {
	return &Session{inner: session{u: u, applied: make([]int, u.n), state: u.sp.Init()}}
}

// Session is the per-process handle.
type Session struct {
	inner session
}

// Invoke announces op, drives consensus until it is appended to the
// log, and returns its sequential result. The whole call is recorded as
// one operation span against the object's name, so runs can be checked
// with the linearizability checker against the object's spec.
func (s *Session) Invoke(e *sim.Env, op Op) (sim.Value, error) {
	u := s.inner.u
	me := int(e.ID())
	span := e.BeginOp(u.name, op.Kind, op.Args...)
	// Announce: append the op to our single-writer list. Its identity
	// is (me, index in the list).
	u.anns[me].Append(e, "", opRecord{Kind: op.Kind, Args: op.Args})
	s.inner.announced++
	myIndex := s.inner.announced - 1

	for {
		if s.inner.next >= u.maxCells {
			return nil, fmt.Errorf("%w: %d cells", ErrLogExhausted, u.maxCells)
		}
		slot := s.inner.next
		cell := u.cells[slot]

		// Has this slot already been decided?
		winner := cell.Read(e)
		if winner == objects.Bottom {
			// Propose: help the slot's priority process if it has a
			// pending announced op, else propose ourselves. The priority
			// rotation bounds how long any announced op can wait.
			prio := slot % u.n
			proposal := me
			if s.pending(e, prio) {
				proposal = prio
			}
			cell.CompareAndSwap(e, objects.Bottom, objects.Symbol(proposal+1))
			winner = cell.Read(e)
		}
		p := int(winner) - 1

		// Resolve the winner's operation: its applied[p]-th announced op.
		entries := u.anns[p].ReadAll(e)
		j := s.inner.applied[p]
		if j >= len(entries) {
			// The winner's announcement must precede its proposal; a
			// missing entry means a helper proposed without evidence.
			return nil, fmt.Errorf("universal: slot %d decided for p%d but only %d announcements", slot, p, len(entries))
		}
		rec := entries[j].Value.(opRecord)
		next, result := u.sp.Apply(s.inner.state, sim.ProcID(p), rec.Kind, rec.Args)
		s.inner.state = next
		s.inner.applied[p]++
		s.inner.next++

		if p == me && j == myIndex {
			e.EndOp(span, result)
			return result, nil
		}
	}
}

// pending reports whether process p has an announced op not yet
// replayed by this session.
func (s *Session) pending(e *sim.Env, p int) bool {
	entries := s.inner.u.anns[p].ReadAll(e)
	return len(entries) > s.inner.applied[p]
}

// opRecord is the announced form of an operation.
type opRecord struct {
	Kind sim.OpKind
	Args []sim.Value
}

// State returns the session's replayed state fingerprint (for tests).
func (s *Session) State() string {
	return s.inner.u.sp.Fingerprint(s.inner.state)
}

// Replayed returns how many log slots this session has applied.
func (s *Session) Replayed() int { return s.inner.next }
