package sim_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/consensus"
	"repro/internal/faults"
	"repro/internal/objects"
	"repro/internal/sim"
)

// buildSymCASMachines is buildSymCAS on the sim.Machine port, so the
// incremental canon vectors are exercised on the direct-dispatch path
// (including through Snapshot/Restore in the backtracking test below).
func buildSymCASMachines(k, n int) func() *sim.System {
	spec := consensus.CASSymmetric(n)
	props := make([]sim.Value, n)
	for i := range props {
		props[i] = 100 + i
	}
	return func() *sim.System {
		sys := sim.NewSystem()
		cas := objects.NewCAS("cas", k)
		sys.Add(cas)
		for _, m := range consensus.CASMachines(sys, cas, props) {
			sys.SpawnMachine(m)
		}
		sys.DeclareSymmetry(spec)
		return sys
	}
}

// buildFaultyCAS wraps the CAS loop's register in the fault proxy so
// injected object faults (state resets, garbled answers, permanent
// object death) hit the incremental object components.
func buildFaultyCAS(rounds int) func() *sim.System {
	return func() *sim.System {
		sys := sim.NewSystem()
		fc := faults.Wrap(objects.NewCAS("c", 4))
		sys.Add(fc)
		sys.SpawnN(2, func(id sim.ProcID) sim.Program {
			return func(e *sim.Env) (sim.Value, error) {
				for r := 0; r < rounds; r++ {
					e.Apply2(fc, objects.OpCAS, objects.Bottom, objects.Symbol(int(id)+1))
					e.Apply0(fc, sim.OpRead)
				}
				return int(id), nil
			}
		})
		return sys
	}
}

// TestIncrementalFingerprintMatchesRecompute is the soundness gate of
// the incremental fingerprint cache: across randomized schedules,
// random crash injections, object-fault injections and symmetry
// canonicalization, on both runners, the incrementally maintained
// fingerprints must equal a from-scratch recompute at EVERY decision
// point. Config.VerifyFingerprints performs the comparison inside
// StateHash/StateHashCanon and panics on divergence; the scheduler here
// forces a read at every decision so no dirty-flush path goes
// unchecked. Run under -race via scripts/verify.sh.
func TestIncrementalFingerprintMatchesRecompute(t *testing.T) {
	type family struct {
		name  string
		build func() *sim.System
		canon bool
		fault bool
	}
	families := []family{
		{name: "cas-loop-program", build: func() *sim.System { return casLoop(6) }},
		{name: "cas-loop-machine", build: func() *sim.System { return casLoopMachines(6) }},
		{name: "faulty-cas-program", build: buildFaultyCAS(6), fault: true},
		{name: "sym-consensus-program", build: buildSymCAS(4, 3), canon: true},
		{name: "sym-consensus-machine", build: buildSymCASMachines(4, 3), canon: true},
	}
	modes := []sim.FaultMode{sim.FaultOmission, sim.FaultReset, sim.FaultGarble, sim.FaultCrash}
	for _, fam := range families {
		for _, force := range []bool{false, true} {
			name := fam.name
			if force {
				name += "/forced-goroutines"
			}
			t.Run(name, func(t *testing.T) {
				var canon *sim.Canonicalizer
				if fam.canon {
					probe := fam.build()
					var err error
					canon, err = sim.NewCanonicalizer(probe, probe.SymmetrySpec())
					if err != nil {
						t.Fatalf("NewCanonicalizer: %v", err)
					}
				}
				rng := rand.New(rand.NewSource(0xfb0a + int64(len(fam.name))))
				for trial := 0; trial < 40; trial++ {
					sys := fam.build()
					// Read both keyspaces at every decision point; with
					// VerifyFingerprints on, each read cross-checks the
					// cache against a from-scratch recompute.
					sched := sim.SchedulerFunc(func(ready []sim.ProcID, _ int) sim.ProcID {
						if _, ok := sys.StateHash(); !ok {
							t.Fatal("fingerprint unavailable mid-run")
						}
						sys.StateHashCanon()
						return ready[rng.Intn(len(ready))]
					})
					cfg := sim.Config{
						Scheduler:          sched,
						Fingerprint:        true,
						Canon:              canon,
						VerifyFingerprints: true,
						DisableTrace:       true,
						ForceGoroutines:    force,
					}
					if trial%2 == 1 {
						cfg.Faults = sim.RandomCrashes(int64(trial), 0.05, 1)
					}
					if fam.fault {
						inject := map[int]sim.FaultMode{
							rng.Intn(16): modes[trial%len(modes)],
						}
						cfg.ObjectFaults = sim.FaultAtSteps(inject)
					}
					if _, err := sys.Run(cfg); err != nil {
						t.Fatalf("trial %d: %v", trial, err)
					}
					// Final states verify too (buildResult's read above ran
					// unchecked paths only if the run took zero steps).
					if _, ok := sys.StateHash(); !ok {
						t.Fatalf("trial %d: final fingerprint unavailable", trial)
					}
					sys.StateHashCanon()
				}
			})
		}
	}
}

// TestFingerprintSnapshotRestore drives the in-place backtracking
// primitive with VerifyFingerprints armed on a SYMMETRIC machine
// system: snapshot mid-run, finish, restore, finish again — every
// post-restore decision point re-verifies the incremental plain AND
// canon vectors against from-scratch recomputes, pinning that Restore
// rolls the whole cache (canon vectors included) back with the state.
func TestFingerprintSnapshotRestore(t *testing.T) {
	build := buildSymCASMachines(4, 3)
	probe := build()
	canon, err := sim.NewCanonicalizer(probe, probe.SymmetrySpec())
	if err != nil {
		t.Fatalf("NewCanonicalizer: %v", err)
	}
	for _, snapStep := range []int{0, 3, 7} {
		t.Run(fmt.Sprintf("snap-at-%d", snapStep), func(t *testing.T) {
			var (
				me   *sim.MachineExec
				snap sim.Snap
				took bool
			)
			sys := build()
			sched := sim.SchedulerFunc(func(ready []sim.ProcID, step int) sim.ProcID {
				sys.StateHashCanon() // verified read at every decision
				if step == snapStep && !took {
					took = true
					me.Snapshot(&snap)
				}
				return ready[step%len(ready)]
			})
			me, err = sys.StartMachines(sim.Config{
				Scheduler:          sched,
				Fingerprint:        true,
				Canon:              canon,
				VerifyFingerprints: true,
				DisableTrace:       true,
			})
			if err != nil {
				t.Fatal(err)
			}
			res1, err := me.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !took {
				t.Fatal("snapshot point never reached")
			}
			fp1, v1 := res1.Fingerprint, fmt.Sprint(res1.Values)
			me.Restore(snap.ReaderAt(0, 0))
			res2, err := me.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res2.Fingerprint != fp1 || fmt.Sprint(res2.Values) != v1 {
				t.Fatalf("restored run differs: %x %v vs %x %v",
					res2.Fingerprint, res2.Values, fp1, v1)
			}
		})
	}
}
