package sim

import "math/rand"

// Halt is the sentinel a Scheduler returns from Next to stop the run:
// remaining processes are recorded as halted (ErrHalted) and the Result
// carries the ready set at the halt point. The schedule explorer uses
// this to expand run prefixes.
const Halt ProcID = -1

// Scheduler chooses which ready process takes the next step. ready is
// non-empty and sorted ascending; step is the global step count so far.
// The runner reuses the ready slice between decisions, so
// implementations must treat it as read-only and must not retain it
// past the call. Implementations must be deterministic to keep runs
// reproducible.
type Scheduler interface {
	Next(ready []ProcID, step int) ProcID
}

// SchedulerFunc adapts a function to the Scheduler interface.
type SchedulerFunc func(ready []ProcID, step int) ProcID

// Next implements Scheduler.
func (f SchedulerFunc) Next(ready []ProcID, step int) ProcID { return f(ready, step) }

// RoundRobin cycles through ready processes in ID order, resuming after
// the last process it scheduled.
func RoundRobin() Scheduler {
	last := ProcID(-1)
	return SchedulerFunc(func(ready []ProcID, _ int) ProcID {
		for _, id := range ready {
			if id > last {
				last = id
				return id
			}
		}
		last = ready[0]
		return ready[0]
	})
}

// Random schedules uniformly at random with a fixed seed, giving
// reproducible "chaotic" interleavings.
func Random(seed int64) Scheduler {
	rng := rand.New(rand.NewSource(seed))
	return SchedulerFunc(func(ready []ProcID, _ int) ProcID {
		return ready[rng.Intn(len(ready))]
	})
}

// Replay plays a fixed schedule, then halts. A scheduled process that
// is not ready (it finished or crashed) halts the run too: the prefix
// no longer matches the system, which replay-based exploration treats
// as a dead branch.
func Replay(schedule []ProcID) Scheduler {
	i := 0
	return SchedulerFunc(func(ready []ProcID, _ int) ProcID {
		if i >= len(schedule) {
			return Halt
		}
		id := schedule[i]
		i++
		for _, r := range ready {
			if r == id {
				return id
			}
		}
		return Halt
	})
}

// ReplayThen plays a fixed schedule prefix and then delegates to next
// for the rest of the run.
func ReplayThen(schedule []ProcID, next Scheduler) Scheduler {
	i := 0
	return SchedulerFunc(func(ready []ProcID, step int) ProcID {
		if i < len(schedule) {
			id := schedule[i]
			i++
			for _, r := range ready {
				if r == id {
					return id
				}
			}
			return Halt
		}
		return next.Next(ready, step)
	})
}

// Solo runs a single process to completion first, then falls back to
// round-robin for the rest — the classic "run alone" adversary used in
// wait-freedom arguments.
func Solo(id ProcID) Scheduler {
	rr := RoundRobin()
	return SchedulerFunc(func(ready []ProcID, step int) ProcID {
		for _, r := range ready {
			if r == id {
				return id
			}
		}
		return rr.Next(ready, step)
	})
}

// Recording wraps a scheduler and appends every choice to dst, so a run
// can later be replayed exactly.
func Recording(inner Scheduler, dst *[]ProcID) Scheduler {
	return SchedulerFunc(func(ready []ProcID, step int) ProcID {
		id := inner.Next(ready, step)
		if id != Halt {
			*dst = append(*dst, id)
		}
		return id
	})
}

// FaultPlan injects crash failures. Before every scheduling decision
// the runner asks the plan which ready processes to crash now; crashed
// processes take no further steps (fail-stop). The ready slice is
// reused between calls: treat it as read-only and do not retain it.
type FaultPlan interface {
	CrashNow(ready []ProcID, step int) []ProcID
}

// FaultPlanFunc adapts a function to the FaultPlan interface.
type FaultPlanFunc func(ready []ProcID, step int) []ProcID

// CrashNow implements FaultPlan.
func (f FaultPlanFunc) CrashNow(ready []ProcID, step int) []ProcID { return f(ready, step) }

// CrashAt crashes given processes at given global step counts.
// The map is from step count to the processes to crash at that step.
func CrashAt(plan map[int][]ProcID) FaultPlan {
	return FaultPlanFunc(func(_ []ProcID, step int) []ProcID {
		return plan[step]
	})
}

// CrashAfterSteps crashes a process once it has taken n steps. It needs
// per-process step counts, which the runner does not pass, so it tracks
// grants itself via a wrapping scheduler; use NewStepBudget instead for
// that pattern. CrashAfterSteps crashes id at the first decision point
// at or after global step n.
func CrashAfterSteps(id ProcID, n int) FaultPlan {
	done := false
	return FaultPlanFunc(func(ready []ProcID, step int) []ProcID {
		if done || step < n {
			return nil
		}
		for _, r := range ready {
			if r == id {
				done = true
				return []ProcID{id}
			}
		}
		return nil
	})
}

// RandomCrashes crashes up to maxCrashes distinct processes at random
// decision points with probability p per decision, seeded for
// reproducibility.
//
// The returned plan is SINGLE-USE: it advances its RNG and crash count
// on every decision, so handing one plan to a second run continues
// where the first run left off and is not a reproduction of it. Build a
// fresh plan per run, or call Reset between runs to rewind it to its
// seed state.
func RandomCrashes(seed int64, p float64, maxCrashes int) *RandomCrashPlan {
	r := &RandomCrashPlan{seed: seed, p: p, max: maxCrashes}
	r.Reset()
	return r
}

// RandomCrashPlan is the stateful FaultPlan built by RandomCrashes.
type RandomCrashPlan struct {
	seed    int64
	p       float64
	max     int
	rng     *rand.Rand
	crashed int
}

var _ FaultPlan = (*RandomCrashPlan)(nil)

// Reset rewinds the plan to its initial seed state, so the next run it
// drives reproduces the first one exactly.
func (r *RandomCrashPlan) Reset() {
	r.rng = rand.New(rand.NewSource(r.seed))
	r.crashed = 0
}

// CrashNow implements FaultPlan.
func (r *RandomCrashPlan) CrashNow(ready []ProcID, _ int) []ProcID {
	if r.crashed >= r.max || len(ready) == 0 {
		return nil
	}
	if r.rng.Float64() >= r.p {
		return nil
	}
	r.crashed++
	return []ProcID{ready[r.rng.Intn(len(ready))]}
}
