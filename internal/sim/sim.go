// Package sim provides a deterministic simulator for asynchronous
// shared-memory systems, the computation model of Afek & Stupp,
// "Delimiting the Power of Bounded Size Synchronization Objects"
// (PODC 1994).
//
// A System hosts a set of shared objects (registers, compare&swap
// registers, and any other type implementing Object) and a set of
// processes. Each process is an ordinary Go function running in its own
// goroutine, but every shared-memory operation is funneled through a
// scheduler gate: the process blocks until the scheduler grants it a
// step, performs exactly one atomic operation, then runs its local code
// until the next shared operation. The runner and the processes
// alternate in strict lockstep, so a run is fully determined by the
// Scheduler's choices — the same seed always yields the same trace.
//
// The model is the standard asynchronous one: processes may be
// arbitrarily slow (the scheduler may starve them) and may fail by
// crashing (fail-stop); a crashed process takes no further steps.
// Wait-freedom of a protocol is checked by bounding the number of steps
// any process may take.
package sim

import (
	"errors"
	"fmt"
)

// ProcID identifies a process within a System. IDs are dense and start
// at zero in spawn order.
type ProcID int

// Value is the type of data held by shared objects and returned by
// operations. Protocols use small ints and immutable composites.
type Value = any

// Program is the code of one process. It runs in its own goroutine and
// must perform all shared-memory interaction through the Env. The
// returned Value is the process's decision (its output in a decision
// task); returning an error marks the process as failed.
//
// Programs must be deterministic and must not communicate with each
// other except through shared objects.
type Program func(e *Env) (Value, error)

// ErrCrashed is the error recorded for a process that was crashed by
// the fault plan before it decided.
var ErrCrashed = errors.New("sim: process crashed")

// ErrStepLimit is the error recorded for a process that exceeded the
// per-process step bound (a wait-freedom violation under the bound).
var ErrStepLimit = errors.New("sim: per-process step limit exceeded")

// ErrHalted is the error recorded for processes still live when the
// scheduler halted the run.
var ErrHalted = errors.New("sim: run halted by scheduler")

// errCrashSignal is the panic payload used to unwind a crashed process.
type errCrashSignal struct{}

// opError unwinds a process whose operation was rejected by an object
// (for example a non-owner writing a single-writer register).
type opError struct{ err error }

// System is a single-use simulated shared-memory machine. Configure it
// with objects and processes, then call Run exactly once.
type System struct {
	objects map[string]Object
	procs   []*proc
	events  chan procEvent
	trace   *Trace
	steps   int
	ran     bool
	// fingerprint enables observation hashing (Config.Fingerprint);
	// objNames caches the sorted object names for StateHash.
	fingerprint bool
	objNames    []string
	// fp is the incremental fingerprint cache (see fingerprint.go);
	// verifyFP (Config.VerifyFingerprints) cross-checks it against
	// from-scratch recomputes on every read. scratch is Config.Scratch,
	// retained so the cache can draw its vectors from it.
	fp       fpState
	verifyFP bool
	scratch  *Scratch
	// objFaults is Config.ObjectFaults, consulted by Env.Apply.
	objFaults ObjectFaultPlan
	// symmetry is the protocol's declared process-symmetry spec (see
	// DeclareSymmetry); canon is the validated Canonicalizer installed
	// by Config.Canon for this run. Both nil unless symmetry reduction
	// is in play.
	symmetry *Symmetry
	canon    *Canonicalizer
}

type proc struct {
	id      ProcID
	program Program
	// machine is non-nil for processes added with SpawnMachine; when
	// every process has one, Run takes the direct-dispatch fast path
	// (see machine.go) unless Config.ForceGoroutines is set.
	machine Machine
	grant   chan struct{}
	steps   int
	value   Value
	err     error
	crashed bool
	done    bool
	// lastStep is the global index of this process's most recent shared
	// step; -1 before its first step. Used to close operation spans.
	lastStep int
	// opHash is the FNV-1a fold of this process's observation history
	// (every operation it performed with its result), maintained only
	// when Config.Fingerprint is set. See System.StateHash.
	opHash uint64
	// permHash[k-1] is opHash as it would be in the execution renamed
	// under the canonicalizer's permutation k (identity elided — it
	// provably equals opHash). Maintained only when Config.Canon is set.
	permHash []uint64
	// pendingObj is the name of the object this process's NEXT granted
	// step operates on, published just before the process parks at the
	// scheduler gate. See System.PendingObject.
	pendingObj string
	// spans are the high-level operation spans this process opened;
	// pending are those whose start index is not yet known (no shared
	// step since BeginOp).
	spans   []*Span
	pending []*Span
	// env is this process's Env handle, embedded so runProc does not
	// allocate one per process per run.
	env Env
	// argbuf backs the fixed-arity Apply0/1/2 fast paths, so common
	// operations need no per-call argument slice.
	argbuf [3]Value
}

type procEvent struct {
	id       ProcID
	finished bool
}

// NewSystem returns an empty system.
func NewSystem() *System {
	return &System{
		objects: make(map[string]Object),
		trace:   &Trace{},
	}
}

// Add registers a shared object. It panics if the name is already
// taken: object sets are static protocol structure, and a duplicate is
// a programming error, not a runtime condition.
func (s *System) Add(o Object) {
	name := o.Name()
	if _, ok := s.objects[name]; ok {
		panic(fmt.Sprintf("sim: duplicate object %q", name))
	}
	s.objects[name] = o
}

// Object returns the registered object with the given name, or nil.
func (s *System) Object(name string) Object {
	return s.objects[name]
}

// Spawn adds a process running the given program and returns its ID.
func (s *System) Spawn(p Program) ProcID {
	id := ProcID(len(s.procs))
	s.procs = append(s.procs, &proc{
		id:       id,
		program:  p,
		grant:    make(chan struct{}),
		lastStep: -1,
		opHash:   fnvOffset64,
	})
	return id
}

// SpawnN adds n processes whose programs are produced by f(id).
func (s *System) SpawnN(n int, f func(id ProcID) Program) {
	for i := 0; i < n; i++ {
		s.Spawn(f(ProcID(len(s.procs))))
	}
}

// NumProcs reports the number of spawned processes.
func (s *System) NumProcs() int { return len(s.procs) }

// Config controls a run.
type Config struct {
	// Scheduler picks the next process to step. Defaults to RoundRobin.
	Scheduler Scheduler
	// Faults optionally crashes processes during the run.
	Faults FaultPlan
	// ObjectFaults optionally injects object-level faults: before each
	// step's operation executes, the plan is asked whether that
	// operation misbehaves (see ObjectFaultPlan and Faultable).
	ObjectFaults ObjectFaultPlan
	// MaxStepsPerProc bounds the steps of any single process; a process
	// exceeding it is stopped with ErrStepLimit. Zero means no bound.
	MaxStepsPerProc int
	// MaxTotalSteps bounds the whole run as a safety net against
	// non-terminating protocols. Zero means DefaultMaxTotalSteps.
	MaxTotalSteps int
	// DisableTrace turns off event recording (useful in benchmarks).
	DisableTrace bool
	// Fingerprint enables per-step observation hashing so that
	// System.StateHash (and Result.Fingerprint) are available. Off by
	// default: hashing costs a few string formats per shared step.
	Fingerprint bool
	// Canon, if set (and Fingerprint is on), additionally maintains the
	// per-permutation observation hashes that System.StateHashCanon
	// needs. The Canonicalizer is read-only and safely shared across
	// concurrent runs; see NewCanonicalizer.
	Canon *Canonicalizer
	// VerifyFingerprints cross-checks the incrementally maintained
	// fingerprints against from-scratch recomputes at every read,
	// panicking on divergence. Debug mode: it restores the O(state)
	// (× |G| for canon) per-probe cost the incremental scheme removes.
	VerifyFingerprints bool
	// ForceGoroutines disables the direct-dispatch fast path for fully
	// machine-backed systems, running them through the goroutine runner
	// instead. The two paths are semantically identical; this exists for
	// cross-checking and benchmarks.
	ForceGoroutines bool
	// OnStep, if set, is called from the runner goroutine after each
	// granted shared-memory step with the cumulative step count. It is
	// the progress-heartbeat hook for exploration supervisors; it must
	// not block and must not touch the System.
	OnStep func(step int)
	// Scratch, if set, supplies reusable buffers for the Result and the
	// runner's ready set, eliminating per-run allocations in tight
	// exploration loops. The returned Result aliases the Scratch; see
	// the Scratch ownership contract.
	Scratch *Scratch
}

// DefaultMaxTotalSteps is the total step safety bound used when
// Config.MaxTotalSteps is zero.
const DefaultMaxTotalSteps = 1 << 20

// Result reports the outcome of a run.
type Result struct {
	// Values[i] is the decision of process i (nil if it failed).
	Values []Value
	// Errors[i] is non-nil if process i crashed, was halted, exceeded
	// its step bound, returned an error, or performed an illegal
	// operation.
	Errors []error
	// Crashed[i] reports whether process i was crashed by the fault plan.
	Crashed []bool
	// Steps[i] is the number of shared-memory steps process i took.
	Steps []int
	// TotalSteps is the number of shared-memory steps in the run.
	TotalSteps int
	// Halted reports that the scheduler stopped the run early (see
	// Scheduler); ReadyAtHalt lists the processes that were still live.
	Halted      bool
	ReadyAtHalt []ProcID
	// Trace is the recorded event history (nil if disabled).
	Trace *Trace
	// Fingerprint is the hash of the final global state (object state
	// keys plus per-process observation histories), valid only when
	// FingerprintOK: Config.Fingerprint was set and every object
	// implements StateKeyer. See System.StateHash.
	Fingerprint   uint64
	FingerprintOK bool
}

// Decided returns the IDs of processes that produced a decision.
func (r *Result) Decided() []ProcID {
	var ids []ProcID
	for i, err := range r.Errors {
		if err == nil {
			ids = append(ids, ProcID(i))
		}
	}
	return ids
}

// Decisions returns the multiset of decision values of all processes
// that decided, indexed by process.
func (r *Result) Decisions() map[ProcID]Value {
	m := make(map[ProcID]Value, len(r.Values))
	for _, id := range r.Decided() {
		m[id] = r.Values[id]
	}
	return m
}

// DistinctDecisions returns the set of distinct decision values among
// processes that decided. Values must be comparable.
func (r *Result) DistinctDecisions() []Value {
	seen := make(map[Value]bool)
	var out []Value
	for _, id := range r.Decided() {
		v := r.Values[id]
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// Run executes the system to completion under cfg and returns the
// result. A System can be run only once; rebuild it (deterministically)
// to replay. Run returns an error only on misuse (no processes, second
// run, or an invalid scheduler choice); protocol-level failures are
// reported per process inside the Result.
func (s *System) Run(cfg Config) (*Result, error) {
	if !cfg.ForceGoroutines && s.machineBacked() && !s.ran {
		// Direct-dispatch fast path: every process is a state machine,
		// so the run needs no goroutines or channels at all.
		m, err := s.StartMachines(cfg)
		if err != nil {
			return nil, err
		}
		return m.Run()
	}
	if s.ran {
		return nil, errors.New("sim: system already ran")
	}
	s.ran = true
	if len(s.procs) == 0 {
		return nil, errors.New("sim: no processes")
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = RoundRobin()
	}
	if cfg.MaxTotalSteps == 0 {
		cfg.MaxTotalSteps = DefaultMaxTotalSteps
	}
	if cfg.DisableTrace {
		s.trace = nil
	}
	s.fingerprint = cfg.Fingerprint
	s.verifyFP = cfg.VerifyFingerprints
	s.scratch = cfg.Scratch
	s.objFaults = cfg.ObjectFaults
	if cfg.Canon != nil && cfg.Fingerprint {
		s.canon = cfg.Canon
		if np := cfg.Canon.NumPerms() - 1; np > 0 {
			var buf []uint64
			if cfg.Scratch != nil {
				buf = cfg.Scratch.permBuf(np * len(s.procs))
			} else {
				buf = make([]uint64, np*len(s.procs))
			}
			for i := range buf {
				buf[i] = fnvOffset64
			}
			for i, p := range s.procs {
				p.permHash = buf[i*np : (i+1)*np : (i+1)*np]
			}
		}
	}

	s.events = make(chan procEvent)
	for _, p := range s.procs {
		go s.runProc(p)
	}
	// The ready set is a sorted slice maintained in place (insertion on
	// step completion, removal on grant/crash). Schedulers and fault
	// plans see the live slice — it is reused between calls and must
	// not be retained. Slices stay tiny (≤ NumProcs), so ordered
	// insertion beats the old map + sort-per-decision by a wide margin
	// and allocates nothing after warm-up.
	var ready []ProcID
	if cfg.Scratch != nil {
		ready = cfg.Scratch.readyBuf(len(s.procs))
	} else {
		ready = make([]ProcID, 0, len(s.procs))
	}
	// Wait for every process to arrive at its first gate (or finish
	// without taking any shared step).
	pending := len(s.procs)
	for pending > 0 {
		ev := <-s.events
		pending--
		if !ev.finished {
			ready = insertReady(ready, ev.id)
		}
	}

	halted := false
	for len(ready) > 0 {
		if s.steps >= cfg.MaxTotalSteps {
			halted = true
			break
		}
		if cfg.Faults != nil {
			crashNow := cfg.Faults.CrashNow(ready, s.steps)
			for _, id := range crashNow {
				var ok bool
				if ready, ok = removeReady(ready, id); ok {
					s.crash(id)
				}
			}
			if len(ready) == 0 {
				break
			}
		}
		next := cfg.Scheduler.Next(ready, s.steps)
		if next == Halt {
			halted = true
			break
		}
		var inSet bool
		if ready, inSet = removeReady(ready, next); !inSet {
			s.abort(ready)
			return nil, fmt.Errorf("sim: scheduler chose process %d, not in ready set %v", next, ready)
		}
		p := s.procs[next]
		if cfg.MaxStepsPerProc > 0 && p.steps >= cfg.MaxStepsPerProc {
			s.crashWith(next, ErrStepLimit)
			continue
		}
		p.grant <- struct{}{}
		ev := <-s.events
		s.steps++
		if cfg.OnStep != nil {
			cfg.OnStep(s.steps)
		}
		if !ev.finished {
			ready = insertReady(ready, ev.id)
		} else if s.fingerprint {
			// The process's status component changed (done/value/err set
			// by runProc after its last operation's fold).
			s.fpTouchProc(int(ev.id))
		}
	}

	return s.buildResult(&cfg, ready, halted, func(id ProcID) {
		s.crashWith(id, ErrHalted)
	}), nil
}

// buildResult assembles the Result after a run's scheduling loop ends.
// halt tears down one still-ready process with ErrHalted; it differs
// between the goroutine runner (gate teardown) and the machine runner
// (direct marking), which otherwise share this tail verbatim.
func (s *System) buildResult(cfg *Config, ready []ProcID, halted bool, halt func(ProcID)) *Result {
	var res *Result
	if cfg.Scratch != nil {
		res = cfg.Scratch.prep(len(s.procs))
	} else {
		res = &Result{
			Values:  make([]Value, len(s.procs)),
			Errors:  make([]error, len(s.procs)),
			Crashed: make([]bool, len(s.procs)),
			Steps:   make([]int, len(s.procs)),
		}
	}
	res.TotalSteps = s.steps
	res.Halted = halted
	res.Trace = s.trace
	if halted {
		if cfg.Scratch != nil {
			res.ReadyAtHalt = cfg.Scratch.haltList(ready)
		} else {
			res.ReadyAtHalt = append([]ProcID(nil), ready...)
		}
		for _, id := range ready {
			halt(id)
		}
	}
	res.Fingerprint, res.FingerprintOK = s.StateHash()
	for i, p := range s.procs {
		res.Values[i] = p.value
		res.Errors[i] = p.err
		res.Crashed[i] = p.crashed
		res.Steps[i] = p.steps
		if s.trace != nil {
			// Drop spans that never took a shared step: they have no
			// footprint in the run.
			for _, sp := range p.spans {
				if sp.Start >= 0 {
					s.trace.addSpan(sp)
				}
			}
		}
	}
	return res
}

// runProc is the goroutine wrapper for one process.
func (s *System) runProc(p *proc) {
	defer func() {
		if r := recover(); r != nil {
			switch e := r.(type) {
			case errCrashSignal:
				p.crashed = true
				p.err = ErrCrashed
			case opError:
				p.err = e.err
			default:
				panic(r) // real bug in protocol code: do not mask it
			}
		}
		p.done = true
		s.events <- procEvent{id: p.id, finished: true}
	}()
	p.env = Env{sys: s, proc: p}
	v, err := p.program(&p.env)
	p.value, p.err = v, err
}

// crash tears down a process parked at its gate and waits for its
// finish event so the runner stays in lockstep.
func (s *System) crash(id ProcID) {
	p := s.procs[id]
	close(p.grant)
	<-s.events // the finish event of p
	if s.fingerprint {
		s.fpTouchProc(int(id))
	}
}

// crashWith is crash with a specific recorded error.
func (s *System) crashWith(id ProcID, err error) {
	s.crash(id)
	p := s.procs[id]
	p.err = err
	p.crashed = err == ErrCrashed
}

// abort crashes every remaining ready process (used on misuse errors so
// goroutines do not leak).
func (s *System) abort(ready []ProcID) {
	for _, id := range ready {
		s.crash(id)
	}
}

// insertReady inserts id into the sorted ready slice. Ready sets have
// at most NumProcs elements, so a backwards linear scan is both the
// simplest and the fastest ordered insert.
func insertReady(ready []ProcID, id ProcID) []ProcID {
	i := len(ready)
	for i > 0 && ready[i-1] > id {
		i--
	}
	ready = append(ready, 0)
	copy(ready[i+1:], ready[i:])
	ready[i] = id
	return ready
}

// removeReady removes id from the sorted ready slice, reporting whether
// it was present.
func removeReady(ready []ProcID, id ProcID) ([]ProcID, bool) {
	for i, r := range ready {
		if r == id {
			copy(ready[i:], ready[i+1:])
			return ready[:len(ready)-1], true
		}
		if r > id {
			break
		}
	}
	return ready, false
}
