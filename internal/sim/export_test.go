package sim

// StateHashCanonScratch is the pre-incremental StateHashCanon: a full
// from-scratch fold of every permutation's state at the point of call
// (the per-permutation observation hashes are stream-maintained either
// way). Exported to the test binary so BenchmarkSimStep can price the
// cost the incremental canon cache removes — the recorded gap between
// the fingerprint=canon and fingerprint=canon-scratch rows is the
// acceptance evidence for the ≥|G|/2× criterion.
func (s *System) StateHashCanonScratch() (uint64, int, bool) {
	c := s.canon
	if c == nil {
		fp, ok := s.fpPlainScratch()
		return fp, 0, ok
	}
	for _, p := range s.procs {
		if p.done && p.err != nil && !isSentinelErr(p.err) {
			fp, ok := s.fpPlainScratch()
			return fp, 0, ok
		}
	}
	var best uint64
	bestK := 0
	for k := range c.perms {
		fp, ok := s.stateHashUnder(k)
		if !ok {
			fp2, ok2 := s.fpPlainScratch()
			return fp2, 0, ok2
		}
		if k == 0 || fp < best {
			best, bestK = fp, k
		}
	}
	return best, bestK, true
}
