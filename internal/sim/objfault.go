package sim

// Object-level fault injection. The paper's processes fail by crashing
// (fail-stop); this file adds the orthogonal axis the robustness
// experiments study: the *shared objects* themselves misbehaving. A
// FaultMode names one failure semantics; an ObjectFaultPlan decides, at
// each scheduler-granted step, whether the shared-memory operation
// performed at that step is injected with a fault. The runner consults
// the plan exactly once per step (every step is exactly one operation),
// so fault placements are enumerable by the explore package in the same
// way crash placements are.
//
// The semantics of each mode live with the object, behind the Faultable
// interface — sim only routes. The canonical Faultable implementation
// is the wrapper in internal/faults.

// FaultMode names one object failure semantics.
type FaultMode int

const (
	// FaultNone means the operation executes healthily.
	FaultNone FaultMode = iota
	// FaultCrash stops the object permanently: this and every later
	// operation on it answers the ErrObjectFailed sentinel.
	FaultCrash
	// FaultOmission silently drops a mutating operation (write, c&s)
	// while reporting success; reads may later return stale values.
	FaultOmission
	// FaultReset reverts the object to its initial value before the
	// operation executes.
	FaultReset
	// FaultGarble executes the operation but replaces its response with
	// a wrong value drawn from the operation's own bounded interface
	// alphabet (deterministically, so schedules stay enumerable).
	FaultGarble
)

// String implements fmt.Stringer.
func (m FaultMode) String() string {
	switch m {
	case FaultNone:
		return "none"
	case FaultCrash:
		return "crash"
	case FaultOmission:
		return "omission"
	case FaultReset:
		return "reset"
	case FaultGarble:
		return "garble"
	default:
		return "invalid"
	}
}

// Faultable is implemented by objects that support injected faults.
// ApplyFault executes op under the given fault mode; the object owns
// the semantics (what "omission" means for a queue differs from a
// register). A mode the object cannot express must degrade to a healthy
// Apply, never to an error: fault injection may weaken an operation but
// must not invent protocol-level illegality.
type Faultable interface {
	Object
	ApplyFault(caller ProcID, op OpKind, args []Value, mode FaultMode) (Value, error)
}

// Resettable is implemented by objects that can revert to their initial
// state, the hook FaultReset uses.
type Resettable interface {
	ResetObject()
}

// ObjectFaultPlan decides which steps carry an injected object fault.
// FaultOp is called exactly once per granted step, with the global step
// index, before the step's operation executes; returning FaultNone
// leaves the operation healthy. Implementations must be deterministic.
type ObjectFaultPlan interface {
	FaultOp(step int) FaultMode
}

// ObjectFaultPlanFunc adapts a function to the ObjectFaultPlan interface.
type ObjectFaultPlanFunc func(step int) FaultMode

// FaultOp implements ObjectFaultPlan.
func (f ObjectFaultPlanFunc) FaultOp(step int) FaultMode { return f(step) }

// FaultAtSteps injects the given fault modes at the given global step
// indices — the deterministic schedule form used by targeted tests.
func FaultAtSteps(plan map[int]FaultMode) ObjectFaultPlan {
	return ObjectFaultPlanFunc(func(step int) FaultMode {
		return plan[step]
	})
}
