package sim_test

import (
	"testing"

	"repro/internal/objects"
	"repro/internal/sim"
)

// rrSched schedules ready processes round-robin without allocating.
type rrSched struct{ i int }

func (s *rrSched) Next(ready []sim.ProcID, _ int) sim.ProcID {
	s.i++
	return ready[s.i%len(ready)]
}

// casLoop is a 2-process system whose steady state is pure hot path:
// after the first round the register never changes again (the CAS
// fails, the read returns a constant), so every extra round is exactly
// 4 shared steps through Apply2/Apply0, fault dispatch, fingerprint
// folding and the scheduler gate.
func casLoop(rounds int) *sim.System {
	sys := sim.NewSystem()
	cas := objects.NewCAS("c", 4)
	sys.Add(cas)
	sys.SpawnN(2, func(id sim.ProcID) sim.Program {
		return func(e *sim.Env) (sim.Value, error) {
			for r := 0; r < rounds; r++ {
				e.Apply2(cas, objects.OpCAS, objects.Bottom, objects.Symbol(int(id)+1))
				e.Apply0(cas, sim.OpRead)
			}
			return int(id), nil
		}
	})
	return sys
}

// TestSimStepAllocFree is the allocation regression guard for the sim
// hot path: with a reused Scratch, fingerprinting on and tracing off —
// the exploration census configuration — an additional shared step must
// allocate NOTHING. Measured differentially: runs of 96 and 32 rounds
// differ only in 256 extra steps, so any per-step allocation shows up
// as a nonzero delta while per-run costs (system construction,
// goroutine spawns) cancel.
func TestSimStepAllocFree(t *testing.T) {
	sc := sim.NewScratch()
	allocs := func(rounds int) float64 {
		return testing.AllocsPerRun(20, func() {
			sys := casLoop(rounds)
			_, err := sys.Run(sim.Config{
				Scheduler:    &rrSched{},
				Fingerprint:  true,
				DisableTrace: true,
				Scratch:      sc,
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
	short := allocs(32)
	long := allocs(96)
	if delta := long - short; delta > 0 {
		t.Fatalf("256 extra steps allocate %.1f objects (%.4f/step), want 0", delta, delta/256)
	}
}
