package sim_test

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkSimStep prices one granted shared step of the lockstep
// runner in the exploration configuration (reused Scratch, tracing
// off), with and without observation fingerprinting — the hash folding
// is the only difference between the two rows, so their gap is the
// binary FNV-1a fold's cost. scripts/bench_hotpath.sh records both as
// BENCH_hotpath.json; the allocs/op column is the same guard as
// TestSimStepAllocFree, visible in the recorded numbers.
func BenchmarkSimStep(b *testing.B) {
	for _, mode := range []string{"goroutine", "machine"} {
		for _, fp := range []bool{false, true} {
			// The goroutine rows keep their original names so recorded
			// baselines stay comparable; the machine rows are new names.
			name := "fingerprint=off"
			if fp {
				name = "fingerprint=on"
			}
			if mode == "machine" {
				name = "machine," + name
			}
			b.Run(name, func(b *testing.B) {
				sc := sim.NewScratch()
				const rounds = 64
				steps := 0
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var sys *sim.System
					if mode == "machine" {
						sys = casLoopMachines(rounds)
					} else {
						sys = casLoop(rounds)
					}
					res, err := sys.Run(sim.Config{
						Scheduler:    &rrSched{},
						Fingerprint:  fp,
						DisableTrace: true,
						Scratch:      sc,
					})
					if err != nil {
						b.Fatal(err)
					}
					steps += res.TotalSteps
				}
				b.StopTimer()
				if steps == 0 {
					b.Fatal("no steps executed")
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(steps), "ns/step")
			})
		}
	}
}
