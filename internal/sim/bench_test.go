package sim_test

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/objects"
	"repro/internal/registers"
	"repro/internal/sim"
)

// symLoopSpec declares the process symmetry of the symLoop workload:
// full symmetric group, ID-valued announce cells and CAS symbols
// renamed through the permutation, per-process cells renamed by name.
func symLoopSpec(n int) *sim.Symmetry {
	return &sim.Symmetry{
		Perms: sim.FullPerms(n),
		RenameValue: func(v sim.Value, perm []sim.ProcID) sim.Value {
			switch x := v.(type) {
			case int:
				if x >= 0 && x < n {
					return int(perm[x])
				}
			case objects.Symbol:
				if x != objects.Bottom && int(x) <= n {
					return objects.Symbol(int(perm[int(x)-1]) + 1)
				}
			}
			return v
		},
		RenameObject: func(name string, perm []sim.ProcID) string {
			if len(name) > 2 && name[1] == '[' {
				i, err := strconv.Atoi(name[2 : len(name)-1])
				if err == nil {
					return fmt.Sprintf("%c[%d]", name[0], perm[i])
				}
			}
			return name
		},
		RenameOutcome: func(key string, perm []sim.ProcID) string {
			return sim.RenameIntKey(key, func(i int) int { return int(perm[i]) })
		},
	}
}

// symLoop is the symmetric steady-state workload behind the canon
// benchmark rows, shaped like the protocol censuses that use the canon
// keyspace (an announce array, a feedback array, one shared oracle —
// cf. the degrading-election and hierarchy-witness protocols): n
// processes, each round writing the process's own announce and
// feedback cells, then CAS-ing the shared register (failing after the
// first round), then reading it — 4 shared steps per round, each
// touching one of 2n+1 objects.
func symLoop(rounds, n int) *sim.System {
	sys := sim.NewSystem()
	cas := objects.NewCAS("c", n+1)
	sys.Add(cas)
	ann := registers.NewArray(sys, "a", n, nil)
	fb := registers.NewArray(sys, "b", n, nil)
	sys.SpawnN(n, func(id sim.ProcID) sim.Program {
		return func(e *sim.Env) (sim.Value, error) {
			own, fbOwn := ann.Reg(int(id)), fb.Reg(int(id))
			for r := 0; r < rounds; r++ {
				own.Write(e, int(id))
				fbOwn.Write(e, int(id))
				e.Apply2(cas, objects.OpCAS, objects.Bottom, objects.Symbol(int(id)+1))
				e.Apply0(cas, sim.OpRead)
			}
			return int(id), nil
		}
	})
	sys.DeclareSymmetry(symLoopSpec(n))
	return sys
}

// symLoopMachine is symLoop's process as a resumable state machine.
type symLoopMachine struct {
	own    *registers.SWMR
	fb     *registers.SWMR
	cas    *objects.CAS
	id     int
	rounds int
	r, pc  int
}

func (m *symLoopMachine) Pending() sim.MachineOp {
	switch m.pc {
	case 0:
		return sim.MachineOp{Obj: m.own, Op: sim.OpWrite, NArgs: 1,
			Args: [2]sim.Value{m.id}}
	case 1:
		return sim.MachineOp{Obj: m.fb, Op: sim.OpWrite, NArgs: 1,
			Args: [2]sim.Value{m.id}}
	case 2:
		return sim.MachineOp{Obj: m.cas, Op: objects.OpCAS, NArgs: 2,
			Args: [2]sim.Value{objects.Bottom, objects.Symbol(m.id + 1)}}
	default:
		return sim.MachineOp{Obj: m.cas, Op: sim.OpRead}
	}
}

func (m *symLoopMachine) Finish(sim.Value) (bool, sim.Value, error) {
	if m.pc < 3 {
		m.pc++
		return false, nil, nil
	}
	m.pc = 0
	m.r++
	if m.r == m.rounds {
		return true, m.id, nil
	}
	return false, nil, nil
}

func (m *symLoopMachine) Save(s *sim.Snap) {
	s.Int(m.r)
	s.Int(m.pc)
}

func (m *symLoopMachine) Restore(r *sim.SnapReader) {
	m.r = r.Int()
	m.pc = r.Int()
}

// symLoopMachines is symLoop with machine-backed processes.
func symLoopMachines(rounds, n int) *sim.System {
	sys := sim.NewSystem()
	cas := objects.NewCAS("c", n+1)
	sys.Add(cas)
	ann := registers.NewArray(sys, "a", n, nil)
	fb := registers.NewArray(sys, "b", n, nil)
	for id := 0; id < n; id++ {
		sys.SpawnMachine(&symLoopMachine{
			own: ann.Reg(id), fb: fb.Reg(id), cas: cas, id: id, rounds: rounds,
		})
	}
	sys.DeclareSymmetry(symLoopSpec(n))
	return sys
}

// symLoopCanon builds the Canonicalizer for symLoop's shape once, so
// benchmark iterations pay only the per-run slice headers.
func symLoopCanon(b testing.TB, n int) *sim.Canonicalizer {
	probe := symLoop(1, n)
	canon, err := sim.NewCanonicalizer(probe, probe.SymmetrySpec())
	if err != nil {
		b.Fatal(err)
	}
	return canon
}

// BenchmarkSimStep prices one granted shared step of the lockstep
// runner in the exploration configuration (reused Scratch, tracing
// off), across the fingerprint modes:
//
//	fingerprint=off    no observation hashing
//	fingerprint=on     per-step result fold + incremental plain cache
//	fingerprint=canon  symmetric workload (|G| = 3! = 6), the
//	                   canonical fingerprint READ at every decision
//	                   point — the census usage pattern — served from
//	                   the incrementally patched per-permutation cache
//	canon-scratch      same reads answered by a full |G|-fold recompute
//	                   (the pre-incremental StateHashCanon), kept as
//	                   the comparison row for the ≥|G|/2× criterion
//
// scripts/bench_hotpath.sh records every row into BENCH_hotpath.json;
// the allocs/op column is the same guard as TestSimStepAllocFree /
// TestMachineStepAllocFree, visible in the recorded numbers.
func BenchmarkSimStep(b *testing.B) {
	type row struct {
		name    string
		machine bool
		fp      bool
		canon   string // "" plain, "incr" cached, "scratch" full refold
	}
	rows := []row{
		// The goroutine rows keep their original names so recorded
		// baselines stay comparable; machine/canon rows are new names.
		{name: "fingerprint=off"},
		{name: "fingerprint=on", fp: true},
		{name: "fingerprint=canon", fp: true, canon: "incr"},
		{name: "machine,fingerprint=off", machine: true},
		{name: "machine,fingerprint=on", machine: true, fp: true},
		{name: "machine,fingerprint=canon", machine: true, fp: true, canon: "incr"},
		{name: "machine,fingerprint=canon-scratch", machine: true, fp: true, canon: "scratch"},
	}
	const rounds = 64
	const symN = 3
	for _, r := range rows {
		b.Run(r.name, func(b *testing.B) {
			sc := sim.NewScratch()
			var canon *sim.Canonicalizer
			if r.canon != "" {
				canon = symLoopCanon(b, symN)
			}
			var sys *sim.System
			rr := 0
			// The canon rows read the canonical fingerprint at every
			// decision point, which is how a symmetry-reduced census
			// consumes it; the plain rows use the bare scheduler.
			var sched sim.Scheduler = sim.SchedulerFunc(func(ready []sim.ProcID, _ int) sim.ProcID {
				switch r.canon {
				case "incr":
					sys.StateHashCanon()
				case "scratch":
					sys.StateHashCanonScratch()
				}
				rr++
				return ready[rr%len(ready)]
			})
			steps := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				switch {
				case r.canon != "" && r.machine:
					sys = symLoopMachines(rounds, symN)
				case r.canon != "":
					sys = symLoop(rounds, symN)
				case r.machine:
					sys = casLoopMachines(rounds)
				default:
					sys = casLoop(rounds)
				}
				res, err := sys.Run(sim.Config{
					Scheduler:    sched,
					Fingerprint:  r.fp,
					Canon:        canon,
					DisableTrace: true,
					Scratch:      sc,
				})
				if err != nil {
					b.Fatal(err)
				}
				steps += res.TotalSteps
			}
			b.StopTimer()
			if steps == 0 {
				b.Fatal("no steps executed")
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(steps), "ns/step")
		})
	}
}
