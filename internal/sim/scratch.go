package sim

// Scratch is reusable per-run working memory. A schedule explorer
// executes millions of short runs whose Results are usually inspected
// and discarded; without reuse, every run allocates the Result struct
// plus four per-process slices. Passing a Scratch through
// Config.Scratch makes Run build its Result inside the scratch's
// buffers instead.
//
// Ownership contract: the *Result returned by Run aliases the Scratch.
// It is valid until the same Scratch is passed to another Run. A caller
// that wants to retain a Result (for example as a recorded violation
// witness) must either copy it or stop reusing the scratch — the
// explore engine does the latter, abandoning the scratch to the
// retained Result and drawing a fresh one from its pool.
//
// A Scratch is not safe for concurrent use; give each worker its own.
type Scratch struct {
	res     Result
	values  []Value
	errors  []error
	crashed []bool
	steps   []int
	ready   []ProcID
	halt    []ProcID
	perm    []uint64
	fpwords []uint64
	fpints  []int
	fpmarks []bool
	fpobjs  []Object
	fpfold  []StateFolder
	fpkey   []StateKeyer
	fpperm  []PermStateFolder
}

// NewScratch returns an empty Scratch. Buffers grow on first use and
// are retained across runs.
func NewScratch() *Scratch {
	return &Scratch{}
}

// prep clears the scratch for a run of n processes and returns the
// embedded Result with zeroed, length-n slices.
func (sc *Scratch) prep(n int) *Result {
	sc.values = resliceValues(sc.values, n)
	sc.errors = resliceErrors(sc.errors, n)
	sc.crashed = resliceBools(sc.crashed, n)
	sc.steps = resliceInts(sc.steps, n)
	sc.res = Result{
		Values:  sc.values,
		Errors:  sc.errors,
		Crashed: sc.crashed,
		Steps:   sc.steps,
	}
	return &sc.res
}

// readyBuf returns a zero-length ready-set buffer with capacity ≥ n.
func (sc *Scratch) readyBuf(n int) []ProcID {
	if cap(sc.ready) < n {
		sc.ready = make([]ProcID, 0, n)
	}
	return sc.ready[:0]
}

// permBuf returns a length-n buffer backing the per-permutation
// observation hashes of a canonicalized run (Run overwrites every
// entry before use).
func (sc *Scratch) permBuf(n int) []uint64 {
	if cap(sc.perm) < n {
		sc.perm = make([]uint64, n)
	}
	return sc.perm[:n]
}

// fpBufs returns the backing storage for the incremental fingerprint
// cache (fpState.alloc): `words` component/hash words, plus `slots`
// dirty-queue ints and dirty-mark bools. The caller zeroes the marks;
// everything else is overwritten before use.
func (sc *Scratch) fpBufs(words, slots int) ([]uint64, []int, []bool) {
	if cap(sc.fpwords) < words {
		sc.fpwords = make([]uint64, words)
	}
	if cap(sc.fpints) < slots {
		sc.fpints = make([]int, slots)
	}
	if cap(sc.fpmarks) < slots {
		sc.fpmarks = make([]bool, slots)
	}
	return sc.fpwords[:words], sc.fpints[:slots], sc.fpmarks[:slots]
}

// fpObjBufs returns the object-pointer caches of the fingerprint flush
// path (fpState.alloc). Rebuild overwrites every entry before use.
func (sc *Scratch) fpObjBufs(n int) ([]Object, []StateFolder, []StateKeyer, []PermStateFolder) {
	if cap(sc.fpobjs) < n {
		sc.fpobjs = make([]Object, n)
	}
	if cap(sc.fpfold) < n {
		sc.fpfold = make([]StateFolder, n)
	}
	if cap(sc.fpkey) < n {
		sc.fpkey = make([]StateKeyer, n)
	}
	if cap(sc.fpperm) < n {
		sc.fpperm = make([]PermStateFolder, n)
	}
	return sc.fpobjs[:n], sc.fpfold[:n], sc.fpkey[:n], sc.fpperm[:n]
}

// haltList copies ready into the retained ReadyAtHalt buffer.
func (sc *Scratch) haltList(ready []ProcID) []ProcID {
	sc.halt = append(sc.halt[:0], ready...)
	return sc.halt
}

func resliceValues(b []Value, n int) []Value {
	if cap(b) < n {
		return make([]Value, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = nil
	}
	return b
}

func resliceErrors(b []error, n int) []error {
	if cap(b) < n {
		return make([]error, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = nil
	}
	return b
}

func resliceBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

func resliceInts(b []int, n int) []int {
	if cap(b) < n {
		return make([]int, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}
