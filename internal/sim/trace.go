package sim

import (
	"fmt"
	"strings"
)

// Event records one atomic shared-memory step: the operation and its
// result (or the error that stopped the calling process).
type Event struct {
	// Step is the global step index at which the operation executed.
	Step int
	// Proc is the process that performed the operation.
	Proc ProcID
	// Object and Op identify the operation.
	Object string
	Op     OpKind
	// Args are the operation's arguments.
	Args []Value
	// Result is the operation's return value, or an error for a
	// rejected (illegal) operation.
	Result Value
}

// String renders the event as "step p3 cas.cas(0,1) = 0".
func (ev Event) String() string {
	args := make([]string, len(ev.Args))
	for i, a := range ev.Args {
		args[i] = fmt.Sprint(a)
	}
	return fmt.Sprintf("%4d p%d %s.%s(%s) = %v",
		ev.Step, ev.Proc, ev.Object, ev.Op, strings.Join(args, ","), ev.Result)
}

// Span is a high-level operation interval used to check derived objects
// (implemented by multi-step protocols) for linearizability. Start and
// End are global step counts; two spans are concurrent unless one ends
// strictly before the other starts.
type Span struct {
	Proc   ProcID
	Object string
	Kind   OpKind
	Args   []Value
	Result Value
	Start  int
	// End is -1 while the operation is pending (its process crashed
	// before completing it).
	End int
}

// Complete reports whether the span's operation finished.
func (sp *Span) Complete() bool { return sp.End >= 0 }

// String renders the span as "p2 snap.scan(...)=v [3,17]".
func (sp *Span) String() string {
	return fmt.Sprintf("p%d %s.%s(%v)=%v [%d,%d]",
		sp.Proc, sp.Object, sp.Kind, sp.Args, sp.Result, sp.Start, sp.End)
}

// Trace is the recorded history of a run: the linear sequence of atomic
// events plus any high-level operation spans opened by protocols.
type Trace struct {
	Events []Event
	Spans  []*Span
}

func (t *Trace) record(step int, p ProcID, object string, op OpKind, args []Value, result Value) {
	t.Events = append(t.Events, Event{
		Step: step, Proc: p, Object: object, Op: op, Args: args, Result: result,
	})
}

func (t *Trace) addSpan(sp *Span) { t.Spans = append(t.Spans, sp) }

// SpansOf returns the spans recorded against the named derived object.
func (t *Trace) SpansOf(object string) []*Span {
	var out []*Span
	for _, sp := range t.Spans {
		if sp.Object == object {
			out = append(out, sp)
		}
	}
	return out
}

// EventsOf returns the atomic events on the named object.
func (t *Trace) EventsOf(object string) []Event {
	var out []Event
	for _, ev := range t.Events {
		if ev.Object == object {
			out = append(out, ev)
		}
	}
	return out
}

// String renders the whole event history, one event per line.
func (t *Trace) String() string {
	var b strings.Builder
	for _, ev := range t.Events {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}
