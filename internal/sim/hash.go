package sim

import (
	"fmt"
	"sort"
)

// StateKeyer is implemented by Objects whose state can be rendered as a
// canonical string. Two objects of the same type with equal StateKeys
// must be observationally equivalent: every future operation sequence
// yields identical results from either. The key must be deterministic
// across process runs (no pointer addresses, no map-iteration order —
// fmt renders maps sorted, which is acceptable).
//
// StateKey is what makes a System fingerprintable: schedule explorers
// hash object keys together with per-process observation histories to
// recognize when two different schedule prefixes reached the same
// global state (see System.StateHash and the explore package's
// transposition pruning).
type StateKeyer interface {
	StateKey() string
}

// ValueKey canonically renders a Value for state hashing. Values stored
// in objects or decided by processes must render deterministically
// under %v for fingerprints to be meaningful: structs, slices, maps,
// strings and numbers are fine; raw pointers are not (their addresses
// differ between rebuilt systems).
func ValueKey(v Value) string { return fmt.Sprintf("%v", v) }

// FNV-1a parameters, inlined so hashing needs no allocation.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// foldString folds s into h (FNV-1a) and appends a separator byte so
// that ("ab","c") and ("a","bc") hash differently.
func foldString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	h ^= 0xff
	h *= fnvPrime64
	return h
}

// foldUint64 folds the eight bytes of v into h (FNV-1a).
func foldUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// StateHash returns a deterministic fingerprint of the System's current
// global state: the StateKey of every object (in name order) plus, for
// each process, its accumulated observation history (the sequence of
// operations it performed with their results), step count, and
// completion status. Fingerprinting must have been enabled by
// Config.Fingerprint — without it the per-step observation hashes were
// never accumulated — and every object must implement StateKeyer;
// otherwise ok is false.
//
// Soundness: a process is deterministic, communicates only through
// gated operations, and parks at the scheduler gate between steps, so
// its entire local state ("PC + locals") is a function of its
// observation history. Two prefixes with equal fingerprints therefore
// reach global states from which the same schedules produce identical
// Results (up to hash collision; explorers cross-check on small
// instances).
//
// StateHash may be called from inside Scheduler.Next or
// FaultPlan.CrashNow: at every decision point the runner has all live
// processes parked at their gates, so the state is quiescent. This is
// the cheap mid-run observation hook used by the explore package to
// fingerprint the frontier without a separate replay per node.
func (s *System) StateHash() (uint64, bool) {
	if !s.fingerprint {
		return 0, false
	}
	if len(s.objNames) != len(s.objects) {
		s.objNames = s.objNames[:0]
		for name := range s.objects {
			s.objNames = append(s.objNames, name)
		}
		sort.Strings(s.objNames)
	}
	h := fnvOffset64
	for _, name := range s.objNames {
		k, ok := s.objects[name].(StateKeyer)
		if !ok {
			return 0, false
		}
		h = foldString(h, name)
		h = foldString(h, k.StateKey())
	}
	for _, p := range s.procs {
		h = foldUint64(h, p.opHash)
		h = foldUint64(h, uint64(p.steps))
		switch {
		case p.done && p.err != nil:
			h = foldString(h, "e")
			h = foldString(h, p.err.Error())
		case p.done:
			h = foldString(h, "d")
			h = foldString(h, ValueKey(p.value))
		default:
			h = foldString(h, "r")
		}
		if p.crashed {
			h = foldString(h, "c")
		}
	}
	return h, true
}

// foldOp accumulates one observed operation into the process's
// observation-history hash. Called from Env.Apply while the runner is
// blocked on this process, so the write is race-free.
func (p *proc) foldOp(objName string, op OpKind, args []Value, result Value) {
	h := foldString(p.opHash, objName)
	h = foldString(h, string(op))
	if len(args) > 0 {
		h = foldString(h, fmt.Sprintf("%v", args))
	}
	p.opHash = foldString(h, ValueKey(result))
}
