package sim

import (
	"fmt"
	"sort"
)

// StateKeyer is implemented by Objects whose state can be rendered as a
// canonical string. Two objects of the same type with equal StateKeys
// must be observationally equivalent: every future operation sequence
// yields identical results from either. The key must be deterministic
// across process runs (no pointer addresses, no map-iteration order —
// fmt renders maps sorted, which is acceptable).
//
// StateKey is what makes a System fingerprintable: schedule explorers
// hash object keys together with per-process observation histories to
// recognize when two different schedule prefixes reached the same
// global state (see System.StateHash and the explore package's
// transposition pruning).
type StateKeyer interface {
	StateKey() string
}

// StateFolder is the allocation-free refinement of StateKeyer: instead
// of rendering state to a string, the object folds its state directly
// into a Hash. StateHash prefers FoldState over StateKey when both are
// implemented, so hot exploration loops never touch fmt. The same
// equivalence contract applies: equal folds ⇒ observationally
// equivalent objects, and the fold must be deterministic across
// process runs.
type StateFolder interface {
	FoldState(h Hash) Hash
}

// ValueFolder is implemented by Value types that can fold themselves
// into a Hash without string formatting. Hash.Value uses it for
// protocol-specific types (e.g. objects.Symbol); plain ints, bools,
// strings and errors already have allocation-free cases.
type ValueFolder interface {
	FoldValue(h Hash) Hash
}

// ValueKey canonically renders a Value for state hashing. Values stored
// in objects or decided by processes must render deterministically
// under %v for fingerprints to be meaningful: structs, slices, maps,
// strings and numbers are fine; raw pointers are not (their addresses
// differ between rebuilt systems).
func ValueKey(v Value) string { return fmt.Sprintf("%v", v) }

// FNV-1a parameters, inlined so hashing needs no allocation.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Hash is an incrementally built FNV-1a fingerprint. All Fold methods
// are allocation-free; each input kind is framed with a distinct tag
// byte so adjacent fields cannot alias ((1,"") vs ("",1), int 1 vs
// string "1", and so on).
type Hash uint64

// NewHash returns the FNV-1a offset basis.
func NewHash() Hash { return Hash(fnvOffset64) }

// FoldByte folds one byte.
func (h Hash) FoldByte(b byte) Hash {
	x := uint64(h)
	x ^= uint64(b)
	x *= fnvPrime64
	return Hash(x)
}

// FoldString folds s plus a terminator so ("ab","c") and ("a","bc")
// hash differently.
func (h Hash) FoldString(s string) Hash {
	x := uint64(h)
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= fnvPrime64
	}
	x ^= 0xff
	x *= fnvPrime64
	return Hash(x)
}

// FoldUint64 folds v as one word: xor, multiply, fold the high bits
// back down. Cheaper than eight byte rounds and still invertible in
// both arguments, which is all the fingerprinting layers need — words
// are framed by the surrounding tag bytes exactly like the byte form
// was. This is the hottest fold in the simulator (every per-step
// observation fold and every per-component state fold goes through
// it), which is why it is not the generic byte loop.
func (h Hash) FoldUint64(v uint64) Hash {
	x := uint64(h) ^ v
	x *= fnvPrime64
	x ^= x >> 32
	return Hash(x)
}

// FoldInt folds v as its two's-complement uint64 image.
func (h Hash) FoldInt(v int) Hash { return h.FoldUint64(uint64(v)) }

// FoldBool folds one byte distinguishing true from false.
func (h Hash) FoldBool(b bool) Hash {
	if b {
		return h.FoldByte(1)
	}
	return h.FoldByte(0)
}

// Tag bytes framing each Value kind in Hash.FoldValue. Distinct tags
// keep differently-typed values with the same binary image apart.
const (
	tagNil    byte = 0xe0
	tagFolder byte = 0xe1
	tagInt    byte = 0xe2
	tagBool   byte = 0xe3
	tagString byte = 0xe4
	tagProcID byte = 0xe5
	tagError  byte = 0xe6
	tagOther  byte = 0xe7
)

// FoldValue folds an operation argument or result. Common protocol
// value types (nil, int, bool, string, ProcID, error, and anything
// implementing ValueFolder) fold without allocation; anything else
// falls back to fmt, preserving the ValueKey determinism contract.
func (h Hash) FoldValue(v Value) Hash {
	switch x := v.(type) {
	case nil:
		return h.FoldByte(tagNil)
	case ValueFolder:
		return x.FoldValue(h.FoldByte(tagFolder))
	case int:
		return h.FoldByte(tagInt).FoldInt(x)
	case bool:
		return h.FoldByte(tagBool).FoldBool(x)
	case string:
		return h.FoldByte(tagString).FoldString(x)
	case ProcID:
		return h.FoldByte(tagProcID).FoldInt(int(x))
	case error:
		return h.FoldByte(tagError).FoldString(x.Error())
	default:
		return h.FoldByte(tagOther).FoldString(ValueKey(v))
	}
}

// Per-process status tags folded into the fingerprint components.
const (
	tagProcErr     byte = 0xd0
	tagProcDone    byte = 0xd1
	tagProcLive    byte = 0xd2
	tagProcCrashed byte = 0xd3
)

// StateHash returns a deterministic fingerprint of the System's current
// global state: the state fold (or StateKey) of every object (in name
// order) plus, for each process, its accumulated observation history
// (the sequence of operations it performed with their results), step
// count, and completion status. Fingerprinting must have been enabled
// by Config.Fingerprint — without it the per-step observation hashes
// were never accumulated — and every object must implement StateFolder
// or StateKeyer; otherwise ok is false.
//
// Soundness: a process is deterministic, communicates only through
// gated operations, and parks at the scheduler gate between steps, so
// its entire local state ("PC + locals") is a function of its
// observation history. Two prefixes with equal fingerprints therefore
// reach global states from which the same schedules produce identical
// Results (up to hash collision; explorers cross-check on small
// instances).
//
// StateHash may be called from inside Scheduler.Next or
// FaultPlan.CrashNow: at every decision point the runner has all live
// processes parked at their gates, so the state is quiescent. This is
// the cheap mid-run observation hook used by the explore package to
// fingerprint the frontier without a separate replay per node.
// StateHash is incrementally maintained (see fingerprint.go): the
// first call builds the per-component cache, later calls recompute only
// the components the runner marked dirty since — O(steps since last
// read), not O(state).
func (s *System) StateHash() (uint64, bool) {
	if !s.fingerprint {
		return 0, false
	}
	s.fpEnsure()
	if !s.fp.ok {
		return 0, false
	}
	if s.verifyFP {
		s.fpVerifyPlain()
	}
	return s.fp.plain, true
}

// sortedNames returns the object names in sorted order, cached after
// the first call (object sets are static once a run starts). Both
// StateHash and machine snapshots iterate objects in this order.
func (s *System) sortedNames() []string {
	if len(s.objNames) != len(s.objects) {
		s.objNames = s.objNames[:0]
		for name := range s.objects {
			s.objNames = append(s.objNames, name)
		}
		sort.Strings(s.objNames)
	}
	return s.objNames
}

// foldOp accumulates one observed operation into the process's
// observation-history hash. Called from Env.apply (or the machine
// stepper) while the runner is blocked on this process, so the write is
// race-free.
//
// Only the RESULT is folded. The process is deterministic, so which
// object it targets, which operation it issues and with which arguments
// are all functions of its prior results (the first operation is fixed
// by the program): by induction, the sequence of results determines the
// full observation record. Folding the result alone therefore yields
// the same equivalence classes as folding the whole record — and it is
// the difference between one word fold and several string folds on the
// hottest line of every fingerprinted exploration.
func (p *proc) foldOp(result Value) {
	p.opHash = uint64(Hash(p.opHash).FoldValue(result))
}
