package sim_test

import (
	"math/rand"
	"testing"

	"repro/internal/consensus"
	"repro/internal/election"
	"repro/internal/objects"
	"repro/internal/sim"
)

// buildSymDirect is the DirectCAS election with its declared symmetry —
// one shared register, so canonicalization exercises value renaming
// only.
func buildSymDirect(k, n int) func() *sim.System {
	spec := election.DirectSymmetric(n)
	return func() *sim.System {
		sys := sim.NewSystem()
		cas := objects.NewCAS("cas", k)
		sys.Add(cas)
		for _, p := range election.DirectCAS(cas, n) {
			sys.Spawn(p)
		}
		sys.DeclareSymmetry(spec)
		return sys
	}
}

// buildSymCAS is the CAS consensus with per-process announce cells, so
// canonicalization additionally exercises object renaming
// ("cas.ann[i]" ↦ "cas.ann[π(i)]").
func buildSymCAS(k, n int) func() *sim.System {
	spec := consensus.CASSymmetric(n)
	props := make([]sim.Value, n)
	for i := range props {
		props[i] = 100 + i
	}
	return func() *sim.System {
		sys := sim.NewSystem()
		cas := objects.NewCAS("cas", k)
		sys.Add(cas)
		for _, p := range consensus.CASProtocol(sys, cas, props) {
			sys.Spawn(p)
		}
		sys.DeclareSymmetry(spec)
		return sys
	}
}

// TestCanonicalHashPermutationInvariant is the soundness property the
// symmetry reducer rests on: for a random reachable state s and any
// declared permutation π, Canonical(π(s)) == Canonical(s). Random
// prefixes of random schedules reach s; replaying the same schedule
// with every pick renamed through π reaches π(s) in an equivariant
// protocol; both runs must then canonicalize to the same fingerprint.
func TestCanonicalHashPermutationInvariant(t *testing.T) {
	families := []struct {
		name  string
		build func() *sim.System
	}{
		{"direct-cas", buildSymDirect(4, 3)},
		{"consensus-cas", buildSymCAS(4, 3)},
	}
	for _, fam := range families {
		t.Run(fam.name, func(t *testing.T) {
			probe := fam.build()
			spec := probe.SymmetrySpec()
			canon, err := sim.NewCanonicalizer(probe, spec)
			if err != nil {
				t.Fatalf("NewCanonicalizer: %v", err)
			}
			rng := rand.New(rand.NewSource(0x5ee1))
			for trial := 0; trial < 150; trial++ {
				// Drive a random prefix of random length; a scheduler Halt
				// leaves the system in a mid-run reachable state (halt
				// errors are sentinels, so canonicalization stays active).
				limit := rng.Intn(24)
				var picks []sim.ProcID
				base := fam.build()
				rec := sim.SchedulerFunc(func(ready []sim.ProcID, _ int) sim.ProcID {
					if len(picks) >= limit {
						return sim.Halt
					}
					p := ready[rng.Intn(len(ready))]
					picks = append(picks, p)
					return p
				})
				if _, err := base.Run(sim.Config{Scheduler: rec, Fingerprint: true, Canon: canon}); err != nil {
					t.Fatalf("trial %d: base run: %v", trial, err)
				}
				h1, _, ok1 := base.StateHashCanon()

				perm := spec.Perms[rng.Intn(len(spec.Perms))]
				twin := fam.build()
				i := 0
				diverged := false
				rep := sim.SchedulerFunc(func(ready []sim.ProcID, _ int) sim.ProcID {
					if i >= len(picks) {
						return sim.Halt
					}
					want := perm[picks[i]]
					i++
					for _, id := range ready {
						if id == want {
							return id
						}
					}
					diverged = true
					return sim.Halt
				})
				if _, err := twin.Run(sim.Config{Scheduler: rep, Fingerprint: true, Canon: canon}); err != nil {
					t.Fatalf("trial %d: twin run: %v", trial, err)
				}
				if diverged {
					t.Fatalf("trial %d: renamed schedule diverged under perm %v — protocol is not equivariant", trial, perm)
				}
				h2, _, ok2 := twin.StateHashCanon()
				if ok1 != ok2 || h1 != h2 {
					t.Fatalf("trial %d: canonical fingerprint not permutation-invariant under %v:\n base %#x (ok=%v)\n twin %#x (ok=%v)\n picks %v",
						trial, perm, h1, ok1, h2, ok2, picks)
				}
			}
		})
	}
}

// TestRenameIntKeyRoundTrip pins the outcome-key renamer to the
// DecisionFingerprint format: renaming re-sorts, and renaming by π then
// π⁻¹ is the identity.
func TestRenameIntKeyRoundTrip(t *testing.T) {
	perm := []sim.ProcID{2, 0, 1}
	inv := []sim.ProcID{1, 2, 0}
	key := "[0 1 2]"
	renamed := sim.RenameIntKey(key, func(i int) int { return int(perm[i]) })
	if renamed != "[0 1 2]" {
		t.Fatalf("full multiset must be invariant, got %q", renamed)
	}
	key = "[0 0 2]"
	renamed = sim.RenameIntKey(key, func(i int) int { return int(perm[i]) })
	if renamed != "[1 2 2]" {
		t.Fatalf("rename = %q, want [1 2 2]", renamed)
	}
	back := sim.RenameIntKey(renamed, func(i int) int { return int(inv[i]) })
	if back != "[0 0 2]" {
		t.Fatalf("round trip = %q, want [0 0 2]", back)
	}
}
