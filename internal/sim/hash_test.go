package sim

import (
	"fmt"
	"testing"
)

// keyedReg is a minimal fingerprintable test object.
type keyedReg struct {
	name string
	v    int
}

func (r *keyedReg) Name() string { return r.name }
func (r *keyedReg) Apply(_ ProcID, op OpKind, args []Value) (Value, error) {
	switch op {
	case OpWrite:
		r.v = args[0].(int)
		return nil, nil
	case OpRead:
		return r.v, nil
	}
	return nil, fmt.Errorf("bad op %q", op)
}
func (r *keyedReg) StateKey() string { return fmt.Sprint(r.v) }

// unkeyedReg lacks StateKey: systems holding one are not fingerprintable.
type unkeyedReg struct{ keyedReg }

func (r *unkeyedReg) StateKey() {} // wrong signature on purpose: not a StateKeyer

func buildCounter(obj Object) *System {
	sys := NewSystem()
	sys.Add(obj)
	sys.SpawnN(2, func(id ProcID) Program {
		return func(e *Env) (Value, error) {
			prev := e.Apply(obj, OpRead).(int)
			e.Apply(obj, OpWrite, prev+1)
			return prev, nil
		}
	})
	return sys
}

func TestResultFingerprintDeterministic(t *testing.T) {
	run := func() *Result {
		sys := buildCounter(&keyedReg{name: "c"})
		res, err := sys.Run(Config{Fingerprint: true, DisableTrace: true})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if !a.FingerprintOK || !b.FingerprintOK {
		t.Fatal("fingerprint not available despite Config.Fingerprint and keyed objects")
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("identical runs fingerprint differently: %x vs %x", a.Fingerprint, b.Fingerprint)
	}
	if a.Fingerprint == 0 {
		t.Fatal("suspicious zero fingerprint")
	}
}

func TestFingerprintOffByDefault(t *testing.T) {
	sys := buildCounter(&keyedReg{name: "c"})
	res, err := sys.Run(Config{DisableTrace: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.FingerprintOK {
		t.Fatal("fingerprint reported OK without Config.Fingerprint")
	}
}

func TestFingerprintRequiresStateKeyers(t *testing.T) {
	sys := buildCounter(&unkeyedReg{keyedReg{name: "c"}})
	res, err := sys.Run(Config{Fingerprint: true, DisableTrace: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.FingerprintOK {
		t.Fatal("fingerprint reported OK with a non-StateKeyer object")
	}
}

// TestStateHashSeparatesSchedules: runs under different schedules that
// produce different observations must hash differently.
func TestStateHashSeparatesSchedules(t *testing.T) {
	run := func(order []ProcID) *Result {
		sys := buildCounter(&keyedReg{name: "c"})
		res, err := sys.Run(Config{
			Scheduler:    Replay(order),
			Fingerprint:  true,
			DisableTrace: true,
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res
	}
	// Sequential: both increments land (final value 2). Racing reads:
	// both read 0, final value 1 — different state, different history.
	a := run([]ProcID{0, 0, 1, 1})
	b := run([]ProcID{0, 1, 0, 1})
	if !a.FingerprintOK || !b.FingerprintOK {
		t.Fatal("fingerprints unavailable")
	}
	if a.Fingerprint == b.Fingerprint {
		t.Fatalf("distinct final states share a fingerprint: %x", a.Fingerprint)
	}
}
