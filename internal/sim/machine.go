package sim

import (
	"errors"
	"fmt"
)

// This file is the direct-dispatch execution mode: processes written as
// explicit resumable state machines instead of goroutine-hosted
// Programs. A Machine exposes its next shared operation as data
// (Pending) and advances one operation at a time (Finish), so the
// runner can execute a step as a plain function call — zero goroutine
// creation, zero channel operations, no park/unpark per step. Because
// machine-local state lives in a plain struct, a machine-backed System
// can also be snapshotted and restored in place, which is what the
// explore package's in-place backtracking DFS builds on.
//
// Semantics are identical to the goroutine runner by construction: the
// machine loop performs the same scheduler/fault-plan/step sequence as
// System.Run, stages arguments through the same per-process buffer,
// folds the same observation hashes, and records the same trace events,
// so a machine-backed run and a goroutine run of the same protocol
// under the same schedule produce bit-identical Results and
// fingerprints. SpawnMachine installs a driver Program alongside the
// machine, so Config.ForceGoroutines (and any explorer that wants the
// goroutine path) replays machines through the original runner.

// MachineOp is the next shared operation a Machine wants to perform,
// described as data. At most two arguments — every operation in this
// repository has arity ≤ 2 (compare&swap) — staged in a fixed array so
// describing an op allocates nothing.
type MachineOp struct {
	// Obj is the target object (a pointer the machine holds, so no
	// name lookup is needed per step).
	Obj Object
	// Op is the operation kind.
	Op OpKind
	// NArgs is how many of Args are meaningful (0, 1 or 2).
	NArgs int
	// Args holds the operation arguments.
	Args [2]Value
}

// Machine is one process expressed as a resumable state machine. The
// contract mirrors a Program parked at its scheduler gate:
//
//   - Pending returns the operation the process will perform when next
//     scheduled. It must be a pure read (no state change) and stable:
//     repeated calls between Finish calls return the same op.
//   - Finish delivers the operation's result and advances the local
//     state. done=true ends the process with the given decision (or
//     error, like a Program returning one); done=false means the
//     machine has a next Pending op.
//   - Save/Restore serialize the machine-local state ("PC + locals")
//     into a Snap arena, enabling in-place backtracking. Restore must
//     leave the machine exactly as it was when Save ran.
//
// A Machine performs at least one shared operation (Pending must be
// valid before the first Finish); a protocol that can decide without
// any shared step must stay a Program. An operation whose result is an
// error kills the process through the runner exactly as it would a
// Program — Finish only ever sees successful results. (Failed-object
// sentinels from the faults package arrive as ordinary values.)
type Machine interface {
	Pending() MachineOp
	Finish(result Value) (done bool, decision Value, err error)
	Save(s *Snap)
	Restore(r *SnapReader)
}

// Restorable is implemented by Objects whose state can be saved into a
// Snap and restored in place. Like StateKeyer, the contract is
// observational: after RestoreState the object must be observationally
// identical to when SaveState ran. Implementations should reuse
// internal capacity on restore so steady-state backtracking allocates
// nothing.
type Restorable interface {
	SaveState(s *Snap)
	RestoreState(r *SnapReader)
}

// RestoreProber is an optional refinement for wrapper objects (e.g. a
// fault proxy) whose own Restorable support depends on the wrapped
// object's. Snapshotable consults it when present.
type RestoreProber interface {
	CanRestore() bool
}

// Snap is an append-only snapshot arena: machine words in one slice,
// boxed Values (decisions, errors, register contents) in another.
// Snapshots of nested states share one arena — a consumer records the
// arena lengths before writing a snapshot and truncates back to them
// when the snapshot is popped — so steady-state snapshotting reuses
// capacity and allocates nothing.
type Snap struct {
	words []uint64
	vals  []Value
}

// Len returns the current arena lengths, for later Truncate/ReaderAt.
func (s *Snap) Len() (words, vals int) { return len(s.words), len(s.vals) }

// Truncate drops everything written at or after the given lengths.
func (s *Snap) Truncate(words, vals int) {
	// Clear the dropped Values so the arena does not pin dead objects.
	for i := vals; i < len(s.vals); i++ {
		s.vals[i] = nil
	}
	s.words = s.words[:words]
	s.vals = s.vals[:vals]
}

// Reset empties the arena, keeping capacity.
func (s *Snap) Reset() { s.Truncate(0, 0) }

// Uint64 appends one machine word.
func (s *Snap) Uint64(v uint64) { s.words = append(s.words, v) }

// Int appends v as its two's-complement word image.
func (s *Snap) Int(v int) { s.Uint64(uint64(v)) }

// Bool appends one word holding 0 or 1.
func (s *Snap) Bool(b bool) {
	if b {
		s.Uint64(1)
	} else {
		s.Uint64(0)
	}
}

// Value appends one boxed value.
func (s *Snap) Value(v Value) { s.vals = append(s.vals, v) }

// ReaderAt returns a cursor positioned at the given arena offsets,
// ready to read back a snapshot written there.
func (s *Snap) ReaderAt(words, vals int) SnapReader {
	return SnapReader{s: s, w: words, v: vals}
}

// SnapReader reads a snapshot back in the order it was written.
type SnapReader struct {
	s    *Snap
	w, v int
}

// Uint64 reads the next machine word.
func (r *SnapReader) Uint64() uint64 {
	v := r.s.words[r.w]
	r.w++
	return v
}

// Int reads the next word as an int.
func (r *SnapReader) Int() int { return int(r.Uint64()) }

// Bool reads the next word as a bool.
func (r *SnapReader) Bool() bool { return r.Uint64() != 0 }

// Value reads the next boxed value.
func (r *SnapReader) Value() Value {
	v := r.s.vals[r.v]
	r.v++
	return v
}

// SpawnMachine adds a process driven by the given state machine and
// returns its ID. The process runs on the direct-dispatch fast path
// when the whole system is machine-backed (see Run); otherwise — or
// under Config.ForceGoroutines — it runs as an ordinary Program that
// drives the machine through Env, with identical semantics.
func (s *System) SpawnMachine(m Machine) ProcID {
	id := s.Spawn(machineProgram(m))
	s.procs[id].machine = m
	return id
}

// machineProgram adapts a Machine to the goroutine runner. It stages
// arguments through the same fixed-arity Env paths protocol code uses,
// so traces and fingerprints match the hand-written Program form.
func machineProgram(m Machine) Program {
	return func(e *Env) (Value, error) {
		for {
			op := m.Pending()
			var v Value
			switch op.NArgs {
			case 0:
				v = e.Apply0(op.Obj, op.Op)
			case 1:
				v = e.Apply1(op.Obj, op.Op, op.Args[0])
			default:
				v = e.Apply2(op.Obj, op.Op, op.Args[0], op.Args[1])
			}
			done, dec, err := m.Finish(v)
			if done {
				return dec, err
			}
		}
	}
}

// machineBacked reports whether every process has a Machine, i.e. the
// direct-dispatch path can run this system.
func (s *System) machineBacked() bool {
	if len(s.procs) == 0 {
		return false
	}
	for _, p := range s.procs {
		if p.machine == nil {
			return false
		}
	}
	return true
}

// Snapshotable reports whether the system supports in-place
// backtracking: every process is machine-backed and every object is
// Restorable (wrappers additionally passing RestoreProber). Explorers
// use this to choose between the in-place DFS and per-probe rebuilds.
func (s *System) Snapshotable() bool {
	if !s.machineBacked() {
		return false
	}
	for _, o := range s.objects {
		if _, ok := o.(Restorable); !ok {
			return false
		}
		if p, ok := o.(RestoreProber); ok && !p.CanRestore() {
			return false
		}
	}
	return true
}

// MachineExec is a live direct-dispatch execution of a machine-backed
// System. Unlike Run it is re-enterable: explorers alternate
// Snapshot/Restore with Run episodes to walk an execution tree without
// ever rebuilding the system. Obtain one with StartMachines.
type MachineExec struct {
	sys   *System
	cfg   Config
	ready []ProcID
}

// StartMachines prepares a machine-backed System for direct-dispatch
// execution under cfg and returns its executor. Like Run it consumes
// the System's single run; unlike Run it does not execute anything yet.
// Config.Scratch may be swapped later with SetScratch.
func (s *System) StartMachines(cfg Config) (*MachineExec, error) {
	if s.ran {
		return nil, errors.New("sim: system already ran")
	}
	s.ran = true
	if len(s.procs) == 0 {
		return nil, errors.New("sim: no processes")
	}
	for _, p := range s.procs {
		if p.machine == nil {
			return nil, fmt.Errorf("sim: process %d has no machine", p.id)
		}
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = RoundRobin()
	}
	if cfg.MaxTotalSteps == 0 {
		cfg.MaxTotalSteps = DefaultMaxTotalSteps
	}
	if cfg.DisableTrace {
		s.trace = nil
	}
	s.fingerprint = cfg.Fingerprint
	s.verifyFP = cfg.VerifyFingerprints
	s.scratch = cfg.Scratch
	s.objFaults = cfg.ObjectFaults
	if cfg.Canon != nil && cfg.Fingerprint {
		s.canon = cfg.Canon
		if np := cfg.Canon.NumPerms() - 1; np > 0 {
			var buf []uint64
			if cfg.Scratch != nil {
				buf = cfg.Scratch.permBuf(np * len(s.procs))
			} else {
				buf = make([]uint64, np*len(s.procs))
			}
			for i := range buf {
				buf[i] = fnvOffset64
			}
			for i, p := range s.procs {
				p.permHash = buf[i*np : (i+1)*np : (i+1)*np]
			}
		}
	}
	m := &MachineExec{sys: s, cfg: cfg, ready: make([]ProcID, 0, len(s.procs))}
	// Arrival: every machine has a first pending op (see Machine), so
	// all processes start ready, footprint published.
	for _, p := range s.procs {
		p.pendingObj = p.machine.Pending().Obj.Name()
		m.ready = append(m.ready, p.id)
	}
	return m, nil
}

// SetScratch swaps the result/ready scratch for subsequent episodes
// (explorers retain a Result occasionally and hand the executor a fresh
// Scratch in its place).
func (m *MachineExec) SetScratch(sc *Scratch) { m.cfg.Scratch = sc }

// System returns the underlying system (for StateHash/PendingObject
// observation at decision points).
func (m *MachineExec) System() *System { return m.sys }

// Run executes from the current state until the run ends (all
// processes done, scheduler halt, or step budget) and returns the
// Result, exactly as System.Run would from that state. After a Restore
// it can be called again for the next episode.
func (m *MachineExec) Run() (*Result, error) {
	halted, err := m.loop()
	if err != nil {
		return nil, err
	}
	return m.sys.buildResult(&m.cfg, m.ready, halted, func(id ProcID) {
		m.sys.machineCrash(id, ErrHalted)
	}), nil
}

// loop is the direct-dispatch twin of System.Run's scheduling loop:
// same decision order (total-step bound, fault plan, scheduler, per-
// process bound), same step semantics, no goroutines or channels.
func (m *MachineExec) loop() (halted bool, err error) {
	s, cfg := m.sys, &m.cfg
	for {
		if s.steps >= cfg.MaxTotalSteps {
			return true, nil
		}
		if cfg.Faults != nil {
			crashNow := cfg.Faults.CrashNow(m.ready, s.steps)
			for _, id := range crashNow {
				var ok bool
				if m.ready, ok = removeReady(m.ready, id); ok {
					s.machineCrash(id, ErrCrashed)
				}
			}
		}
		if len(m.ready) == 0 {
			return false, nil
		}
		next := cfg.Scheduler.Next(m.ready, s.steps)
		if next == Halt {
			return true, nil
		}
		var inSet bool
		if m.ready, inSet = removeReady(m.ready, next); !inSet {
			return false, fmt.Errorf("sim: scheduler chose process %d, not in ready set %v", next, m.ready)
		}
		p := s.procs[next]
		if cfg.MaxStepsPerProc > 0 && p.steps >= cfg.MaxStepsPerProc {
			s.machineCrash(next, ErrStepLimit)
			continue
		}
		fin := m.step(p)
		s.steps++
		if cfg.OnStep != nil {
			cfg.OnStep(s.steps)
		}
		if !fin {
			m.ready = insertReady(m.ready, p.id)
		}
	}
}

// step executes one granted shared-memory step of p, mirroring
// Env.apply: same argument staging, fault-plan consultation, error
// wrapping, trace recording and observation folding. It reports whether
// the process finished (decided, errored, or was killed by an operation
// error).
func (m *MachineExec) step(p *proc) (finished bool) {
	s := m.sys
	op := p.machine.Pending()
	p.steps++
	idx := s.steps
	p.lastStep = idx
	var args []Value
	if op.NArgs > 0 {
		p.argbuf[0] = op.Args[0]
		if op.NArgs > 1 {
			p.argbuf[1] = op.Args[1]
		}
		args = p.argbuf[:op.NArgs]
	}
	obj := op.Obj
	var v Value
	var err error
	mode := FaultNone
	if s.objFaults != nil {
		mode = s.objFaults.FaultOp(idx)
	}
	if mode != FaultNone {
		if fo, ok := obj.(Faultable); ok {
			v, err = fo.ApplyFault(p.id, op.Op, args, mode)
		} else {
			v, err = obj.Apply(p.id, op.Op, args)
		}
	} else {
		v, err = obj.Apply(p.id, op.Op, args)
	}
	if err != nil {
		err = fmt.Errorf("proc %d: %s.%s: %w", p.id, obj.Name(), op.Op, err)
		if s.trace != nil {
			s.trace.record(idx, p.id, obj.Name(), op.Op, copyArgs(args), err)
		}
		p.done = true
		p.err = err
		if s.fingerprint {
			s.fpTouchObj(obj.Name())
			s.fpTouchProc(int(p.id))
		}
		return true
	}
	if s.trace != nil {
		s.trace.record(idx, p.id, obj.Name(), op.Op, copyArgs(args), v)
	}
	if s.fingerprint {
		p.foldOp(v)
		if s.canon != nil {
			s.canon.foldOpPerms(p, v)
		}
		if s.fp.init {
			s.fpTouchObj(obj.Name())
			s.fpTouchProc(int(p.id))
		}
	}
	done, dec, ferr := p.machine.Finish(v)
	if done {
		p.done = true
		p.value, p.err = dec, ferr
		return true
	}
	p.pendingObj = p.machine.Pending().Obj.Name()
	return false
}

// copyArgs detaches trace-retained arguments from the per-process
// staging buffer (the machine path always stages there).
func copyArgs(args []Value) []Value {
	if len(args) == 0 {
		return args
	}
	return append([]Value(nil), args...)
}

// machineCrash marks a machine-backed process dead with the given
// error, producing the same proc state the goroutine runner's
// crash/crashWith teardown leaves behind.
func (s *System) machineCrash(id ProcID, err error) {
	p := s.procs[id]
	p.done = true
	p.err = err
	p.crashed = err == ErrCrashed
	if s.fingerprint {
		s.fpTouchProc(int(id))
	}
}

// Snapshot appends the full mutable state of the execution — global
// step count, every process (counters, status, observation hashes,
// decision, machine-local state) and every object — to the arena.
// It must be taken at a decision point (between steps). The caller
// records sn.Len() beforehand to address the snapshot later.
func (m *MachineExec) Snapshot(sn *Snap) {
	s := m.sys
	sn.Int(s.steps)
	for _, p := range s.procs {
		sn.Int(p.steps)
		sn.Bool(p.done)
		sn.Bool(p.crashed)
		sn.Uint64(p.opHash)
		for _, h := range p.permHash {
			sn.Uint64(h)
		}
		sn.Value(p.value)
		sn.Value(p.err)
		p.machine.Save(sn)
	}
	for _, name := range s.sortedNames() {
		s.objects[name].(Restorable).SaveState(sn)
	}
	if s.fingerprint {
		s.fpSnapshot(sn)
	}
}

// Restore rewinds the execution to a snapshot taken by Snapshot,
// rebuilding the ready set and pending footprints. The snapshot stays
// valid (reads do not consume the arena), so one snapshot can be
// restored many times — the core of in-place backtracking.
func (m *MachineExec) Restore(r SnapReader) {
	s := m.sys
	s.steps = r.Int()
	m.ready = m.ready[:0]
	for _, p := range s.procs {
		p.steps = r.Int()
		p.done = r.Bool()
		p.crashed = r.Bool()
		p.opHash = r.Uint64()
		for i := range p.permHash {
			p.permHash[i] = r.Uint64()
		}
		p.value = r.Value()
		if e := r.Value(); e != nil {
			p.err = e.(error)
		} else {
			p.err = nil
		}
		p.machine.Restore(&r)
		if !p.done {
			m.ready = append(m.ready, p.id)
			p.pendingObj = p.machine.Pending().Obj.Name()
		}
	}
	for _, name := range s.sortedNames() {
		s.objects[name].(Restorable).RestoreState(&r)
	}
	if s.fingerprint {
		s.fpRestore(&r)
	}
}
