package sim_test

import (
	"testing"

	"repro/internal/sim"
)

// crashTrace drives a plan through a fixed synthetic decision sequence
// and records its choices — a pure FaultPlan exercise, no system needed.
func crashTrace(plan sim.FaultPlan) []sim.ProcID {
	ready := []sim.ProcID{0, 1, 2}
	var out []sim.ProcID
	for step := 0; step < 64; step++ {
		out = append(out, plan.CrashNow(ready, step)...)
	}
	return out
}

// TestRandomCrashesReproducible is the regression test for the
// closed-over-counter bug: a RandomCrashes plan carries RNG and crash
// state across runs, so reuse without Reset is NOT a reproduction.
// Fresh plans from the same seed, and a Reset plan, must reproduce the
// crash sequence exactly.
func TestRandomCrashesReproducible(t *testing.T) {
	first := crashTrace(sim.RandomCrashes(7, 0.3, 2))
	if len(first) == 0 {
		t.Fatal("plan crashed nobody; pick a seed that fires")
	}

	fresh := crashTrace(sim.RandomCrashes(7, 0.3, 2))
	if !procIDsEqual(first, fresh) {
		t.Fatalf("fresh plan from same seed diverged: %v vs %v", fresh, first)
	}

	plan := sim.RandomCrashes(7, 0.3, 2)
	_ = crashTrace(plan) // first use advances RNG and crash count
	plan.Reset()
	if got := crashTrace(plan); !procIDsEqual(first, got) {
		t.Fatalf("Reset plan diverged: %v vs %v", got, first)
	}

	// Lock in the documented single-use semantics: a drained plan
	// (budget exhausted) crashes nobody on reuse without Reset.
	if got := crashTrace(plan); len(got) != 0 {
		t.Fatalf("reused plan without Reset crashed %v; budget should be spent", got)
	}
}

func procIDsEqual(a, b []sim.ProcID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
