package sim_test

import (
	"fmt"
	"testing"

	"repro/internal/objects"
	"repro/internal/sim"
)

// casLoopMachine is the machine twin of casLoop's Program: the same
// CAS/read round pattern, expressed as a resumable state machine.
type casLoopMachine struct {
	cas    *objects.CAS
	id     int
	rounds int
	r, pc  int
}

func (m *casLoopMachine) Pending() sim.MachineOp {
	if m.pc == 0 {
		return sim.MachineOp{
			Obj: m.cas, Op: objects.OpCAS, NArgs: 2,
			Args: [2]sim.Value{objects.Bottom, objects.Symbol(m.id + 1)},
		}
	}
	return sim.MachineOp{Obj: m.cas, Op: sim.OpRead}
}

func (m *casLoopMachine) Finish(sim.Value) (bool, sim.Value, error) {
	if m.pc == 0 {
		m.pc = 1
		return false, nil, nil
	}
	m.pc = 0
	m.r++
	if m.r == m.rounds {
		return true, m.id, nil
	}
	return false, nil, nil
}

func (m *casLoopMachine) Save(s *sim.Snap) {
	s.Int(m.r)
	s.Int(m.pc)
}

func (m *casLoopMachine) Restore(r *sim.SnapReader) {
	m.r = r.Int()
	m.pc = r.Int()
}

// casLoopMachines is casLoop with machine-backed processes: identical
// objects, op sequence and decisions, so runs must be bit-identical.
func casLoopMachines(rounds int) *sim.System {
	sys := sim.NewSystem()
	cas := objects.NewCAS("c", 4)
	sys.Add(cas)
	for id := 0; id < 2; id++ {
		sys.SpawnMachine(&casLoopMachine{cas: cas, id: id, rounds: rounds})
	}
	return sys
}

// sameResult asserts the observable fields of two Results are
// identical (errors compared by rendering).
func sameResult(t *testing.T, label string, a, b *sim.Result) {
	t.Helper()
	if a.TotalSteps != b.TotalSteps || a.Halted != b.Halted {
		t.Fatalf("%s: totals differ: (%d,%v) vs (%d,%v)", label, a.TotalSteps, a.Halted, b.TotalSteps, b.Halted)
	}
	if a.Fingerprint != b.Fingerprint || a.FingerprintOK != b.FingerprintOK {
		t.Fatalf("%s: fingerprints differ: %x/%v vs %x/%v", label, a.Fingerprint, a.FingerprintOK, b.Fingerprint, b.FingerprintOK)
	}
	for i := range a.Values {
		if fmt.Sprint(a.Values[i]) != fmt.Sprint(b.Values[i]) ||
			fmt.Sprint(a.Errors[i]) != fmt.Sprint(b.Errors[i]) ||
			a.Crashed[i] != b.Crashed[i] || a.Steps[i] != b.Steps[i] {
			t.Fatalf("%s: proc %d differs: (%v,%v,%v,%d) vs (%v,%v,%v,%d)", label, i,
				a.Values[i], a.Errors[i], a.Crashed[i], a.Steps[i],
				b.Values[i], b.Errors[i], b.Crashed[i], b.Steps[i])
		}
	}
}

// TestMachineRunMatchesGoroutine drives the same machine-backed system
// through the direct-dispatch path and (via ForceGoroutines) the
// goroutine runner, and against the hand-written Program twin, under
// several schedules and fault plans. All three must agree on every
// observable field including the state fingerprint.
func TestMachineRunMatchesGoroutine(t *testing.T) {
	cases := []struct {
		name  string
		sched func() sim.Scheduler
		plan  func() sim.FaultPlan
		limit int
	}{
		{name: "roundrobin", sched: func() sim.Scheduler { return &rrSched{} }},
		{name: "random", sched: func() sim.Scheduler { return sim.Random(42) }},
		{name: "crash", sched: func() sim.Scheduler { return &rrSched{} },
			plan: func() sim.FaultPlan { return sim.CrashAt(map[int][]sim.ProcID{3: {0}}) }},
		{name: "steplimit", sched: func() sim.Scheduler { return &rrSched{} }, limit: 5},
		{name: "halt", sched: func() sim.Scheduler {
			return sim.Replay([]sim.ProcID{0, 1, 0, 1, 0})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(sys *sim.System, force bool) *sim.Result {
				cfg := sim.Config{
					Scheduler:       tc.sched(),
					Fingerprint:     true,
					DisableTrace:    true,
					MaxStepsPerProc: tc.limit,
					ForceGoroutines: force,
				}
				if tc.plan != nil {
					cfg.Faults = tc.plan()
				}
				res, err := sys.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			direct := run(casLoopMachines(6), false)
			forced := run(casLoopMachines(6), true)
			program := run(casLoop(6), true)
			sameResult(t, "direct vs forced-goroutine", direct, forced)
			sameResult(t, "direct vs program", direct, program)
		})
	}
}

// stepIdxSched is a stateless scheduler (a pure function of the ready
// set and step count), so an execution restored from a snapshot
// continues under the same decisions without scheduler state to rewind.
type stepIdxSched struct{}

func (stepIdxSched) Next(ready []sim.ProcID, step int) sim.ProcID {
	return ready[step%len(ready)]
}

// TestMachineSnapshotRestore checks the backtracking primitive at the
// sim level: snapshot the initial state, run to completion, restore,
// run again — both completions must be bit-identical.
func TestMachineSnapshotRestore(t *testing.T) {
	sys := casLoopMachines(6)
	me, err := sys.StartMachines(sim.Config{
		Scheduler:    stepIdxSched{},
		Fingerprint:  true,
		DisableTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var snap sim.Snap
	me.Snapshot(&snap) // initial state at offset (0,0)
	res1, err := me.Run()
	if err != nil {
		t.Fatal(err)
	}
	fp1, v1 := res1.Fingerprint, fmt.Sprint(res1.Values)

	// Restore the initial snapshot and re-run: identical completion.
	me.Restore(snap.ReaderAt(0, 0))
	res2, err := me.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Fingerprint != fp1 || fmt.Sprint(res2.Values) != v1 {
		t.Fatalf("restored run differs: %x %v vs %x %v", res2.Fingerprint, res2.Values, fp1, v1)
	}
}

// TestMachineStepAllocFree is TestSimStepAllocFree for the direct-
// dispatch path: with a reused Scratch, fingerprinting on and tracing
// off, an additional machine step must allocate NOTHING. Same
// differential method — 256 extra steps, delta must be zero.
func TestMachineStepAllocFree(t *testing.T) {
	// Three fingerprint regimes: lazy (fingerprint on but never read
	// mid-run, the plain-census configuration), "on" (the incremental
	// plain cache read at every decision point), and "canon" (a
	// symmetric system with the per-permutation cache read at every
	// decision point). Steady-state steps must allocate nothing in all
	// of them — the fingerprint vectors are Scratch-backed and fixed
	// size, so extra steps only recompute into existing buffers.
	modes := []struct {
		name  string
		canon bool
		read  bool
	}{
		{name: "lazy"},
		{name: "on", read: true},
		{name: "canon", canon: true, read: true},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			sc := sim.NewScratch()
			var canon *sim.Canonicalizer
			if mode.canon {
				probe := symLoopMachines(1, 3)
				var err error
				canon, err = sim.NewCanonicalizer(probe, probe.SymmetrySpec())
				if err != nil {
					t.Fatal(err)
				}
			}
			var sys *sim.System
			rr := 0
			sched := sim.SchedulerFunc(func(ready []sim.ProcID, _ int) sim.ProcID {
				if mode.read {
					if mode.canon {
						sys.StateHashCanon()
					} else if _, ok := sys.StateHash(); !ok {
						t.Fatal("fingerprint unavailable mid-run")
					}
				}
				rr++
				return ready[rr%len(ready)]
			})
			allocs := func(rounds int) float64 {
				return testing.AllocsPerRun(20, func() {
					if mode.canon {
						sys = symLoopMachines(rounds, 3)
					} else {
						sys = casLoopMachines(rounds)
					}
					_, err := sys.Run(sim.Config{
						Scheduler:    sched,
						Fingerprint:  true,
						Canon:        canon,
						DisableTrace: true,
						Scratch:      sc,
					})
					if err != nil {
						t.Fatal(err)
					}
				})
			}
			// Min-of-two measurements, and a fail threshold of 2: under
			// -race the runtime's type-switch/assert cache builds and
			// GC-timed fmt-pool refills add a few rounds-INDEPENDENT
			// stray allocations per block, which AllocsPerRun's integer
			// division can turn into a spurious 1.0 delta. Any real
			// steady-state allocation is per step (+768/run here) or at
			// least per round (+64/run) — orders of magnitude above the
			// threshold.
			min2 := func(rounds int) float64 {
				a, b := allocs(rounds), allocs(rounds)
				if b < a {
					return b
				}
				return a
			}
			short := min2(32)
			long := min2(96)
			if delta := long - short; delta >= 2 {
				t.Fatalf("extra machine steps allocate %.1f objects, want 0 (short=%.1f long=%.1f)",
					delta, short, long)
			}
		})
	}
}

// TestMachineSnapshotMidRun snapshots at an interior decision point
// (from inside the scheduler, where the state is quiescent), runs to
// completion, restores, and completes again under the same stateless
// schedule: the two completions must agree bit-for-bit.
func TestMachineSnapshotMidRun(t *testing.T) {
	var (
		me   *sim.MachineExec
		snap sim.Snap
		took bool
	)
	snapAt := sim.SchedulerFunc(func(ready []sim.ProcID, step int) sim.ProcID {
		if step == 7 && !took {
			took = true
			me.Snapshot(&snap)
		}
		return ready[step%len(ready)]
	})
	sys := casLoopMachines(6)
	var err error
	me, err = sys.StartMachines(sim.Config{
		Scheduler:    snapAt,
		Fingerprint:  true,
		DisableTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := me.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !took {
		t.Fatal("snapshot point never reached")
	}
	fp1, v1 := res1.Fingerprint, fmt.Sprint(res1.Values)
	me.Restore(snap.ReaderAt(0, 0))
	res2, err := me.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Fingerprint != fp1 || fmt.Sprint(res2.Values) != v1 {
		t.Fatalf("mid-run restore diverged: %x %v vs %x %v", res2.Fingerprint, res2.Values, fp1, v1)
	}
}
