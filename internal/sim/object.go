package sim

// OpKind names an operation on a shared object. Kinds are open-ended:
// each object package defines the kinds its objects accept.
type OpKind string

// Common operation kinds shared by several object types.
const (
	OpRead  OpKind = "read"
	OpWrite OpKind = "write"
)

// Object is a shared synchronization object. Apply executes one
// operation atomically: the runner guarantees that no two Apply calls
// (on any object) overlap, so implementations need no locking.
//
// Apply returns an error only for operations that are illegal in the
// model — a non-owner writing a single-writer register, a value outside
// a bounded object's alphabet. Such an error is a protocol bug and
// stops the calling process.
//
// Implementations must not retain the args slice past the call: the
// runner stages fixed-arity arguments in a reused per-process buffer
// (see Env.Apply1).
type Object interface {
	// Name uniquely identifies the object within its System.
	Name() string
	// Apply atomically executes op with args on behalf of caller.
	Apply(caller ProcID, op OpKind, args []Value) (Value, error)
}
