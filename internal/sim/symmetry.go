package sim

// Process-symmetry canonicalization. The protocols the paper censuses
// (DirectCAS election, the RMW election conjecture, CAS consensus) are
// symmetric in process identity: renaming the processes by any
// permutation π and renaming every ID-derived value and per-process
// object accordingly maps executions to executions. The explore
// package exploits this by fingerprinting each global state under the
// LEAST permutation in the declared group ("canonical orientation"),
// so the transposition table stores one subtree per symmetry class
// instead of one per class member.
//
// The machinery is strictly opt-in: a protocol declares a Symmetry
// spec on its System (DeclareSymmetry), the explorer validates it
// structurally (NewCanonicalizer) and empirically (AuditSymmetry), and
// refuses to enable the reduction if either fails — no silent
// unsoundness. See DESIGN.md §5 "Reduction soundness".

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Symmetry declares that a protocol is invariant under a group of
// process-ID permutations. All callbacks must be pure and must satisfy
// the equivariance contract checked by AuditSymmetry: running the
// system under a π-renamed schedule yields the π-renamed execution.
type Symmetry struct {
	// Perms is the permutation group, identity first. Perms[k][i] is
	// the ID that process i maps to under permutation k. The set must
	// be closed under composition (NewCanonicalizer validates).
	Perms [][]ProcID

	// RenameValue maps an operation argument/result or decision value
	// under a permutation (e.g. Symbol(i+1) ↦ Symbol(perm[i]+1)).
	// Values not derived from process IDs must pass through unchanged.
	// nil means no value depends on process identity.
	RenameValue func(v Value, perm []ProcID) Value

	// RenameObject maps an object name under a permutation (e.g. a
	// per-process announce cell "x.ann[i]" ↦ "x.ann[perm[i]]"). It must
	// be a bijection of the system's object set. nil means object names
	// do not encode process identity.
	RenameObject func(name string, perm []ProcID) string

	// RenameOutcome maps a census decision-fingerprint key (the
	// explore package's sorted "[v1 v2]" rendering) under a
	// permutation. Required whenever decisions are ID-derived (the
	// audit enforces this); RenameIntKey covers integer decisions.
	// It must be the identity for the identity permutation.
	RenameOutcome func(key string, perm []ProcID) string
}

// FullPerms returns the full symmetric group on {0..n-1} in
// lexicographic order, so the identity comes first.
func FullPerms(n int) [][]ProcID {
	var out [][]ProcID
	cur := make([]ProcID, 0, n)
	used := make([]bool, n)
	var rec func()
	rec = func() {
		if len(cur) == n {
			out = append(out, append([]ProcID(nil), cur...))
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			cur = append(cur, ProcID(i))
			rec()
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	rec()
	return out
}

// PermStateFolder is the symmetry-aware refinement of StateFolder: the
// object folds the state it WOULD have in the π-renamed execution.
// rename is the permutation's value renamer (never nil; identity for
// the identity permutation). The contract mirrors StateFolder's, plus
// self-consistency across permutations:
//
//	FoldStateUnder(h, π, rename_π) of object o
//	  == FoldStateUnder(h, id, id) of the renamed object π(o)
//
// Per-process ownership encoded in the object NAME (e.g. SWMR cells of
// an announce array) is folded by the Canonicalizer through the spec's
// RenameObject, so implementations only rename stored values (and, for
// types like LLSC that track per-process state internally, their
// ProcID-keyed tables via the perm argument).
type PermStateFolder interface {
	FoldStateUnder(h Hash, perm []ProcID, rename func(Value) Value) Hash
}

// RenameIntKey renames a decision-fingerprint key "[a b c]" whose
// entries are all integers, mapping each through f and re-sorting into
// canonical order. It panics on a malformed or non-integer key — a
// protocol with non-integer decisions needs its own RenameOutcome.
func RenameIntKey(key string, f func(int) int) string {
	if len(key) < 2 || key[0] != '[' || key[len(key)-1] != ']' {
		panic(fmt.Sprintf("sim: RenameIntKey: malformed decision key %q", key))
	}
	body := key[1 : len(key)-1]
	if body == "" {
		return key
	}
	fields := strings.Fields(body)
	out := make([]string, len(fields))
	for i, fd := range fields {
		v, err := strconv.Atoi(fd)
		if err != nil {
			panic(fmt.Sprintf("sim: RenameIntKey: non-integer decision %q in key %q", fd, key))
		}
		out[i] = strconv.Itoa(f(v))
	}
	sort.Strings(out)
	return "[" + strings.Join(out, " ") + "]"
}

// DeclareSymmetry attaches a Symmetry spec to the system. The spec is
// a declaration only — it has no effect on a run unless an explorer
// validates it and passes the derived Canonicalizer via Config.Canon.
// Builders share one immutable spec across all their systems.
func (s *System) DeclareSymmetry(spec *Symmetry) { s.symmetry = spec }

// SymmetrySpec returns the declared Symmetry spec, or nil.
func (s *System) SymmetrySpec() *Symmetry { return s.symmetry }

// PendingObject returns the name of the object that process id's next
// granted step will operate on. Valid only for processes currently
// parked at the scheduler gate (every process in the ready set); the
// runner may call it from inside Scheduler.Next. This is the static
// footprint the explore package's independence pruning keys on: steps
// of distinct processes pending on distinct objects commute.
func (s *System) PendingObject(id ProcID) string { return s.procs[id].pendingObj }

// Canonicalizer is the precomputed machinery that folds a System's
// global state under every permutation of its symmetry group. It is
// derived once per exploration from a probe system (NewCanonicalizer)
// and shared — read-only — by every worker and every probe run, so the
// per-run setup cost is a few slice headers, not |G|·|objects| work.
type Canonicalizer struct {
	spec  *Symmetry
	perms [][]ProcID
	inv   [][]ProcID // inv[k] is perms[k]⁻¹ as a lookup slice

	names    []string // sorted object names of the system shape
	objIndex map[string]int

	// Per-permutation precomputation (index 0 = identity):
	renameVal    []func(Value) Value   // value renamers (never nil)
	renamedNames [][]string            // renamedNames[k][i] renames names[i]
	foldOrder    [][]int               // indices into names, sorted by renamed name
	outRename    []func(string) string // outcome-key renamers (nil = identity)
	outRenameInv []func(string) string // under the inverse permutation
}

// NewCanonicalizer validates spec against the system's shape (objects
// and process count) and precomputes the per-permutation fold tables.
// It returns an error — symmetry must then stay disabled — when the
// permutation set is not a group on the system's processes, when an
// object does not support symmetry folding, or when RenameObject is
// not a bijection of the object set.
func NewCanonicalizer(sys *System, spec *Symmetry) (*Canonicalizer, error) {
	if spec == nil || len(spec.Perms) == 0 {
		return nil, fmt.Errorf("sim: symmetry: empty permutation set")
	}
	n := len(sys.procs)
	if n == 0 {
		return nil, fmt.Errorf("sim: symmetry: system has no processes")
	}
	encode := func(p []ProcID) string {
		var b strings.Builder
		for _, id := range p {
			fmt.Fprintf(&b, "%d,", id)
		}
		return b.String()
	}
	seen := make(map[string]int, len(spec.Perms))
	for k, p := range spec.Perms {
		if len(p) != n {
			return nil, fmt.Errorf("sim: symmetry: permutation %d has length %d, system has %d processes", k, len(p), n)
		}
		hit := make([]bool, n)
		for _, id := range p {
			if id < 0 || int(id) >= n || hit[id] {
				return nil, fmt.Errorf("sim: symmetry: permutation %d (%v) is not a bijection of 0..%d", k, p, n-1)
			}
			hit[id] = true
		}
		if _, dup := seen[encode(p)]; dup {
			return nil, fmt.Errorf("sim: symmetry: duplicate permutation %v", p)
		}
		seen[encode(p)] = k
	}
	for i, id := range spec.Perms[0] {
		if int(id) != i {
			return nil, fmt.Errorf("sim: symmetry: Perms[0] must be the identity, got %v", spec.Perms[0])
		}
	}
	// Closure under composition: without it the canonical orientation
	// is not a true quotient (Canonical(π(s)) could differ from
	// Canonical(s)) and the reduction silently stops merging classes.
	comp := make([]ProcID, n)
	for _, a := range spec.Perms {
		for _, b := range spec.Perms {
			for i := range comp {
				comp[i] = a[b[i]]
			}
			if _, ok := seen[encode(comp)]; !ok {
				return nil, fmt.Errorf("sim: symmetry: permutation set not closed under composition (%v∘%v missing)", a, b)
			}
		}
	}

	c := &Canonicalizer{spec: spec, perms: spec.Perms}
	c.names = make([]string, 0, len(sys.objects))
	for name, obj := range sys.objects {
		if _, ok := obj.(PermStateFolder); !ok {
			return nil, fmt.Errorf("sim: symmetry: object %q does not implement PermStateFolder", name)
		}
		c.names = append(c.names, name)
	}
	sort.Strings(c.names)
	c.objIndex = make(map[string]int, len(c.names))
	for i, name := range c.names {
		c.objIndex[name] = i
	}

	nPerm := len(c.perms)
	c.inv = make([][]ProcID, nPerm)
	c.renameVal = make([]func(Value) Value, nPerm)
	c.renamedNames = make([][]string, nPerm)
	c.foldOrder = make([][]int, nPerm)
	c.outRename = make([]func(string) string, nPerm)
	c.outRenameInv = make([]func(string) string, nPerm)
	for k := 0; k < nPerm; k++ {
		perm := c.perms[k]
		inv := make([]ProcID, n)
		for i, id := range perm {
			inv[id] = ProcID(i)
		}
		c.inv[k] = inv
		if k == 0 || spec.RenameValue == nil {
			c.renameVal[k] = func(v Value) Value { return v }
		} else {
			rv, p := spec.RenameValue, perm
			c.renameVal[k] = func(v Value) Value { return rv(v, p) }
		}
		rn := make([]string, len(c.names))
		for i, name := range c.names {
			if k == 0 || spec.RenameObject == nil {
				rn[i] = name
				continue
			}
			renamed := spec.RenameObject(name, perm)
			if _, ok := c.objIndex[renamed]; !ok {
				return nil, fmt.Errorf("sim: symmetry: RenameObject maps %q to %q, which is not an object of the system", name, renamed)
			}
			rn[i] = renamed
		}
		order := make([]int, len(c.names))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return rn[order[a]] < rn[order[b]] })
		if k != 0 && spec.RenameObject != nil {
			// Bijectivity: a non-injective RenameObject would fold two
			// distinct objects under one name and drop another.
			for i := 1; i < len(order); i++ {
				if rn[order[i]] == rn[order[i-1]] {
					return nil, fmt.Errorf("sim: symmetry: RenameObject is not a bijection (two objects map to %q)", rn[order[i]])
				}
			}
		}
		c.renamedNames[k] = rn
		c.foldOrder[k] = order
		if k != 0 && spec.RenameOutcome != nil {
			ro, p, ip := spec.RenameOutcome, perm, inv
			c.outRename[k] = func(key string) string { return ro(key, p) }
			c.outRenameInv[k] = func(key string) string { return ro(key, ip) }
		}
	}
	return c, nil
}

// NumPerms returns the size of the permutation group.
func (c *Canonicalizer) NumPerms() int { return len(c.perms) }

// OutcomeRenamer returns the outcome-key renamer for permutation k
// (nil means identity — safe to skip renaming entirely).
func (c *Canonicalizer) OutcomeRenamer(k int) func(string) string { return c.outRename[k] }

// OutcomeRenamerInv is OutcomeRenamer under the INVERSE of permutation
// k — what a table hit at canonical orientation k applies to translate
// the stored (canonical-coordinates) summary back into its own frame.
func (c *Canonicalizer) OutcomeRenamerInv(k int) func(string) string { return c.outRenameInv[k] }

// foldOpPerms extends proc.foldOp to every non-identity permutation:
// p.permHash[k-1] accumulates the observation history process p would
// have in the π_k-renamed execution. Like foldOp it folds only the
// (renamed) result — the renamed operation record is a function of the
// renamed prior results by the same determinism argument, applied to
// the renamed execution (which is an execution of the same protocol by
// the equivariance contract AuditSymmetry checks).
func (c *Canonicalizer) foldOpPerms(p *proc, result Value) {
	for k := 1; k < len(c.perms); k++ {
		p.permHash[k-1] = uint64(Hash(p.permHash[k-1]).FoldValue(c.renameVal[k](result)))
	}
}

// stateHashUnder folds — from scratch — the global state the system
// WOULD have in the π_k-renamed execution, as the XOR combination of
// the per-permutation components (see fingerprint.go): renamed-name-
// salted object folds with renamed values, renamed-slot-salted process
// folds with the per-permutation observation hashes. By the
// PermStateFolder contract each object component equals the identity
// component of the renamed object, and XOR makes the combination
// order-free, so comparing combinations across k compares renamed
// states. canonSeed (≠ plainSeed) keeps this keyspace disjoint from
// plain StateHash — a census may legitimately mix both (see the
// StateHashCanon bail-out).
//
// This is the canonical keyspace's from-scratch reference: AuditSymmetry
// compares executions through it, and Config.VerifyFingerprints checks
// the incrementally maintained canonHash vector against it.
func (s *System) stateHashUnder(k int) (uint64, bool) {
	c := s.canon
	h := canonSeed
	for oi := range c.names {
		comp, ok := s.fpCanonObjComp(k, oi)
		if !ok {
			return 0, false
		}
		h ^= mix64(comp)
	}
	for i := range s.procs {
		h ^= mix64(s.fpCanonProcComp(k, i))
	}
	return h, true
}

// isSentinelErr reports whether err is one of the runner's ID-free
// sentinel errors. Any other error (an object rejection, a protocol
// error) may embed process IDs in its text, which the value renamers
// cannot reach — canonicalization must bail for such states.
func isSentinelErr(err error) bool {
	return err == ErrCrashed || err == ErrStepLimit || err == ErrHalted
}

// StateHashCanon is StateHash under the least permutation of the
// declared symmetry group: it returns the minimum of stateHashUnder
// over the whole group plus the index of the minimizing permutation
// (the state's canonical orientation). Symmetric states share a
// canonical fingerprint, so a transposition table keyed on it stores
// one subtree per symmetry class.
//
// When no Canonicalizer is configured, or some finished process holds
// a non-sentinel error (whose text may embed process IDs and therefore
// escapes the renamers), it falls back to the plain StateHash with
// orientation 0. The bail-out predicate is itself equivariant — a
// renamed execution errs exactly when the original does — so bailed
// states simply fold in the plain keyspace (canonSeed keeps the two
// keyspaces disjoint) and lose reduction, never soundness.
//
// The per-permutation hashes are incrementally maintained (see
// fingerprint.go): after the dirty-component flush this is a min over
// |G| cached words, not |G| full state folds.
func (s *System) StateHashCanon() (uint64, int, bool) {
	c := s.canon
	if c == nil {
		fp, ok := s.StateHash()
		return fp, 0, ok
	}
	for _, p := range s.procs {
		if p.done && p.err != nil && !isSentinelErr(p.err) {
			fp, ok := s.StateHash()
			return fp, 0, ok
		}
	}
	s.fpEnsure()
	if !s.fp.ok || !s.fp.canonOK {
		fp, ok := s.StateHash()
		return fp, 0, ok
	}
	if s.verifyFP {
		s.fpVerifyCanon()
	}
	best, bestK := s.fp.canonHash[0], 0
	for k := 1; k < len(s.fp.canonHash); k++ {
		if s.fp.canonHash[k] < best {
			best, bestK = s.fp.canonHash[k], k
		}
	}
	return best, bestK, true
}

// auditSched records a rotating schedule: at each decision point it
// picks ready[(step+offset) mod |ready|], diversifying interleavings
// across audit rounds without randomness.
type auditSched struct {
	offset int
	picks  []ProcID
}

func (a *auditSched) Next(ready []ProcID, step int) ProcID {
	id := ready[(step+a.offset)%len(ready)]
	a.picks = append(a.picks, id)
	return id
}

// auditReplay replays a recorded schedule with every pick mapped
// through a permutation; dead is set if a mapped pick was not ready —
// direct evidence the protocol is not equivariant under the spec.
type auditReplay struct {
	picks []ProcID
	perm  []ProcID
	i     int
	dead  bool
}

func (a *auditReplay) Next(ready []ProcID, _ int) ProcID {
	if a.i >= len(a.picks) {
		return Halt
	}
	want := a.perm[a.picks[a.i]]
	a.i++
	for _, r := range ready {
		if r == want {
			return want
		}
	}
	a.dead = true
	return Halt
}

// auditDecisionKey renders the multiset of decided values exactly like
// the explore package's DecisionFingerprint, optionally renamed.
func auditDecisionKey(res *Result, rename func(Value, []ProcID) Value, perm []ProcID) string {
	var vals []string
	for i, err := range res.Errors {
		if err != nil {
			continue
		}
		v := res.Values[i]
		if rename != nil {
			v = rename(v, perm)
		}
		vals = append(vals, fmt.Sprint(v))
	}
	sort.Strings(vals)
	return "[" + strings.Join(vals, " ") + "]"
}

// AuditSymmetry empirically checks the equivariance contract of c's
// spec against the builder: for `rounds` recorded base schedules and
// every non-identity permutation π of the group, replaying the
// π-renamed schedule on a fresh system must (a) never pick a non-ready
// process, (b) reach a final state whose identity fold equals the base
// state's fold under π, and (c) decide the π-renamed decision multiset
// — with RenameOutcome agreeing on the rendered keys whenever
// decisions are not permutation-invariant. A nil error is the
// explorer's license to enable symmetry reduction; any failure means
// the spec (or the protocol) is not symmetric and reduction must stay
// off.
func AuditSymmetry(build func() *System, c *Canonicalizer, rounds, maxSteps int) error {
	if rounds <= 0 {
		rounds = 1
	}
	if maxSteps <= 0 {
		maxSteps = 64
	}
	for r := 0; r < rounds; r++ {
		base := build()
		rec := &auditSched{offset: r}
		bres, err := base.Run(Config{
			Scheduler: rec, Fingerprint: true, Canon: c,
			MaxTotalSteps: maxSteps, DisableTrace: true,
		})
		if err != nil {
			return fmt.Errorf("symmetry audit: base run: %w", err)
		}
		bailed := false
		for _, e := range bres.Errors {
			if e != nil && !isSentinelErr(e) {
				bailed = true // canonicalization would bail here anyway
			}
		}
		if bailed {
			continue
		}
		baseKey := auditDecisionKey(bres, nil, nil)
		for k := 1; k < c.NumPerms(); k++ {
			perm := c.perms[k]
			fpK, ok := base.stateHashUnder(k)
			if !ok {
				return fmt.Errorf("symmetry audit: object lost PermStateFolder support mid-run")
			}
			twin := build()
			rp := &auditReplay{picks: rec.picks, perm: perm}
			tres, err := twin.Run(Config{
				Scheduler: rp, Fingerprint: true, Canon: c,
				MaxTotalSteps: maxSteps, DisableTrace: true,
			})
			if err != nil {
				return fmt.Errorf("symmetry audit: renamed run: %w", err)
			}
			if rp.dead {
				return fmt.Errorf("symmetry audit: protocol not equivariant: schedule renamed under %v diverged (renamed pick not ready)", perm)
			}
			fp0, ok := twin.stateHashUnder(0)
			if !ok {
				return fmt.Errorf("symmetry audit: object lost PermStateFolder support mid-run")
			}
			if fp0 != fpK {
				return fmt.Errorf("symmetry audit: state fold mismatch under %v (round %d): the spec's renamers do not match the protocol", perm, r)
			}
			twinKey := auditDecisionKey(tres, nil, nil)
			renamedKey := auditDecisionKey(bres, c.spec.RenameValue, perm)
			if renamedKey != twinKey {
				return fmt.Errorf("symmetry audit: RenameValue maps decisions %s to %s but the renamed run decided %s (perm %v)", baseKey, renamedKey, twinKey, perm)
			}
			if baseKey != twinKey && c.spec.RenameOutcome == nil {
				return fmt.Errorf("symmetry audit: decisions are permutation-sensitive (%s vs %s under %v) but the spec has no RenameOutcome", baseKey, twinKey, perm)
			}
			if c.spec.RenameOutcome != nil {
				if got := c.spec.RenameOutcome(baseKey, perm); got != twinKey {
					return fmt.Errorf("symmetry audit: RenameOutcome maps %s to %s but the renamed run decided %s (perm %v)", baseKey, got, twinKey, perm)
				}
			}
		}
	}
	return nil
}
