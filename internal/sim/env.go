package sim

import "fmt"

// Env is a process's handle to the shared-memory machine. All shared
// operations block at the scheduler gate: calling any operation yields
// control until the scheduler grants this process its next step.
type Env struct {
	sys  *System
	proc *proc
}

// ID returns the calling process's identifier.
func (e *Env) ID() ProcID { return e.proc.id }

// NumProcs returns the number of processes in the system.
func (e *Env) NumProcs() int { return len(e.sys.procs) }

// Steps returns the number of shared steps this process has taken.
func (e *Env) Steps() int { return e.proc.steps }

// Apply performs one atomic operation on obj. The calling goroutine
// blocks until the scheduler grants the step. If the object rejects the
// operation the process is stopped and the error is recorded in the
// run's Result.
//
// The variadic form allocates its argument slice per call; hot
// protocol code with fixed arity should use Apply0, Apply1 or Apply2,
// which reuse a per-process buffer instead.
func (e *Env) Apply(obj Object, op OpKind, args ...Value) Value {
	return e.apply(obj, op, args)
}

// Apply0 is Apply with no arguments and no per-call allocation.
func (e *Env) Apply0(obj Object, op OpKind) Value {
	return e.apply(obj, op, nil)
}

// Apply1 is Apply with one argument, staged in a per-process buffer so
// the call allocates nothing. The buffer is reused on the process's
// next fixed-arity operation: objects must not retain the args slice
// (they already must not — see Object.Apply).
func (e *Env) Apply1(obj Object, op OpKind, a0 Value) Value {
	e.proc.argbuf[0] = a0
	return e.apply(obj, op, e.proc.argbuf[:1])
}

// Apply2 is Apply with two arguments; see Apply1.
func (e *Env) Apply2(obj Object, op OpKind, a0, a1 Value) Value {
	e.proc.argbuf[0] = a0
	e.proc.argbuf[1] = a1
	return e.apply(obj, op, e.proc.argbuf[:2])
}

func (e *Env) apply(obj Object, op OpKind, args []Value) Value {
	// Publish the static footprint of the upcoming step BEFORE parking
	// at the gate: the runner (and the scheduler it calls) reads it via
	// System.PendingObject while this goroutine is blocked, so the
	// events-channel send inside gate orders the write before any read.
	e.proc.pendingObj = obj.Name()
	e.gate()
	idx := e.sys.steps
	for _, sp := range e.proc.pending {
		sp.Start = idx
	}
	e.proc.pending = e.proc.pending[:0]
	e.proc.lastStep = idx
	var v Value
	var err error
	// Consult the object-fault plan exactly once per step, even when the
	// target object is not Faultable: the plan may be stateful (a
	// pending one-shot fault choice) and must see every step. The
	// Faultable assertion is paid only on the rare steps where a fault
	// actually fires — fault-free steps go straight to Apply.
	mode := FaultNone
	if e.sys.objFaults != nil {
		mode = e.sys.objFaults.FaultOp(idx)
	}
	if mode != FaultNone {
		if fo, ok := obj.(Faultable); ok {
			v, err = fo.ApplyFault(e.proc.id, op, args, mode)
		} else {
			v, err = obj.Apply(e.proc.id, op, args)
		}
	} else {
		v, err = obj.Apply(e.proc.id, op, args)
	}
	if err != nil {
		err = fmt.Errorf("proc %d: %s.%s: %w", e.proc.id, obj.Name(), op, err)
		if e.sys.trace != nil {
			e.sys.trace.record(e.sys.steps, e.proc.id, obj.Name(), op, e.traceArgs(args), err)
		}
		if e.sys.fingerprint {
			// The process dies with this error (its status component
			// changes once runProc records it) and the object may have
			// mutated before rejecting — mark both stale.
			e.sys.fpTouchObj(obj.Name())
			e.sys.fpTouchProc(int(e.proc.id))
		}
		panic(opError{err: err})
	}
	if e.sys.trace != nil {
		e.sys.trace.record(e.sys.steps, e.proc.id, obj.Name(), op, e.traceArgs(args), v)
	}
	if e.sys.fingerprint {
		e.proc.foldOp(v)
		if e.sys.canon != nil {
			e.sys.canon.foldOpPerms(e.proc, v)
		}
		if e.sys.fp.init {
			e.sys.fpTouchObj(obj.Name())
			e.sys.fpTouchProc(int(e.proc.id))
		}
	}
	return v
}

// traceArgs returns args safe for retention by the trace. The
// fixed-arity fast paths stage arguments in the process's reusable
// buffer; a recorded Event outlives the step, so those must be copied
// out. Variadic Apply args are freshly allocated per call and pass
// through untouched.
func (e *Env) traceArgs(args []Value) []Value {
	if len(args) > 0 && &args[0] == &e.proc.argbuf[0] {
		return append([]Value(nil), args...)
	}
	return args
}

// ApplyNamed is Apply on the object registered under name. It panics if
// no such object exists (static protocol structure, so a missing name
// is a programming error).
func (e *Env) ApplyNamed(name string, op OpKind, args ...Value) Value {
	obj := e.sys.objects[name]
	if obj == nil {
		panic(fmt.Sprintf("sim: no object %q", name))
	}
	return e.Apply(obj, op, args...)
}

// BeginOp opens a high-level operation span for linearizability
// checking of derived objects (objects implemented by a protocol over
// several primitive steps). The span's interval is the window from the
// operation's first shared step to its last one — local computation is
// instantaneous in the model, so that window is the operation's
// execution. Spans are buffered per process and merged into the trace
// when the run ends.
func (e *Env) BeginOp(object string, kind OpKind, args ...Value) *Span {
	sp := &Span{
		Proc:   e.proc.id,
		Object: object,
		Kind:   kind,
		Args:   args,
		Start:  -1,
		End:    -1,
	}
	e.proc.spans = append(e.proc.spans, sp)
	e.proc.pending = append(e.proc.pending, sp)
	return sp
}

// EndOp closes a high-level operation span with its result. The span
// ends at the operation's last shared step; a span with no steps
// degenerates to the point of the process's previous step.
func (e *Env) EndOp(sp *Span, result Value) {
	if sp.Start < 0 {
		sp.Start = e.proc.lastStep
	}
	sp.End = e.proc.lastStep
	sp.Result = result
}

// gate blocks until the scheduler grants this process a step. It
// signals the runner that the process has completed its previous step
// and is ready again.
func (e *Env) gate() {
	e.sys.events <- procEvent{id: e.proc.id}
	if _, ok := <-e.proc.grant; !ok {
		panic(errCrashSignal{})
	}
	// Count the step here so Env.Steps() is current during the granted
	// operation. The runner is blocked until this process yields again,
	// so the write is race-free.
	e.proc.steps++
}
