package sim_test

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/registers"
	"repro/internal/sim"
)

// buildCounter makes a system of n processes that each read a shared
// register and write back the value plus one, repeat times, then decide
// their last-read value.
func buildCounter(n, repeat int) *sim.System {
	sys := sim.NewSystem()
	reg := registers.NewMWMR("c", 0)
	sys.Add(reg)
	sys.SpawnN(n, func(sim.ProcID) sim.Program {
		return func(e *sim.Env) (sim.Value, error) {
			last := 0
			for i := 0; i < repeat; i++ {
				last = reg.Read(e).(int)
				reg.Write(e, last+1)
			}
			return last, nil
		}
	})
	return sys
}

func TestRoundRobinDeterministic(t *testing.T) {
	run := func() *sim.Result {
		res, err := buildCounter(3, 4).Run(sim.Config{Scheduler: sim.RoundRobin()})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Values, b.Values) {
		t.Errorf("round-robin runs disagree: %v vs %v", a.Values, b.Values)
	}
	if a.TotalSteps != b.TotalSteps {
		t.Errorf("step counts differ: %d vs %d", a.TotalSteps, b.TotalSteps)
	}
	if len(a.Trace.Events) != a.TotalSteps {
		t.Errorf("trace has %d events, want %d", len(a.Trace.Events), a.TotalSteps)
	}
}

func TestRandomSeedDeterministic(t *testing.T) {
	run := func(seed int64) string {
		res, err := buildCounter(4, 5).Run(sim.Config{Scheduler: sim.Random(seed)})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.Trace.String()
	}
	if run(7) != run(7) {
		t.Error("same seed produced different traces")
	}
	if run(7) == run(8) {
		t.Error("different seeds produced identical traces (suspicious for 4x5 steps)")
	}
}

func TestRunOnceOnly(t *testing.T) {
	sys := buildCounter(1, 1)
	if _, err := sys.Run(sim.Config{}); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if _, err := sys.Run(sim.Config{}); err == nil {
		t.Error("second Run succeeded, want error")
	}
}

func TestNoProcs(t *testing.T) {
	if _, err := sim.NewSystem().Run(sim.Config{}); err == nil {
		t.Error("Run with no processes succeeded, want error")
	}
}

func TestDuplicateObjectPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Add did not panic")
		}
	}()
	sys := sim.NewSystem()
	sys.Add(registers.NewMWMR("x", 0))
	sys.Add(registers.NewMWMR("x", 0))
}

func TestCrashFaultPlan(t *testing.T) {
	sys := buildCounter(2, 10)
	res, err := sys.Run(sim.Config{
		Scheduler: sim.RoundRobin(),
		Faults:    sim.CrashAt(map[int][]sim.ProcID{3: {0}}),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Crashed[0] {
		t.Error("process 0 not marked crashed")
	}
	if !errors.Is(res.Errors[0], sim.ErrCrashed) {
		t.Errorf("process 0 error = %v, want ErrCrashed", res.Errors[0])
	}
	if res.Errors[1] != nil {
		t.Errorf("process 1 error = %v, want nil", res.Errors[1])
	}
	if got := res.Decided(); len(got) != 1 || got[0] != 1 {
		t.Errorf("Decided() = %v, want [1]", got)
	}
}

func TestSWMROwnerViolationStopsProcess(t *testing.T) {
	sys := sim.NewSystem()
	reg := registers.NewSWMR("r", 0, nil)
	sys.Add(reg)
	sys.Spawn(func(e *sim.Env) (sim.Value, error) {
		reg.Write(e, 1) // owned by proc 0: fine
		return "ok", nil
	})
	sys.Spawn(func(e *sim.Env) (sim.Value, error) {
		reg.Write(e, 2) // not the owner: must stop this process
		return "unreachable", nil
	})
	res, err := sys.Run(sim.Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors[0] != nil {
		t.Errorf("owner write failed: %v", res.Errors[0])
	}
	if !errors.Is(res.Errors[1], registers.ErrNotOwner) {
		t.Errorf("non-owner write error = %v, want ErrNotOwner", res.Errors[1])
	}
}

func TestStepLimitStopsSpinner(t *testing.T) {
	sys := sim.NewSystem()
	reg := registers.NewMWMR("r", 0)
	sys.Add(reg)
	sys.Spawn(func(e *sim.Env) (sim.Value, error) {
		for { // not wait-free: spins forever
			reg.Read(e)
		}
	})
	res, err := sys.Run(sim.Config{MaxStepsPerProc: 50})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(res.Errors[0], sim.ErrStepLimit) {
		t.Errorf("error = %v, want ErrStepLimit", res.Errors[0])
	}
	if res.Steps[0] > 50 {
		t.Errorf("spinner took %d steps, bound 50", res.Steps[0])
	}
}

func TestMaxTotalStepsHalts(t *testing.T) {
	sys := sim.NewSystem()
	reg := registers.NewMWMR("r", 0)
	sys.Add(reg)
	sys.Spawn(func(e *sim.Env) (sim.Value, error) {
		for {
			reg.Read(e)
		}
	})
	res, err := sys.Run(sim.Config{MaxTotalSteps: 30})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Halted {
		t.Error("run not marked halted")
	}
	if res.TotalSteps != 30 {
		t.Errorf("TotalSteps = %d, want 30", res.TotalSteps)
	}
}

func TestReplayHaltReportsReadySet(t *testing.T) {
	sys := buildCounter(3, 5)
	res, err := sys.Run(sim.Config{Scheduler: sim.Replay([]sim.ProcID{0, 1})})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Halted {
		t.Fatal("run not halted at end of replay schedule")
	}
	want := []sim.ProcID{0, 1, 2}
	if !reflect.DeepEqual(res.ReadyAtHalt, want) {
		t.Errorf("ReadyAtHalt = %v, want %v", res.ReadyAtHalt, want)
	}
	for i := range res.Errors {
		if !errors.Is(res.Errors[i], sim.ErrHalted) {
			t.Errorf("proc %d error = %v, want ErrHalted", i, res.Errors[i])
		}
	}
}

func TestRecordingThenReplayReproduces(t *testing.T) {
	var schedule []sim.ProcID
	res1, err := buildCounter(3, 4).Run(sim.Config{
		Scheduler: sim.Recording(sim.Random(42), &schedule),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	res2, err := buildCounter(3, 4).Run(sim.Config{
		Scheduler: sim.Replay(schedule),
	})
	if err != nil {
		t.Fatalf("replay Run: %v", err)
	}
	if res2.Halted {
		t.Fatal("replay halted before completion")
	}
	if res1.Trace.String() != res2.Trace.String() {
		t.Errorf("replay trace differs:\n%s\nvs\n%s", res1.Trace, res2.Trace)
	}
}

func TestSoloSchedulerRunsProcessAlone(t *testing.T) {
	res, err := buildCounter(3, 4).Run(sim.Config{Scheduler: sim.Solo(2)})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, ev := range res.Trace.Events[:8] {
		if ev.Proc != 2 {
			t.Fatalf("event %d by proc %d, want solo proc 2", i, ev.Proc)
		}
	}
}

func TestProgramErrorRecorded(t *testing.T) {
	sys := sim.NewSystem()
	wantErr := errors.New("boom")
	sys.Spawn(func(*sim.Env) (sim.Value, error) { return nil, wantErr })
	res, err := sys.Run(sim.Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(res.Errors[0], wantErr) {
		t.Errorf("error = %v, want %v", res.Errors[0], wantErr)
	}
}

func TestProcessWithNoSharedSteps(t *testing.T) {
	sys := sim.NewSystem()
	sys.Spawn(func(*sim.Env) (sim.Value, error) { return 99, nil })
	res, err := sys.Run(sim.Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Values[0] != 99 || res.Steps[0] != 0 {
		t.Errorf("got value %v steps %d, want 99 and 0", res.Values[0], res.Steps[0])
	}
}

func TestDistinctDecisions(t *testing.T) {
	sys := sim.NewSystem()
	for _, v := range []int{1, 2, 2, 1} {
		v := v
		sys.Spawn(func(*sim.Env) (sim.Value, error) { return v, nil })
	}
	res, err := sys.Run(sim.Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := res.DistinctDecisions(); len(got) != 2 {
		t.Errorf("DistinctDecisions = %v, want 2 values", got)
	}
}

func TestEnvMetadata(t *testing.T) {
	sys := sim.NewSystem()
	reg := registers.NewMWMR("r", 0)
	sys.Add(reg)
	sys.SpawnN(3, func(id sim.ProcID) sim.Program {
		return func(e *sim.Env) (sim.Value, error) {
			if e.ID() != id {
				return nil, fmt.Errorf("ID() = %d, want %d", e.ID(), id)
			}
			if e.NumProcs() != 3 {
				return nil, fmt.Errorf("NumProcs() = %d, want 3", e.NumProcs())
			}
			reg.Read(e)
			if e.Steps() != 1 {
				return nil, fmt.Errorf("Steps() = %d, want 1", e.Steps())
			}
			return nil, nil
		}
	})
	res, err := sys.Run(sim.Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, perr := range res.Errors {
		if perr != nil {
			t.Errorf("proc %d: %v", i, perr)
		}
	}
}

func TestCrashAfterSteps(t *testing.T) {
	sys := buildCounter(2, 20)
	res, err := sys.Run(sim.Config{
		Scheduler: sim.RoundRobin(),
		Faults:    sim.CrashAfterSteps(1, 10),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Crashed[1] {
		t.Error("process 1 not crashed")
	}
	if res.Crashed[0] {
		t.Error("process 0 crashed, want survivor")
	}
}

func TestRandomCrashesBounded(t *testing.T) {
	sys := buildCounter(5, 20)
	res, err := sys.Run(sim.Config{
		Scheduler: sim.Random(1),
		Faults:    sim.RandomCrashes(2, 0.2, 2),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	crashed := 0
	for _, c := range res.Crashed {
		if c {
			crashed++
		}
	}
	if crashed > 2 {
		t.Errorf("%d crashes, bound 2", crashed)
	}
}

func TestTraceEventContent(t *testing.T) {
	sys := sim.NewSystem()
	reg := registers.NewMWMR("r", 5)
	sys.Add(reg)
	sys.Spawn(func(e *sim.Env) (sim.Value, error) {
		v := reg.Read(e)
		reg.Write(e, 7)
		return v, nil
	})
	res, err := sys.Run(sim.Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	evs := res.Trace.EventsOf("r")
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Op != sim.OpRead || evs[0].Result != 5 {
		t.Errorf("event 0 = %v, want read=5", evs[0])
	}
	if evs[1].Op != sim.OpWrite || evs[1].Args[0] != 7 {
		t.Errorf("event 1 = %v, want write(7)", evs[1])
	}
}

func TestDisableTrace(t *testing.T) {
	sys := buildCounter(2, 2)
	res, err := sys.Run(sim.Config{DisableTrace: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Trace != nil {
		t.Error("trace recorded despite DisableTrace")
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	sys := buildCounter(2, 3)
	res, err := sys.Run(sim.Config{Scheduler: sim.RoundRobin()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := sim.ReadTraceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(res.Trace.Events) {
		t.Fatalf("round trip lost events: %d vs %d", len(back.Events), len(res.Trace.Events))
	}
	for i, ev := range back.Events {
		orig := res.Trace.Events[i]
		if ev.Step != orig.Step || ev.Proc != orig.Proc || ev.Object != orig.Object || ev.Op != orig.Op {
			t.Errorf("event %d differs: %v vs %v", i, ev, orig)
		}
		if fmt.Sprint(ev.Result) != fmt.Sprint(orig.Result) {
			t.Errorf("event %d result rendering differs: %v vs %v", i, ev.Result, orig.Result)
		}
	}
}

func TestTraceJSONBadInput(t *testing.T) {
	if _, err := sim.ReadTraceJSON(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Error("garbage accepted")
	}
}

// TestOnStepHeartbeat: the OnStep hook must fire exactly once per
// granted shared-memory step, with a strictly increasing cumulative
// count matching Result.TotalSteps — it is the progress heartbeat the
// exploration supervisor's stall watchdog relies on.
func TestOnStepHeartbeat(t *testing.T) {
	var calls, last int
	res, err := buildCounter(3, 4).Run(sim.Config{
		Scheduler: sim.RoundRobin(),
		OnStep: func(step int) {
			calls++
			if step != last+1 {
				t.Fatalf("OnStep saw step %d after %d, want consecutive", step, last)
			}
			last = step
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls != res.TotalSteps {
		t.Fatalf("OnStep fired %d times, run took %d steps", calls, res.TotalSteps)
	}
	if calls == 0 {
		t.Fatal("OnStep never fired")
	}
}
