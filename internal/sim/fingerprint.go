package sim

// Incremental state fingerprinting. StateHash used to re-fold every
// object and every process history at every decision point, and
// StateHashCanon repeated that for each permutation of the symmetry
// group — O(|objects| + |procs|) (times |G| for canon) per probe, the
// dominant cost of fingerprinted exploration. But each shared step
// mutates exactly one object and one process, so almost all of that
// work recomputed unchanged components.
//
// The global fingerprint is now a combination of per-component 64-bit
// hashes — one per object, one per process — merged with a slot-salted
// mixer:
//
//	plain = plainSeed ^ XOR_i mix64(objComp[i]) ^ XOR_j mix64(procComp[j])
//
// XOR makes any single component replaceable in O(1): when component c
// changes from old to new, plain ^= mix64(old) ^ mix64(new). mix64 (the
// splitmix64 finalizer, a bijection on 64-bit words) decorrelates the
// components before XOR folds them, so single-bit component differences
// do not cancel. Each component is salted with its slot — objects fold
// their (unique) name, processes fold their index — so two distinct
// slots never contribute identical terms that XOR could cancel (two
// symmetric processes in the same local state must not erase each
// other). The canonical keyspace keeps one such combination per
// permutation k, built from per-permutation component vectors, so
// StateHashCanon patches |G| cached entries per step and takes a min
// over |G| cached words instead of |G| full state folds.
//
// Dirty discipline: the runners mark the object and process touched by
// each step (fpTouchObj/fpTouchProc); the next fingerprint read
// recomputes just the marked components and patches the combined
// hashes (fpFlush). Maintenance is lazy — until the first read
// (fp.init), touches are no-ops and the first StateHash/Snapshot does
// one full rebuild — so runs that never observe mid-run fingerprints
// (benchmarks, plain censuses) pay only the per-step result fold.
// Config.VerifyFingerprints cross-checks incremental against
// from-scratch at every read and panics on divergence.
//
// See DESIGN.md §10 "Incremental fingerprint soundness".

import (
	"fmt"
	"sort"
)

// mix64 is the splitmix64 finalizer: a bijective avalanche on 64-bit
// words, applied to every component before the XOR combination.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Seeds keeping the plain and canonical keyspaces disjoint: a census
// may legitimately mix both (see the StateHashCanon bail-out), so a
// plain fingerprint must never equal a canonical one by construction.
const (
	plainSeed uint64 = 0x243f6a8885a308d3
	canonSeed uint64 = 0x13198a2e03707344
)

// fpState is the incremental-fingerprint cache embedded in System.
// All vectors are backed by one Scratch-supplied buffer when a Scratch
// is configured, so fingerprinted exploration runs allocate nothing
// here after warm-up.
type fpState struct {
	// init is set by the first rebuild; until then touches are no-ops.
	// ok mirrors StateHash's ok (every object foldable); canonOK
	// additionally requires PermStateFolder support on every object.
	init    bool
	ok      bool
	canonOK bool

	nObj, nProc, nPerm int

	objComp  []uint64 // objComp[i]: component of object sortedNames[i]
	procComp []uint64 // procComp[j]: component of process j
	plain    uint64   // plainSeed ^ XOR mix64(components)

	// Canonical keyspace, flattened over permutations (nPerm = |G|,
	// including the identity at k=0):
	canonObj  []uint64 // canonObj[k*nObj+i]
	canonProc []uint64 // canonProc[k*nProc+j]
	canonHash []uint64 // canonHash[k] = canonSeed ^ XOR mix64(...)

	// Dirty-component bookkeeping: indices awaiting recompute, with a
	// membership bitmap so a component is queued at most once between
	// flushes, and a one-entry name→index cache for the common case of
	// consecutive steps touching the same object.
	dirtyO, dirtyP []int
	markO, markP   []bool
	lastName       string
	lastIdx        int

	// Rebuild-time derived caches, step-invariant for a given System
	// shape (object set, process count, symmetry group), so the flush
	// path recomputes a component without the map lookup, interface
	// re-assertion and salt re-fold that a from-scratch fold pays.
	// Derived, not state: never snapshotted or restored.
	objs          []Object          // objs[i]: object sortedNames[i]
	foldObjs      []StateFolder     // objs[i], asserted once; nil → keyObjs
	keyObjs       []StateKeyer      // fallback fold when foldObjs[i] is nil
	permObjs      []PermStateFolder // objs[i], asserted once (canonOK)
	objSalt       []uint64          // Hash after FoldString(name)
	procSalt      []uint64          // Hash after FoldInt(j)
	canonObjSalt  []uint64          // [k*nObj+i]: after renamed-name fold
	canonProcSalt []uint64          // [k*nProc+j]: after FoldInt(π_k(j))
}

// alloc sizes the vectors for this system shape, drawing backing
// storage from sc when available. Marks are cleared (Scratch buffers
// carry stale state from the previous run); component words need no
// zeroing — rebuild overwrites every entry before it is read.
func (fp *fpState) alloc(nObj, nProc, nPerm int, sc *Scratch) {
	fp.nObj, fp.nProc, fp.nPerm = nObj, nProc, nPerm
	words := (nObj + nProc + nPerm*(1+nObj+nProc)) * 2
	var buf []uint64
	var ints []int
	var marks []bool
	if sc != nil {
		buf, ints, marks = sc.fpBufs(words, nObj+nProc)
		fp.objs, fp.foldObjs, fp.keyObjs, fp.permObjs = sc.fpObjBufs(nObj)
	} else {
		buf = make([]uint64, words)
		ints = make([]int, nObj+nProc)
		marks = make([]bool, nObj+nProc)
		fp.objs = make([]Object, nObj)
		fp.foldObjs = make([]StateFolder, nObj)
		fp.keyObjs = make([]StateKeyer, nObj)
		fp.permObjs = make([]PermStateFolder, nObj)
	}
	fp.objComp, buf = buf[:nObj:nObj], buf[nObj:]
	fp.procComp, buf = buf[:nProc:nProc], buf[nProc:]
	fp.objSalt, buf = buf[:nObj:nObj], buf[nObj:]
	fp.procSalt, buf = buf[:nProc:nProc], buf[nProc:]
	if nPerm > 0 {
		fp.canonHash, buf = buf[:nPerm:nPerm], buf[nPerm:]
		fp.canonObj, buf = buf[:nPerm*nObj:nPerm*nObj], buf[nPerm*nObj:]
		fp.canonProc, buf = buf[:nPerm*nProc:nPerm*nProc], buf[nPerm*nProc:]
		fp.canonObjSalt, buf = buf[:nPerm*nObj:nPerm*nObj], buf[nPerm*nObj:]
		fp.canonProcSalt = buf[: nPerm*nProc : nPerm*nProc]
	} else {
		fp.canonHash, fp.canonObj, fp.canonProc = nil, nil, nil
		fp.canonObjSalt, fp.canonProcSalt = nil, nil
	}
	fp.dirtyO = ints[:0:nObj]
	fp.dirtyP = ints[nObj : nObj : nObj+nProc]
	fp.markO = marks[:nObj]
	fp.markP = marks[nObj:]
	for i := range marks {
		marks[i] = false
	}
	fp.lastName, fp.lastIdx = "", 0
}

// fpObjComp folds one object's plain component: its name (the slot
// salt — names are unique) followed by its state fold.
func fpObjComp(name string, obj Object) (uint64, bool) {
	h := NewHash().FoldString(name)
	switch o := obj.(type) {
	case StateFolder:
		return uint64(o.FoldState(h)), true
	case StateKeyer:
		return uint64(h.FoldString(o.StateKey())), true
	default:
		return 0, false
	}
}

// fpProcTail finishes a process component fold: completion status with
// the (possibly renamed) decision value v, then the crash flag. v is
// only read in the decided case, so live-process callers pass nil.
func fpProcTail(h Hash, p *proc, v Value) uint64 {
	switch {
	case p.done && p.err != nil:
		h = h.FoldByte(tagProcErr).FoldString(p.err.Error())
	case p.done:
		h = h.FoldByte(tagProcDone).FoldValue(v)
	default:
		h = h.FoldByte(tagProcLive)
	}
	if p.crashed {
		h = h.FoldByte(tagProcCrashed)
	}
	return uint64(h)
}

// fpProcComp folds process j's plain component: its slot (the salt —
// without it two symmetric processes in identical local states would
// contribute equal terms and XOR-cancel), observation-history hash,
// step count and completion status.
func fpProcComp(j int, p *proc) uint64 {
	h := NewHash().FoldInt(j).FoldUint64(p.opHash).FoldInt(p.steps)
	return fpProcTail(h, p, p.value)
}

// fpCanonObjComp folds object oi's component as it would appear in the
// π_k-renamed execution: the renamed name as the slot salt, the state
// folded with renamed values. By the PermStateFolder contract this
// equals the identity component of the renamed object, so XOR-combining
// over all objects matches the renamed execution's plain combination.
func (s *System) fpCanonObjComp(k, oi int) (uint64, bool) {
	c := s.canon
	obj, ok := s.objects[c.names[oi]].(PermStateFolder)
	if !ok {
		return 0, false
	}
	h := NewHash().FoldString(c.renamedNames[k][oi])
	return uint64(obj.FoldStateUnder(h, c.perms[k], c.renameVal[k])), true
}

// fpCanonProcComp folds process i's component in the π_k-renamed
// execution: slot salt π_k(i) (the slot the process occupies after
// renaming), the per-permutation observation hash, and the status with
// a renamed decision value. XOR makes the combination order-free, so
// salting with the renamed slot is exactly folding the processes in
// renamed-ID order.
func (s *System) fpCanonProcComp(k, i int) uint64 {
	c := s.canon
	p := s.procs[i]
	oph := p.opHash
	if k != 0 {
		oph = p.permHash[k-1]
	}
	h := NewHash().FoldInt(int(c.perms[k][i])).FoldUint64(oph).FoldInt(p.steps)
	var v Value
	if p.done && p.err == nil {
		v = c.renameVal[k](p.value)
	}
	return fpProcTail(h, p, v)
}

// Cached-salt component recomputes — the flush/rebuild fast path. Each
// must fold the exact sequence of its from-scratch counterpart above
// (fpObjComp / fpProcComp / fpCanonObjComp / fpCanonProcComp): the
// VerifyFingerprints cross-checks compare their results word-for-word.

// objCompCached uses the foldObjs/keyObjs assertions made at rebuild
// rather than a type switch: an interface-case switch goes through
// runtime.interfaceSwitch, whose cache write allocates — a steady-state
// allocation on the flush path (visible under -race, where the
// compiler's switch cache is disabled and every call enters the
// runtime).
func (fp *fpState) objCompCached(oi int) (uint64, bool) {
	h := Hash(fp.objSalt[oi])
	if o := fp.foldObjs[oi]; o != nil {
		return uint64(o.FoldState(h)), true
	}
	if o := fp.keyObjs[oi]; o != nil {
		return uint64(h.FoldString(o.StateKey())), true
	}
	return 0, false
}

func (s *System) fpProcCompCached(j int) uint64 {
	p := s.procs[j]
	h := Hash(s.fp.procSalt[j]).FoldUint64(p.opHash).FoldInt(p.steps)
	return fpProcTail(h, p, p.value)
}

func (s *System) fpCanonObjCompCached(k, oi int) uint64 {
	fp := &s.fp
	c := s.canon
	h := Hash(fp.canonObjSalt[k*fp.nObj+oi])
	return uint64(fp.permObjs[oi].FoldStateUnder(h, c.perms[k], c.renameVal[k]))
}

func (s *System) fpCanonProcCompCached(k, j int) uint64 {
	fp := &s.fp
	p := s.procs[j]
	oph := p.opHash
	if k != 0 {
		oph = p.permHash[k-1]
	}
	h := Hash(fp.canonProcSalt[k*fp.nProc+j]).FoldUint64(oph).FoldInt(p.steps)
	var v Value
	if p.done && p.err == nil {
		v = s.canon.renameVal[k](p.value)
	}
	return fpProcTail(h, p, v)
}

// fpTouchObj marks the named object's components stale. Called from
// both runners after every step (and on the operation-error path, in
// case the object mutated before rejecting). No-op until the first
// fingerprint read builds the cache.
func (s *System) fpTouchObj(name string) {
	fp := &s.fp
	if !fp.init || !fp.ok {
		return
	}
	if name != fp.lastName {
		fp.lastIdx = sort.SearchStrings(s.objNames, name)
		fp.lastName = name
	}
	if i := fp.lastIdx; i < len(fp.markO) && !fp.markO[i] {
		fp.markO[i] = true
		fp.dirtyO = append(fp.dirtyO, i)
	}
}

// fpTouchProc marks process j's components stale.
func (s *System) fpTouchProc(j int) {
	fp := &s.fp
	if !fp.init || !fp.ok {
		return
	}
	if !fp.markP[j] {
		fp.markP[j] = true
		fp.dirtyP = append(fp.dirtyP, j)
	}
}

// fpEnsure brings the cached fingerprints up to date: a full rebuild on
// first use, a dirty-component flush afterwards. Callers must hold the
// runner's quiescence (decision points only), the same condition
// StateHash always required.
func (s *System) fpEnsure() {
	if !s.fp.init {
		s.fpRebuild()
		return
	}
	if s.fp.ok {
		s.fpFlush()
	}
}

// fpRebuild computes every component and combined hash from scratch.
func (s *System) fpRebuild() {
	fp := &s.fp
	names := s.sortedNames()
	nPerm := 0
	if s.canon != nil {
		nPerm = len(s.canon.perms)
	}
	fp.alloc(len(names), len(s.procs), nPerm, s.scratch)
	fp.init = true
	fp.ok = true
	fp.canonOK = nPerm > 0
	for i, name := range names {
		fp.objs[i] = s.objects[name]
		fp.objSalt[i] = uint64(NewHash().FoldString(name))
		fp.foldObjs[i], fp.keyObjs[i] = nil, nil
		switch o := fp.objs[i].(type) {
		case StateFolder:
			fp.foldObjs[i] = o
		case StateKeyer:
			fp.keyObjs[i] = o
		}
	}
	for j := range s.procs {
		fp.procSalt[j] = uint64(NewHash().FoldInt(j))
	}
	plain := plainSeed
	for i := range names {
		comp, ok := fp.objCompCached(i)
		if !ok {
			fp.ok = false
			return
		}
		fp.objComp[i] = comp
		plain ^= mix64(comp)
	}
	for j := range s.procs {
		comp := s.fpProcCompCached(j)
		fp.procComp[j] = comp
		plain ^= mix64(comp)
	}
	fp.plain = plain
	if nPerm == 0 {
		return
	}
	c := s.canon
	for i := range names {
		po, ok := fp.objs[i].(PermStateFolder)
		if !ok {
			fp.canonOK = false
			return
		}
		fp.permObjs[i] = po
	}
	for k := 0; k < nPerm; k++ {
		for oi := range names {
			fp.canonObjSalt[k*fp.nObj+oi] = uint64(NewHash().FoldString(c.renamedNames[k][oi]))
		}
		for j := range s.procs {
			fp.canonProcSalt[k*fp.nProc+j] = uint64(NewHash().FoldInt(int(c.perms[k][j])))
		}
		h := canonSeed
		for oi := range names {
			comp := s.fpCanonObjCompCached(k, oi)
			fp.canonObj[k*fp.nObj+oi] = comp
			h ^= mix64(comp)
		}
		for i := range s.procs {
			comp := s.fpCanonProcCompCached(k, i)
			fp.canonProc[k*fp.nProc+i] = comp
			h ^= mix64(comp)
		}
		fp.canonHash[k] = h
	}
}

// fpClearDirty empties the dirty queues (marks included).
func (fp *fpState) fpClearDirty() {
	for _, i := range fp.dirtyO {
		fp.markO[i] = false
	}
	for _, j := range fp.dirtyP {
		fp.markP[j] = false
	}
	fp.dirtyO = fp.dirtyO[:0]
	fp.dirtyP = fp.dirtyP[:0]
}

// fpFlush recomputes the dirty components and patches the combined
// hashes — O(dirty · (1 + |G|)) instead of O(state).
func (s *System) fpFlush() {
	fp := &s.fp
	if len(fp.dirtyO) == 0 && len(fp.dirtyP) == 0 {
		return
	}
	for _, oi := range fp.dirtyO {
		// Objects cannot change type mid-run, so foldability established
		// at rebuild holds; the check guards hypothetical future objects.
		comp, ok := fp.objCompCached(oi)
		if !ok {
			fp.ok = false
			fp.fpClearDirty()
			return
		}
		if old := fp.objComp[oi]; old != comp {
			fp.plain ^= mix64(old) ^ mix64(comp)
			fp.objComp[oi] = comp
		}
		if fp.canonOK {
			for k := 0; k < fp.nPerm; k++ {
				c2 := s.fpCanonObjCompCached(k, oi)
				if old := fp.canonObj[k*fp.nObj+oi]; old != c2 {
					fp.canonHash[k] ^= mix64(old) ^ mix64(c2)
					fp.canonObj[k*fp.nObj+oi] = c2
				}
			}
		}
	}
	for _, j := range fp.dirtyP {
		comp := s.fpProcCompCached(j)
		if old := fp.procComp[j]; old != comp {
			fp.plain ^= mix64(old) ^ mix64(comp)
			fp.procComp[j] = comp
		}
		if fp.canonOK {
			for k := 0; k < fp.nPerm; k++ {
				c2 := s.fpCanonProcCompCached(k, j)
				if old := fp.canonProc[k*fp.nProc+j]; old != c2 {
					fp.canonHash[k] ^= mix64(old) ^ mix64(c2)
					fp.canonProc[k*fp.nProc+j] = c2
				}
			}
		}
	}
	fp.fpClearDirty()
}

// fpPlainScratch is the from-scratch reference for the plain keyspace,
// used by Config.VerifyFingerprints and the incremental-vs-recompute
// tests. It touches no cached state.
func (s *System) fpPlainScratch() (uint64, bool) {
	h := plainSeed
	for _, name := range s.sortedNames() {
		comp, ok := fpObjComp(name, s.objects[name])
		if !ok {
			return 0, false
		}
		h ^= mix64(comp)
	}
	for j, p := range s.procs {
		h ^= mix64(fpProcComp(j, p))
	}
	return h, true
}

// fpVerifyPlain cross-checks the incrementally maintained plain
// fingerprint against a from-scratch recompute, panicking on
// divergence — a missed dirty mark or a stale component is a soundness
// bug worth dying loudly for.
func (s *System) fpVerifyPlain() {
	want, ok := s.fpPlainScratch()
	if !ok || want != s.fp.plain {
		panic(fmt.Sprintf("sim: VerifyFingerprints: incremental plain fingerprint %#x != from-scratch %#x (ok=%v) at step %d",
			s.fp.plain, want, ok, s.steps))
	}
}

// fpVerifyCanon cross-checks every cached per-permutation hash against
// stateHashUnder, the from-scratch canonical reference.
func (s *System) fpVerifyCanon() {
	for k := 0; k < s.fp.nPerm; k++ {
		want, ok := s.stateHashUnder(k)
		if !ok || want != s.fp.canonHash[k] {
			panic(fmt.Sprintf("sim: VerifyFingerprints: incremental canonical fingerprint %#x != from-scratch %#x (ok=%v) under permutation %d at step %d",
				s.fp.canonHash[k], want, ok, k, s.steps))
		}
	}
}

// fpSnapshot appends the fingerprint cache to a machine snapshot. The
// cache is ensured first: the explore engines snapshot at frontier
// pushes that do not always read a hash (skip-checked shadow frames,
// the initial (0,0) snapshot), and restoring must land on a coherent
// cache. After this the dirty queues are empty, so the snapshot is
// exactly the vectors plus validity bits.
func (s *System) fpSnapshot(sn *Snap) {
	s.fpEnsure()
	fp := &s.fp
	sn.Bool(fp.ok)
	if !fp.ok {
		return
	}
	sn.Uint64(fp.plain)
	for _, c := range fp.objComp {
		sn.Uint64(c)
	}
	for _, c := range fp.procComp {
		sn.Uint64(c)
	}
	if fp.nPerm == 0 {
		return
	}
	sn.Bool(fp.canonOK)
	if !fp.canonOK {
		return
	}
	for _, c := range fp.canonHash {
		sn.Uint64(c)
	}
	for _, c := range fp.canonObj {
		sn.Uint64(c)
	}
	for _, c := range fp.canonProc {
		sn.Uint64(c)
	}
}

// fpRestore rewinds the fingerprint cache to a snapshot written by
// fpSnapshot. Canon vectors roll back too: the per-permutation hashes
// depend on the restored permHash and object states, so leaving them
// would silently corrupt every later canonical read on this branch.
// Pending dirty marks are discarded — they describe steps the restore
// just undid.
func (s *System) fpRestore(r *SnapReader) {
	fp := &s.fp
	if !fp.init {
		// Restore without a prior rebuild on this System cannot happen
		// (the snapshot being read ran fpSnapshot → fpEnsure), but the
		// vectors must exist before loading into them.
		s.fpRebuild()
	}
	fp.fpClearDirty()
	fp.ok = r.Bool()
	if !fp.ok {
		return
	}
	fp.plain = r.Uint64()
	for i := range fp.objComp {
		fp.objComp[i] = r.Uint64()
	}
	for j := range fp.procComp {
		fp.procComp[j] = r.Uint64()
	}
	if fp.nPerm == 0 {
		return
	}
	fp.canonOK = r.Bool()
	if !fp.canonOK {
		return
	}
	for k := range fp.canonHash {
		fp.canonHash[k] = r.Uint64()
	}
	for i := range fp.canonObj {
		fp.canonObj[i] = r.Uint64()
	}
	for i := range fp.canonProc {
		fp.canonProc[i] = r.Uint64()
	}
}
