package sim

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON trace interchange: runs can be archived and re-checked offline
// (see cmd/tracecheck). Values are rendered to strings on export — the
// linearizability checker compares results by their rendering, so the
// round trip is faithful for checking purposes.

// traceJSON is the serialized form of a Trace.
type traceJSON struct {
	Events []eventJSON `json:"events"`
	Spans  []spanJSON  `json:"spans"`
}

type eventJSON struct {
	Step   int      `json:"step"`
	Proc   int      `json:"proc"`
	Object string   `json:"object"`
	Op     string   `json:"op"`
	Args   []string `json:"args,omitempty"`
	Result string   `json:"result,omitempty"`
}

type spanJSON struct {
	Proc   int      `json:"proc"`
	Object string   `json:"object"`
	Kind   string   `json:"kind"`
	Args   []string `json:"args,omitempty"`
	Result string   `json:"result,omitempty"`
	Start  int      `json:"start"`
	End    int      `json:"end"`
}

func renderValues(vs []Value) []string {
	if len(vs) == 0 {
		return nil
	}
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = fmt.Sprint(v)
	}
	return out
}

func parseValues(ss []string) []Value {
	if len(ss) == 0 {
		return nil
	}
	out := make([]Value, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

// WriteJSON serializes the trace.
func (t *Trace) WriteJSON(w io.Writer) error {
	out := traceJSON{
		Events: make([]eventJSON, len(t.Events)),
		Spans:  make([]spanJSON, len(t.Spans)),
	}
	for i, ev := range t.Events {
		out.Events[i] = eventJSON{
			Step: ev.Step, Proc: int(ev.Proc), Object: ev.Object, Op: string(ev.Op),
			Args: renderValues(ev.Args), Result: fmt.Sprint(ev.Result),
		}
	}
	for i, sp := range t.Spans {
		out.Spans[i] = spanJSON{
			Proc: int(sp.Proc), Object: sp.Object, Kind: string(sp.Kind),
			Args: renderValues(sp.Args), Result: fmt.Sprint(sp.Result),
			Start: sp.Start, End: sp.End,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadTraceJSON deserializes a trace written by WriteJSON. Values come
// back as their string renderings.
func ReadTraceJSON(r io.Reader) (*Trace, error) {
	var in traceJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("sim: decoding trace: %w", err)
	}
	t := &Trace{
		Events: make([]Event, len(in.Events)),
		Spans:  make([]*Span, len(in.Spans)),
	}
	for i, ev := range in.Events {
		t.Events[i] = Event{
			Step: ev.Step, Proc: ProcID(ev.Proc), Object: ev.Object, Op: OpKind(ev.Op),
			Args: parseValues(ev.Args), Result: ev.Result,
		}
	}
	for i, sp := range in.Spans {
		t.Spans[i] = &Span{
			Proc: ProcID(sp.Proc), Object: sp.Object, Kind: OpKind(sp.Kind),
			Args: parseValues(sp.Args), Result: sp.Result,
			Start: sp.Start, End: sp.End,
		}
	}
	return t, nil
}
