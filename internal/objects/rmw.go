package objects

import (
	"fmt"

	"repro/internal/sim"
)

// RMWFunc is the transition function of a generic read-modify-write
// register: given the current value and the operation argument it
// returns the new value. The operation returns the previous value.
type RMWFunc func(current Symbol, arg sim.Value) Symbol

// RMW is an arbitrary read-modify-write register over a bounded
// alphabet of k symbols. The paper conjectures its results extend from
// compare&swap-(k) to arbitrary size-k read-modify-write registers;
// this type lets experiments probe that generalization.
type RMW struct {
	name    string
	k       int
	value   Symbol
	f       RMWFunc
	history []Symbol
}

var _ sim.Object = (*RMW)(nil)

// NewRMW returns a k-valued read-modify-write register initialized to ⊥
// whose transition function is f.
func NewRMW(name string, k int, f RMWFunc) *RMW {
	if k < 2 {
		panic(fmt.Sprintf("objects: rmw-(%d): k must be >= 2", k))
	}
	return &RMW{name: name, k: k, value: Bottom, f: f, history: []Symbol{Bottom}}
}

// Name implements sim.Object.
func (r *RMW) Name() string { return r.name }

// K returns the alphabet size.
func (r *RMW) K() int { return r.k }

// Apply implements sim.Object.
func (r *RMW) Apply(_ sim.ProcID, op sim.OpKind, args []sim.Value) (sim.Value, error) {
	switch op {
	case OpRMW:
		prev := r.value
		next := r.f(prev, args[0])
		if next < 0 || int(next) >= r.k {
			return nil, fmt.Errorf("%w: transition to symbol %d, alphabet size %d", ErrAlphabet, int(next), r.k)
		}
		if next != prev {
			r.history = append(r.history, next)
		}
		r.value = next
		return prev, nil
	case sim.OpRead:
		return r.value, nil
	default:
		return nil, fmt.Errorf("objects: rmw: unsupported op %q", op)
	}
}

// RMW atomically applies the transition function with arg and returns
// the previous value.
func (r *RMW) RMW(e *sim.Env, arg sim.Value) Symbol {
	return e.Apply1(r, OpRMW, arg).(Symbol)
}

// History returns the sequence of values the register has held
// (inspection only, not a shared step).
func (r *RMW) History() []Symbol {
	out := make([]Symbol, len(r.history))
	copy(out, r.history)
	return out
}

// LLSC is a load-link/store-conditional register over a bounded
// alphabet of k symbols — the other top-of-hierarchy machine primitive
// the paper's introduction names next to compare&swap. LoadLink reads
// the value and links the caller; StoreConditional succeeds only if no
// successful store happened since the caller's last link. Like
// compare&swap-(k), its power is value-bounded: a store outside the
// alphabet is an error.
type LLSC struct {
	name    string
	k       int
	value   Symbol
	version int
	links   map[sim.ProcID]int
	history []Symbol
}

var _ sim.Object = (*LLSC)(nil)

// Operation kinds of LLSC.
const (
	// OpLL loads the value and links the caller.
	OpLL sim.OpKind = "ll"
	// OpSC conditionally stores args[0]; returns true on success.
	OpSC sim.OpKind = "sc"
)

// NewLLSC returns a k-valued load-link/store-conditional register at ⊥.
func NewLLSC(name string, k int) *LLSC {
	if k < 2 {
		panic(fmt.Sprintf("objects: ll/sc-(%d): k must be >= 2", k))
	}
	return &LLSC{
		name: name, k: k, value: Bottom,
		links:   make(map[sim.ProcID]int),
		history: []Symbol{Bottom},
	}
}

// Name implements sim.Object.
func (l *LLSC) Name() string { return l.name }

// K returns the alphabet size.
func (l *LLSC) K() int { return l.k }

// Apply implements sim.Object.
func (l *LLSC) Apply(caller sim.ProcID, op sim.OpKind, args []sim.Value) (sim.Value, error) {
	switch op {
	case OpLL:
		l.links[caller] = l.version
		return l.value, nil
	case OpSC:
		to := args[0].(Symbol)
		if to < 0 || int(to) >= l.k {
			return nil, fmt.Errorf("%w: symbol %d, alphabet size %d", ErrAlphabet, int(to), l.k)
		}
		linked, ok := l.links[caller]
		if !ok || linked != l.version {
			return false, nil
		}
		l.version++
		if to != l.value {
			l.history = append(l.history, to)
		}
		l.value = to
		delete(l.links, caller)
		return true, nil
	case sim.OpRead:
		return l.value, nil
	default:
		return nil, fmt.Errorf("objects: ll/sc: unsupported op %q", op)
	}
}

// LoadLink performs LL as one atomic step.
func (l *LLSC) LoadLink(e *sim.Env) Symbol {
	return e.Apply0(l, OpLL).(Symbol)
}

// StoreConditional performs SC as one atomic step; true iff it took.
func (l *LLSC) StoreConditional(e *sim.Env, to Symbol) bool {
	return e.Apply1(l, OpSC, to).(bool)
}

// History returns the value sequence (inspection only).
func (l *LLSC) History() []Symbol {
	out := make([]Symbol, len(l.history))
	copy(out, l.history)
	return out
}

// Consensus is a one-shot consensus object: the first proposal wins and
// every propose returns it. It is the abstract building block of
// Herlihy's universal construction; the universal package realizes it
// from compare&swap-(k) registers and shows where the bounded alphabet
// breaks.
type Consensus struct {
	name    string
	decided bool
	value   sim.Value
}

var _ sim.Object = (*Consensus)(nil)

// NewConsensus returns an undecided consensus object.
func NewConsensus(name string) *Consensus { return &Consensus{name: name} }

// Name implements sim.Object.
func (c *Consensus) Name() string { return c.name }

// Apply implements sim.Object.
func (c *Consensus) Apply(_ sim.ProcID, op sim.OpKind, args []sim.Value) (sim.Value, error) {
	switch op {
	case OpPropose:
		if !c.decided {
			c.decided = true
			c.value = args[0]
		}
		return c.value, nil
	case sim.OpRead:
		if !c.decided {
			return nil, nil
		}
		return c.value, nil
	default:
		return nil, fmt.Errorf("objects: consensus: unsupported op %q", op)
	}
}

// Propose submits v and returns the decided value.
func (c *Consensus) Propose(e *sim.Env, v sim.Value) sim.Value {
	return e.Apply1(c, OpPropose, v)
}
