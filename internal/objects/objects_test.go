package objects_test

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/objects"
	"repro/internal/sim"
)

// solo runs a single program in a fresh system and returns its result.
func solo(t *testing.T, setup func(sys *sim.System) sim.Program) *sim.Result {
	t.Helper()
	sys := sim.NewSystem()
	sys.Spawn(setup(sys))
	res, err := sys.Run(sim.Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestSymbolString(t *testing.T) {
	tests := []struct {
		s    objects.Symbol
		want string
	}{
		{objects.Bottom, "⊥"},
		{1, "0"},
		{3, "2"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("Symbol(%d).String() = %q, want %q", tt.s, got, tt.want)
		}
	}
}

func TestCASSemantics(t *testing.T) {
	c := objects.NewCAS("c", 4)
	res := solo(t, func(sys *sim.System) sim.Program {
		sys.Add(c)
		return func(e *sim.Env) (sim.Value, error) {
			var out []objects.Symbol
			out = append(out, c.CompareAndSwap(e, objects.Bottom, 1)) // succeeds: ⊥
			out = append(out, c.CompareAndSwap(e, objects.Bottom, 2)) // fails: 1
			out = append(out, c.CompareAndSwap(e, 1, 2))              // succeeds: 1
			out = append(out, c.Read(e))                              // 2
			out = append(out, c.CompareAndSwap(e, 2, 2))              // no-op success: 2
			return out, nil
		}
	})
	want := []objects.Symbol{objects.Bottom, 1, 1, 2, 2}
	if !reflect.DeepEqual(res.Values[0], want) {
		t.Errorf("cas sequence = %v, want %v", res.Values[0], want)
	}
	if got := c.History(); !reflect.DeepEqual(got, []objects.Symbol{0, 1, 2}) {
		t.Errorf("History = %v, want [⊥ 1 2]", got)
	}
}

func TestCASAlphabetEnforced(t *testing.T) {
	c := objects.NewCAS("c", 3) // symbols 0..2 only
	res := solo(t, func(sys *sim.System) sim.Program {
		sys.Add(c)
		return func(e *sim.Env) (sim.Value, error) {
			c.CompareAndSwap(e, objects.Bottom, 3) // out of alphabet
			return nil, nil
		}
	})
	if !errors.Is(res.Errors[0], objects.ErrAlphabet) {
		t.Errorf("error = %v, want ErrAlphabet", res.Errors[0])
	}
}

func TestCASRejectsNegativeSymbol(t *testing.T) {
	c := objects.NewCAS("c", 3)
	res := solo(t, func(sys *sim.System) sim.Program {
		sys.Add(c)
		return func(e *sim.Env) (sim.Value, error) {
			c.CompareAndSwap(e, -1, 1)
			return nil, nil
		}
	})
	if !errors.Is(res.Errors[0], objects.ErrAlphabet) {
		t.Errorf("error = %v, want ErrAlphabet", res.Errors[0])
	}
}

func TestCASTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCAS(1) did not panic")
		}
	}()
	objects.NewCAS("c", 1)
}

func TestCASFirstUses(t *testing.T) {
	c := objects.NewCAS("c", 4)
	solo(t, func(sys *sim.System) sim.Program {
		sys.Add(c)
		return func(e *sim.Env) (sim.Value, error) {
			c.CompareAndSwap(e, 0, 2)
			c.CompareAndSwap(e, 2, 0)
			c.CompareAndSwap(e, 0, 2) // 2 again: not a first use
			c.CompareAndSwap(e, 2, 3)
			return nil, nil
		}
	})
	want := []objects.Symbol{0, 2, 3}
	if got := c.FirstUses(); !reflect.DeepEqual(got, want) {
		t.Errorf("FirstUses = %v, want %v", got, want)
	}
}

func TestCASHistoryIsolation(t *testing.T) {
	c := objects.NewCAS("c", 3)
	solo(t, func(sys *sim.System) sim.Program {
		sys.Add(c)
		return func(e *sim.Env) (sim.Value, error) {
			c.CompareAndSwap(e, 0, 1)
			return nil, nil
		}
	})
	h := c.History()
	h[0] = 99
	if c.History()[0] == 99 {
		t.Error("History() aliases internal state")
	}
}

func TestCASValueEqualsLastHistoryEntry(t *testing.T) {
	// Property: after any sequence of cas operations, the register value
	// equals the last history entry.
	f := func(ops []uint8) bool {
		c := objects.NewCAS("c", 4)
		sys := sim.NewSystem()
		sys.Add(c)
		var final objects.Symbol
		sys.Spawn(func(e *sim.Env) (sim.Value, error) {
			for _, op := range ops {
				c.CompareAndSwap(e, objects.Symbol(op%4), objects.Symbol((op/4)%4))
			}
			final = c.Read(e)
			return nil, nil
		})
		if _, err := sys.Run(sim.Config{}); err != nil {
			return false
		}
		h := c.History()
		return h[len(h)-1] == final
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTestAndSet(t *testing.T) {
	ts := objects.NewTestAndSet("t")
	res := solo(t, func(sys *sim.System) sim.Program {
		sys.Add(ts)
		return func(e *sim.Env) (sim.Value, error) {
			first := ts.TestAndSet(e)
			second := ts.TestAndSet(e)
			readable := ts.Read(e)
			return []bool{first, second, readable}, nil
		}
	})
	want := []bool{true, false, true}
	if !reflect.DeepEqual(res.Values[0], want) {
		t.Errorf("t&s sequence = %v, want %v", res.Values[0], want)
	}
}

func TestTestAndSetOnlyOneWinner(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		sys := sim.NewSystem()
		ts := objects.NewTestAndSet("t")
		sys.Add(ts)
		sys.SpawnN(4, func(sim.ProcID) sim.Program {
			return func(e *sim.Env) (sim.Value, error) {
				return ts.TestAndSet(e), nil
			}
		})
		res, err := sys.Run(sim.Config{Scheduler: sim.Random(seed)})
		if err != nil {
			t.Fatal(err)
		}
		winners := 0
		for _, v := range res.Values {
			if v.(bool) {
				winners++
			}
		}
		if winners != 1 {
			t.Errorf("seed %d: %d winners, want exactly 1", seed, winners)
		}
	}
}

func TestFetchAdd(t *testing.T) {
	f := objects.NewFetchAdd("f", 10)
	res := solo(t, func(sys *sim.System) sim.Program {
		sys.Add(f)
		return func(e *sim.Env) (sim.Value, error) {
			a := f.FetchAdd(e, 5)
			b := f.FetchAdd(e, -2)
			c := e.Apply(f, sim.OpRead)
			return []int{a, b, c.(int)}, nil
		}
	})
	want := []int{10, 15, 13}
	if !reflect.DeepEqual(res.Values[0], want) {
		t.Errorf("fetch&add sequence = %v, want %v", res.Values[0], want)
	}
}

func TestFetchAddDistinctTickets(t *testing.T) {
	// Concurrent fetch&add(1) hands out distinct tickets — the classic
	// use that gives it consensus number 2.
	sys := sim.NewSystem()
	f := objects.NewFetchAdd("f", 0)
	sys.Add(f)
	sys.SpawnN(5, func(sim.ProcID) sim.Program {
		return func(e *sim.Env) (sim.Value, error) { return f.FetchAdd(e, 1), nil }
	})
	res, err := sys.Run(sim.Config{Scheduler: sim.Random(3)})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, v := range res.Values {
		if seen[v.(int)] {
			t.Errorf("duplicate ticket %d", v)
		}
		seen[v.(int)] = true
	}
}

func TestSwap(t *testing.T) {
	s := objects.NewSwap("s", "a")
	res := solo(t, func(sys *sim.System) sim.Program {
		sys.Add(s)
		return func(e *sim.Env) (sim.Value, error) {
			x := s.Swap(e, "b")
			y := s.Swap(e, "c")
			return []sim.Value{x, y}, nil
		}
	})
	if !reflect.DeepEqual(res.Values[0], []sim.Value{"a", "b"}) {
		t.Errorf("swap sequence = %v, want [a b]", res.Values[0])
	}
}

func TestStickyBitSticks(t *testing.T) {
	s := objects.NewStickyBit("s")
	res := solo(t, func(sys *sim.System) sim.Program {
		sys.Add(s)
		return func(e *sim.Env) (sim.Value, error) {
			a := s.WriteSticky(e, 7)
			b := s.WriteSticky(e, 8) // must not overwrite
			return []sim.Value{a, b}, nil
		}
	})
	if !reflect.DeepEqual(res.Values[0], []sim.Value{7, 7}) {
		t.Errorf("sticky sequence = %v, want [7 7]", res.Values[0])
	}
}

func TestQueueFIFO(t *testing.T) {
	q := objects.NewQueue("q", "x")
	res := solo(t, func(sys *sim.System) sim.Program {
		sys.Add(q)
		return func(e *sim.Env) (sim.Value, error) {
			q.Enq(e, "y")
			a := q.Deq(e)
			b := q.Deq(e)
			c := q.Deq(e) // empty
			return []sim.Value{a, b, c}, nil
		}
	})
	if !reflect.DeepEqual(res.Values[0], []sim.Value{"x", "y", nil}) {
		t.Errorf("queue sequence = %v, want [x y <nil>]", res.Values[0])
	}
}

func TestRMWAsCompareAndSwap(t *testing.T) {
	// A compare&swap expressed as a generic RMW transition function.
	type casArg struct{ from, to objects.Symbol }
	r := objects.NewRMW("r", 3, func(cur objects.Symbol, arg sim.Value) objects.Symbol {
		a := arg.(casArg)
		if cur == a.from {
			return a.to
		}
		return cur
	})
	res := solo(t, func(sys *sim.System) sim.Program {
		sys.Add(r)
		return func(e *sim.Env) (sim.Value, error) {
			a := r.RMW(e, casArg{objects.Bottom, 2})
			b := r.RMW(e, casArg{objects.Bottom, 1}) // fails, returns 2
			return []objects.Symbol{a, b}, nil
		}
	})
	if !reflect.DeepEqual(res.Values[0], []objects.Symbol{0, 2}) {
		t.Errorf("rmw sequence = %v, want [⊥ 2]", res.Values[0])
	}
	if !reflect.DeepEqual(r.History(), []objects.Symbol{0, 2}) {
		t.Errorf("rmw history = %v, want [⊥ 2]", r.History())
	}
}

func TestRMWAlphabetEnforced(t *testing.T) {
	r := objects.NewRMW("r", 2, func(objects.Symbol, sim.Value) objects.Symbol {
		return 5 // transition out of the alphabet
	})
	res := solo(t, func(sys *sim.System) sim.Program {
		sys.Add(r)
		return func(e *sim.Env) (sim.Value, error) {
			r.RMW(e, nil)
			return nil, nil
		}
	})
	if !errors.Is(res.Errors[0], objects.ErrAlphabet) {
		t.Errorf("error = %v, want ErrAlphabet", res.Errors[0])
	}
}

func TestConsensusFirstProposalWins(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		sys := sim.NewSystem()
		c := objects.NewConsensus("c")
		sys.Add(c)
		sys.SpawnN(3, func(id sim.ProcID) sim.Program {
			return func(e *sim.Env) (sim.Value, error) {
				return c.Propose(e, int(id)), nil
			}
		})
		res, err := sys.Run(sim.Config{Scheduler: sim.Random(seed)})
		if err != nil {
			t.Fatal(err)
		}
		if d := res.DistinctDecisions(); len(d) != 1 {
			t.Errorf("seed %d: decisions %v, want agreement", seed, d)
		}
	}
}

func TestLLSCSemantics(t *testing.T) {
	l := objects.NewLLSC("l", 4)
	res := solo(t, func(sys *sim.System) sim.Program {
		sys.Add(l)
		return func(e *sim.Env) (sim.Value, error) {
			var out []sim.Value
			out = append(out, l.LoadLink(e))            // ⊥
			out = append(out, l.StoreConditional(e, 2)) // true
			out = append(out, l.StoreConditional(e, 1)) // false: link consumed
			out = append(out, l.LoadLink(e))            // 2
			out = append(out, l.StoreConditional(e, 3)) // true
			return out, nil
		}
	})
	want := []sim.Value{objects.Bottom, true, false, objects.Symbol(2), true}
	if !reflect.DeepEqual(res.Values[0], want) {
		t.Errorf("ll/sc sequence = %v, want %v", res.Values[0], want)
	}
	if h := l.History(); !reflect.DeepEqual(h, []objects.Symbol{0, 2, 3}) {
		t.Errorf("history = %v", h)
	}
}

func TestLLSCInterferenceBreaksLink(t *testing.T) {
	// p0 links, p1 links+stores, p0's store must fail.
	sys := sim.NewSystem()
	l := objects.NewLLSC("l", 3)
	sys.Add(l)
	sys.Spawn(func(e *sim.Env) (sim.Value, error) {
		l.LoadLink(e)
		return l.StoreConditional(e, 1), nil
	})
	sys.Spawn(func(e *sim.Env) (sim.Value, error) {
		l.LoadLink(e)
		return l.StoreConditional(e, 2), nil
	})
	// Schedule: p0 LL, p1 LL, p1 SC (wins), p0 SC (fails).
	res, err := sys.Run(sim.Config{Scheduler: sim.Replay([]sim.ProcID{0, 1, 1, 0})})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[1] != true {
		t.Error("p1's store failed")
	}
	if res.Values[0] != false {
		t.Error("p0's store succeeded despite interference")
	}
}

func TestLLSCAlphabetEnforced(t *testing.T) {
	l := objects.NewLLSC("l", 3)
	res := solo(t, func(sys *sim.System) sim.Program {
		sys.Add(l)
		return func(e *sim.Env) (sim.Value, error) {
			l.LoadLink(e)
			l.StoreConditional(e, 7)
			return nil, nil
		}
	})
	if !errors.Is(res.Errors[0], objects.ErrAlphabet) {
		t.Errorf("error = %v, want ErrAlphabet", res.Errors[0])
	}
}

func TestLLSCOneWinnerWhenLinksPrecedeStores(t *testing.T) {
	// All four processes load-link before any store-conditional: exactly
	// one store succeeds, whatever the store order.
	for _, order := range [][]sim.ProcID{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}} {
		sys := sim.NewSystem()
		l := objects.NewLLSC("l", 5)
		sys.Add(l)
		sys.SpawnN(4, func(id sim.ProcID) sim.Program {
			return func(e *sim.Env) (sim.Value, error) {
				l.LoadLink(e)
				return l.StoreConditional(e, objects.Symbol(int(id)+1)), nil
			}
		})
		schedule := append([]sim.ProcID{0, 1, 2, 3}, order...)
		res, err := sys.Run(sim.Config{Scheduler: sim.Replay(schedule)})
		if err != nil {
			t.Fatal(err)
		}
		winners := 0
		for _, v := range res.Values {
			if v.(bool) {
				winners++
			}
		}
		if winners != 1 {
			t.Errorf("order %v: %d successful stores, want 1", order, winners)
		}
	}
}

func TestLLSCWinnersMatchHistory(t *testing.T) {
	// Under arbitrary schedules, a store succeeds iff nobody stored
	// since its link — so successful stores and value changes line up
	// with the register's recorded history.
	for seed := int64(0); seed < 25; seed++ {
		sys := sim.NewSystem()
		l := objects.NewLLSC("l", 5)
		sys.Add(l)
		sys.SpawnN(4, func(id sim.ProcID) sim.Program {
			return func(e *sim.Env) (sim.Value, error) {
				l.LoadLink(e)
				return l.StoreConditional(e, objects.Symbol(int(id)+1)), nil
			}
		})
		res, err := sys.Run(sim.Config{Scheduler: sim.Random(seed)})
		if err != nil {
			t.Fatal(err)
		}
		winners := 0
		for _, v := range res.Values {
			if v.(bool) {
				winners++
			}
		}
		if winners < 1 {
			t.Errorf("seed %d: no store succeeded", seed)
		}
		// Each winner stored a distinct symbol (distinct ids), so the
		// history grew by exactly the number of winners.
		if h := l.History(); len(h)-1 != winners {
			t.Errorf("seed %d: %d winners but history %v", seed, winners, h)
		}
	}
}
