// Package objects provides the strong shared synchronization objects of
// Herlihy's hierarchy, with explicitly bounded value alphabets where
// the paper requires it. The central type is CAS, the
// compare&swap-(k) register of Afek & Stupp: a compare&swap register
// that can hold only k distinct values, Σ = {⊥, 0, 1, …, k−2}.
package objects

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Symbol is a value of a bounded object's alphabet Σ = {⊥, 0, …, k−2}.
// Bottom (⊥) is Symbol 0; the paper's value v ∈ {0..k−2} is Symbol v+1.
type Symbol int

// Bottom is ⊥, the initial value of every compare&swap-(k) register.
const Bottom Symbol = 0

// String renders ⊥ for Bottom and the paper's value otherwise.
func (s Symbol) String() string {
	if s == Bottom {
		return "⊥"
	}
	return fmt.Sprint(int(s) - 1)
}

// Operation kinds accepted by the objects in this package.
const (
	// OpCAS is compare&swap: args = [old, new Symbol]; returns the
	// previous value (the operation succeeded iff it returned old).
	OpCAS sim.OpKind = "cas"
	// OpTAS is test&set: no args; returns true iff the caller set the bit.
	OpTAS sim.OpKind = "tas"
	// OpFetchAdd is fetch&add: args = [delta int]; returns the previous value.
	OpFetchAdd sim.OpKind = "fetchadd"
	// OpSwap is swap: args = [new]; returns the previous value.
	OpSwap sim.OpKind = "swap"
	// OpEnq and OpDeq are FIFO queue operations. OpDeq returns nil on empty.
	OpEnq sim.OpKind = "enq"
	OpDeq sim.OpKind = "deq"
	// OpRMW is a generic read-modify-write: args = [arg]; returns the
	// previous value after applying the object's transition function.
	OpRMW sim.OpKind = "rmw"
	// OpPropose is the operation of a consensus object: args = [v];
	// returns the decided value (the first proposal).
	OpPropose sim.OpKind = "propose"
)

// ErrAlphabet is returned when an operation would take a bounded object
// outside its k-value alphabet. This is the hard size limit the paper
// studies: it is an error, never silently widened.
var ErrAlphabet = errors.New("objects: value outside bounded alphabet")

// CAS is a compare&swap-(k) register: it holds one of k symbols from
// Σ = {⊥, 0, …, k−2} and supports the operation
//
//	c&s(a→b)(r): prev := r; if prev = a then r := b; return prev
//
// exactly as defined in the paper's introduction. The register also
// supports an atomic read (c&s(x→x) for the current x is equivalent;
// a direct read is provided for convenience and is standard on
// commercial compare&swap words).
//
// The register records the sequence of values it has held — its
// history, the "backbone of the constructed run" in the paper's
// emulation — for test and experiment inspection; the history is not
// part of the shared interface.
type CAS struct {
	name    string
	k       int
	value   Symbol
	history []Symbol
}

var _ sim.Object = (*CAS)(nil)

// NewCAS returns a compare&swap-(k) register initialized to ⊥.
// k must be at least 2 (⊥ plus one value).
func NewCAS(name string, k int) *CAS {
	if k < 2 {
		panic(fmt.Sprintf("objects: compare&swap-(%d): k must be >= 2", k))
	}
	return &CAS{name: name, k: k, value: Bottom, history: []Symbol{Bottom}}
}

// Name implements sim.Object.
func (c *CAS) Name() string { return c.name }

// K returns the alphabet size (number of distinct holdable values).
func (c *CAS) K() int { return c.k }

// Apply implements sim.Object.
func (c *CAS) Apply(_ sim.ProcID, op sim.OpKind, args []sim.Value) (sim.Value, error) {
	switch op {
	case sim.OpRead:
		return c.value, nil
	case OpCAS:
		from, to := args[0].(Symbol), args[1].(Symbol)
		if err := c.check(from); err != nil {
			return nil, err
		}
		if err := c.check(to); err != nil {
			return nil, err
		}
		prev := c.value
		if prev == from {
			c.value = to
			if to != prev {
				c.history = append(c.history, to)
			}
		}
		return prev, nil
	default:
		return nil, fmt.Errorf("objects: cas register: unsupported op %q", op)
	}
}

func (c *CAS) check(s Symbol) error {
	if s < 0 || int(s) >= c.k {
		return fmt.Errorf("%w: symbol %d, alphabet size %d", ErrAlphabet, int(s), c.k)
	}
	return nil
}

// CompareAndSwap performs c&s(from→to) as one atomic step and returns
// the previous value. The operation succeeded iff prev == from.
func (c *CAS) CompareAndSwap(e *sim.Env, from, to Symbol) Symbol {
	return e.Apply2(c, OpCAS, from, to).(Symbol)
}

// Read returns the register's current value as one atomic step.
func (c *CAS) Read(e *sim.Env) Symbol {
	return e.Apply0(c, sim.OpRead).(Symbol)
}

// ResetObject implements sim.Resettable: the register reverts to ⊥ and
// its history restarts, as if freshly constructed — the semantics of an
// injected reset fault (internal/faults).
func (c *CAS) ResetObject() {
	c.value = Bottom
	c.history = append(c.history[:0], Bottom)
}

// History returns the sequence of values the register has held,
// starting with ⊥. It is inspection-only: protocol code must not call
// it (it is not a shared-memory step).
func (c *CAS) History() []Symbol {
	out := make([]Symbol, len(c.history))
	copy(out, c.history)
	return out
}

// FirstUses returns the order in which distinct values first appeared
// in the register's history — the "label" of the realized run in the
// paper's emulation terminology.
func (c *CAS) FirstUses() []Symbol {
	seen := make(map[Symbol]bool, c.k)
	var out []Symbol
	for _, s := range c.history {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
