package objects

import "repro/internal/sim"

// Restorable (snapshot/restore) support for every object type, enabling
// the explore package's in-place backtracking DFS on machine-backed
// systems. The contract (sim.Restorable) is observational equivalence:
// RestoreState must leave the object exactly as it was when SaveState
// ran. Restores always rewind to an ancestor state along the current
// exploration path, and every implementation reuses slice/map capacity,
// so steady-state backtracking allocates nothing.

var (
	_ sim.Restorable = (*CAS)(nil)
	_ sim.Restorable = (*TestAndSet)(nil)
	_ sim.Restorable = (*FetchAdd)(nil)
	_ sim.Restorable = (*Swap)(nil)
	_ sim.Restorable = (*StickyBit)(nil)
	_ sim.Restorable = (*Queue)(nil)
	_ sim.Restorable = (*RMW)(nil)
	_ sim.Restorable = (*LLSC)(nil)
	_ sim.Restorable = (*Consensus)(nil)
)

// saveHistory / restoreHistory handle the value-history slices kept by
// CAS and RMW. The history only ever grows, but restore does not assume
// that: it rebuilds the recorded sequence, reusing capacity.
func saveHistory(s *sim.Snap, h []Symbol) {
	s.Int(len(h))
	for _, v := range h {
		s.Int(int(v))
	}
}

func restoreHistory(r *sim.SnapReader, h []Symbol) []Symbol {
	n := r.Int()
	h = h[:0]
	for i := 0; i < n; i++ {
		h = append(h, Symbol(r.Int()))
	}
	return h
}

// SaveState implements sim.Restorable.
func (c *CAS) SaveState(s *sim.Snap) {
	s.Int(int(c.value))
	saveHistory(s, c.history)
}

// RestoreState implements sim.Restorable.
func (c *CAS) RestoreState(r *sim.SnapReader) {
	c.value = Symbol(r.Int())
	c.history = restoreHistory(r, c.history)
}

// SaveState implements sim.Restorable.
func (t *TestAndSet) SaveState(s *sim.Snap) { s.Bool(t.set) }

// RestoreState implements sim.Restorable.
func (t *TestAndSet) RestoreState(r *sim.SnapReader) { t.set = r.Bool() }

// SaveState implements sim.Restorable.
func (f *FetchAdd) SaveState(s *sim.Snap) { s.Int(f.value) }

// RestoreState implements sim.Restorable.
func (f *FetchAdd) RestoreState(r *sim.SnapReader) { f.value = r.Int() }

// SaveState implements sim.Restorable.
func (s *Swap) SaveState(sn *sim.Snap) { sn.Value(s.value) }

// RestoreState implements sim.Restorable.
func (s *Swap) RestoreState(r *sim.SnapReader) { s.value = r.Value() }

// SaveState implements sim.Restorable.
func (b *StickyBit) SaveState(s *sim.Snap) { s.Value(b.value) }

// RestoreState implements sim.Restorable.
func (b *StickyBit) RestoreState(r *sim.SnapReader) { b.value = r.Value() }

// SaveState implements sim.Restorable.
func (q *Queue) SaveState(s *sim.Snap) {
	s.Int(len(q.items))
	for _, v := range q.items {
		s.Value(v)
	}
}

// RestoreState implements sim.Restorable. Deq advances the items slice
// (items = items[1:]), so restore rebuilds into a fresh prefix of the
// same backing array only when capacity allows; a shrunken-capacity
// slice is regrown once and then reused.
func (q *Queue) RestoreState(r *sim.SnapReader) {
	n := r.Int()
	if cap(q.items) < n {
		q.items = make([]sim.Value, 0, n)
	}
	q.items = q.items[:0]
	for i := 0; i < n; i++ {
		q.items = append(q.items, r.Value())
	}
}

// SaveState implements sim.Restorable.
func (m *RMW) SaveState(s *sim.Snap) {
	s.Int(int(m.value))
	saveHistory(s, m.history)
}

// RestoreState implements sim.Restorable.
func (m *RMW) RestoreState(r *sim.SnapReader) {
	m.value = Symbol(r.Int())
	m.history = restoreHistory(r, m.history)
}

// SaveState implements sim.Restorable.
func (l *LLSC) SaveState(s *sim.Snap) {
	s.Int(int(l.value))
	s.Int(l.version)
	saveHistory(s, l.history)
	s.Int(len(l.links))
	// Iterate links deterministically by probing process IDs in order;
	// link maps are tiny (≤ NumProcs) and sparse.
	saved := 0
	for id := sim.ProcID(0); saved < len(l.links); id++ {
		if v, ok := l.links[id]; ok {
			s.Int(int(id))
			s.Int(v)
			saved++
		}
	}
}

// RestoreState implements sim.Restorable.
func (l *LLSC) RestoreState(r *sim.SnapReader) {
	l.value = Symbol(r.Int())
	l.version = r.Int()
	l.history = restoreHistory(r, l.history)
	n := r.Int()
	for id := range l.links {
		delete(l.links, id)
	}
	for i := 0; i < n; i++ {
		id := sim.ProcID(r.Int())
		l.links[id] = r.Int()
	}
}

// SaveState implements sim.Restorable.
func (c *Consensus) SaveState(s *sim.Snap) {
	s.Bool(c.decided)
	s.Value(c.value)
}

// RestoreState implements sim.Restorable.
func (c *Consensus) RestoreState(r *sim.SnapReader) {
	c.decided = r.Bool()
	c.value = r.Value()
}
