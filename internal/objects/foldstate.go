package objects

import (
	"sort"

	"repro/internal/sim"
)

// This file gives every object in the package an allocation-free state
// fold (sim.StateFolder), used by System.StateHash on the exploration
// hot path in place of the string StateKeys (which remain for
// diagnostics and humans). The same canonicality contract applies as
// in statekey.go: equal folds ⇒ observationally equivalent objects,
// inspection-only histories included.

var (
	_ sim.StateFolder = (*TestAndSet)(nil)
	_ sim.StateFolder = (*FetchAdd)(nil)
	_ sim.StateFolder = (*Swap)(nil)
	_ sim.StateFolder = (*StickyBit)(nil)
	_ sim.StateFolder = (*Queue)(nil)
	_ sim.StateFolder = (*CAS)(nil)
	_ sim.StateFolder = (*RMW)(nil)
	_ sim.StateFolder = (*LLSC)(nil)
	_ sim.StateFolder = (*Consensus)(nil)
	_ sim.ValueFolder = Symbol(0)
)

// FoldValue implements sim.ValueFolder: a Symbol folds as its alphabet
// index, so fingerprinted runs never render "⊥" per step.
func (s Symbol) FoldValue(h sim.Hash) sim.Hash { return h.FoldInt(int(s)) }

// foldSymbols folds a symbol sequence, length-prefixed.
func foldSymbols(h sim.Hash, ss []Symbol) sim.Hash {
	h = h.FoldInt(len(ss))
	for _, s := range ss {
		h = h.FoldInt(int(s))
	}
	return h
}

// FoldState implements sim.StateFolder.
func (t *TestAndSet) FoldState(h sim.Hash) sim.Hash { return h.FoldBool(t.set) }

// FoldState implements sim.StateFolder.
func (f *FetchAdd) FoldState(h sim.Hash) sim.Hash { return h.FoldInt(f.value) }

// FoldState implements sim.StateFolder.
func (s *Swap) FoldState(h sim.Hash) sim.Hash { return h.FoldValue(s.value) }

// FoldState implements sim.StateFolder.
func (s *StickyBit) FoldState(h sim.Hash) sim.Hash {
	if s.value == nil {
		return h.FoldByte(0)
	}
	return h.FoldByte(1).FoldValue(s.value)
}

// FoldState implements sim.StateFolder.
func (q *Queue) FoldState(h sim.Hash) sim.Hash {
	h = h.FoldInt(len(q.items))
	for _, v := range q.items {
		h = h.FoldValue(v)
	}
	return h
}

// FoldState implements sim.StateFolder.
func (c *CAS) FoldState(h sim.Hash) sim.Hash {
	return foldSymbols(h.FoldInt(int(c.value)), c.history)
}

// FoldState implements sim.StateFolder.
func (r *RMW) FoldState(h sim.Hash) sim.Hash {
	return foldSymbols(h.FoldInt(int(r.value)), r.history)
}

// FoldState implements sim.StateFolder. The link table folds in
// process-id order so the result is independent of map iteration; the
// id sort buffer is the only allocation and only occurs when links
// exist.
func (l *LLSC) FoldState(h sim.Hash) sim.Hash {
	h = h.FoldInt(int(l.value)).FoldInt(l.version)
	h = h.FoldInt(len(l.links))
	if len(l.links) > 0 {
		ids := make([]int, 0, len(l.links))
		for id := range l.links {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		for _, id := range ids {
			h = h.FoldInt(id).FoldInt(l.links[sim.ProcID(id)])
		}
	}
	return foldSymbols(h, l.history)
}

// FoldState implements sim.StateFolder.
func (c *Consensus) FoldState(h sim.Hash) sim.Hash {
	if !c.decided {
		return h.FoldByte(0)
	}
	return h.FoldByte(1).FoldValue(c.value)
}

// Symmetry-aware folds (sim.PermStateFolder), used by StateHashCanon to
// fold the state each object WOULD have in a process-renamed execution.
// The contract is self-consistency across permutations — the fold under
// (π, rename) must equal the identity fold of the renamed object — so
// these may lay out bytes differently from FoldState (e.g. FoldValue
// where FoldState uses FoldInt) as long as every permutation goes
// through the same layout. Stored values go through rename; ProcID-keyed
// internal state (LLSC links) goes through perm; per-process ownership
// encoded in object NAMES is the Canonicalizer's job (RenameObject).

var (
	_ sim.PermStateFolder = (*TestAndSet)(nil)
	_ sim.PermStateFolder = (*FetchAdd)(nil)
	_ sim.PermStateFolder = (*Swap)(nil)
	_ sim.PermStateFolder = (*StickyBit)(nil)
	_ sim.PermStateFolder = (*Queue)(nil)
	_ sim.PermStateFolder = (*CAS)(nil)
	_ sim.PermStateFolder = (*RMW)(nil)
	_ sim.PermStateFolder = (*LLSC)(nil)
	_ sim.PermStateFolder = (*Consensus)(nil)
)

// foldSymbolsUnder folds a symbol sequence with every symbol renamed,
// length-prefixed.
func foldSymbolsUnder(h sim.Hash, rename func(sim.Value) sim.Value, ss []Symbol) sim.Hash {
	h = h.FoldInt(len(ss))
	for _, s := range ss {
		h = h.FoldValue(rename(s))
	}
	return h
}

// FoldStateUnder implements sim.PermStateFolder: a set bit carries no
// process identity.
func (t *TestAndSet) FoldStateUnder(h sim.Hash, _ []sim.ProcID, _ func(sim.Value) sim.Value) sim.Hash {
	return h.FoldBool(t.set)
}

// FoldStateUnder implements sim.PermStateFolder: a counter carries no
// process identity.
func (f *FetchAdd) FoldStateUnder(h sim.Hash, _ []sim.ProcID, _ func(sim.Value) sim.Value) sim.Hash {
	return h.FoldInt(f.value)
}

// FoldStateUnder implements sim.PermStateFolder.
func (s *Swap) FoldStateUnder(h sim.Hash, _ []sim.ProcID, rename func(sim.Value) sim.Value) sim.Hash {
	return h.FoldValue(rename(s.value))
}

// FoldStateUnder implements sim.PermStateFolder.
func (s *StickyBit) FoldStateUnder(h sim.Hash, _ []sim.ProcID, rename func(sim.Value) sim.Value) sim.Hash {
	if s.value == nil {
		return h.FoldByte(0)
	}
	return h.FoldByte(1).FoldValue(rename(s.value))
}

// FoldStateUnder implements sim.PermStateFolder.
func (q *Queue) FoldStateUnder(h sim.Hash, _ []sim.ProcID, rename func(sim.Value) sim.Value) sim.Hash {
	h = h.FoldInt(len(q.items))
	for _, v := range q.items {
		h = h.FoldValue(rename(v))
	}
	return h
}

// FoldStateUnder implements sim.PermStateFolder: the inspection history
// renames element-wise, exactly as the renamed execution would have
// written it.
func (c *CAS) FoldStateUnder(h sim.Hash, _ []sim.ProcID, rename func(sim.Value) sim.Value) sim.Hash {
	return foldSymbolsUnder(h.FoldValue(rename(c.value)), rename, c.history)
}

// FoldStateUnder implements sim.PermStateFolder.
func (r *RMW) FoldStateUnder(h sim.Hash, _ []sim.ProcID, rename func(sim.Value) sim.Value) sim.Hash {
	return foldSymbolsUnder(h.FoldValue(rename(r.value)), rename, r.history)
}

// FoldStateUnder implements sim.PermStateFolder. The link table is
// keyed by ProcID, so the renamed object's table is {perm[p]: ver};
// folding it sorted by RENAMED id makes the fold match the identity
// fold of that renamed table.
func (l *LLSC) FoldStateUnder(h sim.Hash, perm []sim.ProcID, rename func(sim.Value) sim.Value) sim.Hash {
	h = h.FoldValue(rename(l.value)).FoldInt(l.version)
	h = h.FoldInt(len(l.links))
	if len(l.links) > 0 {
		type link struct{ id, ver int }
		renamed := make([]link, 0, len(l.links))
		for id, ver := range l.links {
			renamed = append(renamed, link{int(perm[id]), ver})
		}
		sort.Slice(renamed, func(i, j int) bool { return renamed[i].id < renamed[j].id })
		for _, lk := range renamed {
			h = h.FoldInt(lk.id).FoldInt(lk.ver)
		}
	}
	return foldSymbolsUnder(h, rename, l.history)
}

// FoldStateUnder implements sim.PermStateFolder.
func (c *Consensus) FoldStateUnder(h sim.Hash, _ []sim.ProcID, rename func(sim.Value) sim.Value) sim.Hash {
	if !c.decided {
		return h.FoldByte(0)
	}
	return h.FoldByte(1).FoldValue(rename(c.value))
}
