package objects

import (
	"sort"

	"repro/internal/sim"
)

// This file gives every object in the package an allocation-free state
// fold (sim.StateFolder), used by System.StateHash on the exploration
// hot path in place of the string StateKeys (which remain for
// diagnostics and humans). The same canonicality contract applies as
// in statekey.go: equal folds ⇒ observationally equivalent objects,
// inspection-only histories included.

var (
	_ sim.StateFolder = (*TestAndSet)(nil)
	_ sim.StateFolder = (*FetchAdd)(nil)
	_ sim.StateFolder = (*Swap)(nil)
	_ sim.StateFolder = (*StickyBit)(nil)
	_ sim.StateFolder = (*Queue)(nil)
	_ sim.StateFolder = (*CAS)(nil)
	_ sim.StateFolder = (*RMW)(nil)
	_ sim.StateFolder = (*LLSC)(nil)
	_ sim.StateFolder = (*Consensus)(nil)
	_ sim.ValueFolder = Symbol(0)
)

// FoldValue implements sim.ValueFolder: a Symbol folds as its alphabet
// index, so fingerprinted runs never render "⊥" per step.
func (s Symbol) FoldValue(h sim.Hash) sim.Hash { return h.FoldInt(int(s)) }

// foldSymbols folds a symbol sequence, length-prefixed.
func foldSymbols(h sim.Hash, ss []Symbol) sim.Hash {
	h = h.FoldInt(len(ss))
	for _, s := range ss {
		h = h.FoldInt(int(s))
	}
	return h
}

// FoldState implements sim.StateFolder.
func (t *TestAndSet) FoldState(h sim.Hash) sim.Hash { return h.FoldBool(t.set) }

// FoldState implements sim.StateFolder.
func (f *FetchAdd) FoldState(h sim.Hash) sim.Hash { return h.FoldInt(f.value) }

// FoldState implements sim.StateFolder.
func (s *Swap) FoldState(h sim.Hash) sim.Hash { return h.FoldValue(s.value) }

// FoldState implements sim.StateFolder.
func (s *StickyBit) FoldState(h sim.Hash) sim.Hash {
	if s.value == nil {
		return h.FoldByte(0)
	}
	return h.FoldByte(1).FoldValue(s.value)
}

// FoldState implements sim.StateFolder.
func (q *Queue) FoldState(h sim.Hash) sim.Hash {
	h = h.FoldInt(len(q.items))
	for _, v := range q.items {
		h = h.FoldValue(v)
	}
	return h
}

// FoldState implements sim.StateFolder.
func (c *CAS) FoldState(h sim.Hash) sim.Hash {
	return foldSymbols(h.FoldInt(int(c.value)), c.history)
}

// FoldState implements sim.StateFolder.
func (r *RMW) FoldState(h sim.Hash) sim.Hash {
	return foldSymbols(h.FoldInt(int(r.value)), r.history)
}

// FoldState implements sim.StateFolder. The link table folds in
// process-id order so the result is independent of map iteration; the
// id sort buffer is the only allocation and only occurs when links
// exist.
func (l *LLSC) FoldState(h sim.Hash) sim.Hash {
	h = h.FoldInt(int(l.value)).FoldInt(l.version)
	h = h.FoldInt(len(l.links))
	if len(l.links) > 0 {
		ids := make([]int, 0, len(l.links))
		for id := range l.links {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		for _, id := range ids {
			h = h.FoldInt(id).FoldInt(l.links[sim.ProcID(id)])
		}
	}
	return foldSymbols(h, l.history)
}

// FoldState implements sim.StateFolder.
func (c *Consensus) FoldState(h sim.Hash) sim.Hash {
	if !c.decided {
		return h.FoldByte(0)
	}
	return h.FoldByte(1).FoldValue(c.value)
}
