package objects

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// This file makes every object in the package fingerprintable
// (sim.StateKeyer) so that the explore package can hash global states
// and prune schedule prefixes that reconverge. Keys must be canonical:
// equal keys ⇒ observationally equivalent objects. Where an object
// keeps an inspection-only history (CAS, RMW, LLSC), the history is
// included: experiment checks may read it after a run, so states that
// differ only in history are not interchangeable. This is conservative
// — it can only weaken pruning, never its soundness.

var (
	_ sim.StateKeyer = (*TestAndSet)(nil)
	_ sim.StateKeyer = (*FetchAdd)(nil)
	_ sim.StateKeyer = (*Swap)(nil)
	_ sim.StateKeyer = (*StickyBit)(nil)
	_ sim.StateKeyer = (*Queue)(nil)
	_ sim.StateKeyer = (*CAS)(nil)
	_ sim.StateKeyer = (*RMW)(nil)
	_ sim.StateKeyer = (*LLSC)(nil)
	_ sim.StateKeyer = (*Consensus)(nil)
)

// StateKey implements sim.StateKeyer.
func (t *TestAndSet) StateKey() string {
	if t.set {
		return "1"
	}
	return "0"
}

// StateKey implements sim.StateKeyer.
func (f *FetchAdd) StateKey() string { return fmt.Sprint(f.value) }

// StateKey implements sim.StateKeyer.
func (s *Swap) StateKey() string { return sim.ValueKey(s.value) }

// StateKey implements sim.StateKeyer.
func (s *StickyBit) StateKey() string {
	if s.value == nil {
		return "⊥"
	}
	return sim.ValueKey(s.value)
}

// StateKey implements sim.StateKeyer.
func (q *Queue) StateKey() string { return fmt.Sprintf("%v", q.items) }

// StateKey implements sim.StateKeyer.
func (c *CAS) StateKey() string {
	return fmt.Sprintf("%d|%v", int(c.value), c.history)
}

// StateKey implements sim.StateKeyer.
func (r *RMW) StateKey() string {
	return fmt.Sprintf("%d|%v", int(r.value), r.history)
}

// StateKey implements sim.StateKeyer. The link table is rendered in
// process-id order so the key is independent of map iteration.
func (l *LLSC) StateKey() string {
	ids := make([]int, 0, len(l.links))
	for id := range l.links {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%d|", int(l.value), l.version)
	for _, id := range ids {
		fmt.Fprintf(&b, "%d:%d,", id, l.links[sim.ProcID(id)])
	}
	fmt.Fprintf(&b, "|%v", l.history)
	return b.String()
}

// StateKey implements sim.StateKeyer.
func (c *Consensus) StateKey() string {
	if !c.decided {
		return "⊥"
	}
	return sim.ValueKey(c.value)
}
