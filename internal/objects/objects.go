package objects

import (
	"fmt"

	"repro/internal/sim"
)

// TestAndSet is a single-bit test&set object (the hardware primitive of
// the old IBM machines, Encore Multimax, Sequent Symmetry, etc. cited
// in the paper's introduction). Its consensus number is 2.
type TestAndSet struct {
	name string
	set  bool
}

var _ sim.Object = (*TestAndSet)(nil)

// NewTestAndSet returns an unset test&set bit.
func NewTestAndSet(name string) *TestAndSet { return &TestAndSet{name: name} }

// Name implements sim.Object.
func (t *TestAndSet) Name() string { return t.name }

// Apply implements sim.Object.
func (t *TestAndSet) Apply(_ sim.ProcID, op sim.OpKind, _ []sim.Value) (sim.Value, error) {
	switch op {
	case OpTAS:
		won := !t.set
		t.set = true
		return won, nil
	case sim.OpRead:
		return t.set, nil
	default:
		return nil, fmt.Errorf("objects: test&set: unsupported op %q", op)
	}
}

// ResetObject implements sim.Resettable (injected reset faults).
func (t *TestAndSet) ResetObject() { t.set = false }

// TestAndSet atomically sets the bit, returning true iff the caller was
// first (the bit was clear).
func (t *TestAndSet) TestAndSet(e *sim.Env) bool {
	return e.Apply0(t, OpTAS).(bool)
}

// Read returns the bit without setting it.
func (t *TestAndSet) Read(e *sim.Env) bool {
	return e.Apply0(t, sim.OpRead).(bool)
}

// FetchAdd is an unbounded fetch&add register (consensus number 2).
type FetchAdd struct {
	name  string
	value int
}

var _ sim.Object = (*FetchAdd)(nil)

// NewFetchAdd returns a fetch&add register with the given initial value.
func NewFetchAdd(name string, initial int) *FetchAdd {
	return &FetchAdd{name: name, value: initial}
}

// Name implements sim.Object.
func (f *FetchAdd) Name() string { return f.name }

// Apply implements sim.Object.
func (f *FetchAdd) Apply(_ sim.ProcID, op sim.OpKind, args []sim.Value) (sim.Value, error) {
	switch op {
	case OpFetchAdd:
		prev := f.value
		f.value += args[0].(int)
		return prev, nil
	case sim.OpRead:
		return f.value, nil
	default:
		return nil, fmt.Errorf("objects: fetch&add: unsupported op %q", op)
	}
}

// FetchAdd atomically adds delta and returns the previous value.
func (f *FetchAdd) FetchAdd(e *sim.Env, delta int) int {
	return e.Apply1(f, OpFetchAdd, delta).(int)
}

// Swap is an atomic swap register (consensus number 2).
type Swap struct {
	name  string
	value sim.Value
}

var _ sim.Object = (*Swap)(nil)

// NewSwap returns a swap register with the given initial value.
func NewSwap(name string, initial sim.Value) *Swap {
	return &Swap{name: name, value: initial}
}

// Name implements sim.Object.
func (s *Swap) Name() string { return s.name }

// Apply implements sim.Object.
func (s *Swap) Apply(_ sim.ProcID, op sim.OpKind, args []sim.Value) (sim.Value, error) {
	switch op {
	case OpSwap:
		prev := s.value
		s.value = args[0]
		return prev, nil
	case sim.OpRead:
		return s.value, nil
	default:
		return nil, fmt.Errorf("objects: swap: unsupported op %q", op)
	}
}

// Swap atomically replaces the value, returning the previous one.
func (s *Swap) Swap(e *sim.Env, v sim.Value) sim.Value {
	return e.Apply1(s, OpSwap, v)
}

// StickyBit is Plotkin's sticky bit: the first write sticks, later
// writes have no effect; every write returns the stuck value. Sticky
// bits are universal (consensus number ∞) but, like compare&swap,
// bounded-size instances are size-limited — the motivation of the paper.
type StickyBit struct {
	name  string
	value sim.Value // nil until stuck
}

var _ sim.Object = (*StickyBit)(nil)

// NewStickyBit returns an unwritten sticky bit.
func NewStickyBit(name string) *StickyBit { return &StickyBit{name: name} }

// Name implements sim.Object.
func (s *StickyBit) Name() string { return s.name }

// Apply implements sim.Object.
func (s *StickyBit) Apply(_ sim.ProcID, op sim.OpKind, args []sim.Value) (sim.Value, error) {
	switch op {
	case sim.OpWrite:
		if s.value == nil {
			s.value = args[0]
		}
		return s.value, nil
	case sim.OpRead:
		return s.value, nil
	default:
		return nil, fmt.Errorf("objects: sticky bit: unsupported op %q", op)
	}
}

// WriteSticky writes v if the bit is unwritten and returns the stuck value.
func (s *StickyBit) WriteSticky(e *sim.Env, v sim.Value) sim.Value {
	return e.Apply1(s, sim.OpWrite, v)
}

// Queue is a FIFO queue object (consensus number 2).
type Queue struct {
	name  string
	items []sim.Value
}

var _ sim.Object = (*Queue)(nil)

// NewQueue returns a queue holding the given initial items front-first.
func NewQueue(name string, initial ...sim.Value) *Queue {
	return &Queue{name: name, items: initial}
}

// Name implements sim.Object.
func (q *Queue) Name() string { return q.name }

// Apply implements sim.Object.
func (q *Queue) Apply(_ sim.ProcID, op sim.OpKind, args []sim.Value) (sim.Value, error) {
	switch op {
	case OpEnq:
		q.items = append(q.items, args[0])
		return nil, nil
	case OpDeq:
		if len(q.items) == 0 {
			return nil, nil
		}
		head := q.items[0]
		q.items = q.items[1:]
		return head, nil
	default:
		return nil, fmt.Errorf("objects: queue: unsupported op %q", op)
	}
}

// Enq atomically appends v.
func (q *Queue) Enq(e *sim.Env, v sim.Value) { e.Apply1(q, OpEnq, v) }

// Deq atomically removes and returns the head, or nil if empty.
func (q *Queue) Deq(e *sim.Env) sim.Value { return e.Apply0(q, OpDeq) }
