// Package hardware re-implements the paper's central objects and
// election protocols on real Go concurrency primitives (goroutines +
// sync/atomic) instead of the deterministic simulator. It exists to
// cross-validate the simulator's semantics: the same algorithms must
// agree under the Go scheduler and the race detector as they do under
// every simulated schedule. The gate-vs-atomic ablation
// (BenchmarkAblationGateVsAtomic) measures the cost difference.
//
// The compare&swap register keeps the paper's interface — c&s(a→b)
// returns the previous value, the alphabet Σ = {⊥, 0, …, k−2} is hard
// enforced — on an int32 with a standard read-validate CAS loop.
package hardware

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/objects"
)

// CAS is a compare&swap-(k) register on a machine word.
type CAS struct {
	k int
	v int32

	// history of values, for post-run inspection only (mutex-guarded;
	// not part of the synchronization semantics).
	mu      sync.Mutex
	history []objects.Symbol
}

// NewCAS returns a hardware-backed compare&swap-(k) register at ⊥.
func NewCAS(k int) *CAS {
	if k < 2 {
		panic(fmt.Sprintf("hardware: compare&swap-(%d): k must be >= 2", k))
	}
	return &CAS{k: k, history: []objects.Symbol{objects.Bottom}}
}

// K returns the alphabet size.
func (c *CAS) K() int { return c.k }

// CompareAndSwap performs c&s(from→to), returning the previous value.
// It panics on out-of-alphabet symbols — the hard size limit.
func (c *CAS) CompareAndSwap(from, to objects.Symbol) objects.Symbol {
	c.check(from)
	c.check(to)
	for {
		cur := atomic.LoadInt32(&c.v)
		if objects.Symbol(cur) != from {
			return objects.Symbol(cur)
		}
		if atomic.CompareAndSwapInt32(&c.v, cur, int32(to)) {
			if from != to {
				c.mu.Lock()
				c.history = append(c.history, to)
				c.mu.Unlock()
			}
			return from
		}
	}
}

// Read returns the current value.
func (c *CAS) Read() objects.Symbol {
	return objects.Symbol(atomic.LoadInt32(&c.v))
}

// History returns the sequence of values held (inspection only).
func (c *CAS) History() []objects.Symbol {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]objects.Symbol, len(c.history))
	copy(out, c.history)
	return out
}

func (c *CAS) check(s objects.Symbol) {
	if s < 0 || int(s) >= c.k {
		panic(fmt.Sprintf("hardware: symbol %d outside compare&swap-(%d) alphabet", int(s), c.k))
	}
}

// DirectElection elects a leader among n ≤ k−1 goroutines with the
// register alone: each claims its symbol, everyone decides the
// register's value. Returns each participant's decision.
func DirectElection(cas *CAS, n int) []int {
	if n > cas.K()-1 {
		panic(fmt.Sprintf("hardware: %d processes exceed compare&swap-(%d) capacity %d", n, cas.K(), cas.K()-1))
	}
	out := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cas.CompareAndSwap(objects.Bottom, objects.Symbol(i+1))
			out[i] = int(cas.Read()) - 1
		}(i)
	}
	wg.Wait()
	return out
}

// AnnouncedElection elects among n ≤ k−1 goroutines with arbitrary
// identities: announce, claim your port, decide the winning port's
// announcement.
func AnnouncedElection(cas *CAS, identities []any) []any {
	n := len(identities)
	if n > cas.K()-1 {
		panic(fmt.Sprintf("hardware: %d processes exceed compare&swap-(%d) capacity %d", n, cas.K(), cas.K()-1))
	}
	ann := make([]atomic.Pointer[any], n)
	out := make([]any, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := identities[i]
			ann[i].Store(&id)
			cas.CompareAndSwap(objects.Bottom, objects.Symbol(i+1))
			win := int(cas.Read()) - 1
			out[i] = *ann[win].Load() // the winner announced before its c&s
		}(i)
	}
	wg.Wait()
	return out
}

// PermutationElection runs the first-use permutation-tree election on
// hardware primitives: election.Capacity(k) goroutines, one per slot,
// spinning on real atomics. Crash-free (goroutines don't crash), so the
// protocol's liveness condition holds; returns every participant's
// decision (a slot-owner index).
func PermutationElection(k int) []int32 {
	slots := permSlots(k)
	n := len(slots)
	cas := NewCAS(k)
	done := make([]atomic.Bool, n)
	out := make([]int32, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			slot := slots[i]
			marked := false
			for {
				chain := buildChain(slots, &done)
				if len(chain) == k-1 {
					leader := slotIndex(slots, chain)
					out[i] = int32(leader)
					return
				}
				if !marked && prefixEq(chain, slot.prefix) {
					from := objects.Bottom
					if len(chain) > 0 {
						from = chain[len(chain)-1]
					}
					if cas.CompareAndSwap(from, slot.next) == from {
						done[i].Store(true)
						marked = true
					}
				}
			}
		}(i)
	}
	wg.Wait()
	return out
}

// permSlot mirrors election.Slot for the hardware build (kept local to
// avoid importing simulator types into the hardware path).
type permSlot struct {
	prefix []objects.Symbol
	next   objects.Symbol
}

func permSlots(k int) []permSlot {
	var out []permSlot
	var rec func(prefix []objects.Symbol)
	rec = func(prefix []objects.Symbol) {
		used := make(map[objects.Symbol]bool, len(prefix))
		for _, s := range prefix {
			used[s] = true
		}
		for s := objects.Symbol(1); int(s) < k; s++ {
			if used[s] {
				continue
			}
			p := make([]objects.Symbol, len(prefix))
			copy(p, prefix)
			out = append(out, permSlot{prefix: p, next: s})
			rec(append(prefix, s))
		}
	}
	rec(nil)
	return out
}

func buildChain(slots []permSlot, done *[]atomic.Bool) []objects.Symbol {
	var chain []objects.Symbol
	for {
		extended := false
		for i := range slots {
			if !(*done)[i].Load() {
				continue
			}
			if prefixEq(chain, slots[i].prefix) {
				chain = append(chain, slots[i].next)
				extended = true
				break
			}
		}
		if !extended {
			return chain
		}
	}
}

func slotIndex(slots []permSlot, chain []objects.Symbol) int {
	for i, s := range slots {
		if s.next == chain[len(chain)-1] && prefixEq(chain[:len(chain)-1], s.prefix) {
			return i
		}
	}
	return -1
}

func prefixEq(a, b []objects.Symbol) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
