package hardware_test

import (
	"testing"

	"repro/internal/election"
	"repro/internal/hardware"
	"repro/internal/objects"
)

// These tests run the protocols on real goroutines and sync/atomic;
// `go test -race ./internal/hardware/` is the cross-validation the
// package exists for.

func TestCASSemantics(t *testing.T) {
	c := hardware.NewCAS(4)
	if prev := c.CompareAndSwap(objects.Bottom, 2); prev != objects.Bottom {
		t.Fatalf("first cas prev = %v", prev)
	}
	if prev := c.CompareAndSwap(objects.Bottom, 1); prev != 2 {
		t.Fatalf("failed cas prev = %v", prev)
	}
	if got := c.Read(); got != 2 {
		t.Fatalf("Read = %v", got)
	}
	h := c.History()
	if len(h) != 2 || h[1] != 2 {
		t.Fatalf("history = %v", h)
	}
}

func TestCASAlphabetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-alphabet cas did not panic")
		}
	}()
	hardware.NewCAS(3).CompareAndSwap(0, 5)
}

func TestDirectElectionAgreesUnderRealConcurrency(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		k := 5
		cas := hardware.NewCAS(k)
		out := hardware.DirectElection(cas, k-1)
		for i := 1; i < len(out); i++ {
			if out[i] != out[0] {
				t.Fatalf("trial %d: decisions %v disagree", trial, out)
			}
		}
		if out[0] < 0 || out[0] >= k-1 {
			t.Fatalf("trial %d: invalid leader %d", trial, out[0])
		}
		if h := cas.History(); len(h) != 2 || int(h[1])-1 != out[0] {
			t.Fatalf("trial %d: history %v does not match leader %d", trial, h, out[0])
		}
	}
}

func TestAnnouncedElectionAgreesUnderRealConcurrency(t *testing.T) {
	ids := []any{"alpha", "beta", "gamma"}
	for trial := 0; trial < 200; trial++ {
		cas := hardware.NewCAS(4)
		out := hardware.AnnouncedElection(cas, ids)
		for i := 1; i < len(out); i++ {
			if out[i] != out[0] {
				t.Fatalf("trial %d: decisions %v disagree", trial, out)
			}
		}
		valid := false
		for _, id := range ids {
			if out[0] == id {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("trial %d: leader %v not a proposed identity", trial, out[0])
		}
	}
}

func TestPermutationElectionUnderRealConcurrency(t *testing.T) {
	for _, k := range []int{3, 4} {
		n := election.Capacity(k)
		for trial := 0; trial < 30; trial++ {
			out := hardware.PermutationElection(k)
			if len(out) != n {
				t.Fatalf("k=%d: %d decisions, want %d", k, len(out), n)
			}
			for i := 1; i < len(out); i++ {
				if out[i] != out[0] {
					t.Fatalf("k=%d trial %d: decisions disagree: %v", k, trial, out)
				}
			}
			if out[0] < 0 || int(out[0]) >= n {
				t.Fatalf("k=%d trial %d: invalid leader %d", k, trial, out[0])
			}
		}
	}
}

func TestCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("over-capacity did not panic")
		}
	}()
	hardware.DirectElection(hardware.NewCAS(3), 3)
}
