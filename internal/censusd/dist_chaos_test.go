package censusd

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The distributed chaos test: a real coordinator and real censusworker
// binaries, with a worker SIGKILLed mid-lease. The census must still
// complete bit-identical to a direct run (lease expiry requeues the
// orphaned root to the surviving worker), and when the killed worker is
// resurrected over its old state directory, its late delivery must be
// rejected by the generation guard — observable as a stale_results
// bump in /healthz — never double-counted.

// buildWorker compiles cmd/censusworker into dir (with -race iff this
// test binary has it) and returns the binary path.
func buildWorker(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "censusworker")
	args := []string{"build"}
	if raceEnabled {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, "repro/cmd/censusworker")
	cmd := exec.Command("go", args...)
	cmd.Dir = filepath.Join("..", "..")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building censusworker: %v\n%s", err, out)
	}
	return bin
}

// startCoordinator launches censusd with a short lease TTL.
func startCoordinator(t *testing.T, bin, dir string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-dir", dir,
		"-workers", "1", "-queue", "8", "-checkpoint-every", "1",
		"-lease-ttl", "2s", "-worker-poll", "100ms")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	addr := ""
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "censusd: listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		_ = cmd.Process.Kill()
		t.Fatalf("coordinator never reported its address (scan err %v)", sc.Err())
	}
	go io.Copy(io.Discard, stdout)
	return "http://" + addr, cmd
}

// startWorker launches a censusworker against base over dir.
func startWorker(t *testing.T, bin, base, dir, id string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-coordinator", base, "-dir", dir, "-id", id, "-poll", "100ms")
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

func stopProcess(cmd *exec.Cmd) {
	if cmd == nil || cmd.Process == nil {
		return
	}
	_ = cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { _ = cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		_ = cmd.Process.Kill()
		<-done
	}
}

// inflightRecs reads a worker dir's persisted in-flight lease records
// (root → recorded generation). Records are written atomically
// (temp + rename), so presence implies a complete record.
func inflightRecs(dir string) map[int]int {
	recs := map[int]int{}
	inflight := filepath.Join(dir, "inflight")
	entries, err := os.ReadDir(inflight)
	if err != nil {
		return recs
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".ck.json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(inflight, name))
		if err != nil {
			continue
		}
		var rec struct {
			Root       int `json:"root"`
			Generation int `json:"generation"`
		}
		if err := json.Unmarshal(data, &rec); err != nil {
			continue
		}
		recs[rec.Root] = rec.Generation
	}
	return recs
}

// getHealth fetches /healthz (ok false on transport errors).
func getHealth(base string) (*health, bool) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	var h health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, false
	}
	return &h, true
}

func TestDistWorkerKillStaleRejection(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level chaos test; skipped in -short")
	}
	scratch := t.TempDir()
	daemonBin := buildDaemon(t, scratch)
	workerBin := buildWorker(t, scratch)

	req := Request{Protocol: "rw3", Workers: 1}
	want := groundTruth(t, req)

	base, coord := startCoordinator(t, daemonBin, filepath.Join(scratch, "store"))
	defer stopProcess(coord)

	w1dir := filepath.Join(scratch, "w1")
	w1 := startWorker(t, workerBin, base, w1dir, "w1")
	w1Stopped := false
	defer func() {
		if !w1Stopped {
			stopProcess(w1)
		}
	}()

	// The coordinator only distributes jobs submitted while a worker is
	// live; wait for w1's registration to land.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if h, ok := getHealth(base); ok && h.WorkersLive >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never registered with the coordinator")
		}
		time.Sleep(20 * time.Millisecond)
	}

	id := submitJob(t, base, req)

	// Wait until w1 genuinely holds a lease AND has persisted the
	// matching in-flight record, then SIGKILL it mid-lease. Gating on
	// the on-disk record (not just the coordinator's lease table)
	// matters: the coordinator records the grant before the worker
	// writes the record, and a kill inside that window would leave the
	// resurrected worker nothing to resume — no late delivery, no
	// stale rejection to observe.
	deadline = time.Now().Add(120 * time.Second)
	killed := false
	for time.Now().Before(deadline) {
		v, ok := getJob(base, id)
		if ok && v.State == StateDone {
			t.Fatal("job finished before the kill; grow its budget")
		}
		if ok && v.Dist != nil && len(v.Dist.Leases) > 0 {
			recs := inflightRecs(w1dir)
			for _, l := range v.Dist.Leases {
				gen, persisted := recs[l.Root]
				if l.Worker == "w1" && persisted && gen == l.Generation {
					killed = true
					break
				}
			}
			if killed {
				if err := w1.Process.Signal(syscall.SIGKILL); err != nil {
					t.Fatal(err)
				}
				_ = w1.Wait()
				w1Stopped = true
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !killed {
		t.Fatal("worker never held a lease with a persisted in-flight record")
	}

	// A fresh worker joins; the orphaned lease expires (2s TTL), the
	// root requeues under a bumped generation, and the job completes.
	w2 := startWorker(t, workerBin, base, filepath.Join(scratch, "w2"), "w2")
	defer stopProcess(w2)

	deadline = time.Now().Add(10 * time.Minute)
	var final *jobView
	for {
		if time.Now().After(deadline) {
			t.Fatal("job did not finish after the worker kill")
		}
		v, ok := getJob(base, id)
		if ok && v.State == StateDone {
			final = v
			break
		}
		if ok && v.State == StateFailed {
			t.Fatalf("job failed after worker kill: %s", v.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}
	assertResultMatches(t, "census after worker kill", final.Result, want)

	h, ok := getHealth(base)
	if !ok {
		t.Fatal("healthz unreachable")
	}
	if h.RemoteRoots == 0 {
		t.Fatalf("no roots ran remotely: %+v", h)
	}
	if h.LeaseExpiries == 0 {
		t.Fatalf("the kill produced no lease expiry: %+v", h)
	}
	baselineStale := h.StaleResults

	// Resurrect w1 over its old state directory: it resumes the
	// interrupted subtree from its persisted in-flight record and
	// delivers under the RECORDED (superseded) generation. The
	// coordinator must reject it as stale — the root was re-explored
	// and merged by w2 — and never double-count.
	w1b := startWorker(t, workerBin, base, w1dir, "w1")
	defer stopProcess(w1b)

	deadline = time.Now().Add(4 * time.Minute)
	for {
		if h, ok := getHealth(base); ok && h.StaleResults > baselineStale {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("resurrected worker's late delivery was never rejected as stale")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The settled census is untouched by the late delivery.
	v, ok := getJob(base, id)
	if !ok {
		t.Fatal("job unreachable after resurrection")
	}
	assertResultMatches(t, "census after stale rejection", v.Result, want)
}
