// Package censusd is the census daemon: it accepts census job requests
// over HTTP/JSON, runs them as supervised checkpointed explorations on
// a bounded worker pool, persists every job to an on-disk store with
// atomic writes, and recovers in-flight jobs after a crash — each
// resumed job completes bit-identical to an uninterrupted run. The
// request/identity encoding here is shared with cmd/explore so the CLI
// and the daemon name the same exploration the same way.
package censusd

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/consensus"
	"repro/internal/election"
	"repro/internal/explore"
	"repro/internal/faults"
	"repro/internal/objects"
	"repro/internal/sim"
)

// Request is one census job: which protocol to explore and under what
// budgets, plus engine tuning. The tree-shaping fields (protocol,
// parameters, budgets) define the job's exploration identity — two
// requests with equal identities ARE the same job and deduplicate. The
// tuning fields (workers, reducers, timeout) do not: the reducers are
// census-preserving and worker count never changes counts, so they
// only affect how fast the identical census is produced.
type Request struct {
	// Protocol names a registry entry: rw2, rw3, tas2, fa2, queue2,
	// sticky, swap, cas, casdeg, casdegel.
	Protocol string `json:"protocol"`
	// K is the object's size parameter (compare&swap alphabet) for
	// cas/casdeg/casdegel; ignored — and normalized away — for the
	// others.
	K int `json:"k,omitempty"`
	// N is the process count for the n-ary protocols; ignored and
	// normalized away for the fixed-arity ones.
	N int `json:"n,omitempty"`
	// Crashes is the crash budget per schedule (default 1).
	Crashes *int `json:"crashes,omitempty"`
	// ObjFaults is the object-fault budget (needs a fault-wrapped
	// protocol, i.e. casdeg).
	ObjFaults int `json:"objfaults,omitempty"`
	// FaultModes are the fault modes to enumerate when ObjFaults > 0:
	// crash, omission, reset, garble. Default crash.
	FaultModes []string `json:"faultmodes,omitempty"`
	// MaxRuns is the exploration budget (default 200000, matching
	// cmd/explore).
	MaxRuns int `json:"maxruns,omitempty"`
	// StepLimit is the per-process step budget (0 = sim default).
	StepLimit int `json:"steplimit,omitempty"`

	// Tuning — not part of the identity.
	Workers   int  `json:"workers,omitempty"`
	Prune     bool `json:"prune,omitempty"`
	Symmetry  bool `json:"symmetry,omitempty"`
	SleepSets bool `json:"sleepsets,omitempty"`
	// TimeoutSec bounds the job's wall clock; an expired job fails
	// (retaining its checkpoint, so a resubmission resumes it).
	TimeoutSec int `json:"timeout_sec,omitempty"`
}

// DefaultMaxRuns mirrors cmd/explore's -maxruns default so the CLI and
// the daemon agree on the identity of a default-budget census.
const DefaultMaxRuns = 200000

// defaultCrashes mirrors cmd/explore's -crashes default.
const defaultCrashes = 1

// Normalize validates the request and canonicalizes every field that
// feeds the identity: unknown protocols and fault modes are rejected,
// defaults are made explicit, dimensions the protocol ignores are
// zeroed (so "tas2 with k=7" and plain "tas2" are the same job), and
// fault modes are sorted and deduplicated.
func (r *Request) Normalize() error {
	spec, ok := protocols[r.Protocol]
	if !ok {
		return fmt.Errorf("unknown protocol %q (have %s)", r.Protocol, strings.Join(ProtocolNames(), ", "))
	}
	if !spec.usesK {
		r.K = 0
	} else if r.K <= 0 {
		return fmt.Errorf("protocol %q needs k > 0", r.Protocol)
	}
	if !spec.usesN {
		r.N = 0
	} else if r.N <= 0 {
		return fmt.Errorf("protocol %q needs n > 0", r.Protocol)
	}
	if spec.usesK && spec.usesN && r.N > r.K-1 {
		return fmt.Errorf("protocol %q needs n <= k-1 (%d processes, alphabet %d)", r.Protocol, r.N, r.K)
	}
	if r.Crashes == nil {
		c := defaultCrashes
		r.Crashes = &c
	}
	if *r.Crashes < 0 || r.ObjFaults < 0 || r.MaxRuns < 0 || r.StepLimit < 0 || r.TimeoutSec < 0 {
		return fmt.Errorf("budgets must be non-negative")
	}
	if r.MaxRuns == 0 {
		r.MaxRuns = DefaultMaxRuns
	}
	if r.ObjFaults > 0 && !spec.faultable {
		return fmt.Errorf("protocol %q is not fault-wrapped; objfaults needs casdeg or casdegel", r.Protocol)
	}
	if r.ObjFaults == 0 {
		r.FaultModes = nil
	} else {
		if len(r.FaultModes) == 0 {
			r.FaultModes = []string{"crash"}
		}
		if _, err := ParseFaultModes(strings.Join(r.FaultModes, ",")); err != nil {
			return err
		}
		sort.Strings(r.FaultModes)
		r.FaultModes = dedupSorted(r.FaultModes)
	}
	return nil
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Identity renders the canonical exploration identity: exactly the
// fields that shape the schedule tree and its verdicts, none of the
// tuning. Call Normalize first.
func (r Request) Identity() string {
	return fmt.Sprintf("%s k=%d n=%d c=%d f=%d m=%s r=%d s=%d",
		r.Protocol, r.K, r.N, *r.Crashes, r.ObjFaults,
		strings.Join(r.FaultModes, ","), r.MaxRuns, r.StepLimit)
}

// ID is the job identifier: an FNV-1a hash of the identity, rendered
// as fixed-width hex (filesystem- and URL-safe). Equal identities —
// and only they — collide, which is the dedup mechanism.
func (r Request) ID() string {
	h := uint64(14695981039346656037)
	for _, b := range []byte(r.Identity()) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return fmt.Sprintf("%016x", h)
}

// Build returns the protocol's system builder and its proposal set.
// Call Normalize first.
func (r Request) Build() (explore.Builder, []sim.Value, error) {
	spec, ok := protocols[r.Protocol]
	if !ok {
		return nil, nil, fmt.Errorf("unknown protocol %q", r.Protocol)
	}
	b, props := spec.build(r.K, r.N)
	return b, props, nil
}

// Options maps the request onto engine options (without Context or
// Supervision, which belong to the runner).
func (r Request) Options() explore.Options {
	opts := explore.Options{
		MaxCrashes:      *r.Crashes,
		MaxRuns:         r.MaxRuns,
		MaxStepsPerProc: r.StepLimit,
		Workers:         r.Workers,
		Prune:           r.Prune,
		Symmetry:        r.Symmetry,
		SleepSets:       r.SleepSets,
	}
	if r.ObjFaults > 0 {
		opts.ObjectFaults = r.ObjFaults
		opts.FaultModes, _ = ParseFaultModes(strings.Join(r.FaultModes, ","))
	}
	return opts
}

// BuildRaw decodes a serialized Request (a distributed work item's
// payload) into the exploration it names: builder, engine options, and
// verdict check. Worker and coordinator both resolve through this
// registry, so identical bytes reproduce the identical exploration.
func BuildRaw(raw []byte) (explore.Builder, explore.Options, func(*sim.Result) error, error) {
	var req Request
	if err := json.Unmarshal(raw, &req); err != nil {
		return nil, explore.Options{}, nil, fmt.Errorf("censusd: decode request: %w", err)
	}
	if err := req.Normalize(); err != nil {
		return nil, explore.Options{}, nil, err
	}
	b, props, err := req.Build()
	if err != nil {
		return nil, explore.Options{}, nil, err
	}
	return b, req.Options(), req.Check(props), nil
}

// Check returns the consensus per-run verdict — agreement and validity
// over the proposal set — the registry default. Protocols whose verdict
// is not consensus-shaped (the election entries) override it per spec;
// resolve through Request.Check rather than calling this directly.
func Check(props []sim.Value) func(*sim.Result) error {
	return func(res *sim.Result) error {
		if err := consensus.CheckAgreement(res); err != nil {
			return err
		}
		return consensus.CheckValidity(res, props)
	}
}

// Check resolves the per-run verdict for the request's protocol: the
// spec's own check when it declares one (election protocols validate
// leader agreement over process ids, not proposal consensus), the
// consensus default otherwise. props must be the slice returned by
// Build. Call Normalize first.
func (r Request) Check(props []sim.Value) func(*sim.Result) error {
	if spec, ok := protocols[r.Protocol]; ok && spec.check != nil {
		return spec.check(props)
	}
	return Check(props)
}

// protocolSpec is one registry entry.
type protocolSpec struct {
	usesK, usesN bool
	faultable    bool
	build        func(k, n int) (explore.Builder, []sim.Value)
	// check, when set, replaces the consensus agreement/validity default
	// with a protocol-specific verdict over build's value set.
	check func(props []sim.Value) func(*sim.Result) error
}

func props(n int) []sim.Value {
	out := make([]sim.Value, n)
	for i := range out {
		out[i] = 100 + i
	}
	return out
}

// protocols is the shared registry of explorable protocols, used by
// cmd/explore's -protocol flag and the daemon's request decoding.
var protocols = map[string]protocolSpec{
	// Every entry builds its protocol in machine form (SpawnMachine), so
	// jobs run on the explorers' direct-dispatch + in-place backtracking
	// fast path; the machine ports are bit-identical to the Program
	// forms (enforced by the equivalence tests in internal/explore), so
	// job identities, checkpoints and census numbers are unchanged.
	"rw2": {build: func(_, _ int) (explore.Builder, []sim.Value) {
		p := props(2)
		return func() *sim.System {
			sys := sim.NewSystem()
			for _, m := range consensus.RWMachines(sys, "rw", p) {
				sys.SpawnMachine(m)
			}
			return sys
		}, p
	}},
	"rw3": {build: func(_, _ int) (explore.Builder, []sim.Value) {
		p := props(3)
		return func() *sim.System {
			sys := sim.NewSystem()
			for _, m := range consensus.RWMachines(sys, "rw", p) {
				sys.SpawnMachine(m)
			}
			return sys
		}, p
	}},
	"tas2": {build: func(_, _ int) (explore.Builder, []sim.Value) {
		p := props(2)
		spec := consensus.TASSymmetric()
		return func() *sim.System {
			sys := sim.NewSystem()
			ts := objects.NewTestAndSet("t")
			sys.Add(ts)
			for _, m := range consensus.TASMachines(sys, ts, [2]sim.Value{p[0], p[1]}) {
				sys.SpawnMachine(m)
			}
			sys.DeclareSymmetry(spec)
			return sys
		}, p
	}},
	"fa2": {build: func(_, _ int) (explore.Builder, []sim.Value) {
		p := props(2)
		return func() *sim.System {
			sys := sim.NewSystem()
			fa := objects.NewFetchAdd("f", 0)
			sys.Add(fa)
			for _, m := range consensus.FetchAddMachines(sys, fa, [2]sim.Value{p[0], p[1]}) {
				sys.SpawnMachine(m)
			}
			return sys
		}, p
	}},
	"queue2": {build: func(_, _ int) (explore.Builder, []sim.Value) {
		p := props(2)
		spec := consensus.QueueSymmetric()
		return func() *sim.System {
			sys := sim.NewSystem()
			q := objects.NewQueue("q", "winner")
			sys.Add(q)
			for _, m := range consensus.QueueMachines(sys, q, [2]sim.Value{p[0], p[1]}) {
				sys.SpawnMachine(m)
			}
			sys.DeclareSymmetry(spec)
			return sys
		}, p
	}},
	"sticky": {usesN: true, build: func(_, n int) (explore.Builder, []sim.Value) {
		p := props(n)
		spec := consensus.StickyBitSymmetric(n)
		return func() *sim.System {
			sys := sim.NewSystem()
			sb := objects.NewStickyBit("s")
			sys.Add(sb)
			for _, m := range consensus.StickyBitMachines(sb, p) {
				sys.SpawnMachine(m)
			}
			sys.DeclareSymmetry(spec)
			return sys
		}, p
	}},
	"cas": {usesK: true, usesN: true, build: func(k, n int) (explore.Builder, []sim.Value) {
		p := props(n)
		spec := consensus.CASSymmetric(n)
		return func() *sim.System {
			sys := sim.NewSystem()
			cas := objects.NewCAS("cas", k)
			sys.Add(cas)
			for _, m := range consensus.CASMachines(sys, cas, p) {
				sys.SpawnMachine(m)
			}
			sys.DeclareSymmetry(spec)
			return sys
		}, p
	}},
	"swap": {usesN: true, build: func(_, n int) (explore.Builder, []sim.Value) {
		p := props(n)
		spec := consensus.SwapSymmetric(n)
		return func() *sim.System {
			sys := sim.NewSystem()
			sw := objects.NewSwap("s", nil)
			sys.Add(sw)
			for _, m := range consensus.SwapMachines(sys, sw, p) {
				sys.SpawnMachine(m)
			}
			sys.DeclareSymmetry(spec)
			return sys
		}, p
	}},
	"casdegel": {usesK: true, usesN: true, faultable: true,
		build: func(k, n int) (explore.Builder, []sim.Value) {
			// Degrading leader election (election.DegradingCAS) over a
			// fault-wrapped compare&swap-(k): the decisions are process
			// ids, so the entry carries the election verdict below.
			ids := make([]sim.Value, n)
			for i := range ids {
				ids[i] = i
			}
			return func() *sim.System {
				sys := sim.NewSystem()
				cas := faults.Wrap(objects.NewCAS("cas", k))
				sys.Add(cas)
				for _, m := range election.DegradingCASMachines(sys, cas, n) {
					sys.SpawnMachine(m)
				}
				return sys
			}, ids
		},
		check: func(ids []sim.Value) func(*sim.Result) error {
			return func(res *sim.Result) error { return election.CheckElection(res, ids) }
		}},
	"casdeg": {usesK: true, usesN: true, faultable: true, build: func(k, n int) (explore.Builder, []sim.Value) {
		// Fault-wrapped compare&swap consensus with graceful degradation
		// to registers: the protocol for objfaults experiments.
		p := props(n)
		return func() *sim.System {
			sys := sim.NewSystem()
			cas := faults.Wrap(objects.NewCAS("cas", k))
			sys.Add(cas)
			for _, m := range consensus.DegradingCASMachines(sys, cas, p) {
				sys.SpawnMachine(m)
			}
			return sys
		}, p
	}},
}

// ProtocolNames lists the registry in sorted order (for help text and
// error messages).
func ProtocolNames() []string {
	out := make([]string, 0, len(protocols))
	for name := range protocols {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ParseFaultModes parses a comma-separated fault-mode list
// ("crash,omission,reset,garble").
func ParseFaultModes(s string) ([]sim.FaultMode, error) {
	var modes []sim.FaultMode
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "":
		case "crash":
			modes = append(modes, sim.FaultCrash)
		case "omission":
			modes = append(modes, sim.FaultOmission)
		case "reset":
			modes = append(modes, sim.FaultReset)
		case "garble":
			modes = append(modes, sim.FaultGarble)
		default:
			return nil, fmt.Errorf("unknown fault mode %q", part)
		}
	}
	return modes, nil
}
