package censusd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/distcensus"
	"repro/internal/explore"
	"repro/internal/sim"
)

// Coordinator side of the distributed census. A job that starts while
// remote workers are live is run as a distJob: its frontier roots are
// leased out over the /dist API, delivered summaries are merged in DFS
// root order (bit-identical to a local run), and the lease state
// machine below handles every failure the chaos harness throws at it.
//
// Lease state machine, per root:
//
//	pending --lease--> leased --result(gen ok)--> resolved
//	   ^                  |
//	   |   expiry/err     |  (generation++ on every requeue)
//	   +------------------+
//
// A root's generation is bumped each time it is requeued, so a result
// delivered under a superseded generation — a worker killed mid-lease
// and resurrected after the root was reassigned — is rejected as
// stale (409) and never merged. Deliveries for an already-resolved
// root under the resolving generation are duplicates, dropped
// idempotently. Requeues are attempt-bounded; a root that exhausts the
// budget becomes a RootFailure (coverage deficit), like a poisoned
// root under the local supervisor.

// distDefaultTTL is the default lease duration.
const distDefaultTTL = 10 * time.Second

// distDefaultPoll is the worker poll interval suggested at registration.
const distDefaultPoll = 500 * time.Millisecond

// distDefaultMaxAttempts bounds lease grants per root (expiries and
// worker-reported errors both consume attempts). Higher than the local
// supervisor's budget: losing a worker is routine, not pathological.
const distDefaultMaxAttempts = 6

// distLease is one outstanding lease.
type distLease struct {
	worker  string
	gen     int
	expires time.Time
	// local marks the coordinator's own fallback claim; local claims
	// do not heartbeat and are exempt from expiry.
	local bool
}

// distJob is the lease-scheduling state of one distributed job.
type distJob struct {
	id          string
	plan        *explore.DistPlan
	req         json.RawMessage
	ttl         time.Duration
	maxAttempts int
	prog        *progress
	logf        func(format string, args ...any)

	mu       sync.Mutex
	closed   bool // winding down: grant nothing, revoke everything
	pending  []int
	gen      map[int]int
	leases   map[int]*distLease
	resolved map[int]explore.RootSummary
	failed   map[int]explore.RootFailure
	attempts map[int]int

	staleResults int64
	dupResults   int64
	expiries     int64
	requeues     int64
	remoteRoots  int64
	localRoots   int64

	done     chan struct{}
	doneOnce sync.Once
}

func newDistJob(id string, plan *explore.DistPlan, req json.RawMessage, resumed map[int]explore.RootSummary,
	ttl time.Duration, maxAttempts int, prog *progress, logf func(string, ...any)) *distJob {
	d := &distJob{
		id: id, plan: plan, req: req, ttl: ttl, maxAttempts: maxAttempts,
		prog: prog, logf: logf,
		gen:      make(map[int]int),
		leases:   make(map[int]*distLease),
		resolved: make(map[int]explore.RootSummary),
		failed:   make(map[int]explore.RootFailure),
		attempts: make(map[int]int),
		done:     make(chan struct{}),
	}
	for _, root := range plan.Roots() {
		if r, ok := resumed[root]; ok {
			d.resolved[root] = r
			continue
		}
		d.gen[root] = 1
		d.pending = append(d.pending, root)
	}
	d.mu.Lock()
	d.maybeDoneLocked()
	d.mu.Unlock()
	return d
}

// maybeDoneLocked closes done once every root is resolved or failed.
func (d *distJob) maybeDoneLocked() {
	if len(d.pending) == 0 && len(d.leases) == 0 {
		d.doneOnce.Do(func() { close(d.done) })
	}
}

// close stops the job: no more leases, every outstanding heartbeat and
// delivery answered gone/stale from here on.
func (d *distJob) close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
}

// lease grants the next pending root to worker (nil: nothing to grant).
func (d *distJob) lease(worker string, now time.Time, local bool) *distcensus.Lease {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || len(d.pending) == 0 {
		return nil
	}
	root := d.pending[0]
	d.pending = d.pending[1:]
	g := d.gen[root]
	exp := now.Add(d.ttl)
	if local {
		exp = now.Add(24 * time.Hour)
	}
	d.leases[root] = &distLease{worker: worker, gen: g, expires: exp, local: local}
	d.attempts[root]++
	d.prog.observe(explore.Event{Kind: explore.EventClaim, Root: root, Attempt: d.attempts[root]})
	return &distcensus.Lease{
		JobID: d.id, Root: root, Generation: g,
		Prefix: d.plan.Prefix(root), Request: d.req,
		OptionsFP: d.plan.OptionsFingerprint(),
		TTLMillis: int(d.ttl / time.Millisecond),
	}
}

// heartbeat renews a lease; false means it is gone (expired+requeued,
// resolved, or the job is winding down) and the worker should abandon
// the attempt.
func (d *distJob) heartbeat(root, gen int, now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	l := d.leases[root]
	if d.closed || l == nil || l.gen != gen {
		return false
	}
	l.expires = now.Add(d.ttl)
	return true
}

// deliver applies one result delivery and returns the verdict
// (ResultAccepted / ResultDuplicate / ResultStale).
func (d *distJob) deliver(worker string, root, gen int, sum explore.RootSummary, errStr string, local bool) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	cur, known := d.gen[root]
	if !known || gen != cur {
		// The generation guard: this attempt was superseded while the
		// deliverer was dead or partitioned. Counting it would
		// double-count the root (its current attempt merges too).
		d.staleResults++
		d.logf("job %s root %d: stale result from %s (gen %d, current %d); rejected", d.id, root, worker, gen, cur)
		return distcensus.ResultStale
	}
	if _, ok := d.resolved[root]; ok {
		d.dupResults++
		return distcensus.ResultDuplicate
	}
	if _, ok := d.failed[root]; ok {
		d.dupResults++
		return distcensus.ResultDuplicate
	}
	delete(d.leases, root)
	if errStr != "" {
		d.requeueLocked(root, fmt.Sprintf("worker %s: %s", worker, errStr))
		d.maybeDoneLocked()
		return distcensus.ResultAccepted
	}
	d.resolved[root] = sum
	if local {
		d.localRoots++
	} else {
		d.remoteRoots++
	}
	d.prog.observe(explore.Event{Kind: explore.EventResolved, Root: root})
	d.maybeDoneLocked()
	return distcensus.ResultAccepted
}

// requeueLocked records a failed attempt: bump the generation (late
// results of the old attempt become stale) and either requeue the root
// or, past the attempt budget, write it off as a RootFailure.
func (d *distJob) requeueLocked(root int, why string) {
	if d.attempts[root] >= d.maxAttempts {
		d.failed[root] = explore.RootFailure{
			Prefix: d.plan.Prefix(root), Attempts: d.attempts[root], Err: why,
		}
		delete(d.gen, root)
		d.prog.observe(explore.Event{Kind: explore.EventFailed, Root: root, Attempt: d.attempts[root], Err: why})
		d.logf("job %s root %d: abandoned after %d attempts: %s", d.id, root, d.attempts[root], why)
		return
	}
	d.gen[root]++
	d.requeues++
	d.pending = append(d.pending, root)
	d.prog.observe(explore.Event{Kind: explore.EventRequeue, Root: root, Attempt: d.attempts[root], Err: why})
}

// expire requeues every remote lease whose TTL has run out, returning
// how many it reaped.
func (d *distJob) expire(now time.Time) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for root, l := range d.leases {
		if l.local || now.Before(l.expires) {
			continue
		}
		delete(d.leases, root)
		d.expiries++
		n++
		d.logf("job %s root %d: lease held by %s expired (gen %d); requeueing under gen %d",
			d.id, root, l.worker, l.gen, d.gen[root]+1)
		d.requeueLocked(root, fmt.Sprintf("lease held by %s expired", l.worker))
	}
	if n > 0 {
		d.maybeDoneLocked()
	}
	return n
}

// claimLocal claims the next pending root for the coordinator's own
// fallback executor.
func (d *distJob) claimLocal(now time.Time) (root, gen int, ok bool) {
	l := d.lease("local", now, true)
	if l == nil {
		return 0, 0, false
	}
	return l.Root, l.Generation, true
}

// releaseLocal returns a locally claimed root to the queue unexplored
// (coordinator shutdown mid-exploration). The generation is not
// bumped: nothing of this attempt can ever be delivered late.
func (d *distJob) releaseLocal(root int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if l := d.leases[root]; l != nil && l.local {
		delete(d.leases, root)
		d.attempts[root]--
		d.pending = append(d.pending, root)
	}
}

// resolvedCopy snapshots the resolved map for checkpointing/merging.
func (d *distJob) resolvedCopy() map[int]explore.RootSummary {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[int]explore.RootSummary, len(d.resolved))
	for k, v := range d.resolved {
		out[k] = v
	}
	return out
}

// failedCopy snapshots the abandoned roots.
func (d *distJob) failedCopy() map[int]explore.RootFailure {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[int]explore.RootFailure, len(d.failed))
	for k, v := range d.failed {
		out[k] = v
	}
	return out
}

// distJobView is the jobView's distribution block.
type distJobView struct {
	Pending      int             `json:"pending"`
	Leases       []distLeaseView `json:"leases,omitempty"`
	Resolved     int             `json:"resolved"`
	RemoteRoots  int64           `json:"remote_roots"`
	LocalRoots   int64           `json:"local_roots"`
	StaleResults int64           `json:"stale_results"`
	DupResults   int64           `json:"duplicate_results"`
	Expiries     int64           `json:"lease_expiries"`
	Requeues     int64           `json:"requeues"`
}

type distLeaseView struct {
	Root       int       `json:"root"`
	Worker     string    `json:"worker"`
	Generation int       `json:"generation"`
	Expires    time.Time `json:"expires"`
}

func (d *distJob) view() *distJobView {
	d.mu.Lock()
	defer d.mu.Unlock()
	v := &distJobView{
		Pending: len(d.pending), Resolved: len(d.resolved),
		RemoteRoots: d.remoteRoots, LocalRoots: d.localRoots,
		StaleResults: d.staleResults, DupResults: d.dupResults,
		Expiries: d.expiries, Requeues: d.requeues,
	}
	for root, l := range d.leases {
		v.Leases = append(v.Leases, distLeaseView{Root: root, Worker: l.worker, Generation: l.gen, Expires: l.expires})
	}
	sort.Slice(v.Leases, func(a, b int) bool { return v.Leases[a].Root < v.Leases[b].Root })
	return v
}

// distState is the server's worker registry and live distJob table.
type distState struct {
	ttl         time.Duration
	poll        time.Duration
	maxAttempts int

	mu      sync.Mutex
	workers map[string]time.Time // worker id -> last contact
	jobs    map[string]*distJob
	// Daemon-lifetime counters (distJob counters die with the job).
	staleResults int64
	dupResults   int64
	expiries     int64
	remoteRoots  int64
}

func newDistState(ttl, poll time.Duration, maxAttempts int) *distState {
	if ttl <= 0 {
		ttl = distDefaultTTL
	}
	if poll <= 0 {
		poll = distDefaultPoll
	}
	if maxAttempts <= 0 {
		maxAttempts = distDefaultMaxAttempts
	}
	return &distState{
		ttl: ttl, poll: poll, maxAttempts: maxAttempts,
		workers: make(map[string]time.Time),
		jobs:    make(map[string]*distJob),
	}
}

// touch records worker contact (registration is implicit: a coordinator
// restart re-learns its fleet from their next polls).
func (ds *distState) touch(worker string, now time.Time) {
	if worker == "" {
		return
	}
	ds.mu.Lock()
	ds.workers[worker] = now
	ds.mu.Unlock()
}

// liveWorkers counts workers heard from within two lease TTLs.
func (ds *distState) liveWorkers(now time.Time) int {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	n := 0
	for _, seen := range ds.workers {
		if now.Sub(seen) <= 2*ds.ttl {
			n++
		}
	}
	return n
}

func (ds *distState) add(d *distJob) { ds.mu.Lock(); ds.jobs[d.id] = d; ds.mu.Unlock() }
func (ds *distState) job(id string) *distJob {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.jobs[id]
}

// remove retires a finished distJob, folding its counters into the
// daemon-lifetime totals.
func (ds *distState) remove(id string) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if d := ds.jobs[id]; d != nil {
		d.mu.Lock()
		ds.staleResults += d.staleResults
		ds.dupResults += d.dupResults
		ds.expiries += d.expiries
		ds.remoteRoots += d.remoteRoots
		d.mu.Unlock()
	}
	delete(ds.jobs, id)
}

// nextLease scans live distJobs in sorted-id order for a grantable
// root.
func (ds *distState) nextLease(worker string, now time.Time) *distcensus.Lease {
	ds.mu.Lock()
	ids := make([]string, 0, len(ds.jobs))
	for id := range ds.jobs {
		ids = append(ids, id)
	}
	ds.mu.Unlock()
	sort.Strings(ids)
	for _, id := range ids {
		if d := ds.job(id); d != nil {
			if l := d.lease(worker, now, false); l != nil {
				return l
			}
		}
	}
	return nil
}

// totals sums the lifetime counters plus every live job's.
func (ds *distState) totals() (stale, dup, expiries, remote int64, leases int) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	stale, dup, expiries, remote = ds.staleResults, ds.dupResults, ds.expiries, ds.remoteRoots
	for _, d := range ds.jobs {
		d.mu.Lock()
		stale += d.staleResults
		dup += d.dupResults
		expiries += d.expiries
		remote += d.remoteRoots
		leases += len(d.leases)
		d.mu.Unlock()
	}
	return
}

// runJobDistributed executes one job by leasing its frontier roots to
// remote workers, falling back to local exploration whenever the fleet
// goes quiet. Returns false when the exploration cannot be
// frontier-split — the caller owns the plain local path and its exact
// cap semantics.
func (s *Server) runJobDistributed(ctx, jobCtx context.Context, js *jobState, id string, req Request,
	builder explore.Builder, props []sim.Value, settle func(mutate func(j *Job))) bool {
	plan, ok := explore.NewDistPlan(builder, req.Options(), req.Check(props))
	if !ok {
		return false
	}
	fail := func(err error) {
		settle(func(j *Job) {
			j.State = StateFailed
			j.Error = err.Error()
			t := time.Now().UTC()
			j.FinishedAt = &t
		})
	}
	ckPath := s.store.CheckpointPath(id)
	resumed, warn, err := plan.LoadCheckpoint(ckPath)
	if err != nil {
		fail(err)
		return true
	}
	reqJSON, err := json.Marshal(req)
	if err != nil {
		fail(err)
		return true
	}
	roots := plan.Roots()
	dj := newDistJob(id, plan, reqJSON, resumed, s.dist.ttl, s.dist.maxAttempts, &js.progress, s.cfg.Logf)
	s.dist.add(dj)
	defer s.dist.remove(id)
	s.cfg.Logf("job %s: distributing %d roots (%d resumed from checkpoint, %d live workers)",
		id, len(roots), len(resumed), s.dist.liveWorkers(time.Now()))

	saves := 0
	lastSaved := len(resumed)
	saveCk := func() {
		done := dj.resolvedCopy()
		if len(done) == lastSaved {
			return
		}
		if err := plan.SaveCheckpoint(ckPath, done); err != nil {
			s.cfg.Logf("job %s: checkpoint save: %v", id, err)
			return
		}
		lastSaved = len(done)
		saves++
	}
	ckInfo := func() *CheckpointInfo {
		return &CheckpointInfo{
			TotalRoots: len(roots), ResumedRoots: len(resumed), Saves: saves, Warning: warn,
		}
	}

	tick := time.NewTicker(s.dist.ttl / 4)
	defer tick.Stop()
	for {
		select {
		case <-jobCtx.Done():
			dj.close()
			saveCk()
			c := plan.Merge(dj.resolvedCopy(), dj.failedCopy())
			s.settleCancelled(js, id, req, c, ckInfo(), settle)
			return true
		case <-dj.done:
			saveCk()
			c := plan.Merge(dj.resolvedCopy(), dj.failedCopy())
			result := ResultFrom(req.Protocol, *req.Crashes, req.ObjFaults, c, nil)
			info := ckInfo()
			settle(func(j *Job) {
				j.State = StateDone
				j.Result = result
				j.Checkpoint = info
				t := time.Now().UTC()
				j.FinishedAt = &t
			})
			v := dj.view()
			s.cfg.Logf("job %s done distributed: %d complete, %d incomplete, %d violations (%d roots remote, %d local, %d requeues, %d stale rejected)",
				id, c.Complete, c.Incomplete, c.ViolationRuns, v.RemoteRoots, v.LocalRoots, v.Requeues, v.StaleResults)
			return true
		case <-tick.C:
			now := time.Now()
			dj.expire(now)
			saveCk()
			// Graceful degradation: with no live workers the coordinator
			// explores pending roots itself, one per claim, re-checking
			// the fleet between roots so a returning worker takes over.
			for s.dist.liveWorkers(time.Now()) == 0 && jobCtx.Err() == nil {
				root, gen, ok := dj.claimLocal(time.Now())
				if !ok {
					break
				}
				sum, cancelled := plan.ExploreRootLocal(jobCtx, root)
				if cancelled {
					dj.releaseLocal(root)
					break
				}
				dj.deliver("local", root, gen, sum, "", true)
			}
		}
	}
}

// settleCancelled resolves a job whose context ended mid-run,
// disambiguating the three causes exactly like the local path: daemon
// drain re-queues (the checkpoint resumes it), an explicit cancel is
// the terminal cancelled state, a job timeout fails it.
func (s *Server) settleCancelled(js *jobState, id string, req Request, c *explore.Census,
	info *CheckpointInfo, settle func(mutate func(j *Job))) {
	switch {
	case s.draining():
		settle(func(j *Job) {
			j.State = StateQueued
			j.Checkpoint = info
			j.StartedAt = nil
			s.queued++
		})
		s.cfg.Logf("job %s checkpointed and re-queued for the next run (drain)", id)
	case js.cancelRequested():
		result := ResultFrom(req.Protocol, *req.Crashes, req.ObjFaults, c, nil)
		settle(func(j *Job) {
			j.State = StateCancelled
			j.Result = result
			j.Checkpoint = info
			t := time.Now().UTC()
			j.FinishedAt = &t
		})
		s.cfg.Logf("job %s cancelled (checkpoint retained; resubmit to resume)", id)
	default:
		settle(func(j *Job) {
			j.State = StateFailed
			j.Error = fmt.Sprintf("job timeout after %ds (checkpoint retained; resubmit to resume)", req.TimeoutSec)
			j.Checkpoint = info
			t := time.Now().UTC()
			j.FinishedAt = &t
		})
	}
}

// distHandlers mounts the /dist API onto mux.
func (s *Server) distHandlers(mux *http.ServeMux) {
	mux.HandleFunc("POST "+distcensus.PathRegister, func(w http.ResponseWriter, r *http.Request) {
		var req distcensus.RegisterRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.WorkerID == "" {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad register body"})
			return
		}
		s.dist.touch(req.WorkerID, time.Now())
		s.cfg.Logf("worker %s registered", req.WorkerID)
		writeJSON(w, http.StatusOK, distcensus.RegisterReply{
			PollMillis:     int(s.dist.poll / time.Millisecond),
			LeaseTTLMillis: int(s.dist.ttl / time.Millisecond),
		})
	})
	mux.HandleFunc("POST "+distcensus.PathLease, func(w http.ResponseWriter, r *http.Request) {
		var req distcensus.LeaseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.WorkerID == "" {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad lease body"})
			return
		}
		now := time.Now()
		s.dist.touch(req.WorkerID, now)
		if s.draining() {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		l := s.dist.nextLease(req.WorkerID, now)
		if l == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, l)
	})
	mux.HandleFunc("POST "+distcensus.PathHeartbeat, func(w http.ResponseWriter, r *http.Request) {
		var req distcensus.HeartbeatRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad heartbeat body"})
			return
		}
		now := time.Now()
		s.dist.touch(req.WorkerID, now)
		d := s.dist.job(req.JobID)
		if d == nil || !d.heartbeat(req.Root, req.Generation, now) {
			http.Error(w, "lease gone", http.StatusConflict)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "renewed"})
	})
	mux.HandleFunc("POST "+distcensus.PathResult, func(w http.ResponseWriter, r *http.Request) {
		var req distcensus.ResultRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad result body"})
			return
		}
		s.dist.touch(req.WorkerID, time.Now())
		d := s.dist.job(req.JobID)
		if d == nil {
			// The job settled (or never distributed): any late delivery is
			// by definition superseded.
			s.dist.mu.Lock()
			s.dist.staleResults++
			s.dist.mu.Unlock()
			http.Error(w, "stale: job not distributing", http.StatusConflict)
			return
		}
		status := d.deliver(req.WorkerID, req.Root, req.Generation, req.Summary, req.Err, false)
		if status == distcensus.ResultStale {
			http.Error(w, "stale: generation superseded", http.StatusConflict)
			return
		}
		writeJSON(w, http.StatusOK, distcensus.ResultReply{Status: status})
	})
}
