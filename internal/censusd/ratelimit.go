package censusd

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket over POST /jobs. It is the
// first of the two admission guards — the second is queue-depth
// shedding — so one chatty client exhausts its own budget before it
// can exhaust the shared queue. Clients are keyed by the X-Client-ID
// header when present (workers and scripted callers identify
// themselves), else by remote host.
type rateLimiter struct {
	rate  float64 // tokens per second (0: disabled)
	burst float64

	mu      sync.Mutex
	buckets map[string]*rateBucket
	now     func() time.Time // test seam
	denied  int64
}

type rateBucket struct {
	tokens float64
	last   time.Time
}

// maxRateBuckets bounds the client table; at the cap, stale buckets
// (full, hence inert) are dropped before admitting a new client.
const maxRateBuckets = 4096

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst <= 0 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*rateBucket),
		now:     time.Now,
	}
}

// allow consumes one token from key's bucket. When denied, retryAfter
// is the wait (rounded up to whole seconds) until a token accrues.
func (rl *rateLimiter) allow(key string) (ok bool, retryAfter time.Duration) {
	if rl == nil || rl.rate <= 0 {
		return true, 0
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := rl.now()
	b := rl.buckets[key]
	if b == nil {
		if len(rl.buckets) >= maxRateBuckets {
			rl.evictFullLocked(now)
		}
		b = &rateBucket{tokens: rl.burst, last: now}
		rl.buckets[key] = b
	}
	b.tokens = math.Min(rl.burst, b.tokens+now.Sub(b.last).Seconds()*rl.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	rl.denied++
	wait := time.Duration((1 - b.tokens) / rl.rate * float64(time.Second))
	return false, wait.Truncate(time.Second) + time.Second
}

// evictFullLocked drops buckets that have fully refilled — clients
// idle long enough that forgetting them is behavior-neutral.
func (rl *rateLimiter) evictFullLocked(now time.Time) {
	for key, b := range rl.buckets {
		if math.Min(rl.burst, b.tokens+now.Sub(b.last).Seconds()*rl.rate) >= rl.burst {
			delete(rl.buckets, key)
		}
	}
}

func (rl *rateLimiter) deniedCount() int64 {
	if rl == nil {
		return 0
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.denied
}

// clientKey identifies the submitting client for rate limiting.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
