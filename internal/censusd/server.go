package censusd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/explore"
)

// Config shapes a Server.
type Config struct {
	// Dir is the job store directory.
	Dir string
	// Workers is the number of jobs run concurrently (default 2). Each
	// job additionally uses its request's engine workers.
	Workers int
	// QueueDepth bounds the admission backlog: submissions beyond this
	// many queued jobs are shed with 429 (default 16).
	QueueDepth int
	// CheckpointEvery is how many completed subtree roots elapse
	// between checkpoint saves (default 1 — maximum durability; the
	// daemon's whole point is surviving kills).
	CheckpointEvery int
	// Supervision is the per-job supervisor template (retry budget,
	// backoff, stall watchdog). Stats and OnEvent are owned per job and
	// must be nil here.
	Supervision explore.Supervise
	// Logf receives operational log lines (default os.Stderr).
	Logf func(format string, args ...any)

	// LeaseTTL is the distributed work-item lease duration (default
	// 10s); a worker that stops renewing for this long loses the item.
	LeaseTTL time.Duration
	// WorkerPoll is the lease-poll interval suggested to workers at
	// registration (default 500ms).
	WorkerPoll time.Duration
	// DistMaxAttempts bounds lease grants per root before the root is
	// written off as a coverage deficit (default 6).
	DistMaxAttempts int

	// StoreMaxJobs bounds how many terminal (done/failed/cancelled)
	// jobs the result cache retains; the least recently accessed are
	// evicted past it (0: unbounded).
	StoreMaxJobs int
	// StoreMaxBytes bounds the terminal jobs' on-disk footprint —
	// records plus checkpoints (0: unbounded).
	StoreMaxBytes int64

	// RatePerSec enables per-client rate limiting of POST /jobs at this
	// sustained rate (0: disabled); RateBurst is the bucket size
	// (default 1 when limiting).
	RatePerSec float64
	RateBurst  int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.Logf == nil {
		c.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "censusd: "+format+"\n", args...)
		}
	}
	return c
}

// eventRec is one supervisor event as exposed over /jobs/{id}.
type eventRec struct {
	Kind    string `json:"kind"`
	Root    int    `json:"root"`
	Attempt int    `json:"attempt,omitempty"`
	Err     string `json:"err,omitempty"`
}

// maxEventRing bounds the per-job recent-event list.
const maxEventRing = 32

// progress is a job's live telemetry, fed by the supervisor's OnEvent
// hook from exploration worker goroutines.
type progress struct {
	mu        sync.Mutex
	attempts  int64
	retries   int64
	requeues  int64
	rootsDone int64
	failed    int64
	recent    []eventRec
}

func (p *progress) observe(e explore.Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch e.Kind {
	case explore.EventClaim:
		p.attempts++
	case explore.EventResolved:
		p.rootsDone++
	case explore.EventRetry:
		p.retries++
	case explore.EventRequeue:
		p.requeues++
	case explore.EventFailed:
		p.failed++
	}
	p.recent = append(p.recent, eventRec{Kind: e.Kind.String(), Root: e.Root, Attempt: e.Attempt, Err: e.Err})
	if len(p.recent) > maxEventRing {
		p.recent = p.recent[len(p.recent)-maxEventRing:]
	}
}

// progressView is the JSON rendering of progress.
type progressView struct {
	Attempts  int64      `json:"attempts"`
	Retries   int64      `json:"retries"`
	Requeues  int64      `json:"requeues"`
	RootsDone int64      `json:"roots_done"`
	Failed    int64      `json:"failed_roots"`
	Recent    []eventRec `json:"recent_events,omitempty"`
}

func (p *progress) view() *progressView {
	p.mu.Lock()
	defer p.mu.Unlock()
	return &progressView{
		Attempts: p.attempts, Retries: p.retries, Requeues: p.requeues,
		RootsDone: p.rootsDone, Failed: p.failed,
		Recent: append([]eventRec(nil), p.recent...),
	}
}

// jobState is a Job plus its live telemetry and cancellation hook.
type jobState struct {
	job      *Job
	progress progress

	// cmu guards the cancellation state (never held with Server.mu
	// acquired after it).
	cmu       sync.Mutex
	cancel    context.CancelFunc
	cancelReq bool
	// access is the LRU clock for result-cache eviction (guarded by
	// Server.mu).
	access time.Time
}

func (js *jobState) setCancel(fn context.CancelFunc) {
	js.cmu.Lock()
	js.cancel = fn
	js.cmu.Unlock()
}

// requestCancel flips the cancel flag and fires the job's context (a
// no-op if the job is not running right now).
func (js *jobState) requestCancel() {
	js.cmu.Lock()
	js.cancelReq = true
	fn := js.cancel
	js.cmu.Unlock()
	if fn != nil {
		fn()
	}
}

func (js *jobState) cancelRequested() bool {
	js.cmu.Lock()
	defer js.cmu.Unlock()
	return js.cancelReq
}

// Server is the census daemon core: the job table, the bounded
// admission queue, and the worker pool. HTTP is a thin layer over it
// (Handler); cmd/censusd adds listening and signal handling.
type Server struct {
	cfg   Config
	store *Store

	ctx context.Context // drain: cancelled means stop admitting and wind down

	mu     sync.Mutex
	jobs   map[string]*jobState
	queued int // admission backlog (jobs in StateQueued)

	queue chan string
	wg    sync.WaitGroup

	dist    *distState
	limiter *rateLimiter

	evictedJobs  int64 // guarded by mu
	evictedBytes int64
}

// New opens the store, recovers persisted jobs — running jobs (in
// flight when the previous process died) are re-queued to resume from
// their checkpoints — and returns a server ready to Start.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Supervision.Stats != nil || cfg.Supervision.OnEvent != nil {
		return nil, fmt.Errorf("censusd: Config.Supervision.Stats/OnEvent are per-job; set them nil")
	}
	store, err := OpenStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	jobs, warnings, err := store.LoadAll()
	if err != nil {
		return nil, err
	}
	for _, w := range warnings {
		cfg.Logf("recovery: %s", w)
	}
	s := &Server{
		cfg:     cfg,
		store:   store,
		jobs:    make(map[string]*jobState, len(jobs)),
		queue:   make(chan string, cfg.QueueDepth+len(jobs)+cfg.Workers+1),
		dist:    newDistState(cfg.LeaseTTL, cfg.WorkerPoll, cfg.DistMaxAttempts),
		limiter: newRateLimiter(cfg.RatePerSec, cfg.RateBurst),
	}
	for _, j := range jobs {
		if j.State == StateRunning {
			// The previous daemon died with this job in flight: its
			// checkpoint holds every root completed before the kill.
			j.State = StateQueued
			j.Restarts++
			if err := store.Save(j); err != nil {
				return nil, err
			}
			cfg.Logf("recovery: job %s re-queued (restart %d), resuming from checkpoint", j.ID, j.Restarts)
		}
		s.jobs[j.ID] = &jobState{job: j}
		if j.State == StateQueued {
			s.queued++
			s.queue <- j.ID
		}
	}
	return s, nil
}

// Start launches the worker pool. ctx is the drain context: cancelling
// it stops admission, interrupts running jobs at subtree-root
// granularity (flushing their checkpoints), and winds the pool down.
// Call Drain to wait for the wind-down.
func (s *Server) Start(ctx context.Context) {
	s.ctx = ctx
	for w := 0; w < s.cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case id := <-s.queue:
					s.runJob(ctx, id)
				}
			}
		}()
	}
}

// Drain blocks until every worker has stopped. Jobs interrupted
// mid-run have been checkpointed and persisted back to queued, ready
// for the next daemon to resume.
func (s *Server) Drain() {
	s.wg.Wait()
}

// draining reports whether the drain context has fired.
func (s *Server) draining() bool {
	return s.ctx != nil && s.ctx.Err() != nil
}

// Submit admits a census request. The returned code is the HTTP-style
// outcome: 201 newly admitted, 200 attached to an existing job or
// served from the result cache, 429 shed (queue full — retryable),
// 503 draining (retryable elsewhere).
func (s *Server) Submit(req Request) (job *Job, code int, err error) {
	if err := req.Normalize(); err != nil {
		return nil, http.StatusBadRequest, err
	}
	if s.draining() {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("daemon is draining; resubmit after restart")
	}
	id := req.ID()
	s.mu.Lock()
	defer s.mu.Unlock()
	if js, ok := s.jobs[id]; ok {
		switch js.job.State {
		case StateFailed, StateCancelled:
			// Resubmission of a failed or cancelled job re-queues it; the
			// retained checkpoint makes this a resume, not a restart.
			if s.queued >= s.cfg.QueueDepth {
				return nil, http.StatusTooManyRequests, fmt.Errorf("admission queue full (%d queued); retry later", s.queued)
			}
			prev := js.job.State
			js.job.State = StateQueued
			js.job.Error = ""
			js.job.Result = nil
			js.job.FinishedAt = nil
			js.cmu.Lock()
			js.cancelReq = false
			js.cmu.Unlock()
			if err := s.store.Save(js.job); err != nil {
				return nil, http.StatusInternalServerError, err
			}
			s.queued++
			s.queue <- id
			s.cfg.Logf("job %s re-queued after %s (identity %q)", id, prev, js.job.Identity)
			return js.job, http.StatusOK, nil
		default:
			// Queued/running: attach. Done: serve the durable cache.
			return js.job, http.StatusOK, nil
		}
	}
	if s.queued >= s.cfg.QueueDepth {
		return nil, http.StatusTooManyRequests, fmt.Errorf("admission queue full (%d queued); retry later", s.queued)
	}
	j := &Job{
		ID:          id,
		Identity:    req.Identity(),
		Request:     req,
		State:       StateQueued,
		SubmittedAt: time.Now().UTC(),
	}
	// Durability before visibility: the record is on disk before the
	// job is queued, so a kill between the two re-queues it on restart.
	if err := s.store.Save(j); err != nil {
		return nil, http.StatusInternalServerError, err
	}
	s.jobs[id] = &jobState{job: j}
	s.queued++
	s.queue <- id
	s.cfg.Logf("job %s admitted (identity %q, %d queued)", id, j.Identity, s.queued)
	return j, http.StatusCreated, nil
}

// runJob executes one job under the supervisor with panic isolation.
func (s *Server) runJob(ctx context.Context, id string) {
	s.mu.Lock()
	js, ok := s.jobs[id]
	if !ok || js.job.State != StateQueued {
		// Stale queue entry (e.g. the job was settled by an earlier
		// duplicate enqueue); nothing to do.
		s.mu.Unlock()
		return
	}
	js.job.State = StateRunning
	now := time.Now().UTC()
	js.job.StartedAt = &now
	s.queued--
	if err := s.store.Save(js.job); err != nil {
		s.cfg.Logf("job %s: persist running state: %v", id, err)
	}
	req := js.job.Request
	s.mu.Unlock()

	settle := func(mutate func(j *Job)) {
		s.mu.Lock()
		defer s.mu.Unlock()
		mutate(js.job)
		if err := s.store.Save(js.job); err != nil {
			s.cfg.Logf("job %s: persist: %v", id, err)
		}
	}

	// Panic isolation: one poisoned job must not take a pool worker (or
	// the daemon) down. The supervisor already retries panics inside
	// the exploration; this guards everything around it.
	defer func() {
		if p := recover(); p != nil {
			s.cfg.Logf("job %s: panic isolated: %v", id, p)
			settle(func(j *Job) {
				j.State = StateFailed
				j.Error = fmt.Sprintf("panic: %v", p)
				t := time.Now().UTC()
				j.FinishedAt = &t
			})
		}
	}()

	// Per-job cancellation: DELETE /jobs/{id} fires this context; the
	// exploration drains at subtree-root granularity and the settle
	// switch below lands the job in the cancelled state.
	jobCtx, cancelJob := context.WithCancel(ctx)
	defer cancelJob()
	js.setCancel(cancelJob)
	if req.TimeoutSec > 0 {
		var cancelT context.CancelFunc
		jobCtx, cancelT = context.WithTimeout(jobCtx, time.Duration(req.TimeoutSec)*time.Second)
		defer cancelT()
	}

	builder, props, err := req.Build()
	if err != nil {
		settle(func(j *Job) {
			j.State = StateFailed
			j.Error = err.Error()
			t := time.Now().UTC()
			j.FinishedAt = &t
		})
		return
	}

	// Distributed path when remote workers are live; graceful
	// degradation is the fall-through — with no fleet (or an
	// unsplittable tree) the job runs exactly as it always has,
	// locally. Both paths share the checkpoint file, so a job can
	// alternate between them across daemon restarts.
	if s.dist.liveWorkers(time.Now()) > 0 {
		if s.runJobDistributed(ctx, jobCtx, js, id, req, builder, props, settle) {
			s.evict()
			return
		}
	}

	var supStats explore.SuperviseStats
	sup := s.cfg.Supervision
	sup.Stats = &supStats
	sup.OnEvent = js.progress.observe
	opts := req.Options()
	opts.Context = jobCtx
	opts.Supervision = &sup

	c, ckStats, err := explore.RunCheckpointed(builder, opts, req.Check(props), explore.Checkpoint{
		Path:   s.store.CheckpointPath(id),
		Every:  s.cfg.CheckpointEvery,
		Resume: true,
	})
	ckInfo := &CheckpointInfo{
		TotalRoots:   ckStats.TotalRoots,
		ResumedRoots: ckStats.ResumedRoots,
		Saves:        ckStats.Saves,
		Warning:      ckStats.Warning,
	}
	switch {
	case err != nil:
		settle(func(j *Job) {
			j.State = StateFailed
			j.Error = err.Error()
			j.Checkpoint = ckInfo
			t := time.Now().UTC()
			j.FinishedAt = &t
		})
	case c.Cancelled:
		// Drain, explicit cancel, or job timeout — the checkpoint is
		// retained in every case.
		s.settleCancelled(js, id, req, c, ckInfo, settle)
	default:
		result := ResultFrom(req.Protocol, *req.Crashes, req.ObjFaults, c, &supStats)
		settle(func(j *Job) {
			j.State = StateDone
			j.Result = result
			j.Checkpoint = ckInfo
			t := time.Now().UTC()
			j.FinishedAt = &t
		})
		s.cfg.Logf("job %s done: %d complete, %d incomplete, %d violations (resumed %d/%d roots)",
			id, c.Complete, c.Incomplete, c.ViolationRuns, ckStats.ResumedRoots, ckStats.TotalRoots)
	}
	s.evict()
}

// jobView is the /jobs/{id} response: the persisted record plus live
// progress and, while distributing, the lease table.
type jobView struct {
	*Job
	Progress *progressView `json:"progress,omitempty"`
	Dist     *distJobView  `json:"dist,omitempty"`
}

// Job returns a point-in-time view of one job (nil if unknown).
// Viewing a job refreshes its eviction clock: polled jobs are the last
// to be evicted from the result cache.
func (s *Server) Job(id string) *jobView {
	s.mu.Lock()
	js, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil
	}
	js.access = time.Now()
	cp := *js.job
	s.mu.Unlock()
	v := &jobView{Job: &cp, Progress: js.progress.view()}
	if d := s.dist.job(id); d != nil {
		v.Dist = d.view()
	}
	return v
}

// Cancel cancels a job: a queued job settles immediately, a running
// job's context fires (the exploration drains, outstanding worker
// leases are revoked via the gone/stale answers, and the job settles
// cancelled with its partial census). The checkpoint is retained —
// resubmitting the identical request resumes. Terminal jobs conflict.
func (s *Server) Cancel(id string) (code int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[id]
	if !ok {
		return http.StatusNotFound, fmt.Errorf("no such job")
	}
	switch js.job.State {
	case StateQueued:
		js.requestCancel() // flags the state for a racing runJob pickup
		js.job.State = StateCancelled
		t := time.Now().UTC()
		js.job.FinishedAt = &t
		s.queued--
		if err := s.store.Save(js.job); err != nil {
			return http.StatusInternalServerError, err
		}
		s.cfg.Logf("job %s cancelled while queued", id)
		return http.StatusOK, nil
	case StateRunning:
		js.requestCancel()
		s.cfg.Logf("job %s: cancellation requested", id)
		return http.StatusAccepted, nil
	default:
		return http.StatusConflict, fmt.Errorf("job already %s", js.job.State)
	}
}

// evict enforces the result-cache bounds: terminal jobs beyond
// StoreMaxJobs / StoreMaxBytes are deleted (record, checkpoint, and
// dedup entry), least recently accessed first.
func (s *Server) evict() {
	if s.cfg.StoreMaxJobs <= 0 && s.cfg.StoreMaxBytes <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	type cand struct {
		id     string
		access time.Time
		size   int64
	}
	var cands []cand
	var bytes int64
	for id, js := range s.jobs {
		if !terminalState(js.job.State) {
			continue
		}
		at := js.access
		if at.IsZero() && js.job.FinishedAt != nil {
			at = *js.job.FinishedAt
		}
		sz := s.store.Size(id)
		cands = append(cands, cand{id: id, access: at, size: sz})
		bytes += sz
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].access.Before(cands[b].access) })
	for len(cands) > 0 &&
		((s.cfg.StoreMaxJobs > 0 && len(cands) > s.cfg.StoreMaxJobs) ||
			(s.cfg.StoreMaxBytes > 0 && bytes > s.cfg.StoreMaxBytes)) {
		c := cands[0]
		cands = cands[1:]
		s.store.Delete(c.id)
		delete(s.jobs, c.id)
		bytes -= c.size
		s.evictedJobs++
		s.evictedBytes += c.size
		s.cfg.Logf("job %s evicted from result cache (%d bytes reclaimed)", c.id, c.size)
	}
}

// Jobs lists every job, oldest first.
func (s *Server) Jobs() []*jobView {
	s.mu.Lock()
	states := make([]*jobState, 0, len(s.jobs))
	views := make([]*jobView, 0, len(s.jobs))
	for _, js := range s.jobs {
		cp := *js.job
		states = append(states, js)
		views = append(views, &jobView{Job: &cp})
	}
	s.mu.Unlock()
	for i, js := range states {
		views[i].Progress = js.progress.view()
	}
	sort.Slice(views, func(a, b int) bool { return views[a].SubmittedAt.Before(views[b].SubmittedAt) })
	return views
}

// health is the /healthz response.
type health struct {
	Status  string         `json:"status"` // ok | draining
	Jobs    map[string]int `json:"jobs"`
	Queued  int            `json:"queued"`
	Depth   int            `json:"queue_depth"`
	Workers int            `json:"workers"`

	// Distribution telemetry.
	WorkersLive   int   `json:"workers_live"`
	LeasesActive  int   `json:"leases_active"`
	StaleResults  int64 `json:"stale_results"`
	DupResults    int64 `json:"duplicate_results"`
	LeaseExpiries int64 `json:"lease_expiries"`
	RemoteRoots   int64 `json:"remote_roots"`

	// Admission/eviction telemetry.
	EvictedJobs  int64 `json:"evicted_jobs"`
	EvictedBytes int64 `json:"evicted_bytes"`
	RateLimited  int64 `json:"rate_limited"`
}

// Health summarizes daemon state.
func (s *Server) Health() health {
	stale, dup, expiries, remote, leases := s.dist.totals()
	s.mu.Lock()
	defer s.mu.Unlock()
	h := health{
		Status:  "ok",
		Jobs:    map[string]int{},
		Queued:  s.queued,
		Depth:   s.cfg.QueueDepth,
		Workers: s.cfg.Workers,

		WorkersLive:   s.dist.liveWorkers(time.Now()),
		LeasesActive:  leases,
		StaleResults:  stale,
		DupResults:    dup,
		LeaseExpiries: expiries,
		RemoteRoots:   remote,

		EvictedJobs:  s.evictedJobs,
		EvictedBytes: s.evictedBytes,
		RateLimited:  s.limiter.deniedCount(),
	}
	if s.draining() {
		h.Status = "draining"
	}
	for _, js := range s.jobs {
		h.Jobs[js.job.State]++
	}
	return h
}

// Handler returns the daemon's HTTP API:
//
//	POST   /jobs      submit a Request; 201 admitted, 200 attached/
//	                  cached, 400 invalid, 429 rate-limited or queue
//	                  full (Retry-After set), 503 draining
//	GET    /jobs      list all jobs
//	GET    /jobs/{id} one job: status, progress, lease table, result
//	DELETE /jobs/{id} cancel; 200 settled, 202 cancelling, 404 unknown,
//	                  409 already terminal
//	GET    /healthz   daemon health, job-state histogram, distribution
//	                  and admission counters
//
// plus the /dist worker API (register, lease, heartbeat, result).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		// Rate limit before queue-depth shedding: a chatty client is
		// throttled on its own budget before it can crowd the shared
		// admission queue.
		if ok, retry := s.limiter.allow(clientKey(r)); !ok {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retry/time.Second)))
			writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "rate limit exceeded; retry later"})
			return
		}
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
			return
		}
		job, code, err := s.Submit(req)
		if err != nil {
			if code == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			writeJSON(w, code, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, code, s.Job(job.ID))
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		code, err := s.Cancel(id)
		if err != nil {
			writeJSON(w, code, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, code, s.Job(id))
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v := s.Job(r.PathValue("id"))
		if v == nil {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Health())
	})
	s.distHandlers(mux)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
