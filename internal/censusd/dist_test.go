package censusd

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/distcensus"
	"repro/internal/explore"
)

// planFor resolves a request into its distribution plan, skipping the
// test if the exploration does not frontier-split.
func planFor(t *testing.T, req Request) *explore.DistPlan {
	t.Helper()
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	b, props, err := req.Build()
	if err != nil {
		t.Fatal(err)
	}
	plan, ok := explore.NewDistPlan(b, req.Options(), req.Check(props))
	if !ok {
		t.Fatal("request does not frontier-split")
	}
	return plan
}

func testDistJob(t *testing.T, ttl time.Duration, maxAttempts int) *distJob {
	t.Helper()
	plan := planFor(t, Request{Protocol: "cas", K: 4, N: 3, Workers: 2})
	return newDistJob("job1", plan, json.RawMessage(`{}`), nil, ttl, maxAttempts,
		&progress{}, func(string, ...any) {})
}

// TestLeaseStateMachine drives the coordinator's per-root lease state
// machine with an explicit clock through every edge the chaos harness
// exercises with real time: expiry requeue, the generation-staleness
// guard, duplicate idempotence, and heartbeats racing expiry.
func TestLeaseStateMachine(t *testing.T) {
	ttl := 10 * time.Second
	t0 := time.Unix(1000, 0)
	sum := explore.RootSummary{Complete: 1}

	t.Run("expired-lease-requeues-under-new-generation", func(t *testing.T) {
		d := testDistJob(t, ttl, 6)
		l := d.lease("w1", t0, false)
		if l == nil || l.Generation != 1 {
			t.Fatalf("first lease: %+v", l)
		}
		if n := d.expire(t0.Add(ttl / 2)); n != 0 {
			t.Fatalf("mid-ttl expire reaped %d leases", n)
		}
		if n := d.expire(t0.Add(ttl + time.Millisecond)); n != 1 {
			t.Fatalf("post-ttl expire reaped %d leases, want 1", n)
		}
		// The root is back in the queue under a bumped generation; the
		// lease order keeps it last, so drain the queue to find it.
		for {
			l2 := d.lease("w2", t0.Add(ttl), false)
			if l2 == nil {
				t.Fatal("expired root never re-leased")
			}
			if l2.Root == l.Root {
				if l2.Generation != 2 {
					t.Fatalf("re-lease generation %d, want 2", l2.Generation)
				}
				break
			}
		}
	})

	t.Run("stale-generation-rejected-after-requeue", func(t *testing.T) {
		d := testDistJob(t, ttl, 6)
		l := d.lease("w1", t0, false)
		d.expire(t0.Add(ttl + time.Millisecond)) // w1 presumed dead; requeued

		// w1 resurrects and delivers its finished work under gen 1 —
		// the double-count the generation guard exists to stop.
		if v := d.deliver("w1", l.Root, l.Generation, sum, "", false); v != distcensus.ResultStale {
			t.Fatalf("superseded delivery verdict %q, want stale", v)
		}
		if got := d.resolvedCopy(); len(got) != 0 {
			t.Fatalf("stale delivery was merged: %v", got)
		}
		// The current generation still delivers fine.
		if v := d.deliver("w2", l.Root, l.Generation+1, sum, "", false); v != distcensus.ResultAccepted {
			t.Fatalf("current-generation delivery verdict %q, want accepted", v)
		}
		d.mu.Lock()
		stale, resolved := d.staleResults, len(d.resolved)
		d.mu.Unlock()
		if stale != 1 || resolved != 1 {
			t.Fatalf("stale=%d resolved=%d, want 1/1", stale, resolved)
		}
	})

	t.Run("duplicate-delivery-is-idempotent", func(t *testing.T) {
		d := testDistJob(t, ttl, 6)
		l := d.lease("w1", t0, false)
		if v := d.deliver("w1", l.Root, l.Generation, sum, "", false); v != distcensus.ResultAccepted {
			t.Fatalf("first delivery verdict %q", v)
		}
		// A retried POST /dist/result (worker crashed between delivery
		// and dropping its in-flight record) must not count twice.
		if v := d.deliver("w1", l.Root, l.Generation, sum, "", false); v != distcensus.ResultDuplicate {
			t.Fatalf("second delivery verdict %q, want duplicate", v)
		}
		d.mu.Lock()
		dup, resolved := d.dupResults, len(d.resolved)
		d.mu.Unlock()
		if dup != 1 || resolved != 1 {
			t.Fatalf("dup=%d resolved=%d, want 1/1", dup, resolved)
		}
	})

	t.Run("heartbeat-renewal-races-expiry", func(t *testing.T) {
		d := testDistJob(t, ttl, 6)
		l := d.lease("w1", t0, false)
		// Renewed just before the deadline: the next expiry pass spares it.
		if !d.heartbeat(l.Root, l.Generation, t0.Add(ttl-time.Millisecond)) {
			t.Fatal("pre-deadline heartbeat refused")
		}
		if n := d.expire(t0.Add(ttl + time.Second)); n != 0 {
			t.Fatalf("renewed lease expired anyway (%d reaped)", n)
		}
		// But once the renewed deadline passes and the root is requeued,
		// the old generation's heartbeat is answered gone.
		if n := d.expire(t0.Add(2*ttl + time.Second)); n != 1 {
			t.Fatalf("expire after renewed deadline reaped %d", n)
		}
		if d.heartbeat(l.Root, l.Generation, t0.Add(2*ttl+time.Second)) {
			t.Fatal("heartbeat renewed a requeued lease")
		}
	})

	t.Run("error-deliveries-exhaust-the-attempt-budget", func(t *testing.T) {
		d := testDistJob(t, ttl, 2)
		l := d.lease("w1", t0, false)
		if v := d.deliver("w1", l.Root, l.Generation, explore.RootSummary{}, "boom", false); v != distcensus.ResultAccepted {
			t.Fatalf("error delivery verdict %q", v)
		}
		// Attempt 2 under gen 2 (drain other roots until it comes up).
		var l2 *distcensus.Lease
		for {
			l2 = d.lease("w1", t0, false)
			if l2 == nil || l2.Root == l.Root {
				break
			}
		}
		if l2 == nil || l2.Generation != 2 {
			t.Fatalf("second attempt lease: %+v", l2)
		}
		d.deliver("w1", l2.Root, l2.Generation, explore.RootSummary{}, "boom again", false)
		failed := d.failedCopy()
		f, ok := failed[l.Root]
		if !ok || f.Attempts != 2 {
			t.Fatalf("root not written off after budget: %+v", failed)
		}
		// A write-off is final: even the "current" generation is stale now.
		if v := d.deliver("w1", l.Root, 3, sum, "", false); v != distcensus.ResultStale {
			t.Fatalf("post-failure delivery verdict %q, want stale", v)
		}
	})

	t.Run("closed-job-grants-and-renews-nothing", func(t *testing.T) {
		d := testDistJob(t, ttl, 6)
		l := d.lease("w1", t0, false)
		d.close()
		if d.lease("w2", t0, false) != nil {
			t.Fatal("closed job granted a lease")
		}
		if d.heartbeat(l.Root, l.Generation, t0) {
			t.Fatal("closed job renewed a lease")
		}
	})

	t.Run("all-roots-resolved-closes-done", func(t *testing.T) {
		d := testDistJob(t, ttl, 6)
		for {
			l := d.lease("w1", t0, false)
			if l == nil {
				break
			}
			d.deliver("w1", l.Root, l.Generation, sum, "", false)
		}
		select {
		case <-d.done:
		default:
			t.Fatal("done not closed after every root resolved")
		}
	})
}

// TestDistributedEndToEnd runs a real coordinator and a real in-process
// worker over HTTP: the job must distribute (remote roots counted) and
// settle bit-identical to the direct census.
func TestDistributedEndToEnd(t *testing.T) {
	req := Request{Protocol: "cas", K: 4, N: 3, Workers: 2}
	want := groundTruth(t, req)

	srv, err := New(Config{
		Dir: t.TempDir(), Workers: 1, QueueDepth: 4,
		LeaseTTL: 2 * time.Second, WorkerPoll: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv.Start(ctx)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	w := &distcensus.Worker{
		ID: "w-test", Dir: t.TempDir(),
		Client: &distcensus.Client{Base: ts.URL},
		Build:  BuildRaw,
		Poll:   20 * time.Millisecond,
		Logf:   func(string, ...any) {},
	}
	wctx, wcancel := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() { defer close(workerDone); _ = w.Run(wctx) }()
	defer func() { wcancel(); <-workerDone }()

	deadline := time.Now().Add(10 * time.Second)
	for srv.Health().WorkersLive == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}

	job, code, err := srv.Submit(req)
	if err != nil || code != 201 {
		t.Fatalf("submit: code %d err %v", code, err)
	}
	v := waitState(t, srv, job.ID, StateDone)
	assertResultMatches(t, "distributed", v.Result, want)
	if h := srv.Health(); h.RemoteRoots == 0 {
		t.Fatalf("job settled without any remote roots: %+v", h)
	}
}

// TestCancelRunningDistributedJob: DELETE-style cancellation of a
// running job lands it in the persisted cancelled terminal state with
// its partial census, and resubmitting the identical request resumes
// it to a bit-identical completion.
func TestCancelRunningDistributedJob(t *testing.T) {
	req := Request{Protocol: "cas", K: 4, N: 3, Workers: 2}
	want := groundTruth(t, req)

	// Short TTL so the ghost worker's liveness window (2×TTL) passes
	// quickly once the job is cancelled.
	srv, err := New(Config{
		Dir: t.TempDir(), Workers: 1, QueueDepth: 4,
		LeaseTTL: 250 * time.Millisecond, WorkerPoll: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv.Start(ctx)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A worker that registers and vanishes: the job takes the
	// distributed path, grants no leases, and sits running — a
	// deterministic window to cancel in.
	ghost := &distcensus.Client{Base: ts.URL}
	if _, err := ghost.Register(context.Background(), "ghost"); err != nil {
		t.Fatal(err)
	}

	job, _, err := srv.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv, job.ID, StateRunning)
	if code, err := srv.Cancel(job.ID); code != 202 {
		t.Fatalf("cancel running: code %d err %v", code, err)
	}
	v := waitState(t, srv, job.ID, StateCancelled)
	if v.FinishedAt == nil {
		t.Fatal("cancelled job has no FinishedAt")
	}
	// The terminal state is persisted, not just in memory.
	onDisk, err := srv.store.Load(job.ID)
	if err != nil || onDisk.State != StateCancelled {
		t.Fatalf("persisted state %v err %v, want cancelled", onDisk, err)
	}
	// Cancelling a terminal job conflicts.
	if code, _ := srv.Cancel(job.ID); code != 409 {
		t.Fatalf("cancel terminal: code %d, want 409", code)
	}

	// Let the ghost go stale so the resumed run goes local, then
	// resubmit: the retained checkpoint resumes it to completion.
	for srv.Health().WorkersLive != 0 {
		time.Sleep(20 * time.Millisecond)
	}
	re, code, err := srv.Submit(req)
	if err != nil || code != 200 || re.ID != job.ID {
		t.Fatalf("resubmit: code %d err %v id %s", code, err, re.ID)
	}
	v = waitState(t, srv, job.ID, StateDone)
	assertResultMatches(t, "resumed-after-cancel", v.Result, want)
}

// TestCancelQueuedJob: a queued job cancels synchronously without ever
// running.
func TestCancelQueuedJob(t *testing.T) {
	srv, err := New(Config{Dir: t.TempDir(), Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Not started: the job stays queued.
	job, _, err := srv.Submit(Request{Protocol: "tas2"})
	if err != nil {
		t.Fatal(err)
	}
	if code, err := srv.Cancel(job.ID); code != 200 {
		t.Fatalf("cancel queued: code %d err %v", code, err)
	}
	if v := srv.Job(job.ID); v.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", v.State)
	}
	if code, _ := srv.Cancel("ffffffffffffffff"); code != 404 {
		t.Fatalf("cancel unknown: code %d, want 404", code)
	}
}

// TestResultCacheEviction: with StoreMaxJobs=1, older terminal jobs are
// evicted LRU — record and checkpoint deleted, counters exposed — while
// the newest stays servable.
func TestResultCacheEviction(t *testing.T) {
	srv, err := New(Config{Dir: t.TempDir(), Workers: 1, QueueDepth: 8, StoreMaxJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv.Start(ctx)

	var ids []string
	for _, p := range []string{"tas2", "fa2", "rw2"} {
		job, _, err := srv.Submit(Request{Protocol: p, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, srv, job.ID, StateDone)
		ids = append(ids, job.ID)
	}

	h := srv.Health()
	if h.EvictedJobs < 2 || h.EvictedBytes <= 0 {
		t.Fatalf("evicted %d jobs / %d bytes, want >=2 / >0", h.EvictedJobs, h.EvictedBytes)
	}
	if got := len(srv.Jobs()); got != 1 {
		t.Fatalf("%d jobs survive, want 1", got)
	}
	// The survivor is the most recent; the first is gone from disk too.
	if v := srv.Job(ids[2]); v == nil || v.Result == nil {
		t.Fatal("newest job lost its cached result")
	}
	if srv.Job(ids[0]) != nil {
		t.Fatal("oldest job still visible after eviction")
	}
	if _, err := srv.store.Load(ids[0]); err == nil {
		t.Fatal("evicted job record still on disk")
	}
}

// TestRateLimiter: token-bucket arithmetic with a fake clock, and the
// counter the /healthz endpoint surfaces.
func TestRateLimiter(t *testing.T) {
	now := time.Unix(5000, 0)
	rl := newRateLimiter(1, 2) // 1 token/s, burst 2
	rl.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := rl.allow("alice"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := rl.allow("alice")
	if ok {
		t.Fatal("post-burst request allowed")
	}
	if retry < time.Second {
		t.Fatalf("retry-after %v, want >= 1s", retry)
	}
	// Other clients have their own bucket.
	if ok, _ := rl.allow("bob"); !ok {
		t.Fatal("second client denied by first client's bucket")
	}
	// Refill: one second accrues one token.
	now = now.Add(time.Second)
	if ok, _ := rl.allow("alice"); !ok {
		t.Fatal("request denied after refill")
	}
	if ok, _ := rl.allow("alice"); ok {
		t.Fatal("second request allowed on a single refilled token")
	}
	if rl.deniedCount() != 2 {
		t.Fatalf("denied count %d, want 2", rl.deniedCount())
	}
	// Disabled limiter admits everything.
	off := newRateLimiter(0, 0)
	for i := 0; i < 100; i++ {
		if ok, _ := off.allow("x"); !ok {
			t.Fatal("disabled limiter denied")
		}
	}
}

// TestRateLimitHTTP: over the wire, a throttled POST /jobs is a 429
// with Retry-After, keyed by X-Client-ID, and counted in /healthz.
func TestRateLimitHTTP(t *testing.T) {
	srv, err := New(Config{
		Dir: t.TempDir(), Workers: 1, QueueDepth: 8,
		RatePerSec: 0.001, RateBurst: 1, // one request, then a long wait
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(client string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest("POST", ts.URL+"/jobs", strings.NewReader(`{"protocol":"tas2"}`))
		req.Header.Set("X-Client-ID", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := post("alice"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	resp := post("alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// A distinct client is not throttled by alice's bucket (it attaches
	// to the existing job: 200).
	if resp := post("bob"); resp.StatusCode != http.StatusOK {
		t.Fatalf("other client: %d, want 200", resp.StatusCode)
	}
	if h := srv.Health(); h.RateLimited != 1 {
		t.Fatalf("rate_limited %d, want 1", h.RateLimited)
	}
}
