package censusd

import (
	"repro/internal/explore"
)

// Result is the wire/storage rendering of a census: the counts plus
// the prune/steal and supervision counters, with schedules flattened
// to strings. cmd/explore's -json output and the daemon's result cache
// share this shape, so "bit-identical to a direct cmd/explore run" is
// directly comparable field by field.
type Result struct {
	Protocol      string              `json:"protocol"`
	CrashBudget   int                 `json:"crash_budget"`
	FaultBudget   int                 `json:"object_fault_budget"`
	Complete      int                 `json:"complete"`
	Incomplete    int                 `json:"incomplete"`
	Outcomes      map[string]int      `json:"outcomes"`
	ViolationRuns int                 `json:"violation_runs"`
	Violations    []string            `json:"violations,omitempty"`
	Exhaustive    bool                `json:"exhaustive"`
	Cancelled     bool                `json:"cancelled"`
	Errors        []string            `json:"errors,omitempty"`
	Prune         *explore.PruneStats `json:"prune,omitempty"`
	Supervision   *Supervision        `json:"supervision,omitempty"`
}

// Supervision is the flattened supervisor counter block of a Result.
type Supervision struct {
	Attempts int64 `json:"attempts"`
	Retries  int64 `json:"retries"`
	Requeues int64 `json:"requeues"`
	Kills    int64 `json:"kills"`
	Stalls   int64 `json:"stalls"`
	Failed   int64 `json:"failed"`
}

// ResultFrom flattens a census. st may be nil (unsupervised run).
func ResultFrom(protocol string, crashes, objFaults int, c *explore.Census, st *explore.SuperviseStats) *Result {
	out := &Result{
		Protocol:      protocol,
		CrashBudget:   crashes,
		FaultBudget:   objFaults,
		Complete:      c.Complete,
		Incomplete:    c.Incomplete,
		Outcomes:      c.Outcomes,
		ViolationRuns: c.ViolationRuns,
		Exhaustive:    c.Exhaustive,
		Cancelled:     c.Cancelled,
		Errors:        c.Errors,
		Prune:         c.Prune,
	}
	for _, v := range c.Violations {
		out.Violations = append(out.Violations, explore.FormatSchedule(v.Schedule))
	}
	if st != nil {
		out.Supervision = &Supervision{
			Attempts: st.Attempts.Load(),
			Retries:  st.Retries.Load(),
			Requeues: st.Requeues.Load(),
			Kills:    st.Kills.Load(),
			Stalls:   st.Stalls.Load(),
			Failed:   st.Failed.Load(),
		}
	}
	return out
}
