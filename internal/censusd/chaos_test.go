package censusd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/explore"
)

// The process-level chaos test: a real cmd/censusd daemon, SIGKILLed
// with jobs in flight, must resume them after restart and produce
// censuses bit-identical to uninterrupted direct runs. This is the
// acceptance criterion of the daemon's crash-safety story, exercised
// end to end through the actual binary, the HTTP API, and the on-disk
// store.

// buildDaemon compiles cmd/censusd into dir, with -race iff this test
// binary has it, and returns the binary path.
func buildDaemon(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "censusd")
	args := []string{"build"}
	if raceEnabled {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, "repro/cmd/censusd")
	cmd := exec.Command("go", args...)
	cmd.Dir = filepath.Join("..", "..") // module root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building censusd: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary on a free port over the given store
// dir and returns its base URL and process handle.
func startDaemon(t *testing.T, bin, dir string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-dir", dir,
		"-workers", "2", "-queue", "8", "-checkpoint-every", "1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	addr := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "censusd: listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		_ = cmd.Process.Kill()
		t.Fatalf("daemon never reported its address (scan err %v)", sc.Err())
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained
	return "http://" + addr, cmd
}

func submitJob(t *testing.T, base string, req Request) string {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit %+v: %d %s", req, resp.StatusCode, m.Error)
	}
	return m.ID
}

// getJob fetches one job view; ok is false on transport errors (the
// daemon may be gone mid-poll).
func getJob(base, id string) (*jobView, bool) {
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, false
	}
	return &v, true
}

func TestDaemonKillRestartBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level chaos test; skipped in -short")
	}
	scratch := t.TempDir()
	bin := buildDaemon(t, scratch)
	storeDir := filepath.Join(scratch, "store")

	// Three jobs: one long (rw3, single engine worker — the kill
	// target), two ordinary. All verified bit-identical at the end.
	reqs := []Request{
		{Protocol: "rw3", Workers: 1},
		{Protocol: "cas", K: 4, N: 3, Workers: 2},
		{Protocol: "fa2"},
	}
	wants := make([]*explore.Census, len(reqs))
	for i, r := range reqs {
		wants[i] = groundTruth(t, r)
	}

	base, cmd := startDaemon(t, bin, storeDir)
	ids := make([]string, len(reqs))
	for i, r := range reqs {
		ids[i] = submitJob(t, base, r)
	}

	// Wait for the long job to be genuinely mid-run — running, with at
	// least one completed root (so the checkpoint file exists) and not
	// yet done — then SIGKILL the daemon.
	killed := false
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := getJob(base, ids[0])
		if ok && v.State == StateRunning && v.Progress != nil && v.Progress.RootsDone >= 1 {
			if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
			killed = true
			break
		}
		if ok && v.State == StateDone {
			t.Fatal("long job finished before the kill; grow its budget")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !killed {
		_ = cmd.Process.Kill()
		t.Fatal("long job never reached mid-run state")
	}
	_ = cmd.Wait() // reap; exit status is the kill, not an error

	// Restart over the same store: every job must complete.
	base2, cmd2 := startDaemon(t, bin, storeDir)
	defer func() {
		// Graceful drain on the way out; hard kill only as fallback.
		_ = cmd2.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { _ = cmd2.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			_ = cmd2.Process.Kill()
			<-done
		}
	}()

	finals := make([]*jobView, len(reqs))
	deadline = time.Now().Add(10 * time.Minute)
	for i := range reqs {
		for {
			if time.Now().After(deadline) {
				t.Fatalf("job %s (%s) did not finish after restart", ids[i], reqs[i].Protocol)
			}
			v, ok := getJob(base2, ids[i])
			if ok && v.State == StateDone {
				finals[i] = v
				break
			}
			if ok && v.State == StateFailed {
				t.Fatalf("job %s failed after restart: %s", ids[i], v.Error)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	for i, v := range finals {
		assertResultMatches(t, fmt.Sprintf("job %s after kill+restart", reqs[i].Protocol), v.Result, wants[i])
	}
	// The killed job must really have gone through crash recovery — a
	// restart-requeue and a checkpoint resume, not a silent rerun.
	long := finals[0]
	if long.Restarts < 1 {
		t.Fatalf("long job records %d restarts; the kill did not interrupt it", long.Restarts)
	}
	if long.Checkpoint == nil || long.Checkpoint.ResumedRoots == 0 {
		t.Fatalf("long job resumed no roots: %+v", long.Checkpoint)
	}
}
