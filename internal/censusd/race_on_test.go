//go:build race

package censusd

// raceEnabled mirrors the test binary's -race setting so the chaos
// test builds the daemon under the same detector.
const raceEnabled = true
