package censusd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/explore"
)

func intp(v int) *int { return &v }

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, s *Server, id, want string) *jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if v := s.Job(id); v != nil && v.State == want {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	v := s.Job(id)
	t.Fatalf("job %s never reached %q (now %+v)", id, want, v)
	return nil
}

// groundTruth runs the request's census directly (no daemon, no
// supervisor) — the bit-identical reference.
func groundTruth(t *testing.T, req Request) *explore.Census {
	t.Helper()
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	b, props, err := req.Build()
	if err != nil {
		t.Fatal(err)
	}
	return explore.Run(b, req.Options(), req.Check(props))
}

func assertResultMatches(t *testing.T, label string, got *Result, want *explore.Census) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: no result", label)
	}
	if got.Complete != want.Complete || got.Incomplete != want.Incomplete ||
		got.ViolationRuns != want.ViolationRuns || got.Exhaustive != want.Exhaustive {
		t.Fatalf("%s: result %d/%d viol=%d ex=%v, want %d/%d viol=%d ex=%v",
			label, got.Complete, got.Incomplete, got.ViolationRuns, got.Exhaustive,
			want.Complete, want.Incomplete, want.ViolationRuns, want.Exhaustive)
	}
	if len(got.Outcomes) != len(want.Outcomes) {
		t.Fatalf("%s: outcomes %v, want %v", label, got.Outcomes, want.Outcomes)
	}
	for k, v := range want.Outcomes {
		if got.Outcomes[k] != v {
			t.Fatalf("%s: outcomes %v, want %v", label, got.Outcomes, want.Outcomes)
		}
	}
}

// TestRequestIdentity: tuning must not shape the identity; tree-shaping
// budgets must; ignored dimensions must normalize away.
func TestRequestIdentity(t *testing.T) {
	base := Request{Protocol: "tas2"}
	if err := base.Normalize(); err != nil {
		t.Fatal(err)
	}
	same := []Request{
		{Protocol: "tas2", K: 7},                              // ignored dimension
		{Protocol: "tas2", Workers: 8, Prune: true},           // tuning
		{Protocol: "tas2", Symmetry: true, SleepSets: true},   // reducers are count-preserving
		{Protocol: "tas2", MaxRuns: DefaultMaxRuns},           // explicit default
		{Protocol: "tas2", Crashes: intp(1), TimeoutSec: 300}, // explicit default + timeout
	}
	for i, r := range same {
		if err := r.Normalize(); err != nil {
			t.Fatal(err)
		}
		if r.ID() != base.ID() {
			t.Fatalf("variant %d: identity %q != base %q", i, r.Identity(), base.Identity())
		}
	}
	diff := []Request{
		{Protocol: "fa2"},
		{Protocol: "tas2", Crashes: intp(0)},
		{Protocol: "tas2", MaxRuns: 12345},
		{Protocol: "tas2", StepLimit: 9},
	}
	for i, r := range diff {
		if err := r.Normalize(); err != nil {
			t.Fatal(err)
		}
		if r.ID() == base.ID() {
			t.Fatalf("variant %d: identity %q collided with base", i, r.Identity())
		}
	}

	bad := []Request{
		{Protocol: "nope"},
		{Protocol: "cas"},                // needs k, n
		{Protocol: "cas", K: 3, N: 3},    // n > k-1
		{Protocol: "tas2", ObjFaults: 1}, // not fault-wrapped
		{Protocol: "casdeg", K: 4, N: 2, ObjFaults: 1, FaultModes: []string{"zap"}}, // unknown mode
		{Protocol: "tas2", MaxRuns: -1},
	}
	for i, r := range bad {
		if err := r.Normalize(); err == nil {
			t.Fatalf("bad request %d (%+v) normalized without error", i, r)
		}
	}
}

// TestSubmitRunDedupCache: a job runs to a census bit-identical to the
// direct walk; an identical resubmission never spawns a second
// exploration — it is served from the durable result cache.
func TestSubmitRunDedupCache(t *testing.T) {
	// cas k=4 n=3 is big enough to frontier-split, so the run goes
	// through the supervised checkpoint path and emits progress events.
	req := Request{Protocol: "cas", K: 4, N: 3, Workers: 2}
	want := groundTruth(t, req)

	srv, err := New(Config{Dir: t.TempDir(), Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv.Start(ctx)

	job, code, err := srv.Submit(req)
	if err != nil || code != http.StatusCreated {
		t.Fatalf("submit: code %d err %v", code, err)
	}
	v := waitState(t, srv, job.ID, StateDone)
	assertResultMatches(t, "first run", v.Result, want)
	if v.Progress == nil || v.Progress.RootsDone == 0 {
		t.Fatalf("no progress events observed: %+v", v.Progress)
	}

	// Identical request (different tuning): cache hit, same job, no new
	// exploration.
	dup, code, err := srv.Submit(Request{Protocol: "cas", K: 4, N: 3, Workers: 1, Symmetry: true})
	if err != nil || code != http.StatusOK {
		t.Fatalf("dup submit: code %d err %v", code, err)
	}
	if dup.ID != job.ID {
		t.Fatalf("duplicate got its own job %s != %s", dup.ID, job.ID)
	}
	if dup.State != StateDone || dup.Result == nil {
		t.Fatalf("duplicate not served from cache: state %s", dup.State)
	}
	if got := len(srv.Jobs()); got != 1 {
		t.Fatalf("%d jobs exist after duplicate submit, want 1", got)
	}
}

// TestAdmissionShedding: with the queue full, new work is shed with a
// retryable 429 — never blocked, never dropped silently — while
// duplicates of queued jobs still attach without consuming capacity.
func TestAdmissionShedding(t *testing.T) {
	srv, err := New(Config{Dir: t.TempDir(), Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	// No Start: everything stays queued, making admission deterministic.
	a, code, err := srv.Submit(Request{Protocol: "tas2"})
	if err != nil || code != http.StatusCreated {
		t.Fatalf("first: code %d err %v", code, err)
	}
	if _, code, err = srv.Submit(Request{Protocol: "fa2"}); err != nil || code != http.StatusCreated {
		t.Fatalf("second: code %d err %v", code, err)
	}

	// Queue full: distinct identity is shed.
	_, code, err = srv.Submit(Request{Protocol: "queue2"})
	if code != http.StatusTooManyRequests || err == nil {
		t.Fatalf("overload submit: code %d err %v, want 429", code, err)
	}

	// Duplicate of a queued job attaches fine even at capacity.
	dup, code, err := srv.Submit(Request{Protocol: "tas2", Prune: true})
	if err != nil || code != http.StatusOK || dup.ID != a.ID {
		t.Fatalf("dup at capacity: code %d err %v id %s", code, err, dup.ID)
	}

	// Draining: everything is refused with 503.
	ctx, cancel := context.WithCancel(context.Background())
	srv.Start(ctx)
	cancel()
	srv.Drain()
	if _, code, _ = srv.Submit(Request{Protocol: "rw2"}); code != http.StatusServiceUnavailable {
		t.Fatalf("drain submit: code %d, want 503", code)
	}
}

// TestRestartRecovery: jobs persisted by one daemon instance — queued
// or (as after a SIGKILL) running — are recovered by the next one and
// complete bit-identical to direct runs.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	reqA := Request{Protocol: "tas2", Workers: 2}
	reqB := Request{Protocol: "fa2", Workers: 2}
	wantA := groundTruth(t, reqA)
	wantB := groundTruth(t, reqB)

	srv1, err := New(Config{Dir: dir, Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Never started: submissions persist as queued, then the process
	// "dies" (srv1 is simply abandoned).
	jobA, _, err := srv1.Submit(reqA)
	if err != nil {
		t.Fatal(err)
	}
	jobB, _, err := srv1.Submit(reqB)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-run for jobB: the store says running, exactly
	// what a SIGKILLed daemon leaves behind.
	jb, err := srv1.store.Load(jobB.ID)
	if err != nil {
		t.Fatal(err)
	}
	jb.State = StateRunning
	if err := srv1.store.Save(jb); err != nil {
		t.Fatal(err)
	}

	srv2, err := New(Config{Dir: dir, Workers: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv2.Start(ctx)
	va := waitState(t, srv2, jobA.ID, StateDone)
	vb := waitState(t, srv2, jobB.ID, StateDone)
	assertResultMatches(t, "recovered-A", va.Result, wantA)
	assertResultMatches(t, "recovered-B", vb.Result, wantB)
	if vb.Restarts != 1 {
		t.Fatalf("jobB restarts = %d, want 1", vb.Restarts)
	}
}

// TestHTTPAPI drives the real handler over HTTP: submit, status,
// listing, health, and the error paths.
func TestHTTPAPI(t *testing.T) {
	srv, err := New(Config{Dir: t.TempDir(), Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv.Start(ctx)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp, m
	}

	resp, m := post(`{"protocol":"tas2","workers":2}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /jobs: %d (%v)", resp.StatusCode, m)
	}
	id, _ := m["id"].(string)
	if id == "" {
		t.Fatalf("no job id in response: %v", m)
	}
	waitState(t, srv, id, StateDone)

	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, m
	}

	code, jm := get("/jobs/" + id)
	if code != http.StatusOK || jm["state"] != StateDone || jm["result"] == nil {
		t.Fatalf("GET /jobs/%s: %d %v", id, code, jm["state"])
	}
	if code, _ := get("/jobs/ffffffffffffffff"); code != http.StatusNotFound {
		t.Fatalf("GET missing job: %d, want 404", code)
	}
	code, hm := get("/healthz")
	if code != http.StatusOK || hm["status"] != "ok" {
		t.Fatalf("GET /healthz: %d %v", code, hm)
	}
	if resp, m := post(`{"protocol":"bogus"}`); resp.StatusCode != http.StatusBadRequest || m["error"] == "" {
		t.Fatalf("bad protocol: %d %v", resp.StatusCode, m)
	}
	if resp, _ := post(`not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %d, want 400", resp.StatusCode)
	}
}
