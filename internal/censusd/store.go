package censusd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Job states. The lifecycle is queued → running → done | failed |
// cancelled, with two recovery edges: a daemon restart re-queues every
// job found running (it was in flight when the process died), and
// resubmitting a failed or cancelled job re-queues it (its checkpoint
// was retained, so it resumes rather than restarts).
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// terminalState reports whether state is settled — eligible for
// result-cache eviction and safe to delete.
func terminalState(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// Job is one census job record — the unit the store persists. Request
// and identity never change after admission; state, progress, and
// result do.
type Job struct {
	ID       string  `json:"id"`
	Identity string  `json:"identity"`
	Request  Request `json:"request"`
	State    string  `json:"state"`
	// Error is the failure detail of a failed job.
	Error string `json:"error,omitempty"`
	// Result is the completed census (the durable result cache).
	Result *Result `json:"result,omitempty"`
	// Checkpoint summarizes the last completed run's recovery stats.
	Checkpoint *CheckpointInfo `json:"checkpoint,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// Restarts counts how many times a daemon restart re-queued this
	// job while it was running (crash-recovery resumptions).
	Restarts int `json:"restarts,omitempty"`
}

// CheckpointInfo is the per-job slice of explore.CheckpointStats worth
// persisting.
type CheckpointInfo struct {
	TotalRoots   int    `json:"total_roots"`
	ResumedRoots int    `json:"resumed_roots"`
	Saves        int    `json:"saves"`
	Warning      string `json:"warning,omitempty"`
}

// Store is the on-disk job store: one JSON file per job under
// dir/jobs/, one exploration checkpoint per job under
// dir/checkpoints/. Every write is atomic (temp file + fsync + rename)
// so a SIGKILL mid-write leaves the previous record intact.
type Store struct {
	dir string
}

// OpenStore creates/opens the store directories.
func OpenStore(dir string) (*Store, error) {
	for _, d := range []string{filepath.Join(dir, "jobs"), filepath.Join(dir, "checkpoints")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("censusd: store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// CheckpointPath is where the job's exploration checkpoint lives.
func (s *Store) CheckpointPath(id string) string {
	return filepath.Join(s.dir, "checkpoints", id+".json")
}

func (s *Store) jobPath(id string) string {
	return filepath.Join(s.dir, "jobs", id+".json")
}

// Save persists a job record atomically and durably.
func (s *Store) Save(j *Job) error {
	data, err := json.Marshal(j)
	if err != nil {
		return err
	}
	path := s.jobPath(j.ID)
	tmp := path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := tf.Write(data); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync() // best-effort, like the checkpoint writer
		d.Close()
	}
	return nil
}

// Delete removes a job record and its checkpoint (eviction). Missing
// files are fine: eviction is idempotent.
func (s *Store) Delete(id string) {
	_ = os.Remove(s.jobPath(id))
	_ = os.Remove(s.CheckpointPath(id))
}

// Size is the on-disk footprint of one job: record plus checkpoint.
func (s *Store) Size(id string) int64 {
	var total int64
	for _, p := range []string{s.jobPath(id), s.CheckpointPath(id)} {
		if fi, err := os.Stat(p); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// Load reads one job record; os.IsNotExist(err) means no such job.
func (s *Store) Load(id string) (*Job, error) {
	data, err := os.ReadFile(s.jobPath(id))
	if err != nil {
		return nil, err
	}
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("censusd: job %s: %w", id, err)
	}
	return &j, nil
}

// LoadAll reads every job record, skipping (and reporting) corrupt
// ones — a torn write of one record must not take the daemon down.
func (s *Store) LoadAll() (jobs []*Job, warnings []string, err error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "jobs"))
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".tmp") {
			continue
		}
		j, err := s.Load(strings.TrimSuffix(name, ".json"))
		if err != nil {
			warnings = append(warnings, fmt.Sprintf("job file %s unreadable, skipped: %v", name, err))
			continue
		}
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].SubmittedAt.Before(jobs[b].SubmittedAt) })
	return jobs, warnings, nil
}
