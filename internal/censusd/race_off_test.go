//go:build !race

package censusd

const raceEnabled = false
