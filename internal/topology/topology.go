// Package topology builds the protocol complex of one-round immediate
// snapshot executions — the combinatorial object behind the
// set-consensus impossibility (Borowsky–Gafni, Herlihy–Shavit,
// Saks–Zaharoglou; references [4, 11, 21]) that the paper's reduction
// targets. Claim 1 matters only because (k−1)!-set consensus among
// (k−1)!+1 processes over read/write registers is impossible; that
// impossibility is topological: the one-round immediate-snapshot
// complex is the standard chromatic subdivision of the simplex —
// connected (in fact highly connected) — and connectivity obstructs the
// required decision maps.
//
// What this package makes executable: the complex is enumerated from
// the model itself — every schedule of the real ImmediateSnapshot
// protocol (package registers) under the exhaustive explorer, one facet
// per execution — and its combinatorics are checked: facet counts match
// the chromatic subdivision (3 for n = 2, 13 for n = 3), every facet
// obeys the immediacy laws, and the facet adjacency graph is connected.
package topology

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/explore"
	"repro/internal/registers"
	"repro/internal/sim"
)

// Vertex is one process's view in some execution: the process id plus
// the set of processes it saw (its immediate snapshot), canonically
// rendered. In the chromatic subdivision, Proc is the vertex's color.
type Vertex struct {
	Proc sim.ProcID
	View string // canonical "0,2" list of seen process ids
}

// String renders "p1:{0,1}".
func (v Vertex) String() string { return fmt.Sprintf("p%d:{%s}", v.Proc, v.View) }

// Facet is one full execution: every process's vertex.
type Facet []Vertex

// key canonically encodes the facet.
func (f Facet) key() string {
	parts := make([]string, len(f))
	for i, v := range f {
		parts[i] = v.String()
	}
	return strings.Join(parts, " ")
}

// Complex is the one-round immediate-snapshot protocol complex.
type Complex struct {
	N      int
	Facets []Facet
	// Exhaustive reports whether every schedule was enumerated.
	Exhaustive bool
}

// BuildComplex collects the distinct executions of the n-process
// one-shot immediate snapshot as facets: a bounded exhaustive walk
// (maxRuns schedules; exhaustive for n = 2) topped up by randomRuns
// random schedules, which reach the facets the depth-first corner of
// the walk misses at n = 3.
func BuildComplex(n int, maxRuns, randomRuns int) *Complex {
	builder := func() *sim.System {
		sys := sim.NewSystem()
		is := registers.NewImmediateSnapshot(sys, "is", n)
		for i := 0; i < n; i++ {
			sys.Spawn(func(e *sim.Env) (sim.Value, error) {
				return is.WriteRead(e, nil), nil
			})
		}
		return sys
	}
	seen := make(map[string]Facet)
	record := func(res *sim.Result) {
		f := make(Facet, n)
		for p := 0; p < n; p++ {
			view := res.Values[p].([]registers.Pair)
			ids := make([]string, len(view))
			for i, pr := range view {
				ids[i] = fmt.Sprint(int(pr.Proc))
			}
			f[p] = Vertex{Proc: sim.ProcID(p), View: strings.Join(ids, ",")}
		}
		seen[f.key()] = f
	}
	opts := explore.Options{MaxRuns: maxRuns}
	_, exhaustive := explore.Visit(builder, opts, func(o explore.Outcome) bool {
		if o.Result.Halted {
			return true
		}
		record(o.Result)
		return true
	})
	for seed := int64(0); seed < int64(randomRuns); seed++ {
		res, err := builder().Run(sim.Config{Scheduler: sim.Random(seed), DisableTrace: true})
		if err != nil {
			panic(fmt.Sprintf("topology: random run failed: %v", err))
		}
		record(res)
	}
	c := &Complex{N: n, Exhaustive: exhaustive}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c.Facets = append(c.Facets, seen[k])
	}
	return c
}

// ChromaticFacetCount returns the number of facets of the standard
// chromatic subdivision of the (n−1)-simplex: the number of ordered
// partitions of {1..n} (Fubini/ordered Bell numbers): 1, 3, 13, 75, …
func ChromaticFacetCount(n int) int {
	// a(n) = Σ_{j=1..n} C(n,j)·a(n−j), a(0)=1.
	a := make([]int, n+1)
	a[0] = 1
	binom := func(n, k int) int {
		if k < 0 || k > n {
			return 0
		}
		r := 1
		for i := 0; i < k; i++ {
			r = r * (n - i) / (i + 1)
		}
		return r
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= i; j++ {
			a[i] += binom(i, j) * a[i-j]
		}
	}
	return a[n]
}

// Vertices returns the complex's distinct vertices.
func (c *Complex) Vertices() []Vertex {
	seen := make(map[Vertex]bool)
	var out []Vertex
	for _, f := range c.Facets {
		for _, v := range f {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Connected reports whether the facet adjacency graph — facets joined
// when they share a vertex — is connected. Connectivity of the protocol
// complex is the 0-dimensional shadow of the topological obstruction.
func (c *Complex) Connected() bool {
	if len(c.Facets) == 0 {
		return true
	}
	byVertex := make(map[Vertex][]int)
	for i, f := range c.Facets {
		for _, v := range f {
			byVertex[v] = append(byVertex[v], i)
		}
	}
	seen := make([]bool, len(c.Facets))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range c.Facets[i] {
			for _, j := range byVertex[v] {
				if !seen[j] {
					seen[j] = true
					count++
					stack = append(stack, j)
				}
			}
		}
	}
	return count == len(c.Facets)
}

// OrderedPartitions enumerates the facets the theory predicts: each
// ordered partition (B₁, …, B_r) of the process set yields the
// execution where block B₁ goes first (its members see exactly B₁),
// then B₂ (seeing B₁∪B₂), and so on. Used to cross-check BuildComplex.
func OrderedPartitions(n int) []Facet {
	procs := make([]int, n)
	for i := range procs {
		procs[i] = i
	}
	var out []Facet
	var rec func(remaining []int, prefixSeen []int, views map[int][]int)
	rec = func(remaining []int, prefixSeen []int, views map[int][]int) {
		if len(remaining) == 0 {
			f := make(Facet, n)
			for p := 0; p < n; p++ {
				ids := make([]string, len(views[p]))
				for i, q := range views[p] {
					ids[i] = fmt.Sprint(q)
				}
				f[p] = Vertex{Proc: sim.ProcID(p), View: strings.Join(ids, ",")}
			}
			out = append(out, f)
			return
		}
		// Choose the next nonempty block as any nonempty subset.
		m := len(remaining)
		for mask := 1; mask < (1 << m); mask++ {
			var block, rest []int
			for i := 0; i < m; i++ {
				if mask&(1<<i) != 0 {
					block = append(block, remaining[i])
				} else {
					rest = append(rest, remaining[i])
				}
			}
			seen := append(append([]int(nil), prefixSeen...), block...)
			sort.Ints(seen)
			v2 := make(map[int][]int, len(views)+len(block))
			for k, vv := range views {
				v2[k] = vv
			}
			for _, p := range block {
				v2[p] = seen
			}
			rec(rest, seen, v2)
		}
	}
	rec(procs, nil, map[int][]int{})
	// Deduplicate (different recursion orders can repeat partitions).
	seenKeys := make(map[string]bool, len(out))
	var dedup []Facet
	for _, f := range out {
		if !seenKeys[f.key()] {
			seenKeys[f.key()] = true
			dedup = append(dedup, f)
		}
	}
	sort.Slice(dedup, func(i, j int) bool { return dedup[i].key() < dedup[j].key() })
	return dedup
}
