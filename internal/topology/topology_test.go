package topology_test

import (
	"testing"

	"repro/internal/registers"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestChromaticFacetCount(t *testing.T) {
	// Ordered Bell numbers: 1, 1, 3, 13, 75, 541.
	want := map[int]int{0: 1, 1: 1, 2: 3, 3: 13, 4: 75, 5: 541}
	for n, c := range want {
		if got := topology.ChromaticFacetCount(n); got != c {
			t.Errorf("ChromaticFacetCount(%d) = %d, want %d", n, got, c)
		}
	}
}

// TestComplexMatchesChromaticSubdivision is the headline: enumerating
// every schedule of the REAL immediate-snapshot protocol yields exactly
// the facets of the standard chromatic subdivision — 3 for two
// processes, 13 for three — and the enumerated facets coincide with the
// theory's ordered partitions.
func TestComplexMatchesChromaticSubdivision(t *testing.T) {
	for _, n := range []int{2, 3} {
		c := topology.BuildComplex(n, 20000, 800)
		if n == 2 && !c.Exhaustive {
			t.Fatalf("n=2: enumeration not exhaustive")
		}
		want := topology.ChromaticFacetCount(n)
		if len(c.Facets) != want {
			t.Errorf("n=%d: %d facets, want %d (chromatic subdivision)", n, len(c.Facets), want)
		}
		predicted := topology.OrderedPartitions(n)
		if len(predicted) != want {
			t.Fatalf("n=%d: ordered partitions gave %d facets, want %d", n, len(predicted), want)
		}
		pk := make(map[string]bool, len(predicted))
		for _, f := range predicted {
			pk[fkey(f)] = true
		}
		for _, f := range c.Facets {
			if !pk[fkey(f)] {
				t.Errorf("n=%d: protocol produced facet %v not predicted by ordered partitions", n, f)
			}
		}
	}
}

func fkey(f topology.Facet) string {
	s := ""
	for _, v := range f {
		s += v.String() + " "
	}
	return s
}

// TestComplexConnected: the protocol complex is connected — the
// 0-dimensional shadow of the connectivity that obstructs set
// consensus.
func TestComplexConnected(t *testing.T) {
	for _, n := range []int{2, 3} {
		c := topology.BuildComplex(n, 20000, 800)
		if !c.Connected() {
			t.Errorf("n=%d: protocol complex disconnected", n)
		}
	}
}

// TestComplexVertexCount: the chromatic subdivision of the edge (n=2)
// has 6 vertices: each process solo, and each process in the full view.
func TestComplexVertexCount(t *testing.T) {
	c := topology.BuildComplex(2, 0, 50)
	if got := len(c.Vertices()); got != 4 {
		// p0:{0}, p0:{0,1}, p1:{1}, p1:{0,1}
		t.Errorf("n=2 vertex count = %d, want 4 (%v)", got, c.Vertices())
	}
}

// TestFacetsSatisfyImmediacy: every enumerated facet obeys the three
// immediate-snapshot laws (re-checked through the registers checker).
func TestFacetsSatisfyImmediacy(t *testing.T) {
	c := topology.BuildComplex(3, 20000, 800)
	for _, f := range c.Facets {
		views := make([][]registers.Pair, 3)
		for p, v := range f {
			var pairs []registers.Pair
			for _, idStr := range splitIDs(v.View) {
				pairs = append(pairs, registers.Pair{Proc: sim.ProcID(idStr)})
			}
			views[p] = pairs
		}
		if err := registers.CheckImmediacy(views); err != nil {
			t.Errorf("facet %v: %v", f, err)
		}
	}
}

func splitIDs(view string) []int {
	var out []int
	cur := -1
	for _, r := range view {
		switch {
		case r >= '0' && r <= '9':
			if cur < 0 {
				cur = 0
			}
			cur = cur*10 + int(r-'0')
		default:
			if cur >= 0 {
				out = append(out, cur)
				cur = -1
			}
		}
	}
	if cur >= 0 {
		out = append(out, cur)
	}
	return out
}
