package registers

import (
	"fmt"

	"repro/internal/sim"
)

// StateKey implementations (sim.StateKeyer) for the register substrate,
// enabling state-hash pruning in the explore package. Composite objects
// (Array, Snapshot, ImmediateSnapshot, the MW-from-SW construction)
// register their SWMR cells individually with the System, so keying
// SWMR, MWMR and Tagged covers everything in the package. Cell values
// must render deterministically under %v — the package's internal cell
// structs (plain data, no pointers) all do.

var (
	_ sim.StateKeyer  = (*SWMR)(nil)
	_ sim.StateKeyer  = (*MWMR)(nil)
	_ sim.StateKeyer  = (*Tagged)(nil)
	_ sim.StateFolder = (*SWMR)(nil)
	_ sim.StateFolder = (*MWMR)(nil)

	_ sim.PermStateFolder = (*SWMR)(nil)
	_ sim.PermStateFolder = (*MWMR)(nil)
)

// StateKey implements sim.StateKeyer.
func (r *SWMR) StateKey() string { return sim.ValueKey(r.value) }

// StateKey implements sim.StateKeyer.
func (r *MWMR) StateKey() string { return sim.ValueKey(r.value) }

// FoldState implements sim.StateFolder: simple registers fold their
// value binary so fingerprinted steps stay allocation-free. Tagged is
// left on the fmt-backed StateKey path — its entry slices are not on
// any hot exploration loop.
func (r *SWMR) FoldState(h sim.Hash) sim.Hash { return h.FoldValue(r.value) }

// FoldState implements sim.StateFolder.
func (r *MWMR) FoldState(h sim.Hash) sim.Hash { return h.FoldValue(r.value) }

// StateKey implements sim.StateKeyer.
func (t *Tagged) StateKey() string { return fmt.Sprintf("%v", t.entries) }

// FoldStateUnder implements sim.PermStateFolder: a register's state is
// its value, renamed. A SWMR cell's OWNER is part of its name (see
// NewArray's "%s[%d]" convention), so ownership renames through the
// symmetry spec's RenameObject, not here.
func (r *SWMR) FoldStateUnder(h sim.Hash, _ []sim.ProcID, rename func(sim.Value) sim.Value) sim.Hash {
	return h.FoldValue(rename(r.value))
}

// FoldStateUnder implements sim.PermStateFolder.
func (r *MWMR) FoldStateUnder(h sim.Hash, _ []sim.ProcID, rename func(sim.Value) sim.Value) sim.Hash {
	return h.FoldValue(rename(r.value))
}
