package registers_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/explore"
	"repro/internal/linearize"
	"repro/internal/registers"
	"repro/internal/sim"
	"repro/internal/spec"
)

// run executes programs under the given scheduler and returns the result.
func run(t *testing.T, sched sim.Scheduler, setup func(sys *sim.System) []sim.Program) *sim.Result {
	t.Helper()
	sys := sim.NewSystem()
	for _, p := range setup(sys) {
		sys.Spawn(p)
	}
	res, err := sys.Run(sim.Config{Scheduler: sched})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestSWMRReadWrite(t *testing.T) {
	res := run(t, sim.RoundRobin(), func(sys *sim.System) []sim.Program {
		r := registers.NewSWMR("r", 0, "init")
		sys.Add(r)
		return []sim.Program{
			func(e *sim.Env) (sim.Value, error) {
				before := r.Read(e)
				r.Write(e, "new")
				after := r.Read(e)
				return []sim.Value{before, after}, nil
			},
		}
	})
	got := res.Values[0].([]sim.Value)
	if got[0] != "init" || got[1] != "new" {
		t.Errorf("read sequence = %v, want [init new]", got)
	}
}

func TestSWMRReadByAnyone(t *testing.T) {
	res := run(t, sim.RoundRobin(), func(sys *sim.System) []sim.Program {
		r := registers.NewSWMR("r", 0, 42)
		sys.Add(r)
		return []sim.Program{
			func(e *sim.Env) (sim.Value, error) { return r.Read(e), nil },
			func(e *sim.Env) (sim.Value, error) { return r.Read(e), nil },
		}
	})
	for i := 0; i < 2; i++ {
		if res.Values[i] != 42 {
			t.Errorf("proc %d read %v, want 42", i, res.Values[i])
		}
	}
}

func TestSWMRRejectsForeignWriter(t *testing.T) {
	res := run(t, sim.RoundRobin(), func(sys *sim.System) []sim.Program {
		r := registers.NewSWMR("r", 1, 0)
		sys.Add(r)
		return []sim.Program{
			func(e *sim.Env) (sim.Value, error) { r.Write(e, 1); return nil, nil },
		}
	})
	if !errors.Is(res.Errors[0], registers.ErrNotOwner) {
		t.Errorf("error = %v, want ErrNotOwner", res.Errors[0])
	}
}

func TestSWMRRejectsUnknownOp(t *testing.T) {
	res := run(t, sim.RoundRobin(), func(sys *sim.System) []sim.Program {
		r := registers.NewSWMR("r", 0, 0)
		sys.Add(r)
		return []sim.Program{
			func(e *sim.Env) (sim.Value, error) { return e.Apply(r, "bogus"), nil },
		}
	})
	if !errors.Is(res.Errors[0], registers.ErrBadOp) {
		t.Errorf("error = %v, want ErrBadOp", res.Errors[0])
	}
}

func TestMWMRMultipleWriters(t *testing.T) {
	res := run(t, sim.RoundRobin(), func(sys *sim.System) []sim.Program {
		r := registers.NewMWMR("r", 0)
		sys.Add(r)
		prog := func(e *sim.Env) (sim.Value, error) {
			r.Write(e, int(e.ID())+10)
			return r.Read(e), nil
		}
		return []sim.Program{prog, prog}
	})
	for i := 0; i < 2; i++ {
		if res.Errors[i] != nil {
			t.Errorf("proc %d: %v", i, res.Errors[i])
		}
	}
}

func TestArrayAnnounceCollect(t *testing.T) {
	const n = 4
	res := run(t, sim.RoundRobin(), func(sys *sim.System) []sim.Program {
		arr := registers.NewArray(sys, "a", n, -1)
		progs := make([]sim.Program, n)
		for i := range progs {
			progs[i] = func(e *sim.Env) (sim.Value, error) {
				arr.Write(e, int(e.ID())*100)
				// Everyone has announced by now under round-robin only if
				// we wait; instead check our own slot plus types.
				got := arr.Collect(e)
				if got[e.ID()] != int(e.ID())*100 {
					t.Errorf("proc %d sees own slot %v", e.ID(), got[e.ID()])
				}
				return nil, nil
			}
		}
		return progs
	})
	for i := 0; i < n; i++ {
		if res.Errors[i] != nil {
			t.Errorf("proc %d: %v", i, res.Errors[i])
		}
	}
}

func TestArrayWriteOwnSlotOnly(t *testing.T) {
	res := run(t, sim.RoundRobin(), func(sys *sim.System) []sim.Program {
		arr := registers.NewArray(sys, "a", 2, nil)
		return []sim.Program{
			func(e *sim.Env) (sim.Value, error) {
				arr.Reg(1).Write(e, "stolen") // proc 0 writing proc 1's slot
				return nil, nil
			},
			func(e *sim.Env) (sim.Value, error) { return nil, nil },
		}
	})
	if !errors.Is(res.Errors[0], registers.ErrNotOwner) {
		t.Errorf("error = %v, want ErrNotOwner", res.Errors[0])
	}
}

func TestLabelCompatible(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"", "", true},
		{"", "abc", true},
		{"abc", "", true},
		{"ab", "abc", true},
		{"abc", "ab", true},
		{"abc", "abd", false},
		{"x", "y", false},
	}
	for _, tt := range tests {
		if got := registers.LabelCompatible(tt.a, tt.b); got != tt.want {
			t.Errorf("LabelCompatible(%q,%q) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestLabelCompatibleProperties(t *testing.T) {
	// Symmetry and prefix-reflexivity, checked property-style.
	symmetric := func(a, b string) bool {
		return registers.LabelCompatible(a, b) == registers.LabelCompatible(b, a)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	selfPrefix := func(a string, n uint8) bool {
		cut := int(n) % (len(a) + 1)
		return registers.LabelCompatible(a, a[:cut])
	}
	if err := quick.Check(selfPrefix, nil); err != nil {
		t.Errorf("self-prefix: %v", err)
	}
}

func TestTaggedAppendAndSelect(t *testing.T) {
	res := run(t, sim.RoundRobin(), func(sys *sim.System) []sim.Program {
		tr := registers.NewTagged("t", 0)
		sys.Add(tr)
		return []sim.Program{
			func(e *sim.Env) (sim.Value, error) {
				tr.Append(e, "a", 1)
				tr.Append(e, "ab", 2)
				tr.Append(e, "ax", 3) // diverging branch
				return nil, nil
			},
			func(e *sim.Env) (sim.Value, error) {
				// Wait for writer to finish (reads are cheap; bounded loop).
				for i := 0; i < 20; i++ {
					if len(tr.ReadAll(e)) == 3 {
						break
					}
				}
				v, ok := tr.ReadLabeled(e, "abz")
				return []sim.Value{v, ok}, nil
			},
		}
	})
	got := res.Values[1].([]sim.Value)
	// Reader label "abz": compatible entries are "a" (prefix) and "ab"
	// (prefix); "ax" diverges. Longest compatible label wins: "ab" → 2.
	if got[0] != 2 || got[1] != true {
		t.Errorf("ReadLabeled = %v, want [2 true]", got)
	}
}

func TestTaggedRejectsForeignAppend(t *testing.T) {
	res := run(t, sim.RoundRobin(), func(sys *sim.System) []sim.Program {
		tr := registers.NewTagged("t", 1)
		sys.Add(tr)
		return []sim.Program{
			func(e *sim.Env) (sim.Value, error) { tr.Append(e, "", 1); return nil, nil },
			func(e *sim.Env) (sim.Value, error) { return nil, nil },
		}
	})
	if !errors.Is(res.Errors[0], registers.ErrNotOwner) {
		t.Errorf("error = %v, want ErrNotOwner", res.Errors[0])
	}
}

func TestTaggedReadIsolation(t *testing.T) {
	// A returned entry slice must not alias the register's internals:
	// mutating it must not affect later reads.
	res := run(t, sim.RoundRobin(), func(sys *sim.System) []sim.Program {
		tr := registers.NewTagged("t", 0)
		sys.Add(tr)
		return []sim.Program{
			func(e *sim.Env) (sim.Value, error) {
				tr.Append(e, "a", 1)
				snap := tr.ReadAll(e)
				snap[0].Value = 999
				again := tr.ReadAll(e)
				return again[0].Value, nil
			},
		}
	})
	if res.Values[0] != 1 {
		t.Errorf("mutation leaked into register: got %v, want 1", res.Values[0])
	}
}

func TestSelectLabeledLatestAmongEqual(t *testing.T) {
	entries := []registers.Entry{
		{Label: "ab", Value: 1},
		{Label: "ab", Value: 2}, // later write, same label: must win
		{Label: "a", Value: 3},
	}
	v, ok := registers.SelectLabeled(entries, "ab")
	if !ok || v != 2 {
		t.Errorf("SelectLabeled = %v,%v, want 2,true", v, ok)
	}
}

func TestSelectLabeledEmpty(t *testing.T) {
	if _, ok := registers.SelectLabeled(nil, "a"); ok {
		t.Error("SelectLabeled on empty list reported ok")
	}
	_, ok := registers.SelectLabeled([]registers.Entry{{Label: "xy", Value: 1}}, "z")
	if ok {
		t.Error("SelectLabeled with incompatible labels reported ok")
	}
}

func TestSnapshotSequential(t *testing.T) {
	res := run(t, sim.RoundRobin(), func(sys *sim.System) []sim.Program {
		snap := registers.NewSnapshot(sys, "s", 2, 0)
		return []sim.Program{
			func(e *sim.Env) (sim.Value, error) {
				snap.Update(e, 10)
				return snap.Scan(e), nil
			},
			func(e *sim.Env) (sim.Value, error) {
				snap.Update(e, 20)
				return snap.Scan(e), nil
			},
		}
	})
	for i := 0; i < 2; i++ {
		view := res.Values[i].([]sim.Value)
		if view[sim.ProcID(i)] == 0 {
			t.Errorf("proc %d scan misses its own update: %v", i, view)
		}
	}
}

func TestSnapshotViewsAreMonotone(t *testing.T) {
	// Under many random schedules, successive scans by one process must
	// be monotone: components only move forward (here values only grow),
	// a consequence of linearizability for grow-only updates.
	for seed := int64(0); seed < 30; seed++ {
		sys := sim.NewSystem()
		snap := registers.NewSnapshot(sys, "s", 3, 0)
		for i := 0; i < 2; i++ {
			sys.Spawn(func(e *sim.Env) (sim.Value, error) {
				for v := 1; v <= 3; v++ {
					snap.Update(e, v)
				}
				return nil, nil
			})
		}
		sys.Spawn(func(e *sim.Env) (sim.Value, error) {
			var views [][]sim.Value
			for i := 0; i < 4; i++ {
				views = append(views, snap.Scan(e))
			}
			return views, nil
		})
		res, err := sys.Run(sim.Config{Scheduler: sim.Random(seed)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		views := res.Values[2].([][]sim.Value)
		for i := 1; i < len(views); i++ {
			for c := 0; c < 3; c++ {
				if views[i][c].(int) < views[i-1][c].(int) {
					t.Fatalf("seed %d: scan %d went backwards at component %d: %v then %v",
						seed, i, c, views[i-1], views[i])
				}
			}
		}
	}
}

func TestSnapshotScanReflectsCompletedUpdates(t *testing.T) {
	// A scan that starts after an update completed must include it.
	res := run(t, sim.RoundRobin(), func(sys *sim.System) []sim.Program {
		snap := registers.NewSnapshot(sys, "s", 1, 0)
		return []sim.Program{
			func(e *sim.Env) (sim.Value, error) {
				snap.Update(e, 5)
				return snap.Scan(e), nil
			},
		}
	})
	view := res.Values[0].([]sim.Value)
	if !reflect.DeepEqual(view, []sim.Value{5}) {
		t.Errorf("scan = %v, want [5]", view)
	}
}

// TestMWFromSWLinearizable checks the multi-writer-from-single-writer
// construction (the paper's "w.l.o.g. registers are SWMR") against the
// register spec with the linearizability checker: exhaustively for two
// writers, randomized (with crashes) for three.
func TestMWFromSWLinearizable(t *testing.T) {
	builder := func(n int) func() *sim.System {
		return func() *sim.System {
			sys := sim.NewSystem()
			r := registers.NewMWFromSW(sys, "mw", n, 0)
			for i := 0; i < n; i++ {
				i := i
				sys.Spawn(func(e *sim.Env) (sim.Value, error) {
					r.Write(e, 10+i)
					v1 := r.Read(e)
					r.Write(e, 20+i)
					v2 := r.Read(e)
					return []sim.Value{v1, v2}, nil
				})
			}
			return sys
		}
	}
	check := func(res *sim.Result) error {
		rep := linearize.Check(spec.Register{Initial: 0}, res.Trace.SpansOf("mw"), linearize.Options{AllowPending: true})
		if !rep.Ok {
			return fmt.Errorf("history not linearizable (explored %d)", rep.Explored)
		}
		return nil
	}
	// Exhaustive, two writers (traces must stay on: use Visit+replay).
	violations := 0
	explore.Visit(builder(2), explore.Options{MaxRuns: 15000}, func(o explore.Outcome) bool {
		if o.Result.Halted {
			return true
		}
		sys := builder(2)()
		var picks []sim.ProcID
		for _, c := range o.Schedule {
			picks = append(picks, c.Pick)
		}
		res, err := sys.Run(sim.Config{Scheduler: sim.Replay(picks)})
		if err != nil {
			t.Fatal(err)
		}
		if err := check(res); err != nil {
			violations++
			t.Errorf("schedule %s: %v", explore.FormatSchedule(o.Schedule), err)
			return false
		}
		return true
	})
	if violations > 0 {
		return
	}
	// Randomized, three writers.
	for seed := int64(0); seed < 30; seed++ {
		sys := builder(3)()
		cfg := sim.Config{Scheduler: sim.Random(seed)}
		if seed%3 == 0 {
			cfg.Faults = sim.RandomCrashes(seed, 0.05, 1)
		}
		res, err := sys.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := check(res); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}
