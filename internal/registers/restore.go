package registers

import "repro/internal/sim"

// Restorable (snapshot/restore) support for the register types used by
// machine-backed protocols; see internal/objects/restore.go for the
// contract. Only the current value is mutable state — owner and initial
// are static structure.

var (
	_ sim.Restorable = (*SWMR)(nil)
	_ sim.Restorable = (*MWMR)(nil)
)

// SaveState implements sim.Restorable.
func (r *SWMR) SaveState(s *sim.Snap) { s.Value(r.value) }

// RestoreState implements sim.Restorable.
func (r *SWMR) RestoreState(sr *sim.SnapReader) { r.value = sr.Value() }

// SaveState implements sim.Restorable.
func (r *MWMR) SaveState(s *sim.Snap) { s.Value(r.value) }

// RestoreState implements sim.Restorable.
func (r *MWMR) RestoreState(sr *sim.SnapReader) { r.value = sr.Value() }
