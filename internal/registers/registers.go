// Package registers provides the read/write register substrate assumed
// by the paper: atomic single-writer multi-reader (SWMR) and
// multi-writer multi-reader (MWMR) registers, register arrays, the
// label-tagged append registers used by the emulation (§3.1.2 of the
// paper), and a wait-free atomic snapshot built from SWMR registers
// (needed by Figure 3, line 2 of the emulation).
package registers

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// ErrNotOwner is returned when a process writes a single-writer
// register it does not own.
var ErrNotOwner = errors.New("registers: write by non-owner")

// ErrBadOp is returned for operation kinds a register does not support.
var ErrBadOp = errors.New("registers: unsupported operation")

// SWMR is an atomic single-writer multi-reader register. Any process
// may read; only the owner may write. This is the register type the
// paper assumes w.l.o.g. for algorithm A.
type SWMR struct {
	name    string
	owner   sim.ProcID
	value   sim.Value
	initial sim.Value
}

var _ sim.Object = (*SWMR)(nil)

// NewSWMR returns a SWMR register owned by owner with the given initial
// value.
func NewSWMR(name string, owner sim.ProcID, initial sim.Value) *SWMR {
	return &SWMR{name: name, owner: owner, value: initial, initial: initial}
}

// ResetObject implements sim.Resettable (injected reset faults).
func (r *SWMR) ResetObject() { r.value = r.initial }

// Name implements sim.Object.
func (r *SWMR) Name() string { return r.name }

// Owner returns the register's unique writer.
func (r *SWMR) Owner() sim.ProcID { return r.owner }

// Apply implements sim.Object.
func (r *SWMR) Apply(caller sim.ProcID, op sim.OpKind, args []sim.Value) (sim.Value, error) {
	switch op {
	case sim.OpRead:
		return r.value, nil
	case sim.OpWrite:
		if caller != r.owner {
			return nil, fmt.Errorf("%w: proc %d writes %q owned by %d", ErrNotOwner, caller, r.name, r.owner)
		}
		r.value = args[0]
		return nil, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrBadOp, op)
	}
}

// Read performs an atomic read as a scheduler-gated step.
func (r *SWMR) Read(e *sim.Env) sim.Value { return e.Apply0(r, sim.OpRead) }

// Write performs an atomic write as a scheduler-gated step.
func (r *SWMR) Write(e *sim.Env, v sim.Value) { e.Apply1(r, sim.OpWrite, v) }

// MWMR is an atomic multi-writer multi-reader register.
type MWMR struct {
	name    string
	value   sim.Value
	initial sim.Value
}

var _ sim.Object = (*MWMR)(nil)

// NewMWMR returns a MWMR register with the given initial value.
func NewMWMR(name string, initial sim.Value) *MWMR {
	return &MWMR{name: name, value: initial, initial: initial}
}

// ResetObject implements sim.Resettable (injected reset faults).
func (r *MWMR) ResetObject() { r.value = r.initial }

// Name implements sim.Object.
func (r *MWMR) Name() string { return r.name }

// Apply implements sim.Object.
func (r *MWMR) Apply(_ sim.ProcID, op sim.OpKind, args []sim.Value) (sim.Value, error) {
	switch op {
	case sim.OpRead:
		return r.value, nil
	case sim.OpWrite:
		r.value = args[0]
		return nil, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrBadOp, op)
	}
}

// Read performs an atomic read as a scheduler-gated step.
func (r *MWMR) Read(e *sim.Env) sim.Value { return e.Apply0(r, sim.OpRead) }

// Write performs an atomic write as a scheduler-gated step.
func (r *MWMR) Write(e *sim.Env, v sim.Value) { e.Apply1(r, sim.OpWrite, v) }

// Array is a bank of SWMR registers, one per process, the standard
// "announce array" shape. Register i is owned by process i.
type Array struct {
	regs []*SWMR
}

// NewArray creates and registers n SWMR registers named
// "name[0]".."name[n-1]", register i owned by process i, all holding
// initial.
func NewArray(sys *sim.System, name string, n int, initial sim.Value) *Array {
	a := &Array{regs: make([]*SWMR, n)}
	for i := 0; i < n; i++ {
		a.regs[i] = NewSWMR(fmt.Sprintf("%s[%d]", name, i), sim.ProcID(i), initial)
		sys.Add(a.regs[i])
	}
	return a
}

// Len returns the number of registers in the array.
func (a *Array) Len() int { return len(a.regs) }

// Reg returns the i-th register.
func (a *Array) Reg(i int) *SWMR { return a.regs[i] }

// Read reads register i.
func (a *Array) Read(e *sim.Env, i int) sim.Value { return a.regs[i].Read(e) }

// Write writes the caller's own register. It is the common case, so the
// index is implicit in the caller's identity.
func (a *Array) Write(e *sim.Env, v sim.Value) { a.regs[e.ID()].Write(e, v) }

// Collect reads all registers one by one (not atomic; use Snapshot for
// an atomic view).
func (a *Array) Collect(e *sim.Env) []sim.Value {
	out := make([]sim.Value, len(a.regs))
	for i, r := range a.regs {
		out[i] = r.Read(e)
	}
	return out
}
