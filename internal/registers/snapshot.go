package registers

import (
	"fmt"

	"repro/internal/sim"
)

// Snapshot is a wait-free atomic snapshot object built from SWMR
// registers, after Afek, Attiya, Dolev, Gafni, Merritt and Shavit
// ("Atomic Snapshots of Shared Memory", JACM 1993, unbounded-sequence
// variant). Component i is updated only by process i; Scan returns a
// vector of all components that is linearizable with all updates.
//
// The emulation (paper Figure 3, line 2) begins every iteration with an
// atomic snapshot of the shared state; this object is that primitive,
// built honestly from the read/write substrate rather than assumed.
type Snapshot struct {
	name  string
	cells []*SWMR
}

// snapCell is the content of one component's SWMR register.
type snapCell struct {
	data sim.Value
	seq  int
	view []sim.Value // embedded scan, used by interfered scanners
}

// NewSnapshot creates a snapshot object with n components, all holding
// initial, and registers its n underlying SWMR registers with sys.
// Component i is owned (updatable) by process i.
func NewSnapshot(sys *sim.System, name string, n int, initial sim.Value) *Snapshot {
	s := &Snapshot{name: name, cells: make([]*SWMR, n)}
	initView := make([]sim.Value, n)
	for i := range initView {
		initView[i] = initial
	}
	for i := 0; i < n; i++ {
		cell := snapCell{data: initial, seq: 0, view: initView}
		s.cells[i] = NewSWMR(fmt.Sprintf("%s.cell[%d]", name, i), sim.ProcID(i), cell)
		sys.Add(s.cells[i])
	}
	return s
}

// Len returns the number of components.
func (s *Snapshot) Len() int { return len(s.cells) }

// Update atomically (in the linearizability sense) sets the caller's
// component to v. It embeds a fresh scan so that concurrent scanners
// interfered with twice can borrow a consistent view.
func (s *Snapshot) Update(e *sim.Env, v sim.Value) {
	sp := e.BeginOp(s.name, "update", v)
	view := s.scan(e)
	old := s.cells[e.ID()].Read(e).(snapCell)
	s.cells[e.ID()].Write(e, snapCell{data: v, seq: old.seq + 1, view: view})
	e.EndOp(sp, nil)
}

// Scan returns an atomic view of all components.
func (s *Snapshot) Scan(e *sim.Env) []sim.Value {
	sp := e.BeginOp(s.name, "scan")
	view := s.scan(e)
	e.EndOp(sp, fmt.Sprint(view))
	return view
}

// scan is the double-collect core, shared by Scan and Update.
func (s *Snapshot) scan(e *sim.Env) []sim.Value {
	n := len(s.cells)
	moved := make([]bool, n)
	for {
		c1 := s.collect(e)
		c2 := s.collect(e)
		same := true
		for i := 0; i < n; i++ {
			if c1[i].seq != c2[i].seq {
				same = false
				break
			}
		}
		if same {
			view := make([]sim.Value, n)
			for i := 0; i < n; i++ {
				view[i] = c2[i].data
			}
			return view
		}
		for i := 0; i < n; i++ {
			if c1[i].seq == c2[i].seq {
				continue
			}
			if moved[i] {
				// Component i moved twice during our scan: its embedded
				// view is a snapshot taken entirely within our interval.
				view := make([]sim.Value, n)
				copy(view, c2[i].view)
				return view
			}
			moved[i] = true
		}
	}
}

// collect reads all component registers one by one.
func (s *Snapshot) collect(e *sim.Env) []snapCell {
	out := make([]snapCell, len(s.cells))
	for i, c := range s.cells {
		out[i] = c.Read(e).(snapCell)
	}
	return out
}

// UnsafeSingleCollect reads all components once, without the
// double-collect protocol. It is NOT linearizable; it exists for the
// snapshot ablation experiment (DESIGN.md §5.3), where the
// linearizability checker demonstrates the difference.
func (s *Snapshot) UnsafeSingleCollect(e *sim.Env) []sim.Value {
	sp := e.BeginOp(s.name, "scan")
	cells := s.collect(e)
	view := make([]sim.Value, len(cells))
	for i, c := range cells {
		view[i] = c.data
	}
	e.EndOp(sp, fmt.Sprint(view))
	return view
}
