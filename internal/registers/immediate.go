package registers

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// ImmediateSnapshot is a one-shot immediate snapshot object (Borowsky &
// Gafni), the combinatorial primitive behind the topology-based
// set-consensus impossibility the paper's reduction targets. Each of n
// processes calls WriteRead once with a value and receives a view — a
// set of (process, value) pairs — satisfying the three immediate
// snapshot laws:
//
//	self-inclusion: a process's view contains its own pair;
//	containment:    any two views are ordered by inclusion;
//	immediacy:      if p's view contains q's pair, then q's view is a
//	                subset of p's view.
//
// Implementation: the classic level-descent algorithm. A process starts
// at level n and repeatedly writes (value, level) and collects; if the
// number of processes at levels ≤ its own equals its level, it returns
// exactly those; otherwise it descends one level.
type ImmediateSnapshot struct {
	name  string
	cells []*SWMR
	n     int
}

// isCell is one participant's published (value, level) pair.
type isCell struct {
	value   sim.Value
	level   int
	present bool
}

// NewImmediateSnapshot builds the object for n processes (IDs 0..n−1)
// and registers its cells with sys.
func NewImmediateSnapshot(sys *sim.System, name string, n int) *ImmediateSnapshot {
	is := &ImmediateSnapshot{name: name, n: n, cells: make([]*SWMR, n)}
	for i := 0; i < n; i++ {
		is.cells[i] = NewSWMR(fmt.Sprintf("%s.cell[%d]", name, i), sim.ProcID(i), isCell{})
		sys.Add(is.cells[i])
	}
	return is
}

// Pair is one entry of an immediate-snapshot view.
type Pair struct {
	Proc  sim.ProcID
	Value sim.Value
}

// WriteRead submits the caller's value and returns its view, sorted by
// process id. Each process must call it exactly once.
func (is *ImmediateSnapshot) WriteRead(e *sim.Env, v sim.Value) []Pair {
	me := int(e.ID())
	for level := is.n; level >= 1; level-- {
		is.cells[me].Write(e, isCell{value: v, level: level, present: true})
		var at []Pair
		for i, c := range is.cells {
			cell := c.Read(e).(isCell)
			if cell.present && cell.level <= level {
				at = append(at, Pair{Proc: sim.ProcID(i), Value: cell.value})
			}
		}
		if len(at) == level {
			sort.Slice(at, func(i, j int) bool { return at[i].Proc < at[j].Proc })
			return at
		}
	}
	// Unreachable: at level 1 the caller alone satisfies the condition.
	panic("registers: immediate snapshot descended below level 1")
}

// CheckImmediacy verifies the three immediate-snapshot laws over a set
// of returned views (indexed by process). Views of processes that did
// not finish are nil and skipped. It returns an error naming the first
// violated law.
func CheckImmediacy(views [][]Pair) error {
	has := func(view []Pair, p sim.ProcID) bool {
		for _, pr := range view {
			if pr.Proc == p {
				return true
			}
		}
		return false
	}
	subset := func(a, b []Pair) bool {
		for _, pr := range a {
			if !has(b, pr.Proc) {
				return false
			}
		}
		return true
	}
	for p, view := range views {
		if view == nil {
			continue
		}
		if !has(view, sim.ProcID(p)) {
			return fmt.Errorf("registers: immediacy: view of p%d misses itself", p)
		}
	}
	for p, vp := range views {
		if vp == nil {
			continue
		}
		for q, vq := range views {
			if vq == nil || p == q {
				continue
			}
			if !subset(vp, vq) && !subset(vq, vp) {
				return fmt.Errorf("registers: containment violated between p%d and p%d", p, q)
			}
			if has(vp, sim.ProcID(q)) && !subset(vq, vp) {
				return fmt.Errorf("registers: immediacy violated: p%d sees p%d but p%d's view is not contained", p, q, q)
			}
		}
	}
	return nil
}
