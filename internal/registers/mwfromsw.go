package registers

import (
	"fmt"

	"repro/internal/sim"
)

// MWFromSW is a multi-writer multi-reader atomic register built from
// single-writer registers (the classic unbounded-timestamp
// construction, after Vitányi–Awerbuch; the paper's §3 invokes
// references [3, 17, 19, 22] to assume w.l.o.g. that algorithm A's
// registers are single-writer — this object is that w.l.o.g., run
// forward). Each writer owns one SWMR cell holding (timestamp, writer,
// value); a write collects all cells, picks a timestamp above every one
// it saw, and publishes; a read collects and returns the value with the
// lexicographically largest (timestamp, writer) pair. Ties are broken
// by writer id, so the pairs are totally ordered and the construction
// linearizes (TestMWFromSWLinearizable checks it against the register
// spec on every schedule of small instances).
type MWFromSW struct {
	name  string
	cells []*SWMR
}

// mwCell is one writer's published (timestamp, value).
type mwCell struct {
	ts    int
	wid   int
	value sim.Value
}

// NewMWFromSW builds the register for n processes (IDs 0..n−1) with the
// given initial value and registers its cells with sys.
func NewMWFromSW(sys *sim.System, name string, n int, initial sim.Value) *MWFromSW {
	r := &MWFromSW{name: name, cells: make([]*SWMR, n)}
	for i := 0; i < n; i++ {
		r.cells[i] = NewSWMR(fmt.Sprintf("%s.w[%d]", name, i), sim.ProcID(i), mwCell{value: initial})
		sys.Add(r.cells[i])
	}
	return r
}

// collectMax returns the cell with the largest (ts, wid).
func (r *MWFromSW) collectMax(e *sim.Env) mwCell {
	best := r.cells[0].Read(e).(mwCell)
	for _, c := range r.cells[1:] {
		cur := c.Read(e).(mwCell)
		if cur.ts > best.ts || (cur.ts == best.ts && cur.wid > best.wid) {
			best = cur
		}
	}
	return best
}

// Write performs an atomic (linearizable) multi-writer write.
func (r *MWFromSW) Write(e *sim.Env, v sim.Value) {
	sp := e.BeginOp(r.name, sim.OpWrite, v)
	best := r.collectMax(e)
	r.cells[e.ID()].Write(e, mwCell{ts: best.ts + 1, wid: int(e.ID()), value: v})
	e.EndOp(sp, nil)
}

// Read performs an atomic (linearizable) read.
func (r *MWFromSW) Read(e *sim.Env) sim.Value {
	sp := e.BeginOp(r.name, sim.OpRead)
	best := r.collectMax(e)
	e.EndOp(sp, best.value)
	return best.value
}
