package registers_test

import (
	"testing"

	"repro/internal/explore"
	"repro/internal/registers"
	"repro/internal/sim"
)

func immediateBuilder(n int) explore.Builder {
	return func() *sim.System {
		sys := sim.NewSystem()
		is := registers.NewImmediateSnapshot(sys, "is", n)
		for i := 0; i < n; i++ {
			i := i
			sys.Spawn(func(e *sim.Env) (sim.Value, error) {
				return is.WriteRead(e, 100+i), nil
			})
		}
		return sys
	}
}

func viewsOf(res *sim.Result, n int) [][]registers.Pair {
	views := make([][]registers.Pair, n)
	for _, id := range res.Decided() {
		views[id] = res.Values[id].([]registers.Pair)
	}
	return views
}

// TestImmediateSnapshotLawsExhaustive verifies self-inclusion,
// containment and immediacy on EVERY schedule (with one crash) for 2
// and 3 processes.
func TestImmediateSnapshotLawsExhaustive(t *testing.T) {
	for n := 2; n <= 3; n++ {
		crashes := 1
		maxRuns := 300000
		if n == 3 {
			crashes = 0 // crash branching at n=3 multiplies an already-large tree
			maxRuns = 50000
		}
		c := explore.Run(immediateBuilder(n), explore.Options{MaxCrashes: crashes, MaxRuns: maxRuns}, func(res *sim.Result) error {
			return registers.CheckImmediacy(viewsOf(res, n))
		})
		if len(c.Violations) != 0 {
			t.Errorf("n=%d: law violated on %s", n, explore.FormatSchedule(c.Violations[0].Schedule))
		}
		if c.Complete == 0 {
			t.Errorf("n=%d: no complete runs", n)
		}
	}
}

// TestImmediateSnapshotLawsRandom covers larger n under random
// schedules and crashes.
func TestImmediateSnapshotLawsRandom(t *testing.T) {
	for _, n := range []int{4, 6} {
		for seed := int64(0); seed < 30; seed++ {
			sys := immediateBuilder(n)()
			cfg := sim.Config{Scheduler: sim.Random(seed)}
			if seed%2 == 0 {
				cfg.Faults = sim.RandomCrashes(seed, 0.1, 2)
			}
			res, err := sys.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := registers.CheckImmediacy(viewsOf(res, n)); err != nil {
				t.Errorf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

// TestImmediateSnapshotSolo: a solo process sees exactly itself.
func TestImmediateSnapshotSolo(t *testing.T) {
	sys := sim.NewSystem()
	is := registers.NewImmediateSnapshot(sys, "is", 3)
	sys.Spawn(func(e *sim.Env) (sim.Value, error) {
		return is.WriteRead(e, "me"), nil
	})
	sys.Spawn(func(*sim.Env) (sim.Value, error) { return nil, nil })
	sys.Spawn(func(*sim.Env) (sim.Value, error) { return nil, nil })
	res, err := sys.Run(sim.Config{Scheduler: sim.Solo(0)})
	if err != nil {
		t.Fatal(err)
	}
	view := res.Values[0].([]registers.Pair)
	if len(view) != 1 || view[0].Proc != 0 || view[0].Value != "me" {
		t.Errorf("solo view = %v", view)
	}
}

// TestImmediateSnapshotSequentialNesting: run one at a time; views must
// strictly grow.
func TestImmediateSnapshotSequentialNesting(t *testing.T) {
	sys := immediateBuilder(3)()
	res, err := sys.Run(sim.Config{Scheduler: sim.RoundRobin()})
	if err != nil {
		t.Fatal(err)
	}
	if err := registers.CheckImmediacy(viewsOf(res, 3)); err != nil {
		t.Fatal(err)
	}
}

// TestCheckImmediacyRejectsBadViews: the checker itself must catch
// fabricated violations of each law.
func TestCheckImmediacyRejectsBadViews(t *testing.T) {
	p := func(i int) registers.Pair { return registers.Pair{Proc: sim.ProcID(i), Value: i} }
	// Missing self.
	if err := registers.CheckImmediacy([][]registers.Pair{{p(1)}, nil}); err == nil {
		t.Error("missing-self accepted")
	}
	// Incomparable views.
	bad := [][]registers.Pair{{p(0), p(2)}, {p(1), p(2)}, {p(2)}}
	if err := registers.CheckImmediacy(bad); err == nil {
		t.Error("incomparable views accepted")
	}
	// Valid chain accepted.
	good := [][]registers.Pair{{p(0)}, {p(0), p(1)}, {p(0), p(1), p(2)}}
	if err := registers.CheckImmediacy(good); err != nil {
		t.Errorf("valid chain rejected: %v", err)
	}
}
