package registers

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// OpAppend appends a (label, value) entry to a Tagged register.
const OpAppend sim.OpKind = "append"

// Entry is one tagged write in a Tagged register's history.
type Entry struct {
	// Label is the label of the writing emulator at write time, encoded
	// as a string (each symbol one byte offset; see the core package).
	Label string
	// Value is the written value.
	Value sim.Value
}

// Tagged is the emulation's representation of one SWMR register of the
// emulated algorithm A (paper §3.1.2, "R/W registers"): a single-writer
// append-only list of values, each tagged with the label of the writer
// at the time of the write. A write appends; a read returns the whole
// list, and the reader locally selects the latest entry whose label is
// a prefix or an extension of its own label.
//
// Both operations are single atomic steps: the owner's append is one
// SWMR write of the extended list, and a read is one SWMR read of the
// list, exactly as in the paper's construction.
type Tagged struct {
	name    string
	owner   sim.ProcID
	entries []Entry
}

var _ sim.Object = (*Tagged)(nil)

// NewTagged returns an empty tagged register owned by owner.
func NewTagged(name string, owner sim.ProcID) *Tagged {
	return &Tagged{name: name, owner: owner}
}

// Name implements sim.Object.
func (t *Tagged) Name() string { return t.name }

// Apply implements sim.Object.
func (t *Tagged) Apply(caller sim.ProcID, op sim.OpKind, args []sim.Value) (sim.Value, error) {
	switch op {
	case sim.OpRead:
		// Copy at the boundary: readers must not observe later appends.
		out := make([]Entry, len(t.entries))
		copy(out, t.entries)
		return out, nil
	case OpAppend:
		if caller != t.owner {
			return nil, fmt.Errorf("%w: proc %d appends to %q owned by %d", ErrNotOwner, caller, t.name, t.owner)
		}
		t.entries = append(t.entries, Entry{Label: args[0].(string), Value: args[1]})
		return nil, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrBadOp, op)
	}
}

// Append performs an atomic tagged write.
func (t *Tagged) Append(e *sim.Env, label string, v sim.Value) {
	e.Apply2(t, OpAppend, label, v)
}

// ReadAll atomically reads the full entry list.
func (t *Tagged) ReadAll(e *sim.Env) []Entry {
	return e.Apply0(t, sim.OpRead).([]Entry)
}

// ReadLabeled atomically reads the register and returns the latest
// entry compatible with the reader's label (its label is a prefix or an
// extension of label), preferring — as the paper specifies — the entry
// with the longest such label. ok is false if no compatible entry
// exists.
func (t *Tagged) ReadLabeled(e *sim.Env, label string) (v sim.Value, ok bool) {
	entries := t.ReadAll(e)
	return SelectLabeled(entries, label)
}

// SelectLabeled picks from entries the latest entry among those with
// the longest label that is a prefix or an extension of label. It is
// the local selection rule of the paper's emulated read.
func SelectLabeled(entries []Entry, label string) (v sim.Value, ok bool) {
	best := -1
	bestLen := -1
	for i, en := range entries {
		if !LabelCompatible(en.Label, label) {
			continue
		}
		if len(en.Label) >= bestLen {
			// ">=" keeps the latest among equally long labels.
			best, bestLen = i, len(en.Label)
		}
	}
	if best < 0 {
		return nil, false
	}
	return entries[best].Value, true
}

// LabelCompatible reports whether a is a prefix of b or b is a prefix
// of a (the emulation's "same run" relation between labels).
func LabelCompatible(a, b string) bool {
	return strings.HasPrefix(a, b) || strings.HasPrefix(b, a)
}
