package registers_test

import (
	"fmt"
	"testing"

	"repro/internal/registers"
	"repro/internal/sim"
)

// BenchmarkSnapshotScan measures the double-collect scan cost as the
// component count grows (quiescent case: two collects).
func BenchmarkSnapshotScan(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := sim.NewSystem()
				snap := registers.NewSnapshot(sys, "s", n, 0)
				sys.Spawn(func(e *sim.Env) (sim.Value, error) {
					for j := 0; j < 8; j++ {
						snap.Scan(e)
					}
					return nil, nil
				})
				for p := 1; p < n; p++ {
					sys.Spawn(func(*sim.Env) (sim.Value, error) { return nil, nil })
				}
				if _, err := sys.Run(sim.Config{DisableTrace: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTaggedAppendRead measures the emulation's register
// representation: appends plus label-filtered reads over growing lists.
func BenchmarkTaggedAppendRead(b *testing.B) {
	for _, writes := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("writes=%d", writes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := sim.NewSystem()
				tr := registers.NewTagged("t", 0)
				sys.Add(tr)
				sys.Spawn(func(e *sim.Env) (sim.Value, error) {
					for j := 0; j < writes; j++ {
						tr.Append(e, "a", j)
					}
					v, _ := tr.ReadLabeled(e, "ab")
					return v, nil
				})
				if _, err := sys.Run(sim.Config{DisableTrace: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkImmediateSnapshot measures the level-descent write-read for
// n concurrent participants.
func BenchmarkImmediateSnapshot(b *testing.B) {
	for _, n := range []int{3, 6, 12} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := sim.NewSystem()
				is := registers.NewImmediateSnapshot(sys, "is", n)
				for p := 0; p < n; p++ {
					p := p
					sys.Spawn(func(e *sim.Env) (sim.Value, error) {
						return is.WriteRead(e, p), nil
					})
				}
				if _, err := sys.Run(sim.Config{Scheduler: sim.Random(int64(i)), DisableTrace: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
