package agents

import (
	"sort"
	"strconv"
	"strings"
)

// ExactLongestRun computes the exact maximum number of moves achievable
// in the Lemma 1.1 game with m agents on k nodes (all starting at node
// 0), by memoized search over abstract states. The abstraction is
// sound and complete for the game's future: the painted-edge matrix,
// plus each agent's (position, jumpability bitmap) — jumpability of
// node u for agent a ("someone moved into u since a's last visit") is
// all the clock information the rules consume, and agents with equal
// (position, bitmap) are interchangeable, so states canonicalize by
// sorting agents.
//
// The state graph is a DAG: a move strictly grows the painted matrix; a
// jump strictly shrinks the total jumpability mass without touching the
// matrix. Hence plain memoization terminates.
//
// Feasible sizes: (m ≤ 3, k ≤ 3) instantly; (2, 4) in ~seconds. The
// exact values calibrate how loose the lemma's m^k bound is.
func ExactLongestRun(m, k int) int {
	s := exactState{
		painted: make([]bool, k*k),
		agents:  make([]agentState, m),
	}
	e := &exactSearch{k: k, memo: make(map[string]int)}
	return e.best(s)
}

// agentState is one agent's abstract state: position plus the bitmap of
// nodes it may currently jump to.
type agentState struct {
	pos  int
	jump uint32
}

type exactState struct {
	painted []bool // k×k row-major adjacency
	agents  []agentState
}

type exactSearch struct {
	k    int
	memo map[string]int
}

func (e *exactSearch) best(s exactState) int {
	key := e.encode(s)
	if v, ok := e.memo[key]; ok {
		return v
	}
	bestMoves := 0
	k := e.k
	for a := range s.agents {
		from := s.agents[a].pos
		for u := 0; u < k; u++ {
			if u == from {
				continue
			}
			// Move a → u, unless it closes a cycle.
			if !e.closes(s.painted, from, u) {
				next := e.clone(s)
				next.painted[from*k+u] = true
				next.agents[a].pos = u
				next.agents[a].jump &^= 1 << uint(u) // fresh visit
				// Everyone else may now jump to u.
				for b := range next.agents {
					if b != a {
						next.agents[b].jump |= 1 << uint(u)
					}
				}
				if v := 1 + e.best(next); v > bestMoves {
					bestMoves = v
				}
			}
			// Jump a → u.
			if s.agents[a].jump&(1<<uint(u)) != 0 {
				next := e.clone(s)
				next.agents[a].pos = u
				next.agents[a].jump &^= 1 << uint(u)
				if v := e.best(next); v > bestMoves {
					bestMoves = v
				}
			}
		}
	}
	e.memo[key] = bestMoves
	return bestMoves
}

// closes reports whether painting from→to would create a directed cycle.
func (e *exactSearch) closes(painted []bool, from, to int) bool {
	k := e.k
	seen := make([]bool, k)
	stack := []int{to}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == from {
			return true
		}
		if seen[x] {
			continue
		}
		seen[x] = true
		for y := 0; y < k; y++ {
			if painted[x*k+y] && !seen[y] {
				stack = append(stack, y)
			}
		}
	}
	return false
}

func (e *exactSearch) clone(s exactState) exactState {
	out := exactState{
		painted: append([]bool(nil), s.painted...),
		agents:  append([]agentState(nil), s.agents...),
	}
	return out
}

// encode canonicalizes the state: agents are interchangeable, so their
// (pos, jump) pairs are sorted.
func (e *exactSearch) encode(s exactState) string {
	var b strings.Builder
	for _, p := range s.painted {
		if p {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	pairs := make([]agentState, len(s.agents))
	copy(pairs, s.agents)
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].pos != pairs[j].pos {
			return pairs[i].pos < pairs[j].pos
		}
		return pairs[i].jump < pairs[j].jump
	})
	for _, p := range pairs {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(p.pos))
		b.WriteByte(',')
		b.WriteString(strconv.FormatUint(uint64(p.jump), 16))
	}
	return b.String()
}
