package agents

import (
	"errors"
	"fmt"
	"math/rand"
)

// VerifyPotentialLaw replays the game's log under the final topological
// ranking and checks the facts the lemma's proof rests on:
//
//  1. every move goes downward in rank (its painted edge is in the
//     final acyclic graph),
//  2. Φ₀ ≤ m·base^(k−1) and Φ_end ≥ m (every weight is ≥ 1), and
//  3. moves ≤ Φ₀ − Φ_end — each move's decrease of ≥ base−1 pays for
//     the at most m−1 jumps (gain ≤ weight−1 each) it enables,
//
// which together yield moves ≤ m·m^(k−1) = m^k for m ≥ 2 agents.
// The painted graph must be acyclic (the run must have stopped before
// closing a cycle).
func (g *Game) VerifyPotentialLaw(start []int) error {
	rank, err := g.TopoRanks()
	if err != nil {
		return err
	}
	if len(start) != g.m {
		return fmt.Errorf("agents: start has %d positions, want %d", len(start), g.m)
	}
	base := g.m
	if base < 2 {
		base = 2
	}
	weight := func(node int) int {
		w := 1
		for i := 0; i < rank[node]; i++ {
			w *= base
		}
		return w
	}
	pos := make([]int, g.m)
	copy(pos, start)
	phi0 := 0
	for _, p := range pos {
		phi0 += weight(p)
	}
	maxPhi := g.m
	for i := 0; i < g.k-1; i++ {
		maxPhi *= base
	}
	if phi0 > maxPhi {
		return fmt.Errorf("agents: Φ₀ = %d exceeds m·base^(k−1) = %d", phi0, maxPhi)
	}
	phi := phi0
	moves := 0
	for _, ev := range g.log {
		if pos[ev.Agent] != ev.From {
			return fmt.Errorf("agents: log corrupt: %s but agent at %d", ev, pos[ev.Agent])
		}
		if ev.Kind == EventMove {
			moves++
			if rank[ev.From] <= rank[ev.To] {
				return fmt.Errorf("agents: move %s goes upward under final ranking", ev)
			}
		}
		phi += weight(ev.To) - weight(ev.From)
		pos[ev.Agent] = ev.To
	}
	if phi < g.m {
		return fmt.Errorf("agents: final potential %d below agent count %d", phi, g.m)
	}
	if moves > phi0-phi {
		return fmt.Errorf("agents: potential law violated: %d moves, Φ only fell %d → %d", moves, phi0, phi)
	}
	return nil
}

// RandomRun plays random legal actions (biased toward moves) until no
// move is possible without closing a cycle, and returns the game.
// Deterministic in seed.
func RandomRun(m, k int, seed int64, maxActions int) (*Game, []int, error) {
	rng := rand.New(rand.NewSource(seed))
	start := make([]int, m)
	for i := range start {
		start[i] = rng.Intn(k)
	}
	g, err := New(k, start)
	if err != nil {
		return nil, nil, err
	}
	for actions := 0; actions < maxActions; actions++ {
		type action struct {
			a, u int
			jump bool
		}
		var moves, jumps []action
		for a := 0; a < m; a++ {
			for u := 0; u < k; u++ {
				if u == g.Position(a) {
					continue
				}
				if !g.wouldClose(g.Position(a), u) {
					moves = append(moves, action{a, u, false})
				}
				if g.CanJump(a, u) {
					jumps = append(jumps, action{a, u, true})
				}
			}
		}
		if len(moves) == 0 {
			return g, start, nil // no safe move remains: run over
		}
		pick := moves[rng.Intn(len(moves))]
		if len(jumps) > 0 && rng.Intn(4) == 0 {
			pick = jumps[rng.Intn(len(jumps))]
		}
		if pick.jump {
			err = g.Jump(pick.a, pick.u)
		} else {
			err = g.Move(pick.a, pick.u)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("agents: random run: %w", err)
		}
	}
	return g, start, nil
}

// LongestRun searches exhaustively (DFS over all action sequences) for
// the maximum number of moves achievable before every further move
// would close a cycle. Feasible only for tiny m and k. It returns the
// best move count found.
func LongestRun(m, k int, maxDepth int) int {
	start := make([]int, m) // all agents start at node 0: canonical worst case
	g, err := New(k, start)
	if err != nil {
		return 0
	}
	best := 0
	var dfs func(depth int)
	dfs = func(depth int) {
		if g.Moves() > best {
			best = g.Moves()
		}
		if depth >= maxDepth {
			return
		}
		for a := 0; a < m; a++ {
			from := g.Position(a)
			for u := 0; u < k; u++ {
				if u == from {
					continue
				}
				if !g.wouldClose(from, u) {
					snap := g.snapshot()
					if g.Move(a, u) == nil {
						dfs(depth + 1)
					}
					g.restore(snap)
				}
				if g.CanJump(a, u) {
					snap := g.snapshot()
					if g.Jump(a, u) == nil {
						dfs(depth + 1)
					}
					g.restore(snap)
				}
			}
		}
	}
	dfs(0)
	return best
}

// snapshot/restore support backtracking search without re-simulating.
type gameSnap struct {
	pos          []int
	painted      [][]bool
	lastVisit    [][]int
	lastMoveInto []int
	clock, moves int
	logLen       int
	cycle        bool
}

func (g *Game) snapshot() gameSnap {
	s := gameSnap{
		pos:          append([]int(nil), g.pos...),
		lastMoveInto: append([]int(nil), g.lastMoveInto...),
		clock:        g.clock,
		moves:        g.moves,
		logLen:       len(g.log),
		cycle:        g.cycle,
	}
	s.painted = make([][]bool, g.k)
	for i := range s.painted {
		s.painted[i] = append([]bool(nil), g.painted[i]...)
	}
	s.lastVisit = make([][]int, g.m)
	for i := range s.lastVisit {
		s.lastVisit[i] = append([]int(nil), g.lastVisit[i]...)
	}
	return s
}

func (g *Game) restore(s gameSnap) {
	copy(g.pos, s.pos)
	copy(g.lastMoveInto, s.lastMoveInto)
	for i := range g.painted {
		copy(g.painted[i], s.painted[i])
	}
	for i := range g.lastVisit {
		copy(g.lastVisit[i], s.lastVisit[i])
	}
	g.clock, g.moves, g.cycle = s.clock, s.moves, s.cycle
	g.log = g.log[:s.logLen]
}

// ErrBudget is returned by strategies when maxActions is exhausted.
var ErrBudget = errors.New("agents: action budget exhausted")
