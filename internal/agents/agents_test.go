package agents_test

import (
	"errors"
	"testing"

	"repro/internal/agents"
)

func mustGame(t *testing.T, k int, start []int) *agents.Game {
	t.Helper()
	g, err := agents.New(k, start)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMovePaintsAndRelocates(t *testing.T) {
	g := mustGame(t, 3, []int{0, 0})
	if err := g.Move(0, 1); err != nil {
		t.Fatal(err)
	}
	if !g.Painted(0, 1) {
		t.Error("edge 0→1 not painted")
	}
	if g.Position(0) != 1 {
		t.Errorf("agent 0 at %d, want 1", g.Position(0))
	}
	if g.Moves() != 1 {
		t.Errorf("Moves = %d, want 1", g.Moves())
	}
}

func TestMoveClosingCycleRejected(t *testing.T) {
	g := mustGame(t, 3, []int{0})
	if err := g.Move(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Move(0, 2); err != nil {
		t.Fatal(err)
	}
	err := g.Move(0, 0) // 0→1→2→0 closes the cycle
	if !errors.Is(err, agents.ErrCycleClosed) {
		t.Errorf("cycle-closing move error = %v, want ErrCycleClosed", err)
	}
	if !g.CycleClosed() {
		t.Error("game not marked cycle-closed")
	}
	if g.Moves() != 2 {
		t.Errorf("Moves = %d: the closing move must not count", g.Moves())
	}
}

func TestTwoCycleRejected(t *testing.T) {
	g := mustGame(t, 2, []int{0, 1})
	if err := g.Move(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Move(1, 0); !errors.Is(err, agents.ErrCycleClosed) {
		t.Errorf("2-cycle move error = %v, want ErrCycleClosed", err)
	}
}

func TestSelfLoopRejected(t *testing.T) {
	g := mustGame(t, 3, []int{0})
	if err := g.Move(0, 0); !errors.Is(err, agents.ErrSelfLoop) {
		t.Errorf("self move error = %v, want ErrSelfLoop", err)
	}
}

func TestBadArgs(t *testing.T) {
	g := mustGame(t, 3, []int{0})
	if err := g.Move(0, 7); !errors.Is(err, agents.ErrBadNode) {
		t.Errorf("bad node error = %v", err)
	}
	if err := g.Move(5, 1); !errors.Is(err, agents.ErrBadAgent) {
		t.Errorf("bad agent error = %v", err)
	}
	if _, err := agents.New(3, []int{9}); !errors.Is(err, agents.ErrBadNode) {
		t.Errorf("bad start error = %v", err)
	}
}

func TestJumpRequiresRefresh(t *testing.T) {
	g := mustGame(t, 3, []int{0, 2})
	// Agent 1 has never visited node 1 and nobody moved into it: no jump.
	if err := g.Jump(1, 1); !errors.Is(err, agents.ErrJumpIllegal) {
		t.Errorf("unrefreshed jump error = %v, want ErrJumpIllegal", err)
	}
	// After agent 0 moves into node 1, agent 1 may jump there.
	if err := g.Move(0, 1); err != nil {
		t.Fatal(err)
	}
	if !g.CanJump(1, 1) {
		t.Fatal("CanJump false after a move into the target")
	}
	if err := g.Jump(1, 1); err != nil {
		t.Fatal(err)
	}
	// Jumping resets the visit clock: a second jump to the same node
	// needs a fresh move into it.
	if err := g.Jump(1, 0); err == nil {
		t.Fatal("jump to node 0 should be illegal (no move into 0 ever)")
	}
	if err := g.Move(0, 2); err != nil { // leave 1 so agent 0 can re-enter later
		t.Fatal(err)
	}
	if g.CanJump(1, 1) {
		t.Error("agent 1 standing on node 1 can jump to it")
	}
}

func TestJumpDoesNotPaint(t *testing.T) {
	g := mustGame(t, 3, []int{0, 2})
	if err := g.Move(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Jump(1, 1); err != nil {
		t.Fatal(err)
	}
	if g.Painted(2, 1) {
		t.Error("jump painted an edge")
	}
	if g.Moves() != 1 {
		t.Errorf("Moves = %d, want 1 (jumps don't count)", g.Moves())
	}
}

func TestMoveBound(t *testing.T) {
	tests := []struct{ m, k, want int }{
		{2, 2, 4}, {2, 3, 8}, {3, 3, 27}, {3, 4, 81}, {1, 3, 8}, // m=1 uses base 2
	}
	for _, tt := range tests {
		if got := agents.MoveBound(tt.m, tt.k); got != tt.want {
			t.Errorf("MoveBound(%d,%d) = %d, want %d", tt.m, tt.k, got, tt.want)
		}
	}
}

func TestTopoRanksRespectEdges(t *testing.T) {
	g := mustGame(t, 4, []int{0})
	for _, to := range []int{1, 2, 3} {
		if err := g.Move(0, to); err != nil {
			t.Fatal(err)
		}
	}
	rank, err := g.TopoRanks()
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if g.Painted(u, v) && rank[u] <= rank[v] {
				t.Errorf("painted edge %d→%d but rank %d <= %d", u, v, rank[u], rank[v])
			}
		}
	}
}

// TestRandomRunsObeyLemma is the E5 core: every random legal run stops
// within the m^k move bound and satisfies the potential law.
func TestRandomRunsObeyLemma(t *testing.T) {
	for m := 1; m <= 4; m++ {
		for k := 2; k <= 5; k++ {
			for seed := int64(0); seed < 10; seed++ {
				g, start, err := agents.RandomRun(m, k, seed, 10000)
				if err != nil {
					t.Fatalf("m=%d k=%d seed=%d: %v", m, k, seed, err)
				}
				if bound := agents.MoveBound(m, k); g.Moves() > bound {
					t.Errorf("m=%d k=%d seed=%d: %d moves exceed bound %d", m, k, seed, g.Moves(), bound)
				}
				if err := g.VerifyPotentialLaw(start); err != nil {
					t.Errorf("m=%d k=%d seed=%d: %v", m, k, seed, err)
				}
			}
		}
	}
}

// TestLongestRunWithinBound searches exhaustively on tiny instances:
// the best achievable move count never exceeds m^k, and a single agent
// on k nodes achieves exactly k−1 (a simple path).
func TestLongestRunWithinBound(t *testing.T) {
	tests := []struct {
		m, k     int
		maxDepth int
		wantMin  int // the search must achieve at least this many moves
	}{
		{1, 2, 4, 1},
		{1, 3, 6, 2},
		{1, 4, 8, 3},
		{2, 2, 6, 2},
		{2, 3, 12, 4},
	}
	for _, tt := range tests {
		best := agents.LongestRun(tt.m, tt.k, tt.maxDepth)
		bound := agents.MoveBound(tt.m, tt.k)
		if best > bound {
			t.Errorf("m=%d k=%d: best %d exceeds bound %d", tt.m, tt.k, best, bound)
		}
		if best < tt.wantMin {
			t.Errorf("m=%d k=%d: best %d below known-achievable %d", tt.m, tt.k, best, tt.wantMin)
		}
	}
}

func TestActionsAfterCycleRejected(t *testing.T) {
	g := mustGame(t, 2, []int{0, 1})
	if err := g.Move(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Move(1, 0); !errors.Is(err, agents.ErrCycleClosed) {
		t.Fatal("expected cycle")
	}
	if err := g.Move(0, 0); !errors.Is(err, agents.ErrCycleClosed) {
		t.Error("move after cycle not rejected")
	}
	if err := g.Jump(0, 0); !errors.Is(err, agents.ErrCycleClosed) {
		t.Error("jump after cycle not rejected")
	}
}

func TestLogIsCopied(t *testing.T) {
	g := mustGame(t, 3, []int{0})
	if err := g.Move(0, 1); err != nil {
		t.Fatal(err)
	}
	log := g.Log()
	log[0].To = 99
	if g.Log()[0].To == 99 {
		t.Error("Log() aliases internal state")
	}
}

// TestExactLongestRun pins the exact adversarial maxima of the Lemma
// 1.1 game (memoized full search). Two calibration facts fall out:
// a single agent achieves exactly the k−1 simple path, and for k=3 the
// exact maximum is (m+1)(m+2)/2 − 1 — quadratic in m, far below the
// lemma's m^k. The bound is safe, not tight; the paper only needs
// finiteness.
func TestExactLongestRun(t *testing.T) {
	tests := []struct{ m, k, want int }{
		{1, 2, 1}, {1, 3, 2}, {1, 4, 3}, // single agent: simple path
		{2, 2, 2}, {3, 2, 3},
		{2, 3, 5}, {3, 3, 9}, {4, 3, 14}, // (m+1)(m+2)/2 − 1
		{2, 4, 10},
	}
	for _, tt := range tests {
		if got := agents.ExactLongestRun(tt.m, tt.k); got != tt.want {
			t.Errorf("ExactLongestRun(%d,%d) = %d, want %d", tt.m, tt.k, got, tt.want)
		}
		if bound := agents.MoveBound(tt.m, tt.k); tt.want > bound {
			t.Errorf("exact %d exceeds lemma bound %d", tt.want, bound)
		}
	}
}

// TestExactTriangularPattern checks the k=3 closed form on one more
// point than the table above.
func TestExactTriangularPattern(t *testing.T) {
	for m := 1; m <= 5; m++ {
		want := (m+1)*(m+2)/2 - 1
		if m == 1 {
			want = 2 // single agent: path of length k−1
		}
		if got := agents.ExactLongestRun(m, 3); got != want {
			t.Errorf("exact(m=%d,k=3) = %d, want %d", m, got, want)
		}
	}
}
