// Package agents implements the combinatorial move/jump process of
// Lemma 1.1 (proof due to Noga Alon), the heart of the paper's tree
// invariant: m agents live on the complete directed graph over k nodes;
// a Move relocates an agent along an edge and paints that edge; a Jump
// relocates an agent to a node u, allowed only if another agent has
// moved into u since the jumper's last visit (or ever, if never
// visited). The question: how many moves can happen before the painted
// edges contain a directed cycle? The answer is at most m^k, via the
// potential function Φ = Σ_agents m^rank(position) under a reverse
// topological ranking of the final acyclic painted graph.
package agents

import (
	"errors"
	"fmt"
)

// EventKind distinguishes moves from jumps in a game log.
type EventKind int

// Event kinds.
const (
	EventMove EventKind = iota + 1
	EventJump
)

// Event records one agent action.
type Event struct {
	Kind  EventKind
	Agent int
	From  int
	To    int
}

// String renders "move a0 2→1" / "jump a3 0→2".
func (ev Event) String() string {
	k := "move"
	if ev.Kind == EventJump {
		k = "jump"
	}
	return fmt.Sprintf("%s a%d %d→%d", k, ev.Agent, ev.From, ev.To)
}

// Errors returned by game actions.
var (
	ErrSelfLoop    = errors.New("agents: self-loop not allowed")
	ErrBadNode     = errors.New("agents: node out of range")
	ErrBadAgent    = errors.New("agents: agent out of range")
	ErrJumpIllegal = errors.New("agents: jump target not refreshed since last visit")
	ErrCycleClosed = errors.New("agents: painted edges already contain a cycle")
)

// Game is one run of the move/jump process.
type Game struct {
	k, m    int
	pos     []int // agent → node
	painted [][]bool
	// lastVisit[a][u] is the time agent a last stood on node u (-1 never);
	// lastMoveInto[u] is the time of the latest Move into u (-1 never).
	lastVisit    [][]int
	lastMoveInto []int
	clock        int
	moves        int
	log          []Event
	cycle        bool
}

// New creates a game on k nodes with m agents at the given starting
// positions (len(start) = m).
func New(k int, start []int) (*Game, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadNode, k)
	}
	g := &Game{
		k:            k,
		m:            len(start),
		pos:          make([]int, len(start)),
		painted:      make([][]bool, k),
		lastVisit:    make([][]int, len(start)),
		lastMoveInto: make([]int, k),
	}
	for i := range g.painted {
		g.painted[i] = make([]bool, k)
		g.lastMoveInto[i] = -1
	}
	for a, p := range start {
		if p < 0 || p >= k {
			return nil, fmt.Errorf("%w: agent %d starts at %d", ErrBadNode, a, p)
		}
		g.pos[a] = p
		g.lastVisit[a] = make([]int, k)
		for u := range g.lastVisit[a] {
			g.lastVisit[a][u] = -1
		}
		g.lastVisit[a][p] = 0
	}
	g.clock = 1
	return g, nil
}

// K returns the node count; M the agent count.
func (g *Game) K() int { return g.k }

// M returns the agent count.
func (g *Game) M() int { return g.m }

// Moves returns the number of moves performed so far.
func (g *Game) Moves() int { return g.moves }

// Position returns agent a's current node.
func (g *Game) Position(a int) int { return g.pos[a] }

// Painted reports whether edge (u→v) has been painted.
func (g *Game) Painted(u, v int) bool { return g.painted[u][v] }

// CycleClosed reports whether the painted edges contain a directed
// cycle (the run is over).
func (g *Game) CycleClosed() bool { return g.cycle }

// Log returns the event log.
func (g *Game) Log() []Event {
	out := make([]Event, len(g.log))
	copy(out, g.log)
	return out
}

// CanJump reports whether agent a may jump to node u right now.
func (g *Game) CanJump(a, u int) bool {
	if a < 0 || a >= g.m || u < 0 || u >= g.k || u == g.pos[a] {
		return false
	}
	return g.lastMoveInto[u] > g.lastVisit[a][u]
}

// Move relocates agent a along the edge to node u, painting it. The
// move that closes a cycle is rejected: the run counts moves while the
// painted graph stays acyclic, matching the lemma's statement.
func (g *Game) Move(a, u int) error {
	if err := g.validate(a, u); err != nil {
		return err
	}
	v := g.pos[a]
	if g.wouldClose(v, u) {
		g.cycle = true
		return fmt.Errorf("%w: move %d→%d", ErrCycleClosed, v, u)
	}
	g.painted[v][u] = true
	g.pos[a] = u
	g.lastVisit[a][u] = g.clock
	g.lastMoveInto[u] = g.clock
	g.clock++
	g.moves++
	g.log = append(g.log, Event{Kind: EventMove, Agent: a, From: v, To: u})
	return nil
}

// Jump relocates agent a to node u without painting, if legal.
func (g *Game) Jump(a, u int) error {
	if err := g.validate(a, u); err != nil {
		return err
	}
	if !g.CanJump(a, u) {
		return fmt.Errorf("%w: agent %d to node %d", ErrJumpIllegal, a, u)
	}
	v := g.pos[a]
	g.pos[a] = u
	g.lastVisit[a][u] = g.clock
	g.clock++
	g.log = append(g.log, Event{Kind: EventJump, Agent: a, From: v, To: u})
	return nil
}

func (g *Game) validate(a, u int) error {
	if g.cycle {
		return ErrCycleClosed
	}
	if a < 0 || a >= g.m {
		return fmt.Errorf("%w: %d", ErrBadAgent, a)
	}
	if u < 0 || u >= g.k {
		return fmt.Errorf("%w: %d", ErrBadNode, u)
	}
	if u == g.pos[a] {
		return ErrSelfLoop
	}
	return nil
}

// wouldClose reports whether painting (v→u) creates a directed cycle:
// true iff u already reaches v through painted edges (or v == u).
func (g *Game) wouldClose(v, u int) bool {
	seen := make([]bool, g.k)
	stack := []int{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == v {
			return true
		}
		if seen[x] {
			continue
		}
		seen[x] = true
		for y := 0; y < g.k; y++ {
			if g.painted[x][y] && !seen[y] {
				stack = append(stack, y)
			}
		}
	}
	return false
}

// MoveBound returns the lemma's bound m^k on the number of moves. The
// lemma's potential argument needs at least two agents for the weights
// to separate; for m = 1 the base is floored at 2 (bound 2^k), matching
// the Potential weighting.
func MoveBound(m, k int) int {
	base := m
	if base < 2 {
		base = 2
	}
	b := 1
	for i := 0; i < k; i++ {
		b *= base
	}
	return b
}

// TopoRanks computes a reverse topological ranking of the painted graph
// (ranks k−1..0 such that every painted edge goes from a higher rank to
// a lower one), as in the lemma's proof. The painted graph must be
// acyclic.
func (g *Game) TopoRanks() ([]int, error) {
	indeg := make([]int, g.k)
	for u := 0; u < g.k; u++ {
		for v := 0; v < g.k; v++ {
			if g.painted[u][v] {
				indeg[v]++
			}
		}
	}
	// Kahn's algorithm from sources: sources get the highest ranks.
	rank := make([]int, g.k)
	next := g.k - 1
	var queue []int
	for u := 0; u < g.k; u++ {
		if indeg[u] == 0 {
			queue = append(queue, u)
		}
	}
	processed := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		rank[u] = next
		next--
		processed++
		for v := 0; v < g.k; v++ {
			if g.painted[u][v] {
				indeg[v]--
				if indeg[v] == 0 {
					queue = append(queue, v)
				}
			}
		}
	}
	if processed != g.k {
		return nil, errors.New("agents: painted graph is cyclic, no topological rank")
	}
	return rank, nil
}

// Potential computes Φ = Σ_agents m^rank(pos(agent)) for the given
// ranking. m = max(2, #agents) so that jumps "upward" cannot offset a
// move's decrease, exactly the weighting of the lemma's proof.
func (g *Game) Potential(rank []int) int {
	base := g.m
	if base < 2 {
		base = 2
	}
	total := 0
	for _, p := range g.pos {
		w := 1
		for i := 0; i < rank[p]; i++ {
			w *= base
		}
		total += w
	}
	return total
}
