package election_test

import (
	"testing"

	"repro/internal/election"
	"repro/internal/explore"
	"repro/internal/linearize"
	"repro/internal/objects"
	"repro/internal/sim"
	"repro/internal/spec"
)

// The paper (§2) defines a leader-election protocol as a wait-free
// LINEARIZABLE implementation of the LE object whose sequential
// specification is "all elect operations return the identity of the
// processor that applied the first operation". These tests check our
// election protocols against that exact specification with the
// Wing–Gong checker.

// TestDirectCASLinearizableExhaustive checks every schedule (with one
// crash) of the register-alone election against spec.ElectionSpec.
func TestDirectCASLinearizableExhaustive(t *testing.T) {
	k := 4
	builder := func() *sim.System {
		sys := sim.NewSystem()
		cas := objects.NewCAS("cas", k)
		sys.Add(cas)
		for _, p := range election.DirectCAS(cas, k-1) {
			sys.Spawn(p)
		}
		return sys
	}
	// The explorer disables traces for speed, so replay each terminal
	// schedule with traces on and check the spans.
	checked := 0
	explore.Visit(builder, explore.Options{MaxCrashes: 1}, func(o explore.Outcome) bool {
		if o.Result.Halted {
			return true
		}
		res := replayWithTrace(t, builder, o.Schedule)
		rep := linearize.Check(spec.ElectionSpec{}, res.Trace.SpansOf("cas.le"), linearize.Options{AllowPending: true})
		if !rep.Ok {
			t.Errorf("schedule %s: election history not linearizable", explore.FormatSchedule(o.Schedule))
			return false
		}
		checked++
		return true
	})
	if checked == 0 {
		t.Fatal("no schedules checked")
	}
}

// replayWithTrace re-runs a builder under an explicit choice schedule
// with tracing enabled.
func replayWithTrace(t *testing.T, b explore.Builder, schedule []explore.Choice) *sim.Result {
	t.Helper()
	var picks []sim.ProcID
	crashAt := make(map[int][]sim.ProcID)
	for _, c := range schedule {
		if c.Crash {
			crashAt[len(picks)] = append(crashAt[len(picks)], c.Pick)
		} else {
			picks = append(picks, c.Pick)
		}
	}
	sys := b()
	res, err := sys.Run(sim.Config{
		Scheduler: sim.Replay(picks),
		Faults:    sim.CrashAt(crashAt),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAnnouncedCASLinearizableRandom samples random schedules of the
// announced election at n = k−1 and checks linearizability.
func TestAnnouncedCASLinearizableRandom(t *testing.T) {
	k := 4
	ids := []sim.Value{"A", "B", "C"}
	for seed := int64(0); seed < 40; seed++ {
		sys := sim.NewSystem()
		cas := objects.NewCAS("cas", k)
		sys.Add(cas)
		for _, p := range election.AnnouncedCAS(sys, cas, ids) {
			sys.Spawn(p)
		}
		cfg := sim.Config{Scheduler: sim.Random(seed)}
		if seed%4 == 0 {
			cfg.Faults = sim.RandomCrashes(seed, 0.1, 1)
		}
		res, err := sys.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep := linearize.Check(spec.ElectionSpec{}, res.Trace.SpansOf("cas.le"), linearize.Options{AllowPending: true})
		if !rep.Ok {
			t.Errorf("seed %d: announced election not linearizable", seed)
		}
	}
}

// TestSharedPortNotLinearizable: at n = k the disagreeing schedule is
// also a linearizability violation of the LE object — the two views of
// "who went first" cannot be reconciled.
func TestSharedPortNotLinearizable(t *testing.T) {
	k := 3
	ids := []sim.Value{"A", "B", "C"}
	sys := sim.NewSystem()
	cas := objects.NewCAS("cas", k)
	sys.Add(cas)
	for _, p := range election.AnnouncedCAS(sys, cas, ids) {
		sys.Spawn(p)
	}
	schedule := []sim.ProcID{2, 2, 2, 2, 2, 0, 0, 0, 0}
	res, err := sys.Run(sim.Config{Scheduler: sim.ReplayThen(schedule, sim.RoundRobin())})
	if err != nil {
		t.Fatal(err)
	}
	rep := linearize.Check(spec.ElectionSpec{}, res.Trace.SpansOf("cas.le"), linearize.Options{AllowPending: true})
	if rep.Ok {
		t.Error("split election accepted as linearizable LE object")
	}
}
