package election_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/election"
	"repro/internal/explore"
	"repro/internal/objects"
	"repro/internal/sim"
)

func directBuilder(k, n int) explore.Builder {
	return func() *sim.System {
		sys := sim.NewSystem()
		cas := objects.NewCAS("cas", k)
		sys.Add(cas)
		for _, p := range election.DirectCAS(cas, n) {
			sys.Spawn(p)
		}
		return sys
	}
}

func identityList(n int) []sim.Value {
	ids := make([]sim.Value, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("id%d", i)
	}
	return ids
}

func announcedBuilder(k, n int) explore.Builder {
	ids := identityList(n)
	return func() *sim.System {
		sys := sim.NewSystem()
		cas := objects.NewCAS("cas", k)
		sys.Add(cas)
		for _, p := range election.AnnouncedCAS(sys, cas, ids) {
			sys.Spawn(p)
		}
		return sys
	}
}

// TestDirectCASExhaustive verifies the Burns–Cruz–Loui positive side on
// every schedule: one compare&swap-(k) register alone elects k−1
// processes (E3).
func TestDirectCASExhaustive(t *testing.T) {
	for k := 2; k <= 4; k++ {
		n := k - 1
		ids := make([]sim.Value, n)
		for i := range ids {
			ids[i] = i
		}
		c := explore.Run(directBuilder(k, n), explore.Options{}, func(res *sim.Result) error {
			if err := election.CheckElection(res, ids); err != nil {
				return err
			}
			return election.CheckWaitFree(res, 2)
		})
		if !c.Exhaustive {
			t.Fatalf("k=%d: walk not exhaustive", k)
		}
		if len(c.Violations) != 0 {
			t.Errorf("k=%d: violation on schedule %s", k, explore.FormatSchedule(c.Violations[0].Schedule))
		}
		if c.Complete == 0 {
			t.Errorf("k=%d: no complete runs", k)
		}
	}
}

func TestDirectCASExhaustiveWithCrashes(t *testing.T) {
	k := 4
	ids := []sim.Value{0, 1, 2}
	c := explore.Run(directBuilder(k, 3), explore.Options{MaxCrashes: 2}, func(res *sim.Result) error {
		return election.CheckElection(res, ids)
	})
	if !c.Exhaustive {
		t.Fatal("walk not exhaustive")
	}
	if len(c.Violations) != 0 {
		t.Errorf("violation under crashes: %s", explore.FormatSchedule(c.Violations[0].Schedule))
	}
}

func TestDirectCASCapacityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("DirectCAS beyond capacity did not panic")
		}
	}()
	election.DirectCAS(objects.NewCAS("cas", 3), 3) // capacity is 2
}

// TestAnnouncedCASExhaustive verifies that adding read/write registers
// keeps k−1 capacity wait-free with arbitrary identities (E4 positive
// side), on every schedule including one crash.
func TestAnnouncedCASExhaustive(t *testing.T) {
	for k := 2; k <= 4; k++ {
		n := k - 1
		ids := identityList(n)
		crashes := 1
		if k == 4 {
			crashes = 0 // crash branching at n=3 is ~20x the schedule count
		}
		c := explore.Run(announcedBuilder(k, n), explore.Options{MaxCrashes: crashes}, func(res *sim.Result) error {
			if err := election.CheckElection(res, ids); err != nil {
				return err
			}
			return election.CheckWaitFree(res, 6)
		})
		if !c.Exhaustive {
			t.Fatalf("k=%d: walk not exhaustive", k)
		}
		if len(c.Violations) != 0 {
			t.Errorf("k=%d: violation on schedule %s", k, explore.FormatSchedule(c.Violations[0].Schedule))
		}
	}
}

// TestAnnouncedCASSharedPortDisagrees drives the schedule that breaks
// n = k (two processes on one port): the late winner's announcement
// changes what later deciders see. This is the negative side of E4 —
// naive porting beyond k−1 loses consistency.
func TestAnnouncedCASSharedPortDisagrees(t *testing.T) {
	k := 3
	ids := []sim.Value{"A", "B", "C"}
	sys := sim.NewSystem()
	cas := objects.NewCAS("cas", k)
	sys.Add(cas)
	for _, p := range election.AnnouncedCAS(sys, cas, ids) {
		sys.Spawn(p)
	}
	// Processes 0 and 2 share port 0. Let p2 announce, win the port and
	// decide before p0 announces; then p0 announces and decides.
	schedule := []sim.ProcID{2, 2, 2, 2, 2, 0, 0, 0, 0}
	res, err := sys.Run(sim.Config{Scheduler: sim.ReplayThen(schedule, sim.RoundRobin())})
	if err != nil {
		t.Fatal(err)
	}
	if err := election.CheckElection(res, ids); err == nil {
		t.Errorf("expected a consistency violation at n=k; decisions: %v", res.DistinctDecisions())
	}
}

// TestAnnouncedCASOverCapacityFound lets the explorer hunt the same
// violation without being told the schedule.
func TestAnnouncedCASOverCapacityFound(t *testing.T) {
	ids := identityList(3)
	found := false
	explore.Visit(announcedBuilder(3, 3), explore.Options{}, func(o explore.Outcome) bool {
		if o.Result.Halted {
			return true
		}
		if err := election.CheckElection(o.Result, ids); err != nil {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Error("explorer found no violation for n=k")
	}
}

func TestSlotsCapacity(t *testing.T) {
	// Capacity(k) = Σ_{j=1..k−1} P(k−1, j): 1, 4, 15, 64, 325, …
	want := map[int]int{2: 1, 3: 4, 4: 15, 5: 64, 6: 325}
	for k, n := range want {
		if got := election.Capacity(k); got != n {
			t.Errorf("Capacity(%d) = %d, want %d", k, got, n)
		}
		if got := len(election.Slots(k)); got != n {
			t.Errorf("len(Slots(%d)) = %d, want %d", k, got, n)
		}
	}
}

func TestSlotsWellFormed(t *testing.T) {
	for k := 2; k <= 5; k++ {
		seen := make(map[string]bool)
		for _, s := range election.Slots(k) {
			key := s.String()
			if seen[key] {
				t.Errorf("k=%d: duplicate slot %s", k, s)
			}
			seen[key] = true
			inPrefix := make(map[objects.Symbol]bool)
			for _, sym := range s.Prefix {
				if sym == objects.Bottom || int(sym) >= k {
					t.Errorf("k=%d: slot %s has out-of-range prefix symbol", k, s)
				}
				if inPrefix[sym] {
					t.Errorf("k=%d: slot %s repeats a prefix symbol", k, s)
				}
				inPrefix[sym] = true
			}
			if inPrefix[s.Next] || s.Next == objects.Bottom || int(s.Next) >= k {
				t.Errorf("k=%d: slot %s has bad next symbol", k, s)
			}
		}
	}
}

func permutationSystem(k int, ids []sim.Value) (*sim.System, *objects.CAS) {
	sys := sim.NewSystem()
	cas := objects.NewCAS("cas", k)
	sys.Add(cas)
	for _, p := range election.Permutation(sys, cas, ids) {
		sys.Spawn(p)
	}
	return sys, cas
}

// TestPermutationElectsUnderManySchedules exercises the Θ((k−1)!)
// capacity protocol (E4): all Capacity(k) processes must agree on a
// valid leader under round-robin and many random schedules.
func TestPermutationElectsUnderManySchedules(t *testing.T) {
	for k := 2; k <= 4; k++ {
		n := election.Capacity(k)
		ids := identityList(n)
		scheds := []sim.Scheduler{sim.RoundRobin()}
		for seed := int64(0); seed < 15; seed++ {
			scheds = append(scheds, sim.Random(seed))
		}
		for si, sched := range scheds {
			sys, cas := permutationSystem(k, ids)
			res, err := sys.Run(sim.Config{Scheduler: sched, MaxTotalSteps: 1 << 22})
			if err != nil {
				t.Fatalf("k=%d sched %d: %v", k, si, err)
			}
			if res.Halted {
				t.Fatalf("k=%d sched %d: did not terminate", k, si)
			}
			if err := election.CheckElection(res, ids); err != nil {
				t.Errorf("k=%d sched %d: %v", k, si, err)
			}
			for i, perr := range res.Errors {
				if perr != nil {
					t.Errorf("k=%d sched %d: proc %d failed: %v", k, si, i, perr)
				}
			}
			// The leader must be the owner of the last first-use
			// transition of the register.
			first := cas.FirstUses()
			chain := first[1:] // drop ⊥
			if len(chain) != k-1 {
				t.Fatalf("k=%d sched %d: first-use chain %v incomplete", k, si, first)
			}
			slots := election.Slots(k)
			leaderIdx := -1
			for i, s := range slots {
				if s.Next == chain[len(chain)-1] && len(s.Prefix) == len(chain)-1 {
					match := true
					for j := range s.Prefix {
						if s.Prefix[j] != chain[j] {
							match = false
							break
						}
					}
					if match {
						leaderIdx = i
						break
					}
				}
			}
			if leaderIdx < 0 {
				t.Fatalf("k=%d sched %d: no slot matches chain %v", k, si, chain)
			}
			if d := res.DistinctDecisions(); len(d) != 1 || d[0] != ids[leaderIdx] {
				t.Errorf("k=%d sched %d: decided %v, want leader %v (chain %v)", k, si, d, ids[leaderIdx], chain)
			}
		}
	}
}

// TestPermutationBeatsAnnouncedCapacity pins the headline shape of E4:
// with read/write registers the permutation protocol elects far more
// than the k−1 register-alone bound.
func TestPermutationBeatsAnnouncedCapacity(t *testing.T) {
	for k := 3; k <= 7; k++ {
		if election.Capacity(k) <= k-1 {
			t.Errorf("k=%d: Capacity %d does not exceed register-alone bound %d",
				k, election.Capacity(k), k-1)
		}
	}
}

// TestPermutationStallsOnCrash demonstrates that the permutation
// protocol is not wait-free: crashing the unique owner of the enabled
// frontier slot stalls every survivor. This is the gap the paper's
// suspension machinery addresses.
func TestPermutationStallsOnCrash(t *testing.T) {
	k := 3
	n := election.Capacity(k) // 4: slots ( →0),( 0→1),( →1),( 1→0) in order
	ids := identityList(n)
	sys, _ := permutationSystem(k, ids)
	// Let process 0 (slot ⊥→0) announce, collect, win and mark:
	// 1 + 4 + 1 + 1 = 7 steps. Then crash process 1, the only owner of
	// the now-enabled slot (0→1).
	var schedule []sim.ProcID
	for i := 0; i < 7; i++ {
		schedule = append(schedule, 0)
	}
	res, err := sys.Run(sim.Config{
		Scheduler:       sim.ReplayThen(schedule, sim.RoundRobin()),
		Faults:          sim.CrashAt(map[int][]sim.ProcID{7: {1}}),
		MaxStepsPerProc: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decided()) != 0 {
		t.Errorf("processes decided despite stalled chain: %v", res.Decisions())
	}
	stalled := 0
	for i, perr := range res.Errors {
		if errors.Is(perr, sim.ErrStepLimit) {
			stalled++
			_ = i
		}
	}
	if stalled == 0 {
		t.Error("no survivor hit the step limit; stall not demonstrated")
	}
	if err := election.CheckWaitFree(res, 300); err == nil {
		t.Error("CheckWaitFree passed on a stalled run")
	}
}

// TestPermutationWrongProcessCount pins the constructor contract.
func TestPermutationWrongProcessCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Permutation with wrong process count did not panic")
		}
	}()
	sys := sim.NewSystem()
	cas := objects.NewCAS("cas", 3)
	sys.Add(cas)
	election.Permutation(sys, cas, identityList(3)) // needs 4
}
