package election

import (
	"repro/internal/explore"
	"repro/internal/objects"
	"repro/internal/sim"
)

// CensusDirect exhaustively censuses the DirectCAS election of n
// processes over one compare&swap-(k) register, checking consistency
// and validity on every complete run (with up to one crash — the
// wait-freedom regime of the paper's Claim rows). tunes forward
// exploration tuning, e.g. explore.WithPrune() or
// explore.WithWorkers(n), without changing the experiment's shape.
func CensusDirect(k, n, maxRuns int, tunes ...explore.Tune) *explore.Census {
	b := func() *sim.System {
		sys := sim.NewSystem()
		cas := objects.NewCAS("cas", k)
		sys.Add(cas)
		for _, p := range DirectCAS(cas, n) {
			sys.Spawn(p)
		}
		return sys
	}
	ids := make([]sim.Value, n)
	for i := range ids {
		ids[i] = i
	}
	opts := explore.Options{MaxCrashes: 1, MaxRuns: maxRuns}.With(tunes...)
	return explore.Run(b, opts, func(res *sim.Result) error {
		return CheckElection(res, ids)
	})
}
