package election

import (
	"repro/internal/explore"
	"repro/internal/objects"
	"repro/internal/sim"
)

// DirectSymmetric is the process-symmetry spec of the direct election
// protocols (DirectCAS and DirectRMW): identities ARE process indices,
// so renaming the processes by π renames decision i to π(i) and claimed
// symbol i+1 to π(i)+1, with ⊥ (and any symbol outside the claimed
// range) fixed. The single shared register is permutation-invariant by
// name, so no RenameObject is needed. The full symmetric group applies:
// the protocols treat every process identically up to its identity.
func DirectSymmetric(n int) *sim.Symmetry {
	return &sim.Symmetry{
		Perms: sim.FullPerms(n),
		RenameValue: func(v sim.Value, perm []sim.ProcID) sim.Value {
			switch x := v.(type) {
			case int:
				if x >= 0 && x < n {
					return int(perm[x])
				}
			case objects.Symbol:
				if s := int(x); s >= 1 && s <= n {
					return objects.Symbol(perm[s-1] + 1)
				}
			}
			return v
		},
		RenameOutcome: func(key string, perm []sim.ProcID) string {
			return sim.RenameIntKey(key, func(i int) int {
				if i >= 0 && i < n {
					return int(perm[i])
				}
				return i
			})
		},
	}
}

// CensusDirect exhaustively censuses the DirectCAS election of n
// processes over one compare&swap-(k) register, checking consistency
// and validity on every complete run (with up to one crash — the
// wait-freedom regime of the paper's Claim rows). tunes forward
// exploration tuning, e.g. explore.WithPrune() or
// explore.WithWorkers(n), without changing the experiment's shape. The
// builder declares DirectSymmetric, so explore.WithSymmetry() reduces
// the walk to one subtree per process-permutation class.
func CensusDirect(k, n, maxRuns int, tunes ...explore.Tune) *explore.Census {
	spec := DirectSymmetric(n)
	b := func() *sim.System {
		sys := sim.NewSystem()
		cas := objects.NewCAS("cas", k)
		sys.Add(cas)
		// Machine form: runs on the direct-dispatch fast path (and the
		// explorers' in-place backtracking DFS); bit-identical to the
		// Program form, which the equivalence tests cross-check.
		for _, m := range DirectCASMachines(cas, k, n) {
			sys.SpawnMachine(m)
		}
		sys.DeclareSymmetry(spec)
		return sys
	}
	ids := make([]sim.Value, n)
	for i := range ids {
		ids[i] = i
	}
	opts := explore.Options{MaxCrashes: 1, MaxRuns: maxRuns}.With(tunes...)
	return explore.Run(b, opts, func(res *sim.Result) error {
		return CheckElection(res, ids)
	})
}

// CensusRMW is CensusDirect for the OTHER election family: the
// DirectRMW protocol over one arbitrary k-valued read-modify-write
// register (claim-if-empty), the paper's conjectured generalization
// from compare&swap-(k). Same check, same crash regime, same declared
// symmetry — the protocol is identity-symmetric for exactly the same
// reason DirectCAS is.
func CensusRMW(k, n, maxRuns int, tunes ...explore.Tune) *explore.Census {
	spec := DirectSymmetric(n)
	b := func() *sim.System {
		sys := sim.NewSystem()
		progs, _ := DirectRMW(sys, "rmw", k, n)
		for _, p := range progs {
			sys.Spawn(p)
		}
		sys.DeclareSymmetry(spec)
		return sys
	}
	ids := make([]sim.Value, n)
	for i := range ids {
		ids[i] = i
	}
	opts := explore.Options{MaxCrashes: 1, MaxRuns: maxRuns}.With(tunes...)
	return explore.Run(b, opts, func(res *sim.Result) error {
		return CheckElection(res, ids)
	})
}
