package election

import (
	"fmt"

	"repro/internal/objects"
	"repro/internal/sim"
)

// MultiRegister elects a leader among (k₁−1)·(k₂−1) processes with TWO
// compare&swap registers and no read/write memory, reproducing the
// capacity-product claim of Burns, Cruz and Loui (reference [5] of the
// paper: "if there are several such registers then the number of
// processes is the product of the registers' sizes").
//
// Process (a, b) first claims symbol a+1 in the group register; members
// of the winning group then claim b+1 in the rank register; the leader
// is the pair of final values. Like Burns et al.'s model (and unlike
// the paper's), the construction is NOT wait-free: members of losing
// groups must wait for the winning group to claim the rank register —
// CheckMultiRegisterStall demonstrates the stall under a crash. The
// paper's contribution is exactly about what survives when wait-freedom
// is demanded.
func MultiRegister(group *objects.CAS, rank *objects.CAS) []sim.Program {
	k1, k2 := group.K(), rank.K()
	n := (k1 - 1) * (k2 - 1)
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		a := i / (k2 - 1)
		b := i % (k2 - 1)
		progs[i] = func(e *sim.Env) (sim.Value, error) {
			group.CompareAndSwap(e, objects.Bottom, objects.Symbol(a+1))
			winGroup := int(group.Read(e)) - 1
			if winGroup == a {
				// My group won: compete for rank.
				rank.CompareAndSwap(e, objects.Bottom, objects.Symbol(b+1))
			}
			// Everyone (winners and losers) reads the rank until it is
			// set. This wait is bounded only if the winning group keeps
			// taking steps — the protocol is live, not wait-free.
			for {
				v := rank.Read(e)
				if v != objects.Bottom {
					return winGroup*(k2-1) + (int(v) - 1), nil
				}
			}
		}
	}
	return progs
}

// MultiRegisterCapacity returns (k₁−1)·(k₂−1).
func MultiRegisterCapacity(k1, k2 int) int { return (k1 - 1) * (k2 - 1) }

// DirectRMW elects a leader among k−1 processes with one arbitrary
// k-valued read-modify-write register whose transition function is
// "claim if empty" — the paper's conjecture that its results extend
// from compare&swap-(k) to arbitrary size-k read-modify-write types,
// exercised on the positive side. The RMW returns the previous value,
// so a single operation both claims and learns the winner.
func DirectRMW(sys *sim.System, name string, k, n int) ([]sim.Program, *objects.RMW) {
	if n > k-1 {
		panic(fmt.Sprintf("election: DirectRMW: %d processes exceed rmw-(%d) capacity %d", n, k, k-1))
	}
	reg := objects.NewRMW(name, k, func(cur objects.Symbol, arg sim.Value) objects.Symbol {
		if cur == objects.Bottom {
			return arg.(objects.Symbol)
		}
		return cur
	})
	sys.Add(reg)
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		i := i
		progs[i] = func(e *sim.Env) (sim.Value, error) {
			prev := reg.RMW(e, objects.Symbol(i+1))
			if prev == objects.Bottom {
				return i, nil // my claim went in
			}
			return int(prev) - 1, nil
		}
	}
	return progs, reg
}
