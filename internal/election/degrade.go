package election

import (
	"fmt"

	"repro/internal/explore"
	"repro/internal/faults"
	"repro/internal/objects"
	"repro/internal/registers"
	"repro/internal/sim"
)

// This file adds graceful degradation to the compare&swap election: a
// protocol that detects a failed register (the ErrObjectFailed sentinel
// of internal/faults) and falls back to a registers-only path instead
// of crashing. The theory says the fallback cannot be both safe and
// wait-free — leader election above the register-alone capacity needs
// the strong object (Burns–Cruz–Loui; FLP for the consensus flavor) —
// so the interesting question is empirical: on what fraction of
// fault-placement schedules does the degraded protocol still elect
// consistently? DegradeCensus measures exactly that, exhaustively.

// DegradingCAS returns n programs electing a leader over obj — a
// compare&swap-style object, normally a faults.Wrap around
// objects.NewCAS — that survive the object failing mid-run:
//
//	try   c&s(⊥→i+1); read          (the DirectCAS path)
//	on failure:
//	  adopt any decision published by a compare&swap-path winner
//	  else race on a fallback register (announce-then-read)
//
// Every compare&swap-path decider publishes its decision to a
// single-writer register BEFORE returning, so late fallers-back adopt
// it and agreement degrades as rarely as the schedule allows. The
// fallback race itself is only read/write and therefore unsafe under
// adversarial scheduling — the point the census quantifies.
func DegradingCAS(sys *sim.System, obj sim.Object, n int) []sim.Program {
	dec := registers.NewArray(sys, obj.Name()+".dec", n, nil)
	fb := registers.NewMWMR(obj.Name()+".fb", nil)
	sys.Add(fb)
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		i := i
		progs[i] = func(e *sim.Env) (sim.Value, error) {
			sp := e.BeginOp(obj.Name()+".le", "elect", i)
			decide := func(w sim.Value) (sim.Value, error) {
				dec.Write(e, w)
				e.EndOp(sp, w)
				return w, nil
			}
			prev, ok := faults.TryApply(e, obj, objects.OpCAS, objects.Bottom, objects.Symbol(i+1))
			if ok {
				if v, ok2 := faults.TryApply(e, obj, sim.OpRead); ok2 {
					if s, isSym := v.(objects.Symbol); isSym && s != objects.Bottom {
						return decide(int(s) - 1)
					}
					// A garbled/omitted response left no usable winner
					// (⊥ or a foreign value): treat like a failure and
					// degrade rather than decide garbage.
					_ = prev
				}
			}
			// Degraded path: the object failed (or answered nonsense).
			// First adopt any published compare&swap-path decision — those
			// are authoritative.
			for j := 0; j < n; j++ {
				if w := dec.Read(e, j); w != nil {
					return decide(w)
				}
			}
			// None visible: registers-only race.
			if w := fb.Read(e); w != nil {
				return decide(w)
			}
			fb.Write(e, i)
			if w := fb.Read(e); w != nil {
				return decide(w)
			}
			return decide(i)
		}
	}
	return progs
}

// DegradeReport quantifies how gracefully the degrading election
// survives an object-fault budget, by exhaustive comparison against the
// fault-free baseline census over the identical protocol.
type DegradeReport struct {
	// Baseline is the census with fault budget 0 (it must be violation
	// free); Faulted is the census with the requested budget, whose
	// schedule tree strictly contains the baseline's.
	Baseline *explore.Census
	Faulted  *explore.Census
	// FaultedRuns counts complete runs containing at least one injected
	// fault (faulted complete minus baseline complete).
	FaultedRuns int
	// SafetyViolations counts faulted runs electing inconsistently or
	// invalidly; the baseline contributes none, so this is exactly the
	// faulted census's violation count.
	SafetyViolations int
	// LivenessLosses counts additional incomplete (depth-bound) runs
	// introduced by faults.
	LivenessLosses int
}

// SafetyRate is the fraction of fault-containing runs that still
// elected consistently (1.0 when no run carried a fault).
func (r DegradeReport) SafetyRate() float64 {
	if r.FaultedRuns == 0 {
		return 1
	}
	return 1 - float64(r.SafetyViolations)/float64(r.FaultedRuns)
}

// DegradeCensus censuses the degrading election of n processes over one
// fault-wrapped compare&swap-(k) register, with the given object-fault
// budget over modes (crash-only when empty), and reports how often the
// degraded paths preserved safety and liveness. The exploration also
// allows one process crash, matching CensusDirect.
func DegradeCensus(k, n, faultBudget, maxRuns int, modes []sim.FaultMode, tunes ...explore.Tune) DegradeReport {
	b := func() *sim.System {
		sys := sim.NewSystem()
		cas := faults.Wrap(objects.NewCAS("cas", k))
		sys.Add(cas)
		// Machine form: direct-dispatch fast path, same op sequence as
		// DegradingCAS (cross-checked by the equivalence tests).
		for _, m := range DegradingCASMachines(sys, cas, n) {
			sys.SpawnMachine(m)
		}
		return sys
	}
	ids := make([]sim.Value, n)
	for i := range ids {
		ids[i] = i
	}
	check := func(res *sim.Result) error {
		return CheckElection(res, ids)
	}
	base := explore.Options{MaxCrashes: 1, MaxRuns: maxRuns}.With(tunes...)
	faulted := base
	faulted.ObjectFaults = faultBudget
	faulted.FaultModes = modes
	r := DegradeReport{
		Baseline: explore.Run(b, base, check),
		Faulted:  explore.Run(b, faulted, check),
	}
	r.FaultedRuns = r.Faulted.Complete - r.Baseline.Complete
	r.SafetyViolations = r.Faulted.ViolationRuns
	r.LivenessLosses = r.Faulted.Incomplete - r.Baseline.Incomplete
	if r.Baseline.ViolationRuns != 0 {
		// The fault-free protocol must be a correct election; a baseline
		// violation means the degradation machinery broke the healthy
		// path — fail loudly rather than report a bogus rate.
		panic(fmt.Sprintf("election: degrading baseline has %d violations", r.Baseline.ViolationRuns))
	}
	return r
}
