package election

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/objects"
	"repro/internal/registers"
	"repro/internal/sim"
)

// Machine (direct-dispatch) port of the DirectCAS election. The op
// sequence is identical to DirectCASOn's Program — c&s(⊥ → own symbol),
// read, decide owner — so schedules, fingerprints and censuses are
// bit-identical between the two forms; only the high-level "elect" span
// is omitted (spans are trace-only and never fold into fingerprints).

// directCASMachine is one process of the DirectCAS election as a
// resumable state machine: pc 0 is the claim, pc 1 the read.
type directCASMachine struct {
	obj sim.Object
	i   int
	pc  int
}

var _ sim.Machine = (*directCASMachine)(nil)

// Pending implements sim.Machine.
func (m *directCASMachine) Pending() sim.MachineOp {
	if m.pc == 0 {
		return sim.MachineOp{
			Obj: m.obj, Op: objects.OpCAS, NArgs: 2,
			Args: [2]sim.Value{objects.Bottom, objects.Symbol(m.i + 1)},
		}
	}
	return sim.MachineOp{Obj: m.obj, Op: sim.OpRead}
}

// Finish implements sim.Machine.
func (m *directCASMachine) Finish(v sim.Value) (bool, sim.Value, error) {
	if m.pc == 0 {
		m.pc = 1
		return false, nil, nil
	}
	return true, int(v.(objects.Symbol)) - 1, nil
}

// Save implements sim.Machine.
func (m *directCASMachine) Save(s *sim.Snap) { s.Int(m.pc) }

// Restore implements sim.Machine.
func (m *directCASMachine) Restore(r *sim.SnapReader) { m.pc = r.Int() }

// DirectCASMachines is DirectCASOn in machine form: n election state
// machines over one compare&swap-(k)-speaking object, for
// sim.SpawnMachine. Same capacity precondition, same panic.
func DirectCASMachines(obj sim.Object, k, n int) []sim.Machine {
	if n > k-1 {
		panic(fmt.Sprintf("election: DirectCAS: %d processes exceed compare&swap-(%d) capacity %d",
			n, k, k-1))
	}
	ms := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		ms[i] = &directCASMachine{obj: obj, i: i}
	}
	return ms
}

// degradeElectMachine is one process of the DegradingCAS election as a
// state machine. Program counters:
//
//	0 c&s · 1 read · 2 scan published decisions (j) ·
//	3 fallback read · 4 fallback announce · 5 fallback re-read ·
//	6 publish own decision, then decide
//
// Every transition mirrors DegradingCAS's control flow, including the
// failed-object sentinel checks (which arrive as ordinary values) and
// the decide-publishes-first discipline; only the trace-only "elect"
// span is omitted, as in the direct port above.
type degradeElectMachine struct {
	obj      sim.Object
	dec      *registers.Array
	fb       *registers.MWMR
	i, n     int
	pc, j    int
	decision sim.Value
}

var _ sim.Machine = (*degradeElectMachine)(nil)

// Pending implements sim.Machine.
func (m *degradeElectMachine) Pending() sim.MachineOp {
	switch m.pc {
	case 0:
		return sim.MachineOp{
			Obj: m.obj, Op: objects.OpCAS, NArgs: 2,
			Args: [2]sim.Value{objects.Bottom, objects.Symbol(m.i + 1)},
		}
	case 1:
		return sim.MachineOp{Obj: m.obj, Op: sim.OpRead}
	case 2:
		return sim.MachineOp{Obj: m.dec.Reg(m.j), Op: sim.OpRead}
	case 3, 5:
		return sim.MachineOp{Obj: m.fb, Op: sim.OpRead}
	case 4:
		return sim.MachineOp{Obj: m.fb, Op: sim.OpWrite, NArgs: 1, Args: [2]sim.Value{m.i}}
	default:
		return sim.MachineOp{Obj: m.dec.Reg(m.i), Op: sim.OpWrite, NArgs: 1, Args: [2]sim.Value{m.decision}}
	}
}

// degrade enters the registers-only path: scan published decisions.
func (m *degradeElectMachine) degrade() {
	m.pc, m.j = 2, 0
}

// decide publishes w on the way out (pc 6), like the Program's decide.
func (m *degradeElectMachine) decide(w sim.Value) {
	m.decision = w
	m.pc = 6
}

// Finish implements sim.Machine.
func (m *degradeElectMachine) Finish(v sim.Value) (bool, sim.Value, error) {
	switch m.pc {
	case 0:
		if faults.IsFailed(v) {
			m.degrade()
		} else {
			m.pc = 1
		}
	case 1:
		if !faults.IsFailed(v) {
			if s, isSym := v.(objects.Symbol); isSym && s != objects.Bottom {
				m.decide(int(s) - 1)
				break
			}
			// A garbled/omitted response left no usable winner (⊥ or a
			// foreign value): treat like a failure and degrade rather
			// than decide garbage.
		}
		m.degrade()
	case 2:
		if v != nil {
			m.decide(v)
			break
		}
		m.j++
		if m.j == m.n {
			m.pc = 3
		}
	case 3:
		if v != nil {
			m.decide(v)
		} else {
			m.pc = 4
		}
	case 4:
		m.pc = 5
	case 5:
		if v != nil {
			m.decide(v)
		} else {
			m.decide(m.i)
		}
	default:
		return true, m.decision, nil
	}
	return false, nil, nil
}

// Save implements sim.Machine.
func (m *degradeElectMachine) Save(s *sim.Snap) {
	s.Int(m.pc)
	s.Int(m.j)
	s.Value(m.decision)
}

// Restore implements sim.Machine.
func (m *degradeElectMachine) Restore(r *sim.SnapReader) {
	m.pc = r.Int()
	m.j = r.Int()
	m.decision = r.Value()
}

// DegradingCASMachines is DegradingCAS in machine form: n degrading
// election machines plus their decision array and fallback register,
// for sim.SpawnMachine.
func DegradingCASMachines(sys *sim.System, obj sim.Object, n int) []sim.Machine {
	dec := registers.NewArray(sys, obj.Name()+".dec", n, nil)
	fb := registers.NewMWMR(obj.Name()+".fb", nil)
	sys.Add(fb)
	ms := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		ms[i] = &degradeElectMachine{obj: obj, dec: dec, fb: fb, i: i, n: n}
	}
	return ms
}
