package election

import (
	"fmt"

	"repro/internal/objects"
	"repro/internal/sim"
)

// Machine (direct-dispatch) port of the DirectCAS election. The op
// sequence is identical to DirectCASOn's Program — c&s(⊥ → own symbol),
// read, decide owner — so schedules, fingerprints and censuses are
// bit-identical between the two forms; only the high-level "elect" span
// is omitted (spans are trace-only and never fold into fingerprints).

// directCASMachine is one process of the DirectCAS election as a
// resumable state machine: pc 0 is the claim, pc 1 the read.
type directCASMachine struct {
	obj sim.Object
	i   int
	pc  int
}

var _ sim.Machine = (*directCASMachine)(nil)

// Pending implements sim.Machine.
func (m *directCASMachine) Pending() sim.MachineOp {
	if m.pc == 0 {
		return sim.MachineOp{
			Obj: m.obj, Op: objects.OpCAS, NArgs: 2,
			Args: [2]sim.Value{objects.Bottom, objects.Symbol(m.i + 1)},
		}
	}
	return sim.MachineOp{Obj: m.obj, Op: sim.OpRead}
}

// Finish implements sim.Machine.
func (m *directCASMachine) Finish(v sim.Value) (bool, sim.Value, error) {
	if m.pc == 0 {
		m.pc = 1
		return false, nil, nil
	}
	return true, int(v.(objects.Symbol)) - 1, nil
}

// Save implements sim.Machine.
func (m *directCASMachine) Save(s *sim.Snap) { s.Int(m.pc) }

// Restore implements sim.Machine.
func (m *directCASMachine) Restore(r *sim.SnapReader) { m.pc = r.Int() }

// DirectCASMachines is DirectCASOn in machine form: n election state
// machines over one compare&swap-(k)-speaking object, for
// sim.SpawnMachine. Same capacity precondition, same panic.
func DirectCASMachines(obj sim.Object, k, n int) []sim.Machine {
	if n > k-1 {
		panic(fmt.Sprintf("election: DirectCAS: %d processes exceed compare&swap-(%d) capacity %d",
			n, k, k-1))
	}
	ms := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		ms[i] = &directCASMachine{obj: obj, i: i}
	}
	return ms
}
